(* Machine-readable rendering of lint findings.

   Three formats: the conventional compiler-style text diagnostics, a
   compact JSON array, and SARIF 2.1.0 (the minimal subset GitHub code
   scanning ingests, so CI can annotate PRs with findings). *)

type format = Text | Json | Sarif

let format_of_string = function
  | "text" -> Some Text
  | "json" -> Some Json
  | "sarif" -> Some Sarif
  | _ -> None

(* ------------------------------------------------------------------ *)
(* A tiny JSON emitter (no external dependency)                         *)
(* ------------------------------------------------------------------ *)

let escape_json buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

type json =
  | Str of string
  | Int of int
  | List of json list
  | Obj of (string * json) list

let rec emit buf = function
  | Str s ->
      Buffer.add_char buf '"';
      escape_json buf s;
      Buffer.add_char buf '"'
  | Int i -> Buffer.add_string buf (string_of_int i)
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf (Str k);
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 4096 in
  emit buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Renderers                                                            *)
(* ------------------------------------------------------------------ *)

let render_text findings =
  String.concat ""
    (List.map (fun f -> Finding.to_string f ^ "\n") findings)

let json_of_finding (f : Finding.t) =
  Obj
    [
      ("file", Str f.file);
      ("line", Int f.line);
      ("col", Int f.col);
      ("rule", Str f.rule);
      ("severity", Str (Finding.severity_to_string f.severity));
      ("message", Str f.msg);
    ]

let render_json findings =
  to_string
    (Obj
       [
         ("findings", List (List.map json_of_finding findings));
         ("count", Int (List.length findings));
       ])
  ^ "\n"

let sarif_result (f : Finding.t) =
  Obj
    [
      ("ruleId", Str f.rule);
      ("level", Str (Finding.severity_to_string f.severity));
      ("message", Obj [ ("text", Str f.msg) ]);
      ( "locations",
        List
          [
            Obj
              [
                ( "physicalLocation",
                  Obj
                    [
                      ( "artifactLocation",
                        Obj
                          [
                            ("uri", Str f.file);
                            ("uriBaseId", Str "SRCROOT");
                          ] );
                      ( "region",
                        Obj
                          [
                            ("startLine", Int f.line);
                            (* SARIF columns are 1-based *)
                            ("startColumn", Int (f.col + 1));
                          ] );
                    ] );
              ];
          ] );
    ]

let render_sarif findings =
  let rules =
    List.sort_uniq compare
      (List.map (fun (f : Finding.t) -> f.Finding.rule) findings)
  in
  to_string
    (Obj
       [
         ( "$schema",
           Str
             "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
         );
         ("version", Str "2.1.0");
         ( "runs",
           List
             [
               Obj
                 [
                   ( "tool",
                     Obj
                       [
                         ( "driver",
                           Obj
                             [
                               ("name", Str "rt-lint");
                               ("informationUri", Str "docs/LINT.md");
                               ( "rules",
                                 List
                                   (List.map
                                      (fun r ->
                                        Obj [ ("id", Str r) ])
                                      rules) );
                             ] );
                       ] );
                   ("results", List (List.map sarif_result findings));
                 ];
             ] );
       ])
  ^ "\n"

let render fmt findings =
  match fmt with
  | Text -> render_text findings
  | Json -> render_json findings
  | Sarif -> render_sarif findings
