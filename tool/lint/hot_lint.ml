(* Hot-path allocation/boxing analysis (rt-lint v4).  See hot_lint.mli
   for the rule contract and docs/PERF_LINT.md for the user-facing
   grammar.

   The pass runs in two phases.  Phase 1 (marks + graph + resolve) is a
   whole-repo prepass: [@rt.hot]/[@rt.cold] seeds are harvested from the
   interfaces, every unit's top-level definitions and the (module, name)
   references in their bodies become call-graph nodes and edges, and a
   worklist propagates hotness seed -> callee, stopping at [@rt.cold]
   and at names that are not definitions in the linted set (stdlib and
   other-unit calls cannot re-enter).  Phase 2 ([check]) walks each hot
   definition's body with a lexical per-iteration flag and flags the
   allocation/boxing rules, then runs the budget-poll analysis from the
   unit's [*_budgeted] entry points.

   Keys are (module, value) pairs: the innermost enclosing module for
   definitions inside [module M = struct ... end] (matching how a nested
   signature is harvested), the compilation unit otherwise.  Unqualified
   references are recorded under both the enclosing module and the unit,
   so sibling calls resolve in either scope; only keys that exist as
   definitions propagate, so the over-approximation is harmless. *)

open Typedtree
module ISet = Set.Make (Ident)

let attr_hot = Rt_prelude.Annot.hot
let attr_cold = Rt_prelude.Annot.cold

let has_suffix s suf =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

let norm p =
  match Typed_lint.path_parts p with
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | parts -> parts

(* ------------------------------------------------------------------ *)
(* Phase 1a: interface marks                                            *)
(* ------------------------------------------------------------------ *)

type marks = {
  m_hot : (string * string, unit) Hashtbl.t;
  m_cold : (string * string, unit) Hashtbl.t;
}

let create_marks () =
  { m_hot = Hashtbl.create 64; m_cold = Hashtbl.create 64 }

let rec result_type (t : Parsetree.core_type) =
  match t.ptyp_desc with
  | Ptyp_arrow (_, _, r) -> result_type r
  | Ptyp_poly (_, r) -> result_type r
  | _ -> t

(* a hot/cold payload is either empty or a string documenting the why *)
let payload_ok = function
  | Parsetree.PStr [] -> true
  | p -> Dim_table.string_payload p <> None

let harvest_value marks ~file ~modname (vd : Parsetree.value_description)
    errors =
  let result = result_type vd.pval_type in
  let attrs =
    vd.pval_attributes @ vd.pval_type.ptyp_attributes @ result.ptyp_attributes
  in
  let find name =
    List.find_opt
      (fun (a : Parsetree.attribute) -> a.attr_name.txt = name)
      attrs
  in
  let hot = find attr_hot and cold = find attr_cold in
  let name = vd.pval_name.txt in
  let bad (a : Parsetree.attribute) msg =
    Finding.of_location ~file ~rule:"hot-annotation" ~msg a.attr_loc
  in
  let errors =
    match (hot, cold) with
    | Some h, Some _ ->
        bad h
          (Printf.sprintf "'%s' is marked both [@rt.hot] and [@rt.cold]" name)
        :: errors
    | _ -> errors
  in
  let errors =
    List.fold_left
      (fun errors (which, ao) ->
        match ao with
        | Some (a : Parsetree.attribute) when not (payload_ok a.attr_payload)
          ->
            bad a
              (Printf.sprintf
                 "[@%s] payload must be empty or a string literal" which)
            :: errors
        | _ -> errors)
      errors
      [ (attr_hot, hot); (attr_cold, cold) ]
  in
  (match (hot, cold) with
  | Some _, None -> Hashtbl.replace marks.m_hot (modname, name) ()
  | None, Some _ | Some _, Some _ ->
      (* on conflict, cold wins: never silently widen the hot region *)
      Hashtbl.replace marks.m_cold (modname, name) ()
  | None, None -> ());
  errors

let rec harvest_signature marks ~file ~modname (sg : Parsetree.signature)
    errors =
  List.fold_left
    (fun errors (item : Parsetree.signature_item) ->
      match item.psig_desc with
      | Psig_value vd -> harvest_value marks ~file ~modname vd errors
      | Psig_module
          { pmd_type = { pmty_desc = Pmty_signature sg; _ }; pmd_name; _ } ->
          let modname =
            match pmd_name.txt with Some n -> n | None -> modname
          in
          harvest_signature marks ~file ~modname sg errors
      | _ -> errors)
    errors sg

let add_interface marks path =
  let modname = Dim_table.modname_of_path path in
  match Pparse.parse_interface ~tool_name:"rt-lint" path with
  | exception _ -> [] (* unparseable files are reported by the main pass *)
  | sg -> List.rev (harvest_signature marks ~file:path ~modname sg [])

(* ------------------------------------------------------------------ *)
(* Phase 1b: call graph                                                 *)
(* ------------------------------------------------------------------ *)

type graph = {
  defs : (string * string, unit) Hashtbl.t;
  edges : (string * string, (string * string) list) Hashtbl.t;
  g_hot : (string * string, unit) Hashtbl.t; (* in-file [@rt.hot] lets *)
  g_cold : (string * string, unit) Hashtbl.t;
}

let create_graph () =
  {
    defs = Hashtbl.create 512;
    edges = Hashtbl.create 512;
    g_hot = Hashtbl.create 16;
    g_cold = Hashtbl.create 16;
  }

(* every (module, name) reference in [e], under both plausible scopes for
   unqualified names *)
let callees_of ~unit_mod ~cur_mod (e : expression) =
  let acc = ref [] in
  let add k = acc := k :: !acc in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub x ->
          (match x.exp_desc with
          | Texp_ident (p, _, _) -> (
              match List.rev (norm p) with
              | name :: m :: _ -> add (m, name)
              | [ name ] ->
                  add (cur_mod, name);
                  if cur_mod <> unit_mod then add (unit_mod, name)
              | [] -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr sub x);
    }
  in
  it.expr it e;
  List.sort_uniq compare !acc

let vb_mark_attrs (vb : value_binding) =
  vb.vb_attributes @ vb.vb_pat.pat_attributes @ vb.vb_expr.exp_attributes

let scan_vb g ~unit_mod ~cur_mod (vb : value_binding) =
  match vb.vb_pat.pat_desc with
  | Tpat_var (_, name) ->
      let key = (cur_mod, name.txt) in
      Hashtbl.replace g.defs key ();
      let prev = Option.value ~default:[] (Hashtbl.find_opt g.edges key) in
      Hashtbl.replace g.edges key
        (callees_of ~unit_mod ~cur_mod vb.vb_expr @ prev);
      let attrs = vb_mark_attrs vb in
      let has a =
        List.exists
          (fun (x : Parsetree.attribute) -> x.attr_name.txt = a)
          attrs
      in
      if has attr_hot then Hashtbl.replace g.g_hot key ();
      if has attr_cold then Hashtbl.replace g.g_cold key ()
  | _ -> ()

let rec scan_structure g ~unit_mod ~cur_mod (str : structure) =
  List.iter
    (fun (si : structure_item) ->
      match si.str_desc with
      | Tstr_value (_, vbs) -> List.iter (scan_vb g ~unit_mod ~cur_mod) vbs
      | Tstr_module mb ->
          let cur_mod =
            match mb.mb_id with Some id -> Ident.name id | None -> cur_mod
          in
          scan_module g ~unit_mod ~cur_mod mb.mb_expr
      | Tstr_recmodule mbs ->
          List.iter
            (fun (mb : module_binding) ->
              let cur_mod =
                match mb.mb_id with
                | Some id -> Ident.name id
                | None -> cur_mod
              in
              scan_module g ~unit_mod ~cur_mod mb.mb_expr)
            mbs
      | Tstr_include incl -> scan_module g ~unit_mod ~cur_mod incl.incl_mod
      | _ -> ())
    str.str_items

and scan_module g ~unit_mod ~cur_mod (me : module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> scan_structure g ~unit_mod ~cur_mod str
  | Tmod_constraint (me, _, _, _) -> scan_module g ~unit_mod ~cur_mod me
  | Tmod_functor (_, me) -> scan_module g ~unit_mod ~cur_mod me
  | _ -> ()

let scan_unit g ~modname str =
  scan_structure g ~unit_mod:modname ~cur_mod:modname str

(* ------------------------------------------------------------------ *)
(* Phase 1c: propagation                                                *)
(* ------------------------------------------------------------------ *)

type hotset = {
  h_hot : (string * string, unit) Hashtbl.t;
  h_cold : (string * string, unit) Hashtbl.t;
}

let resolve marks g =
  let cold = Hashtbl.create 64 in
  Hashtbl.iter (fun k () -> Hashtbl.replace cold k ()) marks.m_cold;
  Hashtbl.iter (fun k () -> Hashtbl.replace cold k ()) g.g_cold;
  let hot = Hashtbl.create 256 in
  let queue = Queue.create () in
  let seed k = if not (Hashtbl.mem cold k) then Queue.add k queue in
  Hashtbl.iter (fun k () -> seed k) marks.m_hot;
  Hashtbl.iter (fun k () -> seed k) g.g_hot;
  while not (Queue.is_empty queue) do
    match Queue.take_opt queue with
    | None -> ()
    | Some k ->
        if not (Hashtbl.mem hot k) then begin
          Hashtbl.replace hot k ();
          List.iter
            (fun c ->
              if
                Hashtbl.mem g.defs c
                && (not (Hashtbl.mem cold c))
                && not (Hashtbl.mem hot c)
              then Queue.add c queue)
            (Option.value ~default:[] (Hashtbl.find_opt g.edges k))
        end
  done;
  { h_hot = hot; h_cold = cold }

(* ------------------------------------------------------------------ *)
(* Phase 2: the rule walker                                             *)
(* ------------------------------------------------------------------ *)

type ctx = {
  file : string;
  modname : string;
  bindings : (Ident.t, expression) Hashtbl.t; (* every let-bound rhs *)
  mutable found : Finding.t list;
}

let report ctx ?severity (loc : Location.t) rule msg =
  ctx.found <-
    Finding.of_location ?severity ~file:ctx.file ~rule ~msg loc :: ctx.found

let report_alloc ctx (loc : Location.t) what =
  report ctx ~severity:Finding.Warning loc "hot-alloc-in-loop"
    (Printf.sprintf
       "%s allocation on every iteration of a hot loop; hoist it or \
        restructure into an allocation-free scan"
       what)

(* immediate sub-expressions, for constructs with no special handling *)
let children (e : expression) =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ c -> acc := c :: !acc);
    }
  in
  Tast_iterator.default_iterator.expr it e;
  List.rev !acc

let has_ident_of ids (e : expression) =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub x ->
          (match x.exp_desc with
          | Texp_ident (Path.Pident id, _, _)
            when List.exists (Ident.same id) ids ->
              found := true
          | _ -> ());
          if not !found then Tast_iterator.default_iterator.expr sub x);
    }
  in
  it.expr it e;
  !found

(* --- type shapes ------------------------------------------------- *)

let rec strip_arrows ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, _, b, _) -> strip_arrows b
  | Types.Tlink t | Types.Tsubst (t, _) -> strip_arrows t
  | _ -> ty

let rec tuple_boxes_float ty =
  match Types.get_desc ty with
  | Types.Ttuple ts ->
      List.exists (fun t -> Typed_lint.is_float t || tuple_boxes_float t) ts
  | Types.Tlink t | Types.Tsubst (t, _) -> tuple_boxes_float t
  | _ -> false

(* does returning a value of this type box a float per call?  Tuples and
   options *directly* around floats do; an option around an existing
   structure (list, record) only allocates the option cell *)
let boxed_float_result ty =
  match Types.get_desc ty with
  | Types.Ttuple _ -> if tuple_boxes_float ty then Some "a float-carrying tuple" else None
  | Types.Tconstr (p, [ a ], _) when Path.same p Predef.path_option ->
      if Typed_lint.is_float a then Some "a float option"
      else if tuple_boxes_float a then Some "an option of a float-carrying tuple"
      else None
  | _ -> None

let rec is_arrow ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tlink t | Types.Tsubst (t, _) -> is_arrow t
  | _ -> false

(* --- rule tables -------------------------------------------------- *)

(* List.* callees whose cost is a full traversal of a list the SoA
   refactor (ROADMAP item 3) will turn into an array *)
let list_traversal_fns =
  [
    "iter"; "iteri"; "map"; "mapi"; "rev_map"; "fold_left"; "fold_right";
    "filter"; "filteri"; "filter_map"; "partition"; "find"; "find_opt";
    "find_map"; "exists"; "for_all"; "mem"; "memq"; "assoc"; "assoc_opt";
    "sort"; "stable_sort"; "sort_uniq"; "fast_sort"; "concat"; "concat_map";
    "flatten"; "length"; "nth"; "nth_opt"; "rev"; "append"; "rev_append";
    "split"; "combine"; "iter2"; "map2"; "fold_left2"; "for_all2"; "exists2";
  ]

(* higher-order combinators whose function argument runs once per element *)
let iterating_mods = [ "List"; "Array"; "Seq" ]

let iterating_fns =
  [
    "iter"; "iteri"; "map"; "mapi"; "rev_map"; "fold_left"; "fold_right";
    "filter"; "filteri"; "filter_map"; "partition"; "find"; "find_opt";
    "find_map"; "exists"; "for_all"; "init"; "concat_map"; "sort";
    "stable_sort"; "sort_uniq"; "fast_sort"; "iter2"; "map2"; "fold_left2";
    "for_all2"; "exists2";
  ]

(* callbacks whose tail value is produced at most once per combinator
   call (the search family): a tail allocation there is not churn *)
let once_result_fns = [ "find"; "find_opt"; "find_map" ]

(* polymorphic accessors whose generic return is boxed when instantiated
   at float.  Array.get is deliberately absent: float arrays are flat. *)
let boxing_poly_heads =
  [
    [ "fst" ]; [ "snd" ]; [ "List"; "hd" ]; [ "List"; "nth" ];
    [ "List"; "assoc" ]; [ "Hashtbl"; "find" ]; [ "Hashtbl"; "find_opt" ];
    [ "Option"; "get" ]; [ "Option"; "value" ];
  ]

(* --- the walker ---------------------------------------------------- *)

(* [loop] is lexical: are we inside a region that executes once per
   iteration of some hot loop?  Bound closures reset it (their bodies run
   when called, not where defined); iteration-combinator callbacks and
   the non-tail region of self-recursive functions set it. *)
let rec rules ctx ~loop (e : expression) =
  match e.exp_desc with
  | Texp_while (c, b) ->
      rules ctx ~loop c;
      rules ctx ~loop:true b
  | Texp_for (_, _, lo, hi, _, b) ->
      rules ctx ~loop lo;
      rules ctx ~loop hi;
      rules ctx ~loop:true b
  | Texp_let (rf, vbs, body) ->
      walk_bindings ctx ~loop rf vbs;
      rules ctx ~loop body
  | Texp_function { cases; _ } ->
      if loop then report_alloc ctx e.exp_loc "closure";
      (* the body runs when the closure is called, not per iteration *)
      List.iter
        (fun c ->
          Option.iter (rules ctx ~loop:false) c.c_guard;
          rules ctx ~loop:false c.c_rhs)
        cases
  | Texp_tuple es ->
      if loop then report_alloc ctx e.exp_loc "tuple";
      List.iter (rules ctx ~loop) es
  | Texp_record { fields; extended_expression; _ } ->
      if loop then report_alloc ctx e.exp_loc "record";
      Option.iter (rules ctx ~loop) extended_expression;
      Array.iter
        (fun (_, def) ->
          match def with
          | Overridden (_, ex) -> rules ctx ~loop ex
          | Kept _ -> ())
        fields
  | Texp_construct (_, cd, args) ->
      if loop && cd.Types.cstr_name = "::" then
        report_alloc ctx e.exp_loc "list cons";
      List.iter (rules ctx ~loop) args
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
      rules_apply ctx ~loop e (norm p) args
  | _ -> List.iter (rules ctx ~loop) (children e)

and rules_apply ctx ~loop e comps args =
  let pos =
    List.filter_map
      (fun (lbl, a) ->
        match (lbl, a) with Asttypes.Nolabel, Some a -> Some a | _ -> None)
      args
  in
  (match (comps, pos) with
  | [ "ref" ], a :: _ when Typed_lint.contains_float a.exp_type ->
      report ctx ~severity:Finding.Warning e.exp_loc "hot-boxed-float"
        "float-bearing ref allocates a fresh box on every update; use an \
         unboxed accumulator (recursive scan with float arguments) instead"
  | _ -> ());
  if List.mem comps boxing_poly_heads && Typed_lint.is_float e.exp_type then
    report ctx ~severity:Finding.Warning e.exp_loc "hot-boxed-float"
      (Printf.sprintf
         "%s instantiated at float returns a boxed float; use a \
          float-specialized access"
         (String.concat "." comps));
  (match comps with
  | [ "List"; fn ] when List.mem fn list_traversal_fns ->
      report ctx ~severity:Finding.Note e.exp_loc "hot-list-traversal"
        (Printf.sprintf
           "List.%s traversal on a hot path; the SoA refactor (ROADMAP item \
            3) wants this data in unboxed arrays"
           fn)
  | [ "@" ] ->
      report ctx ~severity:Finding.Note e.exp_loc "hot-list-traversal"
        "list append on a hot path; the SoA refactor (ROADMAP item 3) wants \
         this data in unboxed arrays"
  | _ -> ());
  let callback_loop, once_tail =
    match comps with
    | [ m; fn ] when List.mem m iterating_mods && List.mem fn iterating_fns ->
        (true, List.mem fn once_result_fns)
    | _ -> (false, false)
  in
  (* a curried [fun a b -> ...] is ONE closure: descend the whole
     parameter spine without re-flagging the inner lambdas, then walk the
     body as the per-element region *)
  let rec walk_callback (e : expression) =
    match e.exp_desc with
    | Texp_function { cases; _ } ->
        List.iter
          (fun c ->
            Option.iter (rules ctx ~loop:true) c.c_guard;
            match c.c_rhs.exp_desc with
            | Texp_function _ -> walk_callback c.c_rhs
            | _ ->
                if once_tail then walk_tail ctx ~self:[] ~outer:loop c.c_rhs
                else rules ctx ~loop:true c.c_rhs)
          cases
    | _ -> ()
  in
  List.iter
    (fun (_, a) ->
      match a with
      | None -> ()
      | Some ({ exp_desc = Texp_function _; _ } as f) when callback_loop ->
          if loop then report_alloc ctx f.exp_loc "closure";
          walk_callback f
      | Some a -> rules ctx ~loop a)
    args

(* tail spine of a self-recursive body ([self] = the rec group) or of a
   once-result callback ([self] = []).  A tail subtree without a
   self-call is an exit expression: it runs once per entry, so it is
   walked under the enclosing region's flag instead of the loop's. *)
and walk_tail ctx ~self ~outer (e : expression) =
  if self <> [] && not (has_ident_of self e) then rules ctx ~loop:outer e
  else
    match e.exp_desc with
    | Texp_ifthenelse (c, a, b) ->
        rules ctx ~loop:true c;
        walk_tail ctx ~self ~outer a;
        Option.iter (walk_tail ctx ~self ~outer) b
    | Texp_match (scrut, cases, _) ->
        rules ctx ~loop:true scrut;
        List.iter
          (fun c ->
            Option.iter (rules ctx ~loop:true) c.c_guard;
            walk_tail ctx ~self ~outer c.c_rhs)
          cases
    | Texp_let (rf, vbs, body) ->
        walk_bindings ctx ~loop:true rf vbs;
        walk_tail ctx ~self ~outer body
    | Texp_sequence (a, b) ->
        rules ctx ~loop:true a;
        walk_tail ctx ~self ~outer b
    | Texp_try (body, cases) ->
        walk_tail ctx ~self ~outer body;
        List.iter (fun c -> walk_tail ctx ~self ~outer c.c_rhs) cases
    | _ ->
        if self = [] then rules ctx ~loop:outer e
        else rules ctx ~loop:true e

(* curried parameter spine of a self-recursive function: descend to the
   actual body, then tail-walk it *)
and walk_rec_fn ctx ~self ~outer (e : expression) =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      List.iter
        (fun c ->
          Option.iter (rules ctx ~loop:true) c.c_guard;
          match c.c_rhs.exp_desc with
          | Texp_function _ -> walk_rec_fn ctx ~self ~outer c.c_rhs
          | _ -> walk_tail ctx ~self ~outer c.c_rhs)
        cases
  | _ -> rules ctx ~loop:true e

and walk_bindings ctx ~loop rf (vbs : value_binding list) =
  let group =
    if rf = Asttypes.Recursive then
      List.filter_map
        (fun (vb : value_binding) ->
          match vb.vb_pat.pat_desc with
          | Tpat_var (id, _) -> Some id
          | _ -> None)
        vbs
    else []
  in
  List.iter
    (fun (vb : value_binding) ->
      match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
      | Tpat_var (_, name), Texp_function _ ->
          let fn = vb.vb_expr in
          (match boxed_float_result (strip_arrows fn.exp_type) with
          | Some what ->
              report ctx ~severity:Finding.Warning vb.vb_loc
                "hot-boxed-float"
                (Printf.sprintf
                   "local function '%s' returns %s; every call allocates — \
                    flatten it into unboxed float results or accumulators"
                   name.txt what)
          | None -> ());
          if loop then report_alloc ctx fn.exp_loc "closure";
          let self =
            if group <> [] && has_ident_of group fn then group else []
          in
          if self <> [] then walk_rec_fn ctx ~self ~outer:loop fn
          else rules ctx ~loop:false fn
      | _ -> rules ctx ~loop vb.vb_expr)
    vbs

(* ------------------------------------------------------------------ *)
(* budget-no-poll                                                       *)
(* ------------------------------------------------------------------ *)

(* Can evaluating [e] reach a Rt_prelude.Clock read?  First-order and
   per-unit: unqualified calls resolve through the unit's let bindings;
   a call through anything unresolvable (a function parameter, a
   computed function value) counts as "may poll", so only provably
   clockless loops are flagged.  Qualified calls that do not name Clock
   are trusted not to poll. *)
let rec body_polls ctx visited (e : expression) : bool =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      List.mem "Clock" (norm p)
      ||
      match p with
      | Path.Pident id when is_arrow e.exp_type -> (
          match Hashtbl.find_opt ctx.bindings id with
          | Some rhs ->
              (not (ISet.mem id visited))
              && body_polls ctx (ISet.add id visited) rhs
          | None -> true (* a function-valued parameter may be the poll *))
      | _ -> false)
  | Texp_apply (({ exp_desc = Texp_ident (Path.Pident id, _, _); _ } as hd), args)
    ->
      body_polls ctx visited hd
      || (match Hashtbl.find_opt ctx.bindings id with
         | Some rhs ->
             (not (ISet.mem id visited))
             && body_polls ctx (ISet.add id visited) rhs
         | None -> true)
      || List.exists
           (fun (_, a) ->
             match a with Some a -> body_polls ctx visited a | None -> false)
           args
  | Texp_apply (({ exp_desc = Texp_ident _; _ } as hd), args) ->
      body_polls ctx visited hd
      || List.exists
           (fun (_, a) ->
             match a with Some a -> body_polls ctx visited a | None -> false)
           args
  | Texp_apply (({ exp_desc = Texp_apply _; _ } as hd), args) ->
      (* partial-application head — [x |> Fun.flip f e] is rewritten by
         the typechecker into a direct application of the computed
         closure.  Whatever runs is assembled from the head's own
         sub-expressions, which the recursion resolves ident-by-ident
         (an unresolvable arrow-typed ident still counts as may-poll) *)
      body_polls ctx visited hd
      || List.exists
           (fun (_, a) ->
             match a with Some a -> body_polls ctx visited a | None -> false)
           args
  | Texp_apply (_, _) -> true (* function fetched from a structure *)
  | _ -> List.exists (body_polls ctx visited) (children e)

(* every loop transitively reachable from [e] through this unit's
   bindings, in evaluation-spine preorder: while-loops, and bindings of
   self-recursive functions.  A let-bound function's body only runs when
   the function is called, so its loops are discovered through call
   sites — this keeps the first-reported witness on the caller's
   evaluation spine (the driver loop), not inside a helper defined
   lexically earlier. *)
let loops_of ctx (e : expression) =
  let acc = ref [] in
  let add kind loc = acc := (kind, loc) :: !acc in
  let rec go visited (e : expression) =
    match e.exp_desc with
    | Texp_while _ ->
        add `While e.exp_loc;
        List.iter (go visited) (children e)
    | Texp_let (_, vbs, body) ->
        List.iter
          (fun (vb : value_binding) ->
            match vb.vb_expr.exp_desc with
            | Texp_function _ -> () (* surfaces at its call sites *)
            | _ -> go visited vb.vb_expr)
          vbs;
        go visited body
    | Texp_apply ({ exp_desc = Texp_ident (Path.Pident id, _, _); _ }, args)
      ->
        (match Hashtbl.find_opt ctx.bindings id with
        | Some rhs when not (ISet.mem id visited) ->
            if has_ident_of [ id ] rhs then add `Rec rhs.exp_loc;
            go (ISet.add id visited) rhs
        | _ -> ());
        List.iter (fun (_, a) -> Option.iter (go visited) a) args
    | _ -> List.iter (go visited) (children e)
  in
  go ISet.empty e;
  List.rev !acc

let is_budget_name n = n = "budgeted" || has_suffix n "_budgeted"

let check_budget_root ctx ~name ~self_rec (vb : value_binding) =
  if not (body_polls ctx ISet.empty vb.vb_expr) then begin
    let loops = loops_of ctx vb.vb_expr in
    let loops =
      if self_rec then loops @ [ (`Rec, vb.vb_expr.exp_loc) ] else loops
    in
    let witness =
      match List.find_opt (fun (k, _) -> k = `While) loops with
      | Some _ as w -> w
      | None -> ( match loops with l :: _ -> Some l | [] -> None)
    in
    match witness with
    | Some (_, loc) ->
        report ctx loc "budget-no-poll"
          (Printf.sprintf
             "this loop is reachable from budgeted entry point '%s' but can \
              iterate without ever consulting Rt_prelude.Clock; poll the \
              budget clock or suppress with a reason why the iteration \
              count bounds wall time"
             name)
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Per-unit driver                                                      *)
(* ------------------------------------------------------------------ *)

type def = {
  d_key : string * string;
  d_id : Ident.t option;
  d_group : Ident.t list; (* idents of the enclosing rec group *)
  d_vb : value_binding;
}

let collect_defs ~unit_mod (str : structure) =
  let acc = ref [] in
  let rec go_str ~cur_mod (str : structure) =
    List.iter
      (fun (si : structure_item) ->
        match si.str_desc with
        | Tstr_value (rf, vbs) ->
            let group =
              if rf = Asttypes.Recursive then
                List.filter_map
                  (fun (vb : value_binding) ->
                    match vb.vb_pat.pat_desc with
                    | Tpat_var (id, _) -> Some id
                    | _ -> None)
                  vbs
              else []
            in
            List.iter
              (fun (vb : value_binding) ->
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, name) ->
                    acc :=
                      {
                        d_key = (cur_mod, name.txt);
                        d_id = Some id;
                        d_group = group;
                        d_vb = vb;
                      }
                      :: !acc
                | _ -> ())
              vbs
        | Tstr_module mb ->
            let cur_mod =
              match mb.mb_id with Some id -> Ident.name id | None -> cur_mod
            in
            go_mod ~cur_mod mb.mb_expr
        | Tstr_recmodule mbs ->
            List.iter
              (fun (mb : module_binding) ->
                let cur_mod =
                  match mb.mb_id with
                  | Some id -> Ident.name id
                  | None -> cur_mod
                in
                go_mod ~cur_mod mb.mb_expr)
              mbs
        | Tstr_include incl -> go_mod ~cur_mod incl.incl_mod
        | _ -> ())
      str.str_items
  and go_mod ~cur_mod (me : module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> go_str ~cur_mod str
    | Tmod_constraint (me, _, _, _) -> go_mod ~cur_mod me
    | Tmod_functor (_, me) -> go_mod ~cur_mod me
    | _ -> ()
  in
  go_str ~cur_mod:unit_mod str;
  List.rev !acc

let collect_bindings ctx (str : structure) =
  let open Tast_iterator in
  let value_binding sub (vb : value_binding) =
    (match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) -> Hashtbl.replace ctx.bindings id vb.vb_expr
    | _ -> ());
    default_iterator.value_binding sub vb
  in
  let it = { default_iterator with value_binding } in
  it.structure it str

let check ~hot ~file ~modname (str : structure) =
  let ctx = { file; modname; bindings = Hashtbl.create 64; found = [] } in
  collect_bindings ctx str;
  let defs = collect_defs ~unit_mod:modname str in
  List.iter
    (fun d ->
      if Hashtbl.mem hot.h_hot d.d_key && not (Hashtbl.mem hot.h_cold d.d_key)
      then begin
        let fn = d.d_vb.vb_expr in
        let self =
          match fn.exp_desc with
          | Texp_function _ when d.d_group <> [] && has_ident_of d.d_group fn
            ->
              d.d_group
          | _ -> []
        in
        if self <> [] then walk_rec_fn ctx ~self ~outer:false fn
        else rules ctx ~loop:false fn
      end)
    defs;
  List.iter
    (fun d ->
      if is_budget_name (snd d.d_key) then begin
        let self_rec =
          match d.d_id with
          | Some id -> has_ident_of [ id ] d.d_vb.vb_expr
          | None -> false
        in
        check_budget_root ctx ~name:(snd d.d_key) ~self_rec d.d_vb
      end)
    defs;
  List.sort_uniq Finding.compare ctx.found
