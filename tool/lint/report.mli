(** Rendering lint findings as text, JSON, or SARIF 2.1.0. *)

type format = Text | Json | Sarif

val format_of_string : string -> format option
(** ["text"], ["json"], ["sarif"]. *)

val render : format -> Finding.t list -> string
(** Render the findings; the result ends with a newline unless empty
    (text format with no findings renders as the empty string). *)
