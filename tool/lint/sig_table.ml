(* Seeded signature knowledge for rt-lint's syntactic float detection.

   rt-lint has no type information: it decides whether an expression is
   "float-valued" from its shape alone.  These tables seed that judgement
   with (a) the stdlib functions that return floats and (b) the names of
   functions and record fields in this repository whose signatures declare
   [float] results (harvested from the checked-in [.mli] files).  The table
   is an approximation by design — see docs/LINT.md. *)

let stdlib_float_fns =
  [
    "sqrt"; "exp"; "exp2"; "expm1"; "log"; "log2"; "log10"; "log1p"; "ceil";
    "floor"; "abs_float"; "float_of_int"; "float_of_string"; "float"; "atan";
    "atan2"; "acos"; "asin"; "cos"; "sin"; "tan"; "cosh"; "sinh"; "tanh";
    "ldexp"; "mod_float"; "hypot"; "copysign"; "min_float"; "max_float";
    "epsilon_float"; "infinity"; "nan";
  ]

(* [Float.f] calls that do NOT return a float; everything else under the
   [Float] module is treated as float-valued. *)
let float_module_non_float =
  [
    "to_int"; "to_string"; "compare"; "equal"; "hash"; "is_nan"; "is_finite";
    "is_integer"; "sign_bit"; "classify_float"; "seeded_hash";
  ]

(* Function names with a [... -> float] result type somewhere in [lib/].
   Harvested from the repository's interfaces; extend when a new
   float-returning function joins a public signature. *)
let repo_float_vals =
  [
    "acceptance_ratio"; "awake_overhead"; "balanced_energy";
    "break_even_time"; "bucket_energy"; "critical_speed"; "derate";
    "dynamic_power"; "e_max"; "e_min"; "energy"; "energy_cycles";
    "energy_of_slices"; "energy_per_cycle"; "feasible_speed";
    "geometric_mean"; "idle_energy"; "idle_power"; "laxity_speed";
    "load_factor"; "log_uniform"; "lower_bound"; "makespan"; "mean";
    "mean_over"; "median"; "min_rejected_penalty"; "optimal_cost";
    "overrun_factor"; "peak_intensity"; "percentile"; "plan_rate";
    "plan_throughput"; "solution_total"; "stddev"; "total_penalty";
    "total_penalty_frame"; "total_penalty_items"; "total_utilization";
    "total_weight"; "utilization";
  ]

(* Record fields declared with type [float] somewhere in [lib/]. *)
let float_fields =
  [
    "all_accepted_cost"; "alloc_cost"; "alpha"; "alt_power"; "arrival";
    "at"; "busy_time"; "coeff"; "cost"; "cost_ratio"; "cost_rhs";
    "crash_prob"; "cycles"; "dead_time"; "deadline"; "derate_factor";
    "derate_prob"; "duration"; "dvs_weight"; "energy"; "energy_budget";
    "energy_delta"; "energy_fault_free"; "energy_faulty"; "eps"; "e_sw";
    "exec_energy"; "extra_penalty"; "factor"; "fault_rate";
    "faulty_energy"; "fraction"; "frame"; "frame_length"; "horizon";
    "idle_energy_awake"; "idle_energy_proc"; "idle_energy_sleep";
    "intensity"; "item_penalty"; "item_power_factor"; "late_by";
    "level_penalty"; "linear"; "lp_value"; "makespan"; "mean"; "median";
    "miss_pct"; "overrun_prob"; "p_ind"; "peak_speed"; "penalty";
    "power_factor"; "proc_energy"; "rate"; "realized_energy"; "release";
    "remaining"; "rhs"; "shed_pct"; "s_max"; "s_min"; "speed"; "stddev";
    "t0"; "t1"; "t_sw"; "time_used"; "total"; "total_energy"; "wcet";
    "weight"; "work";
  ]

let returns_float (path : string list) =
  match path with
  | [] -> false
  | [ n ] | [ "Stdlib"; n ] ->
      List.mem n stdlib_float_fns || List.mem n repo_float_vals
  | [ "Float"; n ] | [ "Stdlib"; "Float"; n ] ->
      not (List.mem n float_module_non_float)
  | path ->
      let last = List.nth path (List.length path - 1) in
      List.mem last repo_float_vals

let field_is_float name = List.mem name float_fields
