(* rt-lint command line: lint the given files/directories (default: the
   four source roots) and exit non-zero when any finding survives the
   suppressions.  See docs/LINT.md for the rule set and docs/UNITS.md for
   the dimension analysis. *)

open Rt_lint_core

let default_roots = [ "lib"; "bin"; "bench"; "examples" ]

let usage oc =
  output_string oc
    "usage: rt_lint [OPTION...] [PATH...]\n\n\
     Lints every .ml/.mli under each PATH (directories are walked\n\
     recursively; default roots: lib bin bench examples).  Exits 1 when\n\
     any finding is reported.\n\n\
     Options:\n\
     \  --format=text|json|sarif   output format (default: text)\n\
     \  --rule=ID                  only report findings of rule ID\n\
     \                             (repeatable)\n\
     \  --require-cmts             report sources whose typed pass could\n\
     \                             not run instead of skipping them\n\
     \  --dim-coverage=P1,P2:MIN   check that at least MIN (a fraction,\n\
     \                             e.g. 0.9) of float-valued interface\n\
     \                             declarations under the given path\n\
     \                             prefixes carry [@rt.dim] annotations\n\
     \  -o FILE                    write the report to FILE\n"

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "rt-lint: %s\n" msg;
      usage stderr;
      exit 2)
    fmt

let split_flag a =
  match String.index_opt a '=' with
  | Some i ->
      ( String.sub a 0 i,
        Some (String.sub a (i + 1) (String.length a - i - 1)) )
  | None -> (a, None)

type config = {
  mutable format : Report.format;
  mutable rules : string list;
  mutable require_cmts : bool;
  mutable coverage : (string list * float) option;
  mutable out : string option;
  mutable roots : string list;
}

let parse_coverage spec =
  match String.index_opt spec ':' with
  | None -> fail "--dim-coverage expects PREFIX,...:MIN (got %s)" spec
  | Some i ->
      let prefixes =
        String.sub spec 0 i |> String.split_on_char ','
        |> List.filter (fun s -> s <> "")
      in
      let min_s = String.sub spec (i + 1) (String.length spec - i - 1) in
      let min =
        match float_of_string_opt min_s with
        | Some f when f >= 0.0 && f <= 1.0 -> f
        | _ -> fail "--dim-coverage threshold must be in [0,1] (got %s)" min_s
      in
      (prefixes, min)

let parse_args argv =
  let cfg =
    {
      format = Report.Text;
      rules = [];
      require_cmts = false;
      coverage = None;
      out = None;
      roots = [];
    }
  in
  let rec go = function
    | [] -> ()
    | ("--help" | "-help") :: _ ->
        usage stdout;
        exit 0
    | "-o" :: file :: rest ->
        cfg.out <- Some file;
        go rest
    | "-o" :: [] -> fail "-o expects a file name"
    | a :: rest when String.length a > 0 && a.[0] = '-' -> (
        match split_flag a with
        | "--format", Some f -> (
            match Report.format_of_string f with
            | Some fmt ->
                cfg.format <- fmt;
                go rest
            | None -> fail "unknown format %s (want text, json or sarif)" f)
        | "--rule", Some r ->
            cfg.rules <- r :: cfg.rules;
            go rest
        | "--require-cmts", None ->
            cfg.require_cmts <- true;
            go rest
        | "--dim-coverage", Some spec ->
            cfg.coverage <- Some (parse_coverage spec);
            go rest
        | _ -> fail "unknown option %s" a)
    | a :: rest ->
        cfg.roots <- a :: cfg.roots;
        go rest
  in
  go (List.tl (Array.to_list argv));
  cfg.roots <- List.rev cfg.roots;
  cfg.rules <- List.rev cfg.rules;
  cfg

let () =
  let cfg = parse_args Sys.argv in
  let roots = if cfg.roots = [] then default_roots else cfg.roots in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        Printf.eprintf "rt-lint: no such file or directory: %s\n" r;
        exit 2
      end)
    roots;
  let findings = Lint_core.lint_paths ~require_cmts:cfg.require_cmts roots in
  let findings =
    match cfg.rules with
    | [] -> findings
    | rules ->
        List.filter (fun (f : Lint_core.finding) -> List.mem f.rule rules)
          findings
  in
  let report = Report.render cfg.format findings in
  (match cfg.out with
  | None -> print_string report
  | Some file ->
      let oc = open_out file in
      output_string oc report;
      close_out oc);
  let coverage_failed =
    match cfg.coverage with
    | None -> false
    | Some (prefixes, min) ->
        let c = Lint_core.dim_coverage roots ~under:prefixes in
        let ratio =
          if c.Dim_table.total = 0 then 1.0
          else float_of_int c.Dim_table.annotated /. float_of_int c.Dim_table.total
        in
        Printf.eprintf
          "rt-lint: dimension coverage under %s: %d/%d (%.0f%%, need %.0f%%)\n"
          (String.concat "," prefixes)
          c.Dim_table.annotated c.Dim_table.total (100.0 *. ratio)
          (100.0 *. min);
        if ratio >= min then false
        else begin
          List.iter
            (fun (file, line, name) ->
              Printf.eprintf "  %s:%d: %s has no [@rt.dim] annotation\n" file
                line name)
            c.Dim_table.missing;
          true
        end
  in
  (* Note-level findings are rendered but never fail the gate; errors
     and warnings do. *)
  match List.length (List.filter Finding.gates findings) with
  | 0 when not coverage_failed -> ()
  | 0 -> exit 1
  | n ->
      Printf.eprintf "rt-lint: %d issue%s found\n" n (if n = 1 then "" else "s");
      exit 1
