(* rt-lint command line: lint the given files/directories (default: the
   four source roots) and exit non-zero when any finding survives the
   suppression pragmas.  See docs/LINT.md for the rule set. *)

open Rt_lint_core

let default_roots = [ "lib"; "bin"; "bench"; "examples" ]

let usage oc =
  output_string oc
    "usage: rt_lint [PATH...]\n\n\
     Lints every .ml/.mli under each PATH (directories are walked\n\
     recursively; default roots: lib bin bench examples) and prints\n\
     file:line:col: [rule-id] message diagnostics.  Exits 1 when any\n\
     finding is reported.\n"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.exists (fun a -> a = "--help" || a = "-help") args then begin
    usage stdout;
    exit 0
  end;
  (match List.find_opt (fun a -> String.length a > 0 && a.[0] = '-') args with
  | Some flag ->
      Printf.eprintf "rt-lint: unknown option %s\n" flag;
      usage stderr;
      exit 2
  | None -> ());
  let roots = if args = [] then default_roots else args in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        Printf.eprintf "rt-lint: no such file or directory: %s\n" r;
        exit 2
      end)
    roots;
  let findings = Lint_core.lint_paths roots in
  List.iter (fun f -> print_endline (Lint_core.to_string f)) findings;
  match List.length findings with
  | 0 -> ()
  | n ->
      Printf.eprintf "rt-lint: %d issue%s found\n" n (if n = 1 then "" else "s");
      exit 1
