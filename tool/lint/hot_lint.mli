(** Hot-path allocation/boxing analysis (the performance rule family,
    rt-lint v4).

    ROADMAP item 3 rebuilds the solver kernels on a struct-of-arrays
    layout; this pass is the gate that keeps boxed floats, closure churn
    and list traversals from silently creeping back into them.  Hotness
    is declared, not guessed: [[@rt.hot]] on an [.mli] value (or an [.ml]
    let binding) seeds a call-graph propagation that marks every
    transitively-called function in the linted set as hot, [[@rt.cold]]
    cuts the propagation.  Four rules fire — the first three inside hot
    code only:

    [hot-boxed-float] (warning) — a float-bearing [ref] (one box
    allocated per update), a local helper function returning a float
    tuple or a float option (one box per call), or a known polymorphic
    accessor ([fst], [List.assoc], [Hashtbl.find], ...) instantiated at
    [float] (the generic return is boxed).

    [hot-alloc-in-loop] (warning) — a closure, list cons, tuple or
    record allocated inside a [while]/[for] body, inside the callback of
    a [List]/[Array]/[Seq] iteration combinator, or inside the
    per-iteration region of a self-recursive function.  The tail spine
    of a recursive function is exempt when it contains no self-call
    (exit expressions run once), as are the tail values of the
    find/exists family (produced at most once per call).

    [hot-list-traversal] (note) — a [List.*] traversal in hot code,
    advisory markers for the SoA refactor; notes never fail the gate.

    [budget-no-poll] (error) — a [*_budgeted] entry point that promises
    wall-clock-bounded anytime behaviour but whose transitive body never
    consults [Rt_prelude.Clock]; reported at its dominating loop.  The
    analysis is per-unit and first-order: calls through function
    parameters and qualified cross-unit calls get the benefit of the
    doubt (only provably clockless loops are flagged).

    See docs/PERF_LINT.md for the full contract. *)

type marks
(** [[@rt.hot]]/[[@rt.cold]] seeds harvested from interface files. *)

val create_marks : unit -> marks

val add_interface : marks -> string -> Finding.t list
(** Parse one [.mli] and record its hot/cold marks, keyed by
    [(module, value)] — nested module signatures contribute under the
    nested module's name, like {!Dim_table}.  Returned findings are
    [hot-annotation] diagnostics for malformed or conflicting payloads;
    unparseable files contribute nothing. *)

type graph
(** The intra-repo call graph: top-level definitions and the
    [(module, name)] references occurring in their bodies, plus in-file
    [[@rt.hot]]/[[@rt.cold]] marks on let bindings. *)

val create_graph : unit -> graph

val scan_unit : graph -> modname:string -> Typedtree.structure -> unit
(** Record one compilation unit's definitions and call edges. *)

type hotset
(** The resolved hot/cold classification of every definition. *)

val resolve : marks -> graph -> hotset
(** Worklist propagation: every seed, plus every definition transitively
    referenced from a hot definition, becomes hot; [[@rt.cold]] names are
    never marked and stop the propagation. *)

val check :
  hot:hotset ->
  file:string ->
  modname:string ->
  Typedtree.structure ->
  Finding.t list
(** Run the hot rules over one unit: the allocation/boxing rules on the
    bodies of hot definitions, and the budget-poll analysis from this
    unit's [*_budgeted] entry points.  Suppression filtering happens in
    {!Lint_core}, not here. *)
