(** The typed rt-lint pass.

    Rules that need real type information — [float-cmp], [poly-cmp],
    [phys-cmp], [ambient-random], [wallclock] and the units-of-measure
    analysis [dim-mismatch] — run over the typedtree.  The tree comes from
    one of two sources: the [.cmt] files dune produces while building (the
    repo walk), or the compiler's own type inference run on a standalone
    parsetree (self-contained fixtures). *)

val path_parts : Path.t -> string list
(** Decompose a typedtree path into its source-level components, undoing
    dune's module wrapping ([Rt_prelude__Rng.float] becomes
    [["Rt_prelude"; "Rng"; "float"]]).  Shared with {!Conc_lint} and
    {!Hot_lint}. *)

val is_float : Types.type_expr -> bool
(** Is this type exactly [float] (including the [Float.t] alias)? *)

val contains_float : Types.type_expr -> bool
(** Structural float occurrence: recurses through tuples and type
    constructor arguments; nominal record/variant contents are not
    expanded (.cmt files keep only summarized environments). *)

val read_cmt : string -> (Typedtree.structure, string) result
(** Load the typedtree of an implementation [.cmt]. *)

val type_standalone :
  Parsetree.structure -> (Typedtree.structure, string) result
(** Type a standalone structure against the standard library alone; any
    reference to repository modules fails.  Compiler warnings are
    disabled; errors are rendered to a readable message. *)

val check :
  dims:Dim_table.t ->
  file:string ->
  modname:string ->
  in_lib:bool ->
  check_floats:bool ->
  Typedtree.structure ->
  Finding.t list
(** Run every typed rule.  [file] labels the findings, [modname] is the
    compilation unit (used to key local lookups in the dimension table),
    [in_lib] gates [ambient-random]/[wallclock], [check_floats] is off
    inside [Float_cmp] itself.  Suppression filtering happens in
    {!Lint_core}, not here. *)
