(* Domain-safety and lock-discipline analysis (the concurrency rule
   family, rt-lint v3).

   OCaml 5 types away memory unsafety but not data races: any mutable
   value reachable from two domains without synchronization is a bug the
   compiler accepts silently.  This pass runs over the typedtree and
   enforces, per compilation unit:

   [domain-unsafe] (error) — a mutable value (ref, mutable record
   field, array write, Queue/Hashtbl/Buffer/Stack) is used from code
   that crosses a domain boundary — the closure argument of
   [Domain.spawn], [Pool.run_list]/[Pool.map]/[Pool.submit]/[Pool.run],
   [Runner.*_par], or any closure annotated [@rt.cross_domain] — and is
   neither freshly allocated inside that closure, [Atomic.t] (atomics
   never appear as subjects of the checked operations), annotated
   [[@rt.guarded_by "<mutex>"]] with the access inside the named lock's
   critical section, nor declared [[@rt.domain_safe "reason"]].
   Accesses to [@rt.guarded_by]-annotated values are checked everywhere
   in the module, not just in crossing code, so a main-domain access
   outside the critical section is caught too.

   [lock-unbalanced] (warning) — a bare [Mutex.lock] whose critical
   section can raise before the matching [Mutex.unlock] (any call to a
   function not known to be exception-free taints the section), an
   unlock without a matching lock, a lock still held when the function
   returns, or a branch construct that holds a lock on some paths only.
   [Mutex.protect] sections are exempt: the runtime releases the lock on
   any exception.

   [lock-order] (warning) — two mutexes acquired in opposite nesting
   orders somewhere in the same compilation unit (lock-ordering
   deadlock).  Also re-acquiring a mutex already held (self-deadlock).

   [lock-blocking] (warning) — a blocking operation ([Domain.join],
   [Pool.run_list]/[map]/[with_pool], [Unix.sleep]) executed while
   holding a lock, or [Condition.wait] on a mutex that is not held /
   while holding an additional lock.

   [conc-annotation] (error) — a malformed concurrency annotation
   payload.

   Locks are identified by name — the last path component of the mutex
   expression ([m], [t.mutex]) — and tracked lexically through
   sequences, branches and [Mutex.protect] bodies.  The analysis is
   deliberately first-order: closures passed directly to higher-order
   functions are walked inline under the current lock set; values
   stored into escaping structures can be marked with the
   [@rt.cross_domain] closure annotation to be analysed as
   domain-crossing entry points (the pool's queued jobs do exactly
   this).  Calls to same-unit functions from crossing code are walked
   transitively.  Aliasing a guarded field into a plain let keeps its
   guard ([let q = t.queue] inherits [queue]'s annotation); passing a
   mutable value to a function in another unit is not tracked.  See
   docs/CONCURRENCY_LINT.md for the full contract. *)

open Typedtree
module ISet = Set.Make (Ident)

(* attribute names come from the shared registry so the lint, library
   annotations, and docs cannot drift apart on spelling *)
let attr_guarded = Rt_prelude.Annot.guarded_by
let attr_safe = Rt_prelude.Annot.domain_safe
let attr_cross = Rt_prelude.Annot.cross_domain

type annot = Guarded of string | Domain_safe

type lock = {
  l_name : string;
  l_kind : [ `Bare | `Protected ];
  l_loc : Location.t;
  mutable l_tainted : bool;
      (* a possibly-raising call happened while this bare lock was held *)
}

type ctx = {
  file : string;
  modname : string;
  mutable found : Finding.t list;
  guards : (Ident.t, string) Hashtbl.t;  (* let-bound value -> mutex name *)
  safe_ids : (Ident.t, unit) Hashtbl.t;  (* [@rt.domain_safe] lets *)
  bindings : (Ident.t, expression) Hashtbl.t;  (* every let-bound rhs *)
  field_annots : (string, annot) Hashtbl.t;  (* this unit's record labels *)
  mutable lock_edges : (string * string * Location.t) list;
  mutable cross : expression list;  (* [@rt.cross_domain] closures *)
  mutable spawn_args : expression list;  (* arguments of spawn sites *)
}

(* the per-path walking state: held locks plus the idents we saw
   allocated fresh inside the current (crossing) scope *)
type st = { held : lock list; fresh : ISet.t }

type mode = { crossing : bool; visited : ISet.t }

let report ctx ?severity (loc : Location.t) rule msg =
  ctx.found <-
    Finding.of_location ?severity ~file:ctx.file ~rule ~msg loc :: ctx.found

let has_suffix s suf =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

let norm p =
  match Typed_lint.path_parts p with
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | parts -> parts

(* ------------------------------------------------------------------ *)
(* Annotations                                                          *)
(* ------------------------------------------------------------------ *)

let payload_string (p : Parsetree.payload) =
  match p with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let annot_of_attrs ctx (attrs : Parsetree.attributes) =
  List.fold_left
    (fun acc (a : Parsetree.attribute) ->
      if acc <> None then acc
      else if a.attr_name.txt = attr_guarded then
        match payload_string a.attr_payload with
        | Some m when m <> "" -> Some (Guarded m)
        | _ ->
            report ctx a.attr_name.loc "conc-annotation"
              "[@rt.guarded_by] expects a non-empty string naming the \
               guarding mutex";
            Some Domain_safe (* don't cascade into domain-unsafe noise *)
      else if a.attr_name.txt = attr_safe then Some Domain_safe
      else acc)
    None attrs

let has_cross (e : expression) =
  List.exists
    (fun (a : Parsetree.attribute) -> a.attr_name.txt = attr_cross)
    e.exp_attributes

let annot_of_field ctx (lbl : Types.label_description) =
  match annot_of_attrs ctx lbl.Types.lbl_attributes with
  | Some a -> Some a
  | None -> Hashtbl.find_opt ctx.field_annots lbl.Types.lbl_name

(* ------------------------------------------------------------------ *)
(* Classification helpers                                               *)
(* ------------------------------------------------------------------ *)

let type_head (e : expression) =
  let ty =
    try Ctype.expand_head e.exp_env e.exp_type with _ -> e.exp_type
  in
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (List.rev (Typed_lint.path_parts p))
  | _ -> None

let type_is_container_of (e : expression) m =
  match type_head e with Some ("t" :: m' :: _) -> m' = m | _ -> false

let type_is_ref e =
  match type_head e with Some ("ref" :: _) -> true | _ -> false

let type_is_array e =
  match type_head e with Some ("array" :: _) -> true | _ -> false

let containers = [ "Queue"; "Hashtbl"; "Buffer"; "Stack" ]

let array_write_ops =
  [ "set"; "unsafe_set"; "fill"; "blit"; "sort"; "fast_sort"; "stable_sort" ]

(* domain-crossing call sites whose function arguments execute on
   another domain *)
let is_spawn_head ctx comps =
  match List.rev comps with
  | "spawn" :: "Domain" :: _ -> true
  | f :: "Pool" :: _ -> List.mem f [ "run_list"; "map"; "submit"; "run" ]
  | f :: "Runner" :: _ -> has_suffix f "_par"
  | [ f ] when ctx.modname = "Pool" ->
      List.mem f [ "run_list"; "map"; "submit"; "run" ]
  | _ -> false

(* calls that cannot raise: a bare critical section containing only
   these keeps its lock balanced on every path *)
let non_raising comps =
  match comps with
  | [ "Mutex"; ("lock" | "unlock" | "try_lock" | "create") ] -> true
  | [ "Condition"; _ ] | [ "Atomic"; _ ] -> true
  | [ "Queue"; ("is_empty" | "length" | "add" | "push" | "create" | "clear") ]
    ->
      true
  | [ "Array"; "length" ] | [ "List"; "length" ] | [ "String"; "length" ] ->
      true
  | [ "Domain"; "self" ] -> true
  | [ op ] ->
      List.mem op
        [
          ":="; "!"; "incr"; "decr"; "not"; "ignore"; "&&"; "||"; "+"; "-";
          "*"; "+."; "-."; "*."; "/."; "="; "<>"; "<"; ">"; "<="; ">="; "==";
          "!="; "@@"; "|>"; "ref"; "fst"; "snd"; "min"; "max"; "succ"; "pred";
          "abs"; "~-"; "~-."; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr";
        ]
  | _ -> false

let is_blocking_head comps =
  match List.rev comps with
  | "join" :: "Domain" :: _ | "join" :: "Thread" :: _ -> true
  | ("sleep" | "sleepf") :: "Unix" :: _ -> true
  | f :: "Pool" :: _ -> List.mem f [ "run_list"; "map"; "with_pool" ]
  | "run" :: "Portfolio" :: _ -> true
  | _ -> false

let raising_heads = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

(* does evaluating [e] always end in an exception?  (used to exclude
   diverging branches from lock-balance joins) *)
let rec always_raises (e : expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
      match List.rev (norm p) with
      | f :: _ -> List.mem f raising_heads
      | [] -> false)
  | Texp_assert ({ exp_desc = Texp_construct (_, c, _); _ }, _) ->
      c.Types.cstr_name = "false"
  | Texp_sequence (_, b) | Texp_let (_, _, b) -> always_raises b
  | _ -> false

(* is [e]'s value freshly allocated (so private to whoever binds it)? *)
let fresh_alloc (e : expression) =
  match e.exp_desc with
  | Texp_record _ | Texp_array _ | Texp_constant _ | Texp_construct _ ->
      true
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
      match norm p with
      | [ "ref" ] | [ "Atomic"; "make" ] -> true
      | [ "Array"; ("make" | "init" | "copy" | "of_list" | "make_matrix") ]
        ->
          true
      | [ ("Queue" | "Hashtbl" | "Buffer" | "Stack"); "create" ] -> true
      | _ -> false)
  | _ -> false

let lock_name (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      match List.rev (norm p) with n :: _ -> n | [] -> "?")
  | Texp_field (_, _, lbl) -> lbl.Types.lbl_name
  | _ -> "?"

let held_mem st name = List.exists (fun l -> l.l_name = name) st.held
let held_names st = List.map (fun l -> l.l_name) st.held

(* the display name and guard status of the value an operation acts on *)
type status = SFresh | SSafe | SGuarded of string | SShared of string

let rec subject_status ctx st (e : expression) : status =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) ->
      if Hashtbl.mem ctx.safe_ids id then SSafe
      else (
        match Hashtbl.find_opt ctx.guards id with
        | Some m -> SGuarded m
        | None ->
            if ISet.mem id st.fresh then SFresh else SShared (Ident.name id))
  | Texp_ident (p, _, _) -> SShared (String.concat "." (norm p))
  | Texp_field (r, _, lbl) -> field_status ctx st r lbl
  | _ -> SShared "this value"

and field_status ctx st r (lbl : Types.label_description) =
  match annot_of_field ctx lbl with
  | Some (Guarded m) -> SGuarded m
  | Some Domain_safe -> SSafe
  | None -> (
      match subject_status ctx st r with
      | SFresh -> SFresh
      | SSafe -> SSafe
      | _ -> SShared lbl.Types.lbl_name)

let subject_name (e : expression) =
  match e.exp_desc with
  | Texp_field (_, _, lbl) -> lbl.Types.lbl_name
  | Texp_ident (Path.Pident id, _, _) -> Ident.name id
  | Texp_ident (p, _, _) -> String.concat "." (Typed_lint.path_parts p)
  | _ -> "value"

let check_status ctx mode st ~what ~name loc status =
  match status with
  | SFresh | SSafe -> ()
  | SGuarded m ->
      if not (held_mem st m) then
        report ctx loc "domain-unsafe"
          (Printf.sprintf
             "%s '%s' is guarded by mutex '%s' but this access is outside \
              its critical section"
             what name m)
  | SShared name ->
      if mode.crossing then
        report ctx loc "domain-unsafe"
          (Printf.sprintf
             "%s '%s' is reachable from another domain without \
              synchronization; make it Atomic.t, guard it with \
              [@rt.guarded_by \"<mutex>\"], or declare [@rt.domain_safe \
              \"reason\"]"
             what name)

let check_access ctx mode st ~what loc subject =
  check_status ctx mode st ~what ~name:(subject_name subject) loc
    (subject_status ctx st subject)

(* ------------------------------------------------------------------ *)
(* Phase A: collect bindings, annotations and crossing entry points     *)
(* ------------------------------------------------------------------ *)

let collect ctx str =
  let open Tast_iterator in
  let value_binding sub (vb : value_binding) =
    (match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) ->
        Hashtbl.replace ctx.bindings id vb.vb_expr;
        let attrs =
          vb.vb_attributes @ vb.vb_pat.pat_attributes
          @ vb.vb_expr.exp_attributes
        in
        (match annot_of_attrs ctx attrs with
        | Some (Guarded m) -> Hashtbl.replace ctx.guards id m
        | Some Domain_safe -> Hashtbl.replace ctx.safe_ids id ()
        | None -> ())
    | _ -> ());
    default_iterator.value_binding sub vb
  in
  let type_declaration sub (td : type_declaration) =
    (match td.typ_kind with
    | Ttype_record lds ->
        List.iter
          (fun (ld : label_declaration) ->
            let attrs = ld.ld_attributes @ ld.ld_type.ctyp_attributes in
            match annot_of_attrs ctx attrs with
            | Some a -> Hashtbl.replace ctx.field_annots ld.ld_name.txt a
            | None -> ())
          lds
    | _ -> ());
    default_iterator.type_declaration sub td
  in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_function _ when has_cross e -> ctx.cross <- e :: ctx.cross
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
      when is_spawn_head ctx (norm p) ->
        List.iter
          (fun (_, a) ->
            Option.iter (fun a -> ctx.spawn_args <- a :: ctx.spawn_args) a)
          args
    | _ -> ());
    default_iterator.expr sub e
  in
  let it = { default_iterator with value_binding; type_declaration; expr } in
  it.structure it str

(* resolve an expression flowing into a spawn site to the closure
   literals it contains: through let-bound idents, list literals and the
   usual list combinators ([List.map (fun seed () -> ...) seeds],
   [jobs @ [ ... ]]) *)
let rec closures_of ctx depth (e : expression) =
  if depth > 4 then []
  else
    match e.exp_desc with
    | Texp_function _ -> [ e ]
    | Texp_ident (Path.Pident id, _, _) -> (
        match Hashtbl.find_opt ctx.bindings id with
        | Some rhs when rhs != e -> closures_of ctx (depth + 1) rhs
        | _ -> [])
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
        let through =
          match List.rev (norm p) with
          | f :: _ ->
              List.mem f
                [
                  "map"; "mapi"; "rev_map"; "concat_map"; "filter_map";
                  "init"; "@"; "append"; "rev"; "filter"; "concat";
                ]
          | [] -> false
        in
        if through then
          List.concat_map
            (fun (_, a) ->
              match a with
              | Some a -> closures_of ctx (depth + 1) a
              | None -> [])
            args
        else []
    | Texp_construct (_, _, args) | Texp_tuple args ->
        List.concat_map (closures_of ctx (depth + 1)) args
    | Texp_array args -> List.concat_map (closures_of ctx (depth + 1)) args
    | Texp_let (_, _, body) -> closures_of ctx (depth + 1) body
    | _ -> []

(* ------------------------------------------------------------------ *)
(* The walker                                                           *)
(* ------------------------------------------------------------------ *)

(* immediate sub-expressions, for constructs with no special handling *)
let children (e : expression) =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ c -> acc := c :: !acc);
    }
  in
  Tast_iterator.default_iterator.expr it e;
  List.rev !acc

let add_edges ctx st name loc =
  List.iter
    (fun l -> ctx.lock_edges <- (l.l_name, name, loc) :: ctx.lock_edges)
    st.held

let taint_bare st =
  List.iter (fun l -> if l.l_kind = `Bare then l.l_tainted <- true) st.held

let rec walk ctx mode st (e : expression) : st =
  match e.exp_desc with
  | Texp_apply (hd, args) -> walk_apply ctx mode st e hd args
  | Texp_let (_, vbs, body) ->
      let st =
        List.fold_left
          (fun st (vb : value_binding) ->
            let st = walk ctx mode st vb.vb_expr in
            (match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) -> (
                if fresh_alloc vb.vb_expr then
                  { st with fresh = ISet.add id st.fresh }
                else
                  (* aliasing a guarded or safe value keeps its status *)
                  match subject_status ctx st vb.vb_expr with
                  | SGuarded m ->
                      Hashtbl.replace ctx.guards id m;
                      st
                  | SFresh -> { st with fresh = ISet.add id st.fresh }
                  | SSafe ->
                      Hashtbl.replace ctx.safe_ids id ();
                      st
                  | SShared _ -> st)
            | _ -> st))
          st vbs
      in
      walk ctx mode st body
  | Texp_sequence (a, b) ->
      let st = walk ctx mode st a in
      walk ctx mode st b
  | Texp_ifthenelse (c, bt, be) ->
      let st = walk ctx mode st c in
      let ends =
        (walk ctx mode st bt, always_raises bt)
        ::
        (match be with
        | Some be -> [ (walk ctx mode st be, always_raises be) ]
        | None -> [ (st, false) ])
      in
      join ctx e.exp_loc st ends
  | Texp_match (scrut, cases, _) ->
      let st = walk ctx mode st scrut in
      let ends =
        List.map
          (fun c ->
            Option.iter (fun g -> ignore (walk ctx mode st g)) c.c_guard;
            (walk ctx mode st c.c_rhs, always_raises c.c_rhs))
          cases
      in
      join ctx e.exp_loc st ends
  | Texp_try (body, cases) ->
      let st' = walk ctx mode st body in
      List.iter (fun c -> ignore (walk ctx mode st c.c_rhs)) cases;
      st'
  | Texp_while (c, b) ->
      let stc = walk ctx mode st c in
      let stb = walk ctx mode stc b in
      if held_names stb <> held_names stc then
        report ctx ~severity:Finding.Warning e.exp_loc "lock-unbalanced"
          "this loop body changes the set of held locks across iterations";
      stc
  | Texp_for (_, _, lo, hi, _, b) ->
      let st = walk ctx mode st lo in
      let st = walk ctx mode st hi in
      let stb = walk ctx mode st b in
      if held_names stb <> held_names st then
        report ctx ~severity:Finding.Warning e.exp_loc "lock-unbalanced"
          "this loop body changes the set of held locks across iterations";
      st
  | Texp_function { cases; _ } ->
      (* a lambda in walk position: assume it runs inline (the common
         higher-order-function case) under the current lock set.
         [@rt.cross_domain] lambdas escape to another domain instead and
         are analysed as crossing entry points. *)
      if not (has_cross e) then walk_cases ctx mode st cases;
      st
  | Texp_setfield (r, _, lbl, v) ->
      let st = walk ctx mode st r in
      let st = walk ctx mode st v in
      check_status ctx mode st ~what:"write to mutable field"
        ~name:lbl.Types.lbl_name e.exp_loc
        (field_status ctx st r lbl);
      st
  | Texp_field (r, _, lbl) ->
      let st = walk ctx mode st r in
      if lbl.Types.lbl_mut = Asttypes.Mutable then
        check_access ctx mode st ~what:"read of mutable field" e.exp_loc e;
      st
  | _ -> List.fold_left (walk ctx mode) st (children e)

(* walk each case body and flag locks still held when the function
   returns (relative to the lock set at its definition) *)
and walk_cases : 'k. ctx -> mode -> st -> 'k case list -> unit =
 fun ctx mode st cases ->
  List.iter
    (fun c ->
      Option.iter (fun g -> ignore (walk ctx mode st g)) c.c_guard;
      let st_end = walk ctx mode st c.c_rhs in
      if not (always_raises c.c_rhs) then
        List.iter
          (fun l ->
            if not (List.memq l st.held) then
              report ctx ~severity:Finding.Warning l.l_loc "lock-unbalanced"
                (Printf.sprintf
                   "mutex '%s' may still be held when this function \
                    returns; unlock it on every path or use Mutex.protect"
                   l.l_name))
          st_end.held)
    cases

and join ctx loc entry ends =
  let live = List.filter (fun (_, diverges) -> not diverges) ends in
  match live with
  | [] -> entry
  | (st0, _) :: rest ->
      let names (s, _) = List.sort compare (held_names s) in
      if List.for_all (fun s -> names s = names (st0, false)) rest then
        { st0 with fresh = entry.fresh }
      else begin
        report ctx ~severity:Finding.Warning loc "lock-unbalanced"
          "a lock is held on some branches of this expression but not on \
           others";
        (* continue with the locks common to every live branch *)
        let common =
          List.filter
            (fun l ->
              List.for_all (fun (s, _) -> List.memq l s.held) rest)
            st0.held
        in
        { held = common; fresh = entry.fresh }
      end

and walk_apply ctx mode st e hd args =
  let pos =
    List.filter_map
      (fun (lbl, a) ->
        match (lbl, a) with Asttypes.Nolabel, Some a -> Some a | _ -> None)
      args
  in
  let walk_args st =
    List.fold_left
      (fun st (_, a) ->
        match a with Some a -> walk ctx mode st a | None -> st)
      st args
  in
  match hd.exp_desc with
  | Texp_ident (p, _, _) -> (
      let comps = norm p in
      match (comps, pos) with
      | [ "Mutex"; "lock" ], m :: _ ->
          let name = lock_name m in
          if held_mem st name then
            report ctx ~severity:Finding.Warning e.exp_loc "lock-order"
              (Printf.sprintf
                 "mutex '%s' is locked while already held (self-deadlock)"
                 name);
          add_edges ctx st name e.exp_loc;
          let lk =
            { l_name = name; l_kind = `Bare; l_loc = e.exp_loc;
              l_tainted = false }
          in
          { st with held = lk :: st.held }
      | [ "Mutex"; "unlock" ], m :: _ -> (
          let name = lock_name m in
          match List.find_opt (fun l -> l.l_name = name) st.held with
          | None ->
              report ctx ~severity:Finding.Warning e.exp_loc
                "lock-unbalanced"
                (Printf.sprintf
                   "Mutex.unlock of '%s' without a matching Mutex.lock in \
                    this function"
                   name);
              st
          | Some l ->
              if l.l_kind = `Bare && l.l_tainted then
                report ctx ~severity:Finding.Warning l.l_loc
                  "lock-unbalanced"
                  (Printf.sprintf
                     "the critical section of '%s' opened here can raise \
                      before Mutex.unlock, leaving the mutex held; use \
                      Mutex.protect"
                     l.l_name);
              { st with held = List.filter (fun l' -> l' != l) st.held })
      | [ "Mutex"; "protect" ], m :: rest_pos ->
          let name = lock_name m in
          if held_mem st name then
            report ctx ~severity:Finding.Warning e.exp_loc "lock-order"
              (Printf.sprintf
                 "mutex '%s' is locked while already held (self-deadlock)"
                 name);
          add_edges ctx st name e.exp_loc;
          let lk =
            { l_name = name; l_kind = `Protected; l_loc = e.exp_loc;
              l_tainted = false }
          in
          (match rest_pos with
          | { exp_desc = Texp_function { cases; _ }; _ } :: _ ->
              walk_cases ctx mode { st with held = lk :: st.held } cases
          | _ -> ());
          st
      | [ "Condition"; "wait" ], [ _c; m ] ->
          let name = lock_name m in
          if not (held_mem st name) then
            report ctx ~severity:Finding.Warning e.exp_loc "lock-blocking"
              (Printf.sprintf
                 "Condition.wait on mutex '%s' which is not held here" name)
          else
            List.iter
              (fun l ->
                if l.l_name <> name then
                  report ctx ~severity:Finding.Warning e.exp_loc
                    "lock-blocking"
                    (Printf.sprintf
                       "Condition.wait releases only '%s' but '%s' stays \
                        held while this domain sleeps"
                       name l.l_name))
              st.held;
          st
      | comps, _ when is_blocking_head comps ->
          if st.held <> [] then
            report ctx ~severity:Finding.Warning e.exp_loc "lock-blocking"
              (Printf.sprintf
                 "blocking call %s while holding mutex%s %s"
                 (String.concat "." comps)
                 (if List.length st.held > 1 then "es" else "")
                 (String.concat ", "
                    (List.map (fun n -> "'" ^ n ^ "'") (held_names st))));
          walk_args st
      | comps, _ when is_spawn_head ctx comps ->
          (* closure arguments are analysed as crossing entry points in
             the dedicated pass; don't walk them inline *)
          st
      | [ (":=" | "!" | "incr" | "decr") ], subj :: _ when type_is_ref subj
        ->
          let what =
            match comps with
            | [ ":=" ] -> "write to ref"
            | [ "!" ] -> "read of ref"
            | _ -> "update of ref"
          in
          check_access ctx mode st ~what e.exp_loc subj;
          taint_if_raises st comps;
          walk_args st
      | [ m; _op ], _ when List.mem m containers ->
          List.iter
            (fun a ->
              if type_is_container_of a m then
                check_access ctx mode st
                  ~what:(String.concat "." comps ^ " on") e.exp_loc a)
            pos;
          taint_if_raises st comps;
          walk_args st
      | [ "Array"; op ], _ when List.mem op array_write_ops ->
          List.iter
            (fun a ->
              if type_is_array a then
                check_access ctx mode st ~what:"write to array" e.exp_loc a)
            pos;
          taint_if_raises st comps;
          walk_args st
      | _ -> (
          (* same-unit call from crossing code: walk the callee *)
          match p with
          | Path.Pident id
            when mode.crossing
                 && (not (ISet.mem id mode.visited))
                 && Hashtbl.mem ctx.bindings id -> (
              let st = walk_args st in
              taint_if_raises st comps;
              match Hashtbl.find ctx.bindings id with
              | { exp_desc = Texp_function _; _ } as fn ->
                  let mode' =
                    { mode with visited = ISet.add id mode.visited }
                  in
                  ignore (walk ctx mode' st fn);
                  st
              | _ -> st)
          | _ ->
              let st = walk_args st in
              taint_if_raises st comps;
              st))
  | _ ->
      let st = walk ctx mode st hd in
      let st = walk_args st in
      taint_bare st;
      st

and taint_if_raises st comps = if not (non_raising comps) then taint_bare st

(* ------------------------------------------------------------------ *)
(* Pass 1: lexical walk of every definition in the unit                 *)
(* ------------------------------------------------------------------ *)

let mode0 = { crossing = false; visited = ISet.empty }
let st0 = { held = []; fresh = ISet.empty }

let rec walk_structure ctx (str : structure) =
  List.iter
    (fun (si : structure_item) ->
      match si.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter (fun vb -> ignore (walk ctx mode0 st0 vb.vb_expr)) vbs
      | Tstr_eval (e, _) -> ignore (walk ctx mode0 st0 e)
      | Tstr_module mb -> walk_module ctx mb.mb_expr
      | Tstr_recmodule mbs ->
          List.iter (fun mb -> walk_module ctx mb.mb_expr) mbs
      | Tstr_include incl -> walk_module ctx incl.incl_mod
      | _ -> ())
    str.str_items

and walk_module ctx (me : module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> walk_structure ctx str
  | Tmod_constraint (me, _, _, _) -> walk_module ctx me
  | Tmod_functor (_, me) -> walk_module ctx me
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Pass 2: crossing entry points                                        *)
(* ------------------------------------------------------------------ *)

let analyze_crossing ctx =
  let entries =
    ctx.cross @ List.concat_map (closures_of ctx 0) ctx.spawn_args
  in
  let seen = Hashtbl.create 16 in
  let entries =
    List.filter
      (fun (c : expression) ->
        if Hashtbl.mem seen c.exp_loc then false
        else begin
          Hashtbl.add seen c.exp_loc ();
          true
        end)
      entries
  in
  let mode = { crossing = true; visited = ISet.empty } in
  List.iter
    (fun (c : expression) ->
      match c.exp_desc with
      | Texp_function { cases; _ } -> walk_cases ctx mode st0 cases
      | _ -> ())
    entries

(* ------------------------------------------------------------------ *)
(* Lock-order cycle detection                                           *)
(* ------------------------------------------------------------------ *)

let lock_order_findings ctx =
  List.iter
    (fun (a, b, loc) ->
      if
        a <> b
        && List.exists (fun (a', b', _) -> a' = b && b' = a) ctx.lock_edges
      then
        report ctx ~severity:Finding.Warning loc "lock-order"
          (Printf.sprintf
             "mutex '%s' is acquired while holding '%s', but the opposite \
              order also occurs in this module (deadlock risk)"
             b a))
    ctx.lock_edges

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

let check ~file ~modname (str : structure) =
  let ctx =
    {
      file;
      modname;
      found = [];
      guards = Hashtbl.create 16;
      safe_ids = Hashtbl.create 16;
      bindings = Hashtbl.create 64;
      field_annots = Hashtbl.create 16;
      lock_edges = [];
      cross = [];
      spawn_args = [];
    }
  in
  collect ctx str;
  walk_structure ctx str;
  analyze_crossing ctx;
  lock_order_findings ctx;
  List.sort_uniq Finding.compare ctx.found
