(** rt-lint engine: repo-specific static analysis over the OCaml parsetree.

    The rules enforced here (float-comparison hygiene, output purity,
    raise discipline, interface coverage, physical-comparison bans) are
    documented in docs/LINT.md.  Everything is syntactic: files are parsed
    with compiler-libs and walked with an [Ast_iterator]; no typing pass
    runs, so float detection relies on {!Sig_table}. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;  (** rule id, e.g. ["float-cmp"] *)
  msg : string;
}

val to_string : finding -> string
(** Render as [file:line:col: [rule-id] message]. *)

val compare_finding : finding -> finding -> int
(** Order by file, then line, column and rule id. *)

val lint_file : ?as_lib:bool -> string -> finding list
(** Parse and lint one [.ml] or [.mli] file.  [as_lib] forces whether the
    lib-only rules (no-print, no-raise) apply; by default it is inferred
    from the path containing a [lib] component.  Unparseable files yield a
    single [parse] finding rather than an exception. *)

val missing_mli : string -> finding option
(** [missing_mli path] is a [missing-mli] finding when [path] is a [.ml]
    under [lib/] with no sibling [.mli]. *)

val lint_paths : string list -> finding list
(** Walk the given files/directories (skipping [_build], [.git] and
    [lint_fixtures]), lint every [.ml]/[.mli], and add interface-coverage
    findings.  Results are sorted. *)
