(** rt-lint engine: repo-specific static analysis for the scheduler.

    v2 runs two passes per file: a syntactic pass over the parsetree
    (output purity, raise discipline, suppression handling) and a typed
    pass over the typedtree (float-comparison hygiene, polymorphic
    comparison at float-bearing types, determinism, and the
    units-of-measure analysis — see {!Typed_lint} and docs/UNITS.md).
    The typedtree comes from dune's [.cmt] files when available, or a
    standalone typing run for self-contained files. *)

type finding = Finding.t = {
  file : string;
  line : int;
  col : int;
  rule : string;  (** rule id, e.g. ["float-cmp"] *)
  severity : Finding.severity;
  msg : string;
}

val to_string : finding -> string
(** Render as [file:line:col: [rule-id] message]. *)

val compare_finding : finding -> finding -> int
(** Order by file, then line, column and rule id. *)

val lint_file : ?as_lib:bool -> string -> finding list
(** Parse, type (against the standard library alone) and lint one [.ml]
    or [.mli] file.  Dimension annotations are read from the file's own
    [[@@rt.dim]] bindings and a sibling [.mli] when one exists; hotness
    for the {!Hot_lint} rules is likewise resolved from the unit itself
    plus its sibling interface.  [as_lib]
    forces whether the lib-only rules (no-print, no-raise, wallclock,
    ambient-random) apply; by default it is inferred from the path
    containing a [lib] component.  Unparseable files yield a single
    [parse] finding, untypeable ones a [typecheck] finding, rather than
    an exception. *)

val missing_mli : string -> finding option
(** [missing_mli path] is a [missing-mli] finding when [path] is a [.ml]
    under [lib/] with no sibling [.mli]. *)

val lint_paths : ?require_cmts:bool -> string list -> finding list
(** Walk the given files/directories (skipping [_build], [.git] and
    [lint_fixtures]), build the dimension table from every [.mli] found,
    and lint every [.ml]/[.mli].  Typedtrees are read from [.cmt] files
    found under the roots themselves or under [_build/default/<root>];
    sources without a [.cmt] fall back to standalone typing, silently
    skipping the typed rules when that fails — unless [require_cmts] is
    set, in which case the typing failure is reported as a [typecheck]
    finding.  A prepass harvests [[@rt.hot]]/[[@rt.cold]] marks from
    every interface and builds the cross-unit call graph, so hotness
    propagates between compilation units (docs/PERF_LINT.md).  Results
    are sorted. *)

val dim_coverage : string list -> under:string list -> Dim_table.coverage
(** Walk the given roots, build the dimension table, and report
    annotation coverage for float-valued declarations in interfaces
    whose path starts with one of [under]. *)
