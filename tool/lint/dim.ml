(* Dimension (units-of-measure) algebra for the rt-lint dim analysis.

   A dimension is an integer exponent vector over the three base units the
   scheduling domain needs: seconds (time), cycles (work) and joules
   (energy).  The derived quantities the paper manipulates are products of
   these: speed = cycles/second, watts = joules/second, and the rejection
   penalty is measured in energy units (the paper's objective sums energy
   and penalty, so they must be commensurate — see docs/UNITS.md). *)

type t = { second : int; cycle : int; joule : int }

type v = Any | Unknown | Dim of t

let dimensionless = { second = 0; cycle = 0; joule = 0 }
let seconds = { dimensionless with second = 1 }
let cycles = { dimensionless with cycle = 1 }
let joules = { dimensionless with joule = 1 }
let speed = { dimensionless with cycle = 1; second = -1 }
let watts = { dimensionless with joule = 1; second = -1 }

let names =
  [
    ("dimensionless", dimensionless);
    ("1", dimensionless);
    ("seconds", seconds);
    ("cycles", cycles);
    ("joules", joules);
    (* rejection penalties are energy-commensurate: the objective is
       energy(accepted) + penalty(rejected) *)
    ("penalty", joules);
    ("speed", speed);
    ("watts", watts);
    ("hertz", { dimensionless with second = -1 });
  ]

let equal a b = a.second = b.second && a.cycle = b.cycle && a.joule = b.joule

let mul a b =
  {
    second = a.second + b.second;
    cycle = a.cycle + b.cycle;
    joule = a.joule + b.joule;
  }

let div a b =
  {
    second = a.second - b.second;
    cycle = a.cycle - b.cycle;
    joule = a.joule - b.joule;
  }

let pow a n =
  { second = a.second * n; cycle = a.cycle * n; joule = a.joule * n }

let to_string d =
  (* preferred names first: every alias list entry maps a spelling to a
     vector, so search for the first canonical (non-alias) match *)
  let canonical =
    [
      ("dimensionless", dimensionless);
      ("seconds", seconds);
      ("cycles", cycles);
      ("joules", joules);
      ("speed", speed);
      ("watts", watts);
    ]
  in
  match List.find_opt (fun (_, v) -> equal v d) canonical with
  | Some (n, _) -> n
  | None ->
      let base =
        [ ("seconds", d.second); ("cycles", d.cycle); ("joules", d.joule) ]
      in
      let factors =
        List.filter_map
          (fun (n, e) ->
            if e = 0 then None
            else if e = 1 then Some n
            else Some (Printf.sprintf "%s^%d" n e))
          base
      in
      String.concat "*" factors

(* ------------------------------------------------------------------ *)
(* Parsing "joules", "cycles/seconds", "watts*seconds", "seconds^-1" …  *)
(* ------------------------------------------------------------------ *)

type token = Name of string | Star | Slash | Caret | Int of int

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' -> go (i + 1) acc
      | '*' -> go (i + 1) (Star :: acc)
      | '/' -> go (i + 1) (Slash :: acc)
      | '^' -> go (i + 1) (Caret :: acc)
      | c when (c >= 'a' && c <= 'z') || c = '_' ->
          let j = ref i in
          while
            !j < n
            && ((s.[!j] >= 'a' && s.[!j] <= 'z')
               || (s.[!j] >= '0' && s.[!j] <= '9')
               || s.[!j] = '_')
          do
            incr j
          done;
          go !j (Name (String.sub s i (!j - i)) :: acc)
      | c when (c >= '0' && c <= '9') || c = '-' ->
          let j = ref (i + 1) in
          while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
            incr j
          done;
          let lit = String.sub s i (!j - i) in
          (match int_of_string_opt lit with
          | Some k -> go !j (Int k :: acc)
          | None -> Error (Printf.sprintf "bad exponent %S" lit))
      | c -> Error (Printf.sprintf "unexpected character %C" c)
  in
  go 0 []

let of_string s =
  let ( let* ) = Result.bind in
  let* toks = tokenize s in
  let term = function
    | Name "1" :: rest -> Ok (dimensionless, rest)
    | Name n :: rest -> (
        match List.assoc_opt n names with
        | Some d -> (
            match rest with
            | Caret :: Int k :: rest' -> Ok (pow d k, rest')
            | Caret :: _ -> Error "expected integer after ^"
            | _ -> Ok (d, rest))
        | None -> Error (Printf.sprintf "unknown dimension %S" n))
    | Int 1 :: rest -> Ok (dimensionless, rest)
    | _ -> Error "expected a dimension name"
  in
  let rec rest_of acc = function
    | [] -> Ok acc
    | Star :: toks ->
        let* t, toks = term toks in
        rest_of (mul acc t) toks
    | Slash :: toks ->
        let* t, toks = term toks in
        rest_of (div acc t) toks
    | _ -> Error "expected * or / between dimensions"
  in
  if String.trim s = "" then Error "empty dimension annotation"
  else
    let* t, toks = term toks in
    rest_of t toks

(* ------------------------------------------------------------------ *)
(* The value lattice used during inference                             *)
(* ------------------------------------------------------------------ *)

let v_to_string = function
  | Any -> "any"
  | Unknown -> "unknown"
  | Dim d -> to_string d

(* Combine the dimensions of two operands of an additive operation
   (+., -., comparison): [Any] (a bare literal) unifies with anything,
   [Unknown] disables the check, and two [Dim]s must agree. *)
let unify a b =
  match (a, b) with
  | Any, x | x, Any -> Ok x
  | Unknown, _ | _, Unknown -> Ok Unknown
  | Dim da, Dim db -> if equal da db then Ok a else Error (da, db)

let v_mul a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> Unknown
  | Any, x | x, Any -> x
  | Dim da, Dim db -> Dim (mul da db)

let v_div a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> Unknown
  | Any, Any -> Any
  | Any, Dim db -> Dim (div dimensionless db)
  | Dim da, Any -> Dim da
  | Dim da, Dim db -> Dim (div da db)

(* Join for the two branches of an if/match producing a float: keep the
   dimension only when every branch agrees. *)
let join a b =
  match (a, b) with
  | Any, x | x, Any -> x
  | Dim da, Dim db when equal da db -> a
  | _ -> Unknown
