(* rt-lint engine, v2: a syntactic pass over the parsetree for the purity
   rules plus a typed pass over the typedtree (see Typed_lint) for
   everything that needs real type information.  PR 1's Sig_table name
   heuristics are gone: float detection and the dimension analysis use the
   compiler's own inference, via the .cmt files dune produces (repo walk)
   or a standalone typing run (self-contained fixtures). *)

type finding = Finding.t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : Finding.severity;
  msg : string;
}

let to_string = Finding.to_string
let compare_finding = Finding.compare

(* ------------------------------------------------------------------ *)
(* Suppression pragmas (comment-based, line-scoped)                     *)
(* ------------------------------------------------------------------ *)

(* A suppression is a comment of the form

     (* lint: allow-<rule> "reason" *)

   on the finding's own line or the line directly above it.  The reason
   string is mandatory; a pragma without one is itself a finding. *)

type pragmas = {
  allows : (int * string) list; (* (line, rule) *)
  raise_docs : int list;        (* lines whose text mentions @raise *)
  malformed : (int * int) list; (* (line, col) of a reason-less pragma *)
}

let is_rule_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

(* Parse one [lint:] pragma starting at [start] (the index of the 'l' of
   "lint:").  Returns [Ok rule] or [Error ()] for a malformed pragma. *)
let parse_pragma line start =
  let n = String.length line in
  let i = ref (start + 5) in
  while !i < n && line.[!i] = ' ' do incr i done;
  let prefix = "allow-" in
  let plen = String.length prefix in
  if !i + plen > n || String.sub line !i plen <> prefix then Error ()
  else begin
    i := !i + plen;
    let rule_start = !i in
    while !i < n && is_rule_char line.[!i] do incr i done;
    if !i = rule_start then Error ()
    else begin
      let rule = String.sub line rule_start (!i - rule_start) in
      while !i < n && line.[!i] = ' ' do incr i done;
      if !i >= n || line.[!i] <> '"' then Error ()
      else begin
        let reason_start = !i + 1 in
        i := reason_start;
        while !i < n && line.[!i] <> '"' do incr i done;
        if !i >= n || !i = reason_start then Error () else Ok rule
      end
    end
  end

let contains_at line i sub =
  let n = String.length sub in
  i + n <= String.length line && String.sub line i n = sub

let scan_pragmas path =
  let allows = ref [] and raise_docs = ref [] and malformed = ref [] in
  match open_in path with
  | exception Sys_error _ ->
      { allows = []; raise_docs = []; malformed = [] }
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let lnum = ref 0 in
          try
            while true do
              let line = input_line ic in
              incr lnum;
              String.iteri
                (fun i c ->
                  if c = '@' && contains_at line i "@raise" then
                    raise_docs := !lnum :: !raise_docs
                  else if c = 'l' && contains_at line i "lint:" then
                    match parse_pragma line i with
                    | Ok rule -> allows := (!lnum, rule) :: !allows
                    | Error () -> malformed := (!lnum, i) :: !malformed)
                line
            done;
            assert false (* lint: allow-no-raise "input_line loop exits via End_of_file" *)
          with End_of_file ->
            {
              allows = !allows;
              raise_docs = !raise_docs;
              malformed = !malformed;
            })

(* ------------------------------------------------------------------ *)
(* Suppression attributes: [@rt.lint.ignore "rule"]                     *)
(* ------------------------------------------------------------------ *)

(* The in-source alternative to pragmas: an attribute on an expression,
   let-binding, val declaration, or the whole module ([@@@rt.lint.ignore])
   silences the named rule inside the attributed node's span.  The payload
   must name exactly one rule, so a suppression never blankets more than
   one class of finding. *)

type span = { rule : string; from_line : int; to_line : int }

let span_of_attr (loc : Location.t) rule =
  {
    rule;
    from_line = loc.loc_start.Lexing.pos_lnum;
    to_line = loc.loc_end.Lexing.pos_lnum;
  }

open Parsetree

let ignore_spans_of_attrs ~host_loc attrs (spans, bad) =
  List.fold_left
    (fun (spans, bad) (a : attribute) ->
      if a.attr_name.txt <> "rt.lint.ignore" then (spans, bad)
      else
        match Dim_table.string_payload a.attr_payload with
        | Some rule -> (span_of_attr host_loc rule :: spans, bad)
        | None -> (spans, a.attr_loc :: bad))
    (spans, bad) attrs

(* ------------------------------------------------------------------ *)
(* Syntactic rule predicates                                            *)
(* ------------------------------------------------------------------ *)

(* [Longident.flatten]/[last] raise on functor applications ([F(X).f]);
   those paths never name a print or failure function, so fold them to
   harmless values. *)
let flatten lid = try Longident.flatten lid with _ -> []

let is_print path =
  match path with
  | [ "Printf"; ("printf" | "eprintf") ] -> true
  | [ "Format"; ("printf" | "eprintf" | "print_string" | "print_newline"
                | "print_float" | "print_int") ] ->
      true
  | [ n ] | [ "Stdlib"; n ] ->
      String.length n > 6
      && (String.sub n 0 6 = "print_" || String.sub n 0 6 = "prerr_")
  | _ -> false

let is_failwith path =
  match path with [ "failwith" ] | [ "Stdlib"; "failwith" ] -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* The syntactic per-file pass                                          *)
(* ------------------------------------------------------------------ *)

type ctx = {
  path : string;
  in_lib : bool; (* no-print / no-raise only bind inside lib/ *)
  mutable found : Finding.t list;
  mutable spans : span list;
  mutable bad_attrs : Location.t list;
}

let report ctx (loc : Location.t) rule msg =
  ctx.found <- Finding.of_location ~file:ctx.path ~rule ~msg loc :: ctx.found

let check_open ctx (loc : Location.t) (lid : Longident.t) =
  match lid with
  | Longident.Lident "Stdlib" ->
      report ctx loc "open-stdlib"
        "open Stdlib shadows the whole standard library namespace; qualify \
         instead"
  | _ -> ()

let check_expr ctx (e : expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      let path = flatten txt in
      if ctx.in_lib && is_failwith path then
        report ctx e.pexp_loc "no-raise"
          "failwith in lib/ needs an @raise doc or an allow-no-raise pragma"
  | Pexp_ident { txt; _ } when ctx.in_lib ->
      let path = flatten txt in
      if is_print path then
        report ctx e.pexp_loc "no-print"
          (Printf.sprintf
             "%s in lib/; all output must go through Prelude.Tablefmt or the \
              expkit runner"
             (String.concat "." path))
  | Pexp_assert
      { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None);
        _ }
    when ctx.in_lib ->
      report ctx e.pexp_loc "no-raise"
        "assert false in lib/ needs an @raise doc or an allow-no-raise pragma"
  | _ -> ()

let whole_file_span rule = { rule; from_line = 1; to_line = max_int }

let iterator ctx =
  let open Ast_iterator in
  let add_spans ~host_loc attrs =
    let spans, bad =
      ignore_spans_of_attrs ~host_loc attrs (ctx.spans, ctx.bad_attrs)
    in
    ctx.spans <- spans;
    ctx.bad_attrs <- bad
  in
  {
    default_iterator with
    expr =
      (fun it e ->
        check_expr ctx e;
        add_spans ~host_loc:e.pexp_loc e.pexp_attributes;
        default_iterator.expr it e);
    value_binding =
      (fun it vb ->
        add_spans ~host_loc:vb.pvb_loc vb.pvb_attributes;
        default_iterator.value_binding it vb);
    value_description =
      (fun it vd ->
        add_spans ~host_loc:vd.pval_loc vd.pval_attributes;
        default_iterator.value_description it vd);
    structure_item =
      (fun it item ->
        (match item.pstr_desc with
        | Pstr_attribute a when a.attr_name.txt = "rt.lint.ignore" -> (
            match Dim_table.string_payload a.attr_payload with
            | Some rule -> ctx.spans <- whole_file_span rule :: ctx.spans
            | None -> ctx.bad_attrs <- a.attr_loc :: ctx.bad_attrs)
        | _ -> ());
        default_iterator.structure_item it item);
    signature_item =
      (fun it item ->
        (match item.psig_desc with
        | Psig_attribute a when a.attr_name.txt = "rt.lint.ignore" -> (
            match Dim_table.string_payload a.attr_payload with
            | Some rule -> ctx.spans <- whole_file_span rule :: ctx.spans
            | None -> ctx.bad_attrs <- a.attr_loc :: ctx.bad_attrs)
        | _ -> ());
        default_iterator.signature_item it item);
    open_declaration =
      (fun it od ->
        (match od.popen_expr.pmod_desc with
        | Pmod_ident { txt; _ } -> check_open ctx od.popen_loc txt
        | _ -> ());
        default_iterator.open_declaration it od);
    open_description =
      (fun it od ->
        check_open ctx od.popen_loc od.popen_expr.txt;
        default_iterator.open_description it od);
  }

(* ------------------------------------------------------------------ *)
(* Suppression filtering                                                *)
(* ------------------------------------------------------------------ *)

let suppressed pragmas spans (f : Finding.t) =
  List.exists
    (fun (l, r) -> r = f.rule && (l = f.line || l = f.line - 1))
    pragmas.allows
  || (f.rule = "no-raise"
     && List.exists
          (fun l -> l = f.line || l = f.line - 1 || l = f.line - 2)
          pragmas.raise_docs)
  || List.exists
       (fun s ->
         s.rule = f.rule && s.from_line <= f.line && f.line <= s.to_line)
       spans

(* ------------------------------------------------------------------ *)
(* Per-file driver                                                      *)
(* ------------------------------------------------------------------ *)

let has_suffix s suf =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

let path_components path = String.split_on_char '/' path

let under_lib path = List.mem "lib" (path_components path)

let is_float_cmp_module path =
  match Filename.basename path with
  | "float_cmp.ml" | "float_cmp.mli" -> true
  | _ -> false

(* How the typed pass obtains a typedtree for a [.ml] file. *)
type typed_source =
  | From_cmt of string  (** read this .cmt file *)
  | Standalone  (** type against the stdlib; failures are findings *)
  | Best_effort  (** try standalone; skip the typed pass on failure *)
  | Untyped  (** syntactic pass only *)

let typed_findings ~dims ~hot ~source ~in_lib ~check_floats path parsetree =
  let modname = Dim_table.modname_of_path path in
  (* with no repo-wide hotset (the standalone fixture path), hotness is
     resolved from this unit alone: its sibling interface's marks, its
     own [@rt.hot] let bindings, and its intra-unit call edges *)
  let hot_findings str =
    match hot with
    | Some hotset -> Hot_lint.check ~hot:hotset ~file:path ~modname str
    | None ->
        let marks = Hot_lint.create_marks () in
        let mli = path ^ "i" in
        let mark_errs =
          if Sys.file_exists mli then Hot_lint.add_interface marks mli
          else []
        in
        let graph = Hot_lint.create_graph () in
        Hot_lint.scan_unit graph ~modname str;
        let hotset = Hot_lint.resolve marks graph in
        mark_errs @ Hot_lint.check ~hot:hotset ~file:path ~modname str
  in
  let run str =
    Typed_lint.check ~dims ~file:path ~modname ~in_lib ~check_floats str
    @ Conc_lint.check ~file:path ~modname str
    @ hot_findings str
  in
  match source with
  | Untyped -> []
  | From_cmt cmt -> (
      match Typed_lint.read_cmt cmt with
      | Ok str -> run str
      | Error msg -> [ { file = path; line = 1; col = 0; rule = "no-cmt"; severity = Finding.Error; msg } ])
  | Standalone | Best_effort -> (
      match parsetree with
      | None -> []
      | Some pt -> (
          match Typed_lint.type_standalone pt with
          | Ok str -> run str
          | Error msg ->
              if source = Standalone then
                [ { file = path; line = 1; col = 0; rule = "typecheck"; severity = Finding.Error; msg } ]
              else []))

let lint_file_with ~dims ?hot ~source ?as_lib path =
  let in_lib = match as_lib with Some b -> b | None -> under_lib path in
  let pragmas = scan_pragmas path in
  let ctx = { path; in_lib; found = []; spans = []; bad_attrs = [] } in
  let parsetree = ref None in
  (try
     let it = iterator ctx in
     if has_suffix path ".mli" then
       it.Ast_iterator.signature it
         (Pparse.parse_interface ~tool_name:"rt-lint" path)
     else begin
       let pt = Pparse.parse_implementation ~tool_name:"rt-lint" path in
       parsetree := Some pt;
       it.Ast_iterator.structure it pt
     end
   with exn ->
     let msg =
       match exn with
       | Syntaxerr.Error _ -> "syntax error"
       | exn -> Printexc.to_string exn
     in
     ctx.found <-
       { file = path; line = 1; col = 0; rule = "parse"; severity = Finding.Error; msg } :: ctx.found);
  let typed =
    if has_suffix path ".mli" then []
    else
      typed_findings ~dims ~hot ~source ~in_lib
        ~check_floats:(not (is_float_cmp_module path))
        path !parsetree
  in
  let bad =
    List.map
      (fun (loc : Location.t) ->
        Finding.of_location ~file:path ~rule:"suppression"
          ~msg:
            "malformed suppression: [@rt.lint.ignore] expects a string \
             naming exactly one rule"
          loc)
      ctx.bad_attrs
    @ List.map
        (fun (line, col) ->
          {
            file = path;
            line;
            col;
            rule = "suppression";
            severity = Finding.Error;
            msg =
              "malformed lint pragma: expected (* lint: allow-<rule> \
               \"reason\" *) with a non-empty reason";
          })
        pragmas.malformed
  in
  let keep f = not (suppressed pragmas ctx.spans f) in
  List.sort Finding.compare (bad @ List.filter keep (ctx.found @ typed))

let sibling_dims path =
  let dims = Dim_table.create () in
  let mli = if has_suffix path ".ml" then path ^ "i" else path in
  let errs = if Sys.file_exists mli then Dim_table.add_interface dims mli else [] in
  (dims, errs)

let lint_file ?as_lib path =
  (* the standalone entry point used by the tests: dimension annotations
     come from the file's own [@@rt.dim] bindings plus a sibling .mli *)
  let dims, dim_errs = sibling_dims path in
  List.sort Finding.compare
    (dim_errs @ lint_file_with ~dims ~source:Standalone ?as_lib path)

(* ------------------------------------------------------------------ *)
(* Interface coverage                                                   *)
(* ------------------------------------------------------------------ *)

let missing_mli path =
  if
    has_suffix path ".ml"
    && under_lib path
    && not (Sys.file_exists (path ^ "i"))
  then
    Some
      {
        file = path;
        line = 1;
        col = 0;
        rule = "missing-mli";
        severity = Finding.Error;
        msg = "every module under lib/ must ship an interface (.mli)";
      }
  else None

(* ------------------------------------------------------------------ *)
(* Walking                                                              *)
(* ------------------------------------------------------------------ *)

let skip_dirs = [ "_build"; ".git"; "lint_fixtures" ]

let rec walk_suffixes sufs acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc name ->
           if List.mem name skip_dirs then acc
           else walk_suffixes sufs acc (Filename.concat path name))
         acc
  else if List.exists (has_suffix path) sufs then path :: acc
  else acc

let walk acc path = walk_suffixes [ ".ml"; ".mli" ] acc path

(* Index the .cmt files dune produced for the given source roots: the
   roots themselves (when linting from inside _build, where the .objs
   directories sit next to the copied sources) and _build/default/<root>
   (when linting a source checkout).  Keys are the source paths recorded
   by the compiler, which dune passes relative to the build root — the
   same spelling the walk produces. *)
let cmt_index roots =
  let tbl = Hashtbl.create 64 in
  let add_root root =
    List.iter
      (fun cmt ->
        match Cmt_format.read_cmt cmt with
        | { Cmt_format.cmt_annots = Cmt_format.Implementation _;
            cmt_sourcefile = Some src;
            _;
          } ->
            if not (Hashtbl.mem tbl src) then Hashtbl.add tbl src cmt
        | _ -> ()
        | exception _ -> ())
      (walk_suffixes [ ".cmt" ] [] root)
  in
  List.iter
    (fun root ->
      (* a single-file root carries no .cmt itself; its directory does *)
      let root =
        if Sys.file_exists root && not (Sys.is_directory root) then
          Filename.dirname root
        else root
      in
      if Sys.file_exists root then add_root root;
      let built = Filename.concat "_build/default" root in
      if Sys.file_exists built then add_root built)
    roots;
  tbl

(* ------------------------------------------------------------------ *)
(* The repo walk                                                        *)
(* ------------------------------------------------------------------ *)

(* when invoked on individual .ml files, their sibling interfaces still
   carry the annotations — harvest them even though they are not linted *)
let interfaces_of files =
  List.filter_map
    (fun f ->
      if has_suffix f ".mli" then Some f
      else
        let mli = f ^ "i" in
        if (not (List.mem mli files)) && Sys.file_exists mli then Some mli
        else None)
    files
  |> List.sort_uniq compare

let build_dim_table files =
  let dims = Dim_table.create () in
  let errors =
    List.concat_map
      (fun f -> Dim_table.add_interface dims f)
      (interfaces_of files)
  in
  (dims, errors)

(* The hotness prepass: harvest [@rt.hot]/[@rt.cold] marks from every
   interface, build the intra-repo call graph from every typeable unit,
   and resolve once so hotness propagates across compilation units.  The
   typedtrees are re-read by the per-file pass afterwards; the walk is
   cheap next to the typing they both rely on. *)
let build_hotset files cmts =
  let marks = Hot_lint.create_marks () in
  let errors =
    List.concat_map
      (fun f -> Hot_lint.add_interface marks f)
      (interfaces_of files)
  in
  let graph = Hot_lint.create_graph () in
  List.iter
    (fun f ->
      if not (has_suffix f ".mli") then begin
        let modname = Dim_table.modname_of_path f in
        let str =
          match Hashtbl.find_opt cmts f with
          | Some cmt -> (
              match Typed_lint.read_cmt cmt with
              | Ok str -> Some str
              | Error _ -> None)
          | None -> (
              match Pparse.parse_implementation ~tool_name:"rt-lint" f with
              | exception _ -> None
              | pt -> (
                  match Typed_lint.type_standalone pt with
                  | Ok str -> Some str
                  | Error _ -> None))
        in
        Option.iter (Hot_lint.scan_unit graph ~modname) str
      end)
    files;
  (Hot_lint.resolve marks graph, errors)

let lint_paths ?(require_cmts = false) paths =
  let files = List.fold_left walk [] paths in
  let dims, dim_errors = build_dim_table files in
  let cmts = cmt_index paths in
  let hotset, hot_errors = build_hotset files cmts in
  let findings =
    List.concat_map
      (fun f ->
        let source =
          if has_suffix f ".mli" then Untyped
          else
            match Hashtbl.find_opt cmts f with
            | Some cmt -> From_cmt cmt
            | None when require_cmts ->
                (* a source no build rule covers would silently lose the
                   typed rules; make that visible *)
                Standalone
            | None -> Best_effort
        in
        let mli = match missing_mli f with Some x -> [ x ] | None -> [] in
        mli @ lint_file_with ~dims ~hot:hotset ~source f)
      files
  in
  List.sort Finding.compare (dim_errors @ hot_errors @ findings)

let dim_coverage paths ~under =
  let files = List.fold_left walk [] paths in
  let dims, _ = build_dim_table files in
  Dim_table.coverage dims ~under
