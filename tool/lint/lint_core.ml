(* rt-lint engine: parse .ml/.mli files with compiler-libs and walk the
   parsetree with an [Ast_iterator], enforcing the repository contracts
   described in docs/LINT.md.  Purely syntactic — no typing pass. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.msg

let compare_finding a b =
  match compare a.file b.file with
  | 0 -> (
      match compare a.line b.line with
      | 0 -> ( match compare a.col b.col with 0 -> compare a.rule b.rule | c -> c)
      | c -> c)
  | c -> c

(* ------------------------------------------------------------------ *)
(* Suppression pragmas                                                 *)
(* ------------------------------------------------------------------ *)

(* A suppression is a comment of the form

     (* lint: allow-<rule> "reason" *)

   on the finding's own line or the line directly above it.  The reason
   string is mandatory; a pragma without one is itself a finding. *)

type pragmas = {
  allows : (int * string) list; (* (line, rule) *)
  raise_docs : int list;        (* lines whose text mentions @raise *)
  malformed : (int * int) list; (* (line, col) of a reason-less pragma *)
}

let is_rule_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

(* Parse one [lint:] pragma starting at [start] (the index of the 'l' of
   "lint:").  Returns [Ok rule] or [Error ()] for a malformed pragma. *)
let parse_pragma line start =
  let n = String.length line in
  let i = ref (start + 5) in
  while !i < n && line.[!i] = ' ' do incr i done;
  let prefix = "allow-" in
  let plen = String.length prefix in
  if !i + plen > n || String.sub line !i plen <> prefix then Error ()
  else begin
    i := !i + plen;
    let rule_start = !i in
    while !i < n && is_rule_char line.[!i] do incr i done;
    if !i = rule_start then Error ()
    else begin
      let rule = String.sub line rule_start (!i - rule_start) in
      while !i < n && line.[!i] = ' ' do incr i done;
      if !i >= n || line.[!i] <> '"' then Error ()
      else begin
        let reason_start = !i + 1 in
        i := reason_start;
        while !i < n && line.[!i] <> '"' do incr i done;
        if !i >= n || !i = reason_start then Error () else Ok rule
      end
    end
  end

let contains_at line i sub =
  let n = String.length sub in
  i + n <= String.length line && String.sub line i n = sub

let scan_pragmas path =
  let allows = ref [] and raise_docs = ref [] and malformed = ref [] in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lnum = ref 0 in
      try
        while true do
          let line = input_line ic in
          incr lnum;
          String.iteri
            (fun i c ->
              if c = '@' && contains_at line i "@raise" then
                raise_docs := !lnum :: !raise_docs
              else if c = 'l' && contains_at line i "lint:" then
                match parse_pragma line i with
                | Ok rule -> allows := (!lnum, rule) :: !allows
                | Error () -> malformed := (!lnum, i) :: !malformed)
            line
        done;
        assert false (* lint: allow-no-raise "input_line loop exits via End_of_file" *)
      with End_of_file ->
        { allows = !allows; raise_docs = !raise_docs; malformed = !malformed })

(* ------------------------------------------------------------------ *)
(* Syntactic float detection                                           *)
(* ------------------------------------------------------------------ *)

open Parsetree

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

(* [Longident.flatten]/[last] raise on functor applications ([F(X).f]);
   those paths never name a comparison or print function, so fold them to
   harmless values. *)
let flatten lid = try Longident.flatten lid with _ -> []
let last_name lid = try Longident.last lid with _ -> ""

let is_float_type (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []) -> true
  | _ -> false

let rec floatish (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } -> Sig_table.returns_float (flatten txt)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      match flatten txt with
      | [ op ] when List.mem op float_ops -> true
      | path ->
          Sig_table.returns_float path
          || ((path = [ "fst" ] || path = [ "snd" ])
              && List.exists (fun (_, a) -> floatish a) args))
  | Pexp_field (_, { txt; _ }) -> Sig_table.field_is_float (last_name txt)
  | Pexp_constraint (_, t) -> is_float_type t
  | Pexp_ifthenelse (_, e1, Some e2) -> floatish e1 || floatish e2
  | Pexp_open (_, e)
  | Pexp_sequence (_, e)
  | Pexp_let (_, _, e)
  | Pexp_letmodule (_, _, e) ->
      floatish e
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Rule predicates                                                     *)
(* ------------------------------------------------------------------ *)

let cmp_names = [ "="; "<"; "<="; ">"; ">="; "<>"; "compare"; "min"; "max" ]

let comparison_of path =
  match path with
  | [ x ] | [ "Stdlib"; x ] when List.mem x cmp_names -> Some x
  | _ -> None

let phys_cmp_of path =
  match path with
  | [ ("==" | "!=") as x ] | [ "Stdlib"; (("==" | "!=") as x) ] -> Some x
  | _ -> None

let is_print path =
  match path with
  | [ "Printf"; ("printf" | "eprintf") ] -> true
  | [ "Format"; ("printf" | "eprintf" | "print_string" | "print_newline"
                | "print_float" | "print_int") ] ->
      true
  | [ n ] | [ "Stdlib"; n ] ->
      String.length n > 6
      && (String.sub n 0 6 = "print_" || String.sub n 0 6 = "prerr_")
  | _ -> false

let is_failwith path =
  match path with [ "failwith" ] | [ "Stdlib"; "failwith" ] -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* The per-file pass                                                   *)
(* ------------------------------------------------------------------ *)

type ctx = {
  path : string;
  in_lib : bool;          (* R2/R3 only bind inside lib/ *)
  check_floats : bool;    (* off inside Float_cmp itself *)
  pragmas : pragmas;
  mutable found : finding list;
}

let suppressed ctx rule line =
  List.exists
    (fun (l, r) -> r = rule && (l = line || l = line - 1))
    ctx.pragmas.allows
  || (rule = "no-raise"
      && List.exists
           (fun l -> l = line || l = line - 1 || l = line - 2)
           ctx.pragmas.raise_docs)

let report ctx (loc : Location.t) rule msg =
  let p = loc.loc_start in
  let line = p.Lexing.pos_lnum and col = p.Lexing.pos_cnum - p.Lexing.pos_bol in
  if not (suppressed ctx rule line) then
    ctx.found <- { file = ctx.path; line; col; rule; msg } :: ctx.found

let check_open ctx (loc : Location.t) (lid : Longident.t) =
  match lid with
  | Longident.Lident "Stdlib" ->
      report ctx loc "open-stdlib"
        "open Stdlib shadows the whole standard library namespace; qualify \
         instead"
  | _ -> ()

let check_expr ctx (e : expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      let path = flatten txt in
      (match phys_cmp_of path with
      | Some op ->
          report ctx e.pexp_loc "phys-cmp"
            (Printf.sprintf
               "physical comparison (%s) is only meaningful on mutable \
                values; use structural comparison or an explicit id"
               op)
      | None -> (
          match comparison_of path with
          | Some op
            when ctx.check_floats
                 && List.exists (fun (_, a) -> floatish a) args ->
              report ctx e.pexp_loc "float-cmp"
                (Printf.sprintf
                   "bare %s on a float-valued operand; route the tolerance \
                    through Prelude.Float_cmp (or Float.min/Float.max)"
                   (match op with
                   | "compare" -> "compare"
                   | "min" | "max" -> op
                   | _ -> Printf.sprintf "(%s)" op))
          | _ -> ()));
      if ctx.in_lib && is_failwith path then
        report ctx e.pexp_loc "no-raise"
          "failwith in lib/ needs an @raise doc or an allow-no-raise pragma")
  | Pexp_ident { txt; _ } when ctx.in_lib ->
      let path = flatten txt in
      if is_print path then
        report ctx e.pexp_loc "no-print"
          (Printf.sprintf
             "%s in lib/; all output must go through Prelude.Tablefmt or the \
              expkit runner"
             (String.concat "." path))
  | Pexp_assert
      { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None);
        _ }
    when ctx.in_lib ->
      report ctx e.pexp_loc "no-raise"
        "assert false in lib/ needs an @raise doc or an allow-no-raise pragma"
  | _ -> ()

let iterator ctx =
  let open Ast_iterator in
  {
    default_iterator with
    expr =
      (fun it e ->
        check_expr ctx e;
        default_iterator.expr it e);
    open_declaration =
      (fun it od ->
        (match od.popen_expr.pmod_desc with
        | Pmod_ident { txt; _ } -> check_open ctx od.popen_loc txt
        | _ -> ());
        default_iterator.open_declaration it od);
    open_description =
      (fun it od ->
        check_open ctx od.popen_loc od.popen_expr.txt;
        default_iterator.open_description it od);
  }

let has_suffix s suf =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

let path_components path = String.split_on_char '/' path

let under_lib path = List.mem "lib" (path_components path)

let is_float_cmp_module path =
  match Filename.basename path with
  | "float_cmp.ml" | "float_cmp.mli" -> true
  | _ -> false

let lint_file ?as_lib path =
  let in_lib = match as_lib with Some b -> b | None -> under_lib path in
  let pragmas = scan_pragmas path in
  let ctx =
    {
      path;
      in_lib;
      check_floats = not (is_float_cmp_module path);
      pragmas;
      found = [];
    }
  in
  (try
     let it = iterator ctx in
     if has_suffix path ".mli" then
       it.signature it (Pparse.parse_interface ~tool_name:"rt-lint" path)
     else it.structure it (Pparse.parse_implementation ~tool_name:"rt-lint" path)
   with exn ->
     let msg =
       match exn with
       | Syntaxerr.Error _ -> "syntax error"
       | exn -> Printexc.to_string exn
     in
     ctx.found <-
       { file = path; line = 1; col = 0; rule = "parse"; msg } :: ctx.found);
  let bad_pragmas =
    List.map
      (fun (line, col) ->
        {
          file = path;
          line;
          col;
          rule = "suppression";
          msg =
            "malformed lint pragma: expected (* lint: allow-<rule> \
             \"reason\" *) with a non-empty reason";
        })
      pragmas.malformed
  in
  List.sort compare_finding (bad_pragmas @ ctx.found)

let missing_mli path =
  if
    has_suffix path ".ml"
    && under_lib path
    && not (Sys.file_exists (path ^ "i"))
  then
    Some
      {
        file = path;
        line = 1;
        col = 0;
        rule = "missing-mli";
        msg = "every module under lib/ must ship an interface (.mli)";
      }
  else None

let skip_dirs = [ "_build"; ".git"; "lint_fixtures" ]

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc name ->
           if List.mem name skip_dirs then acc
           else walk acc (Filename.concat path name))
         acc
  else if has_suffix path ".ml" || has_suffix path ".mli" then path :: acc
  else acc

let lint_paths paths =
  let files = List.fold_left walk [] paths in
  let findings =
    List.concat_map
      (fun f ->
        let mli = match missing_mli f with Some x -> [ x ] | None -> [] in
        mli @ lint_file f)
      files
  in
  List.sort compare_finding findings
