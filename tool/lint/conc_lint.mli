(** Domain-safety and lock-discipline analysis (the concurrency rule
    family).

    Rules: [domain-unsafe] (error) — unsynchronized mutable state
    reachable from domain-crossing code, or an access to a
    [[@rt.guarded_by]] value outside its critical section;
    [lock-unbalanced], [lock-order], [lock-blocking] (warnings) — bare
    critical sections that can leak their mutex, inconsistent nesting
    orders, and blocking calls under a lock; [conc-annotation] (error)
    — malformed annotation payloads.

    Annotations recognised (declared in {!Rt_prelude.Annot}):
    [[@rt.guarded_by "<mutex>"]] on record fields and let bindings,
    [[@rt.domain_safe "reason"]] on the same, and [[@rt.cross_domain]]
    on a closure that will execute on another domain.  See
    docs/CONCURRENCY_LINT.md. *)

val check :
  file:string -> modname:string -> Typedtree.structure -> Finding.t list
(** Run the concurrency rules over one compilation unit.  [file] labels
    the findings; [modname] is the unit name (used to recognise the
    pool's own entry points).  Suppression filtering happens in
    {!Lint_core}, not here. *)
