(* The diagnostic record every rt-lint pass produces. *)

type severity = Error | Warning | Note

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  msg : string;
}

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.msg

let gates f = match f.severity with Error | Warning -> true | Note -> false

let compare a b =
  match Stdlib.compare a.file b.file with
  | 0 -> (
      match Stdlib.compare a.line b.line with
      | 0 -> (
          match Stdlib.compare a.col b.col with
          | 0 -> Stdlib.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let of_location ?(severity = Error) ~file ~rule ~msg (loc : Location.t) =
  let p = loc.loc_start in
  {
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    severity;
    msg;
  }
