(** Dimension annotations harvested from interface files.

    [@rt.dim "..."] annotations on [val] declarations and float record
    fields in [.mli] files seed the typed dimension analysis (see
    docs/UNITS.md).  The table replaces the deleted hand-maintained
    [Sig_table]: it is rebuilt from the checked-in interfaces on every
    lint run, so it cannot go stale. *)

type t

val create : unit -> t

val modname_of_path : string -> string
(** ["lib/core/problem.mli"] → ["Problem"]. *)

val string_payload : Parsetree.payload -> string option
(** The string literal of an attribute payload, if it is one. *)

val add_interface : t -> string -> Finding.t list
(** Parse one [.mli] and record its annotations.  Returned findings are
    [dim-annotation] diagnostics for malformed payloads; unparseable files
    contribute nothing (the main pass reports the parse error). *)

val value_dim : t -> modname:string -> string -> Dim.t option
(** Result dimension of [modname.name] when annotated. *)

val field_dim : t -> modname:string -> string -> Dim.t option
(** Dimension of record field [name] declared in [modname]. *)

type coverage = {
  total : int;  (** float-valued declarations seen *)
  annotated : int;
  missing : (string * int * string) list;  (** file, line, decl name *)
}

val coverage : t -> under:string list -> coverage
(** Coverage restricted to interfaces whose path starts with one of
    [under] (all interfaces when [under] is empty). *)
