(* The typed rt-lint pass: rules that need real type information.

   Where PR 1's engine guessed "is this expression a float?" from names
   seeded in a hand-maintained table, this pass walks the *typedtree* —
   either read back from the .cmt files dune already produces (the repo
   walk), or obtained by running the compiler's own type inference on a
   standalone file (the fixture path used by the tests).  Rules:

   - float-cmp   bare =/<<=/>/>=/<>/compare/min/max with a float operand
   - poly-cmp    polymorphic comparison or Hashtbl.hash instantiated at a
                 float-bearing type (tuple/list/option/array of floats)
   - phys-cmp    ==/!= anywhere
   - ambient-random  Random.* outside Rt_prelude.Rng (self_init anywhere)
   - wallclock   Sys.time/Unix wall-clock reads inside lib/
   - dim-mismatch    the units-of-measure analysis (see docs/UNITS.md):
                 additions, subtractions, comparisons and record-field
                 assignments whose operands carry different dimensions *)

open Typedtree

(* ------------------------------------------------------------------ *)
(* Obtaining a typedtree                                                *)
(* ------------------------------------------------------------------ *)

let read_cmt path =
  match (Cmt_format.read_cmt path).Cmt_format.cmt_annots with
  | Cmt_format.Implementation str -> Ok str
  | _ -> Error (path ^ ": cmt does not contain an implementation")
  | exception exn ->
      Error (Printf.sprintf "%s: unreadable cmt (%s)" path
               (Printexc.to_string exn))

let stdlib_ready = lazy (Compmisc.init_path ())

let type_standalone parsetree =
  Lazy.force stdlib_ready;
  (* fixtures deliberately contain smelly code; don't let the typer's own
     warnings (unused value, ...) leak onto stderr *)
  ignore (Warnings.parse_options false "-a");
  let env = Compmisc.initial_env () in
  match Typemod.type_structure env parsetree with
  | str, _, _, _, _ -> Ok str
  | exception exn -> (
      match Location.error_of_exn exn with
      | Some (`Ok report) ->
          Error (Format.asprintf "%a" Location.print_report report)
      | _ -> Error (Printexc.to_string exn))

(* ------------------------------------------------------------------ *)
(* Types and paths                                                      *)
(* ------------------------------------------------------------------ *)

(* [Float.t] is an abbreviation of [float]; .cmt files keep only
   summarized environments, so rather than expanding abbreviations we
   recognize the stdlib alias by its path *)
let float_t_path (p : Path.t) =
  match p with
  | Path.Pdot (q, "t") -> (
      match q with
      | Path.Pident id ->
          let n = Ident.name id in
          n = "Float" || n = "Stdlib__Float"
      | Path.Pdot (_, "Float") -> true
      | _ -> false)
  | _ -> false

let is_float ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) ->
      Path.same p Predef.path_float || float_t_path p
  | _ -> false

let is_floatish ty =
  is_float ty
  ||
  match Types.get_desc ty with
  | Types.Tconstr (p, [ a ], _) -> Path.same p Predef.path_option && is_float a
  | _ -> false

(* Structural float occurrence: recurses through tuples and type
   constructor arguments (lists, options, arrays, pairs...).  Nominal
   record/variant contents are not expanded — that would need an
   environment, which .cmt files only keep in summarized form. *)
let contains_float ty =
  let rec go depth ty =
    depth < 8
    &&
    match Types.get_desc ty with
    | Types.Tconstr (p, args, _) ->
        Path.same p Predef.path_float || float_t_path p
        || List.exists (go (depth + 1)) args
    | Types.Ttuple ts -> List.exists (go (depth + 1)) ts
    | Types.Tarrow (_, a, b, _) -> go (depth + 1) a || go (depth + 1) b
    | Types.Tlink t | Types.Tsubst (t, _) -> go depth t
    | _ -> false
  in
  go 0 ty

(* Path components with dune's wrapping artifacts undone:
   [Rt_prelude__Rng.float] -> ["Rt_prelude"; "Rng"; "float"].  Operator
   names contain dots, so this decomposes the path structurally instead of
   splitting [Path.name]. *)
let split_wrapped s =
  let parts = ref [] and buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      if Buffer.length buf > 0 then parts := Buffer.contents buf :: !parts;
      Buffer.clear buf;
      i := !i + 2
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  if Buffer.length buf > 0 then parts := Buffer.contents buf :: !parts;
  List.rev !parts

let rec path_parts (p : Path.t) =
  match p with
  | Path.Pident id -> split_wrapped (Ident.name id)
  | Path.Pdot (q, s) -> path_parts q @ [ s ]
  | Path.Papply (a, b) -> path_parts a @ path_parts b
  | _ -> split_wrapped (Path.name p)

(* ------------------------------------------------------------------ *)
(* Context                                                              *)
(* ------------------------------------------------------------------ *)

module IMap = Map.Make (struct
  type t = Ident.t

  let compare = Ident.compare
end)

type binding = { v : Dim.v; fn : Dim.v }

type ctx = {
  dims : Dim_table.t;
  file : string;
  modname : string;
  in_lib : bool;
  check_floats : bool; (* off inside Float_cmp itself *)
  aliases : (string, string list) Hashtbl.t; (* module X = Longer.Path *)
  handled_heads : (Location.t, unit) Hashtbl.t;
  mutable found : Finding.t list;
}

let report ctx loc rule msg =
  ctx.found <- Finding.of_location ~file:ctx.file ~rule ~msg loc :: ctx.found

let normalize ctx p =
  let parts = path_parts p in
  let parts =
    match parts with
    | "Stdlib" :: (_ :: _ as rest) -> rest
    | _ -> parts
  in
  match parts with
  | hd :: rest when Hashtbl.mem ctx.aliases hd ->
      Hashtbl.find ctx.aliases hd @ rest
  | _ -> parts

(* the (module, name) key the dimension table uses, given normalized
   components: the value's module is the last module component, or the
   current compilation unit for unqualified paths *)
let table_key ctx comps =
  match List.rev comps with
  | name :: m :: _ -> Some (m, name)
  | [ name ] -> Some (ctx.modname, name)
  | [] -> None

let value_dim ctx comps =
  match table_key ctx comps with
  | Some (m, n) -> Dim_table.value_dim ctx.dims ~modname:m n
  | None -> None

let field_dim_of_label ctx (lbl : Types.label_description) =
  let modname =
    match Types.get_desc lbl.Types.lbl_res with
    | Types.Tconstr (p, _, _) -> (
        match List.rev (path_parts p) with
        | _ty :: m :: _ -> m
        | _ -> ctx.modname)
    | _ -> ctx.modname
  in
  Dim_table.field_dim ctx.dims ~modname lbl.Types.lbl_name

(* ------------------------------------------------------------------ *)
(* Per-node rules (full coverage via Tast_iterator)                     *)
(* ------------------------------------------------------------------ *)

let cmp_names = [ "="; "<"; "<="; ">"; ">="; "<>"; "compare"; "min"; "max" ]

let op_spelling = function
  | "compare" -> "compare"
  | ("min" | "max") as op -> op
  | op -> Printf.sprintf "(%s)" op

let unlabelled_args args =
  List.filter_map
    (fun (lbl, a) ->
      match (lbl, a) with Asttypes.Nolabel, Some e -> Some e | _ -> None)
    args

let check_cmp_head ctx (e : expression) comps args =
  match comps with
  | [ (("==" | "!=") as op) ] ->
      report ctx e.exp_loc "phys-cmp"
        (Printf.sprintf
           "physical comparison (%s) is only meaningful on mutable values; \
            use structural comparison or an explicit id"
           op)
  | [ op ] when List.mem op cmp_names ->
      let fargs = unlabelled_args args in
      if ctx.check_floats && List.exists (fun a -> is_float a.exp_type) fargs
      then
        report ctx e.exp_loc "float-cmp"
          (Printf.sprintf
             "bare %s on a float-valued operand; route the tolerance through \
              Prelude.Float_cmp (or Float.min/Float.max)"
             (op_spelling op))
      else if
        ctx.check_floats
        && List.exists (fun a -> contains_float a.exp_type) fargs
      then
        report ctx e.exp_loc "poly-cmp"
          (Printf.sprintf
             "polymorphic %s instantiated at a float-bearing type; compare \
              the float components through Prelude.Float_cmp explicitly"
             (op_spelling op))
  | [ "Hashtbl"; ("hash" | "seeded_hash") ] ->
      let fargs = unlabelled_args args in
      if List.exists (fun a -> contains_float a.exp_type) fargs then
        report ctx e.exp_loc "poly-cmp"
          "Hashtbl.hash on a float-bearing value; hash a stable key instead \
           (bit-equal floats are not the equality the domain uses)"
  | _ -> ()

let check_ident ctx (e : expression) comps =
  (* determinism rules fire on any occurrence, applied or not *)
  (match comps with
  | [ "Random"; "self_init" ] | [ "Random"; "State"; "make_self_init" ] ->
      report ctx e.exp_loc "ambient-random"
        (Printf.sprintf
           "%s makes runs unreproducible; thread an explicit seeded \
            Rt_prelude.Rng instead"
           (String.concat "." comps))
  | [ "Random"; fn ] ->
      (* single-level Random.f draws from the ambient global state;
         Random.State.f with an explicit state is fine *)
      if ctx.in_lib then
        report ctx e.exp_loc "ambient-random"
          (Printf.sprintf
             "ambient Random.%s in lib/; thread an explicit Rt_prelude.Rng \
              so every experiment row is regenerable from its seed"
             fn)
  | [ "Sys"; "time" ]
  | [ "Unix"; ("time" | "gettimeofday" | "localtime" | "gmtime") ] ->
      if ctx.in_lib then
        report ctx e.exp_loc "wallclock"
          (Printf.sprintf
             "wall-clock read (%s) in lib/; outside sanctioned budget \
              plumbing this breaks replayability — inject the clock or \
              suppress with a reason"
             (String.concat "." comps))
  | _ -> ());
  (* a comparison primitive *passed* somewhere (List.sort compare xs) at a
     float-bearing instantiation *)
  if not (Hashtbl.mem ctx.handled_heads e.exp_loc) then
    match comps with
    | [ op ] when List.mem op cmp_names ->
        if ctx.check_floats && contains_float e.exp_type then
          report ctx e.exp_loc "poly-cmp"
            (Printf.sprintf
               "polymorphic %s used as a comparator at a float-bearing type; \
                use Prelude.Float_cmp or a field-explicit comparator"
               (op_spelling op))
    | [ "Hashtbl"; ("hash" | "seeded_hash") ] ->
        if contains_float e.exp_type then
          report ctx e.exp_loc "poly-cmp"
            "Hashtbl.hash used at a float-bearing type; hash a stable key \
             instead"
    | _ -> ()

let rule_iterator ctx =
  let open Tast_iterator in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as hd), args) ->
        Hashtbl.replace ctx.handled_heads hd.exp_loc ();
        check_cmp_head ctx e (normalize ctx p) args
    | Texp_ident (p, _, _) -> check_ident ctx e (normalize ctx p)
    | _ -> ());
    default_iterator.expr it e
  in
  { default_iterator with expr }

(* ------------------------------------------------------------------ *)
(* Dimension inference                                                  *)
(* ------------------------------------------------------------------ *)

let float_cmp_fns =
  [
    "approx_eq"; "leq"; "geq"; "lt"; "gt"; "compare_approx"; "exact_eq";
    "exact_lt"; "exact_le"; "exact_gt"; "exact_ge";
  ]

let dim_mismatch ctx loc what (da : Dim.t) (db : Dim.t) =
  report ctx loc "dim-mismatch"
    (Printf.sprintf "%s mixes %s with %s" what (Dim.to_string da)
       (Dim.to_string db))

let unify_report ctx loc what a b =
  match Dim.unify a b with
  | Ok d -> d
  | Error (da, db) ->
      dim_mismatch ctx loc what da db;
      Unknown

let rt_dim_of_attrs ctx attrs =
  match
    List.find_opt (fun a -> a.Parsetree.attr_name.txt = Rt_prelude.Annot.dim) attrs
  with
  | None -> None
  | Some a -> (
      match Dim_table.string_payload a.Parsetree.attr_payload with
      | None ->
          report ctx a.Parsetree.attr_loc "dim-annotation"
            "[@rt.dim] payload must be a string literal";
          None
      | Some s -> (
          match Dim.of_string s with
          | Ok d -> Some d
          | Error e ->
              report ctx a.Parsetree.attr_loc "dim-annotation"
                (Printf.sprintf "bad dimension %S: %s" s e);
              None))

let add_binding env id b = IMap.add id b env

let rec bind_pat : type k. ctx -> binding IMap.t -> k general_pattern ->
    Dim.v -> binding IMap.t =
 fun ctx env p d ->
  match p.pat_desc with
  | Tpat_var (id, _) -> add_binding env id { v = d; fn = Unknown }
  | Tpat_alias (q, id, _) ->
      bind_pat ctx (add_binding env id { v = d; fn = Unknown }) q d
  | Tpat_construct (_, cd, [ q ], _) when cd.Types.cstr_name = "Some" ->
      bind_pat ctx env q d
  | Tpat_construct (_, _, qs, _) ->
      List.fold_left (fun env q -> bind_pat ctx env q Dim.Unknown) env qs
  | Tpat_tuple qs ->
      List.fold_left (fun env q -> bind_pat ctx env q Dim.Unknown) env qs
  | Tpat_record (fields, _) ->
      List.fold_left
        (fun env (_, lbl, q) ->
          let d =
            match field_dim_of_label ctx lbl with
            | Some d -> Dim.Dim d
            | None -> Dim.Unknown
          in
          bind_pat ctx env q d)
        env fields
  | Tpat_variant (_, Some q, _) -> bind_pat ctx env q Dim.Unknown
  | Tpat_array qs ->
      List.fold_left (fun env q -> bind_pat ctx env q Dim.Unknown) env qs
  | Tpat_lazy q -> bind_pat ctx env q d
  | Tpat_or (a, b, _) -> bind_pat ctx (bind_pat ctx env a d) b d
  | Tpat_value arg -> bind_pat ctx env (arg :> pattern) d
  | Tpat_exception q -> bind_pat ctx env q Dim.Unknown
  | _ -> env

let constraint_dim ctx (e : expression) =
  List.fold_left
    (fun acc (extra, _, attrs) ->
      match (acc, extra) with
      | Some _, _ -> acc
      | None, Texp_constraint ct -> (
          match rt_dim_of_attrs ctx ct.ctyp_attributes with
          | Some d -> Some d
          | None -> rt_dim_of_attrs ctx attrs)
      | None, _ -> rt_dim_of_attrs ctx attrs)
    None e.exp_extra

let rec infer ctx env (e : expression) : Dim.v =
  let d = infer_desc ctx env e in
  match constraint_dim ctx e with Some d -> Dim.Dim d | None -> d

and infer_desc ctx env (e : expression) : Dim.v =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      if not (is_floatish e.exp_type) then Unknown
      else
        match p with
        | Path.Pident id -> (
            match IMap.find_opt id env with
            | Some b -> b.v
            | None -> (
                match value_dim ctx (normalize ctx p) with
                | Some d -> Dim d
                | None -> Unknown))
        | _ -> (
            match value_dim ctx (normalize ctx p) with
            | Some d -> Dim d
            | None -> Unknown))
  | Texp_constant (Asttypes.Const_float _) -> Any
  | Texp_constant _ -> Unknown
  | Texp_let (_, vbs, body) ->
      let env = bindings ctx env ~toplevel:false vbs in
      infer ctx env body
  | Texp_function _ ->
      ignore (fn_result ctx env e);
      Unknown
  | Texp_apply (hd, args) -> infer_apply ctx env e hd args
  | Texp_match (scrut, cases, _) ->
      let d = infer ctx env scrut in
      List.fold_left
        (fun acc c -> Dim.join acc (infer_case ctx env d c))
        Dim.Any cases
  | Texp_try (body, cases) ->
      let d = infer ctx env body in
      List.fold_left
        (fun acc c -> Dim.join acc (infer_case ctx env Dim.Unknown c))
        d cases
  | Texp_tuple es ->
      List.iter (fun x -> ignore (infer ctx env x)) es;
      Unknown
  | Texp_construct (_, cd, [ arg ]) when cd.Types.cstr_name = "Some" ->
      infer ctx env arg
  | Texp_construct (_, _, args) ->
      List.iter (fun x -> ignore (infer ctx env x)) args;
      Unknown
  | Texp_variant (_, eo) ->
      Option.iter (fun x -> ignore (infer ctx env x)) eo;
      Unknown
  | Texp_record { fields; extended_expression; _ } ->
      Option.iter
        (fun x -> ignore (infer ctx env x))
        extended_expression;
      Array.iter
        (fun (lbl, def) ->
          match def with
          | Overridden (_, ex) -> (
              let dx = infer ctx env ex in
              match (field_dim_of_label ctx lbl, dx) with
              | Some want, Dim got when not (Dim.equal want got) ->
                  dim_mismatch ctx ex.exp_loc
                    (Printf.sprintf "record field %s" lbl.Types.lbl_name)
                    want got
              | _ -> ())
          | Kept _ -> ())
        fields;
      Unknown
  | Texp_field (e0, _, lbl) -> (
      ignore (infer ctx env e0);
      match field_dim_of_label ctx lbl with
      | Some d -> Dim d
      | None -> Unknown)
  | Texp_setfield (e0, _, lbl, ex) ->
      ignore (infer ctx env e0);
      let dx = infer ctx env ex in
      (match (field_dim_of_label ctx lbl, dx) with
      | Some want, Dim got when not (Dim.equal want got) ->
          dim_mismatch ctx ex.exp_loc
            (Printf.sprintf "record field %s" lbl.Types.lbl_name)
            want got
      | _ -> ());
      Unknown
  | Texp_array es ->
      List.iter (fun x -> ignore (infer ctx env x)) es;
      Unknown
  | Texp_ifthenelse (c, a, bo) -> (
      ignore (infer ctx env c);
      let da = infer ctx env a in
      match bo with
      | Some b -> Dim.join da (infer ctx env b)
      | None -> Unknown)
  | Texp_sequence (a, b) ->
      ignore (infer ctx env a);
      infer ctx env b
  | Texp_while (c, b) ->
      ignore (infer ctx env c);
      ignore (infer ctx env b);
      Unknown
  | Texp_for (_, _, lo, hi, _, b) ->
      ignore (infer ctx env lo);
      ignore (infer ctx env hi);
      ignore (infer ctx env b);
      Unknown
  | Texp_letmodule (_, _, _, me, body) ->
      walk_module_expr ctx env me;
      infer ctx env body
  | Texp_letexception (_, body) -> infer ctx env body
  | Texp_assert (cond, _) ->
      ignore (infer ctx env cond);
      Unknown
  | Texp_lazy b -> infer ctx env b
  | Texp_open (_, body) -> infer ctx env body
  | Texp_letop { let_; ands; body; _ } ->
      ignore (infer ctx env let_.bop_exp);
      List.iter (fun a -> ignore (infer ctx env a.bop_exp)) ands;
      ignore (infer_case ctx env Dim.Unknown body);
      Unknown
  | Texp_pack me ->
      walk_module_expr ctx env me;
      Unknown
  | _ -> Unknown

and infer_case : type k. ctx -> binding IMap.t -> Dim.v -> k case -> Dim.v =
 fun ctx env scrut_dim c ->
  let env = bind_pat ctx env c.c_lhs scrut_dim in
  Option.iter (fun g -> ignore (infer ctx env g)) c.c_guard;
  infer ctx env c.c_rhs

(* result dimension of a (possibly curried) function body; this is the only
   traversal of the body, so lambdas are never walked twice *)
and fn_result ctx env (e : expression) : Dim.v =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      List.fold_left
        (fun acc c ->
          let env' = bind_pat ctx env c.c_lhs Dim.Unknown in
          Option.iter (fun g -> ignore (infer ctx env' g)) c.c_guard;
          let d =
            match c.c_rhs.exp_desc with
            | Texp_function _ -> fn_result ctx env' c.c_rhs
            | _ -> infer ctx env' c.c_rhs
          in
          Dim.join acc d)
        Dim.Any cases
  | _ -> infer ctx env e

and infer_apply ctx env (e : expression) hd args : Dim.v =
  let adims =
    List.map
      (fun (lbl, a) -> (lbl, Option.map (fun a -> (a, infer ctx env a)) a))
      args
  in
  let pos =
    List.filter_map
      (fun (lbl, a) ->
        match (lbl, a) with Asttypes.Nolabel, Some p -> Some p | _ -> None)
      adims
  in
  let fallback () =
    if not (is_floatish e.exp_type) then Dim.Unknown
    else
      match hd.exp_desc with
      | Texp_ident (Path.Pident id, _, _) -> (
          match IMap.find_opt id env with
          | Some { fn = Dim d; _ } -> Dim.Dim d
          | _ -> (
              match value_dim ctx (normalize ctx (Path.Pident id)) with
              | Some d -> Dim d
              | None -> Unknown))
      | Texp_ident (p, _, _) -> (
          match value_dim ctx (normalize ctx p) with
          | Some d -> Dim d
          | None -> Unknown)
      | _ ->
          ignore (infer ctx env hd);
          Unknown
  in
  match hd.exp_desc with
  | Texp_ident (p, _, _) -> (
      let comps = normalize ctx p in
      let binop f =
        match pos with
        | [ (_, a); (_, b) ] -> f a b
        | _ -> Dim.Unknown
      in
      match comps with
      | [ "+." ] | [ "-." ] | [ "Float"; ("add" | "sub") ] ->
          binop (fun a b ->
              unify_report ctx e.exp_loc
                (Printf.sprintf "(%s)"
                   (match comps with
                   | [ op ] -> op
                   | _ -> "Float." ^ List.nth comps 1))
                a b)
      | [ "*." ] | [ "Float"; "mul" ] -> binop Dim.v_mul
      | [ "/." ] | [ "Float"; "div" ] -> binop Dim.v_div
      | [ "~-." ] | [ "~+." ] | [ "abs_float" ]
      | [ "Float"; ("neg" | "abs" | "succ" | "pred") ] -> (
          match pos with [ (_, a) ] -> a | _ -> Unknown)
      | [ "Float"; ("min" | "max") ] ->
          binop (fun a b ->
              unify_report ctx e.exp_loc
                ("Float." ^ List.nth comps 1)
                a b)
      | [ "Float"; ("equal" | "compare") ] ->
          ignore
            (binop (fun a b ->
                 unify_report ctx e.exp_loc
                   ("Float." ^ List.nth comps 1)
                   a b));
          Unknown
      | [ "Option"; "value" ] -> (
          (* unify the payload with ~default *)
          let default =
            List.find_map
              (fun (lbl, a) ->
                match (lbl, a) with
                | Asttypes.Labelled "default", Some (_, d) -> Some d
                | _ -> None)
              adims
          in
          match (pos, default) with
          | [ (_, a) ], Some d ->
              unify_report ctx e.exp_loc "Option.value ~default" a d
          | _ -> Unknown)
      | [ "Option"; "get" ] -> (
          match pos with [ (_, a) ] -> a | _ -> Unknown)
      | [ "|>" ] -> (
          match args with
          | [ (_, Some a); (_, Some f) ] -> pipe_result ctx env e a f
          | _ -> fallback ())
      | [ "@@" ] -> (
          match args with
          | [ (_, Some f); (_, Some a) ] -> pipe_result ctx env e a f
          | _ -> fallback ())
      | _ -> (
          match List.rev comps with
          | fn :: "Float_cmp" :: _ when List.mem fn float_cmp_fns ->
              let operands =
                List.filter_map
                  (fun (lbl, a) ->
                    match (lbl, a) with
                    | (Asttypes.Labelled "eps" | Asttypes.Optional "eps"), _ ->
                        None
                    | _, Some (arg, d) when is_float arg.exp_type ->
                        Some d
                    | _ -> None)
                  adims
              in
              (match operands with
              | a :: rest ->
                  ignore
                    (List.fold_left
                       (fun acc d ->
                         unify_report ctx e.exp_loc
                           ("Float_cmp." ^ fn) acc d)
                       a rest)
              | [] -> ());
              Unknown
          | "clamp" :: "Float_cmp" :: _ -> (
              let operands = List.map (fun (_, a) -> a) adims in
              match List.filter_map (Option.map snd) operands with
              | a :: rest ->
                  List.fold_left
                    (fun acc d ->
                      unify_report ctx e.exp_loc "Float_cmp.clamp" acc d)
                    a rest
              | [] -> Unknown)
          | _ -> fallback ()))
  | _ ->
      ignore (infer ctx env hd);
      fallback ()

(* [a |> f] / [f @@ a]: resolve the result dimension of [f] when it is a
   named function; operator sections through pipes are not modelled *)
and pipe_result ctx env (e : expression) _a f =
  match f.exp_desc with
  | Texp_ident (Path.Pident id, _, _) when is_floatish e.exp_type -> (
      match IMap.find_opt id env with
      | Some { fn = Dim d; _ } -> Dim.Dim d
      | _ -> (
          match value_dim ctx (normalize ctx (Path.Pident id)) with
          | Some d -> Dim d
          | None -> Unknown))
  | Texp_ident (p, _, _) when is_floatish e.exp_type -> (
      match value_dim ctx (normalize ctx p) with
      | Some d -> Dim d
      | None -> Unknown)
  | _ ->
      ignore (infer ctx env f);
      Unknown

and bindings ctx env ~toplevel vbs =
  List.fold_left
    (fun env_acc vb ->
      let attr_dim = rt_dim_of_attrs ctx vb.vb_attributes in
      let is_fn =
        match vb.vb_expr.exp_desc with Texp_function _ -> true | _ -> false
      in
      let inferred =
        if is_fn then Dim.Unknown else infer ctx env vb.vb_expr
      in
      let fn_d = if is_fn then fn_result ctx env vb.vb_expr else Dim.Unknown in
      match vb.vb_pat.pat_desc with
      | Tpat_var (id, name) ->
          let table_d =
            if toplevel then
              Dim_table.value_dim ctx.dims ~modname:ctx.modname name.txt
            else None
          in
          let pick ds = List.find_opt (fun d -> d <> Dim.Unknown) ds in
          let annotated =
            match (attr_dim, table_d) with
            | Some d, _ | None, Some d -> Some (Dim.Dim d)
            | None, None -> None
          in
          let v =
            match annotated with
            | Some d -> d
            | None -> Option.value ~default:Dim.Unknown (pick [ inferred ])
          in
          let fn =
            match annotated with
            | Some d -> d
            | None -> fn_d
          in
          add_binding env_acc id { v; fn }
      | _ ->
          let d =
            match attr_dim with Some d -> Dim.Dim d | None -> inferred
          in
          bind_pat ctx env_acc vb.vb_pat d)
    env vbs

and walk_module_expr ctx env me =
  match me.mod_desc with
  | Tmod_structure s -> ignore (walk_structure ctx env s)
  | Tmod_functor (_, body) -> walk_module_expr ctx env body
  | Tmod_constraint (m, _, _, _) -> walk_module_expr ctx env m
  | Tmod_apply (a, b, _) ->
      walk_module_expr ctx env a;
      walk_module_expr ctx env b
  | _ -> ()

and walk_structure ctx env (str : structure) =
  List.fold_left
    (fun env item ->
      match item.str_desc with
      | Tstr_value (_, vbs) -> bindings ctx env ~toplevel:true vbs
      | Tstr_eval (e, _) ->
          ignore (infer ctx env e);
          env
      | Tstr_module mb ->
          walk_module_expr ctx env mb.mb_expr;
          env
      | Tstr_recmodule mbs ->
          List.iter (fun mb -> walk_module_expr ctx env mb.mb_expr) mbs;
          env
      | Tstr_include { incl_mod; _ } ->
          walk_module_expr ctx env incl_mod;
          env
      | _ -> env)
    env str.str_items

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

let collect_aliases ctx (str : structure) =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_module
          {
            mb_id = Some id;
            mb_expr = { mod_desc = Tmod_ident (p, _); _ };
            _;
          } ->
          Hashtbl.replace ctx.aliases (Ident.name id) (normalize ctx p)
      | _ -> ())
    str.str_items

let check ~dims ~file ~modname ~in_lib ~check_floats str =
  let ctx =
    {
      dims;
      file;
      modname;
      in_lib;
      check_floats;
      aliases = Hashtbl.create 8;
      handled_heads = Hashtbl.create 64;
      found = [];
    }
  in
  collect_aliases ctx str;
  let it = rule_iterator ctx in
  it.Tast_iterator.structure it str;
  ignore (walk_structure ctx IMap.empty str);
  ctx.found
