(** Seeded signature knowledge used by rt-lint's float heuristics.

    rt-lint works on the parsetree only, so "is this expression a float?"
    is answered from seeded tables of known float-returning functions and
    float-typed record fields rather than from type inference. *)

val returns_float : string list -> bool
(** [returns_float path] is [true] when the (flattened) identifier path is
    known to denote a float-valued function or constant — stdlib float
    functions, [Float.*], or a repository function whose [.mli] declares a
    [float] result. *)

val field_is_float : string -> bool
(** [field_is_float name] is [true] when [name] is a record field declared
    with type [float] somewhere in [lib/]. *)
