(* The dimension table: [@rt.dim "..."] annotations harvested from the
   repository's interfaces.

   Unlike the deleted Sig_table (a hand-maintained name list that went
   stale), this table is derived from the checked-in [.mli] files on every
   run: a [val] whose result type is [float] (or [float option]) and every
   record field of type [float] may carry an [@rt.dim] annotation naming
   the quantity's dimension.  The typed pass then propagates those
   dimensions through the typedtree. *)

open Parsetree

type entry = { dim : Dim.t; line : int }

type t = {
  values : (string * string, entry) Hashtbl.t; (* (module, val name) *)
  fields : (string * string, entry) Hashtbl.t; (* (module, field name) *)
  (* per-interface coverage: file -> (annotated, unannotated-with-names) *)
  mutable decls : (string * string * int * bool) list;
      (* (file, decl name, line, annotated) — float-valued decls only *)
}

let create () =
  { values = Hashtbl.create 256; fields = Hashtbl.create 256; decls = [] }

let modname_of_path path =
  Filename.basename path |> Filename.remove_extension
  |> String.capitalize_ascii

(* ------------------------------------------------------------------ *)
(* Attribute extraction                                                 *)
(* ------------------------------------------------------------------ *)

let string_payload = function
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let rt_dim_attr attrs =
  List.find_opt (fun a -> a.attr_name.txt = Rt_prelude.Annot.dim) attrs

(* ------------------------------------------------------------------ *)
(* Float-valued declarations in a parsetree signature                   *)
(* ------------------------------------------------------------------ *)

let rec result_type (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_arrow (_, _, r) -> result_type r
  | Ptyp_poly (_, r) -> result_type r
  | _ -> t

let is_float_constr (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []) -> true
  | _ -> false

let is_floatish_result (t : core_type) =
  is_float_constr t
  ||
  match t.ptyp_desc with
  | Ptyp_constr ({ txt = Longident.Lident "option"; _ }, [ a ]) ->
      is_float_constr a
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Harvesting                                                           *)
(* ------------------------------------------------------------------ *)

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let record_decl tbl ~file ~name ~line annotated =
  tbl.decls <- (file, name, line, annotated) :: tbl.decls

let add_annot tbl store ~file ~modname ~name ~floatish attrs loc errors =
  match rt_dim_attr attrs with
  | None ->
      if floatish then record_decl tbl ~file ~name ~line:(line_of loc) false;
      errors
  | Some a -> (
      match string_payload a.attr_payload with
      | None ->
          Finding.of_location ~file ~rule:"dim-annotation"
            ~msg:"[@rt.dim] payload must be a string literal" a.attr_loc
          :: errors
      | Some s -> (
          match Dim.of_string s with
          | Error e ->
              Finding.of_location ~file ~rule:"dim-annotation"
                ~msg:(Printf.sprintf "bad dimension %S: %s" s e)
                a.attr_loc
              :: errors
          | Ok d ->
              Hashtbl.replace store (modname, name)
                { dim = d; line = line_of loc };
              if floatish then
                record_decl tbl ~file ~name ~line:(line_of loc) true;
              errors))

let harvest_label tbl ~file ~modname (ld : label_declaration) errors =
  let attrs = ld.pld_attributes @ ld.pld_type.ptyp_attributes in
  add_annot tbl tbl.fields ~file ~modname ~name:ld.pld_name.txt
    ~floatish:(is_float_constr ld.pld_type)
    attrs ld.pld_loc errors

let harvest_type_decl tbl ~file ~modname (td : type_declaration) errors =
  let errors =
    match td.ptype_kind with
    | Ptype_record labels ->
        List.fold_left
          (fun errors ld -> harvest_label tbl ~file ~modname ld errors)
          errors labels
    | Ptype_variant constrs ->
        List.fold_left
          (fun errors (cd : constructor_declaration) ->
            match cd.pcd_args with
            | Pcstr_record labels ->
                List.fold_left
                  (fun errors ld -> harvest_label tbl ~file ~modname ld errors)
                  errors labels
            | Pcstr_tuple _ -> errors)
          errors constrs
    | _ -> errors
  in
  errors

let harvest_value tbl ~file ~modname (vd : value_description) errors =
  let result = result_type vd.pval_type in
  (* [val f : a -> b [@rt.dim "..."]] parses with the attribute on the whole
     arrow type, so look there as well as on the result constructor *)
  let attrs =
    vd.pval_attributes @ vd.pval_type.ptyp_attributes
    @ result.ptyp_attributes
  in
  add_annot tbl tbl.values ~file ~modname ~name:vd.pval_name.txt
    ~floatish:(is_floatish_result result)
    attrs vd.pval_loc errors

let rec harvest_signature tbl ~file ~modname (sg : signature) errors =
  List.fold_left
    (fun errors (item : signature_item) ->
      match item.psig_desc with
      | Psig_value vd -> harvest_value tbl ~file ~modname vd errors
      | Psig_type (_, tds) ->
          List.fold_left
            (fun errors td -> harvest_type_decl tbl ~file ~modname td errors)
            errors tds
      | Psig_module
          { pmd_type = { pmty_desc = Pmty_signature sg; _ }; pmd_name; _ } ->
          (* nested modules contribute under their own name *)
          let modname =
            match pmd_name.txt with Some n -> n | None -> modname
          in
          harvest_signature tbl ~file ~modname sg errors
      | _ -> errors)
    errors sg

let add_interface tbl path =
  let modname = modname_of_path path in
  match Pparse.parse_interface ~tool_name:"rt-lint" path with
  | exception _ -> [] (* unparseable files are reported by the main pass *)
  | sg -> List.rev (harvest_signature tbl ~file:path ~modname sg [])

let value_dim tbl ~modname name =
  Option.map
    (fun e -> e.dim)
    (Hashtbl.find_opt tbl.values (modname, name))

let field_dim tbl ~modname name =
  Option.map
    (fun e -> e.dim)
    (Hashtbl.find_opt tbl.fields (modname, name))

(* ------------------------------------------------------------------ *)
(* Coverage                                                             *)
(* ------------------------------------------------------------------ *)

type coverage = {
  total : int;
  annotated : int;
  missing : (string * int * string) list; (* file, line, decl name *)
}

let has_prefix ~prefix s =
  let n = String.length prefix in
  String.length s >= n && String.sub s 0 n = prefix

let coverage tbl ~under =
  let selected =
    List.filter
      (fun (file, _, _, _) ->
        under = [] || List.exists (fun p -> has_prefix ~prefix:p file) under)
      tbl.decls
  in
  let annotated, missing =
    List.fold_left
      (fun (n, miss) (file, name, line, ok) ->
        if ok then (n + 1, miss) else (n, (file, line, name) :: miss))
      (0, []) selected
  in
  {
    total = List.length selected;
    annotated;
    missing = List.sort Stdlib.compare missing;
  }
