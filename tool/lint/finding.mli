(** The diagnostic record every rt-lint pass produces. *)

type severity =
  | Error  (** definite rule violation; always fails the gate *)
  | Warning  (** likely problem (the lock-discipline family); fails the gate *)
  | Note  (** informational; rendered but never fails the gate *)

val severity_to_string : severity -> string
(** ["error"], ["warning"] or ["note"] (the SARIF level vocabulary). *)

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;  (** rule id, e.g. ["float-cmp"] *)
  severity : severity;
  msg : string;
}

val to_string : t -> string
(** Render as [file:line:col: [rule-id] message]. *)

val gates : t -> bool
(** [true] when the finding's severity is [Error] or [Warning], i.e. it
    should make the lint gate fail.  [Note]-level findings are rendered
    but never fail a build. *)

val compare : t -> t -> int
(** Order by file, then line, column and rule id. *)

val of_location :
  ?severity:severity ->
  file:string ->
  rule:string ->
  msg:string ->
  Location.t ->
  t
(** Build a finding at the start of a compiler-libs location.
    [severity] defaults to [Error]. *)
