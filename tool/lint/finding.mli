(** The diagnostic record every rt-lint pass produces. *)

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;  (** rule id, e.g. ["float-cmp"] *)
  msg : string;
}

val to_string : t -> string
(** Render as [file:line:col: [rule-id] message]. *)

val compare : t -> t -> int
(** Order by file, then line, column and rule id. *)

val of_location : file:string -> rule:string -> msg:string -> Location.t -> t
(** Build a finding at the start of a compiler-libs location. *)
