(** Dimension (units-of-measure) algebra for rt-lint's dim analysis.

    Dimensions are integer exponent vectors over the base units of the
    scheduling domain — seconds, cycles, joules.  Derived names: [speed]
    (cycles/second), [watts] (joules/second), and [penalty], an alias for
    [joules] because the paper's objective sums energy and rejection
    penalty (see docs/UNITS.md). *)

type t = { second : int; cycle : int; joule : int }

type v =
  | Any  (** a bare literal: unifies with any dimension *)
  | Unknown  (** no information: disables checking downstream *)
  | Dim of t

val dimensionless : t
val seconds : t
val cycles : t
val joules : t
val speed : t
val watts : t

val equal : t -> t -> bool
val mul : t -> t -> t
val div : t -> t -> t
val pow : t -> int -> t

val of_string : string -> (t, string) result
(** Parse an annotation payload: a name ([seconds], [cycles], [joules],
    [penalty], [speed], [watts], [hertz], [dimensionless], [1]) or a
    product/quotient expression such as ["joules/cycles"],
    ["watts*seconds"], ["seconds^-1"]. *)

val to_string : t -> string
(** Render with a canonical name when one exists, else as a product of
    base units with exponents. *)

val v_to_string : v -> string

val unify : v -> v -> (v, t * t) result
(** Operand combination for additive operations ([+.], [-.], comparisons):
    mismatched [Dim]s are an [Error] carrying both sides. *)

val v_mul : v -> v -> v
val v_div : v -> v -> v

val join : v -> v -> v
(** Branch join ([if]/[match]): the common dimension, or [Unknown]. *)
