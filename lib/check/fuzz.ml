module Rng = Rt_prelude.Rng

type config = {
  seed : int;
  count : int;
  time_budget : float option;
  exact_cap : int;
  params : Instance.params;
}

let default_config =
  {
    seed = 20260807;
    count = 500;
    time_budget = None;
    exact_cap = 10;
    params = Instance.default_params;
  }

type failure = {
  algorithm : string;
  oracle : string;
  detail : string;
  minimized : Instance.t;
  original : Instance.t;
}

type report = {
  instances : int;
  oracle_checks : int;
  law_checks : int;
  skipped : int;
  failures : failure list;
}

let algorithms =
  Rt_core.Greedy.named
  @ List.map
      (fun (name, alg) ->
        (name ^ "+ls", Rt_core.Local_search.with_local_search alg))
      Rt_core.Greedy.named

(* property closures for the minimizer: "does this exact failure still
   fire on the candidate instance?" *)

let oracle_still_fails ~exact_cap alg (oracle : Oracle.t) inst =
  match Oracle.context ~exact_cap inst with
  | Error _ -> None (* a candidate that no longer builds is not smaller *)
  | Ok ctx -> (
      match oracle.Oracle.run ctx (alg (Oracle.problem ctx)) with
      | Oracle.Fail d -> Some d
      | Oracle.Pass | Oracle.Skip _ -> None)

let law_still_fails (law : Laws.t) inst =
  match law.Laws.run inst with
  | Laws.Fail d -> Some d
  | Laws.Pass | Laws.Skip _ -> None

(* Everything one instance contributes to the report: counters plus its
   already-minimized failures, in discovery order. Pure in the instance
   index, so instances can be evaluated on any domain in any order —
   cross-instance state (dedup) lives in the sequential merge. *)
type inst_eval = {
  oracle_evals : int;
  law_evals : int;
  skips : int;
  fails : failure list;
}

let eval_instance ~config i =
  let rng = Rng.create ~seed:((config.seed * 1_000_003) + i) in
  let inst = Instance.generate rng config.params in
  let oracle_checks = ref 0 in
  let law_checks = ref 0 in
  let skipped = ref 0 in
  let fails = ref [] in
  let record ~algorithm ~oracle ~still_fails inst =
    let minimized, detail = Instance.minimize ~still_fails inst in
    let detail = Option.value detail ~default:"(failure did not reproduce)" in
    fails := { algorithm; oracle; detail; minimized; original = inst } :: !fails
  in
  (match Oracle.context ~exact_cap:config.exact_cap inst with
  | Error e ->
      record ~algorithm:"-" ~oracle:"generator"
        ~still_fails:(fun c ->
          match Oracle.context ~exact_cap:config.exact_cap c with
          | Error e -> Some e
          | Ok _ -> None)
        inst;
      ignore e
  | Ok ctx ->
      List.iter
        (fun (name, alg) ->
          let s = alg (Oracle.problem ctx) in
          List.iter
            (fun (oracle_name, outcome) ->
              match outcome with
              | Oracle.Pass -> incr oracle_checks
              | Oracle.Skip _ -> incr skipped
              | Oracle.Fail _ ->
                  incr oracle_checks;
                  let oracle =
                    match Oracle.find oracle_name with
                    | Some o -> o
                    | None -> invalid_arg "unknown oracle in registry"
                  in
                  record ~algorithm:name ~oracle:oracle_name
                    ~still_fails:
                      (oracle_still_fails ~exact_cap:config.exact_cap alg
                         oracle)
                    inst)
            (Oracle.run_all ctx s))
        algorithms);
  List.iter
    (fun (law_name, outcome) ->
      match outcome with
      | Laws.Pass -> incr law_checks
      | Laws.Skip _ -> incr skipped
      | Laws.Fail _ ->
          incr law_checks;
          let law =
            match Laws.find law_name with
            | Some l -> l
            | None -> invalid_arg "unknown law in registry"
          in
          record ~algorithm:"-" ~oracle:law_name
            ~still_fails:(law_still_fails law) inst)
    (Laws.run_all inst);
  {
    oracle_evals = !oracle_checks;
    law_evals = !law_checks;
    skips = !skipped;
    fails = List.rev !fails;
  }

let run ?pool ?(config = default_config) () =
  (* the budget is monotonic wall-clock time (Rt_prelude.Clock): Sys.time
     would sum CPU over every domain and expire the budget early under a
     parallel pool *)
  let started = Rt_prelude.Clock.now () in
  let out_of_time () =
    match config.time_budget with
    | None -> false
    | Some budget ->
        Rt_prelude.Float_cmp.exact_gt
          (Rt_prelude.Clock.elapsed ~since:started)
          budget
  in
  let instances = ref 0 in
  let oracle_checks = ref 0 in
  let law_checks = ref 0 in
  let skipped = ref 0 in
  let failures = ref [] in
  let seen = Hashtbl.create 16 in
  (* sequential, index-ordered merge: parallel evaluation feeds the very
     same fold the sequential loop does, so the report is byte-identical
     at any domain count (cross-instance dedup is order-sensitive) *)
  let merge r =
    incr instances;
    oracle_checks := !oracle_checks + r.oracle_evals;
    law_checks := !law_checks + r.law_evals;
    skipped := !skipped + r.skips;
    List.iter
      (fun f ->
        let key =
          (f.algorithm, f.oracle, Json.to_string (Instance.to_json f.minimized))
        in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          failures := f :: !failures
        end)
      r.fails
  in
  (match pool with
  | None ->
      let i = ref 0 in
      while !i < config.count && not (out_of_time ()) do
        incr i;
        merge (eval_instance ~config !i)
      done
  | Some pool ->
      (* chunked fan-out: the wall-clock budget is polled between chunks,
         so a budgeted parallel run stops at a chunk boundary *)
      let chunk = max 1 (4 * Rt_parallel.Pool.size pool) in
      let i = ref 0 in
      while !i < config.count && not (out_of_time ()) do
        let hi = min config.count (!i + chunk) in
        let batch = Rt_prelude.Math_util.range (!i + 1) hi in
        i := hi;
        List.iter merge
          (Rt_parallel.Pool.run_list pool
             (List.map (fun j () -> eval_instance ~config j) batch))
      done);
  {
    instances = !instances;
    oracle_checks = !oracle_checks;
    law_checks = !law_checks;
    skipped = !skipped;
    failures = List.rev !failures;
  }

let failure_entry ~name f =
  let opt_cost =
    match Oracle.context f.minimized with
    | Error _ -> None
    | Ok ctx -> Oracle.optimal_cost ctx
  in
  {
    Corpus.name;
    algorithm = f.algorithm;
    oracle = f.oracle;
    detail = f.detail;
    opt_cost;
    instance = f.minimized;
  }

let summary r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "fuzz: %d instances, %d oracle checks, %d law checks, %d skipped, %d \
        failure(s)\n"
       r.instances r.oracle_checks r.law_checks r.skipped
       (List.length r.failures));
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "  FAIL [%s/%s] %s\n    minimized: %s\n    %s\n"
           f.algorithm f.oracle
           (Instance.label f.original)
           (Instance.label f.minimized)
           f.detail))
    r.failures;
  Buffer.contents buf
