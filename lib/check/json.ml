module Fc = Rt_prelude.Float_cmp

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing *)

let float_literal f =
  if not (Fc.is_finite f) then
    invalid_arg "Json.to_string: non-finite float";
  (* shortest decimal that round-trips to the same IEEE value; always
     contains '.', 'e' or 'E' so the parser keeps Int/Float apart *)
  let candidate =
    let p15 = Printf.sprintf "%.15g" f in
    if Fc.exact_eq (float_of_string p15) f then p15
    else
      let p16 = Printf.sprintf "%.16g" f in
      if Fc.exact_eq (float_of_string p16) f then p16
      else Printf.sprintf "%.17g" f
  in
  if
    String.exists
      (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n' (* "nan" guard *))
      candidate
  then candidate
  else candidate ^ "."

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 || Char.code c > 0x7e ->
          invalid_arg "Json.to_string: non-printable byte in string"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_string v =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_literal f)
    | Str s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (depth + 1);
            go (depth + 1) x)
          xs;
        Buffer.add_char buf '\n';
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (depth + 1);
            Buffer.add_string buf (escape_string k);
            Buffer.add_string buf ": ";
            go (depth + 1) x)
          fields;
        Buffer.add_char buf '\n';
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Fc.exact_eq x y
  | Str x, Str y -> String.equal x y
  | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           xs ys
  | _ -> false

(* ------------------------------------------------------------------ *)
(* parsing *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t'
                   || s.[!pos] = '\r')
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> fail "malformed \\u escape"
              in
              if code > 0x7f then fail "\\u escape beyond ASCII unsupported";
              pos := !pos + 4;
              Buffer.add_char buf (Char.chr code);
              go ()
          | _ -> fail "unknown escape")
      | Some c ->
          if Char.code c < 0x20 then fail "raw control byte in string";
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
      || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    let floatish =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit
    in
    if floatish then
      match float_of_string_opt lit with
      | Some f when Fc.is_finite f -> Float f
      | _ -> fail ("malformed number " ^ lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> fail ("malformed number " ^ lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "json parse error at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Ok i
  | v -> Error (Printf.sprintf "expected int, got %s"
                  (match v with
                   | Null -> "null" | Bool _ -> "bool" | Float _ -> "float"
                   | Str _ -> "string" | List _ -> "list" | Obj _ -> "object"
                   | Int _ -> "int"))

let to_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | _ -> Error "expected number"

let to_bool = function Bool b -> Ok b | _ -> Error "expected bool"
let to_str = function Str s -> Ok s | _ -> Error "expected string"
let to_list = function List xs -> Ok xs | _ -> Error "expected list"

let pp ppf v = Format.pp_print_string ppf (to_string v)
