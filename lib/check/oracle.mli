(** The differential-oracle registry: four independent ways to judge a
    solution.

    Each oracle cross-checks a {!Rt_core.Solution} for an {!Instance}
    against machinery that shares as little code as possible with the
    algorithm under test:

    - {b validate} — {!Rt_core.Solution.validate}: structural audit plus
      the concrete frame-simulator round trip.
    - {b lower-bound} — the reported total must dominate the convex
      pooling + fractional-rejection relaxation {!Rt_core.Bounds}.
    - {b exact} — on instances with at most [exact_cap] items, the total
      must dominate the branch-and-bound optimum; on [m = 1] the
      cycle-space DP ({!Rt_core.Uni_dp}) must agree with the
      branch-and-bound optimum, so the two exact formulations police
      each other.
    - {b replay} — rebuild the accepted schedule in {!Rt_sim.Frame_sim}
      (timeline validation + energy agreement through
      {!Rt_prelude.Float_cmp}) and re-run every processor's bucket as
      period-equals-frame tasks through {!Rt_sim.Edf_sim}, which must
      report zero deadline misses.

    A context caches the expensive shared work (problem construction,
    lower bound, exact optimum) so checking eight algorithms against the
    same instance prices the exact solve once. *)

type ctx
(** Cached per-instance state shared across oracle runs. *)

val context : ?exact_cap:int -> Instance.t -> (ctx, string) result
(** Build the shared context; [exact_cap] (default 10) bounds the
    instance size beyond which the exact oracle reports [Skip]. *)

val problem : ctx -> Rt_core.Problem.t
val instance : ctx -> Instance.t

val optimal_cost : ctx -> float option
(** Forces the cached branch-and-bound solve; [None] above [exact_cap]. *)

type outcome =
  | Pass
  | Skip of string  (** oracle not applicable (e.g. instance too large) *)
  | Fail of string

type t = {
  name : string;
  descr : string;
  run : ctx -> Rt_core.Solution.t -> outcome;
}

val all : t list
(** The four oracles above, in the order listed. *)

val find : string -> t option

val run_all : ctx -> Rt_core.Solution.t -> (string * outcome) list
(** Every oracle's verdict, in registry order. *)

val first_failure : (string * outcome) list -> (string * string) option
(** The first [(oracle, detail)] failure, if any. *)

val eps : float
(** Tolerance used by the oracle comparisons ([1e-6] — looser than
    {!Rt_prelude.Float_cmp.default_eps} because optimum and heuristic
    costs come from long, differently-ordered float sums). *)
