(** Minimal JSON codec for the conformance-testing corpus.

    The container ships no JSON library, and the corpus needs one hard
    guarantee none of the mainstream printers give cheaply: {e canonical}
    output — [parse s |> print] is byte-identical to [s] for any string
    this module printed. The regression suite leans on that to detect
    hand-edited or drifting corpus entries ([test/corpus/*.json] must
    round-trip exactly).

    Scope is deliberately small: ASCII strings (escapes for the JSON
    control set, [\u00XX] accepted on input for ASCII code points only),
    63-bit integers kept distinct from floats, finite floats printed with
    the shortest decimal form that parses back exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** finite; printing a NaN/infinity raises *)
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** insertion order is preserved *)

val to_string : t -> string
(** Canonical multi-line rendering (two-space indent, no trailing
    whitespace, final newline). Deterministic: equal values print equal
    bytes, and printed output re-parses to an equal value.
    @raise Invalid_argument on a non-finite float or a string containing
    bytes outside printable ASCII + tab/newline. *)

val parse : string -> (t, string) result
(** Recursive-descent parser for the subset above. Numbers containing
    ['.'], ['e'] or ['E'] become [Float]; all others become [Int].
    Errors carry a character offset. *)

val equal : t -> t -> bool
(** Structural equality; floats compare with IEEE equality
    ({!Rt_prelude.Float_cmp.exact_eq}), object key order matters (the
    printer is canonical, so order-insensitive equality would mask
    corpus drift). *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing keys or non-objects. *)

val to_int : t -> (int, string) result
val to_float : t -> (float, string) result
(** Accepts [Int] too (JSON does not distinguish [3] from [3.0] readers). *)

val to_bool : t -> (bool, string) result
val to_str : t -> (string, string) result
val to_list : t -> (t list, string) result
val pp : Format.formatter -> t -> unit
