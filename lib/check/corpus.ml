module Fc = Rt_prelude.Float_cmp

type entry = {
  name : string;
  algorithm : string;
  oracle : string;
  detail : string;
  opt_cost : float option;
  instance : Instance.t;
}

let format_tag = "rt-check-corpus/1"

let to_json e =
  Json.Obj
    [
      ("format", Json.Str format_tag);
      ("name", Json.Str e.name);
      ("algorithm", Json.Str e.algorithm);
      ("oracle", Json.Str e.oracle);
      ("detail", Json.Str e.detail);
      ( "opt_cost",
        match e.opt_cost with None -> Json.Null | Some c -> Json.Float c );
      ("instance", Instance.to_json e.instance);
    ]

let ( let* ) r f = Result.bind r f

let field name conv j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Ok x -> Ok x
      | Error e -> Error (Printf.sprintf "field %S: %s" name e))

let of_json j =
  let* tag = field "format" Json.to_str j in
  if not (String.equal tag format_tag) then
    Error (Printf.sprintf "unsupported corpus format %S" tag)
  else
    let* name = field "name" Json.to_str j in
    let* algorithm = field "algorithm" Json.to_str j in
    let* oracle = field "oracle" Json.to_str j in
    let* detail = field "detail" Json.to_str j in
    let* opt_cost =
      match Json.member "opt_cost" j with
      | None -> Error "missing field \"opt_cost\""
      | Some Json.Null -> Ok None
      | Some v -> (
          match Json.to_float v with
          | Ok f -> Ok (Some f)
          | Error e -> Error ("field \"opt_cost\": " ^ e))
    in
    let* instance =
      match Json.member "instance" j with
      | None -> Error "missing field \"instance\""
      | Some v -> Instance.of_json v
    in
    Ok { name; algorithm; oracle; detail; opt_cost; instance }

let to_string e = Json.to_string (to_json e)

let of_string s =
  let* j = Json.parse s in
  of_json j

let save ~dir e =
  let path = Filename.concat dir (e.name ^ ".json") in
  match
    let oc = open_out path in
    output_string oc (to_string e);
    close_out oc
  with
  | () -> Ok path
  | exception Sys_error msg -> Error ("corpus save: " ^ msg)

let load_file path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | exception Sys_error msg -> Error ("corpus load: " ^ msg)
  | s -> (
      match of_string s with
      | Ok e -> Ok e
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error ("corpus dir: " ^ msg)
  | files ->
      let jsons =
        Array.to_list files
        |> List.filter (fun f -> Filename.check_suffix f ".json")
        |> List.sort String.compare
        |> List.map (Filename.concat dir)
      in
      List.fold_left
        (fun acc path ->
          let* acc = acc in
          let* e = load_file path in
          Ok ((path, e) :: acc))
        (Ok []) jsons
      |> Result.map List.rev

let replay ~algorithms e =
  let* ctx =
    match Oracle.context e.instance with
    | Ok ctx -> Ok ctx
    | Error msg -> Error msg
  in
  (* 1. the recorded algorithm passes every oracle today *)
  let* () =
    if String.equal e.algorithm "-" then Ok ()
    else
      match List.assoc_opt e.algorithm algorithms with
      | None -> Error (Printf.sprintf "unknown algorithm %S" e.algorithm)
      | Some alg -> (
          let s = alg (Oracle.problem ctx) in
          match Oracle.first_failure (Oracle.run_all ctx s) with
          | None -> Ok ()
          | Some (name, d) ->
              Error
                (Printf.sprintf "oracle %s fails again on %s: %s" name
                   e.algorithm d))
  in
  (* 2. every metamorphic law holds on the instance *)
  let* () =
    match Laws.first_failure (Laws.run_all e.instance) with
    | None -> Ok ()
    | Some (name, d) -> Error (Printf.sprintf "law %s fails: %s" name d)
  in
  (* 3. the recorded optimum is reproduced *)
  match (e.opt_cost, Oracle.optimal_cost ctx) with
  | None, _ -> Ok ()
  | Some recorded, Some now ->
      if Fc.approx_eq ~eps:Oracle.eps recorded now then Ok ()
      else
        Error
          (Printf.sprintf
             "recorded optimum %.9g no longer reproduces (solver now says \
              %.9g)"
             recorded now)
  | Some _, None ->
      Error "recorded an optimum but the instance now exceeds the exact cap"
