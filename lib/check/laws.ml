module Fc = Rt_prelude.Float_cmp

type outcome = Pass | Skip of string | Fail of string

type t = {
  name : string;
  descr : string;
  run : Instance.t -> outcome;
}

let exact_cap = 8
let eps = Oracle.eps

let transfer tp (s : Rt_core.Solution.t) =
  let lookup (it : Rt_task.Task.item) =
    Rt_core.Problem.item tp it.Rt_task.Task.item_id
  in
  let exception Missing of int in
  let map_items items =
    List.map
      (fun (it : Rt_task.Task.item) ->
        match lookup it with
        | Some it' -> it'
        | None -> raise (Missing it.Rt_task.Task.item_id))
    items
  in
  match
    let buckets =
      Array.init
        (Rt_partition.Partition.m s.Rt_core.Solution.partition)
        (fun j ->
          map_items
            (Rt_partition.Partition.bucket s.Rt_core.Solution.partition j))
    in
    {
      Rt_core.Solution.partition = Rt_partition.Partition.of_buckets buckets;
      rejected = map_items s.Rt_core.Solution.rejected;
    }
  with
  | s' -> Ok s'
  | exception Missing id ->
      Error (Printf.sprintf "transfer: item %d missing in target problem" id)

let scale_penalties k (inst : Instance.t) =
  {
    inst with
    Instance.items =
      List.map
        (fun (it : Instance.item) ->
          { it with Instance.penalty = it.Instance.penalty *. k })
        inst.Instance.items;
  }

(* exact optimum with the same typed-error discipline as the oracles *)
let opt_total prob =
  let s = Rt_core.Exact.branch_and_bound prob in
  match Rt_core.Solution.cost prob s with
  | Ok c -> Ok (s, c.Rt_core.Solution.total)
  | Error e -> Error ("branch-and-bound solution rejected by cost: " ^ e)

let with_problem inst f =
  match Instance.to_problem inst with
  | Error e -> Fail ("instance does not build a problem: " ^ e)
  | Ok p -> f p

let law_penalty_scaling =
  {
    name = "penalty-scaling";
    descr =
      "scaling all penalties by k keeps a fixed solution's energy and \
       scales its penalty term by k";
    run =
      (fun inst ->
        with_problem inst (fun p ->
            let s = Rt_core.Greedy.ltf_reject p in
            match Rt_core.Solution.cost p s with
            | Error e -> Fail ("baseline cost: " ^ e)
            | Ok c0 ->
                let check_k k =
                  with_problem (scale_penalties k inst) (fun pk ->
                      match transfer pk s with
                      | Error e -> Fail e
                      | Ok sk -> (
                          match Rt_core.Solution.cost pk sk with
                          | Error e -> Fail ("scaled cost: " ^ e)
                          | Ok ck ->
                              if
                                not
                                  (Fc.approx_eq ~eps
                                     ck.Rt_core.Solution.energy
                                     c0.Rt_core.Solution.energy)
                              then
                                Fail
                                  (Printf.sprintf
                                     "k=%g changed the energy term: %.9g \
                                      vs %.9g"
                                     k ck.Rt_core.Solution.energy
                                     c0.Rt_core.Solution.energy)
                              else if
                                not
                                  (Fc.approx_eq ~eps
                                     ck.Rt_core.Solution.penalty
                                     (k *. c0.Rt_core.Solution.penalty))
                              then
                                Fail
                                  (Printf.sprintf
                                     "k=%g: penalty term %.9g, expected \
                                      %.9g"
                                     k ck.Rt_core.Solution.penalty
                                     (k *. c0.Rt_core.Solution.penalty))
                              else Pass))
                in
                List.fold_left
                  (fun acc k ->
                    match acc with Pass -> check_k k | other -> other)
                  Pass [ 0.5; 3. ]));
  }

let law_extra_processor =
  {
    name = "extra-processor";
    descr = "adding an identical processor never increases the optimum";
    run =
      (fun inst ->
        if Instance.n inst > exact_cap then Skip "instance above exact cap"
        else
          with_problem inst (fun p ->
              with_problem
                { inst with Instance.m = inst.Instance.m + 1 }
                (fun p1 ->
                  match (opt_total p, opt_total p1) with
                  | Error e, _ | _, Error e -> Fail e
                  | Ok (_, opt_m), Ok (_, opt_m1) ->
                      if Fc.leq ~eps opt_m1 opt_m then Pass
                      else
                        Fail
                          (Printf.sprintf
                             "optimum rose from %.9g (m=%d) to %.9g (m=%d)"
                             opt_m inst.Instance.m opt_m1
                             (inst.Instance.m + 1)))));
  }

let law_smax_relief =
  {
    name = "smax-relief";
    descr = "raising s_max never increases the optimum (cubic preset)";
    run =
      (fun inst ->
        if Instance.n inst > exact_cap then Skip "instance above exact cap"
        else
          let tasks = Instance.frame_tasks inst in
          let problem_at s_max =
            Rt_core.Problem.of_frame
              ~proc:(Rt_power.Processor.cubic ~s_max ())
              ~m:inst.Instance.m
              ~frame_length:(float_of_int inst.Instance.frame_ticks)
              tasks
          in
          match (problem_at 1.0, problem_at 1.3) with
          | Error e, _ | _, Error e -> Fail ("cubic problem: " ^ e)
          | Ok p_lo, Ok p_hi -> (
              match (opt_total p_lo, opt_total p_hi) with
              | Error e, _ | _, Error e -> Fail e
              | Ok (_, opt_lo), Ok (_, opt_hi) ->
                  if Fc.leq ~eps opt_hi opt_lo then Pass
                  else
                    Fail
                      (Printf.sprintf
                         "optimum rose from %.9g (s_max=1.0) to %.9g \
                          (s_max=1.3)"
                         opt_lo opt_hi)));
  }

let law_cheap_reject =
  {
    name = "cheap-reject";
    descr =
      "an item with penalty strictly below its minimal marginal energy \
       E(w) - E(0) is rejected by the exact solver";
    run =
      (fun inst ->
        if Instance.n inst > exact_cap then Skip "instance above exact cap"
        else
          with_problem inst (fun p ->
              match opt_total p with
              | Error e -> Fail e
              | Ok (opt, _) ->
                  let accepted = Rt_core.Solution.accepted_ids opt in
                  let capacity = Rt_core.Problem.capacity p in
                  let e0 = Rt_core.Problem.bucket_energy p 0. in
                  let offender =
                    List.find_opt
                      (fun (it : Rt_task.Task.item) ->
                        let w = it.Rt_task.Task.weight in
                        if Fc.gt w capacity then false
                          (* unplaceable: rejected by feasibility, not
                             by this law *)
                        else
                          let marginal =
                            Rt_core.Problem.bucket_energy p w -. e0
                          in
                          (* strict beyond tolerance, so ties never
                             count as violations *)
                          Fc.lt ~eps it.Rt_task.Task.item_penalty marginal
                          && List.mem it.Rt_task.Task.item_id accepted)
                      p.Rt_core.Problem.items
                  in
                  match offender with
                  | None -> Pass
                  | Some it ->
                      Fail
                        (Printf.sprintf
                           "optimum accepts item %d although its penalty \
                            %.9g is below its minimal marginal energy"
                           it.Rt_task.Task.item_id
                           it.Rt_task.Task.item_penalty)));
  }

let all =
  [ law_penalty_scaling; law_extra_processor; law_smax_relief;
    law_cheap_reject ]

let find name = List.find_opt (fun l -> String.equal l.name name) all

let run_all inst = List.map (fun l -> (l.name, l.run inst)) all

let first_failure outcomes =
  List.find_map
    (function name, Fail d -> Some (name, d) | _ -> None)
    outcomes
