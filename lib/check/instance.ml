module Fc = Rt_prelude.Float_cmp
module Rng = Rt_prelude.Rng

type proc_kind = Cubic | Xscale | Xscale_levels

type item = { id : int; wcec : int; penalty : float }

type t = {
  proc : proc_kind;
  m : int;
  frame_ticks : int;
  items : item list;
}

let dormancy_free =
  Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. }

let processor = function
  | Cubic -> Rt_power.Processor.cubic ()
  | Xscale -> Rt_power.Processor.xscale ~dormancy:dormancy_free
  | Xscale_levels -> Rt_power.Processor.xscale_levels ~dormancy:dormancy_free

let proc_name = function
  | Cubic -> "cubic"
  | Xscale -> "xscale"
  | Xscale_levels -> "xscale-levels"

let proc_of_name = function
  | "cubic" -> Ok Cubic
  | "xscale" -> Ok Xscale
  | "xscale-levels" -> Ok Xscale_levels
  | other -> Error ("unknown processor kind: " ^ other)

let make ~proc ~m ~frame_ticks items =
  if m < 1 then Error "Instance.make: m < 1"
  else if frame_ticks < 1 then Error "Instance.make: frame_ticks < 1"
  else if List.exists (fun it -> it.wcec < 1) items then
    Error "Instance.make: item with cycles < 1"
  else if
    List.exists
      (fun it -> Fc.exact_lt it.penalty 0. || not (Fc.is_finite it.penalty))
      items
  then Error "Instance.make: negative or non-finite penalty"
  else if not (Rt_task.Task.distinct_ids (List.map (fun it -> it.id) items))
  then Error "Instance.make: duplicate item ids"
  else Ok { proc; m; frame_ticks; items }

let frame_tasks t =
  List.map
    (fun it ->
      Rt_task.Task.frame ~penalty:it.penalty ~id:it.id ~cycles:it.wcec ())
    t.items

let periodic_tasks t =
  List.map
    (fun it ->
      Rt_task.Task.periodic ~penalty:it.penalty ~id:it.id ~cycles:it.wcec
        ~period:t.frame_ticks ())
    t.items

let to_problem t =
  Rt_core.Problem.of_frame ~proc:(processor t.proc) ~m:t.m
    ~frame_length:(float_of_int t.frame_ticks) (frame_tasks t)

let n t = List.length t.items

let load t =
  let total =
    List.fold_left (fun acc it -> acc +. float_of_int it.wcec) 0. t.items
  in
  total /. float_of_int t.frame_ticks /. float_of_int t.m

let label t =
  Printf.sprintf "proc=%s m=%d frame=%d n=%d load=%.2f" (proc_name t.proc)
    t.m t.frame_ticks (n t) (load t)

let equal a b =
  a.proc = b.proc && a.m = b.m && a.frame_ticks = b.frame_ticks
  && List.length a.items = List.length b.items
  && List.for_all2
       (fun x y ->
         x.id = y.id && x.wcec = y.wcec
         && Fc.exact_eq x.penalty y.penalty)
       a.items b.items

let pp ppf t =
  Format.fprintf ppf "@[<v>%s@,items:" (label t);
  List.iter
    (fun it ->
      Format.fprintf ppf "@,  id=%d cycles=%d penalty=%g" it.id it.wcec
        it.penalty)
    t.items;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* serialization *)

let format_tag = "rt-check-instance/1"

let to_json t =
  Json.Obj
    [
      ("format", Json.Str format_tag);
      ("proc", Json.Str (proc_name t.proc));
      ("m", Json.Int t.m);
      ("frame", Json.Int t.frame_ticks);
      ( "items",
        Json.List
          (List.map
             (fun it ->
               Json.Obj
                 [
                   ("id", Json.Int it.id);
                   ("cycles", Json.Int it.wcec);
                   ("penalty", Json.Float it.penalty);
                 ])
             t.items) );
    ]

let ( let* ) r f = Result.bind r f

let field name conv j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Ok x -> Ok x
      | Error e -> Error (Printf.sprintf "field %S: %s" name e))

let of_json j =
  let* tag = field "format" Json.to_str j in
  if not (String.equal tag format_tag) then
    Error (Printf.sprintf "unsupported instance format %S" tag)
  else
    let* proc_s = field "proc" Json.to_str j in
    let* proc = proc_of_name proc_s in
    let* m = field "m" Json.to_int j in
    let* frame = field "frame" Json.to_int j in
    let* items_j = field "items" Json.to_list j in
    let* items =
      List.fold_left
        (fun acc ij ->
          let* acc = acc in
          let* id = field "id" Json.to_int ij in
          let* cycles = field "cycles" Json.to_int ij in
          let* penalty = field "penalty" Json.to_float ij in
          Ok ({ id; wcec = cycles; penalty } :: acc))
        (Ok []) items_j
    in
    make ~proc ~m ~frame_ticks:frame (List.rev items)

(* ------------------------------------------------------------------ *)
(* generation *)

type params = {
  n_lo : int;
  n_hi : int;
  m_hi : int;
  frame_ticks : int;
  load_lo : float;
  load_hi : float;
}

let default_params =
  { n_lo = 1; n_hi = 9; m_hi = 3; frame_ticks = 100; load_lo = 0.25;
    load_hi = 2.0 }

let generate rng p =
  let n = Rng.int rng ~lo:(max 1 p.n_lo) ~hi:(max p.n_lo p.n_hi) in
  let m = Rng.int rng ~lo:1 ~hi:(max 1 p.m_hi) in
  let proc = Rng.choice rng [ Cubic; Xscale; Xscale_levels ] in
  let load = Rng.float rng ~lo:p.load_lo ~hi:p.load_hi in
  let shares = Rng.uunifast rng ~n ~total:(load *. float_of_int m) in
  let pmax =
    Rt_power.Power_model.power (processor proc).Rt_power.Processor.model 1.
  in
  let items =
    List.mapi
      (fun id share ->
        let cycles =
          max 1
            (int_of_float
               (Float.round (share *. float_of_int p.frame_ticks)))
        in
        (* reference energy: run the item alone at top speed over the
           frame — the scale used by Rt_task.Penalty *)
        let e_ref = float_of_int cycles *. pmax in
        let penalty =
          Rng.log_uniform rng ~lo:(0.2 *. e_ref) ~hi:(3. *. e_ref)
        in
        { id; wcec = cycles; penalty })
      shares
  in
  { proc; m; frame_ticks = p.frame_ticks; items }

let qcheck_gen ?(params = default_params) () =
  let open QCheck2.Gen in
  let* m = int_range 1 (max 1 params.m_hi) in
  let* proc = oneofl [ Cubic; Xscale; Xscale_levels ] in
  let cycles_hi = 2 * params.frame_ticks in
  let pen_hi = 3. *. float_of_int params.frame_ticks *. 1.6 in
  let+ raw =
    list_size
      (int_range (max 1 params.n_lo) (max params.n_lo params.n_hi))
      (pair (int_range 1 cycles_hi) (float_range 0. pen_hi))
  in
  let items =
    List.mapi (fun id (cycles, penalty) -> { id; wcec = cycles; penalty }) raw
  in
  { proc; m; frame_ticks = params.frame_ticks; items }

(* ------------------------------------------------------------------ *)
(* shrinking *)

let remove_nth k xs = List.filteri (fun i _ -> i <> k) xs

let replace_nth k x xs = List.mapi (fun i y -> if i = k then x else y) xs

let shrink t =
  let with_items items = { t with items } in
  let indexed = List.mapi (fun i it -> (i, it)) t.items in
  let drops =
    List.to_seq indexed |> Seq.map (fun (i, _) -> with_items (remove_nth i t.items))
  in
  let fewer_procs =
    if t.m > 1 then Seq.return { t with m = t.m - 1 } else Seq.empty
  in
  let plain_proc =
    match t.proc with
    | Cubic -> Seq.empty
    | Xscale | Xscale_levels -> Seq.return { t with proc = Cubic }
  in
  let smaller_cycles =
    List.to_seq indexed
    |> Seq.filter_map (fun (i, it) ->
           if it.wcec > 1 then
             Some
               (with_items
                  (replace_nth i { it with wcec = it.wcec / 2 } t.items))
           else None)
  in
  let smaller_penalties =
    List.to_seq indexed
    |> Seq.concat_map (fun (i, it) ->
           if Fc.exact_gt it.penalty 0. then
             let zeroed =
               with_items (replace_nth i { it with penalty = 0. } t.items)
             in
             if Fc.gt ~eps:1e-6 it.penalty 0. then
               Seq.cons zeroed
                 (Seq.return
                    (with_items
                       (replace_nth i
                          { it with penalty = it.penalty /. 2. }
                          t.items)))
             else Seq.return zeroed
           else Seq.empty)
  in
  Seq.concat
    (List.to_seq
       [ drops; fewer_procs; plain_proc; smaller_cycles; smaller_penalties ])

let minimize ~still_fails t =
  let fuel = ref 500 in
  let rec go t detail =
    if !fuel <= 0 then (t, detail)
    else begin
      decr fuel;
      let next =
        Seq.find_map
          (fun c ->
            match still_fails c with
            | Some d -> Some (c, d)
            | None -> None)
          (shrink t)
      in
      match next with
      | Some (c, d) -> go c (Some d)
      | None -> (t, detail)
    end
  in
  go t (still_fails t)
