(** Metamorphic laws: relations between the answers on {e related}
    instances, checked without knowing the true answer on either.

    Where the oracles in {!Oracle} judge one (instance, solution) pair,
    these laws transform an instance and demand the solver landscape
    move the right way:

    - {b penalty-scaling} — scaling every penalty by [k] leaves a fixed
      solution's energy term unchanged and scales its penalty term by
      exactly [k] (the objective is linear in the penalties).
    - {b extra-processor} — adding an identical processor never
      increases the exact optimum (any [m]-processor solution is an
      [(m+1)]-processor solution with one idle machine).
    - {b smax-relief} — raising [s_max] never increases the exact
      optimum (every schedule stays feasible, energy rates can only
      improve); checked on the cubic preset where [s_max] is a free
      parameter.
    - {b cheap-reject} — an item whose penalty is strictly below its
      minimal marginal energy [E(w) - E(0)] (the cheapest any processor
      can ever run it, by convexity of the rate) must be rejected by the
      exact solver.

    Laws that need the exponential solver skip instances larger than
    [exact_cap]. *)

type outcome = Pass | Skip of string | Fail of string

type t = {
  name : string;
  descr : string;
  run : Instance.t -> outcome;
}

val all : t list
val find : string -> t option

val run_all : Instance.t -> (string * outcome) list
val first_failure : (string * outcome) list -> (string * string) option

val exact_cap : int
(** Size cap for the laws that invoke the exact solver (8). *)

val transfer :
  Rt_core.Problem.t -> Rt_core.Solution.t -> (Rt_core.Solution.t, string) result
(** Rebuild a solution's structure (same placement, same rejections, by
    item id) on another problem over the same id set — the mechanism the
    penalty-scaling law uses to compare one decision across two
    instances. Errors if an id has no counterpart. *)
