(** The differential fuzzing driver.

    One run draws [count] instances from {!Instance.generate} (every
    instance derives deterministically from [seed], so a report
    reproduces bit-for-bit), pushes each through every registered
    heuristic × every {!Oracle}, checks every {!Laws} law on the
    instance itself, and greedily {!Instance.minimize}s any failure
    before reporting it. Used by the [@fuzz] dune alias, the
    [rt_sched fuzz] CLI subcommand, and the mutation smoke-checks run
    while developing solver changes. *)

type config = {
  seed : int;
  count : int;  (** instances to generate *)
  time_budget : float option;
      (** optional wall-clock cap in seconds; the run stops early (with
          the instances completed so far) when exceeded *)
  exact_cap : int;  (** passed to {!Oracle.context} *)
  params : Instance.params;  (** generation distribution *)
}

val default_config : config
(** seed 20260807, count 500, no time budget, exact cap 10, default
    generation parameters — the fixed CI configuration. *)

type failure = {
  algorithm : string;  (** ["-"] when a law (not an algorithm) failed *)
  oracle : string;
  detail : string;  (** failure message on the minimized instance *)
  minimized : Instance.t;
  original : Instance.t;
}

type report = {
  instances : int;  (** instances actually generated *)
  oracle_checks : int;  (** algorithm × oracle outcomes that ran (non-skip) *)
  law_checks : int;  (** law outcomes that ran (non-skip) *)
  skipped : int;  (** outcomes skipped (instance above the exact cap) *)
  failures : failure list;
}

val algorithms : (string * (Rt_core.Problem.t -> Rt_core.Solution.t)) list
(** Every deterministic heuristic under test: the {!Rt_core.Greedy}
    registry plus each one's local-search polish. *)

val run : ?pool:Rt_parallel.Pool.t -> ?config:config -> unit -> report
(** Run the campaign. Instances derive from per-index seeds and are
    merged into the report in index order, so a [pool] changes only the
    wall time, never the report: parallel and sequential runs are
    byte-identical at any domain count (when [time_budget] is unset —
    a wall-clock budget stops the run at a scheduling-dependent point
    by design, though always on a whole-instance boundary). *)

val failure_entry : name:string -> failure -> Corpus.entry
(** Package a failure for {!Corpus.save}, recording the exact optimum of
    the minimized instance when available. *)

val summary : report -> string
(** Multi-line human-readable summary (callers print it; this module
    never writes to any channel). *)
