module Fc = Rt_prelude.Float_cmp

let eps = 1e-6

type outcome = Pass | Skip of string | Fail of string

type exact_state =
  | Too_big
  | Optimum of Rt_core.Solution.t * float
  | Broken of string
      (* the exact solver produced a solution its own cost audit rejects *)

type ctx = {
  inst : Instance.t;
  prob : Rt_core.Problem.t;
  lb : float Lazy.t;
  exact : exact_state Lazy.t;
  dp_check : outcome Lazy.t;
}

type t = {
  name : string;
  descr : string;
  run : ctx -> Rt_core.Solution.t -> outcome;
}

let solve_exact inst prob ~exact_cap =
  if Instance.n inst > exact_cap then Too_big
  else
    let s = Rt_core.Exact.branch_and_bound prob in
    match Rt_core.Solution.cost prob s with
    | Ok c -> Optimum (s, c.Rt_core.Solution.total)
    | Error e -> Broken ("branch-and-bound solution rejected by cost: " ^ e)

let dp_agreement inst exact =
  match (inst.Instance.m, exact) with
  | m, _ when m <> 1 -> Pass
  | _, Too_big -> Skip "instance above exact cap"
  | _, Broken e -> Fail e
  | _, Optimum (_, opt) -> (
      match
        Rt_core.Uni_dp.exact
          ~proc:(Instance.processor inst.Instance.proc)
          ~frame_length:(float_of_int inst.Instance.frame_ticks)
          (Instance.frame_tasks inst)
      with
      | Error e -> Fail ("uni-dp solver errored: " ^ e)
      | Ok o ->
          if Fc.approx_eq ~eps o.Rt_core.Uni_dp.cost opt then Pass
          else
            Fail
              (Printf.sprintf
                 "m=1 solvers disagree: cycle-DP %.9g vs branch-and-bound \
                  %.9g"
                 o.Rt_core.Uni_dp.cost opt))

let context ?(exact_cap = 10) inst =
  match Instance.to_problem inst with
  | Error e -> Error ("instance does not build a problem: " ^ e)
  | Ok prob ->
      let exact = lazy (solve_exact inst prob ~exact_cap) in
      Ok
        {
          inst;
          prob;
          lb = lazy (Rt_core.Bounds.lower_bound prob);
          exact;
          dp_check = lazy (dp_agreement inst (Lazy.force exact));
        }

let problem ctx = ctx.prob
let instance ctx = ctx.inst

let optimal_cost ctx =
  match Lazy.force ctx.exact with
  | Optimum (_, c) -> Some c
  | Too_big | Broken _ -> None

let total_cost ctx s =
  match Rt_core.Solution.cost ctx.prob s with
  | Ok c -> Ok c
  | Error e -> Error ("cost rejected the solution: " ^ e)

(* ------------------------------------------------------------------ *)
(* the four oracles *)

let oracle_validate =
  {
    name = "validate";
    descr = "structural audit + frame-simulator round trip";
    run =
      (fun ctx s ->
        match Rt_core.Solution.validate ctx.prob s with
        | Ok () -> Pass
        | Error e -> Fail e);
  }

let oracle_lower_bound =
  {
    name = "lower-bound";
    descr = "total dominates the pooling + fractional-rejection bound";
    run =
      (fun ctx s ->
        match total_cost ctx s with
        | Error e -> Fail e
        | Ok c ->
            let lb = Lazy.force ctx.lb in
            if Fc.geq ~eps c.Rt_core.Solution.total lb then Pass
            else
              Fail
                (Printf.sprintf "total %.9g below lower bound %.9g"
                   c.Rt_core.Solution.total lb));
  }

let oracle_exact =
  {
    name = "exact";
    descr =
      "total dominates the branch-and-bound optimum; on m=1 the cycle DP \
       agrees with it";
    run =
      (fun ctx s ->
        match Lazy.force ctx.exact with
        | Too_big -> Skip "instance above exact cap"
        | Broken e -> Fail e
        | Optimum (_, opt) -> (
            match total_cost ctx s with
            | Error e -> Fail e
            | Ok c ->
                if not (Fc.geq ~eps c.Rt_core.Solution.total opt) then
                  Fail
                    (Printf.sprintf
                       "heuristic total %.9g beats the proven optimum %.9g"
                       c.Rt_core.Solution.total opt)
                else Lazy.force ctx.dp_check));
  }

let replay_edf ctx (s : Rt_core.Solution.t) =
  let proc = Instance.processor ctx.inst.Instance.proc in
  let cycles_of =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (it : Instance.item) ->
        Hashtbl.replace tbl it.Instance.id it.Instance.wcec)
      ctx.inst.Instance.items;
    fun id -> Hashtbl.find_opt tbl id
  in
  let buckets = Rt_prelude.Math_util.range 0 (ctx.inst.Instance.m - 1) in
  let check_bucket j =
    let items = Rt_partition.Partition.bucket s.Rt_core.Solution.partition j in
    if items = [] then Ok ()
    else
      let tasks =
        List.filter_map
          (fun (it : Rt_task.Task.item) ->
            match cycles_of it.Rt_task.Task.item_id with
            | None -> None
            | Some cycles ->
                Some
                  (Rt_task.Task.periodic ~id:it.Rt_task.Task.item_id ~cycles
                     ~period:ctx.inst.Instance.frame_ticks ()))
          items
      in
      if List.length tasks <> List.length items then
        Error
          (Printf.sprintf "processor %d holds items foreign to the instance"
             j)
      else
        let u = Rt_partition.Partition.load s.Rt_core.Solution.partition j in
        let speed =
          if Rt_power.Processor.is_ideal proc then
            Fc.clamp ~lo:0. ~hi:(Rt_power.Processor.s_max proc) u
          else
            match Rt_power.Processor.nearest_level_above proc u with
            | Some lvl -> lvl
            | None -> Rt_power.Processor.s_max proc
        in
        match Rt_sim.Edf_sim.run ~proc ~speed tasks with
        | Error e -> Error (Printf.sprintf "EDF replay on processor %d: %s" j e)
        | Ok o -> (
            match o.Rt_sim.Edf_sim.misses with
            | [] -> Ok ()
            | m :: _ ->
                Error
                  (Printf.sprintf
                     "EDF replay on processor %d misses task %d by %.9g" j
                     m.Rt_sim.Edf_sim.task_id m.Rt_sim.Edf_sim.late_by))
  in
  List.fold_left
    (fun acc j -> match acc with Error _ -> acc | Ok () -> check_bucket j)
    (Ok ()) buckets

let oracle_replay =
  {
    name = "replay";
    descr =
      "frame-simulator rebuild with energy agreement, and per-processor \
       EDF replay with zero misses";
    run =
      (fun ctx s ->
        match total_cost ctx s with
        | Error e -> Fail e
        | Ok c -> (
            match
              Rt_sim.Frame_sim.build
                ~proc:(Instance.processor ctx.inst.Instance.proc)
                ~frame_length:(float_of_int ctx.inst.Instance.frame_ticks)
                s.Rt_core.Solution.partition
            with
            | Error e -> Fail ("frame-simulator rebuild: " ^ e)
            | Ok sim -> (
                match Rt_sim.Frame_sim.validate sim with
                | Error e -> Fail ("frame-simulator validation: " ^ e)
                | Ok () ->
                    if
                      not
                        (Fc.approx_eq ~eps c.Rt_core.Solution.energy
                           sim.Rt_sim.Frame_sim.total_energy)
                    then
                      Fail
                        (Printf.sprintf
                           "energy accounting disagrees: cost says %.9g, \
                            simulator integrates %.9g"
                           c.Rt_core.Solution.energy
                           sim.Rt_sim.Frame_sim.total_energy)
                    else (
                      match replay_edf ctx s with
                      | Ok () -> Pass
                      | Error e -> Fail e))));
  }

let all = [ oracle_validate; oracle_lower_bound; oracle_exact; oracle_replay ]

let find name = List.find_opt (fun o -> String.equal o.name name) all

let run_all ctx s = List.map (fun o -> (o.name, o.run ctx s)) all

let first_failure outcomes =
  List.find_map
    (function name, Fail d -> Some (name, d) | _ -> None)
    outcomes
