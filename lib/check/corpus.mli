(** The minimized-counterexample corpus.

    When the fuzzer finds a failing (instance, algorithm, oracle/law)
    triple it shrinks the instance and serializes the result as one JSON
    file under [test/corpus/]. Committed entries become deterministic
    regression tests: every run re-parses them, re-serializes them
    byte-identically (the codec is canonical, so drift is loud), re-runs
    the recorded algorithm through the full oracle registry, and — when
    the capture recorded the exact optimum — re-proves that optimum.

    An entry therefore stays useful after the bug it captured is fixed:
    it pins the instance that once broke an oracle and asserts the whole
    registry now agrees on it. *)

type entry = {
  name : string;  (** file stem; unique within the corpus directory *)
  algorithm : string;
      (** the algorithm under test at capture time (a {!Fuzz.algorithms}
          key), or ["-"] when a metamorphic law failed (laws judge the
          instance, not one algorithm) *)
  oracle : string;  (** {!Oracle} or {!Laws} name that fired *)
  detail : string;  (** the failure message observed at capture time *)
  opt_cost : float option;
      (** branch-and-bound optimum recorded at capture (when the
          instance was within the exact cap) *)
  instance : Instance.t;  (** minimized *)
}

val to_json : entry -> Json.t
val of_json : Json.t -> (entry, string) result

val to_string : entry -> string
val of_string : string -> (entry, string) result

val save : dir:string -> entry -> (string, string) result
(** Write [<dir>/<name>.json]; returns the path. Errors on I/O failure
    (the directory must exist). *)

val load_file : string -> (entry, string) result

val load_dir : string -> ((string * entry) list, string) result
(** Every [*.json] in the directory as [(path, entry)], sorted by path
    so replay order is deterministic. A file that fails to parse is an
    [Error] — a corrupt corpus must fail loudly, not skip silently. *)

val replay :
  algorithms:(string * (Rt_core.Problem.t -> Rt_core.Solution.t)) list ->
  entry -> (unit, string) result
(** The regression check described above: the recorded algorithm (when
    not ["-"]) passes all four oracles, every metamorphic law holds on
    the instance, and the recorded [opt_cost] (if any) is reproduced by
    the exact solver within {!Oracle.eps}. *)
