(** Serializable problem descriptions shared by every conformance suite.

    An instance is the {e seedable, shrinkable, JSON-stable} description
    of a frame-model rejection problem: a processor preset, [m]
    processors, an integer frame length (ticks) and integer-cycle items
    with float penalties. Keeping cycles integral makes the description
    exact under serialization and lets the m = 1 instances feed the
    {!Rt_core.Uni_dp} cycle-space oracle unchanged.

    Every suite (QCheck properties, the stress loop, the fuzzer, corpus
    replay) builds its workloads through this module, so a failure found
    by any of them can be written down, minimized and replayed by all the
    others. *)

type proc_kind = Cubic | Xscale | Xscale_levels

type item = {
  id : int;
  wcec : int;  (** worst-case execution cycles, > 0 *)
  penalty : float;  (** rejection penalty, >= 0, finite *)
}

type t = {
  proc : proc_kind;
  m : int;  (** processors, >= 1 *)
  frame_ticks : int;  (** frame length in ticks, > 0 *)
  items : item list;  (** distinct ids *)
}

val processor : proc_kind -> Rt_power.Processor.t
(** The concrete preset: cubic (dormant-disable), or XScale
    ideal/levels with zero-overhead dormancy — the same presets the
    existing test suites use, all with [s_max = 1]. *)

val proc_name : proc_kind -> string
val proc_of_name : string -> (proc_kind, string) result

val make :
  proc:proc_kind -> m:int -> frame_ticks:int -> item list -> (t, string) result
(** Checks the field ranges above and id distinctness. *)

val frame_tasks : t -> Rt_task.Task.frame list
(** The items as frame tasks (for {!Rt_core.Uni_dp} and
    {!Rt_core.Problem.of_frame}). *)

val periodic_tasks : t -> Rt_task.Task.periodic list
(** The items as implicit-deadline periodic tasks with period = frame —
    a frame task {e is} the one-job periodic task, which is what lets
    the EDF simulator replay frame solutions. *)

val to_problem : t -> (Rt_core.Problem.t, string) result

val n : t -> int
val label : t -> string
(** One-line summary ["proc=xscale m=2 frame=100 n=5 load=1.32"]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Serialization} *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

(** {1 Generation}

    Both entry points draw from the same distribution; one is seeded by
    the repo's {!Rt_prelude.Rng} (fuzzer, stress loop), the other is a
    [QCheck2] generator whose integrated shrinking already performs the
    structural moves (drop a task, shrink cycles toward 1, shrink [m]). *)

type params = {
  n_lo : int;  (** at least 1 *)
  n_hi : int;
  m_hi : int;  (** m drawn in [1, m_hi] *)
  frame_ticks : int;
  load_lo : float;  (** target load factor range; above 1 forces rejection *)
  load_hi : float;
}

val default_params : params
(** n in [1, 9], m in [1, 3], frame 100, load in [0.25, 2.0] — small
    enough for the exact oracles, wide enough to cover underload and
    forced-rejection regimes on every preset. *)

val generate : Rt_prelude.Rng.t -> params -> t
(** Weights via UUniFast at a drawn load target, penalties log-uniform
    around the item's top-speed reference energy (the scale that makes
    accept/reject a real trade-off; see {!Rt_task.Penalty}). *)

val qcheck_gen : ?params:params -> unit -> t QCheck2.Gen.t

(** {1 Shrinking} *)

val shrink : t -> t Seq.t
(** Structure-aware one-step reductions, most aggressive first: drop one
    item; reduce [m]; canonicalize the processor to [Cubic]; halve an
    item's cycles; zero or halve an item's penalty. Every candidate is a
    well-formed instance; each step strictly decreases a well-founded
    measure, so greedy descent terminates. *)

val minimize : still_fails:(t -> string option) -> t -> t * string option
(** Greedy shrink loop: repeatedly move to the first one-step reduction
    on which [still_fails] returns a failure, until none does (or a
    fixed fuel bound is hit). Returns the minimized instance and the
    failure detail observed on it ([None] only if the original never
    failed). *)
