type t = {
  domains : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  queue : (unit -> unit) Queue.t; [@rt.guarded_by "mutex"]
  mutable stopping : bool; [@rt.guarded_by "mutex"]
  (* mutable so [create] can hand the workers the very record they are
     part of — a [{t with workers}] copy would leave them polling a
     [stopping] field that [shutdown] never sets *)
  mutable workers : unit Domain.t list;
      [@rt.domain_safe
        "written once by create before run_list can publish work; only \
         the owning domain reads it (shutdown)"]
}

(* Jobs are pre-wrapped by [run_list] to never raise, so a worker's loop
   body is exception-free by construction; a worker exits only when the
   pool is stopping and the queue has drained.  Every critical section
   in this file goes through [Mutex.protect] all the same: the lint's
   lock-discipline rules cannot prove a bare section exception-free
   across refactors, and protect makes that invariant structural. *)
let rec worker_loop t =
  let job =
    Mutex.protect t.mutex (fun () ->
        while Queue.is_empty t.queue && not t.stopping do
          Condition.wait t.has_work t.mutex
        done;
        if Queue.is_empty t.queue then None else Some (Queue.pop t.queue))
  in
  match job with
  | None -> ()
  | Some job ->
      job ();
      worker_loop t

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let t =
    {
      domains;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
    }
  in
  t.workers <-
    List.init domains (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.domains

let shutdown t =
  Mutex.protect t.mutex (fun () ->
      t.stopping <- true;
      Condition.broadcast t.has_work);
  List.iter Domain.join t.workers

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

type 'a slot = Empty | Value of 'a | Raised of exn * Printexc.raw_backtrace

let run_list t thunks =
  let n = List.length thunks in
  if n = 0 then []
  else begin
    let results = Array.make n Empty [@rt.guarded_by "finished"] in
    let pending = ref n [@rt.guarded_by "finished"] in
    let finished = Mutex.create () in
    let all_done = Condition.create () in
    Mutex.protect t.mutex (fun () ->
        if t.stopping then invalid_arg "Pool.run_list: pool is shut down";
        List.iteri
          (fun i thunk ->
            Queue.add
              ((fun () ->
                 let outcome =
                   match thunk () with
                   | v -> Value v
                   | exception e ->
                       Raised (e, Printexc.get_raw_backtrace ())
                 in
                 Mutex.protect finished (fun () ->
                     results.(i) <- outcome;
                     decr pending;
                     if !pending = 0 then Condition.signal all_done))
              [@rt.cross_domain])
              t.queue)
          thunks;
        Condition.broadcast t.has_work);
    Mutex.protect finished (fun () ->
        while !pending > 0 do
          Condition.wait all_done finished
        done);
    (* every job has completed and the workers are done with [results]
       (reading it outside the lock is safe after the join above, and
       must stay outside [Mutex.protect], whose [raise] would replace
       the re-raised job backtrace); surface the lowest-index failure —
       a deterministic choice however the domains interleaved — else
       the values in submission order *)
    Array.iter
      (function Raised (e, bt) -> Printexc.raise_with_backtrace e bt | _ -> ())
      results;
    Array.to_list
      (Array.map
         (function
           | Value v -> v
           | Empty | Raised _ ->
               (* lint: allow-no-raise "unreachable: pending reached 0" *)
               assert false)
         results)
  end

let map ?pool f xs =
  match pool with
  | None -> List.map f xs
  | Some t -> run_list t (List.map (fun x () -> f x) xs)

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some j when j >= 1 -> Ok j
  | Some j -> Error (Printf.sprintf "job count must be at least 1 (got %d)" j)
  | None -> Error (Printf.sprintf "job count must be an integer (got %S)" s)

let resolve_jobs ?jobs () =
  match jobs with
  | Some j when j >= 1 -> Ok j
  | Some j ->
      Error (Printf.sprintf "--jobs must be at least 1 (got %d)" j)
  | None -> (
      match Sys.getenv_opt "RT_JOBS" with
      | None -> Ok 1
      | Some s -> (
          match parse_jobs s with
          | Ok j -> Ok j
          | Error msg -> Error ("RT_JOBS: " ^ msg)))

let default_domains () =
  match resolve_jobs () with Ok j -> j | Error _ -> 1
