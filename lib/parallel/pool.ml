type t = {
  domains : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  (* mutable so [create] can hand the workers the very record they are
     part of — a [{t with workers}] copy would leave them polling a
     [stopping] field that [shutdown] never sets *)
  mutable workers : unit Domain.t list;
}

(* Jobs are pre-wrapped by [run_list] to never raise, so a worker's loop
   body is exception-free by construction; a worker exits only when the
   pool is stopping and the queue has drained. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.has_work t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    job ();
    worker_loop t
  end

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let t =
    {
      domains;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
    }
  in
  t.workers <-
    List.init domains (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.domains

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

type 'a slot = Empty | Value of 'a | Raised of exn * Printexc.raw_backtrace

let run_list t thunks =
  let n = List.length thunks in
  if n = 0 then []
  else begin
    let results = Array.make n Empty in
    let pending = ref n in
    let finished = Mutex.create () in
    let all_done = Condition.create () in
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run_list: pool is shut down"
    end;
    List.iteri
      (fun i thunk ->
        Queue.add
          (fun () ->
            let outcome =
              match thunk () with
              | v -> Value v
              | exception e -> Raised (e, Printexc.get_raw_backtrace ())
            in
            Mutex.lock finished;
            results.(i) <- outcome;
            decr pending;
            if !pending = 0 then Condition.signal all_done;
            Mutex.unlock finished)
          t.queue)
      thunks;
    Condition.broadcast t.has_work;
    Mutex.unlock t.mutex;
    Mutex.lock finished;
    while !pending > 0 do
      Condition.wait all_done finished
    done;
    Mutex.unlock finished;
    (* every job has completed; surface the lowest-index failure (a
       deterministic choice however the domains interleaved), else the
       values in submission order *)
    Array.iter
      (function Raised (e, bt) -> Printexc.raise_with_backtrace e bt | _ -> ())
      results;
    Array.to_list
      (Array.map
         (function
           | Value v -> v
           | Empty | Raised _ ->
               (* lint: allow-no-raise "unreachable: pending reached 0" *)
               assert false)
         results)
  end

let map ?pool f xs =
  match pool with
  | None -> List.map f xs
  | Some t -> run_list t (List.map (fun x () -> f x) xs)

let default_domains () =
  match Sys.getenv_opt "RT_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | Some _ | None -> 1)
  | None -> 1
