(* Growable ring buffer under one mutex. [head] indexes the oldest
   (shallowest) entry; the owner's end is [head + len - 1]. Slots are
   cleared on removal so the deque never retains a subtree (and its
   load/bucket arrays) it no longer owns. *)

type 'a t = {
  lock : Mutex.t;
  mutable buf : 'a option array; [@rt.guarded_by "lock"]
  mutable head : int; [@rt.guarded_by "lock"]
  mutable len : int; [@rt.guarded_by "lock"]
}

let create () =
  { lock = Mutex.create (); buf = Array.make 16 None; head = 0; len = 0 }

(* growth is inlined in [push] rather than a helper: the concurrency
   lint checks lock discipline lexically, and keeping every guarded
   access inside the [Mutex.protect] literal keeps the proof visible *)
let push t x =
  Mutex.protect t.lock (fun () ->
      if t.len = Array.length t.buf then begin
        (* full: double the capacity, re-packing entries from [head] *)
        let cap = Array.length t.buf in
        let buf = Array.make (2 * cap) None in
        for i = 0 to t.len - 1 do
          buf.(i) <- t.buf.((t.head + i) mod cap)
        done;
        t.buf <- buf;
        t.head <- 0
      end;
      t.buf.((t.head + t.len) mod Array.length t.buf) <- Some x;
      t.len <- t.len + 1)

let pop t =
  Mutex.protect t.lock (fun () ->
      if t.len = 0 then None
      else begin
        let i = (t.head + t.len - 1) mod Array.length t.buf in
        let x = t.buf.(i) in
        t.buf.(i) <- None;
        t.len <- t.len - 1;
        x
      end)

let steal t =
  Mutex.protect t.lock (fun () ->
      if t.len = 0 then None
      else begin
        let x = t.buf.(t.head) in
        t.buf.(t.head) <- None;
        t.head <- (t.head + 1) mod Array.length t.buf;
        t.len <- t.len - 1;
        x
      end)

let length t = Mutex.protect t.lock (fun () -> t.len)
