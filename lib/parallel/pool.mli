(** A fixed-size pool of worker domains with a mutex/condition work queue.

    OCaml 5.1's stdlib ships domains but no scheduler, and this repo
    deliberately adds no external dependency (domainslib is not in the
    build image) — so this is the one, hand-rolled substrate every
    parallel feature builds on: the solver portfolio, the root-split
    branch-and-bound, and the embarrassingly-parallel experiment/fuzz
    sweeps.

    Design constraints, in order:

    - {e determinism}: {!run_list} returns results in {e submission
      order}, whatever order the domains finished in. Combined with
      per-item seeds, a parallel sweep is byte-identical to its
      sequential reference at any domain count (docs/PARALLEL.md).
    - {e error transparency}: if jobs raised, the lowest-index exception
      is re-raised (with its backtrace) after {e every} job completed —
      a failure never leaves stray jobs mutating shared state, and the
      choice of exception does not depend on scheduling.
    - {e simplicity}: a plain FIFO under one mutex. Queue contention is
      irrelevant at this grain — jobs are whole solver runs or whole
      replications, never inner-loop work items.

    Not reentrant: a job must not call {!run_list} on the pool running
    it (the nested call could wait on jobs queued behind the caller —
    with every worker blocked the same way, the pool deadlocks). Nest
    parallelism by splitting wider at the top instead. *)

type t

val create : domains:int -> t
(** Spawn [domains] worker domains (they idle on a condition variable
    until work arrives). [domains = 1] is a valid degenerate pool: same
    machinery, sequential throughput — useful for tests and as the
    conservative default. @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** Number of worker domains. *)

val run_list : t -> (unit -> 'a) list -> 'a list
(** Run every thunk on the pool and return their results in submission
    order. Blocks until all complete. If any raised, re-raises the
    lowest-index exception after all jobs finished. Must not be called
    from inside a job on the same pool (see the module note on
    reentrancy). @raise Invalid_argument if the pool was shut down. *)

val map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?pool f xs] — [List.map f xs] through the pool; without a pool
    it {e is} [List.map f xs]. The escape hatch that lets every sweep
    offer parallelism as a pure opt-in. *)

val shutdown : t -> unit
(** Drain the queue, stop and join every worker. Idempotent in effect;
    subsequent {!run_list} calls are refused. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] even on exceptions. *)

val parse_jobs : string -> (int, string) result
(** Parse a job count (the [RT_JOBS]/[--jobs] grammar): a positive
    integer, surrounding whitespace ignored. The error is a full,
    human-readable sentence — callers prepend only the setting's name. *)

val resolve_jobs : ?jobs:int -> unit -> (int, string) result
(** The effective worker-domain count: an explicit [jobs] (rejected
    with a clear message when [< 1]) beats the [RT_JOBS] environment
    variable (rejected with a clear message when set but malformed)
    beats the default of 1. Parallelism in this repo is opt-in: the
    default never changes results (determinism aside, a 1-domain pool
    avoids oversubscribing CI containers). *)

val default_domains : unit -> int
(** [resolve_jobs ()] with errors mapped to the sequential default of 1
    — for contexts (benches, ad-hoc tools) where a malformed [RT_JOBS]
    should degrade rather than abort. Command-line entry points should
    use {!resolve_jobs} and surface the error instead. *)
