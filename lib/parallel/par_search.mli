(** Work-stealing domain-parallel branch-and-bound.

    The sequential {!Rt_exact.Search} explores one depth-first tree;
    here the tree is carved into subtrees {e on demand}: each domain
    keeps a private LIFO {!Deque} of pending subtrees, pops the deepest
    (depth-first, cache-hot), and expands any subtree larger than the
    grain via {!Rt_exact.Search.expand_subtree} — pushing the children
    where idle domains can {!Deque.steal} the {e shallowest} (largest)
    one. The root enters an ownerless seed deque, so every domain's
    first subtree is stolen and load balancing is the only distribution
    mechanism there is. All domains cooperate through one atomic shared
    incumbent: an improvement found anywhere immediately tightens every
    prune bound, and a whole pending subtree is dropped when its lower
    bound is {e strictly} above the published cost.

    Determinism: a completed run is byte-identical to the sequential
    {!Rt_exact.Search.branch_and_bound} at any pool size, split factor
    and steal schedule. Three rules carry the contract: subtree results
    combine by (cost, then DFS path, keeping strict improvements), the
    shared bound prunes only {e strictly} worse subtrees (in-search and
    whole-subtree drops alike), and
    {!Rt_exact.Search.expand_subtree} partitions a subtree's leaves
    exactly — so however the tree was carved and wherever the pieces
    ran, the combined result is the depth-first-earliest optimum. Node
    counts, steal counts and wall time are the only
    scheduling-dependent outputs ({!stats}). See docs/PARALLEL.md.

    Budget-exhausted runs keep {e validity} but not reproducibility:
    every subtree — stolen or not — is seeded with its reject-the-rest
    incumbent before exploring, so whatever subset of subtrees ran to
    any depth, the combined solution is feasible ([exhausted = true]
    marks it, and once the deadline has passed the remaining pending
    subtrees drain at one node each, returning just their seeds). *)

val default_split_factor : int
(** 4 — mapped to a work grain of [max 3 (6 - log2 factor)] open items:
    a popped subtree with more undecided items than the grain is
    expanded into stealable children instead of run whole, so larger
    factors granulate finer. Any value ≥ 1 is meaningful; {e results}
    are identical at every value, only balance and overhead move. *)

type stats = {
  domains : int;  (** workers the run was scheduled across *)
  steals : int list;  (** successful steals, per worker *)
  splits : int;  (** subtrees expanded instead of run (spine nodes) *)
  pruned : int;
      (** pending subtrees dropped whole against the shared bound *)
  subtrees : (int list * int) list;
      (** (DFS path, nodes visited) for every subtree actually run, in
          DFS order. The paths are pairwise prefix-free and cover the
          tree exactly — the accounting the determinism suite asserts:
          nodes here plus [splits] equals the sequential visit count on
          prune-free runs. *)
}

val branch_and_bound_stats :
  ?pool:Pool.t -> ?split_factor:int -> ?node_budget:int ->
  ?time_budget:float -> ?prune:bool -> m:int -> capacity:float ->
  bucket_cost:(float -> float) -> Rt_task.Task.item list ->
  (Rt_exact.Search.anytime * stats, string) result
(** The raw-level work-stealing search, with its scheduling telemetry.
    [node_budget] bounds each {e subtree} run, and the first exhausted
    run flips the engine into drain mode — no further expansion, every
    pending subtree runs under its own budget — so the total visit
    count stays bounded even though the frontier is dynamic.
    [time_budget] is one monotonic wall-clock deadline shared by all
    workers. Without [pool]
    one worker runs on the calling domain — same machinery, same
    answer, no spawns. [prune] (default [true]) exists for the test
    battery: [~prune:false] disables both the in-search bound and the
    whole-subtree drop, making node accounting exact. Errors on
    [m < 1] or [capacity <= 0]. *)

val branch_and_bound_budgeted :
  ?pool:Pool.t -> ?split_factor:int -> ?node_budget:int ->
  ?time_budget:float -> m:int -> capacity:float ->
  bucket_cost:(float -> float) -> Rt_task.Task.item list ->
  (Rt_exact.Search.anytime, string) result
(** {!branch_and_bound_stats} without the telemetry; mirrors
    {!Rt_exact.Search.branch_and_bound_budgeted}. *)

val solve_stats :
  ?pool:Pool.t -> ?split_factor:int -> ?node_budget:int ->
  ?time_budget:float -> Rt_core.Problem.t ->
  (Rt_core.Exact.budgeted * stats, string) result
(** Problem-level wrapper with telemetry, and the same cross-check as
    {!solve}: the search's internal cost must agree with
    {!Rt_core.Solution.cost} on the returned solution. *)

val solve :
  ?pool:Pool.t -> ?split_factor:int -> ?node_budget:int ->
  ?time_budget:float -> Rt_core.Problem.t ->
  (Rt_core.Exact.budgeted, string) result
(** Problem-level wrapper mirroring
    {!Rt_core.Exact.branch_and_bound_budgeted}. *)
