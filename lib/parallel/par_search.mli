(** Root-split domain-parallel branch-and-bound.

    The sequential {!Rt_exact.Search} explores one depth-first tree; here
    the first levels of that tree are {!Rt_exact.Search.split} into a
    frontier of independent subtrees — each a (bucket/reject) prefix with
    its own private loads/buckets state — distributed across a
    {!Pool}. The domains cooperate through one atomic shared incumbent:
    any improvement found in one subtree immediately tightens the prune
    bound of every other, so the parallel search visits {e fewer} nodes
    than the sum of isolated subtree searches.

    Determinism: results are combined by (cost, then subtree DFS index),
    and the shared bound only prunes {e strictly} worse subtrees, so a
    run that completes returns the same solution as the sequential
    {!Rt_exact.Search.branch_and_bound} — at any pool size and any split
    factor. Node counts (and with them, wall time) are the only
    scheduling-dependent outputs. Budget-exhausted runs keep validity
    (every subtree is seeded with its reject-the-rest incumbent) but not
    this reproducibility guarantee; see docs/PARALLEL.md. *)

val default_split_factor : int
(** 4 — the frontier targets four subtrees per domain, enough slack for
    the work-stealing-free FIFO to balance uneven subtree sizes. *)

val branch_and_bound_budgeted :
  ?pool:Pool.t -> ?split_factor:int -> ?node_budget:int ->
  ?time_budget:float -> m:int -> capacity:float ->
  bucket_cost:(float -> float) -> Rt_task.Task.item list ->
  (Rt_exact.Search.anytime, string) result
(** Raw-level parallel anytime search; mirrors
    {!Rt_exact.Search.branch_and_bound_budgeted}. [node_budget] bounds
    each {e subtree} (the frontier width times it bounds the whole run);
    [time_budget] is one monotonic wall-clock deadline shared by all
    subtrees. Without [pool] the subtrees run sequentially on the
    calling domain — same answer, no spawns. [nodes] sums all subtrees.
    Errors on [m < 1] or [capacity <= 0]. *)

val solve :
  ?pool:Pool.t -> ?split_factor:int -> ?node_budget:int ->
  ?time_budget:float -> Rt_core.Problem.t ->
  (Rt_core.Exact.budgeted, string) result
(** Problem-level wrapper mirroring
    {!Rt_core.Exact.branch_and_bound_budgeted}, with the same
    cross-check: the search's internal cost must agree with
    {!Rt_core.Solution.cost} on the returned solution. *)
