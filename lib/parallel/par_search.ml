module Fc = Rt_prelude.Float_cmp
module Search = Rt_exact.Search

let default_split_factor = 4

let combine results =
  (* submission order = subtree DFS order, so keeping only strict
     improvements makes the earliest subtree win ties — the same solution
     the sequential depth-first search would have returned *)
  List.fold_left
    (fun acc (a : Search.anytime) ->
      match acc with
      | None -> Some a
      | Some best ->
          let better = Fc.exact_lt a.Search.best.cost best.Search.best.cost in
          let merged = if better then a.Search.best else best.Search.best in
          Some
            {
              Search.best = merged;
              nodes = best.Search.nodes + a.Search.nodes;
              exhausted = best.Search.exhausted || a.Search.exhausted;
            })
    None results

let branch_and_bound_budgeted ?pool ?(split_factor = default_split_factor)
    ?node_budget ?time_budget ~m ~capacity ~bucket_cost items =
  if m < 1 then Error "Par_search: m < 1"
  else if Fc.exact_le capacity 0. then Error "Par_search: capacity <= 0"
  else begin
    let domains = match pool with None -> 1 | Some p -> Pool.size p in
    let width = max 1 (split_factor * domains) in
    let subtrees = Search.split ~m ~capacity ~bucket_cost ~width items in
    let shared = Search.shared () in
    let deadline = Option.map Search.deadline_of_budget time_budget in
    let results =
      Pool.map ?pool
        (Search.run_subtree ~shared ?node_budget ?deadline ~prune:true)
        subtrees
    in
    match combine results with
    | Some a -> Ok a
    | None -> Error "Par_search: empty frontier"
  end

let solve ?pool ?split_factor ?node_budget ?time_budget (p : Rt_core.Problem.t)
    =
  match
    branch_and_bound_budgeted ?pool ?split_factor ?node_budget ?time_budget
      ~m:p.Rt_core.Problem.m
      ~capacity:(Rt_core.Problem.capacity p)
      ~bucket_cost:(Rt_core.Problem.bucket_energy p)
      p.Rt_core.Problem.items
  with
  | Error _ as e -> e
  | Ok (a : Search.anytime) -> (
      let solution =
        {
          Rt_core.Solution.partition = a.Search.best.Search.partition;
          rejected = a.Search.best.Search.rejected;
        }
      in
      match Rt_core.Solution.cost p solution with
      | Error msg -> Error ("Par_search: invalid best-so-far solution: " ^ msg)
      | Ok c ->
          if
            not
              (Fc.approx_eq ~eps:1e-6 c.Rt_core.Solution.total
                 a.Search.best.Search.cost)
          then Error "Par_search: search cost disagrees with Solution.cost"
          else
            Ok
              {
                Rt_core.Exact.solution;
                nodes = a.Search.nodes;
                exhausted = a.Search.exhausted;
              })
