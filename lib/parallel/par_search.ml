module Fc = Rt_prelude.Float_cmp
module Clock = Rt_prelude.Clock
module Search = Rt_exact.Search

let default_split_factor = 4

(* The split factor maps to a *grain*: a popped subtree with more than
   [grain] undecided items is expanded (its children pushed on the
   owner's deque, stealable); at or below it, the subtree is run whole.
   Larger factors granulate finer. The floor of 3 keeps run units at
   least a few hundred raw nodes, so deque traffic never dominates. *)
let grain_of_split_factor sf =
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  max 3 (6 - log2 (max 1 sf))

type stats = {
  domains : int;
  steals : int list;
  splits : int;
  pruned : int;
  subtrees : (int list * int) list;
}

(* one worker's private tally, allocated inside its own thunk (fresh per
   domain — nothing here crosses domains) and returned through the pool *)
type worker_out = {
  results : (int list * Search.anytime) list;
  w_steals : int;
  w_splits : int;
  w_pruned : int;
}

let combine results =
  (* results arrive DFS-sorted (by subtree path), so keeping only strict
     improvements makes the earliest subtree win ties — the same solution
     the sequential depth-first search would have returned *)
  List.fold_left
    (fun acc (a : Search.anytime) ->
      match acc with
      | None -> Some a
      | Some best ->
          let better = Fc.exact_lt a.Search.best.cost best.Search.best.cost in
          let merged = if better then a.Search.best else best.Search.best in
          Some
            {
              Search.best = merged;
              nodes = best.Search.nodes + a.Search.nodes;
              exhausted = best.Search.exhausted || a.Search.exhausted;
            })
    None results

(* ---------------------------------------------------------------- *)
(* The work-stealing run.

   [workers + 1] deques: one per worker plus an ownerless seed deque
   holding the root subtree, so every worker's first unit of work — the
   root-taker's included — arrives by stealing; bootstrapping is not a
   special case. Each worker pops its own deque LIFO (depth-first), and
   when empty sweeps the other deques' shallow ends. Workers coordinate
   through three atomics:

   - [outstanding]: subtrees in deques plus in flight. An expansion
     converts one outstanding subtree into k (incremented *before* the
     children are pushed, so a thief finishing a child early can never
     drive the count to zero while the parent still holds work);
     completing or pruning a subtree decrements. Zero means done.
   - the shared incumbent (inside [Search.run_subtree]), which makes
     pruning cooperative without threatening determinism: both the
     in-search cut and the whole-subtree drop below fire only on
     *strictly* worse bounds.
   - [failed]: set when any worker's subtree run raises, so the others
     stop hunting instead of spinning on an [outstanding] count that
     will never reach zero; the pool then re-raises the exception and
     stays usable (same contract as a plain failing batch).

   Idle workers spin with [Domain.cpu_relax] between sweeps rather than
   parking on a condition variable: run units are bounded by the grain
   (a few hundred nodes, microseconds), so hunger gaps are short, and
   spinning keeps every deque operation a single self-contained
   [Mutex.protect] section — no cross-deque lock nesting for the
   lock-order analysis to reason about. *)

let run_ws ~workers ~grain ~prune ?node_budget ?deadline root =
  let slots = workers + 1 in
  let shared = Search.shared () in
  let deques =
    (Array.init slots (fun _ -> Deque.create ())
    [@rt.domain_safe
      "allocated and fully populated before the workers are submitted; \
       indexed reads only afterwards — all mutation is inside Deque's own \
       critical sections"])
  in
  let outstanding = Atomic.make 1 in
  let failed = Atomic.make false in
  (* set on the first budget-exhausted subtree run: the engine stops
     expanding and drains — without this, a tiny [node_budget] on a big
     instance would keep carving frontier (expansion visits no nodes,
     so per-subtree budgets alone cannot bound the spine) *)
  let drained = Atomic.make false in
  Deque.push deques.(slots - 1) root;
  let worker w () =
    let results = ref [] in
    let steals = ref 0 in
    let splits = ref 0 in
    let pruned = ref 0 in
    let deadline_expired () =
      match deadline with
      | None -> false
      | Some d -> Fc.exact_gt (Clock.now ()) d
    in
    let finish st =
      (* an expired deadline turns the run into a drain: a zero node
         budget stops at the first node, returning the subtree's
         reject-the-rest seed incumbent with [exhausted = true] — every
         pending subtree still yields a valid result, cheaply *)
      let node_budget = if deadline_expired () then Some 0 else node_budget in
      let a = Search.run_subtree ~shared ?node_budget ?deadline ~prune st in
      if a.Search.exhausted then Atomic.set drained true;
      results := (Search.subtree_path st, a) :: !results;
      ignore (Atomic.fetch_and_add outstanding (-1))
    in
    let process st =
      if
        prune
        && Fc.exact_gt (Search.subtree_bound st) (Search.shared_best shared)
      then begin
        (* strictly worse than a published feasible cost: no leaf below
           can match the returned optimum, so dropping the subtree whole
           preserves determinism (the subtree holding the optimum has
           bound <= optimum <= shared and is never dropped) *)
        incr pruned;
        ignore (Atomic.fetch_and_add outstanding (-1))
      end
      else if
        Search.subtree_open st > grain
        && (not (Atomic.get drained))
        && not (deadline_expired ())
      then
        match Search.expand_subtree st with
        | None -> finish st
        | Some children ->
            incr splits;
            ignore
              (Atomic.fetch_and_add outstanding (List.length children - 1));
            (* reversed, so the owner pops the first child next: the
               local order stays depth-first, and the deque's shallow
               end holds the latest (largest) unexplored siblings *)
            List.iter (Deque.push deques.(w)) (List.rev children)
      else finish st
    in
    let rec loop () =
      if not (Atomic.get failed) then
        match Deque.pop deques.(w) with
        | Some st ->
            process st;
            loop ()
        | None -> hunt 0
    and hunt k =
      if not (Atomic.get failed) then
        if k = slots - 1 then begin
          if Atomic.get outstanding <> 0 then begin
            Domain.cpu_relax ();
            hunt 0
          end
        end
        else
          let victim = (w + 1 + k) mod slots in
          match Deque.steal deques.(victim) with
          | Some st ->
              incr steals;
              process st;
              loop ()
          | None -> hunt (k + 1)
    in
    (match loop () with
    | () -> ()
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Atomic.set failed true;
        Printexc.raise_with_backtrace e bt);
    {
      results = !results;
      w_steals = !steals;
      w_splits = !splits;
      w_pruned = !pruned;
    }
  in
  worker

let branch_and_bound_stats ?pool ?(split_factor = default_split_factor)
    ?node_budget ?time_budget ?(prune = true) ~m ~capacity ~bucket_cost items
    =
  if m < 1 then Error "Par_search: m < 1"
  else if Fc.exact_le capacity 0. then Error "Par_search: capacity <= 0"
  else begin
    let workers = match pool with None -> 1 | Some p -> Pool.size p in
    let grain = grain_of_split_factor split_factor in
    let deadline = Option.map Search.deadline_of_budget time_budget in
    let root = Search.root_subtree ~m ~capacity ~bucket_cost items in
    let worker = run_ws ~workers ~grain ~prune ?node_budget ?deadline root in
    let outs = Pool.map ?pool (fun w -> worker w ()) (List.init workers Fun.id) in
    let sorted =
      List.sort
        (fun (p, _) (q, _) -> Search.compare_path p q)
        (List.concat_map (fun o -> o.results) outs)
    in
    match combine (List.map snd sorted) with
    | None -> Error "Par_search: every subtree was pruned before running"
    | Some a ->
        Ok
          ( a,
            {
              domains = workers;
              steals = List.map (fun o -> o.w_steals) outs;
              splits = List.fold_left (fun acc o -> acc + o.w_splits) 0 outs;
              pruned = List.fold_left (fun acc o -> acc + o.w_pruned) 0 outs;
              subtrees =
                List.map (fun (p, (a : Search.anytime)) -> (p, a.Search.nodes))
                  sorted;
            } )
  end

let branch_and_bound_budgeted ?pool ?split_factor ?node_budget ?time_budget ~m
    ~capacity ~bucket_cost items =
  Result.map fst
    (branch_and_bound_stats ?pool ?split_factor ?node_budget ?time_budget ~m
       ~capacity ~bucket_cost items)

let solve_stats ?pool ?split_factor ?node_budget ?time_budget
    (p : Rt_core.Problem.t) =
  match
    branch_and_bound_stats ?pool ?split_factor ?node_budget ?time_budget
      ~m:p.Rt_core.Problem.m
      ~capacity:(Rt_core.Problem.capacity p)
      ~bucket_cost:(Rt_core.Problem.bucket_energy p)
      p.Rt_core.Problem.items
  with
  | Error _ as e -> e
  | Ok ((a : Search.anytime), stats) -> (
      let solution =
        {
          Rt_core.Solution.partition = a.Search.best.Search.partition;
          rejected = a.Search.best.Search.rejected;
        }
      in
      match Rt_core.Solution.cost p solution with
      | Error msg -> Error ("Par_search: invalid best-so-far solution: " ^ msg)
      | Ok c ->
          if
            not
              (Fc.approx_eq ~eps:1e-6 c.Rt_core.Solution.total
                 a.Search.best.Search.cost)
          then Error "Par_search: search cost disagrees with Solution.cost"
          else
            Ok
              ( {
                  Rt_core.Exact.solution;
                  nodes = a.Search.nodes;
                  exhausted = a.Search.exhausted;
                },
                stats ))

let solve ?pool ?split_factor ?node_budget ?time_budget p =
  Result.map fst (solve_stats ?pool ?split_factor ?node_budget ?time_budget p)
