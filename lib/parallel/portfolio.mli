(** Race the heuristic family against budgeted exact search.

    The paper's hardness result (NP-completeness under bounded [s_max])
    means no single solver dominates: the greedy family answers in
    microseconds at unbounded quality loss, the branch-and-bound proves
    optimality at unbounded cost in time. The portfolio runs them {e as
    rivals}: every entrant solves the same instance, each heuristic
    publishes its cost to a shared atomic incumbent the moment it
    finishes, and the exact entrant's prune test reads that bound
    mid-flight — typically collapsing its search tree by orders of
    magnitude compared to its own all-reject seed. The portfolio is
    useful even on one domain (run sequentially, heuristics first, the
    bound still pre-seeds the exact search); a {!Pool} overlaps the
    entrants in wall time on top.

    The winner is chosen deterministically — lowest {!Rt_core.Solution}
    cost, ties to the earliest entrant, heuristics listed before the
    exact entrant — and is re-validated through the simulator-backed
    {!Rt_core.Solution.validate}. When the exact entrant completes
    within its budgets, the outcome (winner, cost, solution bytes) is
    identical at any pool size: the shared bound prunes only strictly
    worse subtrees, so publication timing affects speed, never results
    (docs/PARALLEL.md). Under an exhausted budget the incumbent the
    exact entrant happened to reach is inherently timing-dependent;
    [stats] reports [exhausted] so callers can tell the two regimes
    apart. *)

type stat = {
  name : string;
  cost : float option;  (** [None] — the entrant forfeited (infeasible) *)
  wall : float;  (** entrant wall-clock seconds ({!Rt_prelude.Clock}) *)
  nodes : int;  (** search nodes (0 for heuristic entrants) *)
  exhausted : bool;  (** exact entrant only: budget ran out *)
}

type outcome = {
  solution : Rt_core.Solution.t;  (** the winning, re-validated solution *)
  cost : float;  (** its {!Rt_core.Solution.cost} total *)
  winner : string;  (** entrant name *)
  stats : stat list;  (** per-entrant, in entrant order (exact last) *)
}

val default_entrants :
  (string * (Rt_core.Problem.t -> Rt_core.Solution.t)) list
(** [ltf+ls], [density+ls], [marginal+ls] — the deterministic greedy
    family, each polished by {!Rt_core.Local_search}. *)

val exact_name : string
(** ["bb"] — the name under which the exact entrant reports. *)

val run :
  ?pool:Pool.t ->
  ?entrants:(string * (Rt_core.Problem.t -> Rt_core.Solution.t)) list ->
  ?node_budget:int -> ?time_budget:float -> Rt_core.Problem.t ->
  (outcome, string) result
(** Race [entrants] (default {!default_entrants}) plus the exact entrant
    ({!Rt_core.Exact.branch_and_bound_budgeted} under [node_budget] /
    wall-clock [time_budget]). Without [pool], entrants run sequentially
    in order on the calling domain. Errors only if no entrant produced a
    feasible solution or the winner failed validation — neither occurs
    for the default entrants, whose solutions are feasible by
    construction. *)
