(** A work-stealing double-ended queue of subproblems.

    Each worker domain owns one deque and treats it as a LIFO stack:
    {!push} and {!pop} operate on the {e newest} (deepest) end, so the
    owner explores in depth-first order and keeps its working set hot.
    Idle domains {!steal} from the {e oldest} end — the shallowest entry,
    which in a branch-and-bound frontier is the largest pending subtree,
    so one steal transfers the most work the victim can spare.

    The implementation is a growable ring buffer under one mutex per
    deque, not a lock-free Chase–Lev deque: entries are whole subtrees
    (hundreds of search nodes each), so the lock is uncontended at this
    grain, and a mutex keeps the no-lost / no-duplicated-entry invariant
    structural — every operation is a single [Mutex.protect] section,
    checked by the rt-lint concurrency pass (docs/CONCURRENCY_LINT.md).
    The ABA and torn-size failure modes of the lock-free variants (the
    bugs that would silently corrupt the exact oracle) are ruled out by
    construction; `test/test_parallel.ml` additionally pins the
    accounting end-to-end. *)

type 'a t

val create : unit -> 'a t
(** A fresh empty deque. *)

val push : 'a t -> 'a -> unit
(** Owner: add at the newest end. *)

val pop : 'a t -> 'a option
(** Owner: remove from the newest end (LIFO — depth-first order). *)

val steal : 'a t -> 'a option
(** Thief: remove from the oldest end — the shallowest, largest pending
    subtree. Safe from any domain. *)

val length : 'a t -> int
(** Current number of entries (a racy snapshot for heuristics: by the
    time the caller acts on it, thieves may have changed it). *)
