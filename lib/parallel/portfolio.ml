module Fc = Rt_prelude.Float_cmp
module Clock = Rt_prelude.Clock
open Rt_core

let default_entrants =
  [
    ("ltf+ls", Local_search.with_local_search Greedy.ltf_reject);
    ("density+ls", Local_search.with_local_search Greedy.density_reject);
    ("marginal+ls", Local_search.with_local_search Greedy.marginal_greedy);
  ]

let exact_name = "bb"

type stat = {
  name : string;
  cost : float option;
  wall : float;
  nodes : int;
  exhausted : bool;
}

type outcome = {
  solution : Solution.t;
  cost : float;
  winner : string;
  stats : stat list;
}

(* One entrant's run: solve, cost through the official Solution.cost path
   (an entrant can never win by mis-reporting its own objective), publish
   the cost so the exact entrant's prune bound tightens mid-flight. *)
let run_heuristic shared p (name, alg) =
  let t0 = Clock.now () in
  let s = alg p in
  match Solution.cost p s with
  | Error _ ->
      (* an infeasible entrant forfeits; the portfolio result stays valid *)
      ( { name; cost = None; wall = Clock.elapsed ~since:t0; nodes = 0;
          exhausted = false },
        None )
  | Ok c ->
      Rt_exact.Search.publish shared c.Solution.total;
      ( {
          name;
          cost = Some c.Solution.total;
          wall = Clock.elapsed ~since:t0;
          nodes = 0;
          exhausted = false;
        },
        Some s )

let run_exact shared ?node_budget ?time_budget p =
  let t0 = Clock.now () in
  match Exact.branch_and_bound_budgeted ~shared ?node_budget ?time_budget p with
  | Error _ ->
      ( { name = exact_name; cost = None; wall = Clock.elapsed ~since:t0;
          nodes = 0; exhausted = false },
        None )
  | Ok (b : Exact.budgeted) -> (
      match Solution.cost p b.Exact.solution with
      | Error _ ->
          ( { name = exact_name; cost = None; wall = Clock.elapsed ~since:t0;
              nodes = b.Exact.nodes; exhausted = b.Exact.exhausted },
            None )
      | Ok c ->
          ( {
              name = exact_name;
              cost = Some c.Solution.total;
              wall = Clock.elapsed ~since:t0;
              nodes = b.Exact.nodes;
              exhausted = b.Exact.exhausted;
            },
            Some b.Exact.solution ))

let run ?pool ?(entrants = default_entrants) ?node_budget ?time_budget p =
  let shared = Rt_exact.Search.shared () in
  let jobs =
    List.map (fun e () -> run_heuristic shared p e) entrants
    @ [ (fun () -> run_exact shared ?node_budget ?time_budget p) ]
  in
  let results = Pool.map ?pool (fun job -> job ()) jobs in
  let stats = List.map fst results in
  (* deterministic winner: lowest cost, ties to the earliest entrant —
     heuristics come before the exact entrant, so an exhausted search
     that merely matched a heuristic never displaces it *)
  let winner =
    List.fold_left
      (fun acc ((st : stat), sol) ->
        match (sol, st.cost) with
        | Some s, Some c -> (
            match acc with
            | Some (_, _, best_c) when not (Fc.exact_lt c best_c) -> acc
            | _ -> Some (st.name, s, c))
        | _ -> acc)
      None results
  in
  match winner with
  | None -> Error "Portfolio: no entrant produced a valid solution"
  | Some (name, solution, cost) -> (
      match Solution.validate p solution with
      | Error msg -> Error ("Portfolio: winner failed validation: " ^ msg)
      | Ok () -> Ok { solution; cost; winner = name; stats })
