let total_cycles ts =
  List.fold_left (fun acc (t : Task.frame) -> acc + t.cycles) 0 ts

let total_utilization ts =
  List.fold_left (fun acc t -> acc +. Task.utilization t) 0. ts

let total_weight items =
  List.fold_left (fun acc (i : Task.item) -> acc +. i.weight) 0. items

let total_penalty_frame ts =
  List.fold_left (fun acc (t : Task.frame) -> acc +. t.penalty) 0. ts

let total_penalty_items items =
  List.fold_left (fun acc (i : Task.item) -> acc +. i.item_penalty) 0. items

let hyper_period_checked = function
  | [] -> Error "Taskset.hyper_period: empty task set"
  | ts ->
      Rt_prelude.Math_util.lcm_list_checked
        (List.map (fun (t : Task.periodic) -> t.period) ts)

let hyper_period ts =
  match hyper_period_checked ts with Ok v -> v | Error e -> invalid_arg e

let check_ids ids =
  if Task.distinct_ids ids then Ok () else Error "duplicate task ids"

let well_formed_frame ts =
  check_ids (List.map (fun (t : Task.frame) -> t.id) ts)

let well_formed_periodic ts =
  check_ids (List.map (fun (t : Task.periodic) -> t.id) ts)

let frame_by_id ts id = List.find_opt (fun (t : Task.frame) -> t.id = id) ts

let periodic_by_id ts id =
  List.find_opt (fun (t : Task.periodic) -> t.id = id) ts

let item_by_id items id =
  List.find_opt (fun (i : Task.item) -> i.item_id = id) items

let items_of_frames ~frame_length ts =
  List.map (Task.item_of_frame ~frame_length) ts

let items_of_periodics ts = List.map Task.item_of_periodic ts

let load_factor ~m ~s_max items =
  if m <= 0 then invalid_arg "Taskset.load_factor: m <= 0";
  if Rt_prelude.Float_cmp.exact_le s_max 0. then
    invalid_arg "Taskset.load_factor: s_max <= 0";
  total_weight items /. (float_of_int m *. s_max)

let pp_list pp_elt ppf ts =
  Format.fprintf ppf "[@[<hov>%a@]]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_elt)
    ts

let pp_frames ppf ts = pp_list Task.pp_frame ppf ts
let pp_periodics ppf ts = pp_list Task.pp_periodic ppf ts
let pp_items ppf ts = pp_list Task.pp_item ppf ts
