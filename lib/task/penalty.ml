module Fc = Rt_prelude.Float_cmp

type t =
  | Uniform of { lo : float; hi : float }
  | Proportional of { factor : float; jitter : float }
  | Inverse of { factor : float; jitter : float }
  | Bimodal of { low : float; high : float; p_high : float }

let validate = function
  | Uniform { lo; hi } ->
      if Fc.exact_lt lo 0. || Fc.exact_lt hi lo then
        Error "Uniform: need 0 <= lo <= hi"
      else Ok ()
  | Proportional { factor; jitter } | Inverse { factor; jitter } ->
      if Fc.exact_lt factor 0. then Error "factor must be >= 0"
      else if Fc.exact_lt jitter 0. || Fc.exact_ge jitter 1. then
        Error "jitter must be in [0, 1)"
      else Ok ()
  | Bimodal { low; high; p_high } ->
      if Fc.exact_lt low 0. || Fc.exact_lt high low then
        Error "Bimodal: need 0 <= low <= high"
      else if Fc.exact_lt p_high 0. || Fc.exact_gt p_high 1. then
        Error "Bimodal: p_high must be in [0, 1]"
      else Ok ()

let reference_energy ~proc ~horizon weight =
  let s_max = Rt_power.Processor.s_max proc in
  let power = Rt_power.Power_model.power proc.Rt_power.Processor.model s_max in
  weight *. horizon /. s_max *. power

let jittered rng jitter x =
  if Fc.exact_eq jitter 0. then x
  else x *. Rt_prelude.Rng.float rng ~lo:(1. -. jitter) ~hi:(1. +. jitter)

let assign t rng ~proc ~horizon items =
  (match validate t with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Penalty.assign: " ^ msg));
  if Fc.exact_le horizon 0. then invalid_arg "Penalty.assign: horizon <= 0";
  let mean_weight =
    match items with
    | [] -> 0.
    | _ -> Taskset.total_weight items /. float_of_int (List.length items)
  in
  let mean_ref = reference_energy ~proc ~horizon mean_weight in
  let draw (it : Task.item) =
    let ref_e = reference_energy ~proc ~horizon it.weight in
    match t with
    | Uniform { lo; hi } -> Rt_prelude.Rng.float rng ~lo ~hi *. mean_ref
    | Proportional { factor; jitter } -> jittered rng jitter (factor *. ref_e)
    | Inverse { factor; jitter } ->
        (* guard: weights are > 0 by the Task invariant *)
        jittered rng jitter (factor *. mean_weight /. it.weight *. mean_ref)
    | Bimodal { low; high; p_high } ->
        let level =
          if
            Rt_prelude.Float_cmp.exact_lt
              (Rt_prelude.Rng.float rng ~lo:0. ~hi:1.)
              p_high
          then high
          else low
        in
        level *. ref_e
  in
  List.map
    (fun (it : Task.item) ->
      Task.item ~penalty:(draw it) ~power_factor:it.item_power_factor
        ~id:it.item_id ~weight:it.weight ())
    items

let pp ppf = function
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform[%g, %g]" lo hi
  | Proportional { factor; jitter } ->
      Format.fprintf ppf "proportional(%g, ±%g)" factor jitter
  | Inverse { factor; jitter } ->
      Format.fprintf ppf "inverse(%g, ±%g)" factor jitter
  | Bimodal { low; high; p_high } ->
      Format.fprintf ppf "bimodal(%g | %g @ %g)" low high p_high

let default_models =
  [
    ("uniform", Uniform { lo = 0.2; hi = 2.0 });
    ("proportional", Proportional { factor = 1.0; jitter = 0.25 });
    ("inverse", Inverse { factor = 1.0; jitter = 0.25 });
    ("bimodal", Bimodal { low = 0.1; high = 4.0; p_high = 0.3 });
  ]
