module Fc = Rt_prelude.Float_cmp

let frame_tasks rng ~n ~cycles_lo ~cycles_hi =
  if n < 0 then invalid_arg "Gen.frame_tasks: n < 0";
  if cycles_lo < 1 || cycles_hi < cycles_lo then
    invalid_arg "Gen.frame_tasks: invalid cycle range";
  List.map
    (fun id ->
      let cycles = Rt_prelude.Rng.int rng ~lo:cycles_lo ~hi:cycles_hi in
      Task.frame ~id ~cycles ())
    (Rt_prelude.Math_util.range 0 (n - 1))

let frame_tasks_with_load rng ~n ~m ~s_max ~frame_length ~load =
  if n < 1 then invalid_arg "Gen.frame_tasks_with_load: n < 1";
  if m < 1 then invalid_arg "Gen.frame_tasks_with_load: m < 1";
  if Fc.exact_le s_max 0. || Fc.exact_le frame_length 0. || Fc.exact_le load 0.
  then
    invalid_arg "Gen.frame_tasks_with_load: non-positive parameter";
  let raw =
    List.map
      (fun _ -> Rt_prelude.Rng.float rng ~lo:1. ~hi:5.)
      (Rt_prelude.Math_util.range 1 n)
  in
  let raw_total = List.fold_left ( +. ) 0. raw in
  let target = load *. float_of_int m *. s_max *. frame_length in
  List.mapi
    (fun id r ->
      let cycles = max 1 (int_of_float (Float.round (r /. raw_total *. target))) in
      Task.frame ~id ~cycles ())
    raw

let default_periods = [ 100; 200; 250; 400; 500; 1000 ]

let periodic_tasks rng ~n ~total_util ~periods =
  if n < 1 then invalid_arg "Gen.periodic_tasks: n < 1";
  if Fc.exact_lt total_util 0. then
    invalid_arg "Gen.periodic_tasks: negative total_util";
  if periods = [] || List.exists (fun p -> p <= 0) periods then
    invalid_arg "Gen.periodic_tasks: periods must be positive and non-empty";
  let utils = Rt_prelude.Rng.uunifast rng ~n ~total:total_util in
  List.mapi
    (fun id u ->
      let period = Rt_prelude.Rng.choice rng periods in
      let cycles = max 1 (int_of_float (Float.round (u *. float_of_int period))) in
      Task.periodic ~id ~cycles ~period ())
    utils

let items rng ~n ~weight_lo ~weight_hi =
  if n < 0 then invalid_arg "Gen.items: n < 0";
  if Fc.exact_le weight_lo 0. || Fc.exact_lt weight_hi weight_lo then
    invalid_arg "Gen.items: invalid weight range";
  List.map
    (fun id ->
      let weight = Rt_prelude.Rng.float rng ~lo:weight_lo ~hi:weight_hi in
      Task.item ~id ~weight ())
    (Rt_prelude.Math_util.range 0 (n - 1))

let heterogeneous_power_factors rng ~lo ~hi its =
  if Fc.exact_le lo 0. || Fc.exact_lt hi lo then
    invalid_arg "Gen.heterogeneous_power_factors: invalid range";
  List.map
    (fun (it : Task.item) ->
      Task.item ~penalty:it.item_penalty
        ~power_factor:(Rt_prelude.Rng.float rng ~lo ~hi)
        ~id:it.item_id ~weight:it.weight ())
    its
