module Fc = Rt_prelude.Float_cmp

type frame = {
  id : int;
  cycles : int;
  penalty : float;
  power_factor : float;
}

type periodic = {
  id : int;
  cycles : int;
  period : int;
  penalty : float;
  power_factor : float;
}

let check_penalty penalty =
  if Fc.exact_lt penalty 0. || not (Float.is_finite penalty) then
    invalid_arg "Task: penalty must be finite and >= 0"

let check_power_factor power_factor =
  if Fc.exact_le power_factor 0. || not (Float.is_finite power_factor) then
    invalid_arg "Task: power_factor must be finite and > 0"

let frame ?(penalty = 0.) ?(power_factor = 1.) ~id ~cycles () =
  if cycles <= 0 then invalid_arg "Task.frame: cycles must be > 0";
  check_penalty penalty;
  check_power_factor power_factor;
  { id; cycles; penalty; power_factor }

let periodic ?(penalty = 0.) ?(power_factor = 1.) ~id ~cycles ~period () =
  if cycles <= 0 then invalid_arg "Task.periodic: cycles must be > 0";
  if period <= 0 then invalid_arg "Task.periodic: period must be > 0";
  check_penalty penalty;
  check_power_factor power_factor;
  { id; cycles; period; penalty; power_factor }

let utilization (t : periodic) = float_of_int t.cycles /. float_of_int t.period

type item = {
  item_id : int;
  weight : float;
  item_penalty : float;
  item_power_factor : float;
}

let item ?(penalty = 0.) ?(power_factor = 1.) ~id ~weight () =
  if Fc.exact_le weight 0. || not (Float.is_finite weight) then
    invalid_arg "Task.item: weight must be finite and > 0";
  check_penalty penalty;
  check_power_factor power_factor;
  {
    item_id = id;
    weight;
    item_penalty = penalty;
    item_power_factor = power_factor;
  }

let item_of_frame ~frame_length (t : frame) =
  if Fc.exact_le frame_length 0. then
    invalid_arg "Task.item_of_frame: frame_length <= 0";
  item ~penalty:t.penalty ~power_factor:t.power_factor ~id:t.id
    ~weight:(float_of_int t.cycles /. frame_length)
    ()

let item_of_periodic (t : periodic) =
  item ~penalty:t.penalty ~power_factor:t.power_factor ~id:t.id
    ~weight:(utilization t) ()

let pp_frame ppf (t : frame) =
  Format.fprintf ppf "τ%d(c=%d, ρ=%g)" t.id t.cycles t.penalty

let pp_periodic ppf (t : periodic) =
  Format.fprintf ppf "τ%d(c=%d, p=%d, ρ=%g)" t.id t.cycles t.period t.penalty

let pp_item ppf (t : item) =
  Format.fprintf ppf "ι%d(w=%g, ρ=%g)" t.item_id t.weight t.item_penalty

let tie_break cmp_main id_a id_b =
  if cmp_main <> 0 then cmp_main else compare id_a id_b

let compare_frame_cycles_desc (a : frame) (b : frame) =
  tie_break (Int.compare b.cycles a.cycles) a.id b.id

let compare_periodic_util_desc (a : periodic) (b : periodic) =
  tie_break (Float.compare (utilization b) (utilization a)) a.id b.id

let compare_item_weight_desc (a : item) (b : item) =
  tie_break (Float.compare b.weight a.weight) a.item_id b.item_id

let distinct_ids ids =
  let sorted = List.sort compare ids in
  let rec ok = function
    | a :: (b :: _ as rest) -> a <> b && ok rest
    | [ _ ] | [] -> true
  in
  ok sorted
