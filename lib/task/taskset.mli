(** Whole-task-set queries and invariants. *)

val total_cycles : Task.frame list -> int
(** Sum of execution cycles. *)

val total_utilization : Task.periodic list -> float

val total_weight : Task.item list -> float

val total_penalty_frame : Task.frame list -> float
val total_penalty_items : Task.item list -> float

val hyper_period : Task.periodic list -> int
(** Least common multiple of the periods.
    @raise Invalid_argument on an empty set or overflow. *)

val hyper_period_checked : Task.periodic list -> (int, string) result
(** [hyper_period] with the empty set and LCM overflow (adversarial period
    grids, e.g. large coprime periods) reported as a typed error — the
    entry points that admit untrusted task sets ({!Rt_core.Problem},
    {!Rt_sim.Edf_sim}) route through this instead of catching
    exceptions. *)

val well_formed_frame : Task.frame list -> (unit, string) result
(** Unique ids; non-empty sets are not required. *)

val well_formed_periodic : Task.periodic list -> (unit, string) result

val frame_by_id : Task.frame list -> int -> Task.frame option
val periodic_by_id : Task.periodic list -> int -> Task.periodic option
val item_by_id : Task.item list -> int -> Task.item option

val items_of_frames : frame_length:float -> Task.frame list -> Task.item list
val items_of_periodics : Task.periodic list -> Task.item list

val load_factor :
  m:int -> s_max:float -> Task.item list -> float
(** [total_weight / (m * s_max)] — the normalized system load; above 1.0 not
    every task can be accepted. @raise Invalid_argument if [m <= 0] or
    [s_max <= 0]. *)

val pp_frames : Format.formatter -> Task.frame list -> unit
val pp_periodics : Format.formatter -> Task.periodic list -> unit
val pp_items : Format.formatter -> Task.item list -> unit
