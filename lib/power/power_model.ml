module Fc = Rt_prelude.Float_cmp

type t = { p_ind : float; coeff : float; alpha : float; linear : float }

let check name cond = if not cond then invalid_arg ("Power_model.make: " ^ name)

let make ?(p_ind = 0.) ?(linear = 0.) ~coeff ~alpha () =
  check "p_ind must be finite and >= 0"
    (Fc.is_finite p_ind && Fc.exact_ge p_ind 0.);
  check "coeff must be finite and > 0" (Fc.is_finite coeff && Fc.exact_gt coeff 0.);
  check "alpha must be finite and > 1" (Fc.is_finite alpha && Fc.exact_gt alpha 1.);
  check "linear must be finite and >= 0"
    (Fc.is_finite linear && Fc.exact_ge linear 0.);
  { p_ind; coeff; alpha; linear }

let power m s =
  if Fc.exact_lt s 0. then invalid_arg "Power_model.power: negative speed";
  m.p_ind +. (m.coeff *. (s ** m.alpha)) +. (m.linear *. s)

let dynamic_power m s = power m s -. m.p_ind

let energy m ~speed ~time =
  if Fc.exact_lt time 0. then invalid_arg "Power_model.energy: negative time";
  time *. power m speed

let energy_cycles m ~speed ~cycles =
  if Fc.exact_le speed 0. then
    invalid_arg "Power_model.energy_cycles: speed <= 0";
  if Fc.exact_lt cycles 0. then
    invalid_arg "Power_model.energy_cycles: negative cycles";
  cycles /. speed *. power m speed

let energy_per_cycle m s =
  if Fc.exact_le s 0. then invalid_arg "Power_model.energy_per_cycle: speed <= 0";
  power m s /. s

let critical_speed m ~s_max =
  if Fc.exact_le s_max 0. then
    invalid_arg "Power_model.critical_speed: s_max <= 0";
  if Fc.exact_eq m.p_ind 0. then
    (* P(s)/s = coeff*s^(alpha-1) + linear is non-decreasing: no clamp. *)
    0.
  else if Fc.exact_eq m.linear 0. then
    (* d/ds [p_ind/s + coeff*s^(alpha-1)] = 0
       <=> s^alpha = p_ind / ((alpha-1) coeff) *)
    Float.min s_max ((m.p_ind /. ((m.alpha -. 1.) *. m.coeff)) ** (1. /. m.alpha))
  else begin
    let f s = energy_per_cycle m s in
    (* P(s)/s -> infinity at 0+ (p_ind > 0) and is eventually increasing, so
       it is unimodal on (0, inf); bracket generously. *)
    let lo = 1e-6 *. s_max in
    let x, _ = Rt_prelude.Math_util.golden_section_min ~f ~lo ~hi:s_max () in
    x
  end

let pp ppf m =
  Format.fprintf ppf "P(s) = %g + %g*s^%g" m.p_ind m.coeff m.alpha;
  if Fc.exact_gt m.linear 0. then Format.fprintf ppf " + %g*s" m.linear

let equal a b =
  Fc.exact_eq a.p_ind b.p_ind
  && Fc.exact_eq a.coeff b.coeff
  && Fc.exact_eq a.alpha b.alpha
  && Fc.exact_eq a.linear b.linear
