module Fc = Rt_prelude.Float_cmp

type speed_domain =
  | Ideal of { s_min : float; s_max : float }
  | Levels of float array

type dormancy =
  | Dormant_disable
  | Dormant_enable of { t_sw : float; e_sw : float }

type t = {
  model : Power_model.t;
  domain : speed_domain;
  dormancy : dormancy;
}

let validate_domain = function
  | Ideal { s_min; s_max } ->
      if
        not
          (Fc.exact_le 0. s_min && Fc.exact_le s_min s_max
          && Float.is_finite s_max)
      then
        invalid_arg "Processor.make: need 0 <= s_min <= s_max < infinity"
  | Levels levels ->
      if Array.length levels = 0 then
        invalid_arg "Processor.make: empty level set";
      Array.iteri
        (fun i s ->
          if Fc.exact_le s 0. || not (Float.is_finite s) then
            invalid_arg "Processor.make: levels must be positive and finite";
          if i > 0 && Fc.exact_ge levels.(i - 1) s then
            invalid_arg "Processor.make: levels must be strictly increasing")
        levels

let validate_dormancy = function
  | Dormant_disable -> ()
  | Dormant_enable { t_sw; e_sw } ->
      if Fc.exact_lt t_sw 0. || Fc.exact_lt e_sw 0. then
        invalid_arg "Processor.make: negative dormancy overhead"

let make ~model ~domain ~dormancy =
  validate_domain domain;
  validate_dormancy dormancy;
  { model; domain; dormancy }

let s_max t =
  match t.domain with
  | Ideal { s_max; _ } -> s_max
  | Levels levels -> levels.(Array.length levels - 1)

let s_min t =
  match t.domain with
  | Ideal { s_min; _ } -> s_min
  | Levels levels -> levels.(0)

let is_ideal t = match t.domain with Ideal _ -> true | Levels _ -> false

let speed_feasible ?(eps = Rt_prelude.Float_cmp.default_eps) t s =
  if Rt_prelude.Float_cmp.approx_eq ~eps s 0. then true
  else
    match t.domain with
    | Ideal { s_min; s_max } ->
        Rt_prelude.Float_cmp.geq ~eps s s_min
        && Rt_prelude.Float_cmp.leq ~eps s s_max
    | Levels levels ->
        Array.exists (fun l -> Rt_prelude.Float_cmp.approx_eq ~eps l s) levels

let nearest_level_above t s =
  match t.domain with
  | Ideal { s_min; s_max } ->
      if Rt_prelude.Float_cmp.leq s s_max then
        Some (Float.max s_min (Float.min s s_max))
      else None
  | Levels levels ->
      let eps = Rt_prelude.Float_cmp.default_eps in
      let found = ref None in
      Array.iter
        (fun l ->
          if Option.is_none !found && Rt_prelude.Float_cmp.geq ~eps l s then
            found := Some l)
        levels;
      !found

let levels_around t s =
  match t.domain with
  | Ideal _ -> invalid_arg "Processor.levels_around: ideal domain"
  | Levels levels ->
      let n = Array.length levels in
      if Rt_prelude.Float_cmp.gt s levels.(n - 1) then None
      else if Rt_prelude.Float_cmp.exact_le s levels.(0) then
        Some (levels.(0), levels.(0))
      else begin
        (* find i with levels.(i) <= s <= levels.(i+1) *)
        let rec go i =
          if i = n - 1 then (levels.(n - 1), levels.(n - 1))
          else if Rt_prelude.Float_cmp.exact_le s levels.(i + 1) then
            (levels.(i), levels.(i + 1))
          else go (i + 1)
        in
        Some (go 0)
      end

let critical_speed t =
  let unconstrained = Power_model.critical_speed t.model ~s_max:(s_max t) in
  match t.domain with
  | Ideal { s_min; s_max } ->
      Rt_prelude.Float_cmp.clamp ~lo:s_min ~hi:s_max unconstrained
  | Levels levels ->
      (* pick the level with minimal per-cycle energy; by unimodality it is
         one of the two levels around the unconstrained optimum, but scanning
         all levels is just as simple and obviously correct *)
      let n = Array.length levels in
      let rec scan i best best_e =
        if i >= n then best
        else
          let e = Power_model.energy_per_cycle t.model levels.(i) in
          if Rt_prelude.Float_cmp.exact_lt e best_e then
            scan (i + 1) levels.(i) e
          else scan (i + 1) best best_e
      in
      scan 0 levels.(0) Float.infinity

let idle_power t = t.model.Power_model.p_ind

let pp ppf t =
  let domain_str =
    match t.domain with
    | Ideal { s_min; s_max } -> Printf.sprintf "ideal [%g, %g]" s_min s_max
    | Levels levels ->
        Array.to_list levels
        |> List.map (Printf.sprintf "%g")
        |> String.concat ", "
        |> Printf.sprintf "levels {%s}"
  in
  let dorm_str =
    match t.dormancy with
    | Dormant_disable -> "dormant-disable"
    | Dormant_enable { t_sw; e_sw } ->
        Printf.sprintf "dormant-enable (t_sw=%g, E_sw=%g)" t_sw e_sw
  in
  Format.fprintf ppf "{%a; %s; %s}" Power_model.pp t.model domain_str dorm_str

let xscale_model = Power_model.make ~p_ind:0.08 ~coeff:1.52 ~alpha:3. ()

let xscale ~dormancy =
  make ~model:xscale_model ~domain:(Ideal { s_min = 0.; s_max = 1. }) ~dormancy

let xscale_levels ~dormancy =
  make ~model:xscale_model
    ~domain:(Levels [| 0.15; 0.4; 0.6; 0.8; 1.0 |])
    ~dormancy

let cubic ?(p_ind = 0.) ?(s_max = 1.) () =
  make
    ~model:(Power_model.make ~p_ind ~coeff:1. ~alpha:3. ())
    ~domain:(Ideal { s_min = 0.; s_max })
    ~dormancy:Dormant_disable

let uniform_levels ~n ?(p_ind = 0.) () =
  if n < 1 then invalid_arg "Processor.uniform_levels: n < 1";
  let levels =
    Array.init n (fun i -> float_of_int (i + 1) /. float_of_int n)
  in
  make
    ~model:(Power_model.make ~p_ind ~coeff:1. ~alpha:3. ())
    ~domain:(Levels levels) ~dormancy:Dormant_disable
