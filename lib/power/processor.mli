(** Processor descriptors: power model × speed domain × dormancy.

    The paper family distinguishes (1) {e ideal} processors, with a
    continuous speed spectrum, from {e non-ideal} processors with a finite
    set of levels, and (2) {e dormant-enable} processors, which can be put
    to sleep (paying a mode-switch overhead) so that their leakage power
    stops counting, from {e dormant-disable} processors, which pay [p_ind]
    whenever they are on. A homogeneous multiprocessor platform is [m]
    copies of one descriptor. *)

type speed_domain =
  | Ideal of { s_min : float; [@rt.dim "speed"] s_max : float [@rt.dim "speed"] }
      (** continuous spectrum [\[s_min, s_max\]], [0 <= s_min <= s_max] *)
  | Levels of float array
      (** finite speeds, strictly increasing, all [> 0] *)

type dormancy =
  | Dormant_disable
      (** cannot sleep: pays [p_ind] whenever idle (speed 0, no progress) *)
  | Dormant_enable of { t_sw : float; [@rt.dim "seconds"] e_sw : float [@rt.dim "joules"] }
      (** can sleep at zero power; waking costs [t_sw] time and [e_sw]
          energy per sleep/wake round trip *)

type t = private {
  model : Power_model.t;
  domain : speed_domain;
  dormancy : dormancy;
}

val make :
  model:Power_model.t -> domain:speed_domain -> dormancy:dormancy -> t
(** @raise Invalid_argument on malformed domains (unsorted/non-positive
    levels, inverted or negative ideal bounds, negative overheads). *)

val s_max : t -> float [@rt.dim "speed"]
(** Fastest available speed. *)

val s_min : t -> float [@rt.dim "speed"]
(** Slowest available {e running} speed ([s_min] of the spectrum or the
    lowest level); being idle at speed 0 is always possible. *)

val is_ideal : t -> bool

val speed_feasible : ?eps:float -> t -> float -> bool
(** Can the processor run continuously at this speed? For level domains the
    speed must coincide (within [eps]) with one of the levels; speed [0.]
    (idle) is always feasible. *)

val nearest_level_above : t -> float -> float option [@rt.dim "speed"]
(** For level domains, the slowest level [>= s] (within tolerance); [None]
    if [s] exceeds the top level. For ideal domains, [s] clamped up to
    [s_min] if below, [None] if [s > s_max]. *)

val levels_around : t -> float -> (float * float) option
(** For level domains: the pair of adjacent levels [(s_lo, s_hi)] with
    [s_lo <= s <= s_hi] used by the two-level split; at or below the bottom
    level returns [(bottom, bottom)]; [None] if [s] is above the top level.
    @raise Invalid_argument on ideal domains. *)

val critical_speed : t -> float [@rt.dim "speed"]
(** {!Power_model.critical_speed} projected into the domain: for level
    domains, the level with minimal per-cycle energy. *)

val idle_power : t -> float [@rt.dim "watts"]
(** Power drawn while idle-but-awake: [p_ind] (dynamic power vanishes at
    speed 0 for the polynomial model). *)

val pp : Format.formatter -> t -> unit

(** {1 Presets used throughout the evaluation} *)

val xscale : dormancy:dormancy -> t
(** Ideal-spectrum processor with the normalized Intel XScale model
    [P(s) = 0.08 + 1.52 s^3], speeds in [\[0, 1\]]. *)

val xscale_levels : dormancy:dormancy -> t
(** Non-ideal XScale: same power model, levels {v 0.15 0.4 0.6 0.8 1.0 v}
    (the five XScale frequency grades normalized to the top one). *)

val cubic : ?p_ind:float -> ?s_max:float -> unit -> t
(** The classic [P(s) = s^3 + p_ind] model (dormant-disable, ideal spectrum
    up to [s_max], default 1.0) used in the companion Figure 4. *)

val uniform_levels : n:int -> ?p_ind:float -> unit -> t
(** [n >= 1] evenly spaced levels [1/n, 2/n, …, 1] with the cubic model —
    the grid-coarseness ablation of experiment E5. *)
