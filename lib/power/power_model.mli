(** DVS power-consumption models.

    The model follows the paper family's convention: the power drawn at
    speed [s] is split into a speed-independent part [P_ind] (leakage and
    other always-on consumers) and a speed-dependent convex part [P_d(s)]
    (gate switching plus short-circuit):

    {v P(s) = p_ind + coeff * s^alpha + linear * s v}

    with [alpha] in [\[2, 3\]] for CMOS, [coeff > 0], [linear >= 0]. The
    evaluation sections of the DATE'05–'07 papers normalize the Intel XScale
    to [P(s) = 0.08 + 1.52 s^3] W with the top speed scaled to 1; the same
    normalization is available as {!Presets.xscale}.

    Speeds are in (normalized) cycles per time unit; energy of running for
    [t] time units at speed [s] is [t * P(s)]. *)

type t = private {
  p_ind : float;  [@rt.dim "watts"] (** speed-independent power (leakage); >= 0 *)
  coeff : float;  (** coefficient of the [s^alpha] term; > 0 *)
  alpha : float;  [@rt.dim "1"] (** exponent of the dynamic term; > 1 *)
  linear : float;  [@rt.dim "joules/cycles"] (** short-circuit term, proportional to speed; >= 0 *)
}

val make : ?p_ind:float -> ?linear:float -> coeff:float -> alpha:float -> unit -> t
(** Build a model; [p_ind] and [linear] default to [0.].
    @raise Invalid_argument when a parameter is out of the documented range
    (including non-finite values). *)

val power : t -> float -> float [@rt.dim "watts"]
(** [power m s] is [P(s)] for [s >= 0]. @raise Invalid_argument on
    negative speed. *)

val dynamic_power : t -> float -> float [@rt.dim "watts"]
(** The speed-dependent part [P_d(s) = P(s) - p_ind]. *)

val energy : t -> speed:float -> time:float -> float [@rt.dim "joules"]
(** [energy m ~speed ~time] is [time * P(speed)]; the workload completed is
    [speed * time] cycles. @raise Invalid_argument on negative time. *)

val energy_cycles : t -> speed:float -> cycles:float -> float [@rt.dim "joules"]
(** Energy to execute [cycles] cycles at constant [speed > 0]:
    [cycles / speed * P(speed)]. *)

val energy_per_cycle : t -> float -> float [@rt.dim "joules/cycles"]
(** [P(s)/s] for [s > 0] — the per-cycle energy whose minimizer is the
    critical speed. *)

val critical_speed : t -> s_max:float -> float [@rt.dim "speed"]
(** The speed in [(0, s_max\]] minimizing [P(s)/s]. Closed form
    [(p_ind / ((alpha-1) coeff))^(1/alpha)] when [linear = 0]; numeric
    (golden-section, [P(s)/s] is unimodal for this model family) otherwise.
    Returns [s_max] when the unconstrained minimizer exceeds it. With
    [p_ind = 0] and [linear = 0] the per-cycle energy is increasing, so the
    critical speed degenerates to 0; we return 0 in that case and callers
    treat it as "no lower clamp". *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
