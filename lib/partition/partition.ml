open Rt_task

(* [sums] caches the per-bucket weight totals so load queries are O(1)
   reads instead of list folds; [add] maintains it incrementally (one
   addition), [of_buckets] recomputes it from the lists. The cache is
   never exposed by reference — {!loads} copies — so the value stays
   observably immutable. *)
type t = { m : int; buckets : Task.item list array; sums : float array }

let empty ~m =
  if m < 1 then invalid_arg "Partition.empty: m < 1";
  { m; buckets = Array.make m []; sums = Array.make m 0. }

let add t j it =
  if j < 0 || j >= t.m then invalid_arg "Partition.add: processor out of range";
  let buckets = Array.copy t.buckets in
  let sums = Array.copy t.sums in
  buckets.(j) <- it :: buckets.(j);
  sums.(j) <- sums.(j) +. it.weight;
  { t with buckets; sums }

let all_items t = Array.to_list t.buckets |> List.concat

(* hoisted so load queries on the hot path share one static closure
   instead of building a fresh one per bucket *)
let sum_weights b =
  List.fold_left (fun acc (it : Task.item) -> acc +. it.weight) 0. b

(* hoisted so the duplicate-id sweep below allocates no per-bucket
   closures *)
let rec check_distinct seen = function
  | [] -> ()
  | (it : Task.item) :: rest ->
      if Hashtbl.mem seen it.item_id then
        invalid_arg "Partition.of_buckets: duplicate item ids";
      Hashtbl.add seen it.item_id ();
      check_distinct seen rest

let of_buckets buckets =
  if Array.length buckets = 0 then invalid_arg "Partition.of_buckets: empty";
  let t =
    {
      m = Array.length buckets;
      buckets = Array.copy buckets;
      sums = Array.map sum_weights buckets;
    }
  in
  (* O(n) duplicate-id check over the buckets in place: the former
     concat + map + [Task.distinct_ids] sort was the dominant allocation
     of a greedy run at n=10^3 and above, for a validation pass. *)
  let n = Array.fold_left (fun acc b -> acc + List.length b) 0 buckets in
  let seen = Hashtbl.create (Int.max 16 (2 * n)) in
  for j = 0 to Array.length buckets - 1 do
    check_distinct seen buckets.(j)
  done;
  t

let m t = t.m

let bucket t j =
  if j < 0 || j >= t.m then invalid_arg "Partition.bucket: out of range";
  t.buckets.(j)

let size t = Array.fold_left (fun acc b -> acc + List.length b) 0 t.buckets

let loads t = Array.copy t.sums

let load t j =
  if j < 0 || j >= t.m then invalid_arg "Partition.bucket: out of range";
  t.sums.(j)

let makespan t = Array.fold_left Float.max 0. t.sums

let min_load_index t =
  let ls = t.sums in
  let best = ref 0 in
  Array.iteri
    (fun j l -> if Rt_prelude.Float_cmp.exact_lt l ls.(!best) then best := j)
    ls;
  !best

let processor_of t id =
  let found = ref None in
  Array.iteri
    (fun j b ->
      if !found = None && List.exists (fun (it : Task.item) -> it.item_id = id) b
      then found := Some j)
    t.buckets;
  !found

let id_set b =
  List.map (fun (it : Task.item) -> it.item_id) b |> List.sort compare

let equal_shape a b =
  a.m = b.m
  && Array.for_all2 (fun x y -> id_set x = id_set y) a.buckets b.buckets

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun j b ->
      Format.fprintf ppf "P%d (load %.4g): %a@," j (load t j) Taskset.pp_items
        (List.rev b))
    t.buckets;
  Format.fprintf ppf "@]"
