open Rt_task

type t = { m : int; buckets : Task.item list array }

let empty ~m =
  if m < 1 then invalid_arg "Partition.empty: m < 1";
  { m; buckets = Array.make m [] }

let add t j it =
  if j < 0 || j >= t.m then invalid_arg "Partition.add: processor out of range";
  let buckets = Array.copy t.buckets in
  buckets.(j) <- it :: buckets.(j);
  { t with buckets }

let all_items t = Array.to_list t.buckets |> List.concat

let of_buckets buckets =
  if Array.length buckets = 0 then invalid_arg "Partition.of_buckets: empty";
  let t = { m = Array.length buckets; buckets = Array.copy buckets } in
  let ids = List.map (fun (it : Task.item) -> it.item_id) (all_items t) in
  if not (Task.distinct_ids ids) then
    invalid_arg "Partition.of_buckets: duplicate item ids";
  t

let m t = t.m

let bucket t j =
  if j < 0 || j >= t.m then invalid_arg "Partition.bucket: out of range";
  t.buckets.(j)

let size t = Array.fold_left (fun acc b -> acc + List.length b) 0 t.buckets

(* hoisted so load queries on the hot path share one static closure
   instead of building a fresh one per bucket *)
let sum_weights b =
  List.fold_left (fun acc (it : Task.item) -> acc +. it.weight) 0. b

let loads t = Array.map sum_weights t.buckets
let load t j = sum_weights (bucket t j)

let makespan t = Array.fold_left Float.max 0. (loads t)

let min_load_index t =
  let ls = loads t in
  let best = ref 0 in
  Array.iteri
    (fun j l -> if Rt_prelude.Float_cmp.exact_lt l ls.(!best) then best := j)
    ls;
  !best

let processor_of t id =
  let found = ref None in
  Array.iteri
    (fun j b ->
      if !found = None && List.exists (fun (it : Task.item) -> it.item_id = id) b
      then found := Some j)
    t.buckets;
  !found

let id_set b =
  List.map (fun (it : Task.item) -> it.item_id) b |> List.sort compare

let equal_shape a b =
  a.m = b.m
  && Array.for_all2 (fun x y -> id_set x = id_set y) a.buckets b.buckets

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun j b ->
      Format.fprintf ppf "P%d (load %.4g): %a@," j (load t j) Taskset.pp_items
        (List.rev b))
    t.buckets;
  Format.fprintf ppf "@]"
