open Rt_task

let critical_processors ~proc p =
  let s_crit = Rt_power.Processor.critical_speed proc in
  List.filter
    (fun j ->
      let l = Partition.load p j in
      Rt_prelude.Float_cmp.exact_gt l 0. && Rt_prelude.Float_cmp.lt l s_crit)
    (Rt_prelude.Math_util.range 0 (Partition.m p - 1))

let consolidate ~proc p =
  let s_crit = Rt_power.Processor.critical_speed proc in
  if Rt_prelude.Float_cmp.exact_le s_crit 0. then p
  else begin
    let critical = critical_processors ~proc p in
    match critical with
    | [] | [ _ ] -> p (* nothing to merge *)
    | _ ->
        let collected =
          List.concat_map (fun j -> Partition.bucket p j) critical
        in
        let n_slots = List.length critical in
        (* first-fit the collected tasks into the freed slots with the
           critical speed as capacity, largest first for tighter packing *)
        let packed, leftover =
          Heuristics.first_fit_decreasing ~m:n_slots ~capacity:s_crit collected
        in
        if leftover <> [] then p
        else begin
          let buckets =
            Array.init (Partition.m p) (fun j ->
                if List.mem j critical then [] else Partition.bucket p j)
          in
          (* place the packed groups onto the freed indices, densest first,
             so freed processors are at the end *)
          let groups =
            Rt_prelude.Math_util.range 0 (n_slots - 1)
            |> List.map (fun g -> Partition.bucket packed g)
            |> List.filter (fun b -> b <> [])
          in
          List.iteri
            (fun i group ->
              let j = List.nth critical i in
              buckets.(j) <- group)
            groups;
          (* sanity: same item multiset *)
          let before =
            List.sort compare
              (List.map (fun (it : Task.item) -> it.item_id) (Partition.all_items p))
          in
          let candidate = Partition.of_buckets buckets in
          let after =
            List.sort compare
              (List.map
                 (fun (it : Task.item) -> it.item_id)
                 (Partition.all_items candidate))
          in
          if before = after then candidate else p
        end
  end
