module Fc = Rt_prelude.Float_cmp
open Rt_power
open Rt_task

type speed_assignment = {
  speeds : (int * float) list;
  time_used : float;
  energy : float;
}

(* one task as the solver sees it *)
type job = { id : int; cycles : float; factor : float; floor : float }

let check_proc (proc : Processor.t) =
  if not (Fc.exact_eq proc.model.Power_model.linear 0.) then
    invalid_arg "Hetero: power model must have linear = 0";
  match proc.domain with
  | Processor.Ideal _ -> ()
  | Processor.Levels _ -> invalid_arg "Hetero: ideal processors only"

let factored (m : Power_model.t) f =
  if Fc.exact_eq f 1. then m
  else Power_model.make ~p_ind:m.p_ind ~coeff:(m.coeff *. f) ~alpha:m.alpha ()

let job_of_item (proc : Processor.t) ~cycles_of (it : Task.item) =
  let s_max = Processor.s_max proc in
  let floor =
    match proc.dormancy with
    | Processor.Dormant_disable -> Processor.s_min proc
    | Processor.Dormant_enable _ ->
        Float.max (Processor.s_min proc)
          (Power_model.critical_speed
             (factored proc.model it.item_power_factor)
             ~s_max)
  in
  { id = it.item_id; cycles = cycles_of it; factor = it.item_power_factor; floor }

(* speed of a job under the KKT multiplier K: s ∝ K / f^(1/alpha), floored
   and capped to the domain *)
let speed_at (proc : Processor.t) k job =
  let alpha = proc.model.Power_model.alpha in
  let s = k /. (job.factor ** (1. /. alpha)) in
  Float.min (Processor.s_max proc) (Float.max job.floor s)

let time_at proc k jobs =
  List.fold_left (fun acc j -> acc +. (j.cycles /. speed_at proc k j)) 0. jobs

(* energy charged while executing (dormant-enable pays leakage only while
   awake; dormant-disable's constant awake cost is accounted separately) *)
let exec_energy (proc : Processor.t) job s =
  let dyn = Power_model.dynamic_power (factored proc.model job.factor) s in
  let leak =
    match proc.dormancy with
    | Processor.Dormant_enable _ -> proc.model.Power_model.p_ind
    | Processor.Dormant_disable -> 0.
  in
  job.cycles /. s *. (leak +. dyn)

let solve_jobs (proc : Processor.t) ~time_budget jobs =
  match jobs with
  | [] -> Some { speeds = []; time_used = 0.; energy = 0. }
  | _ ->
      let s_max = Processor.s_max proc in
      let alpha = proc.model.Power_model.alpha in
      let t_min =
        List.fold_left (fun acc j -> acc +. (j.cycles /. s_max)) 0. jobs
      in
      if Rt_prelude.Float_cmp.gt t_min time_budget then None
      else begin
        let k_hi =
          s_max
          *. List.fold_left
               (fun acc j -> Float.max acc (j.factor ** (1. /. alpha)))
               1. jobs
        in
        let k_lo = 1e-12 *. k_hi in
        let k =
          Rt_prelude.Math_util.bisect_decreasing
            ~f:(fun k -> time_at proc k jobs)
            ~target:time_budget ~lo:k_lo ~hi:k_hi ()
        in
        let speeds = List.map (fun j -> (j.id, speed_at proc k j)) jobs in
        let time_used = time_at proc k jobs in
        let energy =
          List.fold_left2
            (fun acc j (_, s) -> acc +. exec_energy proc j s)
            0. jobs speeds
        in
        Some { speeds; time_used; energy }
      end

let processor_speeds (proc : Processor.t) ~horizon items =
  check_proc proc;
  if Fc.exact_le horizon 0. then
    invalid_arg "Hetero.processor_speeds: horizon <= 0";
  let jobs =
    List.map
      (job_of_item proc ~cycles_of:(fun (it : Task.item) -> it.weight *. horizon))
      items
  in
  solve_jobs proc ~time_budget:horizon jobs

let awake_overhead (proc : Processor.t) ~horizon =
  match proc.dormancy with
  | Processor.Dormant_disable -> proc.model.Power_model.p_ind *. horizon
  | Processor.Dormant_enable _ -> 0.

let estimated_times (proc : Processor.t) ~m ~horizon items =
  check_proc proc;
  if m < 1 then invalid_arg "Hetero.estimated_times: m < 1";
  if Fc.exact_le horizon 0. then
    invalid_arg "Hetero.estimated_times: horizon <= 0";
  let jobs =
    List.map
      (job_of_item proc ~cycles_of:(fun (it : Task.item) -> it.weight *. horizon))
      items
  in
  (* pooled budget m·H, but no task may run longer than H: repeatedly fix
     over-long tasks at exactly H and re-solve the remainder *)
  let rec refine fixed budget active =
    match solve_jobs proc ~time_budget:budget active with
    | None ->
        (* cannot fit even at top speed: every remaining task is estimated
           at the cap (they are the over-long ones by construction) *)
        List.map (fun j -> (j.id, horizon)) active @ fixed
    | Some { speeds; _ } ->
        let over, ok =
          List.partition
            (fun j ->
              let s = List.assoc j.id speeds in
              Rt_prelude.Float_cmp.gt (j.cycles /. s) horizon)
            active
        in
        if over = [] then
          List.map
            (fun j -> (j.id, j.cycles /. List.assoc j.id speeds))
            active
          @ fixed
        else begin
          let fixed = List.map (fun j -> (j.id, horizon)) over @ fixed in
          let budget = budget -. (float_of_int (List.length over) *. horizon) in
          if Fc.exact_le budget 0. || ok = [] then
            List.map (fun j -> (j.id, horizon)) ok @ fixed
          else refine fixed budget ok
        end
  in
  refine [] (float_of_int m *. horizon) jobs

let leuf (proc : Processor.t) ~m ~horizon items =
  let times = estimated_times proc ~m ~horizon items in
  let time_of (it : Task.item) =
    match List.assoc_opt it.item_id times with Some t -> t | None -> 0.
  in
  let sorted =
    List.sort
      (fun a b ->
        let c = Float.compare (time_of b) (time_of a) in
        if c <> 0 then c else compare a.Task.item_id b.Task.item_id)
      items
  in
  let est_load = Array.make m 0. in
  List.fold_left
    (fun p it ->
      let best = ref 0 in
      Array.iteri
        (fun j l -> if Fc.exact_lt l est_load.(!best) then best := j)
        est_load;
      est_load.(!best) <- est_load.(!best) +. time_of it;
      Partition.add p !best it)
    (Partition.empty ~m) sorted

let total_energy (proc : Processor.t) ~horizon p =
  let rec go j acc =
    if j = Partition.m p then Some acc
    else
      match processor_speeds proc ~horizon (Partition.bucket p j) with
      | None -> None
      | Some { energy; _ } ->
          go (j + 1) (acc +. energy +. awake_overhead proc ~horizon)
  in
  go 0 0.
