open Rt_task

let greedy_min_load ~m items =
  List.fold_left
    (fun p it -> Partition.add p (Partition.min_load_index p) it)
    (Partition.empty ~m) items

let ltf ~m items =
  greedy_min_load ~m (List.sort Task.compare_item_weight_desc items)

let greedy_unsorted ~m items = greedy_min_load ~m items

let random rng ~m items =
  List.fold_left
    (fun p it -> Partition.add p (Rt_prelude.Rng.int rng ~lo:0 ~hi:(m - 1)) it)
    (Partition.empty ~m) items

let fit_by ~choose ~m ~capacity items =
  if Rt_prelude.Float_cmp.exact_le capacity 0. then
    invalid_arg "Heuristics.fit: capacity <= 0";
  let place (p, rejected) (it : Task.item) =
    let fits j = Rt_prelude.Float_cmp.leq (Partition.load p j +. it.weight) capacity in
    let candidates = List.filter fits (Rt_prelude.Math_util.range 0 (m - 1)) in
    match choose p candidates with
    | None -> (p, it :: rejected)
    | Some j -> (Partition.add p j it, rejected)
  in
  let p, rejected = List.fold_left place (Partition.empty ~m, []) items in
  (p, List.rev rejected)

let first_fit ~m ~capacity items =
  fit_by ~m ~capacity items ~choose:(fun _ -> function
    | [] -> None
    | j :: _ -> Some j)

let first_fit_decreasing ~m ~capacity items =
  first_fit ~m ~capacity (List.sort Task.compare_item_weight_desc items)

let extreme_by ~better p = function
  | [] -> None
  | j :: rest ->
      Some
        (List.fold_left
           (fun best j' ->
             if better (Partition.load p j') (Partition.load p best) then j'
             else best)
           j rest)

let best_fit ~m ~capacity items =
  fit_by ~m ~capacity items
    ~choose:(fun p -> extreme_by ~better:Rt_prelude.Float_cmp.exact_gt p)

let worst_fit ~m ~capacity items =
  fit_by ~m ~capacity items
    ~choose:(fun p -> extreme_by ~better:Rt_prelude.Float_cmp.exact_lt p)

let capacity_respected ~capacity p =
  Array.for_all
    (fun l -> Rt_prelude.Float_cmp.leq l capacity)
    (Partition.loads p)
