(** Task partitions: the assignment of items onto [m] processors.

    A value is immutable; [add] copies the (small) bucket array. Items keep
    their identity, so a partition can always be traced back to the
    instance it was built from. *)

type t = private {
  m : int;
  buckets : Rt_task.Task.item list array;  (** length [m]; most recent first *)
  sums : float array;
      (** cached per-bucket weight totals, kept in sync by the
          constructors; read through {!loads} / {!load}, never mutated *)
}

val empty : m:int -> t
(** @raise Invalid_argument if [m < 1]. *)

val add : t -> int -> Rt_task.Task.item -> t
(** [add p j it] assigns [it] to processor [j].
    @raise Invalid_argument if [j] is out of range. *)

val of_buckets : Rt_task.Task.item list array -> t
(** @raise Invalid_argument on an empty array or duplicate item ids. *)

val m : t -> int
val bucket : t -> int -> Rt_task.Task.item list
val all_items : t -> Rt_task.Task.item list
val size : t -> int

val loads : t -> float array
(** Per-processor weight sums (a fresh copy of the cache — callers may
    mutate the result freely). *)

val load : t -> int -> float
(** O(1) cached read. @raise Invalid_argument if [j] is out of range. *)

val makespan : t -> float
(** Largest per-processor load (0. for an all-empty partition). *)

val min_load_index : t -> int
(** Index of a least-loaded processor (lowest index on ties). *)

val processor_of : t -> int -> int option
(** [processor_of p id] is the processor holding item [id], if any. *)

val equal_shape : t -> t -> bool
(** Same [m] and the same set of item ids on each processor (order
    ignored). *)

val pp : Format.formatter -> t -> unit
