module Fc = Rt_prelude.Float_cmp
open Rt_task

type slice = { item_id : int; proc : int; t0 : float; t1 : float }

type schedule = {
  speeds : (int * float) list;
  slices : slice list;
  energy : float;
}

let exec_energy (proc : Rt_power.Processor.t) ~cycles ~speed =
  let leak =
    match proc.dormancy with
    | Rt_power.Processor.Dormant_enable _ ->
        proc.model.Rt_power.Power_model.p_ind
    | Rt_power.Processor.Dormant_disable -> 0.
  in
  cycles /. speed
  *. (leak +. Rt_power.Power_model.dynamic_power proc.model speed)

let idle_energy (proc : Rt_power.Processor.t) ~idle =
  match proc.dormancy with
  | Rt_power.Processor.Dormant_enable _ -> 0.
  | Rt_power.Processor.Dormant_disable ->
      idle *. Rt_power.Processor.idle_power proc

let optimal ~(proc : Rt_power.Processor.t) ~m ~frame items =
  if m < 1 then Error "Migration.optimal: m < 1"
  else if Fc.exact_le frame 0. then Error "Migration.optimal: frame <= 0"
  else if not (Rt_power.Processor.is_ideal proc) then
    Error "Migration.optimal: ideal processors only"
  else if
    not (Task.distinct_ids (List.map (fun (i : Task.item) -> i.item_id) items))
  then Error "Migration.optimal: duplicate item ids"
  else if
    List.exists
      (fun (i : Task.item) -> not (Fc.exact_eq i.item_power_factor 1.))
      items
  then Error "Migration.optimal: non-unit power factors"
  else if items = [] then Ok { speeds = []; slices = []; energy = 0. }
  else begin
    let s_max = Rt_power.Processor.s_max proc in
    let total = Taskset.total_weight items in
    let w_max =
      List.fold_left (fun acc (i : Task.item) -> Float.max acc i.weight) 0. items
    in
    if
      Rt_prelude.Float_cmp.gt (total /. float_of_int m) s_max
      || Rt_prelude.Float_cmp.gt w_max s_max
    then Error "Migration.optimal: infeasible even at s_max"
    else begin
      (* the pooled KKT water-filling with the per-task frame cap *)
      let times = Hetero.estimated_times proc ~m ~horizon:frame items in
      let speeds =
        List.filter_map
          (fun (it : Task.item) ->
            Option.map
              (fun t -> (it.item_id, it.weight *. frame /. t))
              (List.assoc_opt it.item_id times))
          items
      in
      (* wrap-around fill of the m × frame rectangle *)
      let slices = ref [] in
      let row = ref 0 in
      let cursor = ref 0. in
      let overflow = ref false in
      List.iter
        (fun (it : Task.item) ->
          let exec =
            Option.value ~default:0. (List.assoc_opt it.item_id times)
          in
          (* bisection residue in the times is ~1e-10; anything below the
             tolerance is dropped rather than wrapped onto a phantom row *)
          let rec place remaining =
            if Fc.exact_gt remaining (1e-6 *. frame) then begin
              if !row >= m then overflow := true
              else begin
                let room = frame -. !cursor in
                let dt = Float.min remaining room in
                if Fc.exact_gt dt 0. then
                  slices :=
                    {
                      item_id = it.item_id;
                      proc = !row;
                      t0 = !cursor;
                      t1 = !cursor +. dt;
                    }
                    :: !slices;
                cursor := !cursor +. dt;
                if Fc.exact_ge !cursor (frame -. (1e-9 *. frame)) then begin
                  incr row;
                  cursor := 0.
                end;
                place (remaining -. dt)
              end
            end
          in
          place exec)
        items;
      if !overflow then
        Error "Migration.optimal: internal overflow in the wrap-around fill"
      else begin
        let busy =
          List.fold_left
            (fun acc (_, t) -> acc +. t)
            0.
            (List.filter
               (fun (id, _) ->
                 List.exists (fun (i : Task.item) -> i.item_id = id) items)
               times)
        in
        let energy =
          List.fold_left
            (fun acc (it : Task.item) ->
              match List.assoc_opt it.item_id speeds with
              | Some s ->
                  acc +. exec_energy proc ~cycles:(it.weight *. frame) ~speed:s
              | None -> acc)
            0. items
          +. idle_energy proc ~idle:((float_of_int m *. frame) -. busy)
        in
        Ok { speeds; slices = List.rev !slices; energy }
      end
    end
  end

let validate ?(eps = 1e-6) ~(proc : Rt_power.Processor.t) ~m ~frame items sch =
  let ( let* ) = Result.bind in
  let* () =
    if
      List.for_all
        (fun s ->
          s.proc >= 0 && s.proc < m
          && Fc.exact_ge s.t0 (-.eps)
          && Fc.exact_le s.t1 (frame +. eps)
          && Fc.exact_gt s.t1 s.t0)
        sch.slices
    then Ok ()
    else Error "slice outside the frame rectangle"
  in
  let* () =
    List.fold_left
      (fun acc (it : Task.item) ->
        let* () = acc in
        match List.assoc_opt it.item_id sch.speeds with
        | None -> Error (Printf.sprintf "item %d has no speed" it.item_id)
        | Some s ->
            if
              Rt_power.Processor.speed_feasible ~eps proc s
              && Rt_prelude.Float_cmp.geq ~eps s it.weight
            then Ok ()
            else
              Error
                (Printf.sprintf "item %d speed %.6g infeasible" it.item_id s))
      (Ok ()) items
  in
  let by_item id = List.filter (fun s -> s.item_id = id) sch.slices in
  let* () =
    List.fold_left
      (fun acc (it : Task.item) ->
        let* () = acc in
        let mine = by_item it.item_id in
        let total = List.fold_left (fun a s -> a +. (s.t1 -. s.t0)) 0. mine in
        let speed =
          Option.value ~default:1. (List.assoc_opt it.item_id sch.speeds)
        in
        let want = it.weight *. frame /. speed in
        let* () =
          if Rt_prelude.Float_cmp.approx_eq ~eps total want then Ok ()
          else
            Error
              (Printf.sprintf "item %d runs %.9g of %.9g" it.item_id total want)
        in
        let sorted = List.sort (fun a b -> Float.compare a.t0 b.t0) mine in
        let rec disjoint = function
          | a :: (b :: _ as rest) ->
              if Fc.exact_lt b.t0 (a.t1 -. eps) then
                Error (Printf.sprintf "item %d overlaps itself" it.item_id)
              else disjoint rest
          | _ -> Ok ()
        in
        disjoint sorted)
      (Ok ()) items
  in
  let* () =
    List.fold_left
      (fun acc p ->
        let* () = acc in
        let mine = List.filter (fun s -> s.proc = p) sch.slices in
        let sorted = List.sort (fun a b -> Float.compare a.t0 b.t0) mine in
        let rec disjoint = function
          | a :: (b :: _ as rest) ->
              if Fc.exact_lt b.t0 (a.t1 -. eps) then
                Error (Printf.sprintf "processor %d double-booked" p)
              else disjoint rest
          | _ -> Ok ()
        in
        disjoint sorted)
      (Ok ())
      (Rt_prelude.Math_util.range 0 (m - 1))
  in
  let busy =
    List.fold_left (fun a s -> a +. (s.t1 -. s.t0)) 0. sch.slices
  in
  let expected =
    List.fold_left
      (fun acc (it : Task.item) ->
        match List.assoc_opt it.item_id sch.speeds with
        | Some s -> acc +. exec_energy proc ~cycles:(it.weight *. frame) ~speed:s
        | None -> acc)
      0. items
    +. idle_energy proc ~idle:((float_of_int m *. frame) -. busy)
  in
  if Rt_prelude.Float_cmp.approx_eq ~eps expected sch.energy then Ok ()
  else Error "energy disagrees with the busy/idle integral"

let energy_lower_bound ~proc ~m ~frame items =
  match optimal ~proc ~m ~frame items with
  | Ok s -> Some s.energy
  | Error _ -> None
