module Fc = Rt_prelude.Float_cmp
type t = {
  id : int;
  arrival : float;
  cycles : float;
  deadline : float;
  penalty : float;
}

let make ~id ~arrival ~cycles ~deadline ~penalty =
  if Fc.exact_lt arrival 0. || not (Float.is_finite arrival) then
    invalid_arg "Job.make: arrival must be finite and >= 0";
  if Fc.exact_le cycles 0. || not (Float.is_finite cycles) then
    invalid_arg "Job.make: cycles must be finite and > 0";
  if Fc.exact_le deadline arrival || not (Float.is_finite deadline) then
    invalid_arg "Job.make: deadline must be after the arrival";
  if Fc.exact_lt penalty 0. || not (Float.is_finite penalty) then
    invalid_arg "Job.make: penalty must be finite and >= 0";
  { id; arrival; cycles; deadline; penalty }

let laxity_speed t = t.cycles /. (t.deadline -. t.arrival)

let by_arrival jobs =
  List.sort
    (fun a b ->
      let c = Float.compare a.arrival b.arrival in
      if c <> 0 then c else compare a.id b.id)
    jobs

let exponential rng ~mean =
  let u = Rt_prelude.Rng.float rng ~lo:1e-9 ~hi:1. in
  -.mean *. log u

let stream_seq rng ?limit ~rate ~s_max ~mean_cycles ~slack_lo ~slack_hi
    ~penalty_factor () =
  (match limit with
  | Some n when n < 0 -> invalid_arg "Job.stream: n < 0"
  | _ -> ());
  if Fc.exact_le rate 0. || Fc.exact_le s_max 0. || Fc.exact_le mean_cycles 0.
  then
    invalid_arg "Job.stream: non-positive parameter";
  if Fc.exact_lt slack_lo 1. || Fc.exact_lt slack_hi slack_lo then
    invalid_arg "Job.stream: need 1 <= slack_lo <= slack_hi";
  let rec go i now () =
    let exhausted = match limit with Some n -> i >= n | None -> false in
    if exhausted then Seq.Nil
    else begin
      let arrival = now +. exponential rng ~mean:(1. /. rate) in
      let cycles = Float.max 1. (exponential rng ~mean:mean_cycles) in
      let laxity = cycles /. s_max in
      let slack = Rt_prelude.Rng.float rng ~lo:slack_lo ~hi:slack_hi in
      let deadline = arrival +. (laxity *. slack) in
      (* reference energy: the job at top speed on the normalized cubic
         curve, s_max^2 per cycle *)
      let penalty =
        penalty_factor *. cycles *. (s_max ** 2.)
        *. Rt_prelude.Rng.float rng ~lo:0.6 ~hi:1.4
      in
      Seq.Cons
        (make ~id:i ~arrival ~cycles ~deadline ~penalty, go (i + 1) arrival)
    end
  in
  go 0 0.

let stream rng ~n ~rate ~s_max ~mean_cycles ~slack_lo ~slack_hi
    ~penalty_factor =
  if n < 0 then invalid_arg "Job.stream: n < 0";
  List.of_seq
    (stream_seq rng ~limit:n ~rate ~s_max ~mean_cycles ~slack_lo ~slack_hi
       ~penalty_factor ())
