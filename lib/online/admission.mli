(** Online admission control with DVS speed scaling on one processor.

    The executor runs admitted jobs under preemptive EDF; between events
    it holds the {e density speed} — the largest, over pending deadlines
    [d], of (remaining work due by [d]) / (d − now) — which is the
    minimum constant speed that keeps every commitment, clamped from
    below by the critical speed (sleep when idle) and capped at [s_max].
    This is the online analogue of the uniform-speed optimality the
    static problem enjoys.

    At each arrival the controller runs an exact admission test (is the
    density with the new job at most [s_max]?) and, if the job {e can} be
    admitted, a policy decides whether it {e should} be:

    - {!Admit_all}: accept whenever feasible (the clamping baseline);
    - {!Profitable}: accept iff the estimated marginal energy — running
      the job's cycles at the post-admission density speed — is below
      its penalty (the online marginal-greedy);
    - {!Density_threshold}: accept iff penalty per cycle clears a fixed
      threshold (the cheapest controller: no energy model needed at
      admission time).

    Admitted jobs are guaranteed to meet their deadlines (the test is
    exact for EDF over the {e current} commitments), which the simulator
    re-checks. Note the online/offline gap: because the executor runs at
    the current density, it procrastinates relative to a clairvoyant
    schedule ({!Yds}) that would pre-clear work before a burst — streams
    that are offline-feasible can therefore still suffer forced online
    rejections. The property tests pin this down.

    {!simulate} replays a finite, pre-collected job list; the streaming
    service ([Rt_serve.Serve]) instead drives the stepwise {!Exec} with
    jobs pulled one at a time, through the {e same} decision code — with
    an unbounded ingress queue, no watchdog, and no faults, the two are
    byte-identical by construction. *)

type policy =
  | Admit_all
  | Profitable
  | Density_threshold of float  (** minimum accepted penalty per cycle *)

type outcome = {
  energy : float;
  penalty : float;  (** Σ over rejected jobs *)
  total : float;
  admitted : int list;  (** job ids, ascending *)
  rejected : int list;
  forced_rejections : int;  (** rejections where admission was infeasible *)
  makespan : float;  (** time the last admitted job completed *)
}

type miss = {
  job_id : int;  (** the admitted job that completed late *)
  at : float;  (** its (late) completion time *)
  deadline : float;  (** the deadline it blew *)
  active_ids : int list;
      (** every job pending on that processor at the miss (ascending,
          including [job_id]) *)
  density : float;
      (** the density speed of that pending set at the miss — above the
          speed cap iff the commitment was genuinely infeasible *)
  backlog : float;  (** remaining cycles across that pending set *)
}
(** The state of the executor when an admitted job missed its deadline —
    structured so the service incident log and the fuzz shrinker can use
    it (which job, how loaded the processor was) instead of parsing a
    message. The admission test is supposed to make this unreachable;
    every simulator entry point still checks. *)

type error =
  | Deadline_miss of miss  (** defensive: admission should prevent this *)
  | Invalid of string  (** bad arguments or an impossible internal state *)

val error_to_string : error -> string
(** One-line rendering for CLI output and test failure messages. *)

type decision = Admitted | Declined | Infeasible
(** What became of one arrival: accepted; rejected by the policy;
    rejected because no processor could fit it ([forced_rejections]). *)

val simulate :
  proc:Rt_power.Processor.t -> policy:policy -> Job.t list ->
  (outcome, error) result
(** Jobs may be given in any order (sorted internally). Errors on
    duplicate ids, a non-ideal processor (discrete-level online scaling
    is out of scope), or — defensively — if an admitted job misses its
    deadline, which the admission test is supposed to make impossible. *)

val simulate_mp :
  proc:Rt_power.Processor.t -> m:int -> policy:policy -> Job.t list ->
  (outcome, error) result
(** The partitioned multiprocessor form: [m] identical processors, each
    running its own density-speed EDF executor. An arriving job is tried
    on the feasible processor with the smallest marginal-energy estimate
    (equivalently the least-loaded, by convexity); the policy then decides
    as in {!simulate}. With [m = 1] this coincides with {!simulate}.
    Errors as {!simulate} plus [m < 1]. *)

val job_bound : proc:Rt_power.Processor.t -> Job.t -> float
(** One job's term of {!lower_bound}:
    [min(penalty, cycles × best-feasible-per-cycle-energy)] — additive,
    so a streaming consumer can accumulate the bound job by job. *)

val lower_bound : proc:Rt_power.Processor.t -> Job.t list -> float
(** An unreachable-but-sound reference: each job independently pays
    {!job_bound}, where the per-cycle energy is evaluated at the better
    of the critical speed and the job's own laxity speed — interference
    between jobs can only make reality costlier. *)

(** The stepwise executor behind {!simulate_mp}, exposed for the
    streaming service. A [t] is [m] per-processor EDF executors plus the
    admission bookkeeping ({!outcome} accumulators); the batch simulator
    is [create] / sorted [advance_to]+[decide] per arrival / [finish],
    and [Rt_serve.Serve] interleaves the same calls with its robustness
    layer (ingress shedding, watchdog tiers, fault re-planning).

    Time only moves forward: [advance_to] rejects a target before [now].
    The fault hooks ([set_speed_cap], [kill], [inflate], [remove_active],
    [place], [drop_admitted]) deliberately let the caller put the
    executor into an over-committed state — it is the caller's job to
    re-plan (shed or re-home) until every live processor's {!density_of}
    is back under {!speed_cap}, or the next [advance_to] will report the
    resulting {!miss} instead of hiding it. *)
module Exec : sig
  type t

  val create : proc:Rt_power.Processor.t -> m:int -> (t, error) result
  (** Errors as {!simulate_mp} ([m < 1], non-ideal processor). *)

  val now : t -> float
  (** Current simulation time (starts at 0). *)

  val m : t -> int
  (** Processor count, dead or alive. *)

  val live : t -> int list
  (** Indices of processors that have not been {!kill}ed, ascending. *)

  val active_count : t -> int
  (** Admitted jobs still pending, across all processors. *)

  val backlog : t -> float
  (** Remaining admitted cycles, across all processors. *)

  val speed_cap : t -> float
  (** Effective top speed: [s_max] until {!set_speed_cap} lowers it. *)

  val set_speed_cap : t -> float -> (unit, error) result
  (** Derating fault hook: every executor and every admission test is
      clamped to this cap from now on. The caller re-plans committed
      work afterwards. Errors on a non-positive or non-finite cap. *)

  val advance_to : t -> until:float -> (unit, error) result
  (** Run every live processor's EDF executor forward to [until],
      accumulating energy and makespan. Errors with {!Deadline_miss} if
      an admitted job completes late (possible only after a fault hook
      was used without re-planning). *)

  val decide : t -> policy:policy -> Job.t -> (decision, error) result
    [@@rt.hot "per-arrival step of the streaming admission service"]
  (** The full per-arrival step at time [now]: exact density feasibility
      over live processors, cheapest-marginal placement, then [policy].
      Records the outcome (admission, rejection penalty, forced count).
      Deciding later than the job's arrival leaves it less slack — queue
      latency degrades schedulability, as it should. Errors on a
      duplicate id. *)

  val decide_cheap : t -> theta:float -> Job.t -> (decision, error) result
    [@@rt.hot "per-arrival step of the degraded service tier"]
  (** The degraded-tier step: density feasibility on the {e first}
      feasible live processor and a penalty-per-cycle threshold [theta] —
      no marginal-energy estimate. Same bookkeeping as {!decide}. *)

  val reject : t -> Job.t -> (unit, error) result
  (** Record a rejection decided {e outside} the executor (ingress shed,
      admit-none tier): the job pays its penalty and is never tested.
      Errors on a duplicate id. *)

  val residuals : t -> proc:int -> (Job.t * float) list
  (** Snapshot of one processor's pending jobs with their remaining
      cycles ([] out of range). *)

  val density_of : t -> proc:int -> extra:(float * float) list -> float
  (** Density speed of processor [proc]'s pending set plus [extra]
      hypothetical [(remaining, deadline)] work, at time [now] — the
      feasibility probe for re-homing and re-planning. *)

  val remove_active : t -> id:int -> (Job.t * float) option
  (** Detach a pending job (whichever processor holds it), returning it
      with its remaining cycles. The job stays admitted: follow with
      {!place} (re-home) or {!drop_admitted} (shed). *)

  val place : t -> proc:int -> Job.t * float -> (unit, error) result
  (** Attach a detached job to a live processor. The caller checks
      feasibility via {!density_of}; placing infeasible work will
      surface as a {!Deadline_miss} on a later [advance_to]. *)

  val drop_admitted : t -> Job.t -> unit
  (** Shed a previously admitted, now detached job: it leaves the
      admitted set and pays its rejection penalty — the "never a silent
      miss" escape hatch fault re-planning uses. *)

  val kill : t -> proc:int -> (Job.t * float) list
  (** Crash fault hook: mark the processor dead (it executes and burns
      nothing from now on) and detach its pending jobs, returned for the
      caller to re-home or shed. [] when out of range. *)

  val inflate : t -> id:int -> factor:float -> bool
  (** Overrun fault hook: multiply a pending job's remaining cycles.
      [false] if no pending job has this id. *)

  val finish : t -> (outcome, error) result
  (** Drain all remaining work past the last deadline and return the
      accumulated outcome. Errors if work is left after every deadline
      (over-commitment that never got re-planned — e.g. a crashed
      processor's orphans, or a dead-platform residue). *)
end
