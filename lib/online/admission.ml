module Fc = Rt_prelude.Float_cmp
open Rt_power

type policy =
  | Admit_all
  | Profitable
  | Density_threshold of float

type outcome = {
  energy : float;
  penalty : float;
  total : float;
  admitted : int list;
  rejected : int list;
  forced_rejections : int;
  makespan : float;
}

type active = { job : Job.t; mutable remaining : float }

let eps = 1e-9

(* the minimum constant speed meeting every pending commitment from [now]:
   max over deadlines of cumulative-work-due / time-to-deadline *)
let density_speed actives ~now =
  let sorted =
    List.sort
      (fun a b -> Float.compare a.job.Job.deadline b.job.Job.deadline)
      actives
  in
  let _, best =
    List.fold_left
      (fun (work, best) a ->
        let work = work +. a.remaining in
        let slack = a.job.Job.deadline -. now in
        if Fc.exact_le slack eps then (work, Float.infinity)
        else (work, Float.max best (work /. slack)))
      (0., 0.) sorted
  in
  best

let critical (proc : Processor.t) =
  match proc.dormancy with
  | Processor.Dormant_enable _ -> Processor.critical_speed proc
  | Processor.Dormant_disable -> Processor.s_min proc

let idle_power (proc : Processor.t) =
  match proc.dormancy with
  | Processor.Dormant_enable _ -> 0.
  | Processor.Dormant_disable -> Processor.idle_power proc

(* run EDF from [now] to [until] (or to work exhaustion), returning the new
   time, accumulated energy, and the completion time of the last finished
   job; fails if an admitted job misses its deadline *)
let advance (proc : Processor.t) actives ~now ~until =
  let s_max = Processor.s_max proc in
  let s_crit = critical proc in
  let energy = ref 0. in
  let last_completion = ref Float.neg_infinity in
  let now = ref now in
  let err = ref None in
  let rec run () =
    if !err <> None then ()
    else if Fc.exact_ge !now (until -. eps) then ()
    else begin
      match !actives with
      | [] ->
          (* idle to the horizon of this segment *)
          energy := !energy +. (idle_power proc *. (until -. !now));
          now := until
      | jobs ->
          let speed =
            Rt_prelude.Float_cmp.clamp ~lo:0. ~hi:s_max
              (Float.max s_crit (density_speed jobs ~now:!now))
          in
          if Fc.exact_le speed 0. then begin
            (* zero density with work pending cannot happen (cycles > 0) *)
            err := Some "Admission: zero speed with pending work"
          end
          else begin
            let ed =
              List.fold_left
                (fun best a ->
                  match best with
                  | None -> Some a
                  | Some b ->
                      if
                        (* exact tie-break keeps the EDF order total *)
                        Fc.exact_lt a.job.Job.deadline b.job.Job.deadline
                        || (Fc.exact_eq a.job.Job.deadline b.job.Job.deadline
                           && a.job.Job.id < b.job.Job.id)
                      then Some a
                      else best)
                None jobs
              |> Option.get
            in
            let finish = !now +. (ed.remaining /. speed) in
            let t_next = Float.min finish until in
            let dt = t_next -. !now in
            energy := !energy +. (dt *. Power_model.power proc.model speed);
            ed.remaining <- ed.remaining -. (dt *. speed);
            now := t_next;
            if Fc.exact_le ed.remaining (eps *. Float.max 1. ed.job.Job.cycles)
            then begin
              if Fc.exact_gt !now (ed.job.Job.deadline +. 1e-6) then
                err :=
                  Some
                    (Printf.sprintf "Admission: job %d missed its deadline"
                       ed.job.Job.id)
              else begin
                last_completion := Float.max !last_completion !now;
                actives :=
                  List.filter (fun a -> a.job.Job.id <> ed.job.Job.id) !actives
              end
            end;
            run ()
          end
    end
  in
  run ();
  match !err with
  | Some e -> Error e
  | None -> Ok (!now, !energy, !last_completion)

let marginal_estimate (proc : Processor.t) actives ~now (j : Job.t) =
  let trial = { job = j; remaining = j.Job.cycles } :: actives in
  let s =
    Rt_prelude.Float_cmp.clamp ~lo:0. ~hi:(Processor.s_max proc)
      (Float.max (critical proc) (density_speed trial ~now))
  in
  if Fc.exact_le s 0. then Float.infinity
  else j.Job.cycles *. Power_model.power proc.model s /. s

let simulate_mp ~(proc : Processor.t) ~m ~policy jobs =
  if m < 1 then Error "Admission.simulate_mp: m < 1"
  else if not (Processor.is_ideal proc) then
    Error "Admission.simulate: ideal processors only"
  else if
    not (Rt_task.Task.distinct_ids (List.map (fun (j : Job.t) -> j.Job.id) jobs))
  then Error "Admission.simulate: duplicate job ids"
  else begin
    let jobs = Job.by_arrival jobs in
    let processors = Array.init m (fun _ -> ref []) in
    let energy = ref 0. in
    let penalty = ref 0. in
    let admitted = ref [] in
    let rejected = ref [] in
    let forced = ref 0 in
    let makespan = ref 0. in
    let now = ref 0. in
    let s_max = Processor.s_max proc in
    (* advance every processor to [until]; they do not interact *)
    let advance_all ~until =
      Array.fold_left
        (fun acc actives ->
          match acc with
          | Error _ as e -> e
          | Ok () -> (
              match advance proc actives ~now:!now ~until with
              | Error e -> Error e
              | Ok (_, e, last) ->
                  energy := !energy +. e;
                  if Fc.exact_gt last 0. then
                    makespan := Float.max !makespan last;
                  Ok ()))
        (Ok ()) processors
    in
    let rec process = function
      | [] -> Ok ()
      | (j : Job.t) :: rest -> (
          match advance_all ~until:j.Job.arrival with
          | Error e -> Error e
          | Ok () ->
              now := j.Job.arrival;
              (* feasible processor with the cheapest marginal estimate *)
              let best = ref None in
              Array.iter
                (fun actives ->
                  let trial =
                    { job = j; remaining = j.Job.cycles } :: !actives
                  in
                  if
                    Rt_prelude.Float_cmp.leq
                      (density_speed trial ~now:!now)
                      s_max
                  then begin
                    let est = marginal_estimate proc !actives ~now:!now j in
                    match !best with
                    | Some (_, eb) when Fc.exact_le eb est -> ()
                    | _ -> best := Some (actives, est)
                  end)
                processors;
              (match !best with
              | None ->
                  incr forced;
                  rejected := j.Job.id :: !rejected;
                  penalty := !penalty +. j.Job.penalty
              | Some (actives, est) ->
                  let accept =
                    match policy with
                    | Admit_all -> true
                    | Profitable ->
                        Rt_prelude.Float_cmp.leq est j.Job.penalty
                    | Density_threshold theta ->
                        (* tolerant: this is the paper's accept/reject boundary *)
                        Rt_prelude.Float_cmp.geq
                          (j.Job.penalty /. j.Job.cycles)
                          theta
                  in
                  if accept then begin
                    actives :=
                      { job = j; remaining = j.Job.cycles } :: !actives;
                    admitted := j.Job.id :: !admitted
                  end
                  else begin
                    rejected := j.Job.id :: !rejected;
                    penalty := !penalty +. j.Job.penalty
                  end);
              process rest)
    in
    match process jobs with
    | Error e -> Error e
    | Ok () -> (
        (* drain the remaining work on every processor *)
        let horizon =
          Array.fold_left
            (fun acc actives ->
              List.fold_left
                (fun acc a -> Float.max acc a.job.Job.deadline)
                acc !actives)
            !now processors
        in
        match advance_all ~until:(horizon +. 1.) with
        | Error e -> Error e
        | Ok () ->
            if Array.exists (fun actives -> !actives <> []) processors then
              Error "Admission.simulate: work left after the last deadline"
            else
              Ok
                {
                  energy = !energy;
                  penalty = !penalty;
                  total = !energy +. !penalty;
                  admitted = List.sort compare !admitted;
                  rejected = List.sort compare !rejected;
                  forced_rejections = !forced;
                  makespan = !makespan;
                })
  end

let simulate ~proc ~policy jobs = simulate_mp ~proc ~m:1 ~policy jobs

let lower_bound ~(proc : Processor.t) jobs =
  let s_max = Processor.s_max proc in
  let s_crit = critical proc in
  List.fold_left
    (fun acc (j : Job.t) ->
      let s =
        Rt_prelude.Float_cmp.clamp ~lo:1e-9 ~hi:s_max
          (Float.max s_crit (Job.laxity_speed j))
      in
      let run_cost = j.Job.cycles *. Power_model.power proc.model s /. s in
      acc +. Float.min j.Job.penalty run_cost)
    0. jobs
