module Fc = Rt_prelude.Float_cmp
open Rt_power

type policy =
  | Admit_all
  | Profitable
  | Density_threshold of float

type outcome = {
  energy : float;
  penalty : float;
  total : float;
  admitted : int list;
  rejected : int list;
  forced_rejections : int;
  makespan : float;
}

type miss = {
  job_id : int;
  at : float;
  deadline : float;
  active_ids : int list;
  density : float;
  backlog : float;
}

type error = Deadline_miss of miss | Invalid of string

let error_to_string = function
  | Invalid msg -> msg
  | Deadline_miss m ->
      Printf.sprintf
        "Admission: job %d missed its deadline %g at t=%g (density %g, \
         backlog %g cycles across %d active job(s))"
        m.job_id m.deadline m.at m.density m.backlog
        (List.length m.active_ids)

type decision = Admitted | Declined | Infeasible

let eps = 1e-9

(* ------------------------------------------------------------------ *)
(* One processor's pending set in struct-of-arrays form: parallel arrays
   sorted by (deadline ascending, newest admission first among exact
   ties) — exactly the order the old [density_pairs] produced by
   stable-sorting the newest-first cons list this layout replaces, so
   every density fold visits the same floats in the same order. [seqs]
   records admission recency so the cold snapshots (residuals, kill,
   miss logs) can still present jobs newest-first, like the list did. *)

type pending = {
  mutable len : int;
  mutable jobs : Job.t array;
  mutable remaining : float array;  (** unboxed EDF work left, per job *)
  mutable deadlines : float array;  (** unboxed cache of [jobs.(i).deadline] *)
  mutable seqs : int array;  (** admission order; larger = newer *)
}

let pending_create () =
  { len = 0; jobs = [||]; remaining = [||]; deadlines = [||]; seqs = [||] }

(* grow the parallel arrays; [j] only seeds the fresh [Job.t] slots *)
let pending_grow pen (j : Job.t) =
  let cap = Int.max 4 (2 * Array.length pen.jobs) in
  let jobs = Array.make cap j in
  Array.blit pen.jobs 0 jobs 0 pen.len;
  let remaining = Array.make cap 0. in
  Array.blit pen.remaining 0 remaining 0 pen.len;
  let deadlines = Array.make cap 0. in
  Array.blit pen.deadlines 0 deadlines 0 pen.len;
  let seqs = Array.make cap 0 in
  Array.blit pen.seqs 0 seqs 0 pen.len;
  pen.jobs <- jobs;
  pen.remaining <- remaining;
  pen.deadlines <- deadlines;
  pen.seqs <- seqs

(* leftmost slot whose deadline is >= d: inserting there keeps every
   exact-tie group newest-first, which is where a stable sort of the
   newest-first cons list would have put a fresh arrival *)
let rec insert_pos pen d i =
  if i >= pen.len || Float.compare pen.deadlines.(i) d >= 0 then i
  else insert_pos pen d (i + 1)

let pending_insert pen (j : Job.t) ~remaining ~seq =
  if pen.len >= Array.length pen.jobs then pending_grow pen j;
  let pos = insert_pos pen j.Job.deadline 0 in
  let shift = pen.len - pos in
  Array.blit pen.jobs pos pen.jobs (pos + 1) shift;
  Array.blit pen.remaining pos pen.remaining (pos + 1) shift;
  Array.blit pen.deadlines pos pen.deadlines (pos + 1) shift;
  Array.blit pen.seqs pos pen.seqs (pos + 1) shift;
  pen.jobs.(pos) <- j;
  pen.remaining.(pos) <- remaining;
  pen.deadlines.(pos) <- j.Job.deadline;
  pen.seqs.(pos) <- seq;
  pen.len <- pen.len + 1

let pending_remove pen pos =
  let shift = pen.len - pos - 1 in
  Array.blit pen.jobs (pos + 1) pen.jobs pos shift;
  Array.blit pen.remaining (pos + 1) pen.remaining pos shift;
  Array.blit pen.deadlines (pos + 1) pen.deadlines pos shift;
  Array.blit pen.seqs (pos + 1) pen.seqs pos shift;
  pen.len <- pen.len - 1

(* positions in admission-recency order (newest first) — the order the
   cons list used to present its items; only the cold snapshot paths
   need it. [seqs] are distinct, so the comparator is a total order. *)
let recency_positions pen =
  let idx = Array.init pen.len (fun i -> i) in
  Array.sort (fun a b -> Int.compare pen.seqs.(b) pen.seqs.(a)) idx;
  idx

(* the minimum constant speed meeting every pending commitment from
   [now]: max over deadlines of cumulative-work-due / time-to-deadline.
   The arrays are deadline-sorted, so this is one allocation-free pass
   with unboxed accumulators. *)
let rec density_go pen now i work best =
  if i >= pen.len then best
  else begin
    let work = work +. pen.remaining.(i) in
    let slack = pen.deadlines.(i) -. now in
    if Fc.exact_le slack eps then density_go pen now (i + 1) work Float.infinity
    else density_go pen now (i + 1) work (Float.max best (work /. slack))
  end

let pending_density pen ~now = density_go pen now 0 0. 0.

(* density of the pending set plus one hypothetical job, without
   materializing the trial set: a merge walk that folds the trial in
   where a stable sort of the consed trial list would have placed it
   (leftmost among exact deadline ties), so the accumulation order —
   and thus every float result — matches the old cons-and-sort probe *)
let rec density_trial_go pen now r_t d_t placed i work best =
  if (not placed) && (i >= pen.len || Float.compare pen.deadlines.(i) d_t >= 0)
  then begin
    let work = work +. r_t in
    let slack = d_t -. now in
    if Fc.exact_le slack eps then
      density_trial_go pen now r_t d_t true i work Float.infinity
    else
      density_trial_go pen now r_t d_t true i work
        (Float.max best (work /. slack))
  end
  else if i >= pen.len then best
  else begin
    let work = work +. pen.remaining.(i) in
    let slack = pen.deadlines.(i) -. now in
    if Fc.exact_le slack eps then
      density_trial_go pen now r_t d_t placed (i + 1) work Float.infinity
    else
      density_trial_go pen now r_t d_t placed (i + 1) work
        (Float.max best (work /. slack))
  end

let pending_density_with pen ~now ~remaining ~deadline =
  density_trial_go pen now remaining deadline false 0 0. 0.

(* the same fold over an explicit pair list — the re-planning probe
   ([Exec.density_of]) splices caller-supplied hypothetical work in
   front of the pending set, exactly as the list-based executor did *)
let density_pairs ~now pairs =
  let sorted =
    List.sort (fun (_, da) (_, db) -> Float.compare da db) pairs
  in
  (* unboxed accumulators: cumulative work and the running max density *)
  let rec go work best = function
    | [] -> best
    | (remaining, deadline) :: rest ->
        let work = work +. remaining in
        let slack = deadline -. now in
        if Fc.exact_le slack eps then go work Float.infinity rest
        else go work (Float.max best (work /. slack)) rest
  in
  go 0. 0. sorted

let critical (proc : Processor.t) =
  match proc.dormancy with
  | Processor.Dormant_enable _ -> Processor.critical_speed proc
  | Processor.Dormant_disable -> Processor.s_min proc

let idle_power (proc : Processor.t) =
  match proc.dormancy with
  | Processor.Dormant_enable _ -> 0.
  | Processor.Dormant_disable -> Processor.idle_power proc

(* the structured state an incident log wants when an admitted job is
   late: who was pending, how much work was left, and the density the
   executor was trying to sustain (only evaluated on the error path).
   The backlog sums in admission-recency order, as the cons list did. *)
let miss_of pen ~now (late : Job.t) =
  let order = recency_positions pen in
  {
    job_id = late.Job.id;
    at = now;
    deadline = late.Job.deadline;
    active_ids =
      List.sort compare
        (Array.to_list (Array.map (fun p -> pen.jobs.(p).Job.id) order));
    density = pending_density pen ~now;
    backlog =
      Array.fold_left (fun acc p -> acc +. pen.remaining.(p)) 0. order;
  }

(* earliest deadline lives at position 0 of the sorted arrays; scan the
   exact-tie prefix for the smallest id so the EDF pick stays the same
   total order the list fold used *)
let rec edf_scan pen d0 i best =
  if i >= pen.len || not (Fc.exact_eq pen.deadlines.(i) d0) then best
  else
    edf_scan pen d0 (i + 1)
      (if pen.jobs.(i).Job.id < pen.jobs.(best).Job.id then i else best)

let edf_pick pen = edf_scan pen pen.deadlines.(0) 1 0

(* run EDF from [now] to [until] (or to work exhaustion), returning the new
   time, accumulated energy, and the completion time of the last finished
   job; fails if an admitted job misses its deadline. [cap] is the
   effective top speed — [s_max] on a healthy platform, lower under a
   derating fault. [s_crit] and [p_idle] are the processor's critical
   speed and idle draw, hoisted to the executor by the caller. *)
let advance (proc : Processor.t) ~cap ~s_crit ~p_idle pen ~now ~until =
  let energy = ref 0. in
  let last_completion = ref Float.neg_infinity in
  let now = ref now in
  let err = ref None in
  let rec run () =
    if !err <> None then ()
    else if Fc.exact_ge !now (until -. eps) then ()
    else if pen.len = 0 then begin
      (* idle to the horizon of this segment *)
      energy := !energy +. (p_idle *. (until -. !now));
      now := until
    end
    else begin
      let speed =
        Rt_prelude.Float_cmp.clamp ~lo:0. ~hi:cap
          (Float.max s_crit (pending_density pen ~now:!now))
      in
      if Fc.exact_le speed 0. then begin
        (* zero density with work pending cannot happen (cycles > 0) *)
        err := Some (Invalid "Admission: zero speed with pending work")
      end
      else begin
        let i = edf_pick pen in
        let jb = pen.jobs.(i) in
        let finish = !now +. (pen.remaining.(i) /. speed) in
        let t_next = Float.min finish until in
        let dt = t_next -. !now in
        energy := !energy +. (dt *. Power_model.power proc.model speed);
        pen.remaining.(i) <- pen.remaining.(i) -. (dt *. speed);
        now := t_next;
        if Fc.exact_le pen.remaining.(i) (eps *. Float.max 1. jb.Job.cycles)
        then begin
          if Fc.exact_gt !now (jb.Job.deadline +. 1e-6) then
            err := Some (Deadline_miss (miss_of pen ~now:!now jb))
          else begin
            last_completion := Float.max !last_completion !now;
            pending_remove pen i
          end
        end;
        run ()
      end
    end
  in
  run ();
  match !err with
  | Some e -> Error e
  | None -> Ok (!now, !energy, !last_completion)

let marginal_estimate (proc : Processor.t) ~cap ~s_crit pen ~now (j : Job.t) =
  let s =
    Rt_prelude.Float_cmp.clamp ~lo:0. ~hi:cap
      (Float.max s_crit
         (pending_density_with pen ~now ~remaining:j.Job.cycles
            ~deadline:j.Job.deadline))
  in
  if Fc.exact_le s 0. then Float.infinity
  else j.Job.cycles *. Power_model.power proc.model s /. s

(* ------------------------------------------------------------------ *)
(* The stepwise executor. [simulate_mp] below and the streaming service
   (lib/serve) drive the same state through the same entry points, which
   is what makes the no-fault serve path byte-identical to the batch
   simulation: there is only one implementation of "advance the EDF
   executors to t, then decide this arrival". *)

module Exec = struct
  type t = {
    proc : Processor.t;
    mutable cap : float;
    pendings : pending array;
    alive : bool array;
    seen : (int, unit) Hashtbl.t;
    s_crit : float;  (** [critical proc], hoisted out of the hot loops *)
    p_idle : float;  (** [idle_power proc], likewise *)
    mutable seq : int;  (** admission recency counter for the snapshots *)
    energy : float ref;
    penalty : float ref;
    admitted : int list ref;
    rejected : int list ref;
    forced : int ref;
    makespan : float ref;
    now : float ref;
  }

  let create ~proc ~m =
    if m < 1 then Error (Invalid "Admission.simulate_mp: m < 1")
    else if not (Processor.is_ideal proc) then
      Error (Invalid "Admission.simulate: ideal processors only")
    else
      Ok
        {
          proc;
          cap = Processor.s_max proc;
          pendings = Array.init m (fun _ -> pending_create ());
          alive = Array.make m true;
          seen = Hashtbl.create 97;
          s_crit = critical proc;
          p_idle = idle_power proc;
          seq = 0;
          energy = ref 0.;
          penalty = ref 0.;
          admitted = ref [];
          rejected = ref [];
          forced = ref 0;
          makespan = ref 0.;
          now = ref 0.;
        }

  let now t = !(t.now)
  let m t = Array.length t.pendings
  let speed_cap t = t.cap

  let set_speed_cap t cap =
    if Fc.exact_le cap 0. || not (Float.is_finite cap) then
      Error (Invalid "Admission.Exec: speed cap must be finite and > 0")
    else begin
      t.cap <- cap;
      Ok ()
    end

  let live t =
    let acc = ref [] in
    Array.iteri (fun i alive -> if alive then acc := i :: !acc) t.alive;
    List.rev !acc

  let active_count t =
    Array.fold_left (fun acc pen -> acc + pen.len) 0 t.pendings

  let backlog t =
    Array.fold_left
      (fun acc pen ->
        Array.fold_left
          (fun acc p -> acc +. pen.remaining.(p))
          acc (recency_positions pen))
      0. t.pendings

  (* attach [j] as the newest pending entry on processor [i] *)
  let attach t i (j : Job.t) ~remaining =
    t.seq <- t.seq + 1;
    pending_insert t.pendings.(i) j ~remaining ~seq:t.seq

  (* advance every live processor to [until]; they do not interact.
     Crashed processors execute nothing and burn nothing; whatever work
     they still hold stays frozen until the caller re-plans it. *)
  let advance_to t ~until =
    if Fc.exact_lt until !(t.now) then
      Error (Invalid "Admission.Exec: time went backwards")
    else begin
      let result = ref (Ok ()) in
      Array.iteri
        (fun i pen ->
          match !result with
          | Error _ -> ()
          | Ok () ->
              if t.alive.(i) then begin
                match
                  advance t.proc ~cap:t.cap ~s_crit:t.s_crit ~p_idle:t.p_idle
                    pen ~now:!(t.now) ~until
                with
                | Error e -> result := Error e
                | Ok (_, e, last) ->
                    t.energy := !(t.energy) +. e;
                    if Fc.exact_gt last 0. then
                      t.makespan := Float.max !(t.makespan) last
              end)
        t.pendings;
      match !result with
      | Error _ as e -> e
      | Ok () ->
          t.now := until;
          Ok ()
    end

  let record_reject t (j : Job.t) =
    t.rejected := j.Job.id :: !(t.rejected);
    t.penalty := !(t.penalty) +. j.Job.penalty

  let reject t (j : Job.t) =
    if Hashtbl.mem t.seen j.Job.id then
      Error (Invalid "Admission.simulate: duplicate job ids")
    else begin
      Hashtbl.add t.seen j.Job.id ();
      record_reject t j;
      Ok ()
    end

  (* the per-arrival step: feasibility over the live processors, then the
     policy. The decision instant is [now t] — deciding late (a queued
     arrival) simply leaves the job less slack. *)
  let decide t ~policy (j : Job.t) =
    if Hashtbl.mem t.seen j.Job.id then
      Error (Invalid "Admission.simulate: duplicate job ids")
    else begin
      Hashtbl.add t.seen j.Job.id ();
      (* feasible processor with the cheapest marginal estimate: an
         unboxed index/estimate scan.  One (index, estimate) pair is
         built at the end — re-probing the winner would cost a full
         marginal_estimate per decision *)
      let n = Array.length t.pendings in
      (* lint: allow-hot-boxed-float "one (index, estimate) pair per decision, not per scan step" *)
      let rec best_proc i best_i best_est =
        if i >= n then (best_i, best_est)
        else if t.alive.(i) then begin
          let pen = t.pendings.(i) in
          if
            Rt_prelude.Float_cmp.leq
              (pending_density_with pen ~now:!(t.now) ~remaining:j.Job.cycles
                 ~deadline:j.Job.deadline)
              t.cap
          then begin
            let est =
              marginal_estimate t.proc ~cap:t.cap ~s_crit:t.s_crit pen
                ~now:!(t.now) j
            in
            if best_i < 0 || not (Fc.exact_le best_est est) then
              best_proc (i + 1) i est
            else best_proc (i + 1) best_i best_est
          end
          else best_proc (i + 1) best_i best_est
        end
        else best_proc (i + 1) best_i best_est
      in
      let best_i, best_est = best_proc 0 (-1) 0. in
      if best_i < 0 then begin
        incr t.forced;
        record_reject t j;
        Ok Infeasible
      end
      else begin
        let accept =
          match policy with
          | Admit_all -> true
          | Profitable -> Rt_prelude.Float_cmp.leq best_est j.Job.penalty
          | Density_threshold theta ->
              (* tolerant: this is the paper's accept/reject boundary *)
              Rt_prelude.Float_cmp.geq (j.Job.penalty /. j.Job.cycles) theta
        in
        if accept then begin
          attach t best_i j ~remaining:j.Job.cycles;
          t.admitted := j.Job.id :: !(t.admitted);
          Ok Admitted
        end
        else begin
          record_reject t j;
          Ok Declined
        end
      end
    end

  (* the degraded-tier decision: one density test on the first feasible
     live processor, a penalty-per-cycle threshold, and no marginal-energy
     estimate — the cheap path the watchdog falls back to. *)
  let decide_cheap t ~theta (j : Job.t) =
    if Hashtbl.mem t.seen j.Job.id then
      Error (Invalid "Admission.simulate: duplicate job ids")
    else begin
      Hashtbl.add t.seen j.Job.id ();
      (* first feasible live processor, by index; early exit instead of
         the latched-ref full sweep this replaces (same winner) *)
      let n = Array.length t.pendings in
      let rec first_feasible i =
        if i >= n then -1
        else if
          t.alive.(i)
          && Rt_prelude.Float_cmp.leq
               (pending_density_with t.pendings.(i) ~now:!(t.now)
                  ~remaining:j.Job.cycles ~deadline:j.Job.deadline)
               t.cap
        then i
        else first_feasible (i + 1)
      in
      match first_feasible 0 with
      | -1 ->
          incr t.forced;
          record_reject t j;
          Ok Infeasible
      | target ->
          if Rt_prelude.Float_cmp.geq (j.Job.penalty /. j.Job.cycles) theta
          then begin
            attach t target j ~remaining:j.Job.cycles;
            t.admitted := j.Job.id :: !(t.admitted);
            Ok Admitted
          end
          else begin
            record_reject t j;
            Ok Declined
          end
    end

  let residuals t ~proc =
    if proc < 0 || proc >= Array.length t.pendings then []
    else begin
      let pen = t.pendings.(proc) in
      Array.to_list
        (Array.map
           (fun p -> (pen.jobs.(p), pen.remaining.(p)))
           (recency_positions pen))
    end

  let density_of t ~proc ~extra =
    if proc < 0 || proc >= Array.length t.pendings then Float.infinity
    else begin
      let pen = t.pendings.(proc) in
      let pairs =
        Array.to_list
          (Array.map
             (fun p -> (pen.remaining.(p), pen.deadlines.(p)))
             (recency_positions pen))
      in
      density_pairs ~now:!(t.now) (extra @ pairs)
    end

  let remove_active t ~id =
    let found = ref None in
    Array.iter
      (fun pen ->
        if Option.is_none !found then begin
          (* find the entry, then purge every slot with this id — the
             List.find_opt + List.filter pair this replaces did both *)
          let rec find i =
            if i >= pen.len then ()
            else if pen.jobs.(i).Job.id = id then
              found := Some (pen.jobs.(i), pen.remaining.(i))
            else find (i + 1)
          in
          find 0;
          if Option.is_some !found then begin
            let rec purge i =
              if i < pen.len then
                if pen.jobs.(i).Job.id = id then begin
                  pending_remove pen i;
                  purge i
                end
                else purge (i + 1)
            in
            purge 0
          end
        end)
      t.pendings;
    !found

  let place t ~proc (job, remaining) =
    if proc < 0 || proc >= Array.length t.pendings then
      Error (Invalid "Admission.Exec.place: processor out of range")
    else if not t.alive.(proc) then
      Error (Invalid "Admission.Exec.place: processor is dead")
    else begin
      attach t proc job ~remaining;
      Ok ()
    end

  (* un-admit a job already detached from its processor: the service pays
     its rejection penalty instead of silently missing its deadline *)
  let drop_admitted t (j : Job.t) =
    t.admitted := List.filter (fun id -> id <> j.Job.id) !(t.admitted);
    record_reject t j

  let kill t ~proc =
    if proc < 0 || proc >= Array.length t.pendings then []
    else begin
      t.alive.(proc) <- false;
      let pen = t.pendings.(proc) in
      let orphans =
        Array.to_list
          (Array.map
             (fun p -> (pen.jobs.(p), pen.remaining.(p)))
             (recency_positions pen))
      in
      pen.len <- 0;
      (* drop the job references so a dead processor holds nothing *)
      pen.jobs <- [||];
      pen.remaining <- [||];
      pen.deadlines <- [||];
      pen.seqs <- [||];
      orphans
    end

  let inflate t ~id ~factor =
    let hit = ref false in
    Array.iter
      (fun pen ->
        for i = 0 to pen.len - 1 do
          if pen.jobs.(i).Job.id = id then begin
            pen.remaining.(i) <- pen.remaining.(i) *. factor;
            hit := true
          end
        done)
      t.pendings;
    !hit

  let finish t =
    (* drain the remaining work on every processor *)
    let horizon =
      Array.fold_left
        (fun acc pen ->
          let acc = ref acc in
          for i = 0 to pen.len - 1 do
            acc := Float.max !acc pen.jobs.(i).Job.deadline
          done;
          !acc)
        !(t.now) t.pendings
    in
    match advance_to t ~until:(horizon +. 1.) with
    | Error e -> Error e
    | Ok () ->
        if Array.exists (fun pen -> pen.len > 0) t.pendings then
          Error (Invalid "Admission.simulate: work left after the last deadline")
        else
          Ok
            {
              energy = !(t.energy);
              penalty = !(t.penalty);
              total = !(t.energy) +. !(t.penalty);
              admitted = List.sort compare !(t.admitted);
              rejected = List.sort compare !(t.rejected);
              forced_rejections = !(t.forced);
              makespan = !(t.makespan);
            }
end

let simulate_mp ~(proc : Processor.t) ~m ~policy jobs =
  match Exec.create ~proc ~m with
  | Error e -> Error e
  | Ok t ->
      if
        not
          (Rt_task.Task.distinct_ids
             (List.map (fun (j : Job.t) -> j.Job.id) jobs))
      then Error (Invalid "Admission.simulate: duplicate job ids")
      else begin
        let jobs = Job.by_arrival jobs in
        let rec process = function
          | [] -> Exec.finish t
          | (j : Job.t) :: rest -> (
              match Exec.advance_to t ~until:j.Job.arrival with
              | Error e -> Error e
              | Ok () -> (
                  match Exec.decide t ~policy j with
                  | Error e -> Error e
                  | Ok _ -> process rest))
        in
        process jobs
      end

let simulate ~proc ~policy jobs = simulate_mp ~proc ~m:1 ~policy jobs

let job_bound ~(proc : Processor.t) (j : Job.t) =
  let s_max = Processor.s_max proc in
  let s_crit = critical proc in
  let s =
    Rt_prelude.Float_cmp.clamp ~lo:1e-9 ~hi:s_max
      (Float.max s_crit (Job.laxity_speed j))
  in
  let run_cost = j.Job.cycles *. Power_model.power proc.model s /. s in
  Float.min j.Job.penalty run_cost

let lower_bound ~(proc : Processor.t) jobs =
  List.fold_left (fun acc j -> acc +. job_bound ~proc j) 0. jobs
