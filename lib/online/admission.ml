module Fc = Rt_prelude.Float_cmp
open Rt_power

type policy =
  | Admit_all
  | Profitable
  | Density_threshold of float

type outcome = {
  energy : float;
  penalty : float;
  total : float;
  admitted : int list;
  rejected : int list;
  forced_rejections : int;
  makespan : float;
}

type miss = {
  job_id : int;
  at : float;
  deadline : float;
  active_ids : int list;
  density : float;
  backlog : float;
}

type error = Deadline_miss of miss | Invalid of string

let error_to_string = function
  | Invalid msg -> msg
  | Deadline_miss m ->
      Printf.sprintf
        "Admission: job %d missed its deadline %g at t=%g (density %g, \
         backlog %g cycles across %d active job(s))"
        m.job_id m.deadline m.at m.density m.backlog
        (List.length m.active_ids)

type decision = Admitted | Declined | Infeasible

type active = { job : Job.t; mutable remaining : float }

let eps = 1e-9

(* the minimum constant speed meeting every pending commitment from [now]:
   max over deadlines of cumulative-work-due / time-to-deadline *)
let density_pairs ~now pairs =
  let sorted =
    List.sort (fun (_, da) (_, db) -> Float.compare da db) pairs
  in
  (* unboxed accumulators: cumulative work and the running max density *)
  let rec go work best = function
    | [] -> best
    | (remaining, deadline) :: rest ->
        let work = work +. remaining in
        let slack = deadline -. now in
        if Fc.exact_le slack eps then go work Float.infinity rest
        else go work (Float.max best (work /. slack)) rest
  in
  go 0. 0. sorted

let density_speed actives ~now =
  density_pairs ~now
    (* lint: allow-hot-alloc-in-loop "the density probe materializes (remaining, deadline) pairs; keeping executor state in SoA arrays is ROADMAP item 3" *)
    (List.map (fun a -> (a.remaining, a.job.Job.deadline)) actives)

let critical (proc : Processor.t) =
  match proc.dormancy with
  | Processor.Dormant_enable _ -> Processor.critical_speed proc
  | Processor.Dormant_disable -> Processor.s_min proc

let idle_power (proc : Processor.t) =
  match proc.dormancy with
  | Processor.Dormant_enable _ -> 0.
  | Processor.Dormant_disable -> Processor.idle_power proc

(* the structured state an incident log wants when an admitted job is
   late: who was pending, how much work was left, and the density the
   executor was trying to sustain (only evaluated on the error path) *)
let miss_of actives ~now (ed : active) =
  {
    job_id = ed.job.Job.id;
    at = now;
    deadline = ed.job.Job.deadline;
    active_ids =
      List.sort compare (List.map (fun a -> a.job.Job.id) actives);
    density = density_speed actives ~now;
    backlog = List.fold_left (fun acc a -> acc +. a.remaining) 0. actives;
  }

(* run EDF from [now] to [until] (or to work exhaustion), returning the new
   time, accumulated energy, and the completion time of the last finished
   job; fails if an admitted job misses its deadline. [cap] is the
   effective top speed — [s_max] on a healthy platform, lower under a
   derating fault. *)
let advance (proc : Processor.t) ~cap actives ~now ~until =
  let s_crit = critical proc in
  let energy = ref 0. in
  let last_completion = ref Float.neg_infinity in
  let now = ref now in
  let err = ref None in
  let rec run () =
    if !err <> None then ()
    else if Fc.exact_ge !now (until -. eps) then ()
    else begin
      match !actives with
      | [] ->
          (* idle to the horizon of this segment *)
          energy := !energy +. (idle_power proc *. (until -. !now));
          now := until
      | jobs ->
          let speed =
            Rt_prelude.Float_cmp.clamp ~lo:0. ~hi:cap
              (Float.max s_crit (density_speed jobs ~now:!now))
          in
          if Fc.exact_le speed 0. then begin
            (* zero density with work pending cannot happen (cycles > 0) *)
            err := Some (Invalid "Admission: zero speed with pending work")
          end
          else begin
            let ed =
              List.fold_left
                (fun best a ->
                  match best with
                  | None -> Some a
                  | Some b ->
                      if
                        (* exact tie-break keeps the EDF order total *)
                        Fc.exact_lt a.job.Job.deadline b.job.Job.deadline
                        || (Fc.exact_eq a.job.Job.deadline b.job.Job.deadline
                           && a.job.Job.id < b.job.Job.id)
                      then Some a
                      else best)
                None jobs
              |> Option.get
            in
            let finish = !now +. (ed.remaining /. speed) in
            let t_next = Float.min finish until in
            let dt = t_next -. !now in
            energy := !energy +. (dt *. Power_model.power proc.model speed);
            ed.remaining <- ed.remaining -. (dt *. speed);
            now := t_next;
            if Fc.exact_le ed.remaining (eps *. Float.max 1. ed.job.Job.cycles)
            then begin
              if Fc.exact_gt !now (ed.job.Job.deadline +. 1e-6) then
                err := Some (Deadline_miss (miss_of !actives ~now:!now ed))
              else begin
                last_completion := Float.max !last_completion !now;
                actives :=
                  List.filter (fun a -> a.job.Job.id <> ed.job.Job.id) !actives
              end
            end;
            run ()
          end
    end
  in
  run ();
  match !err with
  | Some e -> Error e
  | None -> Ok (!now, !energy, !last_completion)

let marginal_estimate (proc : Processor.t) ~cap actives ~now (j : Job.t) =
  let trial = { job = j; remaining = j.Job.cycles } :: actives in
  let s =
    Rt_prelude.Float_cmp.clamp ~lo:0. ~hi:cap
      (Float.max (critical proc) (density_speed trial ~now))
  in
  if Fc.exact_le s 0. then Float.infinity
  else j.Job.cycles *. Power_model.power proc.model s /. s

(* ------------------------------------------------------------------ *)
(* The stepwise executor. [simulate_mp] below and the streaming service
   (lib/serve) drive the same state through the same entry points, which
   is what makes the no-fault serve path byte-identical to the batch
   simulation: there is only one implementation of "advance the EDF
   executors to t, then decide this arrival". *)

module Exec = struct
  type t = {
    proc : Processor.t;
    mutable cap : float;
    processors : active list ref array;
    alive : bool array;
    seen : (int, unit) Hashtbl.t;
    energy : float ref;
    penalty : float ref;
    admitted : int list ref;
    rejected : int list ref;
    forced : int ref;
    makespan : float ref;
    now : float ref;
  }

  let create ~proc ~m =
    if m < 1 then Error (Invalid "Admission.simulate_mp: m < 1")
    else if not (Processor.is_ideal proc) then
      Error (Invalid "Admission.simulate: ideal processors only")
    else
      Ok
        {
          proc;
          cap = Processor.s_max proc;
          processors = Array.init m (fun _ -> ref []);
          alive = Array.make m true;
          seen = Hashtbl.create 97;
          energy = ref 0.;
          penalty = ref 0.;
          admitted = ref [];
          rejected = ref [];
          forced = ref 0;
          makespan = ref 0.;
          now = ref 0.;
        }

  let now t = !(t.now)
  let m t = Array.length t.processors
  let speed_cap t = t.cap

  let set_speed_cap t cap =
    if Fc.exact_le cap 0. || not (Float.is_finite cap) then
      Error (Invalid "Admission.Exec: speed cap must be finite and > 0")
    else begin
      t.cap <- cap;
      Ok ()
    end

  let live t =
    let acc = ref [] in
    Array.iteri (fun i alive -> if alive then acc := i :: !acc) t.alive;
    List.rev !acc

  let active_count t =
    Array.fold_left
      (fun acc actives -> acc + List.length !actives)
      0 t.processors

  let backlog t =
    Array.fold_left
      (fun acc actives ->
        List.fold_left (fun acc a -> acc +. a.remaining) acc !actives)
      0. t.processors

  (* advance every live processor to [until]; they do not interact.
     Crashed processors execute nothing and burn nothing; whatever work
     they still hold stays frozen until the caller re-plans it. *)
  let advance_to t ~until =
    if Fc.exact_lt until !(t.now) then
      Error (Invalid "Admission.Exec: time went backwards")
    else begin
      let result = ref (Ok ()) in
      Array.iteri
        (fun i actives ->
          match !result with
          | Error _ -> ()
          | Ok () ->
              if t.alive.(i) then begin
                match advance t.proc ~cap:t.cap actives ~now:!(t.now) ~until with
                | Error e -> result := Error e
                | Ok (_, e, last) ->
                    t.energy := !(t.energy) +. e;
                    if Fc.exact_gt last 0. then
                      t.makespan := Float.max !(t.makespan) last
              end)
        t.processors;
      match !result with
      | Error _ as e -> e
      | Ok () ->
          t.now := until;
          Ok ()
    end

  let record_reject t (j : Job.t) =
    t.rejected := j.Job.id :: !(t.rejected);
    t.penalty := !(t.penalty) +. j.Job.penalty

  let reject t (j : Job.t) =
    if Hashtbl.mem t.seen j.Job.id then
      Error (Invalid "Admission.simulate: duplicate job ids")
    else begin
      Hashtbl.add t.seen j.Job.id ();
      record_reject t j;
      Ok ()
    end

  (* the per-arrival step: feasibility over the live processors, then the
     policy. The decision instant is [now t] — deciding late (a queued
     arrival) simply leaves the job less slack. *)
  let decide t ~policy (j : Job.t) =
    if Hashtbl.mem t.seen j.Job.id then
      Error (Invalid "Admission.simulate: duplicate job ids")
    else begin
      Hashtbl.add t.seen j.Job.id ();
      (* feasible processor with the cheapest marginal estimate: an
         unboxed index/estimate scan.  One (index, estimate) pair is
         built at the end — re-probing the winner would cost a full
         marginal_estimate (itself allocating) per decision *)
      let n = Array.length t.processors in
      (* lint: allow-hot-boxed-float "one (index, estimate) pair per decision, not per scan step" *)
      let rec best_proc i best_i best_est =
        if i >= n then (best_i, best_est)
        else if t.alive.(i) then begin
          let actives = t.processors.(i) in
          let trial =
            (* lint: allow-hot-alloc-in-loop "the admission test probes a hypothetical pending set; SoA executor state (ROADMAP item 3) removes the cons" *)
            { job = j; remaining = j.Job.cycles } :: !actives
          in
          if Rt_prelude.Float_cmp.leq (density_speed trial ~now:!(t.now)) t.cap
          then begin
            let est =
              marginal_estimate t.proc ~cap:t.cap !actives ~now:!(t.now) j
            in
            if best_i < 0 || not (Fc.exact_le best_est est) then
              best_proc (i + 1) i est
            else best_proc (i + 1) best_i best_est
          end
          else best_proc (i + 1) best_i best_est
        end
        else best_proc (i + 1) best_i best_est
      in
      let best_i, best_est = best_proc 0 (-1) 0. in
      if best_i < 0 then begin
        incr t.forced;
        record_reject t j;
        Ok Infeasible
      end
      else begin
        let actives = t.processors.(best_i) in
        let accept =
          match policy with
          | Admit_all -> true
          | Profitable -> Rt_prelude.Float_cmp.leq best_est j.Job.penalty
          | Density_threshold theta ->
              (* tolerant: this is the paper's accept/reject boundary *)
              Rt_prelude.Float_cmp.geq (j.Job.penalty /. j.Job.cycles) theta
        in
        if accept then begin
          actives := { job = j; remaining = j.Job.cycles } :: !actives;
          t.admitted := j.Job.id :: !(t.admitted);
          Ok Admitted
        end
        else begin
          record_reject t j;
          Ok Declined
        end
      end
    end

  (* the degraded-tier decision: one density test on the first feasible
     live processor, a penalty-per-cycle threshold, and no marginal-energy
     estimate — the cheap path the watchdog falls back to. *)
  let decide_cheap t ~theta (j : Job.t) =
    if Hashtbl.mem t.seen j.Job.id then
      Error (Invalid "Admission.simulate: duplicate job ids")
    else begin
      Hashtbl.add t.seen j.Job.id ();
      (* first feasible live processor, by index; early exit instead of
         the latched-ref full sweep this replaces (same winner) *)
      let n = Array.length t.processors in
      let rec first_feasible i =
        if i >= n then -1
        else if t.alive.(i) then begin
          let trial =
            (* lint: allow-hot-alloc-in-loop "the admission test probes a hypothetical pending set; SoA executor state (ROADMAP item 3) removes the cons" *)
            { job = j; remaining = j.Job.cycles } :: !(t.processors.(i))
          in
          if Rt_prelude.Float_cmp.leq (density_speed trial ~now:!(t.now)) t.cap
          then i
          else first_feasible (i + 1)
        end
        else first_feasible (i + 1)
      in
      match first_feasible 0 with
      | -1 ->
          incr t.forced;
          record_reject t j;
          Ok Infeasible
      | target ->
          let actives = t.processors.(target) in
          if Rt_prelude.Float_cmp.geq (j.Job.penalty /. j.Job.cycles) theta
          then begin
            actives := { job = j; remaining = j.Job.cycles } :: !actives;
            t.admitted := j.Job.id :: !(t.admitted);
            Ok Admitted
          end
          else begin
            record_reject t j;
            Ok Declined
          end
    end

  let residuals t ~proc =
    if proc < 0 || proc >= Array.length t.processors then []
    else List.map (fun a -> (a.job, a.remaining)) !(t.processors.(proc))

  let density_of t ~proc ~extra =
    if proc < 0 || proc >= Array.length t.processors then Float.infinity
    else
      density_pairs ~now:!(t.now)
        (extra
        @ List.map
            (fun a -> (a.remaining, a.job.Job.deadline))
            !(t.processors.(proc)))

  let remove_active t ~id =
    let found = ref None in
    Array.iter
      (fun actives ->
        if Option.is_none !found then begin
          match List.find_opt (fun a -> a.job.Job.id = id) !actives with
          | None -> ()
          | Some a ->
              actives :=
                List.filter (fun b -> b.job.Job.id <> id) !actives;
              found := Some (a.job, a.remaining)
        end)
      t.processors;
    !found

  let place t ~proc (job, remaining) =
    if proc < 0 || proc >= Array.length t.processors then
      Error (Invalid "Admission.Exec.place: processor out of range")
    else if not t.alive.(proc) then
      Error (Invalid "Admission.Exec.place: processor is dead")
    else begin
      t.processors.(proc) := { job; remaining } :: !(t.processors.(proc));
      Ok ()
    end

  (* un-admit a job already detached from its processor: the service pays
     its rejection penalty instead of silently missing its deadline *)
  let drop_admitted t (j : Job.t) =
    t.admitted := List.filter (fun id -> id <> j.Job.id) !(t.admitted);
    record_reject t j

  let kill t ~proc =
    if proc < 0 || proc >= Array.length t.processors then []
    else begin
      t.alive.(proc) <- false;
      let orphans =
        List.map (fun a -> (a.job, a.remaining)) !(t.processors.(proc))
      in
      t.processors.(proc) := [];
      orphans
    end

  let inflate t ~id ~factor =
    let hit = ref false in
    Array.iter
      (fun actives ->
        List.iter
          (fun a ->
            if a.job.Job.id = id then begin
              a.remaining <- a.remaining *. factor;
              hit := true
            end)
          !actives)
      t.processors;
    !hit

  let finish t =
    (* drain the remaining work on every processor *)
    let horizon =
      Array.fold_left
        (fun acc actives ->
          List.fold_left
            (fun acc a -> Float.max acc a.job.Job.deadline)
            acc !actives)
        !(t.now) t.processors
    in
    match advance_to t ~until:(horizon +. 1.) with
    | Error e -> Error e
    | Ok () ->
        if Array.exists (fun actives -> !actives <> []) t.processors then
          Error (Invalid "Admission.simulate: work left after the last deadline")
        else
          Ok
            {
              energy = !(t.energy);
              penalty = !(t.penalty);
              total = !(t.energy) +. !(t.penalty);
              admitted = List.sort compare !(t.admitted);
              rejected = List.sort compare !(t.rejected);
              forced_rejections = !(t.forced);
              makespan = !(t.makespan);
            }
end

let simulate_mp ~(proc : Processor.t) ~m ~policy jobs =
  match Exec.create ~proc ~m with
  | Error e -> Error e
  | Ok t ->
      if
        not
          (Rt_task.Task.distinct_ids
             (List.map (fun (j : Job.t) -> j.Job.id) jobs))
      then Error (Invalid "Admission.simulate: duplicate job ids")
      else begin
        let jobs = Job.by_arrival jobs in
        let rec process = function
          | [] -> Exec.finish t
          | (j : Job.t) :: rest -> (
              match Exec.advance_to t ~until:j.Job.arrival with
              | Error e -> Error e
              | Ok () -> (
                  match Exec.decide t ~policy j with
                  | Error e -> Error e
                  | Ok _ -> process rest))
        in
        process jobs
      end

let simulate ~proc ~policy jobs = simulate_mp ~proc ~m:1 ~policy jobs

let job_bound ~(proc : Processor.t) (j : Job.t) =
  let s_max = Processor.s_max proc in
  let s_crit = critical proc in
  let s =
    Rt_prelude.Float_cmp.clamp ~lo:1e-9 ~hi:s_max
      (Float.max s_crit (Job.laxity_speed j))
  in
  let run_cost = j.Job.cycles *. Power_model.power proc.model s /. s in
  Float.min j.Job.penalty run_cost

let lower_bound ~(proc : Processor.t) jobs =
  List.fold_left (fun acc j -> acc +. job_bound ~proc j) 0. jobs
