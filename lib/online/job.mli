(** Aperiodic jobs for the online-rejection extension.

    The target paper's setting is static (everything known at time 0); its
    natural extension — and the regime real admission controllers live in
    — is {e online}: jobs arrive over time, each with cycles, an absolute
    deadline and a rejection penalty, and the accept/reject decision is
    irrevocable at arrival. *)

type t = private {
  id : int;
  arrival : float;  (** >= 0 *)
  cycles : float;  (** > 0 *)
  deadline : float;  (** absolute; > arrival *)
  penalty : float;  (** >= 0, finite *)
}

val make :
  id:int -> arrival:float -> cycles:float -> deadline:float ->
  penalty:float -> t
(** @raise Invalid_argument on out-of-range fields. *)

val laxity_speed : t -> float
(** [cycles / (deadline - arrival)] — the constant speed the job needs if
    it runs alone from arrival to deadline. *)

val by_arrival : t list -> t list
(** Sorted by arrival (ties by id); the order {!Admission.simulate}
    expects. *)

val stream_seq :
  Rt_prelude.Rng.t -> ?limit:int -> rate:float -> s_max:float ->
  mean_cycles:float -> slack_lo:float -> slack_hi:float ->
  penalty_factor:float -> unit -> t Seq.t
(** The lazy form of {!stream}: jobs are drawn from the [Rng] one at a
    time as the sequence is pulled, so an unbounded trace ([limit]
    omitted) runs in O(1) memory. The sequence is {e ephemeral} — each
    element consumes randomness when forced, so traverse it exactly once
    (re-traversal would consume fresh randomness and produce different
    jobs). With [limit = n], forcing the whole sequence yields exactly
    {!stream}'s list for the same [Rng] state, element for element.
    @raise Invalid_argument as {!stream}. *)

val stream :
  Rt_prelude.Rng.t -> n:int -> rate:float -> s_max:float ->
  mean_cycles:float -> slack_lo:float -> slack_hi:float ->
  penalty_factor:float -> t list
(** A Poisson-ish workload: exponential inter-arrivals at [rate] jobs per
    unit time, cycles exponential around [mean_cycles], deadline =
    arrival + laxity·slack where slack is uniform in
    [\[slack_lo, slack_hi\]] (laxity = cycles / s_max, so slack 1.0 is the
    tightest schedulable-alone deadline), penalty = [penalty_factor] ×
    the job's top-speed energy on a normalized cubic processor, jittered.
    The offered load (expected utilization demand) is
    [rate × mean_cycles / s_max]. Materializes {!stream_seq} — the list
    form kept for callers that replay or index the trace. *)
