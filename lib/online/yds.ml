module Fc = Rt_prelude.Float_cmp
type block = { intensity : float; length : float; work : float }

(* internal mutable job view on the compressed timeline *)
type jv = { mutable a : float; mutable d : float; c : float }

let check jobs =
  if
    not
      (Rt_task.Task.distinct_ids (List.map (fun (j : Job.t) -> j.Job.id) jobs))
  then invalid_arg "Yds: duplicate job ids"

(* the maximum-intensity interval over the candidate endpoints (arrivals ×
   deadlines); ties broken toward the earliest interval for determinism *)
let critical_interval jvs =
  let starts = List.sort_uniq Float.compare (List.map (fun j -> j.a) jvs) in
  let ends = List.sort_uniq Float.compare (List.map (fun j -> j.d) jvs) in
  let best = ref None in
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          if Fc.exact_gt t2 t1 then begin
            let work =
              List.fold_left
                (fun acc j ->
                  if Fc.exact_ge j.a t1 && Fc.exact_le j.d t2 then acc +. j.c
                  else acc)
                0. jvs
            in
            if Fc.exact_gt work 0. then begin
              let intensity = work /. (t2 -. t1) in
              match !best with
              | Some (bi, _, _, _) when Fc.exact_ge bi (intensity -. 1e-15) -> ()
              | _ -> best := Some (intensity, t1, t2, work)
            end
          end)
        ends)
    starts;
  !best

let blocks jobs =
  check jobs;
  let jvs =
    List.map
      (fun (j : Job.t) -> { a = j.Job.arrival; d = j.Job.deadline; c = j.Job.cycles })
      jobs
  in
  let rec go jvs acc =
    match critical_interval jvs with
    | None -> List.rev acc
    | Some (intensity, t1, t2, work) ->
        let length = t2 -. t1 in
        let survivors =
          List.filter
            (fun j -> not (Fc.exact_ge j.a t1 && Fc.exact_le j.d t2))
            jvs
        in
        (* excise [t1, t2]: times inside the window collapse onto t1 *)
        let squeeze t =
          if Fc.exact_le t t1 then t
          else if Fc.exact_ge t t2 then t -. length
          else t1
        in
        List.iter
          (fun j ->
            j.a <- squeeze j.a;
            j.d <- squeeze j.d)
          survivors;
        go survivors ({ intensity; length; work } :: acc)
  in
  go jvs []

let peak_intensity jobs =
  match blocks jobs with [] -> 0. | b :: _ -> b.intensity

let energy ~(proc : Rt_power.Processor.t) jobs =
  if not (Rt_power.Processor.is_ideal proc) then
    Error "Yds.energy: ideal processors only"
  else begin
    let bs = blocks jobs in
    let s_max = Rt_power.Processor.s_max proc in
    match bs with
    | b :: _ when Rt_prelude.Float_cmp.gt b.intensity s_max ->
        Error "Yds.energy: infeasible (peak intensity above s_max)"
    | _ ->
        let model = proc.Rt_power.Processor.model in
        let s_crit =
          match proc.Rt_power.Processor.dormancy with
          | Rt_power.Processor.Dormant_enable _ ->
              Rt_power.Processor.critical_speed proc
          | Rt_power.Processor.Dormant_disable -> 0.
        in
        let leak_while_idle =
          match proc.Rt_power.Processor.dormancy with
          | Rt_power.Processor.Dormant_enable _ -> 0.
          | Rt_power.Processor.Dormant_disable ->
              Rt_power.Power_model.power model 0.
        in
        Ok
          (List.fold_left
             (fun acc b ->
               let s = Float.min s_max (Float.max s_crit b.intensity) in
               if Fc.exact_le s 0. then acc
               else begin
                 let busy = b.work /. s in
                 acc
                 +. (busy *. Rt_power.Power_model.power model s)
                 +. ((b.length -. busy) *. leak_while_idle)
               end)
             0. bs)
  end
