module Fc = Rt_prelude.Float_cmp

type task = { id : int; dvs_weight : float; alt_permille : int }

let task ~id ~dvs_weight ~alt_permille =
  if Fc.exact_le dvs_weight 0. || not (Float.is_finite dvs_weight) then
    invalid_arg "Twope.task: dvs_weight must be finite and > 0";
  if alt_permille < 1 || alt_permille > 1000 then
    invalid_arg "Twope.task: alt_permille out of [1, 1000]";
  { id; dvs_weight; alt_permille }

type pe_kind = Workload_independent | Workload_dependent

type system = {
  dvs : Rt_power.Processor.t;
  alt_power : float;
  alt_kind : pe_kind;
  horizon : float;
}

let system ~dvs ~alt_power ~alt_kind ~horizon =
  if Fc.exact_lt alt_power 0. || not (Float.is_finite alt_power) then
    Error "Twope.system: alt_power must be finite and >= 0"
  else if Fc.exact_le horizon 0. || not (Float.is_finite horizon) then
    Error "Twope.system: horizon must be finite and > 0"
  else Ok { dvs; alt_power; alt_kind; horizon }

type assignment = { kept : task list; offloaded : task list }

let kept_weight a = List.fold_left (fun s t -> s +. t.dvs_weight) 0. a.kept

let offload_permille a =
  List.fold_left (fun s t -> s + t.alt_permille) 0 a.offloaded

let alt_energy sys a =
  match sys.alt_kind with
  | Workload_independent -> sys.alt_power *. sys.horizon
  | Workload_dependent ->
      sys.alt_power *. sys.horizon
      *. (float_of_int (offload_permille a) /. 1000.)

let cost sys a =
  if offload_permille a > 1000 then
    Error "Twope.cost: non-DVS PE over capacity"
  else
    match
      Rt_speed.Energy_rate.energy sys.dvs ~u:(kept_weight a)
        ~horizon:sys.horizon
    with
    | None -> Error "Twope.cost: DVS PE cannot sustain the kept utilization"
    | Some e -> Ok (e +. alt_energy sys a)

let ids_sorted tasks = List.sort compare (List.map (fun t -> t.id) tasks)

let validate sys tasks a =
  match cost sys a with
  | Error _ as e -> Result.map ignore e
  | Ok _ ->
      if ids_sorted (a.kept @ a.offloaded) = ids_sorted tasks then Ok ()
      else Error "Twope.validate: assignment is not a partition of the tasks"

let cost_or_inf sys a =
  match cost sys a with Ok c -> c | Error _ -> Float.infinity

(* density for offloading decisions: how much non-DVS capacity a unit of
   DVS relief costs *)
let offload_density t = float_of_int t.alt_permille /. t.dvs_weight

let greedy _sys tasks =
  let sorted =
    List.sort
      (fun a b ->
        let c = Float.compare (offload_density a) (offload_density b) in
        if c <> 0 then c else compare a.id b.id)
      tasks
  in
  List.fold_left
    (fun acc t ->
      if offload_permille acc + t.alt_permille <= 1000 then
        { acc with offloaded = t :: acc.offloaded }
      else { acc with kept = t :: acc.kept })
    { kept = []; offloaded = [] }
    sorted

(* keep-density: how much DVS load a task inflicts per unit of the offload
   quota it would release *)
let keep_density t = t.dvs_weight /. float_of_int t.alt_permille

let e_greedy sys tasks =
  let total = List.fold_left (fun s t -> s + t.alt_permille) 0 tasks in
  let u_star = total - 1000 in
  if u_star <= 0 then { kept = []; offloaded = tasks }
  else begin
    (* candidate = cheapest-density prefix covering U*, then iterate with
       evictions (the classical min-knapsack 2-approximation scheme) *)
    let sorted =
      List.sort
        (fun a b ->
          let c = Float.compare (keep_density a) (keep_density b) in
          if c <> 0 then c else compare a.id b.id)
        tasks
    in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let present = Array.make n true in
    let prefix_cover () =
      (* smallest k' with the present prefix covering U*; None if the
         remaining tasks cannot cover it *)
      let rec go i acc_u ks =
        if acc_u >= u_star then Some (List.rev ks)
        else if i = n then None
        else if present.(i) then
          go (i + 1) (acc_u + arr.(i).alt_permille) (i :: ks)
        else go (i + 1) acc_u ks
      in
      go 0 0 []
    in
    let weight_of ks =
      List.fold_left (fun s k -> s +. arr.(k).dvs_weight) 0. ks
    in
    let rec loop best =
      match prefix_cover () with
      | None -> best
      | Some ks ->
          let best =
            match best with
            | Some (_, w) when Fc.exact_le w (weight_of ks) -> best
            | _ -> Some (ks, weight_of ks)
          in
          (* evict the last (largest-index) element of the cover *)
          (match List.rev ks with
          | last :: _ -> present.(last) <- false
          | [] -> present.(0) <- false);
          loop best
    in
    match loop None with
    | None -> { kept = tasks; offloaded = [] } (* cannot meet the quota *)
    | Some (ks, _) ->
        let kept_idx = List.sort_uniq compare ks in
        let kept = List.map (fun k -> arr.(k)) kept_idx in
        let kept_ids = List.map (fun t -> t.id) kept in
        let offloaded =
          List.filter (fun t -> not (List.mem t.id kept_ids)) tasks
        in
        ignore sys;
        { kept; offloaded }
  end

let dp _sys tasks =
  (* 0/1 knapsack over the 1000-permille capacity: maximize offloaded DVS
     weight; exact for the workload-independent flavour *)
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let cap = 1000 in
  let value = Array.make (cap + 1) 0. in
  let keep = Array.make_matrix n (cap + 1) false in
  for i = 0 to n - 1 do
    let w = arr.(i).alt_permille and v = arr.(i).dvs_weight in
    for c = cap downto w do
      (* exact DP improvement test: tolerance would change the optimum *)
      if Fc.exact_gt (value.(c - w) +. v) value.(c) then begin
        value.(c) <- value.(c - w) +. v;
        keep.(i).(c) <- true
      end
    done
  done;
  let best_c = ref 0 in
  for c = 0 to cap do
    if Fc.exact_gt value.(c) value.(!best_c) then best_c := c
  done;
  let offloaded = ref [] and kept = ref [] in
  let c = ref !best_c in
  for i = n - 1 downto 0 do
    if keep.(i).(!c) then begin
      offloaded := arr.(i) :: !offloaded;
      c := !c - arr.(i).alt_permille
    end
    else kept := arr.(i) :: !kept
  done;
  { kept = !kept; offloaded = !offloaded }

let s_greedy sys tasks =
  let sorted =
    List.sort
      (fun a b ->
        let c = Float.compare (keep_density b) (keep_density a) in
        if c <> 0 then c else compare a.id b.id)
      tasks
  in
  (* pass 1: move a task to the non-DVS PE only when total energy drops *)
  let move_if_cheaper acc t =
    if offload_permille acc + t.alt_permille > 1000 then acc
    else begin
      let moved =
        {
          kept = List.filter (fun x -> x.id <> t.id) acc.kept;
          offloaded = t :: acc.offloaded;
        }
      in
      if Fc.exact_lt (cost_or_inf sys moved) (cost_or_inf sys acc) then moved
      else acc
    end
  in
  let all_kept = { kept = tasks; offloaded = [] } in
  let pass1 = List.fold_left move_if_cheaper all_kept sorted in
  (* pass 2: the best assignment with at most one task offloaded *)
  let single =
    List.fold_left
      (fun best t ->
        let candidate =
          {
            kept = List.filter (fun x -> x.id <> t.id) tasks;
            offloaded = [ t ];
          }
        in
        if Fc.exact_lt (cost_or_inf sys candidate) (cost_or_inf sys best)
        then candidate
        else best)
      all_kept tasks
  in
  if Fc.exact_le (cost_or_inf sys pass1) (cost_or_inf sys single) then pass1
  else single

let exhaustive sys tasks =
  let best = ref { kept = tasks; offloaded = [] } in
  let best_cost = ref (cost_or_inf sys !best) in
  Rt_exact.Subsets.iter tasks (fun (offloaded, kept) ->
      let a = { kept; offloaded } in
      let c = cost_or_inf sys a in
      if Fc.exact_lt c !best_cost then begin
        best := a;
        best_cost := c
      end);
  !best

let named =
  [
    ("greedy", greedy);
    ("e-greedy", e_greedy);
    ("dp", dp);
    ("s-greedy", s_greedy);
  ]

(* ---------------------------------------------------------------- *)
(* Workload generators *)

let scale_to_permille ~total_alt raws =
  let raw_total = List.fold_left ( +. ) 0. raws in
  List.map
    (fun r ->
      let share = r /. raw_total *. total_alt *. 1000. in
      max 1 (min 1000 (int_of_float (Float.round share))))
    raws

let gen_with rng ~n ~total_alt ~alt_of =
  if n < 1 then invalid_arg "Twope.gen: n < 1";
  if Fc.exact_le total_alt 0. then invalid_arg "Twope.gen: total_alt <= 0";
  let weights =
    List.map
      (fun _ -> Rt_prelude.Rng.float rng ~lo:0.05 ~hi:0.35)
      (Rt_prelude.Math_util.range 1 n)
  in
  let raws =
    List.map
      (fun w -> alt_of w *. Rt_prelude.Rng.float rng ~lo:0.8 ~hi:1.2)
      weights
  in
  let alts = scale_to_permille ~total_alt raws in
  List.mapi
    (fun id (w, a) -> task ~id ~dvs_weight:w ~alt_permille:a)
    (List.combine weights alts)

let gen_proportional rng ~n ~total_alt =
  gen_with rng ~n ~total_alt ~alt_of:(fun w -> w)

let gen_inverse rng ~n ~total_alt =
  gen_with rng ~n ~total_alt ~alt_of:(fun w -> 0.05 /. w)
