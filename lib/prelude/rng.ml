type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x5eed; seed lxor 0x9e3779b9 |]

let split t =
  Random.State.make
    [| Random.State.bits t; Random.State.bits t; Random.State.bits t |]

let int t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int: lo > hi";
  lo + Random.State.int t (hi - lo + 1)

let float t ~lo ~hi =
  if Float_cmp.exact_gt lo hi then invalid_arg "Rng.float: lo > hi";
  lo +. Random.State.float t (hi -. lo)

let bool t = Random.State.bool t

let log_uniform t ~lo ~hi =
  if Float_cmp.exact_le lo 0. || Float_cmp.exact_le hi 0. then
    invalid_arg "Rng.log_uniform: bounds <= 0";
  if Float_cmp.exact_gt lo hi then invalid_arg "Rng.log_uniform: lo > hi";
  exp (float t ~lo:(log lo) ~hi:(log hi))

let choice t = function
  | [] -> invalid_arg "Rng.choice: empty list"
  | xs -> List.nth xs (Random.State.int t (List.length xs))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let uunifast t ~n ~total =
  if n < 1 then invalid_arg "Rng.uunifast: n < 1";
  if Float_cmp.exact_lt total 0. then invalid_arg "Rng.uunifast: negative total";
  (* Bini & Buttazzo: peel off each share with sum_{i+1} = sum_i * U^(1/rem) *)
  if n = 1 then [ total ]
  else begin
    let rec loop i sum acc =
      if i = n - 1 then List.rev (sum :: acc)
      else begin
        let next =
          sum *. (Random.State.float t 1. ** (1. /. float_of_int (n - 1 - i)))
        in
        loop (i + 1) next ((sum -. next) :: acc)
      end
    in
    loop 0 total []
  end
