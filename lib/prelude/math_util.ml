let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let lcm_checked a b =
  if a <= 0 || b <= 0 then Error "Math_util.lcm: non-positive argument"
  else begin
    let g = gcd a b in
    let q = a / g in
    if q > max_int / b then Error "Math_util.lcm: overflow"
    else Ok (q * b)
  end

let lcm a b =
  match lcm_checked a b with Ok v -> v | Error e -> invalid_arg e

let lcm_list_checked = function
  | [] -> Error "Math_util.lcm_list: empty list"
  | x :: xs ->
      List.fold_left
        (fun acc y -> Result.bind acc (fun a -> lcm_checked a y))
        (Ok x) xs

let lcm_list l =
  match lcm_list_checked l with Ok v -> v | Error e -> invalid_arg e

let pow_int b e =
  if e < 0 then invalid_arg "Math_util.pow_int: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then acc * b else acc in
      if acc <> 0 && abs acc > max_int / (max 1 (abs b)) && e > 1 then
        invalid_arg "Math_util.pow_int: overflow";
      go acc (if e > 1 then b * b else b) (e lsr 1)
    end
  in
  go 1 b e

let range lo hi =
  let rec go i acc = if i < lo then acc else go (i - 1) (i :: acc) in
  go hi []

let frange ~lo ~hi ~steps =
  if steps < 1 then invalid_arg "Math_util.frange: steps < 1";
  List.map
    (fun i -> lo +. ((hi -. lo) *. float_of_int i /. float_of_int steps))
    (range 0 steps)

(* inverse golden ratio *)
let invphi = (sqrt 5. -. 1.) /. 2.

let golden_section_min ?(tol = 1e-10) ?(max_iter = 200) ~f ~lo ~hi () =
  if Float_cmp.exact_gt lo hi then
    invalid_arg "Math_util.golden_section_min: lo > hi";
  (* invariant: the minimum lies in [a, b]; xa < xb are the interior probes
     with cached values fa, fb — carried as unboxed loop arguments rather
     than a rack of float refs *)
  let rec go iter a b xa xb fa fb =
    if
      iter < max_iter
      && Float_cmp.exact_gt (b -. a)
           (tol *. Float.max 1. (Float.abs a +. Float.abs b))
    then
      if fa < fb then begin
        let b = xb in
        let xa' = b -. (invphi *. (b -. a)) in
        go (iter + 1) a b xa' xa (f xa') fa
      end
      else begin
        let a = xa in
        let xb' = a +. (invphi *. (b -. a)) in
        go (iter + 1) a b xb xb' fb (f xb')
      end
    else (a +. b) /. 2.
  in
  let xa = hi -. (invphi *. (hi -. lo)) in
  let xb = lo +. (invphi *. (hi -. lo)) in
  let fa = f xa in
  let fb = f xb in
  let x = go 0 lo hi xa xb fa fb in
  (x, f x)

let bisect_root ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  let flo = f lo and fhi = f hi in
  if Float_cmp.exact_eq flo 0. then lo
  else if Float_cmp.exact_eq fhi 0. then hi
  else if Float_cmp.exact_gt (flo *. fhi) 0. then
    invalid_arg "Math_util.bisect_root: endpoints do not bracket a root"
  else begin
    let a = ref lo and b = ref hi and fa = ref flo in
    let iter = ref 0 in
    while
      !iter < max_iter
      && Float_cmp.exact_gt (!b -. !a)
           (tol *. Float.max 1. (Float.abs !a +. Float.abs !b))
    do
      incr iter;
      let m = (!a +. !b) /. 2. in
      let fm = f m in
      if Float_cmp.exact_eq fm 0. then begin
        a := m;
        b := m
      end
      else if Float_cmp.exact_lt (!fa *. fm) 0. then b := m
      else begin
        a := m;
        fa := fm
      end
    done;
    (!a +. !b) /. 2.
  end

let bisect_decreasing ?(tol = 1e-12) ?(max_iter = 200) ~f ~target ~lo ~hi () =
  if Float_cmp.exact_le (f lo) target then lo
  else if Float_cmp.exact_ge (f hi) target then hi
  else bisect_root ~tol ~max_iter ~f:(fun x -> f x -. target) ~lo ~hi ()
