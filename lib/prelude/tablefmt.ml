type align = Left | Right

type t = { headers : string list; aligns : align list; rows : string list list }

let create ?aligns headers =
  let aligns =
    match aligns with
    | None -> List.map (fun _ -> Right) headers
    | Some a ->
        if List.length a <> List.length headers then
          invalid_arg "Tablefmt.create: aligns/header arity mismatch";
        a
  in
  { headers; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Tablefmt.add_row: arity mismatch";
  { t with rows = row :: t.rows }

let float_cell ?(decimals = 4) x =
  if Float.is_integer x && Float_cmp.exact_lt (Float.abs x) 1e15 && decimals = 0
  then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.*f" decimals x

let add_float_row ?fmt t label xs =
  let fmt = match fmt with Some f -> f | None -> float_cell ~decimals:4 in
  add_row t (label :: List.map fmt xs)

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let render_row row =
    row
    |> List.mapi (fun i cell -> pad (List.nth t.aligns i) widths.(i) cell)
    |> String.concat "  "
  in
  let sep =
    Array.to_list widths
    |> List.map (fun w -> String.make w '-')
    |> String.concat "  "
  in
  String.concat "\n" (render_row t.headers :: sep :: List.map render_row rows)

let csv_field s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') s
  in
  if needs_quote then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv t =
  let rows = t.headers :: List.rev t.rows in
  rows
  |> List.map (fun row -> String.concat "," (List.map csv_field row))
  |> String.concat "\n"

let print t =
  (* lint: allow-no-print "Tablefmt is the sanctioned output sink" *)
  print_string (render t);
  (* lint: allow-no-print "Tablefmt is the sanctioned output sink" *)
  print_newline ()
