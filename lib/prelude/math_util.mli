(** Integer arithmetic and one-dimensional numeric solvers.

    The solvers are deliberately simple, derivative-free routines: the convex
    objectives in this code base (power functions, Lagrangian duals) are
    smooth and unimodal on the intervals we probe, so golden-section and
    bisection are reliable and dependency-free. *)

(** {1 Integer helpers} *)

val gcd : int -> int -> int
(** Greatest common divisor; [gcd 0 0 = 0], always non-negative. *)

val lcm : int -> int -> int
(** Least common multiple.
    @raise Invalid_argument on overflow or non-positive arguments. *)

val lcm_checked : int -> int -> (int, string) result
(** [lcm] with the failure modes (non-positive arguments, overflow past
    [max_int]) reported as a typed error instead of an exception — the
    overflow guard is exact, never a silent wraparound. *)

val lcm_list : int list -> int
(** LCM of a list of positive integers (the hyper-period of integer periods).
    @raise Invalid_argument on empty list, non-positive element or overflow. *)

val lcm_list_checked : int list -> (int, string) result
(** [lcm_list] with errors (empty list, non-positive element, overflow on
    any intermediate fold step) as a typed result. *)

val pow_int : int -> int -> int
(** [pow_int b e] is [b]{^ [e]} for [e >= 0]. @raise Invalid_argument on
    negative exponent or overflow. *)

(** {1 Ranges} *)

val range : int -> int -> int list
(** [range lo hi] is [\[lo; lo+1; …; hi\]] ([\[\]] when [lo > hi]). *)

val frange : lo:float -> hi:float -> steps:int -> float list
(** [frange ~lo ~hi ~steps] is [steps + 1] evenly spaced points from [lo] to
    [hi] inclusive. @raise Invalid_argument if [steps < 1]. *)

(** {1 One-dimensional solvers} *)

val golden_section_min :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> float * float
(** [golden_section_min ~f ~lo ~hi ()] minimizes a unimodal [f] on
    [\[lo, hi\]] and returns the pair of minimizer and minimum value.
    [tol] bounds the final bracket width (relative to the interval,
    default [1e-10]). *)

val bisect_root :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> float
(** [bisect_root ~f ~lo ~hi ()] finds [x] with [f x ≈ 0] given
    [f lo] and [f hi] of opposite signs (either may be zero).
    @raise Invalid_argument when the signs do not bracket a root. *)

val bisect_decreasing :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> target:float ->
  lo:float -> hi:float -> unit -> float
(** [bisect_decreasing ~f ~target ~lo ~hi ()] solves [f x = target] for a
    monotonically decreasing [f], clamping to the bracket ends when the
    target is outside [\[f hi, f lo\]]. *)
