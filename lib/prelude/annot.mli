(** The attribute vocabulary rt-lint understands.

    These are ordinary OCaml attributes in the [rt.] namespace — the
    compiler ignores them, [tool/lint] reads them out of typedtrees.
    This module is the single registry of their names, so library code,
    the lint, and the docs cannot drift apart on spelling; the grammar
    of each payload is specified here and in docs/CONCURRENCY_LINT.md
    (concurrency annotations) and docs/LINT.md ([rt.dim]).

    Placement cheat-sheet (where the typedtree keeps each one):

    - on a record field: [mutable hits : int; [@rt.guarded_by "lock"]]
    - on a let binding:  [let pending = ref n [@rt.guarded_by "finished"]]
    - on a closure:      [Queue.add ((fun () -> ...) [@rt.cross_domain]) q] *)

val guarded_by : string
(** ["rt.guarded_by"] — payload: a string literal naming the mutex
    (by its last path component, e.g. ["mutex"] for [t.mutex]) that
    must be held around every read and write of the annotated mutable
    value. The lint's domain-unsafe rule accepts a guarded value as
    shared state; its conc-annotation rule rejects any other payload
    shape. *)

val domain_safe : string
(** ["rt.domain_safe"] — payload: a string literal justifying why the
    value is safe to touch from multiple domains without a lock (e.g.
    written once before publication, or single-writer with benign
    races). An audited escape hatch: the lint trusts it and moves on,
    so the justification text is load-bearing for reviewers. *)

val cross_domain : string
(** ["rt.cross_domain"] — payload: none. Marks a closure that will run
    on another domain even though the lint cannot see the spawn site
    (e.g. a thunk pushed into a work queue). The closure is exempt from
    the lexical pass and analysed with the crossing rules instead. *)

val dim : string
(** ["rt.dim"] — payload: a string literal naming a physical dimension
    (["time"], ["energy"], ["speed"], ...). Read by the units-of-measure
    rule (docs/LINT.md), not by the concurrency rules; listed here so
    the registry is complete. *)

val hot : string
(** ["rt.hot"] — payload: none, or a string literal documenting why the
    value is latency-critical. Marks a function as a hot-path root for
    the allocation/boxing analysis (docs/PERF_LINT.md): hotness
    propagates from it to every function it transitively calls, and the
    hot rules (hot-boxed-float, hot-alloc-in-loop, hot-list-traversal)
    fire only inside hot code. Placement: on a [val] declaration in an
    [.mli] ([val ltf_reject : algorithm [@@rt.hot]]) or on a let
    binding in an [.ml]. *)

val cold : string
(** ["rt.cold"] — payload: none, or a string literal saying why.
    The propagation cut: a value marked cold is never considered hot,
    and hotness does not flow through it to its callees — use it on
    error paths, logging, and setup code reachable from a hot root.
    Same placements as {!hot}. *)

val all : string list
(** Every attribute name above — what the lint treats as reserved in
    the [rt.] namespace. *)
