external rt_clock_monotonic_ns : unit -> int64 = "rt_clock_monotonic_ns"

let now_ns = rt_clock_monotonic_ns
let now () = Int64.to_float (rt_clock_monotonic_ns ()) *. 1e-9
let elapsed ~since = now () -. since
