let default_eps = 1e-9

let scale a b = Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let approx_eq ?(eps = default_eps) a b = Float.abs (a -. b) <= eps *. scale a b

(* the tolerance slack only makes sense for finite operands: with
   [a = infinity] the naive form degenerates to [inf <= inf] and calls
   an infinite density "feasible" — infinite or NaN operands compare
   exactly instead *)
let leq ?(eps = default_eps) a b =
  if Float.is_finite a && Float.is_finite b then a <= b +. (eps *. scale a b)
  else a <= b

let geq ?eps a b = leq ?eps b a

let lt ?eps a b = not (geq ?eps a b)

let gt ?eps a b = not (leq ?eps a b)

let clamp ~lo ~hi x =
  if lo > hi then invalid_arg "Float_cmp.clamp: lo > hi";
  if x < lo then lo else if x > hi then hi else x

let is_finite x = Float.is_finite x

let compare_approx ?eps a b =
  if approx_eq ?eps a b then 0 else Float.compare a b

let exact_eq = Float.equal
let exact_lt (a : float) b = a < b
let exact_le (a : float) b = a <= b
let exact_gt (a : float) b = a > b
let exact_ge (a : float) b = a >= b
