let guarded_by = "rt.guarded_by"
let domain_safe = "rt.domain_safe"
let cross_domain = "rt.cross_domain"
let dim = "rt.dim"
let hot = "rt.hot"
let cold = "rt.cold"

let all = [ guarded_by; domain_safe; cross_domain; dim; hot; cold ]
