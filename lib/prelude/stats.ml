type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let nonempty name = function
  | [] -> invalid_arg ("Stats." ^ name ^ ": empty sample")
  | xs -> xs

let mean xs =
  let xs = nonempty "mean" xs in
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  let xs = nonempty "stddev" xs in
  match xs with
  | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
      sqrt (ss /. float_of_int (List.length xs - 1))

let minimum xs = List.fold_left Float.min Float.infinity (nonempty "minimum" xs)

let maximum xs =
  List.fold_left Float.max Float.neg_infinity (nonempty "maximum" xs)

let sorted xs = List.sort Float.compare xs

let percentile p xs =
  if Float_cmp.exact_lt p 0. || Float_cmp.exact_gt p 100. then
    invalid_arg "Stats.percentile: p out of range";
  let xs = sorted (nonempty "percentile" xs) in
  let a = Array.of_list xs in
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let median xs = percentile 50. xs

let summarize xs =
  let xs = nonempty "summarize" xs in
  {
    n = List.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = minimum xs;
    max = maximum xs;
    median = median xs;
  }

let geometric_mean xs =
  let xs = nonempty "geometric_mean" xs in
  let log_sum =
    List.fold_left
      (fun acc x ->
        if Float_cmp.exact_le x 0. then
          invalid_arg "Stats.geometric_mean: non-positive sample"
        else acc +. log x)
      0. xs
  in
  exp (log_sum /. float_of_int (List.length xs))

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.6g sd=%.3g min=%.6g med=%.6g max=%.6g" s.n
    s.mean s.stddev s.min s.median s.max
