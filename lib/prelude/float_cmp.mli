(** Tolerant floating-point comparison.

    Scheduling arithmetic (speeds, durations, energies) accumulates rounding
    error; every feasibility check and every "does the reported cost equal
    the recomputed cost" assertion in this repository goes through the
    helpers below so that the tolerance policy lives in exactly one place. *)

val default_eps : float
(** Absolute/relative tolerance used when [?eps] is omitted ([1e-9]). *)

val approx_eq : ?eps:float -> float -> float -> bool
(** [approx_eq a b] is [true] when [a] and [b] differ by at most
    [eps * max 1. (max |a| |b|)] — i.e. absolute for small magnitudes and
    relative for large ones. *)

val leq : ?eps:float -> float -> float -> bool
(** [leq a b] is [a <= b] up to tolerance: [a <= b +. slack]. Infinite
    or NaN operands compare exactly (no slack): an infinite density is
    never "at most" a finite cap — the degenerate case a feasibility
    test on an already-expired deadline produces. *)

val geq : ?eps:float -> float -> float -> bool
(** [geq a b] is [b <= a] up to tolerance. *)

val lt : ?eps:float -> float -> float -> bool
(** Strictly less, by more than the tolerance. *)

val gt : ?eps:float -> float -> float -> bool
(** Strictly greater, by more than the tolerance. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] projects [x] onto [\[lo, hi\]].
    @raise Invalid_argument if [lo > hi]. *)

val is_finite : float -> bool
(** [true] iff the argument is neither infinite nor NaN. *)

val compare_approx : ?eps:float -> float -> float -> int
(** Three-way comparison that treats [approx_eq] values as equal. *)

(** {2 Exact comparisons}

    Argument validation ("reject a non-positive frame length") and
    total-order tie-breaks need raw IEEE semantics, not tolerance: widening
    them would reject valid degenerate inputs or break comparator
    transitivity.  Routing them through this module keeps every float
    comparison in the repository in one audited place — rt-lint's
    [float-cmp] rule flags bare operators precisely so call sites must
    choose, visibly, between the tolerant family above and the exact family
    below. *)

val exact_eq : float -> float -> bool
(** IEEE equality ([Float.equal]; NaN equals NaN, [0. = -0.]). *)

val exact_lt : float -> float -> bool
(** IEEE [<], no tolerance. *)

val exact_le : float -> float -> bool
(** IEEE [<=], no tolerance. *)

val exact_gt : float -> float -> bool
(** IEEE [>], no tolerance. *)

val exact_ge : float -> float -> bool
(** IEEE [>=], no tolerance. *)
