/* Monotonic clock primitive for Rt_prelude.Clock.
 *
 * CLOCK_MONOTONIC: unaffected by NTP steps and immune to the CPU-time
 * inflation that made Sys.time-based budgets expire early under sibling
 * domains (Sys.time sums processor time across every domain of the
 * process, so k busy domains advance it ~k x faster than the wall).
 */
#include <time.h>
#include <stdint.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

CAMLprim value rt_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * INT64_C(1000000000)
                         + (int64_t)ts.tv_nsec);
}
