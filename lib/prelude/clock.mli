(** Monotonic wall-clock readings for budgets and benchmarks.

    Every time budget in the repository ([Search.*_budgeted] deadlines,
    the fuzzer's [time_budget], the parallel benches) is specified in
    {e wall-clock} seconds: "stop after two seconds" means two seconds of
    the user's time, whatever the machine is doing meanwhile. Neither
    stdlib clock delivers that:

    - [Sys.time] is {e process CPU time}, summed over every domain — with
      [k] busy domains it advances up to [k]× faster than the wall, so a
      budget measured with it silently shrinks as soon as a sibling
      domain spins (the bug this module fixes);
    - [Unix.gettimeofday] is wall time but not monotonic — an NTP step
      mid-run can expire a budget instantly or extend it forever.

    [now] reads the operating system's [CLOCK_MONOTONIC] through a local
    C primitive: strictly non-decreasing, unaffected by clock
    adjustments, and shared by all domains. The epoch is arbitrary —
    only differences between two readings are meaningful.

    Reading any clock inside [lib/] is flagged by rt-lint's [wallclock]
    determinism rule; this module is the sanctioned sink for those reads
    (the C primitive is invisible to the linter by construction, and
    deliberately so — budget plumbing bounds {e how long} a computation
    runs, it must never feed a {e simulated} quantity). *)

val now : unit -> float [@rt.dim "seconds"]
(** Seconds on the monotonic clock, from an arbitrary epoch. Use
    differences only. *)

val elapsed : since:float -> float [@rt.dim "seconds"]
(** [elapsed ~since] is [now () -. since] — non-negative whenever [since]
    came from [now]. *)

val now_ns : unit -> int64
(** The raw monotonic reading in nanoseconds, for callers that cannot
    afford float rounding (benchmark deltas). *)
