(** E19: overload/fault stress sweep (robustness extension).

    Frame instances at comfortable load are hit with seeded fault
    scenarios of growing rate (per-task 1.5× WCEC overruns, processor
    crashes, 0.8 platform derates, each drawn with the row's
    probability); each {!Rt_fault.Degrade} policy recovers and is scored
    on normalized cost — measured degraded energy plus every penalty
    paid, charging a missed task its full rejection penalty — and on the
    deadline-miss percentage. *)

type row = {
  fault_rate : float;
  policy : string;
  cost_ratio : float;  (** degraded cost / fault-free baseline total *)
  miss_pct : float;  (** % of tasks missing their deadline *)
  shed_pct : float;  (** % of tasks shed by the recovery *)
}

val default_fault_rates : float list
(** [0.; 0.05; 0.15]. *)

val sweep :
  ?pool:Rt_parallel.Pool.t ->
  ?seeds:int ->
  ?fault_rates:float list ->
  unit ->
  row list
(** Mean metrics per (fault rate × policy); the structured form the
    fault benchmark serializes. With [?pool] the (rate × policy × seed)
    replications fan out over the pool; every replication is keyed by
    its seed and rows are assembled in submission order, so the result
    is byte-identical to the sequential sweep at any domain count. *)

val e19_fault_sweep : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** The registry table: one row per fault rate, cost and miss%% columns
    per policy. *)
