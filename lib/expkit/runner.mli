(** Seeded replication helpers shared by the experiment suite. *)

val seeds : base:int -> n:int -> int list
(** [n] distinct deterministic seeds derived from [base]. *)

val replicate :
  seeds:int list -> f:(int -> float) -> Rt_prelude.Stats.summary
(** Evaluate [f seed] for every seed and summarize. Skips NaN results (an
    experiment may declare a replication inapplicable that way) —
    @raise Invalid_argument if {e every} replication was NaN. *)

val replicate_par :
  pool:Rt_parallel.Pool.t option -> seeds:int list -> f:(int -> float) ->
  Rt_prelude.Stats.summary
(** {!replicate} with the replications fanned out over a {!Rt_parallel}
    pool ([None] runs them on the calling domain). Each replication is
    keyed by its seed and results are summarized in seed order, so the
    summary is byte-identical to the sequential one at any domain count.
    [f] must therefore be a pure function of its seed. *)

val mean_over : seeds:int list -> f:(int -> float) -> float
(** [replicate] then the mean. *)

val mean_over_par :
  pool:Rt_parallel.Pool.t option -> seeds:int list -> f:(int -> float) ->
  float
(** [replicate_par] then the mean. *)
