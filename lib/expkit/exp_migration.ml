module Fc = Rt_prelude.Float_cmp

let proc = Rt_power.Processor.cubic ()
let frame = Instances.default_frame_length

let e15_partition_vs_migration ?(seeds = 30) () =
  let seed_list = Runner.seeds ~base:1700 ~n:seeds in
  let m = 4 in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:
        [ Rt_prelude.Tablefmt.Left; Rt_prelude.Tablefmt.Right; Rt_prelude.Tablefmt.Right ]
      [ "tasks per proc"; "LTF / migratory"; "unsorted / migratory" ]
  in
  List.fold_left
    (fun t per_proc ->
      let n = m * per_proc in
      let ratio alg =
        Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
            let rng = Rt_prelude.Rng.create ~seed:(seed + n) in
            let tasks =
              Rt_task.Gen.frame_tasks_with_load rng ~n ~m ~s_max:1.
                ~frame_length:frame ~load:0.6
            in
            let items = Rt_task.Taskset.items_of_frames ~frame_length:frame tasks in
            match
              Rt_partition.Migration.energy_lower_bound ~proc ~m ~frame items
            with
            | None -> Float.nan
            | Some lb when Fc.exact_le lb 0. -> Float.nan
            | Some lb ->
                let part = alg items in
                if
                  Rt_prelude.Float_cmp.gt
                    (Rt_partition.Partition.makespan part)
                    1.
                then Float.nan
                else begin
                  let e =
                    Array.fold_left
                      (fun acc u ->
                        match
                          Rt_speed.Energy_rate.energy proc ~u ~horizon:frame
                        with
                        | Some e -> acc +. e
                        | None -> Float.nan)
                      0.
                      (Rt_partition.Partition.loads part)
                  in
                  e /. lb
                end)
      in
      Rt_prelude.Tablefmt.add_float_row t
        (Printf.sprintf "%d" per_proc)
        [
          ratio (fun items -> Rt_partition.Heuristics.ltf ~m items);
          ratio (fun items -> Rt_partition.Heuristics.greedy_unsorted ~m items);
        ])
    t [ 1; 2; 3; 5; 8 ]
