module Fc = Rt_prelude.Float_cmp

(* The DVS PE is ideal with a wide speed range (the published setting
   assumes speeds can always absorb the kept workload); the non-DVS PE's
   power is normalized against the XScale-like curve. *)
let dvs =
  Rt_power.Processor.make
    ~model:(Rt_power.Power_model.make ~coeff:1.52 ~alpha:3. ())
    ~domain:(Rt_power.Processor.Ideal { s_min = 0.; s_max = 1e6 })
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let system ~alt_kind =
  match
    Rt_twope.Twope.system ~dvs ~alt_power:0.588 ~alt_kind ~horizon:1000.
  with
  | Ok s -> s
  | Error e -> invalid_arg e

let couplings =
  [
    ("inverse", fun rng ~n ~total_alt -> Rt_twope.Twope.gen_inverse rng ~n ~total_alt);
    ( "proportional",
      fun rng ~n ~total_alt -> Rt_twope.Twope.gen_proportional rng ~n ~total_alt
    );
  ]

let ratio_table ~base_seed ~seeds ~alt_kind ~algorithms =
  let seed_list = Runner.seeds ~base:base_seed ~n:seeds in
  let sys = system ~alt_kind in
  let headers = "U2* (coupling)" :: List.map fst algorithms in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:(Rt_prelude.Tablefmt.Left :: List.map (fun _ -> Rt_prelude.Tablefmt.Right) (List.tl headers))
      headers
  in
  let rows =
    List.concat_map
      (fun (cname, gen) ->
        List.map (fun u2 -> (cname, gen, u2)) [ 1.2; 1.6; 2.0; 2.4 ])
      couplings
  in
  List.fold_left
    (fun t (cname, gen, u2) ->
      let row =
        List.map
          (fun (_, alg) ->
            Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
                let rng = Rt_prelude.Rng.create ~seed in
                let tasks = gen rng ~n:10 ~total_alt:u2 in
                let opt =
                  match
                    Rt_twope.Twope.cost sys (Rt_twope.Twope.exhaustive sys tasks)
                  with
                  | Ok c -> c
                  | Error _ -> Float.nan
                in
                if Float.is_nan opt || Fc.exact_le opt 0. then Float.nan
                else
                  match Rt_twope.Twope.cost sys (alg sys tasks) with
                  | Ok c -> c /. opt
                  | Error _ -> Float.nan))
          algorithms
      in
      Rt_prelude.Tablefmt.add_float_row t
        (Printf.sprintf "%.1f (%s)" u2 cname)
        row)
    t rows

let e9_workload_independent ?(seeds = 15) () =
  ratio_table ~base_seed:1100 ~seeds ~alt_kind:Rt_twope.Twope.Workload_independent
    ~algorithms:
      [
        ("greedy", Rt_twope.Twope.greedy);
        ("e-greedy", Rt_twope.Twope.e_greedy);
        ("dp", Rt_twope.Twope.dp);
      ]

let e10_workload_dependent ?(seeds = 15) () =
  ratio_table ~base_seed:1200 ~seeds ~alt_kind:Rt_twope.Twope.Workload_dependent
    ~algorithms:
      [
        ("greedy", Rt_twope.Twope.greedy);
        ("s-greedy", Rt_twope.Twope.s_greedy);
      ]
