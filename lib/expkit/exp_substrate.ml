module Fc = Rt_prelude.Float_cmp

open Rt_task

let horizon = Instances.default_frame_length
let big_penalty = 1e9

let cubic = Rt_power.Processor.cubic ()

let homog_workload ~seed ~n ~m =
  let rng = Rt_prelude.Rng.create ~seed in
  let tasks =
    Gen.frame_tasks_with_load rng ~n ~m ~s_max:1. ~frame_length:horizon
      ~load:0.6
  in
  Taskset.items_of_frames ~frame_length:horizon tasks

let bucket_cost u =
  match Rt_speed.Energy_rate.energy cubic ~u ~horizon with
  | Some e -> e
  | None -> invalid_arg "exp_substrate: bucket over capacity"

let partition_energy part =
  Array.fold_left
    (fun acc u -> acc +. bucket_cost u)
    0.
    (Rt_partition.Partition.loads part)

(* exact minimum-energy partition: rejection priced out by a huge penalty *)
let optimal_energy ~m items =
  let priced =
    List.map
      (fun (it : Task.item) ->
        Task.item ~penalty:big_penalty ~id:it.item_id ~weight:it.weight ())
      items
  in
  let s =
    Rt_exact.Search.branch_and_bound ~m ~capacity:1. ~bucket_cost priced
  in
  if s.Rt_exact.Search.rejected <> [] then Float.nan
  else s.Rt_exact.Search.cost

let e7_ltf_vs_rand ?(seeds = 15) () =
  let seed_list = Runner.seeds ~base:700 ~n:seeds in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:
        [ Rt_prelude.Tablefmt.Left; Rt_prelude.Tablefmt.Right; Rt_prelude.Tablefmt.Right ]
      [ "m,n"; "LTF / OPT"; "RAND / OPT" ]
  in
  List.fold_left
    (fun t (m, n) ->
      let per alg =
        Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
            let items = homog_workload ~seed:(seed + (31 * m) + n) ~n ~m in
            let opt = optimal_energy ~m items in
            if Float.is_nan opt || Fc.exact_le opt 0. then Float.nan
            else begin
              let part = alg ~m items in
              if
                Rt_prelude.Float_cmp.gt
                  (Rt_partition.Partition.makespan part)
                  1.
              then Float.nan
              else partition_energy part /. opt
            end)
      in
      Rt_prelude.Tablefmt.add_float_row t
        (Printf.sprintf "m=%d n=%d" m n)
        [
          per (fun ~m items -> Rt_partition.Heuristics.ltf ~m items);
          per (fun ~m items -> Rt_partition.Heuristics.greedy_unsorted ~m items);
        ])
    t
    [ (3, 9); (3, 12); (4, 10); (4, 12); (5, 10) ]

(* ------------------------------------------------------------------ *)
(* E7b: heterogeneous power characteristics *)

let hetero_proc = Rt_power.Processor.xscale ~dormancy:Rt_power.Processor.Dormant_disable

let hetero_workload ~seed ~n ~m =
  let rng = Rt_prelude.Rng.create ~seed in
  let tasks =
    Gen.frame_tasks_with_load rng ~n ~m ~s_max:1. ~frame_length:horizon
      ~load:0.5
  in
  Taskset.items_of_frames ~frame_length:horizon tasks
  |> Gen.heterogeneous_power_factors rng ~lo:0.5 ~hi:3.

let hetero_partition_energy part =
  match Rt_partition.Hetero.total_energy hetero_proc ~horizon part with
  | Some e -> e
  | None -> Float.nan

(* symmetry-broken exhaustive search over assignments, costed by the
   per-processor KKT speed assignment *)
let hetero_optimal ~m items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let buckets = Array.make m [] in
  let best = ref Float.infinity in
  let rec go i used =
    if i = n then begin
      let cost = hetero_partition_energy (Rt_partition.Partition.of_buckets buckets) in
      if not (Float.is_nan cost) then best := Float.min !best cost
    end
    else
      for j = 0 to min (m - 1) used do
        buckets.(j) <- arr.(i) :: buckets.(j);
        go (i + 1) (max used (j + 1));
        buckets.(j) <- List.tl buckets.(j)
      done
  in
  go 0 0;
  if Float.is_finite !best then !best else Float.nan

let e7_hetero_leuf ?(seeds = 10) () =
  let seed_list = Runner.seeds ~base:800 ~n:seeds in
  let m = 3 in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:
        [ Rt_prelude.Tablefmt.Left; Rt_prelude.Tablefmt.Right; Rt_prelude.Tablefmt.Right ]
      [ "eta (n/m)"; "LEUF / OPT"; "RAND / OPT" ]
  in
  List.fold_left
    (fun t eta ->
      let n = int_of_float (eta *. float_of_int m) in
      let per alg =
        Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
            let items = hetero_workload ~seed:(seed + n) ~n ~m in
            let opt = hetero_optimal ~m items in
            if Float.is_nan opt || Fc.exact_le opt 0. then Float.nan
            else begin
              let e = hetero_partition_energy (alg items) in
              if Float.is_nan e then Float.nan else e /. opt
            end)
      in
      Rt_prelude.Tablefmt.add_float_row t
        (Printf.sprintf "%.1f" eta)
        [
          per (fun items -> Rt_partition.Hetero.leuf hetero_proc ~m ~horizon items);
          per (fun items -> Rt_partition.Heuristics.greedy_unsorted ~m items);
        ])
    t [ 1.0; 2.0; 3.0 ]
