module Fc = Rt_prelude.Float_cmp

open Rt_core

let proc =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let algorithms =
  [
    ("ltf-reject", Greedy.ltf_reject);
    ("ltf-ls", Local_search.with_local_search Greedy.ltf_reject);
    ("marginal", Greedy.marginal_greedy);
    ("marginal-ls", Local_search.with_local_search Greedy.marginal_greedy);
    ("density", Greedy.density_reject);
    ("unsorted", Greedy.unsorted_reject);
  ]

let alg_names = List.map fst algorithms

let ratio_row ~seeds ~baseline ~instance =
  List.map
    (fun (_, alg) ->
      Runner.mean_over ~seeds ~f:(fun seed ->
          let p = instance seed in
          let base = baseline p in
          if Fc.exact_le base 0. then Float.nan
          else Instances.solution_total p (alg p) /. base))
    algorithms

let e1_vs_optimal ?(seeds = 30) () =
  let seed_list = Runner.seeds ~base:100 ~n:seeds in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:(Rt_prelude.Tablefmt.Left :: List.map (fun _ -> Rt_prelude.Tablefmt.Right) alg_names)
      ("m,n" :: alg_names)
  in
  List.fold_left
    (fun t (m, n) ->
      let row =
        ratio_row ~seeds:seed_list
          ~baseline:(fun p -> Exact.optimal_cost p)
          ~instance:(fun seed ->
            Instances.frame_instance ~proc ~seed:(seed + (1000 * m) + n) ~n ~m
              ~load:1.4 ())
      in
      Rt_prelude.Tablefmt.add_float_row t (Printf.sprintf "m=%d n=%d" m n) row)
    t
    [ (2, 6); (2, 8); (2, 10); (3, 8); (4, 8); (4, 10) ]

let e2_vs_lower_bound ?(seeds = 20) () =
  let seed_list = Runner.seeds ~base:200 ~n:seeds in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:(Rt_prelude.Tablefmt.Left :: List.map (fun _ -> Rt_prelude.Tablefmt.Right) alg_names)
      ("m,n" :: alg_names)
  in
  List.fold_left
    (fun t (m, n) ->
      let row =
        ratio_row ~seeds:seed_list ~baseline:Bounds.lower_bound
          ~instance:(fun seed ->
            Instances.frame_instance ~proc ~seed:(seed + (1000 * m) + n) ~n ~m
              ~load:1.5 ())
      in
      Rt_prelude.Tablefmt.add_float_row t (Printf.sprintf "m=%d n=%d" m n) row)
    t
    [ (4, 20); (8, 40); (16, 80); (32, 120) ]

let e3_load_sweep ?(seeds = 20) () =
  let seed_list = Runner.seeds ~base:300 ~n:seeds in
  let headers = ("load" :: alg_names) @ [ "accept%(ltf-ls)" ] in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:(Rt_prelude.Tablefmt.Left :: List.map (fun _ -> Rt_prelude.Tablefmt.Right) (List.tl headers))
      headers
  in
  let ltf_ls = List.assoc "ltf-ls" algorithms in
  List.fold_left
    (fun t load ->
      let instance seed =
        Instances.frame_instance ~proc
          ~seed:(seed + int_of_float (load *. 100.))
          ~n:40 ~m:8 ~load ()
      in
      let ratios =
        ratio_row ~seeds:seed_list ~baseline:Bounds.lower_bound ~instance
      in
      let acceptance =
        Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
            let p = instance seed in
            100. *. Solution.acceptance_ratio p (ltf_ls p))
      in
      Rt_prelude.Tablefmt.add_float_row t
        (Printf.sprintf "%.1f" load)
        (ratios @ [ acceptance ]))
    t
    [ 0.4; 0.8; 1.2; 1.6; 2.0; 2.4 ]

let e4_penalty_models ?(seeds = 20) () =
  let seed_list = Runner.seeds ~base:400 ~n:seeds in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:(Rt_prelude.Tablefmt.Left :: List.map (fun _ -> Rt_prelude.Tablefmt.Right) alg_names)
      ("penalty model" :: alg_names)
  in
  List.fold_left
    (fun t (name, model) ->
      let row =
        ratio_row ~seeds:seed_list ~baseline:Bounds.lower_bound
          ~instance:(fun seed ->
            Instances.frame_instance ~penalty_model:model ~proc ~seed ~n:40
              ~m:8 ~load:1.6 ())
      in
      Rt_prelude.Tablefmt.add_float_row t name row)
    t Rt_task.Penalty.default_models
