module Fc = Rt_prelude.Float_cmp

open Rt_task

let proc = Rt_power.Processor.cubic ()

let gen_tasks seed =
  let rng = Rt_prelude.Rng.create ~seed in
  let n = Rt_prelude.Rng.int rng ~lo:8 ~hi:16 in
  List.map
    (fun id ->
      Task.frame
        ~penalty:(Rt_prelude.Rng.float rng ~lo:1. ~hi:80.)
        ~id
        ~cycles:(Rt_prelude.Rng.int rng ~lo:60 ~hi:400)
        ())
    (Rt_prelude.Math_util.range 0 (n - 1))

let e17_dp_dial ?(seeds = 25) () =
  let seed_list = Runner.seeds ~base:1900 ~n:seeds in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:
        [
          Rt_prelude.Tablefmt.Left;
          Rt_prelude.Tablefmt.Right;
          Rt_prelude.Tablefmt.Right;
          Rt_prelude.Tablefmt.Right;
        ]
      [ "epsilon"; "mean cost ratio"; "worst cost ratio"; "mean table shrink" ]
  in
  List.fold_left
    (fun t epsilon ->
      let ratios =
        List.filter_map
          (fun seed ->
            let tasks = gen_tasks seed in
            match
              ( Rt_core.Uni_dp.exact ~proc ~frame_length:1000. tasks,
                Rt_core.Uni_dp.scaled ~epsilon ~proc ~frame_length:1000. tasks
              )
            with
            | Ok e, Ok s when Fc.exact_gt e.Rt_core.Uni_dp.cost 0. ->
                Some (s.Rt_core.Uni_dp.cost /. e.Rt_core.Uni_dp.cost)
            | _ -> None)
          seed_list
      in
      let shrink =
        Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
            let tasks = gen_tasks seed in
            let cycles =
              Array.of_list (List.map (fun (tk : Task.frame) -> tk.cycles) tasks)
            in
            float_of_int
              (Rt_exact.Knapsack.scale_for_epsilon ~epsilon ~cycles))
      in
      match ratios with
      | [] -> t
      | _ ->
          Rt_prelude.Tablefmt.add_float_row t
            (Printf.sprintf "%.2f" epsilon)
            [
              Rt_prelude.Stats.mean ratios;
              Rt_prelude.Stats.maximum ratios;
              shrink;
            ])
    t
    [ 0.01; 0.1; 0.25; 0.5; 1.0; 2.0 ]
