module Fc = Rt_prelude.Float_cmp

let model = Rt_power.Power_model.make ~coeff:1. ~alpha:3. ()

let e14_sync_rails ?(seeds = 30) () =
  let seed_list = Runner.seeds ~base:1600 ~n:seeds in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:
        [ Rt_prelude.Tablefmt.Left; Rt_prelude.Tablefmt.Right; Rt_prelude.Tablefmt.Right ]
      [ "cores, imbalance"; "peak common speed"; "sync / independent" ]
  in
  let rows =
    List.concat_map
      (fun m -> List.map (fun spread -> (m, spread)) [ 0.0; 0.5; 1.0 ])
      [ 2; 4; 8 ]
  in
  List.fold_left
    (fun t (m, spread) ->
      let sample seed =
        let rng = Rt_prelude.Rng.create ~seed:(seed + (m * 17)) in
        (* per-core workloads around 0.5·window, spread by ±spread/2 *)
        Array.init m (fun _ ->
            let base = 0.5 in
            let jitter =
              Rt_prelude.Rng.float rng ~lo:(-.spread /. 2.) ~hi:(spread /. 2.)
            in
            Float.max 0.05 (base +. (jitter *. base)))
      in
      let ratio =
        Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
            let workloads = sample seed in
            match Rt_speed.Sync_global.solve model ~window:1. ~workloads with
            | Error _ -> Float.nan
            | Ok s ->
                let indep =
                  Rt_speed.Sync_global.energy_independent model ~window:1.
                    ~workloads
                in
                if Fc.exact_le indep 0. then Float.nan
                else s.Rt_speed.Sync_global.energy /. indep)
      in
      let peak =
        Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
            match
              Rt_speed.Sync_global.solve model ~window:1.
                ~workloads:(sample seed)
            with
            | Ok s -> s.Rt_speed.Sync_global.peak_speed
            | Error _ -> Float.nan)
      in
      Rt_prelude.Tablefmt.add_float_row t
        (Printf.sprintf "m=%d spread=%.1f" m spread)
        [ peak; ratio ])
    t rows
