module Fc = Rt_prelude.Float_cmp

let proc =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let policies =
  [
    ("admit-all", Rt_online.Admission.Admit_all);
    ("profitable", Rt_online.Admission.Profitable);
    ("threshold", Rt_online.Admission.Density_threshold 1.0);
  ]

let e13_online_admission ?(seeds = 20) () =
  let seed_list = Runner.seeds ~base:1500 ~n:seeds in
  let headers =
    ("offered load" :: List.map fst policies) @ [ "accept%(admit-all)" ]
  in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:(Rt_prelude.Tablefmt.Left :: List.map (fun _ -> Rt_prelude.Tablefmt.Right) (List.tl headers))
      headers
  in
  let mean_cycles = 25. in
  List.fold_left
    (fun t load ->
      let rate = load /. mean_cycles in
      let run seed policy =
        let rng =
          Rt_prelude.Rng.create ~seed:(seed + int_of_float (load *. 100.))
        in
        let jobs =
          Rt_online.Job.stream rng ~n:120 ~rate ~s_max:1. ~mean_cycles
            ~slack_lo:1.2 ~slack_hi:4. ~penalty_factor:1.3
        in
        let lb = Rt_online.Admission.lower_bound ~proc jobs in
        match Rt_online.Admission.simulate ~proc ~policy jobs with
        | Error _ -> None
        | Ok o -> Some (o, lb)
      in
      let ratios =
        List.map
          (fun (_, policy) ->
            Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
                match run seed policy with
                | Some (o, lb) when Fc.exact_gt lb 0. ->
                    o.Rt_online.Admission.total /. lb
                | _ -> Float.nan))
          policies
      in
      let acceptance =
        Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
            match run seed Rt_online.Admission.Admit_all with
            | Some (o, _) ->
                100.
                *. float_of_int (List.length o.Rt_online.Admission.admitted)
                /. 120.
            | None -> Float.nan)
      in
      Rt_prelude.Tablefmt.add_float_row t
        (Printf.sprintf "%.1f" load)
        (ratios @ [ acceptance ]))
    t
    [ 0.3; 0.6; 0.9; 1.2; 1.6; 2.0 ]
