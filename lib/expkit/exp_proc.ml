module Fc = Rt_prelude.Float_cmp

open Rt_task

(* accept-all energy of a workload on m copies of a processor; penalties are
   irrelevant here so items carry none and LTF accepts everything (loads
   stay under capacity at the loads E5/E6 use) *)
let partition_energy ~proc ~m ~horizon items =
  let part = Rt_partition.Heuristics.ltf ~m items in
  let loads = Rt_partition.Partition.loads part in
  Array.fold_left
    (fun acc u ->
      match Rt_speed.Energy_rate.energy proc ~u ~horizon with
      | Some e -> acc +. e
      | None -> Float.nan)
    0. loads

let workload ~seed ~n ~m ~load =
  let rng = Rt_prelude.Rng.create ~seed in
  let tasks =
    Gen.frame_tasks_with_load rng ~n ~m ~s_max:1.
      ~frame_length:Instances.default_frame_length ~load
  in
  Taskset.items_of_frames ~frame_length:Instances.default_frame_length tasks

let e5_domains =
  [
    ("ideal", Rt_power.Processor.cubic ());
    ("2 levels", Rt_power.Processor.uniform_levels ~n:2 ());
    ("3 levels", Rt_power.Processor.uniform_levels ~n:3 ());
    ("5 levels", Rt_power.Processor.uniform_levels ~n:5 ());
    ("10 levels", Rt_power.Processor.uniform_levels ~n:10 ());
    ( "xscale grid",
      Rt_power.Processor.make
        ~model:(Rt_power.Power_model.make ~coeff:1. ~alpha:3. ())
        ~domain:(Rt_power.Processor.Levels [| 0.15; 0.4; 0.6; 0.8; 1.0 |])
        ~dormancy:Rt_power.Processor.Dormant_disable );
  ]

let e5_discrete_levels ?(seeds = 25) () =
  let seed_list = Runner.seeds ~base:500 ~n:seeds in
  let ideal = List.assoc "ideal" e5_domains in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:[ Rt_prelude.Tablefmt.Left; Rt_prelude.Tablefmt.Right; Rt_prelude.Tablefmt.Right ]
      [ "speed domain"; "ratio @ load 0.4"; "ratio @ load 0.7" ]
  in
  List.fold_left
    (fun t (name, proc) ->
      let ratio_at load =
        Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
            let items = workload ~seed ~n:24 ~m:4 ~load in
            let e =
              partition_energy ~proc ~m:4
                ~horizon:Instances.default_frame_length items
            in
            let e0 =
              partition_energy ~proc:ideal ~m:4
                ~horizon:Instances.default_frame_length items
            in
            if Float.is_nan e || Fc.exact_le e0 0. then Float.nan else e /. e0)
      in
      Rt_prelude.Tablefmt.add_float_row t name
        [ ratio_at 0.4; ratio_at 0.7 ])
    t e5_domains

let e6_leakage ?(seeds = 25) () =
  let seed_list = Runner.seeds ~base:600 ~n:seeds in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:
        [ Rt_prelude.Tablefmt.Left; Rt_prelude.Tablefmt.Right; Rt_prelude.Tablefmt.Right ]
      [ "p_ind"; "critical speed"; "stretch / clamped" ]
  in
  List.fold_left
    (fun t p_ind ->
      let model = Rt_power.Power_model.make ~p_ind ~coeff:1.52 ~alpha:3. () in
      let clamped =
        Rt_power.Processor.make ~model
          ~domain:(Rt_power.Processor.Ideal { s_min = 0.; s_max = 1. })
          ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })
      in
      let s_crit = Rt_power.Processor.critical_speed clamped in
      let ratio =
        Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
            let items = workload ~seed ~n:20 ~m:4 ~load:0.15 in
            let part = Rt_partition.Heuristics.ltf ~m:4 items in
            let loads = Rt_partition.Partition.loads part in
            (* stretch-to-deadline: run continuously at u, awake all frame *)
            let stretch =
              Array.fold_left
                (fun acc u ->
                  acc
                  +. (Instances.default_frame_length
                     *. Rt_power.Power_model.power model u))
                0. loads
            in
            let opt =
              Array.fold_left
                (fun acc u ->
                  match
                    Rt_speed.Energy_rate.energy clamped ~u
                      ~horizon:Instances.default_frame_length
                  with
                  | Some e -> acc +. e
                  | None -> Float.nan)
                0. loads
            in
            if Float.is_nan opt || Fc.exact_le opt 0. then Float.nan
            else stretch /. opt)
      in
      Rt_prelude.Tablefmt.add_float_row t (Printf.sprintf "%.2f" p_ind)
        [ s_crit; ratio ])
    t
    [ 0.0; 0.05; 0.1; 0.2; 0.4 ]
