module Fc = Rt_prelude.Float_cmp

let e11_rounding ?(seeds = 12) () =
  let seed_list = Runner.seeds ~base:1300 ~n:seeds in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:
        [
          Rt_prelude.Tablefmt.Left;
          Rt_prelude.Tablefmt.Right;
          Rt_prelude.Tablefmt.Right;
          Rt_prelude.Tablefmt.Right;
        ]
      [
        "types,tasks,gamma";
        "ROUNDING / LP";
        "E-ROUNDING / LP";
        "budget overruns %";
      ]
  in
  let rows =
    (* the (types × tasks) grid at gamma = 0.2, then the gamma sweep *)
    List.map (fun (ty, n) -> (ty, n, 0.2)) [ (2, 6); (3, 12); (4, 20); (6, 30) ]
    @ List.map (fun g -> (4, 20, g)) [ 0.05; 0.4; 0.7; 1.0 ]
  in
  List.fold_left
    (fun t (n_types, n_tasks, gamma) ->
      let per alg =
        Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
            let rng = Rt_prelude.Rng.create ~seed:(seed + (n_types * 1000) + n_tasks) in
            match
              Rt_alloc.Alloc.gen rng ~n_types ~n_tasks ~instance_gamma:gamma
            with
            | Error _ -> Float.nan
            | Ok inst -> (
                match (Rt_alloc.Rounding.lp_lower_bound inst, alg inst) with
                | Some lb, Ok b when Fc.exact_gt lb 0. ->
                    b.Rt_alloc.Alloc.alloc_cost /. lb
                | _ -> Float.nan))
      in
      (* the published rounding does not re-enforce the energy budget;
         report how often the realized energy exceeds it *)
      let overruns =
        Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
            let rng = Rt_prelude.Rng.create ~seed:(seed + (n_types * 1000) + n_tasks) in
            match
              Rt_alloc.Alloc.gen rng ~n_types ~n_tasks ~instance_gamma:gamma
            with
            | Error _ -> Float.nan
            | Ok inst -> (
                match Rt_alloc.Rounding.e_rounding inst with
                | Error _ -> Float.nan
                | Ok b ->
                    if
                      (* tolerant: budget violations within rounding noise
                         do not count *)
                      Fc.gt b.Rt_alloc.Alloc.realized_energy
                        inst.Rt_alloc.Alloc.energy_budget
                    then 100.
                    else 0.))
      in
      Rt_prelude.Tablefmt.add_float_row t
        (Printf.sprintf "m=%d n=%d g=%.2f" n_types n_tasks gamma)
        [
          per Rt_alloc.Rounding.rounding;
          per Rt_alloc.Rounding.e_rounding;
          overruns;
        ])
    t rows

let leaky_ideal =
  Rt_power.Processor.make
    ~model:(Rt_power.Power_model.make ~p_ind:0.08 ~coeff:1.52 ~alpha:3. ())
    ~domain:(Rt_power.Processor.Ideal { s_min = 0.; s_max = 1. })
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let e12_rs_leuf ?(seeds = 15) () =
  let seed_list = Runner.seeds ~base:1400 ~n:seeds in
  let frame = 1000. in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:
        [ Rt_prelude.Tablefmt.Left; Rt_prelude.Tablefmt.Right; Rt_prelude.Tablefmt.Right ]
      [ "n,gamma"; "First-Fit / m*"; "RS-LEUF / m*" ]
  in
  let rows =
    List.concat_map
      (fun n -> List.map (fun g -> (n, g)) [ 0.2; 0.5; 0.8 ])
      [ 5; 15; 30 ]
  in
  List.fold_left
    (fun t (n, gamma) ->
      let run seed =
        let rng = Rt_prelude.Rng.create ~seed:(seed + n) in
        let items =
          Rt_task.Gen.items rng ~n ~weight_lo:0.05 ~weight_hi:0.55
        in
        (* budget interpolates between the per-task-minimum (gamma 0) and
           running everything at top speed (gamma 1) *)
        let model = leaky_ideal.Rt_power.Processor.model in
        let e_at s =
          List.fold_left
            (fun acc (it : Rt_task.Task.item) ->
              acc
              +. (it.Rt_task.Task.weight *. frame
                 *. Rt_power.Power_model.energy_per_cycle model s))
            0. items
        in
        let s_crit = Rt_power.Processor.critical_speed leaky_ideal in
        let e_lo = e_at (Float.max s_crit 0.05) and e_hi = e_at 1. in
        let budget = e_lo +. (gamma *. (e_hi -. e_lo)) in
        match
          ( Rt_alloc.Rs_leuf.pooled_min_processors ~proc:leaky_ideal ~frame
              ~budget items,
            Rt_alloc.Rs_leuf.first_fit ~proc:leaky_ideal ~frame ~budget items,
            Rt_alloc.Rs_leuf.rs_leuf ~proc:leaky_ideal ~frame ~budget items )
        with
        | Ok (m_star, _), Ok ff, Ok rs when m_star > 0 ->
            Some
              ( float_of_int ff.Rt_alloc.Rs_leuf.processors
                /. float_of_int m_star,
                float_of_int rs.Rt_alloc.Rs_leuf.processors
                /. float_of_int m_star )
        | _ -> None
      in
      let ff =
        Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
            match run seed with Some (ff, _) -> ff | None -> Float.nan)
      in
      let rs =
        Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
            match run seed with Some (_, rs) -> rs | None -> Float.nan)
      in
      Rt_prelude.Tablefmt.add_float_row t
        (Printf.sprintf "n=%d g=%.1f" n gamma)
        [ ff; rs ])
    t rows
