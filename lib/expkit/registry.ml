type experiment = {
  id : string;
  title : string;
  expectation : string;
  run : unit -> Rt_prelude.Tablefmt.t;
  run_quick : unit -> Rt_prelude.Tablefmt.t;
}

let all =
  [
    {
      id = "e1";
      title = "E1: total cost vs. exact optimum (small instances)";
      expectation =
        "ltf-ls/marginal-ls within a few percent of 1.0; unsorted clearly \
         worse; gaps shrink as n/m grows";
      run = (fun () -> Exp_homog.e1_vs_optimal ());
      run_quick = (fun () -> Exp_homog.e1_vs_optimal ~seeds:5 ());
    };
    {
      id = "e2";
      title = "E2: total cost vs. lower bound (large instances)";
      expectation =
        "ratios stay modest (the bound itself is loose by the pooling \
         relaxation); polished variants dominate their bases";
      run = (fun () -> Exp_homog.e2_vs_lower_bound ());
      run_quick = (fun () -> Exp_homog.e2_vs_lower_bound ~seeds:4 ());
    };
    {
      id = "e3";
      title = "E3: load sweep across the forced-rejection threshold";
      expectation =
        "acceptance ~100% below load 1.0 then falls; above 1.0 the \
         rejection-aware algorithms hold their ratio while unsorted \
         degrades";
      run = (fun () -> Exp_homog.e3_load_sweep ());
      run_quick = (fun () -> Exp_homog.e3_load_sweep ~seeds:4 ());
    };
    {
      id = "e4";
      title = "E4: sensitivity to the penalty model";
      expectation =
        "ranking stable; inverse penalties favour density ordering, \
         uniform penalties favour marginal ordering";
      run = (fun () -> Exp_homog.e4_penalty_models ());
      run_quick = (fun () -> Exp_homog.e4_penalty_models ~seeds:4 ());
    };
    {
      id = "e5";
      title = "E5: discrete speed grids vs. ideal spectrum";
      expectation =
        "ratios >= 1, shrinking monotonically as the grid refines; the \
         2-level grid is worst at light load";
      run = (fun () -> Exp_proc.e5_discrete_levels ());
      run_quick = (fun () -> Exp_proc.e5_discrete_levels ~seeds:5 ());
    };
    {
      id = "e6";
      title = "E6: the critical-speed clamp under growing leakage";
      expectation =
        "ratio 1.0 at p_ind = 0, growing with leakage (stretching to the \
         deadline wastes leakage-dominated energy)";
      run = (fun () -> Exp_proc.e6_leakage ());
      run_quick = (fun () -> Exp_proc.e6_leakage ~seeds:5 ());
    };
    {
      id = "e7";
      title = "E7: substrate validation - LTF/RAND vs optimal (Fig. 4 shape)";
      expectation =
        "LTF close to 1.0 (<= 1.13 analytically), RAND worse; both improve \
         with more tasks per core";
      run = (fun () -> Exp_substrate.e7_ltf_vs_rand ());
      run_quick = (fun () -> Exp_substrate.e7_ltf_vs_rand ~seeds:4 ());
    };
    {
      id = "e7b";
      title = "E7b: heterogeneous power - LEUF/RAND vs optimal (Fig. 5 shape)";
      expectation = "LEUF close to optimal (<= 1.412 analytically), RAND worse";
      run = (fun () -> Exp_substrate.e7_hetero_leuf ());
      run_quick = (fun () -> Exp_substrate.e7_hetero_leuf ~seeds:3 ());
    };
    {
      id = "e8";
      title = "E8: leakage-aware family ordering under sleep overheads (Fig. 6 shape)";
      expectation =
        "LA+LTF+FF+PROC best everywhere; PROC helps more at E_sw = 4 than \
         at E_sw = 12";
      run = (fun () -> Exp_leakage.e8_leakage_aware ());
      run_quick = (fun () -> Exp_leakage.e8_leakage_aware ~seeds:4 ());
    };
    {
      id = "e9";
      title = "E9: two-PE system, workload-independent non-DVS PE (Fig. 7 shape)";
      expectation =
        "DP ~= 1.0 everywhere; E-GREEDY <= GREEDY; both greedy variants \
         degrade as U2* grows";
      run = (fun () -> Exp_twope.e9_workload_independent ());
      run_quick = (fun () -> Exp_twope.e9_workload_independent ~seeds:4 ());
    };
    {
      id = "e10";
      title = "E10: two-PE system, workload-dependent non-DVS PE (Fig. 8 shape)";
      expectation =
        "S-GREEDY close to optimal; GREEDY much worse, worst at small U2* \
         under the inverse coupling (it over-offloads)";
      run = (fun () -> Exp_twope.e10_workload_dependent ());
      run_quick = (fun () -> Exp_twope.e10_workload_dependent ~seeds:4 ());
    };
    {
      id = "e11";
      title = "E11: allocation cost - ROUNDING vs E-ROUNDING (Fig. 9a/9b shape)";
      expectation =
        "both close to the LP bound; E-ROUNDING never worse; gap widens \
         with more processor types";
      run = (fun () -> Exp_alloc.e11_rounding ());
      run_quick = (fun () -> Exp_alloc.e11_rounding ~seeds:3 ());
    };
    {
      id = "e12";
      title = "E12: allocation cost - First-Fit vs RS-LEUF, one ideal type (Fig. 9c shape)";
      expectation =
        "RS-LEUF at or below First-Fit everywhere; biggest wins at large \
         gamma and small n";
      run = (fun () -> Exp_alloc.e12_rs_leuf ());
      run_quick = (fun () -> Exp_alloc.e12_rs_leuf ~seeds:4 ());
    };
    {
      id = "e13";
      title = "E13: online admission policies under a load sweep (extension)";
      expectation =
        "ratios grow with load (the clairvoyant bound ignores \
         interference); profitable is consistently best; admit-all's \
         acceptance rate collapses under overload";
      run = (fun () -> Exp_online.e13_online_admission ());
      run_quick = (fun () -> Exp_online.e13_online_admission ~seeds:5 ());
    };
    {
      id = "e14";
      title = "E14 (ablation): synchronized voltage rail vs independent rails";
      expectation =
        "ratio 1.0 for balanced loads, growing with imbalance and with \
         core count (more cores forced off their individually best speed)";
      run = (fun () -> Exp_sync.e14_sync_rails ());
      run_quick = (fun () -> Exp_sync.e14_sync_rails ~seeds:8 ());
    };
    {
      id = "e15";
      title = "E15 (ablation): partitioned scheduling vs the migratory optimum";
      expectation =
        "converges to 1.0 as task granularity rises (coarse tasks carry \
         the intrinsic partition-vs-migration gap, up to 4/3); the \
         unsorted baseline converges slower";
      run = (fun () -> Exp_migration.e15_partition_vs_migration ());
      run_quick = (fun () -> Exp_migration.e15_partition_vs_migration ~seeds:8 ());
    };
    {
      id = "e16";
      title = "E16 (extension): graceful degradation vs binary rejection";
      expectation =
        "exact ratio <= 1 everywhere and well below 1 under overload \
         (concave losses make partial service cheap); greedy tracks it; \
         the degraded-task share grows with load";
      run = (fun () -> Exp_qos.e16_graceful_degradation ());
      run_quick = (fun () -> Exp_qos.e16_graceful_degradation ~seeds:5 ());
    };
    {
      id = "e17";
      title = "E17 (ablation): the uniprocessor DP accuracy/speed dial";
      expectation =
        "measured: the density-greedy guard keeps the cost ratio at 1.0 \
         across the sweep while the DP table shrinks ~60x - the dial buys \
         speed nearly free on this workload family";
      run = (fun () -> Exp_dp_dial.e17_dp_dial ());
      run_quick = (fun () -> Exp_dp_dial.e17_dp_dial ~seeds:8 ());
    };
    {
      id = "e18";
      title = "E18 (analysis): the penalty-calibration Pareto frontier";
      expectation =
        "acceptance and energy rise monotonically with lambda while the \
         unscaled penalty paid falls - the frontier an integrator tunes \
         along";
      run = (fun () -> Exp_pareto.e18_penalty_frontier ());
      run_quick = (fun () -> Exp_pareto.e18_penalty_frontier ~seeds:5 ());
    };
    {
      id = "e19";
      title = "E19 (robustness): fault sweep - degradation policies vs no-op";
      expectation =
        "at rate 0 every policy matches the baseline (cost 1.0, no \
         misses); as the rate grows, no-op's misses and cost climb while \
         the shed/repartition policies hold zero misses, paying a modest \
         shed/penalty premium instead";
      run = (fun () -> Exp_fault.e19_fault_sweep ());
      run_quick = (fun () -> Exp_fault.e19_fault_sweep ~seeds:4 ());
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let print ?(quick = false) e =
  (* lint: allow-no-print "registry runner is the sanctioned experiment output sink" *)
  Printf.printf "\n== %s ==\n" e.title;
  Rt_prelude.Tablefmt.print (if quick then e.run_quick () else e.run ());
  (* lint: allow-no-print "registry runner is the sanctioned experiment output sink" *)
  Printf.printf "expected shape: %s\n" e.expectation
