(** The experiment catalogue: everything EXPERIMENTS.md records, runnable
    by id from the [experiments] binary and the benchmark harness. *)

type experiment = {
  id : string;  (** e.g. "e1" *)
  title : string;
  expectation : string;
      (** the qualitative shape the experiment is supposed to show *)
  run : unit -> Rt_prelude.Tablefmt.t;  (** full-fidelity run *)
  run_quick : unit -> Rt_prelude.Tablefmt.t;
      (** reduced replication count, for smoke runs and timing benches *)
}

val all : experiment list
(** In id order: e1 … e19. *)

val find : string -> experiment option

val print : ?quick:bool -> experiment -> unit
(** Render title, table and expectation to stdout. *)
