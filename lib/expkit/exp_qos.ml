module Fc = Rt_prelude.Float_cmp

open Rt_core

let proc = Rt_power.Processor.cubic ()

let instance ~seed ~n ~m ~load =
  let rng = Rt_prelude.Rng.create ~seed in
  let tasks =
    Rt_task.Gen.frame_tasks_with_load rng ~n ~m ~s_max:1. ~frame_length:1000.
      ~load
  in
  Rt_task.Taskset.items_of_frames ~frame_length:1000. tasks
  |> Rt_task.Penalty.assign
       (Rt_task.Penalty.Proportional { factor = 1.5; jitter = 0.3 })
       rng ~proc ~horizon:1000.

let empty_problem ~m =
  match Problem.make ~proc ~m ~horizon:1000. [] with
  | Ok p -> p
  | Error e -> invalid_arg e

let e16_graceful_degradation ?(seeds = 20) () =
  let seed_list = Runner.seeds ~base:1800 ~n:seeds in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:
        [
          Rt_prelude.Tablefmt.Left;
          Rt_prelude.Tablefmt.Right;
          Rt_prelude.Tablefmt.Right;
          Rt_prelude.Tablefmt.Right;
        ]
      [
        "load";
        "multi/binary (greedy, n=24 m=4)";
        "multi/binary (exact, n=4 m=1)";
        "degraded tasks %";
      ]
  in
  List.fold_left
    (fun t load ->
      let greedy_ratio_and_degraded seed =
        let items = instance ~seed ~n:24 ~m:4 ~load in
        let p = empty_problem ~m:4 in
        let binary = List.map Qos.of_item items in
        let multi = List.map (Qos.graceful ~steps:4 ~curve:2.) items in
        let sb = Qos.greedy_degrade p binary in
        let sm = Qos.greedy_degrade p multi in
        match (Qos.cost p binary sb, Qos.cost p multi sm) with
        | Ok cb, Ok cm when Fc.exact_gt cb 0. ->
            let degraded =
              List.length
                (List.filter
                   (fun c ->
                     c.Qos.level_index > 0 && c.Qos.level_index < 3)
                   sm.Qos.choices)
            in
            Some (cm /. cb, 100. *. float_of_int degraded /. 24.)
        | _ -> None
      in
      let greedy_ratio =
        Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
            match greedy_ratio_and_degraded seed with
            | Some (r, _) -> r
            | None -> Float.nan)
      in
      let degraded_pct =
        Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
            match greedy_ratio_and_degraded seed with
            | Some (_, d) -> d
            | None -> Float.nan)
      in
      let exact_ratio =
        Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
            let items = instance ~seed:(seed + 7) ~n:4 ~m:1 ~load in
            let p = empty_problem ~m:1 in
            let binary = List.map Qos.of_item items in
            let multi = List.map (Qos.graceful ~steps:4 ~curve:2.) items in
            match
              ( Qos.cost p binary (Qos.exhaustive p binary),
                Qos.cost p multi (Qos.exhaustive p multi) )
            with
            | Ok cb, Ok cm when Fc.exact_gt cb 0. -> cm /. cb
            | _ -> Float.nan)
      in
      Rt_prelude.Tablefmt.add_float_row t
        (Printf.sprintf "%.1f" load)
        [ greedy_ratio; exact_ratio; degraded_pct ])
    t
    [ 0.6; 1.0; 1.4; 1.8; 2.2 ]
