module Fc = Rt_prelude.Float_cmp

open Rt_task

type policy = { ff : bool; procrastinate : bool }

let policy_energy ~proc ~horizon ~jobs_on policy part =
  let part =
    if policy.ff then Rt_partition.La_ltf.consolidate ~proc part else part
  in
  let s_crit = Rt_power.Processor.critical_speed proc in
  let model = proc.Rt_power.Processor.model in
  let m = Rt_partition.Partition.m part in
  let total = ref 0. in
  for j = 0 to m - 1 do
    let bucket = Rt_partition.Partition.bucket part j in
    let u = Rt_partition.Partition.load part j in
    if Fc.exact_gt u 0. then begin
      let s = Float.min (Rt_power.Processor.s_max proc) (Float.max u s_crit) in
      let busy = horizon *. u /. s in
      let exec = busy *. Rt_power.Power_model.power model s in
      let idle = horizon -. busy in
      let gaps = if policy.procrastinate then 1 else max 1 (jobs_on bucket) in
      let idle_e =
        if Fc.exact_le idle 0. then 0.
        else
          Rt_speed.Procrastinate.idle_energy_fragmented proc ~total_idle:idle
            ~gaps
      in
      total := !total +. exec +. idle_e
    end
    (* empty processors sleep through the horizon: zero *)
  done;
  !total

(* everything executes at the critical speed with all idle time asleep *)
let lower_bound ~proc ~horizon items =
  let s_crit = Rt_power.Processor.critical_speed proc in
  let model = proc.Rt_power.Processor.model in
  let per_cycle = Rt_power.Power_model.energy_per_cycle model s_crit in
  List.fold_left
    (fun acc (it : Task.item) -> acc +. (it.weight *. horizon *. per_cycle))
    0. items

let e8_leakage_aware ?(seeds = 20) () =
  let seed_list = Runner.seeds ~base:900 ~n:seeds in
  let policies =
    [
      ("LA+LTF", { ff = false; procrastinate = false });
      ("LA+LTF+PROC", { ff = false; procrastinate = true });
      ("LA+LTF+FF", { ff = true; procrastinate = false });
      ("LA+LTF+FF+PROC", { ff = true; procrastinate = true });
    ]
  in
  let headers = "n (E_sw)" :: List.map fst policies in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:(Rt_prelude.Tablefmt.Left :: List.map (fun _ -> Rt_prelude.Tablefmt.Right) (List.tl headers))
      headers
  in
  let m = 8 in
  let rows =
    List.concat_map
      (fun e_sw -> List.map (fun n -> (n, e_sw)) [ 8; 12; 16; 20; 24 ])
      [ 4.; 12. ]
  in
  List.fold_left
    (fun t (n, e_sw) ->
      let proc =
        Rt_power.Processor.make
          ~model:(Rt_power.Power_model.make ~p_ind:0.08 ~coeff:1.52 ~alpha:3. ())
          ~domain:(Rt_power.Processor.Ideal { s_min = 0.; s_max = 1. })
          ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 5.; e_sw })
      in
      let row =
        List.map
          (fun (_, policy) ->
            Runner.mean_over ~seeds:seed_list ~f:(fun seed ->
                let rng =
                  Rt_prelude.Rng.create ~seed:(seed + n + int_of_float e_sw)
                in
                let tasks =
                  Gen.periodic_tasks rng ~n ~total_util:1.2
                    ~periods:Gen.default_periods
                in
                let horizon = float_of_int (Taskset.hyper_period tasks) in
                let items = Taskset.items_of_periodics tasks in
                let part = Rt_partition.Heuristics.ltf ~m items in
                let jobs_on bucket =
                  List.fold_left
                    (fun acc (it : Task.item) ->
                      match
                        List.find_opt
                          (fun (tk : Task.periodic) -> tk.id = it.item_id)
                          tasks
                      with
                      | Some tk ->
                          acc + int_of_float (horizon /. float_of_int tk.period)
                      | None -> acc)
                    0 bucket
                in
                let lb = lower_bound ~proc ~horizon items in
                if Fc.exact_le lb 0. then Float.nan
                else policy_energy ~proc ~horizon ~jobs_on policy part /. lb))
          policies
      in
      Rt_prelude.Tablefmt.add_float_row t
        (Printf.sprintf "n=%d (E_sw=%.0f)" n e_sw)
        row)
    t rows
