let seeds ~base ~n =
  List.map (fun i -> base + (7919 * i)) (Rt_prelude.Math_util.range 0 (n - 1))

let replicate_par ~pool ~seeds ~f =
  let values =
    List.filter
      (fun v -> not (Float.is_nan v))
      (Rt_parallel.Pool.map ?pool f seeds)
  in
  if List.is_empty values then
    invalid_arg "Runner.replicate: every replication returned NaN";
  Rt_prelude.Stats.summarize values

let replicate ~seeds ~f = replicate_par ~pool:None ~seeds ~f

let mean_over_par ~pool ~seeds ~f =
  (replicate_par ~pool ~seeds ~f).Rt_prelude.Stats.mean

let mean_over ~seeds ~f = (replicate ~seeds ~f).Rt_prelude.Stats.mean
