open Rt_core


let proc =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let default_fault_rates = [ 0.; 0.05; 0.15 ]

type row = {
  fault_rate : float;
  policy : string;
  cost_ratio : float;
  miss_pct : float;
  shed_pct : float;
}

let rates_of r =
  {
    Rt_fault.Fault.overrun_prob = r;
    overrun_factor = 1.5;
    crash_prob = r;
    derate_prob = r;
    derate_factor = 0.8;
  }

(* One replication: a frame instance at comfortable load, a scenario drawn
   at the given fault rate, one policy's recovery. The degraded cost
   charges the measured energy, all penalties actually paid, and the
   penalty of every task that missed (a miss is at least as bad as a
   rejection) — normalized by the fault-free baseline total. *)
let eval_one ~seed ~rate policy =
  let p = Instances.frame_instance ~proc ~seed ~n:12 ~m:4 ~load:0.8 () in
  let n = List.length p.Problem.items in
  let baseline = Greedy.ltf_reject p in
  match Solution.cost p baseline with
  | Error _ -> None
  | Ok bc ->
      let rng = Rt_prelude.Rng.create ~seed:((seed * 7919) + 17) in
      let sc =
        Rt_fault.Fault.gen rng (rates_of rate)
          ~task_ids:
            (List.map
               (fun (it : Rt_task.Task.item) -> it.item_id)
               p.Problem.items)
          ~m:p.Problem.m ~horizon:p.Problem.horizon
      in
      (match Rt_fault.Degrade.recover_frame p sc ~baseline policy with
      | Error _ -> None
      | Ok r ->
          let miss_penalty =
            List.fold_left
              (fun acc id ->
                match Problem.item p id with
                | Some it -> acc +. it.item_penalty
                | None -> acc)
              0. r.Rt_fault.Degrade.misses
          in
          let degraded_cost =
            r.Rt_fault.Degrade.energy_faulty +. bc.Solution.penalty
            +. r.Rt_fault.Degrade.extra_penalty +. miss_penalty
          in
          let pct l = 100. *. float_of_int (List.length l) /. float_of_int n in
          Some
            ( degraded_cost /. bc.Solution.total,
              pct r.Rt_fault.Degrade.misses,
              pct r.Rt_fault.Degrade.shed ))

let mean = function
  | [] -> Float.nan
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let sweep ?pool ?(seeds = 12) ?(fault_rates = default_fault_rates) () =
  let seed_list = Runner.seeds ~base:1900 ~n:seeds in
  let cells =
    List.concat_map
      (fun rate ->
        List.map (fun pol -> (rate, pol)) Rt_fault.Degrade.all_policies)
      fault_rates
  in
  (* one parallel job per (rate × policy × seed) replication; the flat
     result list is regrouped by cell in submission order, so the rows are
     byte-identical to the sequential sweep at any domain count *)
  let evals =
    Rt_parallel.Pool.map ?pool
      (fun (rate, pol, seed) -> eval_one ~seed ~rate pol)
      (List.concat_map
         (fun (rate, pol) ->
           List.map (fun seed -> (rate, pol, seed)) seed_list)
         cells)
  in
  let rec chunks k = function
    | [] -> []
    | l -> List.filteri (fun i _ -> i < k) l :: chunks k (List.filteri (fun i _ -> i >= k) l)
  in
  List.map2
    (fun (rate, pol) cell_evals ->
      let evals = List.filter_map Fun.id cell_evals in
      {
        fault_rate = rate;
        policy = Rt_fault.Degrade.policy_name pol;
        cost_ratio = mean (List.map (fun (c, _, _) -> c) evals);
        miss_pct = mean (List.map (fun (_, m, _) -> m) evals);
        shed_pct = mean (List.map (fun (_, _, s) -> s) evals);
      })
    cells
    (chunks (List.length seed_list) evals)

let e19_fault_sweep ?(seeds = 12) () =
  let rows = sweep ~seeds () in
  let policies = List.map Rt_fault.Degrade.policy_name Rt_fault.Degrade.all_policies in
  let headers =
    "fault-rate"
    :: List.concat_map (fun nm -> [ nm ^ " cost"; nm ^ " miss%" ]) policies
  in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:
        (Rt_prelude.Tablefmt.Left
        :: List.map (fun _ -> Rt_prelude.Tablefmt.Right) (List.tl headers))
      headers
  in
  List.fold_left
    (fun t rate ->
      let cells =
        List.concat_map
          (fun nm ->
            match
              List.find_opt
                (fun r ->
                  r.policy = nm
                  && Rt_prelude.Float_cmp.exact_eq r.fault_rate rate)
                rows
            with
            | Some r -> [ r.cost_ratio; r.miss_pct ]
            | None -> [ Float.nan; Float.nan ])
          policies
      in
      Rt_prelude.Tablefmt.add_float_row t (Printf.sprintf "%.2f" rate) cells)
    t default_fault_rates
