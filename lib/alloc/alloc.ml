module Fc = Rt_prelude.Float_cmp

type proc_type = {
  type_id : int;
  alloc_cost : float;
  model : Rt_power.Power_model.t;
  speeds : float array;
}

let proc_type ~type_id ~alloc_cost ~model ~speeds =
  if Fc.exact_le alloc_cost 0. || not (Float.is_finite alloc_cost) then
    invalid_arg "Alloc.proc_type: alloc_cost must be finite and > 0";
  if Array.length speeds = 0 then
    invalid_arg "Alloc.proc_type: empty speed set";
  Array.iteri
    (fun i s ->
      if Fc.exact_le s 0. || not (Float.is_finite s) then
        invalid_arg "Alloc.proc_type: speeds must be positive and finite";
      if i > 0 && Fc.exact_ge speeds.(i - 1) s then
        invalid_arg "Alloc.proc_type: speeds must be strictly increasing")
    speeds;
  { type_id; alloc_cost; model; speeds = Array.copy speeds }

type task = { id : int; cycles : float array }

let task ~id ~cycles =
  if Array.length cycles = 0 then invalid_arg "Alloc.task: no cycle counts";
  Array.iter
    (fun c ->
      if Fc.exact_le c 0. || not (Float.is_finite c) then
        invalid_arg "Alloc.task: cycles must be positive and finite")
    cycles;
  { id; cycles = Array.copy cycles }

type instance = {
  types : proc_type array;
  tasks : task list;
  frame : float;
  energy_budget : float;
}

let instance ~types ~tasks ~frame ~energy_budget =
  if Array.length types = 0 then Error "Alloc.instance: no processor types"
  else if Fc.exact_le frame 0. || not (Float.is_finite frame) then
    Error "Alloc.instance: frame must be finite and > 0"
  else if Fc.exact_le energy_budget 0. || not (Float.is_finite energy_budget)
  then
    Error "Alloc.instance: energy budget must be finite and > 0"
  else if
    List.exists
      (fun t -> Array.length t.cycles <> Array.length types)
      tasks
  then Error "Alloc.instance: task cycle vector does not match the types"
  else if
    not (Rt_task.Task.distinct_ids (List.map (fun t -> t.id) tasks))
  then Error "Alloc.instance: duplicate task ids"
  else Ok { types; tasks; frame; energy_budget }

let utilization inst t ~ti ~level =
  t.cycles.(ti) /. (inst.types.(ti).speeds.(level) *. inst.frame)

let energy inst t ~ti ~level =
  let s = inst.types.(ti).speeds.(level) in
  t.cycles.(ti) /. s *. Rt_power.Power_model.power inst.types.(ti).model s

let kappa inst t ~ti =
  let levels = Array.length inst.types.(ti).speeds in
  let rec go l =
    if l = levels then None
    else if Rt_prelude.Float_cmp.leq (utilization inst t ~ti ~level:l) 1. then
      Some l
    else go (l + 1)
  in
  go 0

(* per-task feasible energy extremes *)
let per_task_extreme inst pick t =
  let best = ref None in
  Array.iteri
    (fun ti _ ->
      match kappa inst t ~ti with
      | None -> ()
      | Some k ->
          for l = k to Array.length inst.types.(ti).speeds - 1 do
            let e = energy inst t ~ti ~level:l in
            match !best with
            | Some b when not (pick e b) -> ()
            | _ -> best := Some e
          done)
    inst.types;
  !best

let sum_extreme inst pick =
  List.fold_left
    (fun acc t ->
      match per_task_extreme inst pick t with
      | Some e -> acc +. e
      | None -> acc (* task infeasible everywhere: contributes nothing *))
    0. inst.tasks

let e_min inst = sum_extreme inst (fun e b -> Fc.exact_lt e b)
let e_max inst = sum_extreme inst (fun e b -> Fc.exact_gt e b)

let with_gamma ~types ~tasks ~frame ~gamma =
  if Fc.exact_lt gamma 0. || Fc.exact_gt gamma 1. then
    invalid_arg "Alloc.with_gamma: gamma outside [0, 1]";
  match instance ~types ~tasks ~frame ~energy_budget:1. with
  | Error _ as e -> e
  | Ok proto ->
      let lo = e_min proto and hi = e_max proto in
      let budget = lo +. (gamma *. (hi -. lo)) in
      (* keep the budget strictly positive even at gamma = 0 *)
      instance ~types ~tasks ~frame
        ~energy_budget:(Float.max (lo *. (1. +. 1e-9)) budget)

type placement = { task_id : int; ti : int; level : int }

type build = {
  placements : placement list;
  counts : int array;
  alloc_cost : float;
  realized_energy : float;
}

let pack inst placements =
  let n_types = Array.length inst.types in
  let task_of id = List.find_opt (fun t -> t.id = id) inst.tasks in
  let placed_ids = List.map (fun p -> p.task_id) placements in
  if not (Rt_task.Task.distinct_ids placed_ids) then
    Error "Alloc.pack: duplicate placements"
  else if
    List.sort compare placed_ids
    <> List.sort compare (List.map (fun t -> t.id) inst.tasks)
  then Error "Alloc.pack: placements do not cover the task set"
  else begin
    let utils_per_type = Array.make n_types [] in
    let energy_total = ref 0. in
    let bad = ref None in
    List.iter
      (fun p ->
        match task_of p.task_id with
        | None -> bad := Some "Alloc.pack: foreign task"
        | Some t ->
            if
              p.ti < 0 || p.ti >= n_types || p.level < 0
              || p.level >= Array.length inst.types.(p.ti).speeds
            then bad := Some "Alloc.pack: placement out of range"
            else begin
              let u = utilization inst t ~ti:p.ti ~level:p.level in
              if Rt_prelude.Float_cmp.gt u 1. then
                bad := Some "Alloc.pack: placement misses its deadline"
              else begin
                utils_per_type.(p.ti) <- u :: utils_per_type.(p.ti);
                energy_total :=
                  !energy_total +. energy inst t ~ti:p.ti ~level:p.level
              end
            end)
      placements;
    match !bad with
    | Some msg -> Error msg
    | None ->
        let counts =
          Array.map
            (fun utils ->
              (* first-fit over unit-capacity bins *)
              let bins = ref [] in
              List.iter
                (fun u ->
                  let rec place acc = function
                    | [] -> List.rev ((u :: []) :: acc)
                    | bin :: rest ->
                        let load = List.fold_left ( +. ) 0. bin in
                        if Rt_prelude.Float_cmp.leq (load +. u) 1. then
                          List.rev_append acc ((u :: bin) :: rest)
                        else place (bin :: acc) rest
                  in
                  bins := place [] !bins)
                utils;
              List.length !bins)
            utils_per_type
        in
        let alloc_cost =
          Array.to_list
            (Array.mapi
               (fun j c -> float_of_int c *. inst.types.(j).alloc_cost)
               counts)
          |> List.fold_left ( +. ) 0.
        in
        Ok
          {
            placements;
            counts;
            alloc_cost;
            realized_energy = !energy_total;
          }
  end

let gen rng ~n_types ~n_tasks ~instance_gamma =
  if n_types < 1 || n_tasks < 1 then
    invalid_arg "Alloc.gen: need at least one type and one task";
  let types =
    Array.init n_types (fun j ->
        let n_levels = Rt_prelude.Rng.int rng ~lo:3 ~hi:5 in
        let top = Rt_prelude.Rng.float rng ~lo:0.6 ~hi:1.0 in
        let speeds =
          Array.init n_levels (fun l ->
              top *. float_of_int (l + 1) /. float_of_int n_levels)
        in
        let coeff = Rt_prelude.Rng.float rng ~lo:0.8 ~hi:2.2 in
        let p_ind = Rt_prelude.Rng.float rng ~lo:0.02 ~hi:0.12 in
        proc_type ~type_id:j
          ~alloc_cost:(Rt_prelude.Rng.log_uniform rng ~lo:1. ~hi:8.)
          ~model:(Rt_power.Power_model.make ~p_ind ~coeff ~alpha:3. ())
          ~speeds)
  in
  let frame = 1000. in
  let tasks =
    List.map
      (fun id ->
        let base = Rt_prelude.Rng.float rng ~lo:0.05 ~hi:0.45 in
        let cycles =
          Array.init n_types (fun j ->
              let skew = Rt_prelude.Rng.float rng ~lo:0.7 ~hi:1.4 in
              base *. skew
              *. types.(j).speeds.(Array.length types.(j).speeds - 1)
              *. frame)
        in
        task ~id ~cycles)
      (Rt_prelude.Math_util.range 0 (n_tasks - 1))
  in
  match with_gamma ~types ~tasks ~frame ~gamma:instance_gamma with
  | Ok i -> Ok i
  | Error e -> Error e
