module Fc = Rt_prelude.Float_cmp

open Rt_lp

(* one LP variable: task index (into the sorted task array), type index,
   speed level *)
type var = { vi : int; vj : int; vl : int }

type lp_solution = {
  lp_value : float;  (** relaxation objective incl. the 4b constant *)
  placements : Alloc.placement list;  (** rounded *)
}

(* [vj] is a position in the cost-sorted order; [order] maps it back to
   the instance's type index *)
let feasible_vars inst ~tasks ~order ~m' =
  List.concat
    (List.mapi
       (fun vi t ->
         List.concat
           (List.filter_map
              (fun vj ->
                let ti = order vj in
                match Alloc.kappa inst t ~ti with
                | None -> None
                | Some k ->
                    Some
                      (List.map
                         (fun vl -> { vi; vj; vl })
                         (Rt_prelude.Math_util.range k
                            (Array.length inst.Alloc.types.(ti).Alloc.speeds - 1))))
              (Rt_prelude.Math_util.range 0 (m' - 1))))
       tasks)

(* build and solve one of the 2m parametric LPs; [pin] = true is Eq. (4b) *)
let solve_one inst ~tasks ~order ~m' ~pin =
  let n_tasks = Array.length tasks in
  let task_list = Array.to_list tasks in
  let vars = Array.of_list (feasible_vars inst ~tasks:task_list ~order ~m') in
  let nv = Array.length vars in
  if nv = 0 then None
  else begin
    let u_of { vi; vj; vl } =
      Alloc.utilization inst tasks.(vi) ~ti:(order vj) ~level:vl
    in
    let e_of { vi; vj; vl } =
      Alloc.energy inst tasks.(vi) ~ti:(order vj) ~level:vl
    in
    let cost_of { vj; _ } = inst.Alloc.types.(order vj).Alloc.alloc_cost in
    let objective =
      Array.map
        (fun v ->
          if pin && v.vj = m' - 1 then 0. (* its processor is paid as a constant *)
          else u_of v *. cost_of v)
        vars
    in
    let row_of f = Array.map f vars in
    let anchor_row =
      row_of (fun v -> if v.vj = m' - 1 then u_of v else 0.)
    in
    let energy_row = row_of e_of in
    let task_rows =
      List.map
        (fun i ->
          ( row_of (fun v -> if v.vi = i then 1. else 0.),
            Simplex.Eq,
            1. ))
        (Rt_prelude.Math_util.range 0 (n_tasks - 1))
    in
    let constraints =
      (anchor_row, (if pin then Simplex.Le else Simplex.Ge), 1.)
      :: (energy_row, Simplex.Le, inst.Alloc.energy_budget)
      :: task_rows
    in
    match Simplex.solve { Simplex.minimize = objective; constraints } with
    | Error _
    | Ok Simplex.Infeasible
    | Ok Simplex.Unbounded
    | Ok (Simplex.Iteration_limit _) ->
        None
    | Ok (Simplex.Optimal { value; solution }) ->
        let constant =
          if pin then inst.Alloc.types.(order (m' - 1)).Alloc.alloc_cost
          else 0.
        in
        (* rounding: integral tasks keep their variable; fractional tasks go
           to the cheapest-energy supporting type at its slowest feasible
           speed *)
        let placements =
          List.map
            (fun i ->
              let mine =
                List.filter
                  (fun (idx, _) -> vars.(idx).vi = i)
                  (List.mapi (fun idx v -> (idx, v)) (Array.to_list vars))
              in
              let integral =
                List.find_opt (fun (idx, _) -> Fc.exact_gt solution.(idx) (1. -. 1e-6)) mine
              in
              match integral with
              | Some (_, v) ->
                  {
                    Alloc.task_id = tasks.(i).Alloc.id;
                    ti = order v.vj;
                    level = v.vl;
                  }
              | None ->
                  let supported =
                    List.filter (fun (idx, _) -> Fc.exact_gt solution.(idx) 1e-9) mine
                  in
                  let candidates =
                    match supported with [] -> mine | s -> s
                  in
                  let best =
                    List.fold_left
                      (fun acc (_, v) ->
                        let ti = order v.vj in
                        match Alloc.kappa inst tasks.(i) ~ti with
                        | None -> acc
                        | Some k ->
                            let e = Alloc.energy inst tasks.(i) ~ti ~level:k in
                            (match acc with
                            | Some (_, _, eb) when Fc.exact_le eb e -> acc
                            | _ -> Some (ti, k, e)))
                      None candidates
                  in
                  (match best with
                  | Some (ti, level, _) ->
                      { Alloc.task_id = tasks.(i).Alloc.id; ti; level }
                  | None ->
                      (* lint: allow-no-raise "unreachable: mine is non-empty by construction" *)
                      assert false))
            (Rt_prelude.Math_util.range 0 (n_tasks - 1))
        in
        Some { lp_value = value +. constant; placements }
  end

let parametric_solutions inst =
  let tasks = Array.of_list inst.Alloc.tasks in
  (* re-index types by non-decreasing allocation cost *)
  let order_arr =
    let idx =
      Array.init (Array.length inst.Alloc.types) (fun j -> j)
    in
    Array.sort
      (fun a b ->
        Float.compare inst.Alloc.types.(a).Alloc.alloc_cost
          inst.Alloc.types.(b).Alloc.alloc_cost)
      idx;
    idx
  in
  let order j = order_arr.(j) in
  let m = Array.length inst.Alloc.types in
  List.concat_map
    (fun m' ->
      List.filter_map
        (fun pin -> solve_one inst ~tasks ~order ~m' ~pin)
        [ false; true ])
    (Rt_prelude.Math_util.range 1 m)

let lp_lower_bound inst =
  match parametric_solutions inst with
  | [] -> None
  | sols ->
      Some (List.fold_left (fun acc s -> Float.min acc s.lp_value) Float.infinity sols)

let rounding inst =
  match parametric_solutions inst with
  | [] -> Error "Rounding: no feasible parametric relaxation"
  | sols ->
      let best =
        List.fold_left
          (fun acc s ->
            match acc with
            | Some b when Fc.exact_le b.lp_value s.lp_value -> acc
            | _ -> Some s)
          None sols
      in
      (match best with
      | None -> Error "Rounding: no feasible parametric relaxation"
      | Some s -> Alloc.pack inst s.placements)

let e_rounding inst =
  let sols = parametric_solutions inst in
  let builds =
    List.filter_map
      (fun s -> Result.to_option (Alloc.pack inst s.placements))
      sols
  in
  match builds with
  | [] -> Error "E-Rounding: no feasible parametric relaxation"
  | b :: rest ->
      Ok
        (List.fold_left
           (fun best x ->
             if Fc.exact_lt x.Alloc.alloc_cost best.Alloc.alloc_cost then x
             else best)
           b rest)
