open Rt_task

type outcome = { processors : int; energy : float }

(* energy of the pooled estimate: execution at s_i = c_i / t_i, leakage
   charged while awake (dormant-enable) or for the whole span per
   processor (dormant-disable, added by callers when comparing builds of
   equal processor counts — both algorithms here report execution energy
   plus per-processor awake overhead) *)
let estimate_energy (proc : Rt_power.Processor.t) ~frame items times =
  List.fold_left
    (fun acc (it : Task.item) ->
      match List.assoc_opt it.item_id times with
      | None -> Float.nan
      | Some t ->
          let cycles = it.weight *. frame in
          let s = cycles /. t in
          let leak =
            match proc.dormancy with
            | Rt_power.Processor.Dormant_enable _ ->
                proc.model.Rt_power.Power_model.p_ind
            | Rt_power.Processor.Dormant_disable -> 0.
          in
          acc
          +. (t
             *. (leak
                +. Rt_power.Power_model.dynamic_power proc.model s)))
    0. items

let awake_overhead (proc : Rt_power.Processor.t) ~frame ~processors =
  match proc.dormancy with
  | Rt_power.Processor.Dormant_enable _ -> 0.
  | Rt_power.Processor.Dormant_disable ->
      float_of_int processors *. frame
      *. proc.model.Rt_power.Power_model.p_ind

let feasible_times (proc : Rt_power.Processor.t) ~frame items times =
  let s_max = Rt_power.Processor.s_max proc in
  List.for_all
    (fun (it : Task.item) ->
      match List.assoc_opt it.item_id times with
      | None -> false
      | Some t ->
          Rt_prelude.Float_cmp.leq (it.weight *. frame /. t) s_max)
    items

let pooled_min_processors ~proc ~frame ~budget items =
  if items = [] then Ok (0, [])
  else begin
    let n = List.length items in
    let rec go m =
      if m > n then
        Error "Rs_leuf: energy budget unreachable even one-task-per-processor"
      else begin
        let times = Rt_partition.Hetero.estimated_times proc ~m ~horizon:frame items in
        if not (feasible_times proc ~frame items times) then go (m + 1)
        else begin
          let e =
            estimate_energy proc ~frame items times
            +. awake_overhead proc ~frame ~processors:m
          in
          if Rt_prelude.Float_cmp.leq e budget then Ok (m, times)
          else go (m + 1)
        end
      end
    in
    (* no allocation can use fewer processors than the top-speed load needs *)
    let min_m =
      max 1
        (int_of_float
           (Float.ceil
              (Taskset.total_weight items /. Rt_power.Processor.s_max proc
              -. 1e-9)))
    in
    go min_m
  end

let estimated_utilizations ~frame items times =
  List.filter_map
    (fun (it : Task.item) ->
      Option.map
        (fun t -> (it, t /. frame))
        (List.assoc_opt it.item_id times))
    items

let first_fit ~proc ~frame ~budget items =
  match pooled_min_processors ~proc ~frame ~budget items with
  | Error _ as e -> e
  | Ok (m_star, times) ->
      let utils = estimated_utilizations ~frame items times in
      (* first-fit on estimated utilizations, unbounded bin supply *)
      let bins = ref [] in
      List.iter
        (fun (_, u) ->
          let rec place acc = function
            | [] -> List.rev ((u :: []) :: acc)
            | bin :: rest ->
                let load = List.fold_left ( +. ) 0. bin in
                if Rt_prelude.Float_cmp.leq (load +. u) 1. then
                  List.rev_append acc ((u :: bin) :: rest)
                else place (bin :: acc) rest
          in
          bins := place [] !bins)
        utils;
      let processors = max m_star (List.length !bins) in
      let energy =
        estimate_energy proc ~frame items times
        +. awake_overhead proc ~frame ~processors
      in
      Ok { processors; energy }

let rs_leuf ~proc ~frame ~budget items =
  match pooled_min_processors ~proc ~frame ~budget items with
  | Error _ as e -> e
  | Ok (m_star, times) ->
      let utils = estimated_utilizations ~frame items times in
      let sorted =
        List.sort (fun (_, ua) (_, ub) -> Float.compare ub ua) utils
      in
      let n = List.length items in
      let rec try_with m_hat =
        if m_hat > max n 1 then
          Error "Rs_leuf: could not meet the budget (internal)"
        else begin
          (* largest-estimated-utilization-first with unit capacity *)
          let buckets = Array.make m_hat [] in
          let loads = Array.make m_hat 0. in
          let fits =
            List.for_all
              (fun ((it : Task.item), u) ->
                let best = ref (-1) in
                Array.iteri
                  (fun j l ->
                    if
                      Rt_prelude.Float_cmp.leq (l +. u) 1.
                      && (!best < 0 || Rt_prelude.Float_cmp.exact_lt l loads.(!best))
                    then best := j)
                  loads;
                if !best < 0 then false
                else begin
                  buckets.(!best) <- it :: buckets.(!best);
                  loads.(!best) <- loads.(!best) +. u;
                  true
                end)
              sorted
          in
          if not fits then try_with (m_hat + 1)
          else begin
            (* re-optimize speeds on every processor *)
            let energy =
              Array.fold_left
                (fun acc bucket ->
                  match acc with
                  | None -> None
                  | Some e -> (
                      if bucket = [] then Some e
                      else
                        match
                          Rt_partition.Hetero.processor_speeds proc
                            ~horizon:frame bucket
                        with
                        | None -> None
                        | Some a ->
                            Some (e +. a.Rt_partition.Hetero.energy)))
                (Some 0.) buckets
            in
            match energy with
            | None -> try_with (m_hat + 1)
            | Some e ->
                let e = e +. awake_overhead proc ~frame ~processors:m_hat in
                if Rt_prelude.Float_cmp.leq e budget then
                  Ok { processors = m_hat; energy = e }
                else try_with (m_hat + 1)
          end
        end
      in
      try_with (max 1 m_star)
