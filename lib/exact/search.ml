module Fc = Rt_prelude.Float_cmp
module Clock = Rt_prelude.Clock

open Rt_task

type solution = {
  partition : Rt_partition.Partition.t;
  rejected : Task.item list;
  cost : float;
}

let check_args ~m ~capacity =
  if m < 1 then invalid_arg "Search: m < 1";
  if Fc.exact_le capacity 0. then invalid_arg "Search: capacity <= 0"

type anytime = { best : solution; nodes : int; exhausted : bool }

exception Budget_exhausted

(* ---------------------------------------------------------------- *)
(* Shared incumbent: a monotonically decreasing cost bound published
   across domains. Readers prune against it *strictly* (only subtrees
   that cannot even tie the published bound are cut), so the solution a
   search returns never depends on when a sibling's publication lands —
   the determinism contract docs/PARALLEL.md spells out. *)

type shared = float Atomic.t

let shared () = Atomic.make infinity
let shared_best = Atomic.get

let rec publish cell cost =
  let cur = Atomic.get cell in
  if Fc.exact_lt cost cur && not (Atomic.compare_and_set cell cur cost) then
    publish cell cost

(* ---------------------------------------------------------------- *)
(* Engine and search state.

   The immutable [engine] holds the prepared instance: placeable items
   sorted largest-first, forced rejections (items too heavy for any
   processor) and their penalty. A [state] is a node of the search tree —
   the first [next] items decided, the rest open. [root] is the empty
   prefix; [expand] enumerates a node's children in depth-first visit
   order (buckets 0..used, first unused bucket for symmetry breaking,
   then rejection), which is what makes a frontier split equivalent to
   the sequential search: all leaves of subtree i precede all leaves of
   subtree i+1 in DFS order. *)

type engine = {
  m : int;
  capacity : float;
  bucket_cost : float -> float;
  arr : Task.item array;
  forced : Task.item list;
  forced_penalty : float;
}

type state = {
  next : int;
  used : int;
  loads : float array;
  buckets : Task.item list array;
  rejected : Task.item list;
  penalty : float;
}

let prepare ~m ~capacity ~bucket_cost items =
  let forced, placeable =
    List.partition (fun (it : Task.item) -> Fc.gt it.weight capacity) items
  in
  {
    m;
    capacity;
    bucket_cost;
    arr = Array.of_list (List.sort Task.compare_item_weight_desc placeable);
    forced;
    forced_penalty = Taskset.total_penalty_items forced;
  }

let root e =
  {
    next = 0;
    used = 0;
    loads = Array.make e.m 0.;
    buckets = Array.make e.m [];
    rejected = [];
    penalty = 0.;
  }

let expand e st =
  if st.next >= Array.length e.arr then [ st ]
  else begin
    let it = e.arr.(st.next) in
    let children = ref [] in
    for j = min (e.m - 1) st.used downto 0 do
      if Fc.leq (st.loads.(j) +. it.weight) e.capacity then begin
        let loads = Array.copy st.loads in
        let buckets = Array.copy st.buckets in
        loads.(j) <- loads.(j) +. it.weight;
        buckets.(j) <- it :: buckets.(j);
        children :=
          {
            next = st.next + 1;
            used = max st.used (j + 1);
            loads;
            buckets;
            rejected = st.rejected;
            penalty = st.penalty;
          }
          :: !children
      end
    done;
    !children
    @ [
        {
          st with
          next = st.next + 1;
          loads = Array.copy st.loads;
          buckets = Array.copy st.buckets;
          rejected = it :: st.rejected;
          penalty = st.penalty +. it.item_penalty;
        };
      ]
  end

(* Depth-first exploration from [st]. The domain running this owns the
   private [loads]/[buckets] copies; the only cross-domain traffic is the
   optional [shared] incumbent. Backtracking restores each load to the
   exact float it held before the move (rather than subtracting the
   weight back out), so the cost of a leaf is a pure function of its
   assignment — identical whether reached sequentially or from a split
   subtree. *)
let run_from ?shared ~prune ~stop e st =
  let m = e.m in
  let n = Array.length e.arr in
  let loads = Array.copy st.loads in
  let buckets = Array.copy st.buckets in
  let rejected = ref st.rejected in
  let nodes = ref 0 in
  let buckets_cost () =
    let acc = ref 0. in
    for j = 0 to m - 1 do
      acc := !acc +. e.bucket_cost loads.(j)
    done;
    !acc
  in
  (* seed: reject every remaining item (always feasible) *)
  let remaining = Array.sub e.arr st.next (n - st.next) in
  let best_cost =
    ref
      (buckets_cost ()
      +. st.penalty
      +. Array.fold_left
           (fun acc (it : Task.item) -> acc +. it.item_penalty)
           0. remaining
      +. e.forced_penalty)
  in
  let best =
    ref
      ( Array.map List.rev buckets,
        List.rev_append (List.rev (Array.to_list remaining)) !rejected )
  in
  let foreign_cut =
    match shared with
    | None -> fun _ -> false
    | Some cell -> fun bound -> Fc.exact_gt bound (Atomic.get cell)
  in
  let publish_best =
    match shared with None -> fun _ -> () | Some cell -> publish cell
  in
  publish_best !best_cost;
  let rec go i used penalty_so_far =
    incr nodes;
    if stop !nodes then raise Budget_exhausted;
    if i = n then begin
      let cost = buckets_cost () +. penalty_so_far +. e.forced_penalty in
      if Fc.exact_lt cost !best_cost then begin
        best_cost := cost;
        best := (Array.map List.rev buckets, !rejected);
        publish_best cost
      end
    end
    else begin
      let bound = buckets_cost () +. penalty_so_far +. e.forced_penalty in
      if
        (not prune)
        || (Fc.exact_lt bound !best_cost && not (foreign_cut bound))
      then begin
        let it = e.arr.(i) in
        let try_bucket j =
          let before = loads.(j) in
          if Fc.leq (before +. it.weight) e.capacity then begin
            loads.(j) <- before +. it.weight;
            buckets.(j) <- it :: buckets.(j);
            go (i + 1) (max used (j + 1)) penalty_so_far;
            buckets.(j) <- List.tl buckets.(j);
            loads.(j) <- before
          end
        in
        for j = 0 to min (m - 1) used do
          try_bucket j
        done;
        (* rejection branch *)
        rejected := it :: !rejected;
        go (i + 1) used (penalty_so_far +. it.item_penalty);
        rejected := List.tl !rejected
      end
    end
  in
  let exhausted =
    match go st.next st.used st.penalty with
    | () -> false
    | exception Budget_exhausted -> true
  in
  let bs, rej = !best in
  ( {
      partition = Rt_partition.Partition.of_buckets bs;
      rejected = rej @ e.forced;
      cost = !best_cost;
    },
    !nodes,
    exhausted )

let search_core ?shared ~prune ~stop ~m ~capacity ~bucket_cost items =
  let e = prepare ~m ~capacity ~bucket_cost items in
  run_from ?shared ~prune ~stop e (root e)

(* ---------------------------------------------------------------- *)
(* Incremental frontier generation for the domain-parallel search
   (Rt_parallel.Par_search). A subtree is a search-tree node labelled
   with its DFS path — the sequence of child indices from the root —
   so subtrees produced on demand, at any depth and in any order, can
   still be totally ordered by depth-first position. [expand_subtree]
   refines one subtree into its children (the incremental analogue of
   the old one-shot root split); work-stealing schedulers call it
   whenever they need more independent units. *)

type subtree = { engine : engine; state : state; path : int list }

let root_subtree ~m ~capacity ~bucket_cost items =
  check_args ~m ~capacity;
  let e = prepare ~m ~capacity ~bucket_cost items in
  { engine = e; state = root e; path = [] }

let subtree_path t = t.path
let subtree_open t = Array.length t.engine.arr - t.state.next

let subtree_bound t =
  let acc = ref (t.state.penalty +. t.engine.forced_penalty) in
  for j = 0 to t.engine.m - 1 do
    acc := !acc +. t.engine.bucket_cost t.state.loads.(j)
  done;
  !acc

let expand_subtree t =
  if t.state.next >= Array.length t.engine.arr then None
  else
    Some
      (List.mapi
         (fun i state -> { engine = t.engine; state; path = t.path @ [ i ] })
         (expand t.engine t.state))

let rec compare_path a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (x : int) :: a', y :: b' ->
      if x < y then -1 else if x > y then 1 else compare_path a' b'

let make_stop ?node_budget ?deadline () =
  let node_stop =
    match node_budget with
    | Some b -> fun nodes -> nodes > b
    | None -> fun _ -> false
  in
  let time_stop =
    match deadline with
    | None -> fun _ -> false
    (* the clock is only consulted every 1024 nodes: a clock read per
       node would dominate the search itself *)
    | Some d ->
        fun nodes -> nodes land 1023 = 0 && Fc.exact_gt (Clock.now ()) d
  in
  fun nodes -> node_stop nodes || time_stop nodes

let deadline_of_budget b =
  if Fc.exact_le b 0. || not (Float.is_finite b) then neg_infinity
  else Clock.now () +. b

let run_subtree ?shared ?node_budget ?deadline ~prune t =
  let stop = make_stop ?node_budget ?deadline () in
  let best, nodes, exhausted =
    run_from ?shared ~prune ~stop t.engine t.state
  in
  { best; nodes; exhausted }

(* ---------------------------------------------------------------- *)

let search ~prune ~node_limit ~m ~capacity ~bucket_cost items =
  check_args ~m ~capacity;
  let sol, _, exhausted =
    search_core ~prune
      ~stop:(fun nodes -> nodes > node_limit)
      ~m ~capacity ~bucket_cost items
  in
  if exhausted then
    (* lint: allow-no-raise "documented @raise Failure on node-limit blowup" *)
    failwith "Search: node limit exceeded"
  else sol

let budgeted ?shared ~prune ?node_budget ?time_budget ~m ~capacity
    ~bucket_cost items =
  if m < 1 then Error "Search: m < 1"
  else if Fc.exact_le capacity 0. then Error "Search: capacity <= 0"
  else begin
    let deadline = Option.map deadline_of_budget time_budget in
    let stop = make_stop ?node_budget ?deadline () in
    let best, nodes, exhausted =
      search_core ?shared ~prune ~stop ~m ~capacity ~bucket_cost items
    in
    Ok { best; nodes; exhausted }
  end

let exhaustive ~m ~capacity ~bucket_cost items =
  if List.length items > 16 then
    invalid_arg "Search.exhaustive: more than 16 items";
  search ~prune:false ~node_limit:max_int ~m ~capacity ~bucket_cost items

let exhaustive_budgeted ?node_budget ?time_budget ~m ~capacity ~bucket_cost
    items =
  budgeted ~prune:false ?node_budget ?time_budget ~m ~capacity ~bucket_cost
    items

let branch_and_bound ?(node_limit = 50_000_000) ~m ~capacity ~bucket_cost items
    =
  search ~prune:true ~node_limit ~m ~capacity ~bucket_cost items

let branch_and_bound_budgeted ?shared ?node_budget ?time_budget ~m ~capacity
    ~bucket_cost items =
  budgeted ?shared ~prune:true ?node_budget ?time_budget ~m ~capacity
    ~bucket_cost items
