module Fc = Rt_prelude.Float_cmp

open Rt_task

type solution = {
  partition : Rt_partition.Partition.t;
  rejected : Task.item list;
  cost : float;
}

let check_args ~m ~capacity =
  if m < 1 then invalid_arg "Search: m < 1";
  if Fc.exact_le capacity 0. then invalid_arg "Search: capacity <= 0"

type anytime = { best : solution; nodes : int; exhausted : bool }

exception Budget_exhausted

(* Shared engine. Items too large for any processor are forced rejections;
   the rest are explored largest-first: for each item, try every used
   bucket, the first unused bucket (symmetry breaking), and rejection.
   [stop] is consulted at every node with the running node count; when it
   fires, exploration aborts and the best solution found so far is
   returned with [exhausted = true]. The incumbent is seeded with the
   all-reject solution, so there is always a feasible best-so-far even on
   a zero budget. *)
let search_core ~prune ~stop ~m ~capacity ~bucket_cost items =
  let forced, placeable =
    List.partition
      (fun (it : Task.item) -> Rt_prelude.Float_cmp.gt it.weight capacity)
      items
  in
  let forced_penalty = Taskset.total_penalty_items forced in
  let arr =
    Array.of_list (List.sort Task.compare_item_weight_desc placeable)
  in
  let n = Array.length arr in
  let loads = Array.make m 0. in
  let buckets = Array.make m [] in
  let rejected = ref [] in
  let nodes = ref 0 in
  let buckets_cost () =
    let acc = ref 0. in
    for j = 0 to m - 1 do
      acc := !acc +. bucket_cost loads.(j)
    done;
    !acc
  in
  (* seed: reject everything (always feasible) *)
  let best_cost =
    ref (buckets_cost () +. Taskset.total_penalty_items placeable
        +. forced_penalty)
  in
  let best = ref (Array.make m [], placeable) in
  let rec go i used penalty_so_far =
    incr nodes;
    if stop !nodes then raise Budget_exhausted;
    if i = n then begin
      let cost = buckets_cost () +. penalty_so_far +. forced_penalty in
      if Fc.exact_lt cost !best_cost then begin
        best_cost := cost;
        best :=
          (Array.map (fun b -> b) (Array.copy buckets) |> Array.map List.rev,
           !rejected)
      end
    end
    else begin
      let bound = buckets_cost () +. penalty_so_far +. forced_penalty in
      if (not prune) || Fc.exact_lt bound !best_cost then begin
        let it = arr.(i) in
        let try_bucket j =
          if Rt_prelude.Float_cmp.leq (loads.(j) +. it.weight) capacity then begin
            loads.(j) <- loads.(j) +. it.weight;
            buckets.(j) <- it :: buckets.(j);
            go (i + 1) (max used (j + 1)) penalty_so_far;
            buckets.(j) <- List.tl buckets.(j);
            loads.(j) <- loads.(j) -. it.weight
          end
        in
        for j = 0 to min (m - 1) used do
          try_bucket j
        done;
        (* rejection branch *)
        rejected := it :: !rejected;
        go (i + 1) used (penalty_so_far +. it.item_penalty);
        rejected := List.tl !rejected
      end
    end
  in
  let exhausted =
    match go 0 0 0. with () -> false | exception Budget_exhausted -> true
  in
  let bs, rej = !best in
  ( {
      partition = Rt_partition.Partition.of_buckets bs;
      rejected = rej @ forced;
      cost = !best_cost;
    },
    !nodes,
    exhausted )

let search ~prune ~node_limit ~m ~capacity ~bucket_cost items =
  check_args ~m ~capacity;
  let sol, _, exhausted =
    search_core ~prune
      ~stop:(fun nodes -> nodes > node_limit)
      ~m ~capacity ~bucket_cost items
  in
  if exhausted then
    (* lint: allow-no-raise "documented @raise Failure on node-limit blowup" *)
    failwith "Search: node limit exceeded"
  else sol

let budgeted ~prune ?node_budget ?time_budget ~m ~capacity ~bucket_cost items =
  if m < 1 then Error "Search: m < 1"
  else if Fc.exact_le capacity 0. then Error "Search: capacity <= 0"
  else begin
    let deadline =
      match time_budget with
      | None -> None
      | Some b ->
          if Fc.exact_le b 0. || not (Float.is_finite b) then Some neg_infinity
          else
            (* sanctioned budget plumbing: the wall clock bounds the search,
               it never feeds a result *)
            Some ((Sys.time () [@rt.lint.ignore "wallclock"]) +. b)
    in
    let stop nodes =
      (match node_budget with Some b -> nodes > b | None -> false)
      ||
      match deadline with
      | None -> false
      (* the clock is only consulted every 1024 nodes: Sys.time per node
         would dominate the search itself *)
      | Some d ->
          nodes land 1023 = 0
          && Fc.exact_gt (Sys.time () [@rt.lint.ignore "wallclock"]) d
    in
    let best, nodes, exhausted =
      search_core ~prune ~stop ~m ~capacity ~bucket_cost items
    in
    Ok { best; nodes; exhausted }
  end

let exhaustive ~m ~capacity ~bucket_cost items =
  if List.length items > 16 then
    invalid_arg "Search.exhaustive: more than 16 items";
  search ~prune:false ~node_limit:max_int ~m ~capacity ~bucket_cost items

let exhaustive_budgeted ?node_budget ?time_budget ~m ~capacity ~bucket_cost
    items =
  budgeted ~prune:false ?node_budget ?time_budget ~m ~capacity ~bucket_cost
    items

let branch_and_bound ?(node_limit = 50_000_000) ~m ~capacity ~bucket_cost items
    =
  search ~prune:true ~node_limit ~m ~capacity ~bucket_cost items

let branch_and_bound_budgeted ?node_budget ?time_budget ~m ~capacity
    ~bucket_cost items =
  budgeted ~prune:true ?node_budget ?time_budget ~m ~capacity ~bucket_cost
    items
