module Fc = Rt_prelude.Float_cmp

open Rt_task

type solution = {
  partition : Rt_partition.Partition.t;
  rejected : Task.item list;
  cost : float;
}

let check_args ~m ~capacity =
  if m < 1 then invalid_arg "Search: m < 1";
  if Fc.exact_le capacity 0. then invalid_arg "Search: capacity <= 0"

(* Shared engine. Items too large for any processor are forced rejections;
   the rest are explored largest-first: for each item, try every used
   bucket, the first unused bucket (symmetry breaking), and rejection. *)
let search ~prune ~node_limit ~m ~capacity ~bucket_cost items =
  check_args ~m ~capacity;
  let forced, placeable =
    List.partition
      (fun (it : Task.item) -> Rt_prelude.Float_cmp.gt it.weight capacity)
      items
  in
  let forced_penalty = Taskset.total_penalty_items forced in
  let arr =
    Array.of_list (List.sort Task.compare_item_weight_desc placeable)
  in
  let n = Array.length arr in
  let loads = Array.make m 0. in
  let buckets = Array.make m [] in
  let rejected = ref [] in
  let best_cost = ref Float.infinity in
  let best = ref None in
  let nodes = ref 0 in
  let buckets_cost () =
    let acc = ref 0. in
    for j = 0 to m - 1 do
      acc := !acc +. bucket_cost loads.(j)
    done;
    !acc
  in
  let rec go i used penalty_so_far =
    incr nodes;
    if !nodes > node_limit then
      (* lint: allow-no-raise "documented @raise Failure on node-limit blowup" *)
      failwith "Search: node limit exceeded";
    if i = n then begin
      let cost = buckets_cost () +. penalty_so_far +. forced_penalty in
      if cost < !best_cost then begin
        best_cost := cost;
        best :=
          Some
            ( Array.map (fun b -> b) (Array.copy buckets) |> Array.map List.rev,
              !rejected )
      end
    end
    else begin
      let bound = buckets_cost () +. penalty_so_far +. forced_penalty in
      if (not prune) || bound < !best_cost then begin
        let it = arr.(i) in
        let try_bucket j =
          if Rt_prelude.Float_cmp.leq (loads.(j) +. it.weight) capacity then begin
            loads.(j) <- loads.(j) +. it.weight;
            buckets.(j) <- it :: buckets.(j);
            go (i + 1) (max used (j + 1)) penalty_so_far;
            buckets.(j) <- List.tl buckets.(j);
            loads.(j) <- loads.(j) -. it.weight
          end
        in
        for j = 0 to min (m - 1) used do
          try_bucket j
        done;
        (* rejection branch *)
        rejected := it :: !rejected;
        go (i + 1) used (penalty_so_far +. it.item_penalty);
        rejected := List.tl !rejected
      end
    end
  in
  go 0 0 0.;
  match !best with
  | None ->
      (* lint: allow-no-raise "unreachable: the all-reject leaf always reaches i = n" *)
      assert false
  | Some (bs, rej) ->
      {
        partition = Rt_partition.Partition.of_buckets bs;
        rejected = rej @ forced;
        cost = !best_cost;
      }

let exhaustive ~m ~capacity ~bucket_cost items =
  if List.length items > 16 then
    invalid_arg "Search.exhaustive: more than 16 items";
  search ~prune:false ~node_limit:max_int ~m ~capacity ~bucket_cost items

let branch_and_bound ?(node_limit = 50_000_000) ~m ~capacity ~bucket_cost items
    =
  search ~prune:true ~node_limit ~m ~capacity ~bucket_cost items
