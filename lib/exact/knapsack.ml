module Fc = Rt_prelude.Float_cmp

type choice = { accepted : bool array; total_cycles : int; cost : float }

let validate ~capacity ~cycles ~penalties =
  if Array.length cycles <> Array.length penalties then
    invalid_arg "Knapsack: cycles/penalties length mismatch";
  if capacity < 0 then invalid_arg "Knapsack: capacity < 0";
  Array.iter
    (fun c -> if c <= 0 then invalid_arg "Knapsack: cycles must be > 0")
    cycles;
  Array.iter
    (fun p ->
      if Fc.exact_lt p 0. || not (Float.is_finite p) then
        invalid_arg "Knapsack: penalties must be finite and >= 0")
    penalties

(* dp.(w) = least total rejected penalty over subsets whose accepted cycles
   sum to exactly w (infinity when w is unreachable); keep.(i).(w) records
   whether item i is accepted on the optimal path reaching w after item i. *)
let solve ~capacity ~cycles ~penalties ~accept_cost =
  validate ~capacity ~cycles ~penalties;
  let n = Array.length cycles in
  let dp = Array.make (capacity + 1) Float.infinity in
  dp.(0) <- 0.;
  let keep = Array.make_matrix n (capacity + 1) false in
  for i = 0 to n - 1 do
    let c = cycles.(i) and p = penalties.(i) in
    (* iterate weights downward: 0/1 knapsack *)
    for w = capacity downto 0 do
      let reject = dp.(w) +. p in
      let accept = if w >= c then dp.(w - c) else Float.infinity in
      if Rt_prelude.Float_cmp.exact_lt accept reject then begin
        dp.(w) <- accept;
        keep.(i).(w) <- true
      end
      else dp.(w) <- reject
    done
  done;
  let best_w = ref 0 and best_cost = ref Float.infinity in
  for w = 0 to capacity do
    if Float.is_finite dp.(w) then begin
      let cost = dp.(w) +. accept_cost w in
      if Rt_prelude.Float_cmp.exact_lt cost !best_cost then begin
        best_cost := cost;
        best_w := w
      end
    end
  done;
  let accepted = Array.make n false in
  let w = ref !best_w in
  for i = n - 1 downto 0 do
    if keep.(i).(!w) then begin
      accepted.(i) <- true;
      w := !w - cycles.(i)
    end
  done;
  { accepted; total_cycles = !best_w; cost = !best_cost }

let solve_scaled ~scale ~capacity ~cycles ~penalties ~accept_cost =
  if scale < 1 then invalid_arg "Knapsack.solve_scaled: scale < 1";
  if scale = 1 then solve ~capacity ~cycles ~penalties ~accept_cost
  else begin
    validate ~capacity ~cycles ~penalties;
    let scaled_cycles =
      Array.map (fun c -> (c + scale - 1) / scale) cycles
    in
    let scaled_capacity = capacity / scale in
    (* cost the scaled DP with the true accept_cost of the *upper bound* of
       the represented true weight, keeping the estimate conservative *)
    let scaled_accept_cost w = accept_cost (min capacity (w * scale)) in
    let choice =
      solve ~capacity:scaled_capacity ~cycles:scaled_cycles ~penalties
        ~accept_cost:scaled_accept_cost
    in
    (* re-cost the chosen subset exactly *)
    let total = ref 0 and penalty = ref 0. in
    Array.iteri
      (fun i acc ->
        if acc then total := !total + cycles.(i)
        else penalty := !penalty +. penalties.(i))
      choice.accepted;
    {
      accepted = choice.accepted;
      total_cycles = !total;
      cost = accept_cost !total +. !penalty;
    }
  end

let scale_for_epsilon ~epsilon ~cycles =
  if Fc.exact_le epsilon 0. then
    invalid_arg "Knapsack.scale_for_epsilon: epsilon <= 0";
  if Array.length cycles = 0 then
    invalid_arg "Knapsack.scale_for_epsilon: no items";
  let c_max = Array.fold_left max 0 cycles in
  let n = Array.length cycles in
  max 1
    (int_of_float (epsilon *. float_of_int c_max /. float_of_int n))
