(** Exact solvers for select-and-partition problems.

    The problem: place each item on one of [m] identical processors or
    reject it (paying its penalty); a processor's load (weight sum) must
    stay within [capacity]; the objective is

    {v Σ_j bucket_cost(load_j)  +  Σ_rejected penalty v}

    with [bucket_cost] non-decreasing (energy of sustaining a load). Both
    solvers enumerate assignments with processor-symmetry breaking (an item
    may only open the lowest-indexed empty processor), so identical
    processors are never counted twice. [branch_and_bound] additionally
    prunes with the monotonicity bound: committed bucket energies and
    committed penalties never decrease as the remaining items are placed.

    Complexity is exponential — these are the ground-truth oracles for the
    small instances of experiment E1 and for the property tests, not
    production algorithms. The {!shared} incumbent and the
    {!root_subtree} / {!expand_subtree} / {!run_subtree} triple are the
    hooks {!Rt_parallel} races and distributes these searches with;
    sequential callers can ignore them. *)

type solution = {
  partition : Rt_partition.Partition.t;
  rejected : Rt_task.Task.item list;
  cost : float;
}

type anytime = {
  best : solution;  (** best solution found within the budget *)
  nodes : int;  (** search-tree nodes visited *)
  exhausted : bool;
      (** [true] when a budget ran out before the search completed — the
          solution is then the incumbent, not a proven optimum *)
}
(** Result of a budgeted (anytime) search. The incumbent is seeded with
    the all-reject solution, so [best] is a feasible solution even on a
    zero budget. *)

(** {2 Shared incumbent}

    A cross-domain upper bound on the optimal cost. Any solver or
    heuristic may {!publish} the cost of a solution it actually holds;
    the branch-and-bound prune test reads the cell and additionally cuts
    subtrees whose lower bound is {e strictly worse} than the published
    value. Strictness is what keeps parallel runs deterministic: a search
    still visits every node that could tie its own best, so the solution
    it returns never depends on when a sibling's publication arrived —
    only how fast it got there does (see docs/PARALLEL.md). *)

type shared

val shared : unit -> shared
(** A fresh cell holding [infinity]. *)

val shared_best : shared -> float
(** Current published bound ([infinity] if none yet). *)

val publish : shared -> float -> unit
(** Lower the cell to [cost] if it improves it (lock-free CAS loop).
    Publish only costs of feasible solutions the caller holds. *)

(** {2 Incremental frontier generation}

    A {!subtree} is one node of the search tree bundled with private
    load/bucket state, ready to be explored independently — the unit of
    work the domain-parallel searches schedule. Frontiers are produced
    {e incrementally}: {!root_subtree} makes the whole search one
    subtree, and {!expand_subtree} refines any subtree into its
    children in depth-first visit order, on demand — the work-stealing
    scheduler in {!Rt_parallel.Par_search} expands exactly as much
    frontier as load balancing requires, instead of guessing a one-shot
    split width up front.

    Every subtree carries its DFS {!subtree_path} (the child indices
    from the root), so subtrees expanded at {e different} depths, in any
    order, on any domain, are still totally ordered by
    {!compare_path} — all leaves of a path-lesser subtree precede all
    leaves of a path-greater one in the sequential depth-first visit.
    Combining completed results by (cost, then path, keeping strict
    improvements) therefore yields the same solution as the sequential
    search, for {e any} partition of the tree into disjoint subtrees and
    any execution order. *)

type subtree

val root_subtree :
  m:int -> capacity:float -> bucket_cost:(float -> float) ->
  Rt_task.Task.item list -> subtree
(** The whole search as a single subtree (path [[]]).
    @raise Invalid_argument if [m < 1] or [capacity <= 0]. *)

val expand_subtree : subtree -> subtree list option
(** The subtree's children in depth-first visit order (each placement
    of the next item on an open processor, then its rejection), or
    [None] when the subtree is a complete assignment — a leaf that can
    only be {!run_subtree}. The children partition the parent's leaves:
    running all of them visits exactly the parent's leaves, each once. *)

val subtree_path : subtree -> int list
(** Child indices from the root; [[]] for the root. The deterministic
    depth-first tie-break key (see {!compare_path}). *)

val subtree_open : subtree -> int
(** Number of still-undecided items — the depth of the tree below this
    subtree. Schedulers run small subtrees whole and expand large ones. *)

val subtree_bound : subtree -> float
(** The monotone lower bound of the subtree's prefix: committed bucket
    energies + committed penalties + forced rejections. Every leaf below
    costs at least this, so a scheduler may drop the whole subtree when
    the bound is {e strictly} above the {!shared} incumbent without
    affecting the returned solution. *)

val compare_path : int list -> int list -> int
(** Lexicographic order on paths = depth-first order on subtrees. *)

val run_subtree :
  ?shared:shared -> ?node_budget:int -> ?deadline:float -> prune:bool ->
  subtree -> anytime
(** Explore one subtree to completion or until [node_budget] nodes (per
    subtree) or the absolute monotonic [deadline] (a {!Rt_prelude.Clock}
    instant, polled every 1024 nodes). The seed incumbent rejects every
    item the subtree's prefix has not already placed. *)

val deadline_of_budget : float -> float
(** [Rt_prelude.Clock.now () +. budget]; a non-positive or non-finite
    budget maps to an already-expired deadline. *)

(** {2 Solvers} *)

val exhaustive :
  m:int -> capacity:float -> bucket_cost:(float -> float) ->
  Rt_task.Task.item list -> solution
(** Full enumeration ((m+1)^n with symmetry breaking).
    @raise Invalid_argument if [m < 1], [capacity <= 0] or [n > 16]. *)

val exhaustive_budgeted :
  ?node_budget:int -> ?time_budget:float -> m:int -> capacity:float ->
  bucket_cost:(float -> float) -> Rt_task.Task.item list ->
  (anytime, string) result
(** Anytime full enumeration: explores until done or until [node_budget]
    nodes have been visited or [time_budget] seconds of monotonic
    wall-clock time have elapsed (the clock is polled every 1024 nodes,
    so the time budget is approximate). No 16-item cap — the budget is
    the guard. Errors on [m < 1] or [capacity <= 0]. *)

val branch_and_bound :
  ?node_limit:int -> m:int -> capacity:float -> bucket_cost:(float -> float) ->
  Rt_task.Task.item list -> solution
(** Same optimum with pruning; items are explored largest-first. The
    optional [node_limit] (default 50 million) guards runaway instances.
    @raise Invalid_argument if [m < 1] or [capacity <= 0].
    @raise Failure if the node limit is hit. *)

val branch_and_bound_budgeted :
  ?shared:shared -> ?node_budget:int -> ?time_budget:float -> m:int ->
  capacity:float -> bucket_cost:(float -> float) -> Rt_task.Task.item list ->
  (anytime, string) result
(** Anytime branch-and-bound: like {!branch_and_bound}, but exhausting a
    budget is not a failure — the incumbent comes back with
    [exhausted = true]. [time_budget] is monotonic wall-clock seconds
    ({!Rt_prelude.Clock}): a busy sibling domain no longer shrinks it the
    way the former CPU-time measurement did. When [shared] is given, the
    search prunes against the published bound and publishes its own
    improvements. Use this when a bounded response time matters more
    than proof of optimality (the fault-recovery paths do). Errors on
    [m < 1] or [capacity <= 0]. *)
