(** Exact solvers for select-and-partition problems.

    The problem: place each item on one of [m] identical processors or
    reject it (paying its penalty); a processor's load (weight sum) must
    stay within [capacity]; the objective is

    {v Σ_j bucket_cost(load_j)  +  Σ_rejected penalty v}

    with [bucket_cost] non-decreasing (energy of sustaining a load). Both
    solvers enumerate assignments with processor-symmetry breaking (an item
    may only open the lowest-indexed empty processor), so identical
    processors are never counted twice. [branch_and_bound] additionally
    prunes with the monotonicity bound: committed bucket energies and
    committed penalties never decrease as the remaining items are placed.

    Complexity is exponential — these are the ground-truth oracles for the
    small instances of experiment E1 and for the property tests, not
    production algorithms. *)

type solution = {
  partition : Rt_partition.Partition.t;
  rejected : Rt_task.Task.item list;
  cost : float;
}

type anytime = {
  best : solution;  (** best solution found within the budget *)
  nodes : int;  (** search-tree nodes visited *)
  exhausted : bool;
      (** [true] when a budget ran out before the search completed — the
          solution is then the incumbent, not a proven optimum *)
}
(** Result of a budgeted (anytime) search. The incumbent is seeded with
    the all-reject solution before exploration starts, so [best] is a
    feasible solution even on a zero budget. *)

val exhaustive :
  m:int -> capacity:float -> bucket_cost:(float -> float) ->
  Rt_task.Task.item list -> solution
(** Full enumeration ((m+1)^n with symmetry breaking).
    @raise Invalid_argument if [m < 1], [capacity <= 0] or [n > 16]. *)

val exhaustive_budgeted :
  ?node_budget:int -> ?time_budget:float -> m:int -> capacity:float ->
  bucket_cost:(float -> float) -> Rt_task.Task.item list ->
  (anytime, string) result
(** Anytime full enumeration: explores until done or until [node_budget]
    nodes have been visited or [time_budget] seconds of CPU time have
    elapsed (the clock is polled every 1024 nodes, so the time budget is
    approximate). No 16-item cap — the budget is the guard. Errors on
    [m < 1] or [capacity <= 0]. *)

val branch_and_bound :
  ?node_limit:int -> m:int -> capacity:float -> bucket_cost:(float -> float) ->
  Rt_task.Task.item list -> solution
(** Same optimum with pruning; items are explored largest-first. The
    optional [node_limit] (default 50 million) guards runaway instances.
    @raise Invalid_argument if [m < 1] or [capacity <= 0].
    @raise Failure if the node limit is hit. *)

val branch_and_bound_budgeted :
  ?node_budget:int -> ?time_budget:float -> m:int -> capacity:float ->
  bucket_cost:(float -> float) -> Rt_task.Task.item list ->
  (anytime, string) result
(** Anytime branch-and-bound: like {!branch_and_bound}, but exhausting a
    budget is not a failure — the incumbent comes back with
    [exhausted = true]. Use this when a bounded response time matters
    more than proof of optimality (the fault-recovery paths do). Errors
    on [m < 1] or [capacity <= 0]. *)
