(** Exact solvers for select-and-partition problems.

    The problem: place each item on one of [m] identical processors or
    reject it (paying its penalty); a processor's load (weight sum) must
    stay within [capacity]; the objective is

    {v Σ_j bucket_cost(load_j)  +  Σ_rejected penalty v}

    with [bucket_cost] non-decreasing (energy of sustaining a load). Both
    solvers enumerate assignments with processor-symmetry breaking (an item
    may only open the lowest-indexed empty processor), so identical
    processors are never counted twice. [branch_and_bound] additionally
    prunes with the monotonicity bound: committed bucket energies and
    committed penalties never decrease as the remaining items are placed.

    Complexity is exponential — these are the ground-truth oracles for the
    small instances of experiment E1 and for the property tests, not
    production algorithms. The {!shared} incumbent and the {!split} /
    {!run_subtree} pair are the hooks {!Rt_parallel} races and distributes
    these searches with; sequential callers can ignore them. *)

type solution = {
  partition : Rt_partition.Partition.t;
  rejected : Rt_task.Task.item list;
  cost : float;
}

type anytime = {
  best : solution;  (** best solution found within the budget *)
  nodes : int;  (** search-tree nodes visited *)
  exhausted : bool;
      (** [true] when a budget ran out before the search completed — the
          solution is then the incumbent, not a proven optimum *)
}
(** Result of a budgeted (anytime) search. The incumbent is seeded with
    the all-reject solution, so [best] is a feasible solution even on a
    zero budget. *)

(** {2 Shared incumbent}

    A cross-domain upper bound on the optimal cost. Any solver or
    heuristic may {!publish} the cost of a solution it actually holds;
    the branch-and-bound prune test reads the cell and additionally cuts
    subtrees whose lower bound is {e strictly worse} than the published
    value. Strictness is what keeps parallel runs deterministic: a search
    still visits every node that could tie its own best, so the solution
    it returns never depends on when a sibling's publication arrived —
    only how fast it got there does (see docs/PARALLEL.md). *)

type shared

val shared : unit -> shared
(** A fresh cell holding [infinity]. *)

val shared_best : shared -> float
(** Current published bound ([infinity] if none yet). *)

val publish : shared -> float -> unit
(** Lower the cell to [cost] if it improves it (lock-free CAS loop).
    Publish only costs of feasible solutions the caller holds. *)

(** {2 Root splitting}

    [split] enumerates a frontier of independent subtrees of the search
    in depth-first order — all leaves of subtree [i] precede those of
    subtree [i+1] — grown breadth-first until it holds at least [width]
    nodes (or the instance is exhausted). Each subtree carries private
    load/bucket state, so separate domains can {!run_subtree} them
    concurrently with no sharing beyond an optional {!shared} cell.
    Combining results by (cost, then {!subtree_index}) yields the same
    solution as the sequential search whenever every subtree completes,
    at any [width]. *)

type subtree

val split :
  m:int -> capacity:float -> bucket_cost:(float -> float) -> width:int ->
  Rt_task.Task.item list -> subtree list
(** @raise Invalid_argument if [m < 1], [capacity <= 0] or [width < 1]. *)

val subtree_index : subtree -> int
(** Position in depth-first order; the deterministic tie-break key. *)

val run_subtree :
  ?shared:shared -> ?node_budget:int -> ?deadline:float -> prune:bool ->
  subtree -> anytime
(** Explore one subtree to completion or until [node_budget] nodes (per
    subtree) or the absolute monotonic [deadline] (a {!Rt_prelude.Clock}
    instant, polled every 1024 nodes). The seed incumbent rejects every
    item the subtree's prefix has not already placed. *)

val deadline_of_budget : float -> float
(** [Rt_prelude.Clock.now () +. budget]; a non-positive or non-finite
    budget maps to an already-expired deadline. *)

(** {2 Solvers} *)

val exhaustive :
  m:int -> capacity:float -> bucket_cost:(float -> float) ->
  Rt_task.Task.item list -> solution
(** Full enumeration ((m+1)^n with symmetry breaking).
    @raise Invalid_argument if [m < 1], [capacity <= 0] or [n > 16]. *)

val exhaustive_budgeted :
  ?node_budget:int -> ?time_budget:float -> m:int -> capacity:float ->
  bucket_cost:(float -> float) -> Rt_task.Task.item list ->
  (anytime, string) result
(** Anytime full enumeration: explores until done or until [node_budget]
    nodes have been visited or [time_budget] seconds of monotonic
    wall-clock time have elapsed (the clock is polled every 1024 nodes,
    so the time budget is approximate). No 16-item cap — the budget is
    the guard. Errors on [m < 1] or [capacity <= 0]. *)

val branch_and_bound :
  ?node_limit:int -> m:int -> capacity:float -> bucket_cost:(float -> float) ->
  Rt_task.Task.item list -> solution
(** Same optimum with pruning; items are explored largest-first. The
    optional [node_limit] (default 50 million) guards runaway instances.
    @raise Invalid_argument if [m < 1] or [capacity <= 0].
    @raise Failure if the node limit is hit. *)

val branch_and_bound_budgeted :
  ?shared:shared -> ?node_budget:int -> ?time_budget:float -> m:int ->
  capacity:float -> bucket_cost:(float -> float) -> Rt_task.Task.item list ->
  (anytime, string) result
(** Anytime branch-and-bound: like {!branch_and_bound}, but exhausting a
    budget is not a failure — the incumbent comes back with
    [exhausted = true]. [time_budget] is monotonic wall-clock seconds
    ({!Rt_prelude.Clock}): a busy sibling domain no longer shrinks it the
    way the former CPU-time measurement did. When [shared] is given, the
    search prunes against the published bound and publishes its own
    improvements. Use this when a bounded response time matters more
    than proof of optimality (the fault-recovery paths do). Errors on
    [m < 1] or [capacity <= 0]. *)
