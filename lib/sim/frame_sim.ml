open Rt_power
open Rt_task
open Rt_speed
module Fc = Rt_prelude.Float_cmp

type slice = { task_id : int option; t0 : float; t1 : float; speed : float }

type proc_timeline = {
  proc_index : int;
  slices : slice list;
  proc_energy : float;
}

type t = {
  frame_length : float;
  proc : Processor.t;
  partition : Rt_partition.Partition.t;
  timelines : proc_timeline list;
  total_energy : float;
}

let idle_power_of (proc : Processor.t) =
  match proc.dormancy with
  | Processor.Dormant_enable _ -> 0.
  | Processor.Dormant_disable -> Processor.idle_power proc

let energy_of_slices ~(proc : Processor.t) slices =
  List.fold_left
    (fun acc s ->
      let dt = s.t1 -. s.t0 in
      let p =
        if s.task_id = None || Fc.exact_eq s.speed 0. then idle_power_of proc
        else Power_model.power proc.model s.speed
      in
      acc +. (dt *. p))
    0. slices

(* Walk the bucket's tasks through the plan's segments (fastest first),
   splitting tasks across segment boundaries. *)
let lay_out ~frame_length bucket (plan : Energy_rate.plan) =
  let running =
    List.filter
      (fun (s : Energy_rate.segment) -> Fc.exact_gt s.speed 0.)
      plan.segments
    |> List.map (fun (s : Energy_rate.segment) ->
           (s.speed, s.fraction *. frame_length))
  in
  let rec go t segments tasks acc =
    match (tasks, segments) with
    | [], _ -> (t, List.rev acc)
    | _ :: _, [] ->
        (* throughput matches load up to rounding; any residual cycles are
           below tolerance and dropped here — validation re-checks *)
        (t, List.rev acc)
    | (it, cycles) :: rest_tasks, (speed, seg_time) :: rest_segments ->
        if Fc.exact_le cycles (1e-12 *. frame_length) then
          go t segments rest_tasks acc
        else if Fc.exact_le seg_time (1e-12 *. frame_length) then
          go t rest_segments tasks acc
        else begin
          let need = cycles /. speed in
          let dt = Float.min need seg_time in
          let slice =
            { task_id = Some it.Task.item_id; t0 = t; t1 = t +. dt; speed }
          in
          let cycles_left = cycles -. (dt *. speed) in
          let seg_left = seg_time -. dt in
          let tasks' =
            if Fc.exact_le cycles_left (1e-12 *. frame_length) then rest_tasks
            else (it, cycles_left) :: rest_tasks
          in
          let segments' =
            if Fc.exact_le seg_left (1e-12 *. frame_length) then rest_segments
            else (speed, seg_left) :: rest_segments
          in
          go (t +. dt) segments' tasks' (slice :: acc)
        end
  in
  let tasks =
    List.map (fun (it : Task.item) -> (it, it.weight *. frame_length)) bucket
  in
  let t_end, slices = go 0. running tasks [] in
  let slices =
    if Fc.exact_lt t_end (frame_length -. (1e-12 *. frame_length)) then
      slices @ [ { task_id = None; t0 = t_end; t1 = frame_length; speed = 0. } ]
    else slices
  in
  slices

let build ~proc ~frame_length partition =
  if Fc.exact_le frame_length 0. then Error "Frame_sim.build: frame_length <= 0"
  else begin
    let items = Rt_partition.Partition.all_items partition in
    if
      List.exists
        (fun (it : Task.item) -> not (Fc.exact_eq it.item_power_factor 1.))
        items
    then Error "Frame_sim.build: non-unit power_factor unsupported"
    else begin
      let m = Rt_partition.Partition.m partition in
      let rec per_proc j acc =
        if j = m then Ok (List.rev acc)
        else begin
          let bucket = List.rev (Rt_partition.Partition.bucket partition j) in
          let u = Rt_partition.Partition.load partition j in
          match Energy_rate.optimal proc ~u with
          | None ->
              Error
                (Printf.sprintf
                   "Frame_sim.build: processor %d overloaded (load %.6g > \
                    s_max %.6g)"
                   j u (Processor.s_max proc))
          | Some plan ->
              let slices = lay_out ~frame_length bucket plan in
              let proc_energy = energy_of_slices ~proc slices in
              per_proc (j + 1) ({ proc_index = j; slices; proc_energy } :: acc)
        end
      in
      match per_proc 0 [] with
      | Error _ as e -> e
      | Ok timelines ->
          let total_energy =
            List.fold_left (fun acc tl -> acc +. tl.proc_energy) 0. timelines
          in
          Ok { frame_length; proc; partition; timelines; total_energy }
    end
  end

let validate ?eps t =
  let ( let* ) = Result.bind in
  let feps = match eps with Some e -> e | None -> 1e-6 in
  let* () =
    if List.length t.timelines = Rt_partition.Partition.m t.partition then
      Ok ()
    else Error "timeline count differs from partition size"
  in
  let check_timeline tl =
    let rec contiguous prev = function
      | [] ->
          if Rt_prelude.Float_cmp.approx_eq ~eps:feps prev t.frame_length then
            Ok ()
          else Error "timeline does not end at the frame boundary"
      | s :: rest ->
          if not (Rt_prelude.Float_cmp.approx_eq ~eps:feps s.t0 prev) then
            Error "timeline has a gap or overlap"
          else if Fc.exact_lt s.t1 (s.t0 -. feps) then Error "negative slice"
          else if
            s.task_id <> None
            && not (Processor.speed_feasible ~eps:feps t.proc s.speed)
          then Error "infeasible slice speed"
          else contiguous s.t1 rest
    in
    match tl.slices with
    | [] ->
        if Fc.exact_eq t.frame_length 0. then Ok ()
        else Error "empty timeline on a positive frame"
    | first :: _ ->
        let* () =
          if Rt_prelude.Float_cmp.approx_eq ~eps:feps first.t0 0. then Ok ()
          else Error "timeline does not start at 0"
        in
        contiguous 0. tl.slices
  in
  let rec all = function
    | [] -> Ok ()
    | tl :: rest ->
        let* () = check_timeline tl in
        all rest
  in
  let* () = all t.timelines in
  (* every task's executed cycles match its weight × frame *)
  let executed = Hashtbl.create 16 in
  List.iter
    (fun tl ->
      List.iter
        (fun s ->
          match s.task_id with
          | None -> ()
          | Some id ->
              let prev = Option.value ~default:0. (Hashtbl.find_opt executed id) in
              Hashtbl.replace executed id (prev +. ((s.t1 -. s.t0) *. s.speed)))
        tl.slices)
    t.timelines;
  let items = Rt_partition.Partition.all_items t.partition in
  let* () =
    List.fold_left
      (fun acc (it : Task.item) ->
        let* () = acc in
        let got = Option.value ~default:0. (Hashtbl.find_opt executed it.item_id) in
        let want = it.weight *. t.frame_length in
        if Rt_prelude.Float_cmp.approx_eq ~eps:feps got want then Ok ()
        else
          Error
            (Printf.sprintf "task %d executed %.9g of %.9g cycles" it.item_id
               got want))
      (Ok ()) items
  in
  let* () =
    if Hashtbl.length executed = List.length items then Ok ()
    else Error "schedule executes a task that is not in the partition"
  in
  let recomputed =
    List.fold_left
      (fun acc tl -> acc +. energy_of_slices ~proc:t.proc tl.slices)
      0. t.timelines
  in
  if Rt_prelude.Float_cmp.approx_eq ~eps:feps recomputed t.total_energy then
    Ok ()
  else Error "total_energy disagrees with the slice integral"

type injection = {
  overrun : int -> float;
  crash : int -> float option;
  speed_cap : float option;
}

let no_injection =
  { overrun = (fun _ -> 1.); crash = (fun _ -> None); speed_cap = None }

type fault_report = {
  missed : int list;
  delivered : (int * float) list;
  faulty_energy : float;
  dead_time : float;
}

let run_injected ?nominal ~inject t =
  let ( let* ) = Result.bind in
  let items = Rt_partition.Partition.all_items t.partition in
  let m = Rt_partition.Partition.m t.partition in
  let* () =
    List.fold_left
      (fun acc (it : Task.item) ->
        let* () = acc in
        let f = inject.overrun it.item_id in
        if Fc.exact_gt f 0. && Float.is_finite f then Ok ()
        else
          Error
            (Printf.sprintf "Frame_sim: overrun factor %.6g for task %d" f
               it.item_id))
      (Ok ()) items
  in
  let rec check_crashes j =
    if j = m then Ok ()
    else
      match inject.crash j with
      | None -> check_crashes (j + 1)
      | Some tc ->
          if Fc.exact_ge tc 0. && Float.is_finite tc then check_crashes (j + 1)
          else
            Error
              (Printf.sprintf "Frame_sim: crash time %.6g for processor %d" tc j)
  in
  let* () = check_crashes 0 in
  let* cap =
    match inject.speed_cap with
    | None -> Ok None
    | Some c ->
        if Fc.exact_gt c 0. && Float.is_finite c then Ok (Some c)
        else Error "Frame_sim: speed_cap must be finite and > 0"
  in
  let nominal_of =
    match nominal with
    | Some f -> f
    | None ->
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (it : Task.item) -> Hashtbl.replace tbl it.item_id it.weight)
          items;
        fun id -> Option.value ~default:0. (Hashtbl.find_opt tbl id)
  in
  let delivered = Hashtbl.create 16 in
  List.iter
    (fun (it : Task.item) -> Hashtbl.replace delivered it.item_id 0.)
    items;
  let energy = ref 0. in
  let dead = ref 0. in
  List.iter
    (fun tl ->
      let stop =
        match inject.crash tl.proc_index with
        | None -> t.frame_length
        | Some tc -> Float.min tc t.frame_length
      in
      dead := !dead +. (t.frame_length -. stop);
      List.iter
        (fun s ->
          let t1 = Float.min s.t1 stop in
          let dt = t1 -. s.t0 in
          if Fc.exact_gt dt 0. then
            match s.task_id with
            | None -> energy := !energy +. (dt *. idle_power_of t.proc)
            | Some id ->
                let actual =
                  match cap with
                  | None -> s.speed
                  | Some c -> Float.min s.speed c
                in
                let prev =
                  Option.value ~default:0. (Hashtbl.find_opt delivered id)
                in
                Hashtbl.replace delivered id (prev +. (dt *. actual));
                if Fc.exact_gt actual 0. then
                  energy := !energy +. (dt *. Power_model.power t.proc.model actual))
        tl.slices)
    t.timelines;
  let got id = Option.value ~default:0. (Hashtbl.find_opt delivered id) in
  let missed =
    List.filter_map
      (fun (it : Task.item) ->
        let want =
          nominal_of it.item_id *. inject.overrun it.item_id *. t.frame_length
        in
        if Fc.lt (got it.item_id) want then Some it.item_id else None)
      items
  in
  Ok
    {
      missed;
      delivered = List.map (fun (it : Task.item) -> (it.item_id, got it.item_id)) items;
      faulty_energy = !energy;
      dead_time = !dead;
    }

let glyph_of_id id =
  let alphabet = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ" in
  alphabet.[id mod String.length alphabet]

let gantt t =
  let segments =
    List.concat_map
      (fun tl ->
        List.filter_map
          (fun s ->
            match s.task_id with
            | None -> None
            | Some id ->
                Some
                  {
                    Gantt.t0 = s.t0;
                    t1 = s.t1;
                    row = Printf.sprintf "P%d" tl.proc_index;
                    glyph = glyph_of_id id;
                  })
          tl.slices)
      t.timelines
  in
  Gantt.render ~horizon:t.frame_length segments
