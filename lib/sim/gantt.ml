module Fc = Rt_prelude.Float_cmp

type segment = { t0 : float; t1 : float; row : string; glyph : char }

let render ?(width = 72) ~horizon segments =
  if Fc.exact_le horizon 0. then invalid_arg "Gantt.render: horizon <= 0";
  if width < 8 then invalid_arg "Gantt.render: width too small";
  List.iter
    (fun s ->
      if
        Fc.exact_lt s.t0 (-1e-9)
        || Fc.exact_gt s.t1 (horizon *. (1. +. 1e-9))
        || Fc.exact_lt s.t1 s.t0
      then
        invalid_arg "Gantt.render: segment outside horizon")
    segments;
  let rows = ref [] in
  List.iter
    (fun s -> if not (List.mem_assoc s.row !rows) then
        rows := (s.row, (Bytes.make width '.', Array.make width (-1))) :: !rows)
    segments;
  let rows_in_order = List.rev !rows in
  let col t =
    let c = int_of_float (t /. horizon *. float_of_int width) in
    max 0 (min (width - 1) c)
  in
  (* cells_of.(i) = cells currently painted by segment i; a later segment
     may only steal a cell whose owner keeps at least one other cell, so
     no non-empty segment is ever erased entirely (short slices stay
     visible next to long neighbours) *)
  let cells_of = Array.make (List.length segments) 0 in
  List.iteri
    (fun i s ->
      let line, owner = List.assoc s.row rows_in_order in
      if Fc.exact_gt s.t1 s.t0 then
        for c = col s.t0 to col (s.t1 -. (1e-12 *. horizon)) do
          let prev = owner.(c) in
          if prev < 0 || cells_of.(prev) > 1 then begin
            if prev >= 0 then cells_of.(prev) <- cells_of.(prev) - 1;
            owner.(c) <- i;
            cells_of.(i) <- cells_of.(i) + 1;
            Bytes.set line c s.glyph
          end
        done)
    segments;
  let rows_in_order = List.map (fun (r, (line, _)) -> (r, line)) rows_in_order in
  let label_width =
    List.fold_left (fun acc (r, _) -> max acc (String.length r)) 0 rows_in_order
  in
  let pad r = r ^ String.make (label_width - String.length r) ' ' in
  let body =
    List.map
      (fun (r, line) -> Printf.sprintf "%s |%s|" (pad r) (Bytes.to_string line))
      rows_in_order
  in
  let scale =
    Printf.sprintf "%s  0%s%g" (String.make label_width ' ')
      (String.make (max 1 (width - 1)) ' ')
      horizon
  in
  String.concat "\n" (body @ [ scale ])
