(** ASCII Gantt rendering of schedules (for examples and debugging). *)

type segment = {
  t0 : float;
  t1 : float;
  row : string;  (** row label, e.g. a processor or task name *)
  glyph : char;  (** character used to fill the segment *)
}

val render : ?width:int -> horizon:float -> segment list -> string
(** Render segments onto a [width]-column timeline (default 72) spanning
    [\[0, horizon\]]. Rows appear in first-occurrence order; overlapping
    segments on a row are drawn last-writer-wins, except that a segment
    never erases another segment's {e last} remaining cell — every
    non-empty segment keeps at least one visible cell, so short slices
    stay visible next to long neighbours (unless more segments than cells
    compete for the same span). A scale line with the horizon is appended.
    @raise Invalid_argument on non-positive horizon or width, or segments
    outside the horizon. *)
