module Fc = Rt_prelude.Float_cmp

open Rt_power
open Rt_task

type miss = { task_id : int; deadline : float; late_by : float }
type gap = { g0 : float; g1 : float }

type outcome = {
  horizon : float;
  misses : miss list;
  busy_time : float;
  gaps : gap list;
  exec_energy : float;
  idle_energy_awake : float;
  idle_energy_sleep : float;
  idle_energy_proc : float;
  preemptions : int;
}

type job = {
  jtask : int;
  release : float;
  deadline : float;
  mutable remaining : float;  (** execution time left at the given speed *)
}

type exec_slice = { x0 : float; x1 : float; xtask : int }

type injection = {
  overrun : int -> float;
  crash_at : float option;
  speed_cap : float option;
}

let no_injection =
  { overrun = (fun _ -> 1.); crash_at = None; speed_cap = None }

let feasible_speed tasks = Taskset.total_utilization tasks

let build_jobs ?(overrun = fun _ -> 1.) ~horizon ~speed tasks =
  List.concat_map
    (fun (t : Task.periodic) ->
      let p = float_of_int t.period in
      let exec = float_of_int t.cycles *. overrun t.id /. speed in
      let rec go k acc =
        let release = float_of_int k *. p in
        if Fc.exact_ge release (horizon -. 1e-9) then List.rev acc
        else
          go (k + 1)
            ({ jtask = t.id; release; deadline = release +. p; remaining = exec }
            :: acc)
      in
      go 0 [])
    tasks

(* Core event loop. [exec_until <= horizon] bounds *execution* (a crashed
   processor stops there and consumes nothing afterwards); deadline-miss
   accounting always runs against the full [horizon]. *)
let simulate_jobs ~horizon ~exec_until ~(proc : Processor.t) ~speed jobs =
  let future =
    List.sort
      (fun a b ->
        let c = Float.compare a.release b.release in
        if c <> 0 then c else compare a.jtask b.jtask)
      jobs
  in
  let pick ready =
    (* earliest deadline first; ties by task id then release for determinism *)
    List.fold_left
      (fun best j ->
        match best with
        | None -> Some j
        | Some b ->
            if
              (* exact tie-break: tolerance here would break the total order *)
              Fc.exact_lt j.deadline b.deadline
              || (Fc.exact_eq j.deadline b.deadline && j.jtask < b.jtask)
            then Some j
            else best)
      None ready
  in
  let slices = ref [] in
  let gaps = ref [] in
  let misses = ref [] in
  let busy = ref 0. in
  let preemptions = ref 0 in
  let rec loop t ready future =
    if Fc.exact_ge t (exec_until -. 1e-9) then
      (* no further execution possible: account every unfinished job whose
         deadline falls within the horizon (including jobs released after a
         crash — the processor is gone, so they can never run) *)
      List.iter
        (fun j ->
          if
            Fc.exact_gt j.remaining 1e-9
            && Fc.exact_le j.deadline (horizon +. 1e-9)
          then
            misses :=
              {
                task_id = j.jtask;
                deadline = j.deadline;
                late_by = horizon -. j.deadline;
              }
              :: !misses)
        (ready @ future)
    else
      match (pick ready, future) with
      | None, [] ->
          if Fc.exact_gt (exec_until -. t) 1e-9 then
            gaps := { g0 = t; g1 = exec_until } :: !gaps
      | None, next :: _ ->
          let t' = Float.min exec_until next.release in
          if Fc.exact_gt (t' -. t) 1e-9 then gaps := { g0 = t; g1 = t' } :: !gaps;
          let arrived, future' =
            List.partition (fun j -> Fc.exact_le j.release (t' +. 1e-12)) future
          in
          loop t' (arrived @ ready) future'
      | Some j, _ ->
          let next_release =
            match future with [] -> Float.infinity | n :: _ -> n.release
          in
          let finish = t +. j.remaining in
          let t' = Float.min (Float.min finish next_release) exec_until in
          let ran = t' -. t in
          if Fc.exact_gt ran 0. then begin
            busy := !busy +. ran;
            slices := { x0 = t; x1 = t'; xtask = j.jtask } :: !slices;
            j.remaining <- j.remaining -. ran
          end;
          let completed = Fc.exact_le j.remaining 1e-9 in
          if completed && Fc.exact_gt t' (j.deadline +. 1e-9) then
            misses :=
              {
                task_id = j.jtask;
                deadline = j.deadline;
                late_by = t' -. j.deadline;
              }
              :: !misses;
          let ready' =
            (* lint: allow-phys-cmp "jobs are mutable records; physical identity is the intended key" *)
            if completed then List.filter (fun x -> x != j) ready else ready
          in
          let arrived, future' =
            List.partition (fun x -> Fc.exact_le x.release (t' +. 1e-12)) future
          in
          (* a preemption happens when the job is unfinished and a newly
             arrived job takes over *)
          let ready'' = arrived @ ready' in
          (if (not completed) && Fc.exact_lt t' exec_until then
             match pick ready'' with
             (* lint: allow-phys-cmp "jobs are mutable records; physical identity is the intended key" *)
             | Some nxt when nxt != j -> incr preemptions
             | _ -> ());
          loop t' ready'' future'
  in
  let arrived, future' =
    List.partition (fun j -> Fc.exact_le j.release 1e-12) future
  in
  loop 0. arrived future';
  let gaps = List.rev !gaps in
  let idle_total =
    List.fold_left (fun acc g -> acc +. (g.g1 -. g.g0)) 0. gaps
  in
  let p_idle = Processor.idle_power proc in
  let idle_energy_sleep =
    List.fold_left
      (fun acc g ->
        acc +. Rt_speed.Procrastinate.idle_energy proc ~interval:(g.g1 -. g.g0))
      0. gaps
  in
  let idle_energy_proc =
    if Fc.exact_eq idle_total 0. then 0.
    else Rt_speed.Procrastinate.idle_energy proc ~interval:idle_total
  in
  let exec_energy =
    if Fc.exact_eq !busy 0. then 0.
    else !busy *. Power_model.power proc.model speed
  in
  let outcome =
    {
      horizon;
      misses = List.rev !misses;
      busy_time = !busy;
      gaps;
      exec_energy;
      idle_energy_awake = p_idle *. idle_total;
      idle_energy_sleep;
      idle_energy_proc;
      preemptions = !preemptions;
    }
  in
  (outcome, List.rev !slices)

let simulate ~horizon ~proc ~speed tasks =
  let jobs = build_jobs ~horizon ~speed tasks in
  simulate_jobs ~horizon ~exec_until:horizon ~proc ~speed jobs

let prepare ?horizon ~proc ~speed tasks =
  let ( let* ) = Result.bind in
  let* () =
    match Taskset.well_formed_periodic tasks with
    | Ok () -> Ok ()
    | Error e -> Error ("Edf_sim: " ^ e)
  in
  let* horizon =
    match horizon with
    | Some h -> if Fc.exact_gt h 0. then Ok h else Error "Edf_sim: horizon <= 0"
    | None -> (
        match tasks with
        | [] -> Error "Edf_sim: empty task set needs an explicit horizon"
        | _ -> (
            match Taskset.hyper_period_checked tasks with
            | Ok hp -> Ok (float_of_int hp)
            | Error e -> Error ("Edf_sim: " ^ e)))
  in
  let* () =
    if tasks = [] then Ok ()
    else if Fc.exact_le speed 0. then Error "Edf_sim: speed <= 0"
    else if not (Processor.speed_feasible proc speed) then
      Error
        (Printf.sprintf "Edf_sim: speed %.6g not available on this processor"
           speed)
    else Ok ()
  in
  Ok horizon

let run ?horizon ~proc ~speed tasks =
  Result.map
    (fun horizon -> fst (simulate ~horizon ~proc ~speed tasks))
    (prepare ?horizon ~proc ~speed tasks)

let run_injected ?horizon ~proc ~speed ~inject tasks =
  let ( let* ) = Result.bind in
  let* horizon = prepare ?horizon ~proc ~speed tasks in
  let* () =
    List.fold_left
      (fun acc (t : Task.periodic) ->
        let* () = acc in
        let f = inject.overrun t.id in
        if Fc.exact_gt f 0. && Float.is_finite f then Ok ()
        else
          Error
            (Printf.sprintf "Edf_sim: overrun factor %.6g for task %d" f t.id))
      (Ok ()) tasks
  in
  let* eff_speed =
    match inject.speed_cap with
    | None -> Ok speed
    | Some c ->
        if Fc.exact_gt c 0. && Float.is_finite c then Ok (Float.min speed c)
        else Error "Edf_sim: speed_cap must be finite and > 0"
  in
  let* exec_until =
    match inject.crash_at with
    | None -> Ok horizon
    | Some tc ->
        if Fc.exact_ge tc 0. && Float.is_finite tc then
          Ok (Float.min tc horizon)
        else Error "Edf_sim: crash time must be finite and >= 0"
  in
  match tasks with
  | [] -> run ~horizon ~proc ~speed tasks
  | _ ->
      let jobs =
        build_jobs ~overrun:inject.overrun ~horizon ~speed:eff_speed tasks
      in
      Ok
        (fst (simulate_jobs ~horizon ~exec_until ~proc ~speed:eff_speed jobs))

let gantt ?horizon ~proc ~speed tasks =
  Result.map
    (fun horizon ->
      let _, slices = simulate ~horizon ~proc ~speed tasks in
      let segments =
        List.map
          (fun s ->
            {
              Gantt.t0 = s.x0;
              t1 = s.x1;
              row = Printf.sprintf "τ%d" s.xtask;
              glyph = '#';
            })
          slices
      in
      Gantt.render ~horizon segments)
    (prepare ?horizon ~proc ~speed tasks)
