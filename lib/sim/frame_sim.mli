(** Concrete frame schedules and their validation.

    The optimization layers reason about abstract "energy rates"; this
    simulator turns a partition plus per-processor speed plans into a
    concrete timeline — which task runs when, at which speed, on which
    processor — and independently re-checks everything the optimizer
    promised: all accepted tasks finish within the frame, all speeds are
    feasible, and the energy adds up. Every algorithm's output in the test
    suite round-trips through [build] + [validate]. *)

type slice = {
  task_id : int option;  (** [None] = idle/sleep tail *)
  t0 : float;
  t1 : float;
  speed : float;
}

type proc_timeline = {
  proc_index : int;
  slices : slice list;  (** contiguous from 0, non-overlapping, sorted *)
  proc_energy : float;
}

type t = {
  frame_length : float;
  proc : Rt_power.Processor.t;
  partition : Rt_partition.Partition.t;  (** the assignment being realized *)
  timelines : proc_timeline list;
  total_energy : float;
}

val build :
  proc:Rt_power.Processor.t -> frame_length:float -> Rt_partition.Partition.t ->
  (t, string) result
(** Lay out each processor's bucket sequentially (in bucket order) using the
    optimal {!Rt_speed.Energy_rate} plan for the bucket's load: tasks run at
    the plan's speeds fastest-first, each task's cycles split across plan
    segments as needed, and the idle/sleep tail closes the frame. Errors if
    some bucket's load exceeds [s_max] (no feasible plan) or if any item
    has a non-unit [power_factor] (heterogeneous power lives in
    {!Rt_partition.Hetero}, not here). *)

val validate : ?eps:float -> t -> (unit, string) result
(** Independent re-check of a built schedule: slices tile [\[0, frame\]]
    without overlap; every task present in a slice completes exactly its
    cycles (weight × frame) across its slices; speeds are feasible;
    [total_energy] equals the energy integrated from the slices. *)

val energy_of_slices : proc:Rt_power.Processor.t -> slice list -> float
(** Integrate energy directly from a timeline (idle slices charged at the
    dormancy-appropriate idle power: leakage when dormant-disable, zero
    when dormant-enable). *)

type injection = {
  overrun : int -> float;
      (** per-task WCEC inflation factor (1.0 = nominal); must be finite
          and positive for every partitioned item *)
  crash : int -> float option;
      (** per-{e processor} crash time: processor [j] executes nothing
          after [crash j]; [None] = healthy *)
  speed_cap : float option;
      (** DVS derating: every task slice actually runs at
          [min planned_speed cap] — planned speeds above the cap silently
          under-deliver cycles *)
}
(** A fault scenario replayed against a built schedule. Build these by
    hand or from a {!Rt_fault.Fault.scenario}. *)

val no_injection : injection
(** The identity injection: replaying it reports no misses (for a
    schedule that passes {!validate}) and the nominal energy. *)

type fault_report = {
  missed : int list;
      (** ids whose delivered cycles fall short of
          [nominal · overrun · frame] (tolerant comparison) *)
  delivered : (int * float) list;  (** cycles actually executed, per task *)
  faulty_energy : float;
      (** energy of the degraded execution: task slices at their actual
          (possibly capped) speed, idle slices at the dormancy-appropriate
          idle power, nothing after a crash *)
  dead_time : float;
      (** total processor-time lost to crashes, [Σ_j (frame − stop_j)] *)
}

val run_injected :
  ?nominal:(int -> float) -> inject:injection -> t ->
  (fault_report, string) result
(** Replay a built schedule under a fault scenario. Each processor
    executes its planned slices until its crash time (if any); task
    slices deliver [dt × min(speed, cap)] cycles. Task [id] needs
    [nominal id × overrun id × frame_length] cycles to finish —
    [nominal] defaults to the partitioned item's weight, but callers
    verifying a {e degraded} plan whose items already carry inflated
    weights must pass the original weights here, otherwise the overrun
    would be double-counted. Errors on a non-finite/non-positive overrun
    factor or speed cap, or a non-finite/negative crash time. *)

val gantt : t -> string
(** ASCII Gantt chart, one row per processor; digits/letters identify
    tasks, ['.'] idle. *)
