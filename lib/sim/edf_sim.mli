(** Event-driven partitioned-EDF simulation over a hyper-period.

    Validates the periodic side of the story concretely: a processor that
    runs its assigned periodic tasks under preemptive EDF at a constant
    execution speed [s] meets every deadline iff the assigned utilization
    is at most [s] (Liu & Layland, speed-scaled). The simulator executes
    the job set job-by-job, reports misses, and integrates energy —
    including what happens in the idle gaps, which is where the
    procrastination experiments look.

    The execution speed is constant per processor (what the partitioned
    algorithms emit for ideal processors; for discrete-level processors
    the frame simulator exercises the two-level split instead). *)

type miss = { task_id : int; deadline : float; late_by : float }

type gap = { g0 : float; g1 : float }

type outcome = {
  horizon : float;  (** simulated span (one hyper-period by default) *)
  misses : miss list;  (** empty iff feasible *)
  busy_time : float;
  gaps : gap list;  (** maximal idle intervals, in time order *)
  exec_energy : float;  (** busy_time × P(speed) *)
  idle_energy_awake : float;
      (** idle charged at leakage power, i.e. never sleeping *)
  idle_energy_sleep : float;
      (** idle charged gap-by-gap at [min(leakage·gap, E_sw)] — the
          dormant-enable policy without procrastination *)
  idle_energy_proc : float;
      (** idle charged as one coalesced interval — idealized
          procrastination (Algorithm PROC's upper bound on savings) *)
  preemptions : int;
}

type injection = {
  overrun : int -> float;
      (** per-task WCEC inflation factor (1.0 = nominal); must be finite
          and positive for every task in the set *)
  crash_at : float option;
      (** processor dies at this time: no execution afterwards, but
          deadline accounting still runs to the full horizon *)
  speed_cap : float option;
      (** DVS derating: the processor cannot exceed this speed, so jobs
          execute at [min speed cap]. The cap need not be a feasible DVS
          level — it models hardware throttling below the commanded
          level. *)
}
(** A fault scenario for one processor, as seen by the simulator. Build
    these by hand or from a {!Rt_fault.Fault.scenario}. *)

val no_injection : injection
(** The identity injection: [run_injected ~inject:no_injection] behaves
    exactly like {!run}. *)

val run :
  ?horizon:float -> proc:Rt_power.Processor.t -> speed:float ->
  Rt_task.Task.periodic list -> (outcome, string) result
(** Simulate the tasks on one processor at constant [speed]. [horizon]
    defaults to the hyper-period (in ticks, as a float). Errors on an
    infeasible speed for the processor, [speed <= 0] with a non-empty task
    set, duplicate task ids, a non-positive horizon, or hyper-period
    overflow. A task set that merely {e overloads} the processor is not an
    error — the misses are reported in the outcome. *)

val run_injected :
  ?horizon:float -> proc:Rt_power.Processor.t -> speed:float ->
  inject:injection -> Rt_task.Task.periodic list ->
  (outcome, string) result
(** {!run} under a fault scenario: execution times are inflated by
    [inject.overrun], the effective speed is clamped to
    [inject.speed_cap], and no job executes past [inject.crash_at].
    The {e commanded} [speed] must still be feasible for the processor
    (same validation as {!run}); the derated effective speed need not
    be, since derating models hardware misbehaviour. Additional errors:
    a non-finite or non-positive overrun factor for some task, a
    non-finite or negative crash time, or a non-finite or non-positive
    speed cap. *)

val feasible_speed : Rt_task.Task.periodic list -> float
(** The minimum constant speed that meets all deadlines under EDF: the
    total utilization (0. for an empty set). *)

val gantt :
  ?horizon:float -> proc:Rt_power.Processor.t -> speed:float ->
  Rt_task.Task.periodic list -> (string, string) result
(** Render the simulated schedule as an ASCII chart, one row per task. *)
