module Fc = Rt_prelude.Float_cmp
module Clock = Rt_prelude.Clock
module Job = Rt_online.Job
module Admission = Rt_online.Admission
module Exec = Rt_online.Admission.Exec
module Fault = Rt_fault.Fault
module Degrade = Rt_fault.Degrade

type watchdog = { latency_budget : float; recover_after : int }
type overload = { window : float; enter_above : float; exit_below : float }

type config = {
  policy : Admission.policy;
  m : int;
  queue_capacity : int option;
  decision_rate : float option;
  watchdog : watchdog option;
  degraded_theta : float;
  overload : overload option;
  faults : Fault.timed list;
  yds_bound : bool;
}

let default_config =
  {
    policy = Admission.Admit_all;
    m = 1;
    queue_capacity = None;
    decision_rate = None;
    watchdog = None;
    degraded_theta = 0.;
    overload = None;
    faults = [];
    yds_bound = false;
  }

type report = {
  outcome : Admission.outcome;
  seen : int;
  shed : int;
  replan_shed : int;
  declined : int;
  tier_decisions : int array;
  tier_wall : float array;
  max_latency : float;
  p99_latency : float;
  overload_time : float;
  incidents : Incident.t list;
  lower_bound : float;
  yds_energy : float option;
}

let bind r k = match r with Error _ as e -> e | Ok v -> k v

let validate_config cfg =
  let err fmt = Printf.ksprintf (fun msg -> Error (Admission.Invalid msg)) fmt in
  let ( let* ) = bind in
  let* () =
    match cfg.queue_capacity with
    | Some c when c < 0 -> err "serve: queue capacity %d must be >= 0" c
    | _ -> Ok ()
  in
  let* () =
    match cfg.decision_rate with
    | Some r when (not (Float.is_finite r)) || Fc.exact_le r 0. ->
        err "serve: decision rate %.6g must be finite and > 0" r
    | _ -> Ok ()
  in
  let* () =
    match cfg.watchdog with
    | Some w
      when (not (Float.is_finite w.latency_budget))
           || Fc.exact_le w.latency_budget 0. ->
        err "serve: watchdog latency budget %.6g must be finite and > 0"
          w.latency_budget
    | Some w when w.recover_after < 1 ->
        err "serve: watchdog recover_after %d must be >= 1" w.recover_after
    | _ -> Ok ()
  in
  let* () =
    if
      (not (Float.is_finite cfg.degraded_theta))
      || Fc.exact_lt cfg.degraded_theta 0.
    then err "serve: degraded theta %.6g must be finite and >= 0"
        cfg.degraded_theta
    else Ok ()
  in
  let* () =
    match cfg.overload with
    | Some o when (not (Float.is_finite o.window)) || Fc.exact_le o.window 0.
      ->
        err "serve: overload window %.6g must be finite and > 0" o.window
    | Some o
      when (not (Float.is_finite o.enter_above))
           || (not (Float.is_finite o.exit_below))
           || Fc.exact_lt o.exit_below 0.
           || Fc.exact_gt o.exit_below o.enter_above ->
        err "serve: overload thresholds must satisfy 0 <= exit %.6g <= enter \
             %.6g"
          o.exit_below o.enter_above
    | _ -> Ok ()
  in
  match Fault.validate_timed ~m:cfg.m cfg.faults with
  | Error msg -> Error (Admission.Invalid msg)
  | Ok () -> Ok ()

let run ~proc ~config source =
  bind (validate_config config) @@ fun () ->
  bind (Exec.create ~proc ~m:config.m) @@ fun exec ->
  let s_max0 = Exec.speed_cap exec in
  let faults = ref (Fault.by_time config.faults) in
  let tier = ref Incident.Exact in
  let streak = ref 0 in
  let incidents = ref [] in
  let incident i = incidents := i :: !incidents in
  (* ingress queue: a two-stack FIFO so push and pop are amortized O(1) *)
  let q_front = ref [] and q_back = ref [] and q_len = ref 0 in
  let q_push j =
    q_back := j :: !q_back;
    incr q_len
  in
  let q_peek () =
    (match !q_front with
    | [] ->
        q_front := List.rev !q_back;
        q_back := []
    | _ -> ());
    match !q_front with [] -> None | j :: _ -> Some j
  in
  let q_pop () =
    match q_peek () with
    | None -> None
    | Some j ->
        q_front := List.tl !q_front;
        decr q_len;
        Some j
  in
  let q_to_list () = !q_front @ List.rev !q_back in
  let q_set js =
    q_front := js;
    q_back := [];
    q_len := List.length js
  in
  (* sliding-window offered load *)
  let win =
    (Queue.create () : (float * float) Queue.t)
    [@rt.domain_safe
      "created here and private to this [run] invocation; run_sharded's \
       cross-domain tasks each build their own engine state inside the \
       task, nothing is shared between shards"]
  in
  let win_sum = ref 0. in
  let overloaded = ref false in
  let overload_since = ref 0. in
  let overload_time = ref 0. in
  (* decision-latency statistics *)
  let lat = ref (Array.make 1024 0.) in
  let lat_n = ref 0 in
  let push_lat x =
    let buf =
      (!lat)
      [@rt.domain_safe
        "the latency buffer is private to this [run] invocation, like \
         every other piece of engine state"]
    in
    if !lat_n = Array.length buf then begin
      let bigger = Array.make (2 * Array.length buf) 0. in
      Array.blit buf 0 bigger 0 !lat_n;
      lat := bigger
    end;
    let buf =
      (!lat)
      [@rt.domain_safe "as above: single-invocation private state"]
    in
    buf.(!lat_n) <- x;
    incr lat_n
  in
  let max_lat = ref 0. in
  let tier_decisions = Array.make 3 0 in
  let tier_wall = Array.make 3 0. in
  let seen = ref 0 in
  let shed_count = ref 0 in
  let replan_shed = ref 0 in
  let lower = ref 0. in
  let admitted_jobs = ref [] in
  let decision_clock = ref 0. in
  (* one-job lookahead on the source *)
  let peeked = ref None in
  let source_done = ref false in
  let peek_arrival () =
    match !peeked with
    | Some _ as s -> Ok s
    | None ->
        if !source_done then Ok None
        else begin
          match Source.next source with
          | Error msg -> Error (Admission.Invalid ("serve: source: " ^ msg))
          | Ok None ->
              source_done := true;
              Ok None
          | Ok (Some j) ->
              peeked := Some j;
              Ok (Some j)
        end
  in
  let capacity_now () =
    float_of_int (List.length (Exec.live exec)) *. Exec.speed_cap exec
  in
  let offered_load_update ~at cycles =
    match config.overload with
    | None -> ()
    | Some ov ->
        Queue.push (at, cycles) win;
        win_sum := !win_sum +. cycles;
        let cutoff = at -. ov.window in
        let rec expire () =
          match Queue.peek_opt win with
          | Some (t, c) when Fc.exact_lt t cutoff ->
              ignore (Queue.pop win);
              win_sum := !win_sum -. c;
              expire ()
          | _ -> ()
        in
        expire ();
        let denom = ov.window *. capacity_now () in
        let offered =
          if Fc.exact_gt denom 0. then !win_sum /. denom else Float.infinity
        in
        if (not !overloaded) && Fc.exact_gt offered ov.enter_above then begin
          overloaded := true;
          overload_since := at;
          incident (Incident.Overload_on { at; offered })
        end
        else if !overloaded && Fc.exact_lt offered ov.exit_below then begin
          overloaded := false;
          overload_time := !overload_time +. (at -. !overload_since);
          incident (Incident.Overload_off { at; offered })
        end
  in
  let decide_tiered j =
    let t0 = Clock.now () in
    let result =
      match !tier with
      | Incident.Exact -> Exec.decide exec ~policy:config.policy j
      | Incident.Threshold ->
          Exec.decide_cheap exec ~theta:config.degraded_theta j
      | Incident.Admit_none ->
          bind (Exec.reject exec j) (fun () -> Ok Admission.Declined)
    in
    let dt = Clock.elapsed ~since:t0 in
    let idx = Incident.tier_index !tier in
    tier_decisions.(idx) <- tier_decisions.(idx) + 1;
    tier_wall.(idx) <- tier_wall.(idx) +. dt;
    push_lat dt;
    if Fc.exact_gt dt !max_lat then max_lat := dt;
    (match config.watchdog with
    | None -> ()
    | Some wd ->
        let at = Exec.now exec in
        if Fc.exact_gt dt wd.latency_budget then begin
          streak := 0;
          match Incident.next_down !tier with
          | None -> ()
          | Some worse ->
              incident
                (Incident.Tier_down
                   { at; from_ = !tier; to_ = worse; latency = dt });
              tier := worse
        end
        else begin
          incr streak;
          if !streak >= wd.recover_after then
            match Incident.next_up !tier with
            | None -> ()
            | Some better ->
                streak := 0;
                incident (Incident.Tier_up { at; from_ = !tier; to_ = better });
                tier := better
        end);
    bind result (fun d ->
        (match d with
        | Admission.Admitted when config.yds_bound ->
            admitted_jobs := j :: !admitted_jobs
        | _ -> ());
        Ok ())
  in
  let penalty_rate (j : Job.t) = j.penalty /. j.cycles in
  let shed_overflow ~at =
    match config.queue_capacity with
    | None -> Ok ()
    | Some cap ->
        if !q_len <= cap then Ok ()
        else begin
          let all = q_to_list () in
          let excess = !q_len - cap in
          let order =
            List.stable_sort
              (fun (a : Job.t) (b : Job.t) ->
                let c = Float.compare (penalty_rate a) (penalty_rate b) in
                if c <> 0 then c else compare a.id b.id)
              all
          in
          let rec take k = function
            | [] -> []
            | j :: tl -> if k = 0 then [] else j :: take (k - 1) tl
          in
          let drops = take excess order in
          let dropped = Hashtbl.create 16 in
          let result =
            List.fold_left
              (fun acc (j : Job.t) ->
                bind acc (fun () ->
                    Hashtbl.replace dropped j.id ();
                    incr shed_count;
                    incident
                      (Incident.Shed
                         { at; job_id = j.id; rate = penalty_rate j });
                    Exec.reject exec j))
              (Ok ()) drops
          in
          q_set
            (List.filter
               (fun (j : Job.t) -> not (Hashtbl.mem dropped j.id))
               all);
          result
        end
  in
  let replan_proc ~at p =
    let cap = Exec.speed_cap exec in
    let d = Exec.density_of exec ~proc:p ~extra:[] in
    if Fc.leq d cap then ()
    else begin
      let rjs =
        List.map
          (fun ((j : Job.t), remaining) ->
            {
              Degrade.rj_id = j.id;
              rj_remaining = remaining;
              rj_deadline = j.deadline;
              rj_penalty = j.penalty;
            })
          (Exec.residuals exec ~proc:p)
      in
      let shed_ids = Degrade.shed_online ~now:(Exec.now exec) ~cap rjs in
      List.iter
        (fun id ->
          match Exec.remove_active exec ~id with
          | None -> ()
          | Some (j, _remaining) ->
              Exec.drop_admitted exec j;
              incr replan_shed)
        shed_ids;
      if shed_ids <> [] then
        incident (Incident.Replanned { at; shed = shed_ids; moved = [] })
    end
  in
  let replan_all ~at = List.iter (replan_proc ~at) (Exec.live exec) in
  let rehome ~at orphans =
    let orphans =
      List.sort
        (fun ((a : Job.t), _) ((b : Job.t), _) -> compare a.id b.id)
        orphans
    in
    let cap = Exec.speed_cap exec in
    let moved = ref [] and dropped = ref [] in
    let result =
      List.fold_left
        (fun acc ((j : Job.t), remaining) ->
          bind acc (fun () ->
              let extra = [ (remaining, j.deadline) ] in
              let best =
                List.fold_left
                  (fun best p ->
                    let d = Exec.density_of exec ~proc:p ~extra in
                    if Fc.leq d cap then begin
                      match best with
                      | Some (_, bd) when Fc.leq bd d -> best
                      | _ -> Some (p, d)
                    end
                    else best)
                  None (Exec.live exec)
              in
              match best with
              | Some (p, _) ->
                  bind (Exec.place exec ~proc:p (j, remaining)) (fun () ->
                      moved := j.id :: !moved;
                      Ok ())
              | None ->
                  Exec.drop_admitted exec j;
                  incr replan_shed;
                  dropped := j.id :: !dropped;
                  Ok ()))
        (Ok ()) orphans
    in
    bind result (fun () ->
        if !moved <> [] || !dropped <> [] then
          incident
            (Incident.Replanned
               { at; shed = List.rev !dropped; moved = List.rev !moved });
        Ok ())
  in
  let apply_fault (e : Fault.timed) =
    bind (Exec.advance_to exec ~until:e.at) (fun () ->
        let at = Exec.now exec in
        incident (Incident.Fault_struck { at; fault = e.fault });
        match e.fault with
        | Fault.Speed_derate { factor } ->
            let cap' = Float.min (Exec.speed_cap exec) (factor *. s_max0) in
            bind (Exec.set_speed_cap exec cap') (fun () ->
                replan_all ~at;
                Ok ())
        | Fault.Proc_crash { proc = p; at = _ } ->
            if List.mem p (Exec.live exec) then
              rehome ~at (Exec.kill exec ~proc:p)
            else Ok ()
        | Fault.Wcec_overrun { task_id; factor } ->
            ignore (Exec.inflate exec ~id:task_id ~factor);
            replan_all ~at;
            Ok ())
  in
  let handle_arrival (j : Job.t) =
    peeked := None;
    incr seen;
    lower := !lower +. Admission.job_bound ~proc j;
    offered_load_update ~at:j.arrival j.cycles;
    match config.decision_rate with
    | None ->
        bind (Exec.advance_to exec ~until:j.arrival) (fun () ->
            decide_tiered j)
    | Some _ ->
        q_push j;
        shed_overflow ~at:j.arrival
  in
  let handle_decision () =
    match (config.decision_rate, q_pop ()) with
    | Some r, Some j ->
        let t_dec = Float.max j.Job.arrival !decision_clock in
        decision_clock := t_dec +. (1. /. r);
        bind (Exec.advance_to exec ~until:t_dec) (fun () -> decide_tiered j)
    | _ ->
        Error (Admission.Invalid "serve: internal: stray decision event")
  in
  let next_decision_time () =
    match (config.decision_rate, q_peek ()) with
    | Some _, Some j -> Some (Float.max j.Job.arrival !decision_clock)
    | _ -> None
  in
  (* the event loop: earliest of (pending fault, queued decision, next
     arrival) wins; ties strike the fault first, then decide, then admit
     the arrival under the post-fault regime *)
  let le a b =
    match (a, b) with
    | None, _ -> false
    | Some _, None -> true
    | Some x, Some y -> Fc.exact_le x y
  in
  let rec loop () =
    bind (peek_arrival ()) @@ fun next_arr ->
    let t_arr = Option.map (fun (j : Job.t) -> j.arrival) next_arr in
    let t_dec = next_decision_time () in
    let t_fault =
      match !faults with [] -> None | e :: _ -> Some e.Fault.at
    in
    match (t_fault, t_dec, t_arr) with
    | None, None, None -> Ok ()
    | _ ->
        if le t_fault t_dec && le t_fault t_arr then begin
          match !faults with
          | [] -> Ok ()
          | e :: tl ->
              faults := tl;
              bind (apply_fault e) loop
        end
        else if le t_dec t_arr then bind (handle_decision ()) loop
        else begin
          match next_arr with
          | None -> Ok ()
          | Some j -> bind (handle_arrival j) loop
        end
  in
  bind (loop ()) @@ fun () ->
  if !overloaded then begin
    overloaded := false;
    overload_time := !overload_time +. (Exec.now exec -. !overload_since)
  end;
  bind (Exec.finish exec) @@ fun outcome ->
  let p99 =
    if !lat_n = 0 then 0.
    else begin
      let arr =
        (Array.sub !lat 0 !lat_n)
        [@rt.domain_safe
          "a private copy of the private latency buffer, sorted in place \
           after the stream is fully drained"]
      in
      Array.sort Float.compare arr;
      arr.(int_of_float (0.99 *. float_of_int (!lat_n - 1)))
    end
  in
  let yds_energy =
    if config.yds_bound && Exec.m exec = 1 then begin
      let tbl = Hashtbl.create 64 in
      List.iter (fun (j : Job.t) -> Hashtbl.replace tbl j.id j) !admitted_jobs;
      let jobs = List.filter_map (Hashtbl.find_opt tbl) outcome.admitted in
      match Rt_online.Yds.energy ~proc jobs with
      | Ok e -> Some e
      | Error _ -> None
    end
    else None
  in
  let declined =
    List.length outcome.rejected - outcome.forced_rejections - !shed_count
    - !replan_shed
  in
  Ok
    {
      outcome;
      seen = !seen;
      shed = !shed_count;
      replan_shed = !replan_shed;
      declined;
      tier_decisions;
      tier_wall;
      max_latency = !max_lat;
      p99_latency = p99;
      overload_time = !overload_time;
      incidents = List.rev !incidents;
      lower_bound = !lower;
      yds_energy;
    }

let merge_outcomes (a : Admission.outcome) (b : Admission.outcome) =
  {
    Admission.energy = a.energy +. b.energy;
    penalty = a.penalty +. b.penalty;
    total = a.total +. b.total;
    admitted = List.merge compare a.admitted b.admitted;
    rejected = List.merge compare a.rejected b.rejected;
    forced_rejections = a.forced_rejections + b.forced_rejections;
    makespan = Float.max a.makespan b.makespan;
  }

let merge2 a b =
  {
    outcome = merge_outcomes a.outcome b.outcome;
    seen = a.seen + b.seen;
    shed = a.shed + b.shed;
    replan_shed = a.replan_shed + b.replan_shed;
    declined = a.declined + b.declined;
    tier_decisions =
      Array.init 3 (fun i -> a.tier_decisions.(i) + b.tier_decisions.(i));
    tier_wall = Array.init 3 (fun i -> a.tier_wall.(i) +. b.tier_wall.(i));
    max_latency = Float.max a.max_latency b.max_latency;
    p99_latency = Float.max a.p99_latency b.p99_latency;
    overload_time = Float.max a.overload_time b.overload_time;
    incidents =
      List.stable_sort
        (fun x y -> Float.compare (Incident.at x) (Incident.at y))
        (a.incidents @ b.incidents);
    lower_bound = a.lower_bound +. b.lower_bound;
    yds_energy =
      (match (a.yds_energy, b.yds_energy) with
      | Some x, Some y -> Some (x +. y)
      | _ -> None);
  }

let run_sharded ?pool ~shards ~proc ~config jobs =
  if shards < 1 then
    Error (Admission.Invalid "serve: shard count must be >= 1")
  else begin
    let buckets = Array.make shards [] in
    List.iter
      (fun (j : Job.t) ->
        let k = j.id mod shards in
        let k = if k < 0 then k + shards else k in
        buckets.(k) <- j :: buckets.(k))
      jobs;
    let inputs = Array.to_list (Array.map List.rev buckets) in
    let results =
      Rt_parallel.Pool.map ?pool
        (fun bucket -> run ~proc ~config (Source.of_list bucket))
        inputs
    in
    let rec first_error = function
      | [] -> None
      | Error e :: _ -> Some e
      | Ok _ :: tl -> first_error tl
    in
    match first_error results with
    | Some e -> Error e
    | None -> (
        match List.filter_map Result.to_option results with
        | [] -> Error (Admission.Invalid "serve: internal: no shard reports")
        | r :: rest -> Ok (List.fold_left merge2 r rest))
  end

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "jobs seen        %d@," r.seen;
  Format.fprintf ppf "admitted         %d@," (List.length r.outcome.admitted);
  Format.fprintf ppf "declined         %d@," r.declined;
  Format.fprintf ppf "forced-rejected  %d@," r.outcome.forced_rejections;
  Format.fprintf ppf "ingress-shed     %d@," r.shed;
  Format.fprintf ppf "replan-shed      %d@," r.replan_shed;
  Format.fprintf ppf "energy           %.6g@," r.outcome.energy;
  Format.fprintf ppf "penalty          %.6g@," r.outcome.penalty;
  Format.fprintf ppf "objective        %.6g@," r.outcome.total;
  Format.fprintf ppf "lower bound      %.6g@," r.lower_bound;
  (match r.yds_energy with
  | Some e -> Format.fprintf ppf "yds energy       %.6g@," e
  | None -> ());
  Format.fprintf ppf "makespan         %.6g@," r.outcome.makespan;
  List.iter
    (fun tr ->
      let i = Incident.tier_index tr in
      Format.fprintf ppf "tier %-11s %d decisions, %.3gs wall@,"
        (Incident.tier_name tr) r.tier_decisions.(i) r.tier_wall.(i))
    Incident.tiers;
  Format.fprintf ppf "latency          max %.3gs, p99 %.3gs@," r.max_latency
    r.p99_latency;
  Format.fprintf ppf "overload time    %.6g@," r.overload_time;
  (match r.incidents with
  | [] -> Format.fprintf ppf "incidents        none"
  | is ->
      Format.fprintf ppf "incidents        %d@," (List.length is);
      Format.pp_print_list ~pp_sep:Format.pp_print_cut
        (fun ppf i -> Format.fprintf ppf "  %a" Incident.pp i)
        ppf is);
  Format.fprintf ppf "@]"
