(** The overload-resilient streaming admission service.

    {!run} pulls jobs from a {!Source.t} one at a time and drives the
    stepwise executor ({!Rt_online.Admission.Exec}) through the same
    per-arrival decision code as the batch simulator, wrapped in a
    robustness layer with four independent mechanisms:

    - {e Ingress backpressure}: with a finite [queue_capacity] and a
      finite [decision_rate] (decisions per stream-time unit), arrivals
      queue while the decision server is busy; overflow sheds the
      {e undecided} job with the cheapest penalty per cycle (ties by
      id) — admitted work is never dropped by backpressure, and every
      shed pays its rejection penalty honestly.
    - {e Watchdog tiers}: a per-decision wall-clock budget. A blown
      budget degrades the admission tier ({!Incident.tier}) one step —
      exact test, then threshold test, then admit-none — and
      [recover_after] consecutive in-budget decisions step back up.
      Every tier keeps admitted work deadline-safe; degradation trades
      decision quality for bounded decision latency.
    - {e Overload detection}: a sliding-window offered-load estimate
      (window cycles / (window × live capacity)) with hysteresis
      ({!Incident.Overload_on} above [enter_above], [Off] below
      [exit_below]); the report totals the time spent overloaded.
    - {e Fault tolerance}: [faults] strike the running service at their
      wrapper times. A derate caps the executor speed, a crash kills a
      processor (orphans are re-homed to the least-loaded feasible
      survivor or shed), an overrun inflates remaining cycles; after
      each, any over-committed processor sheds its cheapest
      penalty-per-remaining-cycle jobs ({!Rt_fault.Degrade.shed_online})
      until EDF-feasible again — committed work is re-planned, never
      silently missed.

    With [queue_capacity = None], [decision_rate = None], no watchdog
    and no faults, the engine reduces to exactly the batch simulator's
    call sequence: {!run} then returns the byte-identical
    {!Rt_online.Admission.outcome} that
    {!Rt_online.Admission.simulate_mp} produces on the materialized
    stream — the oracle the property tests replay. *)

type watchdog = {
  latency_budget : float;
      (** wall-clock seconds one admission decision may take *)
  recover_after : int;
      (** consecutive in-budget decisions before stepping one tier up *)
}

type overload = {
  window : float;  (** sliding-window length, in stream time *)
  enter_above : float;  (** declare overload when offered load exceeds this *)
  exit_below : float;
      (** clear overload when offered load falls below this; must be at
          most [enter_above] (the hysteresis band) *)
}

type config = {
  policy : Rt_online.Admission.policy;
  m : int;  (** identical ideal processors, as {!Rt_online.Admission.simulate_mp} *)
  queue_capacity : int option;
      (** max undecided jobs held; [None] = unbounded. Only binds when a
          [decision_rate] makes the queue build up. *)
  decision_rate : float option;
      (** admission decisions per stream-time unit ([None] = decisions
          are instantaneous at arrival — the byte-identity fast path).
          A queued job is decided at the {e decision} time, with
          whatever slack it has left — queue latency honestly degrades
          schedulability. *)
  watchdog : watchdog option;
  degraded_theta : float;
      (** penalty-per-cycle threshold the {!Incident.Threshold} tier
          admits at *)
  overload : overload option;
  faults : Rt_fault.Fault.timed list;  (** applied in strike-time order *)
  yds_bound : bool;
      (** also compute the YDS offline-optimal energy of the admitted
          set (single-processor runs only; O(n³) — keep runs small) *)
}

val default_config : config
(** [Admit_all], [m = 1], unbounded queue, instantaneous decisions, no
    watchdog, no overload detector, no faults, no YDS bound,
    [degraded_theta = 0.] — the transparent service. *)

type report = {
  outcome : Rt_online.Admission.outcome;
      (** exactly the batch simulator's accounting: energy, penalty,
          admitted/rejected ids, forced rejections, makespan *)
  seen : int;  (** jobs pulled from the source *)
  shed : int;  (** undecided jobs dropped by ingress backpressure *)
  replan_shed : int;  (** admitted jobs dropped by fault re-planning *)
  declined : int;
      (** jobs the policy (or a degraded tier) turned away — rejected
          minus forced minus shed minus replan-shed *)
  tier_decisions : int array;
      (** decisions taken per tier, indexed by {!Incident.tier_index} *)
  tier_wall : float array;
      (** wall-clock seconds spent deciding, per tier *)
  max_latency : float;  (** worst single decision, wall-clock seconds *)
  p99_latency : float;  (** 99th-percentile decision latency *)
  overload_time : float;  (** stream time spent in declared overload *)
  incidents : Incident.t list;  (** chronological *)
  lower_bound : float;
      (** {!Rt_online.Admission.job_bound} summed over every job seen *)
  yds_energy : float option;
      (** offline-optimal energy of the admitted set, when requested
          and computable (single processor, feasible at [s_max]) *)
}

val run :
  proc:Rt_power.Processor.t -> config:config -> Source.t ->
  (report, Rt_online.Admission.error) result
(** Serve the stream to exhaustion, then apply any remaining faults and
    drain the executors. Errors on invalid configuration, a broken
    source, or — defensively — an admitted deadline miss, which the
    re-planning layer exists to make unreachable. *)

val run_sharded :
  ?pool:Rt_parallel.Pool.t -> shards:int -> proc:Rt_power.Processor.t ->
  config:config -> Rt_online.Job.t list ->
  (report, Rt_online.Admission.error) result
(** Partition a materialized job list by [id mod shards] and {!run} each
    shard independently (through [pool] when given — each shard's
    engine state is freshly created inside its task, so the shards
    share nothing). Models [shards] independent service replicas fed by
    a deterministic hash router: results are byte-stable for any pool
    size, and with [shards = 1] this is {!run}. Merged report: sums and
    id-list merges throughout, except [max_latency]/[p99_latency]
    (max over shards — an upper bound on the true merged p99) and
    [overload_time] (max over shards, since replicas overload
    concurrently). Errors as {!run}, lowest shard first; [shards < 1]
    is invalid. *)

val pp_report : Format.formatter -> report -> unit
(** Multi-line human summary: counts, energy vs bounds, per-tier and
    latency statistics, then the incident log. *)
