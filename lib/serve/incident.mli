(** The service's structured incident log.

    Every robustness-layer action the engine takes — shedding ingress
    load, changing admission tier, declaring or clearing overload, a
    fault striking, re-planning committed work — is recorded as one
    {!t}, timestamped in {e stream} (simulation) time. The log is the
    service's audit trail: the end-of-run report carries it whole, the
    CLI renders it with {!pp}, and the CI smoke test asserts it is
    non-empty whenever a fault was injected. *)

(** Admission degradation tiers, cheapest-first from the top:
    {!Exact} runs the full admission step (exact density test over all
    live processors plus the marginal-energy placement); {!Threshold}
    keeps the exact feasibility test but replaces the energy estimate
    with a fixed penalty-per-cycle threshold; {!Admit_none} rejects
    unconditionally. Every tier is deadline-safe — degradation trades
    decision {e quality} (energy/penalty optimality) for decision
    {e latency}, never safety. *)
type tier = Exact | Threshold | Admit_none

val tier_name : tier -> string
(** ["exact"], ["threshold"], ["admit-none"]. *)

val tier_index : tier -> int
(** 0, 1, 2 in {!tier} order — indexes the report's per-tier arrays. *)

val tiers : tier list
(** All three, best first. *)

val next_down : tier -> tier option
(** One tier worse ([None] from {!Admit_none}). *)

val next_up : tier -> tier option
(** One tier better ([None] from {!Exact}). *)

type t =
  | Shed of { at : float; job_id : int; rate : float }
      (** ingress queue overflow dropped this undecided job;
          [rate] is its penalty per cycle, the shed ordering key *)
  | Tier_down of { at : float; from_ : tier; to_ : tier; latency : float }
      (** the watchdog saw a decision take [latency] seconds of wall
          clock, over budget, and degraded the admission tier *)
  | Tier_up of { at : float; from_ : tier; to_ : tier }
      (** enough consecutive in-budget decisions to recover one tier *)
  | Overload_on of { at : float; offered : float }
      (** the sliding-window offered-load estimate crossed the entry
          threshold *)
  | Overload_off of { at : float; offered : float }
      (** ... and later fell below the exit threshold (hysteresis) *)
  | Fault_struck of { at : float; fault : Rt_fault.Fault.t }
      (** an injected fault was applied to the live executor *)
  | Replanned of { at : float; shed : int list; moved : int list }
      (** committed work was re-planned after a fault: [shed] ids were
          dropped (paying their penalties, cheapest-per-cycle first),
          [moved] ids were re-homed to surviving processors *)

val at : t -> float
(** The incident's stream-time stamp. *)

val label : t -> string
(** Short machine-friendly tag: ["shed"], ["tier-down"], ["tier-up"],
    ["overload-on"], ["overload-off"], ["fault"], ["replan"]. *)

val pp : Format.formatter -> t -> unit
