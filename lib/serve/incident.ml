type tier = Exact | Threshold | Admit_none

let tier_name = function
  | Exact -> "exact"
  | Threshold -> "threshold"
  | Admit_none -> "admit-none"

let tier_index = function Exact -> 0 | Threshold -> 1 | Admit_none -> 2
let tiers = [ Exact; Threshold; Admit_none ]

let next_down = function
  | Exact -> Some Threshold
  | Threshold -> Some Admit_none
  | Admit_none -> None

let next_up = function
  | Exact -> None
  | Threshold -> Some Exact
  | Admit_none -> Some Threshold

type t =
  | Shed of { at : float; job_id : int; rate : float }
  | Tier_down of { at : float; from_ : tier; to_ : tier; latency : float }
  | Tier_up of { at : float; from_ : tier; to_ : tier }
  | Overload_on of { at : float; offered : float }
  | Overload_off of { at : float; offered : float }
  | Fault_struck of { at : float; fault : Rt_fault.Fault.t }
  | Replanned of { at : float; shed : int list; moved : int list }

let at = function
  | Shed { at; _ }
  | Tier_down { at; _ }
  | Tier_up { at; _ }
  | Overload_on { at; _ }
  | Overload_off { at; _ }
  | Fault_struck { at; _ }
  | Replanned { at; _ } ->
      at

let label = function
  | Shed _ -> "shed"
  | Tier_down _ -> "tier-down"
  | Tier_up _ -> "tier-up"
  | Overload_on _ -> "overload-on"
  | Overload_off _ -> "overload-off"
  | Fault_struck _ -> "fault"
  | Replanned _ -> "replan"

let pp_ids ppf ids =
  Format.fprintf ppf "[@[<hov>%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Format.pp_print_int)
    ids

let pp ppf = function
  | Shed { at; job_id; rate } ->
      Format.fprintf ppf "t=%-10.4g shed         job %d (%.4g penalty/cycle)"
        at job_id rate
  | Tier_down { at; from_; to_; latency } ->
      Format.fprintf ppf "t=%-10.4g tier-down    %s -> %s (decision took %.3gs)"
        at (tier_name from_) (tier_name to_) latency
  | Tier_up { at; from_; to_ } ->
      Format.fprintf ppf "t=%-10.4g tier-up      %s -> %s" at (tier_name from_)
        (tier_name to_)
  | Overload_on { at; offered } ->
      Format.fprintf ppf "t=%-10.4g overload-on  offered load %.4g" at offered
  | Overload_off { at; offered } ->
      Format.fprintf ppf "t=%-10.4g overload-off offered load %.4g" at offered
  | Fault_struck { at; fault } ->
      Format.fprintf ppf "t=%-10.4g fault        %a" at Rt_fault.Fault.pp_fault
        fault
  | Replanned { at; shed; moved } ->
      Format.fprintf ppf "t=%-10.4g replan       shed %a, moved %a" at pp_ids
        shed pp_ids moved
