module Fc = Rt_prelude.Float_cmp
module Job = Rt_online.Job

type t = { next : unit -> (Job.t option, string) result }

let next s = s.next ()

let of_list jobs =
  let rest = ref (Job.by_arrival jobs) in
  {
    next =
      (fun () ->
        match !rest with
        | [] -> Ok None
        | j :: tl ->
            rest := tl;
            Ok (Some j));
  }

let of_seq seq =
  let state = ref seq in
  let last = ref Float.neg_infinity in
  {
    next =
      (fun () ->
        match !state () with
        | Seq.Nil ->
            state := Seq.empty;
            Ok None
        | Seq.Cons (j, tl) ->
            state := tl;
            if Fc.exact_lt j.Job.arrival !last then
              Error
                (Printf.sprintf
                   "job %d arrives at %.6g after a job at %.6g: sequence \
                    sources must be sorted by arrival"
                   j.Job.id j.Job.arrival !last)
            else begin
              last := j.Job.arrival;
              Ok (Some j)
            end);
  }

let synthetic ~seed ?limit ~rate ~s_max ~mean_cycles ~slack_lo ~slack_hi
    ~penalty_factor () =
  let rng = Rt_prelude.Rng.create ~seed in
  of_seq
    (Job.stream_seq rng ?limit ~rate ~s_max ~mean_cycles ~slack_lo ~slack_hi
       ~penalty_factor ())

(* Trace files: parsed a line at a time on pull, so the handle stays open
   for the life of the source and is closed at EOF or first error. *)

let split_fields line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_line ~lineno line =
  match split_fields line with
  | [ id; arrival; cycles; deadline; penalty ] -> (
      match
        ( int_of_string_opt id,
          float_of_string_opt arrival,
          float_of_string_opt cycles,
          float_of_string_opt deadline,
          float_of_string_opt penalty )
      with
      | Some id, Some arrival, Some cycles, Some deadline, Some penalty -> (
          match Job.make ~id ~arrival ~cycles ~deadline ~penalty with
          | j -> Ok j
          | exception Invalid_argument msg ->
              Error (Printf.sprintf "trace line %d: %s" lineno msg))
      | _ -> Error (Printf.sprintf "trace line %d: unparsable field" lineno))
  | fields ->
      Error
        (Printf.sprintf "trace line %d: expected 5 fields, got %d" lineno
           (List.length fields))

let of_trace_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let done_ = ref false in
      let lineno = ref 0 in
      let last = ref Float.neg_infinity in
      let finish r =
        done_ := true;
        close_in_noerr ic;
        r
      in
      let rec pull () =
        if !done_ then Ok None
        else
          match input_line ic with
          | exception End_of_file -> finish (Ok None)
          | line -> (
              incr lineno;
              let trimmed = String.trim line in
              if trimmed = "" || trimmed.[0] = '#' then pull ()
              else
                match parse_line ~lineno:!lineno trimmed with
                | Error _ as e -> finish e
                | Ok j ->
                    if Fc.exact_lt j.Job.arrival !last then
                      finish
                        (Error
                           (Printf.sprintf
                              "trace line %d: job %d arrives at %.6g after a \
                               job at %.6g (traces must be sorted by arrival)"
                              !lineno j.Job.id j.Job.arrival !last))
                    else begin
                      last := j.Job.arrival;
                      Ok (Some j)
                    end)
      in
      Ok { next = pull }

let write_trace path jobs =
  match open_out path with
  | exception Sys_error msg -> Error msg
  | oc ->
      output_string oc "# rt_serve trace: id arrival cycles deadline penalty\n";
      List.iter
        (fun (j : Job.t) ->
          Printf.fprintf oc "%d %.17g %.17g %.17g %.17g\n" j.id j.arrival
            j.cycles j.deadline j.penalty)
        (Job.by_arrival jobs);
      close_out oc;
      Ok ()
