(** Pull-based job sources for the streaming service.

    The batch simulators take a fully materialized [Job.t list]; a
    serving engine cannot — the stream may be unbounded, or produced by
    another process. A {!t} is the minimal incremental contract:
    {!next} yields the next job, signals exhaustion, or reports that
    the source itself misbehaved. All constructors guarantee (or
    enforce) non-decreasing arrival times, which is what lets the
    engine advance its executors monotonically. *)

type t

val next : t -> (Rt_online.Job.t option, string) result
(** Pull one job. [Ok None] means the source is exhausted and will stay
    exhausted; [Error] means the source itself is broken (malformed
    trace line, out-of-order arrivals) — the service surfaces it and
    stops. *)

val of_list : Rt_online.Job.t list -> t
(** Replay a finite list, sorted by arrival internally
    ({!Rt_online.Job.by_arrival}) so any order is accepted. *)

val of_seq : Rt_online.Job.t Seq.t -> t
(** Stream a sequence, one element per {!next}, in O(1) memory for lazy
    producers. Arrivals must be non-decreasing: a regression is
    reported as [Error] at the offending pull (the sequence cannot be
    sorted without materializing it). The sequence is consumed — pair
    with ephemeral producers like {!Rt_online.Job.stream_seq}. *)

val synthetic :
  seed:int -> ?limit:int -> rate:float -> s_max:float -> mean_cycles:float ->
  slack_lo:float -> slack_hi:float -> penalty_factor:float -> unit -> t
(** The seeded synthetic workload: {!Rt_online.Job.stream_seq} over a
    private [Rng] created from [seed]; unbounded when [limit] is
    omitted. Parameters as {!Rt_online.Job.stream}.
    @raise Invalid_argument as {!Rt_online.Job.stream}. *)

val of_trace_file : string -> (t, string) result
(** Stream a whitespace-separated text trace: one
    [id arrival cycles deadline penalty] record per line; blank lines
    and [#]-comments skipped. The file is read lazily, line by line, so
    arbitrarily long traces replay in O(1) memory; a malformed line, a
    field violating {!Rt_online.Job.make}'s ranges, or an out-of-order
    arrival surfaces as [Error] from {!next} with its line number.
    Errors immediately only if the file cannot be opened. *)

val write_trace : string -> Rt_online.Job.t list -> (unit, string) result
(** Write jobs (sorted by arrival) in the {!of_trace_file} format, with
    a header comment; floats are printed round-trip exact. *)
