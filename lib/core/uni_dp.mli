(** Uniprocessor rejection: exact dynamic programming and its scaled dial.

    On a single processor the only decision is the accept set: the optimal
    energy depends just on the accepted cycle total (run at the uniform
    speed [W/D], clamped per the processor's dormancy/domain). A DP over
    integer cycles ({!Rt_exact.Knapsack}) therefore solves the m = 1 case
    of the rejection problem {e exactly} in pseudo-polynomial time
    [O(n · s_max · D)]; the scaled variant trades accuracy for speed the
    way the DATE-family "DP / (1+δ)" algorithms do. *)

type outcome = {
  problem : Problem.t;  (** the m = 1 instance the tasks induce *)
  solution : Solution.t;
  cost : float;  [@rt.dim "joules"] (** recomputed through {!Solution.cost} *)
}

val exact :
  proc:Rt_power.Processor.t -> frame_length:float -> Rt_task.Task.frame list ->
  (outcome, string) result
(** [frame_length] must be positive; its product with [s_max] is the DP
    capacity in cycles (floored). Tasks follow the frame model: integer
    cycles, shared deadline. *)

val scaled :
  epsilon:float -> proc:Rt_power.Processor.t -> frame_length:float ->
  Rt_task.Task.frame list -> (outcome, string) result
(** DP on cycles coarsened by {!Rt_exact.Knapsack.scale_for_epsilon}, then
    the better of that choice and the {!Greedy.density_reject} solution.
    Always feasible and never below the exact optimum; the realized gap is
    an {e empirical} accuracy/speed dial (measured by the benchmark suite),
    not a proven (1+ε) ratio — coarsening the {e weight} axis can misprice
    acceptance thresholds on adversarial instances. With [epsilon] small
    enough that the scale is 1, this {e is} {!exact}. *)
