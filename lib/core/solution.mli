(** Solutions: an accepted partition plus the rejected set, and their cost.

    Costing and validation are deliberately separate code paths from the
    algorithms: [cost] recomputes everything from the solution's structure,
    and [validate] additionally round-trips the accepted schedule through
    the concrete frame simulator, so an algorithm cannot "win" an
    experiment by mis-reporting its own objective value. *)

type t = {
  partition : Rt_partition.Partition.t;  (** the accepted items, placed *)
  rejected : Rt_task.Task.item list;
}

type cost = {
  energy : float;  [@rt.dim "joules"] (** Σ_j horizon · rate(load_j), including idle processors *)
  penalty : float;  [@rt.dim "penalty"] (** Σ over rejected items *)
  total : float; [@rt.dim "joules"]
}

val cost : Problem.t -> t -> (cost, string) result
(** Recompute the objective. Errors when a processor is overloaded or the
    partition has the wrong width. *)

val validate : Problem.t -> t -> (unit, string) result
(** Everything [cost] checks, plus: every problem item appears exactly once
    (accepted or rejected), no foreign items, and the accepted schedule
    passes {!Rt_sim.Frame_sim.validate} on a concrete timeline. *)

val accept_all : Problem.t -> Rt_partition.Partition.t -> t
(** Wrap a partition of the full item set as a solution with no
    rejections (feasibility is checked by [cost]/[validate], not here). *)

val accepted_ids : t -> int list
(** Sorted. *)

val rejected_ids : t -> int list
(** Sorted. *)

val acceptance_ratio : Problem.t -> t -> float [@rt.dim "1"]
(** Accepted items over total items (1.0 for an empty problem). *)

val pp : Format.formatter -> t -> unit
val pp_cost : Format.formatter -> cost -> unit
