(** Ground-truth optima for small instances (wraps {!Rt_exact.Search}).

    The selection+partition problem is NP-hard (it embeds both
    multiprocessor makespan feasibility and knapsack — see {!Hardness}),
    so these solvers are exponential; experiments use them up to a dozen
    items to normalize heuristic costs against the true optimum. *)

val exhaustive : Problem.t -> Solution.t
(** Full symmetry-broken enumeration. @raise Invalid_argument beyond 16
    items. *)

val branch_and_bound : ?node_limit:int -> Problem.t -> Solution.t
(** Same optimum, pruned; the default oracle for experiment E1. *)

type budgeted = {
  solution : Solution.t;
  nodes : int;
  exhausted : bool;  (** a budget ran out; [solution] is the incumbent *)
}

val branch_and_bound_budgeted :
  ?shared:Rt_exact.Search.shared -> ?node_budget:int -> ?time_budget:float ->
  Problem.t -> (budgeted, string) result
(** Anytime oracle (wraps {!Rt_exact.Search.branch_and_bound_budgeted}):
    always returns a valid solution — seeded with all-reject, improved
    until the node budget or the wall-clock time budget runs out — with
    [exhausted] flagging an unproven optimum. [shared] connects the
    search to a cross-domain incumbent (the {!Rt_parallel.Portfolio}
    plumbing). All failure modes (including a cost mismatch against
    {!Solution.cost}) are typed errors, never exceptions. *)

val optimal_cost : ?node_limit:int -> Problem.t -> float [@rt.dim "joules"]
(** Total cost of [branch_and_bound] (recomputed through
    {!Solution.cost}, so a disagreement raises). *)
