module Fc = Rt_prelude.Float_cmp

open Rt_task

let balanced_energy (p : Problem.t) ~accepted_weight =
  if Fc.exact_lt accepted_weight 0. then
    invalid_arg "Bounds.balanced_energy: negative weight";
  let per_proc = accepted_weight /. float_of_int p.m in
  if Rt_prelude.Float_cmp.gt per_proc (Problem.capacity p) then
    invalid_arg "Bounds.balanced_energy: weight above pooled capacity";
  float_of_int p.m *. Problem.bucket_energy p per_proc

(* Highest-density prefix acceptance: accepting weight W fractionally keeps
   as much penalty as possible, so the rejected penalty is
   total - P(W) with P the concave prefix envelope. *)
let min_rejected_penalty (p : Problem.t) ~accepted_weight =
  let sorted =
    List.sort
      (fun (a : Task.item) (b : Task.item) ->
        Float.compare
          (b.item_penalty /. b.weight)
          (a.item_penalty /. a.weight))
      p.items
  in
  let total_penalty = Taskset.total_penalty_items p.items in
  let rec kept w acc = function
    | [] -> acc
    | (it : Task.item) :: rest ->
        if Fc.exact_le w 0. then acc
        else if Fc.exact_le it.weight w then
          kept (w -. it.weight) (acc +. it.item_penalty) rest
        else acc +. (w /. it.weight *. it.item_penalty)
  in
  Float.max 0. (total_penalty -. kept accepted_weight 0. sorted)

let lower_bound (p : Problem.t) =
  let total = Taskset.total_weight p.items in
  let w_max =
    Float.min total (float_of_int p.m *. Problem.capacity p)
  in
  if Fc.exact_le w_max 0. then
    Taskset.total_penalty_items p.items +. balanced_energy p ~accepted_weight:0.
  else begin
    let objective w =
      balanced_energy p ~accepted_weight:w +. min_rejected_penalty p ~accepted_weight:w
    in
    let _, v =
      Rt_prelude.Math_util.golden_section_min ~f:objective ~lo:0. ~hi:w_max ()
    in
    (* golden-section assumes convexity; guard against corner optima *)
    Float.min v (Float.min (objective 0.) (objective w_max))
  end
