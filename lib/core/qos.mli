(** Multi-level service degradation: rejection generalized to QoS levels.

    Binary rejection is all-or-nothing; many real workloads degrade
    gracefully instead (skip every other job, decode at half resolution,
    subsample the sensor). This module generalizes the core problem: each
    task offers a menu of {e service levels}, each a (weight, penalty)
    point — full service contributes its whole weight at zero penalty,
    full rejection contributes nothing at full penalty, intermediate
    levels sit in between. Exactly one level is chosen per task; chosen
    positive-weight tasks are partitioned onto the processors as usual:

    {v minimize  Σ_j horizon·rate(load_j) + Σ_i penalty(chosen level_i) v}

    Binary rejection is the two-level special case, so every lower bound
    from the richer menu is at most the binary optimum — experiment E16
    measures how much graceful degradation actually buys. *)

type level = private {
  weight : float;  [@rt.dim "speed"] (** required-speed contribution at this level; >= 0 *)
  level_penalty : float;  [@rt.dim "penalty"] (** >= 0, finite *)
}

type qtask = private {
  id : int;
  levels : level list;
      (** distinct weights, sorted decreasing; the first is full service *)
}

val level : weight:float -> penalty:float -> level
(** @raise Invalid_argument on negative or non-finite fields. *)

val qtask : id:int -> levels:level list -> qtask
(** Sorts the levels by decreasing weight.
    @raise Invalid_argument on an empty menu or duplicate weights. *)

val of_item : Rt_task.Task.item -> qtask
(** The binary menu: full service (its weight, penalty 0) or full
    rejection (weight 0, its penalty). *)

val graceful : ?steps:int -> ?curve:float -> Rt_task.Task.item -> qtask
(** A [steps]-point menu (default 4) between full service and full
    rejection: serving a fraction [f] of the work costs
    [(1 - f)^curve] of the penalty. [curve] defaults to 1 (linear);
    [curve > 1] makes the first quality losses cheap (video enhancement
    layers, sensor subsampling) and is where degradation genuinely beats
    binary rejection. @raise Invalid_argument if [steps < 2] or
    [curve <= 0]. *)

(** {1 Solutions} *)

type choice = { task_id : int; level_index : int }

type solution = {
  choices : choice list;  (** exactly one per task *)
  partition : Rt_partition.Partition.t;
      (** the chosen positive-weight contributions, placed *)
}

val cost :
  Problem.t -> qtask list -> solution -> (float, string) result
(** Total cost. Errors on missing/duplicate/foreign choices, a partition
    that disagrees with the chosen weights, or an overloaded processor.
    [Problem.t] supplies the processor/m/horizon context; its own
    item list is ignored (the menu replaces it). *)

val validate :
  Problem.t -> qtask list -> solution -> (unit, string) result
(** [cost] plus the frame-simulator round trip on the partition. *)

(** {1 Algorithms} *)

val greedy_degrade : Problem.t -> qtask list -> solution
(** Start everything at full service; while the LTF packing is infeasible
    {e or} some single-step degradation pays for itself (energy saved
    exceeds penalty added), apply the best such step and repack.
    Terminates: each step strictly moves down a finite menu. *)

val exhaustive : Problem.t -> qtask list -> solution
(** Enumerate level menus × partitions (via {!Rt_exact.Search} on each
    menu combination). @raise Invalid_argument when the menu product
    exceeds 200_000 combinations. *)
