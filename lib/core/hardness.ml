module Fc = Rt_prelude.Float_cmp

open Rt_task

type gadget = {
  problem : Problem.t;
  all_accepted_cost : float option;
}

let partition_gadget numbers =
  let ( let* ) = Result.bind in
  let* () =
    if numbers = [] then Error "partition_gadget: empty list"
    else if List.exists (fun a -> a <= 0) numbers then
      Error "partition_gadget: entries must be positive"
    else if List.fold_left ( + ) 0 numbers mod 2 <> 0 then
      Error "partition_gadget: sum must be even"
    else Ok ()
  in
  let total = List.fold_left ( + ) 0 numbers in
  let b = float_of_int (total / 2) in
  let proc = Rt_power.Processor.cubic ~s_max:b () in
  let penalty = 10. *. (float_of_int total ** 3.) in
  let items =
    List.mapi
      (fun id a -> Task.item ~penalty ~id ~weight:(float_of_int a) ())
      numbers
  in
  let* problem = Problem.make ~proc ~m:2 ~horizon:1. items in
  (* both processors perfectly balanced at load B, energy 2·B^3 each side *)
  Ok { problem; all_accepted_cost = Some (2. *. (b ** 3.)) }

let knapsack_gadget ~capacity pairs =
  let ( let* ) = Result.bind in
  let* () =
    if List.is_empty pairs then Error "knapsack_gadget: empty input"
    else if capacity <= 0 then Error "knapsack_gadget: capacity <= 0"
    else if List.exists (fun (c, _) -> c <= 0) pairs then
      Error "knapsack_gadget: cycles must be positive"
    else if List.exists (fun (_, p) -> Fc.exact_lt p 0.) pairs then
      Error "knapsack_gadget: penalties must be >= 0"
    else Ok ()
  in
  let proc =
    Rt_power.Processor.make
      ~model:(Rt_power.Power_model.make ~coeff:1e-9 ~alpha:3. ())
      ~domain:
        (Rt_power.Processor.Ideal { s_min = 0.; s_max = float_of_int capacity })
      ~dormancy:Rt_power.Processor.Dormant_disable
  in
  let items =
    List.mapi
      (fun id (c, p) -> Task.item ~penalty:p ~id ~weight:(float_of_int c) ())
      pairs
  in
  let* problem = Problem.make ~proc ~m:1 ~horizon:1. items in
  Ok { problem; all_accepted_cost = None }
