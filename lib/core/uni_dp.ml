module Fc = Rt_prelude.Float_cmp

open Rt_task

type outcome = {
  problem : Problem.t;
  solution : Solution.t;
  cost : float;
}

let run ~solve ~proc ~frame_length tasks =
  let ( let* ) = Result.bind in
  let* problem = Problem.of_frame ~proc ~m:1 ~frame_length tasks in
  let s_max = Rt_power.Processor.s_max proc in
  let capacity =
    int_of_float (Float.floor ((s_max *. frame_length) +. 1e-9))
  in
  let arr = Array.of_list tasks in
  let cycles = Array.map (fun (t : Task.frame) -> t.cycles) arr in
  let penalties = Array.map (fun (t : Task.frame) -> t.penalty) arr in
  let accept_cost w =
    Problem.bucket_energy problem (float_of_int w /. frame_length)
  in
  let choice : Rt_exact.Knapsack.choice =
    solve ~capacity ~cycles ~penalties ~accept_cost
  in
  let item_of (t : Task.frame) =
    match Problem.item problem t.id with
    | Some it -> it
    | None ->
        (* lint: allow-no-raise "unreachable: of_frame preserves ids" *)
        assert false
  in
  let bucket = ref [] and rejected = ref [] in
  Array.iteri
    (fun i t ->
      if choice.accepted.(i) then bucket := item_of t :: !bucket
      else rejected := item_of t :: !rejected)
    arr;
  let solution =
    {
      Solution.partition = Rt_partition.Partition.of_buckets [| !bucket |];
      rejected = List.rev !rejected;
    }
  in
  let* c = Solution.cost problem solution in
  Ok { problem; solution; cost = c.Solution.total }

let exact ~proc ~frame_length tasks =
  run ~solve:Rt_exact.Knapsack.solve ~proc ~frame_length tasks

let scaled ~epsilon ~proc ~frame_length tasks =
  match tasks with
  | [] -> exact ~proc ~frame_length tasks
  | _ -> (
      let cycles =
        Array.of_list (List.map (fun (t : Task.frame) -> t.cycles) tasks)
      in
      let scale = Rt_exact.Knapsack.scale_for_epsilon ~epsilon ~cycles in
      match
        run ~solve:(Rt_exact.Knapsack.solve_scaled ~scale) ~proc ~frame_length
          tasks
      with
      | Error _ as e -> e
      | Ok dp ->
          (* guard against coarse-grid mispricing: the density greedy is
             cheap and often rescues small-n instances *)
          let greedy_solution = Greedy.density_reject dp.problem in
          (match Solution.cost dp.problem greedy_solution with
          | Ok c when Fc.exact_lt c.Solution.total dp.cost ->
              Ok
                {
                  dp with
                  solution = greedy_solution;
                  cost = c.Solution.total;
                }
          | Ok _ | Error _ -> Ok dp))
