(** Problem instances for energy-efficient scheduling with task rejection.

    An instance is [m] identical DVS processors, a horizon (the frame
    length, or one hyper-period for periodic sets), and a set of items —
    tasks reduced to their required-speed contribution plus a rejection
    penalty (see {!Rt_task.Task.item}). A solution accepts a subset,
    partitions it so that no processor's load exceeds [s_max], and pays

    {v Σ_j horizon · rate(load_j)  +  Σ_rejected penalty v}

    where [rate] is the optimal sustained-power primitive
    {!Rt_speed.Energy_rate.rate}. Because the maximum speed is finite,
    instances with load factor above 1 {e force} rejections — the regime
    the target paper introduces. *)

type soa = {
  n : int;  (** item count; every array below has length [n] *)
  ids : int array;  (** [ids.(i)] is the id of positional item [i] *)
  weights : float array;  (** [weights.(i)] — required-speed contribution *)
  penalties : float array;  (** [penalties.(i)] — rejection penalty *)
  item_arr : Rt_task.Task.item array;
      (** the same items as [t.items], in list order *)
  index_of : (int, int) Hashtbl.t;
      (** id -> position; read-only after construction *)
  order_weight_desc : int array;
      (** positions sorted weight-descending, id-ascending on ties — the
          canonical LTF visit order, sorted once per instance; iterate
          it, never permute it *)
  energy : float -> float;
      (** prepared per-load bucket energy — identical results to
          {!bucket_energy} with the hull / critical-speed setup hoisted *)
}
(** Struct-of-arrays view of an instance: unboxed positional arrays for
    the hot paths (greedy packing, local-search deltas, online admission)
    so they index instead of walking [Task.item list]s. Built once by
    {!make} and immutable afterwards — do not mutate the arrays. *)

type t = private {
  proc : Rt_power.Processor.t;
  m : int;
  horizon : float; [@rt.dim "seconds"]
  items : Rt_task.Task.item list;
  soa : soa;
}

val make :
  proc:Rt_power.Processor.t -> m:int -> horizon:float ->
  Rt_task.Task.item list -> (t, string) result
(** Checks [m >= 1], [horizon > 0], distinct item ids, and unit power
    factors (the core problem is homogeneous; heterogeneous power is the
    {!Rt_partition.Hetero} substrate). *)

val of_frame :
  proc:Rt_power.Processor.t -> m:int -> frame_length:float ->
  Rt_task.Task.frame list -> (t, string) result
(** Frame tasks: weights are [cycles / frame_length]. *)

val of_periodic :
  proc:Rt_power.Processor.t -> m:int -> Rt_task.Task.periodic list ->
  (t, string) result
(** Periodic tasks: weights are utilizations; the horizon is the
    hyper-period. Errors on an empty set (no hyper-period) and on
    hyper-period overflow (adversarial period grids). *)

val capacity : t -> float [@rt.dim "speed"]
(** Per-processor load capacity: [s_max]. *)

val load_factor : t -> float [@rt.dim "1"]
(** Total weight over [m · s_max]; above 1.0 rejection is forced. *)

val total_penalty : t -> float [@rt.dim "penalty"]

val soa : t -> soa
(** The struct-of-arrays view (same object as [t.soa]). *)

val item : t -> int -> Rt_task.Task.item option
(** Lookup by id — O(1) via the SoA id index. *)

val bucket_energy : t -> float -> float [@rt.dim "joules"]
(** [horizon · rate(load)] — the cost one processor contributes at the
    given load. @raise Invalid_argument when [load] exceeds the capacity
    (no feasible plan). *)

val pp : Format.formatter -> t -> unit
