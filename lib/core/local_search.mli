(** First-improvement local search over accept/reject/placement decisions.

    Starting from any feasible solution, four move families are scanned in
    order and the first strictly improving move is applied, until a full
    scan finds nothing (or [max_moves] fires):

    + {e reject}: drop an accepted item (pay its penalty, save its
      marginal energy);
    + {e accept}: place a rejected item on the least-loaded feasible
      processor (pay marginal energy, save its penalty);
    + {e move}: relocate an accepted item to another processor;
    + {e swap}: exchange two accepted items between processors.

    Moves 3–4 do not change the objective's penalty term; they rebalance
    loads, which strictly helps because the rate function is convex — and
    they unlock further accept moves by creating room. Each applied move
    strictly decreases the total cost, so the search terminates. *)

type budgeted = {
  solution : Solution.t;  (** best solution reached within the budget *)
  moves : int;  (** improving moves actually applied *)
  exhausted : bool;
      (** [true] when the step budget cut the loop off while scans were
          still finding improving moves — the solution is valid (every
          intermediate state is) but convergence is not proven *)
}

val improve : ?max_moves:int -> Problem.t -> Solution.t -> Solution.t
  [@@rt.hot "O(moves x m x items) scan dominates the anytime pipeline"]
(** [max_moves] defaults to 10_000 (a safety valve; typical instances
    converge in far fewer). The input must be feasible ([Solution.cost]
    must succeed). @raise Invalid_argument otherwise. *)

val improve_budgeted :
  ?max_moves:int -> Problem.t -> Solution.t -> (budgeted, string) result
  [@@rt.hot "O(moves x m x items) scan dominates the anytime pipeline"]
(** Anytime variant of {!improve}: an infeasible input is a typed error
    rather than an exception, and hitting [max_moves] is reported via
    [exhausted] instead of being silent. Since every applied move keeps
    the solution feasible and strictly decreases cost, the budget bounds
    work without sacrificing validity. *)

val with_local_search : ?max_moves:int -> Greedy.algorithm -> Greedy.algorithm
(** Compose: run the algorithm, then polish with [improve]. *)

(** Test access to the delta-cost state: the search maintains per-processor
    loads and bucket energies incrementally (O(1) per applied move) and
    renormalizes them from scratch every few thousand moves to bound float
    drift. This submodule lets the drift property test drive the same
    update/renormalize machinery with {e random accepted} (feasible but not
    necessarily improving) moves and compare against a from-scratch
    {!Solution.cost} re-evaluation. Not part of the stable API. *)
module Drift_test : sig
  type t

  val init : Problem.t -> Solution.t -> t
  (** @raise Invalid_argument when the solution is infeasible. *)

  val random_step : Rt_prelude.Rng.t -> t -> bool
  (** Propose one random move or swap; apply it iff it keeps every load
      within capacity. Returns whether a move was applied. *)

  val renormalize : t -> unit
  (** Rebuild loads and bucket energies from scratch, in the same
      summation order as [Solution.cost] uses. *)

  val loads : t -> float array
  val cost : t -> float
  (** Incrementally-maintained total (Σ bucket energies + Σ penalties),
      associated exactly as [Solution.cost] computes it. *)

  val solution : t -> Solution.t
end
