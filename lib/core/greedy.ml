module Fc = Rt_prelude.Float_cmp

open Rt_task

type algorithm = Problem.t -> Solution.t

(* least-loaded processor on which the item still fits, if any; an
   unboxed index/load scan — earliest index wins ties, like the
   [Array.iteri] fold it replaces *)
let feasible_min_load (p : Problem.t) partition (it : Task.item) =
  let cap = Problem.capacity p in
  let loads = Rt_partition.Partition.loads partition in
  let n = Array.length loads in
  let rec scan j best_j best_l =
    if j >= n then if best_j < 0 then None else Some best_j
    else
      let l = loads.(j) in
      if
        Rt_prelude.Float_cmp.leq (l +. it.weight) cap
        && (best_j < 0 || not (Fc.exact_le best_l l))
      then scan (j + 1) j l
      else scan (j + 1) best_j best_l
  in
  scan 0 (-1) 0.

let place_or_reject (p : Problem.t) ~accept items =
  let rec place partition rejected = function
    | [] -> { Solution.partition; rejected = List.rev rejected }
    | it :: rest -> (
        match feasible_min_load p partition it with
        | Some j when accept partition j it ->
            place (Rt_partition.Partition.add partition j it) rejected rest
        | Some _ | None ->
            (* lint: allow-hot-alloc-in-loop "the rejection list is the output, not churn; the SoA pass (ROADMAP item 3) batches it" *)
            place partition (it :: rejected) rest)
  in
  place (Rt_partition.Partition.empty ~m:p.m) [] items

let always _ _ _ = true

let ltf_reject (p : Problem.t) =
  place_or_reject p ~accept:always
    (List.sort Task.compare_item_weight_desc p.items)

let unsorted_reject (p : Problem.t) = place_or_reject p ~accept:always p.items

let marginal_accept (p : Problem.t) partition j (it : Task.item) =
  let l = Rt_partition.Partition.load partition j in
  let marginal =
    Problem.bucket_energy p (l +. it.weight) -. Problem.bucket_energy p l
  in
  Rt_prelude.Float_cmp.leq marginal it.item_penalty

let marginal_greedy (p : Problem.t) =
  place_or_reject p ~accept:(marginal_accept p)
    (List.sort Task.compare_item_weight_desc p.items)

let random_reject rng (p : Problem.t) =
  let cap = Problem.capacity p in
  let items = Rt_prelude.Rng.shuffle rng p.items in
  List.fold_left
    (fun (partition, rejected) (it : Task.item) ->
      let feasible =
        List.filter
          (fun j ->
            Rt_prelude.Float_cmp.leq
              (Rt_partition.Partition.load partition j +. it.weight)
              cap)
          (Rt_prelude.Math_util.range 0 (p.m - 1))
      in
      match feasible with
      | [] -> (partition, it :: rejected)
      | _ ->
          let j = Rt_prelude.Rng.choice rng feasible in
          (Rt_partition.Partition.add partition j it, rejected))
    (Rt_partition.Partition.empty ~m:p.m, [])
    items
  |> fun (partition, rejected) ->
  { Solution.partition; rejected = List.rev rejected }

let total_cost (p : Problem.t) solution =
  match Solution.cost p solution with
  | Ok c -> c.Solution.total
  | Error msg -> invalid_arg ("Greedy: internal solution invalid: " ^ msg)

let density_asc (a : Task.item) (b : Task.item) =
  let c =
    Float.compare (a.item_penalty /. a.weight) (b.item_penalty /. b.weight)
  in
  if c <> 0 then c else compare a.item_id b.item_id

(* pack by LTF; if some item does not fit, drop the cheapest-density item
   and retry *)
let density_reject (p : Problem.t) =
  let cap = Problem.capacity p in
  let pack accepted =
    place_or_reject p ~accept:always
      (List.sort Task.compare_item_weight_desc accepted)
  in
  (* phase 1: repair to feasibility (ltf_reject already force-rejects
     overflow; we instead choose *which* item to drop by density) *)
  let rec repair accepted rejected =
    let trial = pack accepted in
    if trial.Solution.rejected = [] then (trial, rejected)
    else begin
      match List.sort density_asc accepted with
      | [] -> (trial, rejected)
      | cheapest :: _ ->
          repair
            (List.filter
               (fun (x : Task.item) -> x.item_id <> cheapest.item_id)
               accepted)
            (cheapest :: rejected)
    end
  in
  let fitting, oversize =
    List.partition
      (fun (it : Task.item) -> Rt_prelude.Float_cmp.leq it.weight cap)
      p.items
  in
  let packed, dropped = repair fitting oversize in
  let base =
    { packed with Solution.rejected = packed.Solution.rejected @ dropped }
  in
  (* phase 2: trimming — reject any further item that still pays off *)
  let rec trim solution =
    let current = total_cost p solution in
    let accepted = Rt_partition.Partition.all_items solution.Solution.partition in
    let try_drop (it : Task.item) =
      let remaining =
        List.filter
          (fun (x : Task.item) -> x.item_id <> it.item_id)
          accepted
      in
      let repacked = pack remaining in
      if repacked.Solution.rejected <> [] then None
      else begin
        let candidate =
          {
            repacked with
            Solution.rejected = it :: solution.Solution.rejected;
          }
        in
        let c = total_cost p candidate in
        (* strict improvement with a relative margin; exact on purpose *)
        if Fc.exact_lt c (current -. (1e-12 *. Float.max 1. current)) then
          Some candidate
        else None
      end
    in
    match List.find_map try_drop (List.sort density_asc accepted) with
    | Some better -> trim better
    | None -> solution
  in
  trim base

let best_of algorithms (p : Problem.t) =
  match algorithms with
  | [] -> invalid_arg "Greedy.best_of: empty list"
  | a :: rest ->
      List.fold_left
        (fun best alg ->
          let s = alg p in
          if Fc.exact_lt (total_cost p s) (total_cost p best) then s else best)
        (a p) rest

let named =
  [
    ("ltf-reject", ltf_reject);
    ("marginal", marginal_greedy);
    ("density", density_reject);
    ("unsorted", unsorted_reject);
  ]
