module Fc = Rt_prelude.Float_cmp

open Rt_task

type algorithm = Problem.t -> Solution.t

(* least-loaded processor on which weight [w] still fits, or -1; an
   unboxed recursive scan, hoisted so the packing loop shares one static
   closure — earliest index wins ties, like the [Array.iteri] fold the
   original list version replaced *)
let rec feasible_scan loads m cap w j best_j best_l =
  if j >= m then best_j
  else
    let l = loads.(j) in
    if
      Rt_prelude.Float_cmp.leq (l +. w) cap
      && (best_j < 0 || not (Fc.exact_le best_l l))
    then feasible_scan loads m cap w (j + 1) j l
    else feasible_scan loads m cap w (j + 1) best_j best_l

(* The packing core on the SoA view: items are *positions* into
   [Problem.soa], loads live in a scratch array updated in place, and the
   partition is materialized once at the end — no per-placement bucket
   copies or list folds. [accept loads j i] may veto the least-loaded
   feasible processor [j] for positional item [i]. *)
let pack_positions (p : Problem.t) ~accept (order : int array) =
  let s = Problem.soa p in
  let cap = Problem.capacity p in
  let m = p.m in
  let loads = Array.make m 0. in
  let buckets = Array.make m [] in
  let rejected = ref [] in
  Array.iter
    (fun i ->
      let w = s.Problem.weights.(i) in
      let j = feasible_scan loads m cap w 0 (-1) 0. in
      if j >= 0 && accept loads j i then begin
        (* lint: allow-hot-alloc-in-loop "the bucket lists are the output partition, not churn" *)
        buckets.(j) <- s.Problem.item_arr.(i) :: buckets.(j);
        loads.(j) <- loads.(j) +. w
      end
      else
        (* lint: allow-hot-alloc-in-loop "the rejection list is the output, not churn" *)
        rejected := s.Problem.item_arr.(i) :: !rejected)
    order;
  {
    Solution.partition = Rt_partition.Partition.of_buckets buckets;
    rejected = List.rev !rejected;
  }

let positions (s : Problem.soa) = Array.init s.Problem.n (fun i -> i)

(* positional mirror of [Task.compare_item_weight_desc]: weight
   descending, id ascending on ties — a total order, so [Array.sort]'s
   instability is unobservable. The branches below are [Float.compare]
   unfolded for finite arguments (item weights are finite in any
   well-formed instance). Full-instance runs should use the precomputed
   [s.order_weight_desc] instead (sorted once per instance — the
   per-run sort was over half of an ltf run at n=10^3); this entry
   point remains for subset re-sorts (density repair). *)
let sort_weight_desc (s : Problem.soa) order =
  let w = s.Problem.weights in
  let ids = s.Problem.ids in
  Array.sort
    (fun a b ->
      let wa = w.(a) in
      let wb = w.(b) in
      if Fc.exact_lt wb wa then -1
      else if Fc.exact_lt wa wb then 1
      else Int.compare ids.(a) ids.(b))
    order;
  order

let always _ _ _ = true

let ltf_reject (p : Problem.t) =
  let s = Problem.soa p in
  pack_positions p ~accept:always s.Problem.order_weight_desc

let unsorted_reject (p : Problem.t) =
  pack_positions p ~accept:always (positions (Problem.soa p))

let marginal_greedy (p : Problem.t) =
  let s = Problem.soa p in
  (* per-processor memo of [energy loads.(j)]: [energy] is a pure
     function of the load, so reusing the previous value while the load
     is unchanged (no placement landed on [j]) yields the same bits as
     re-evaluating — halving the energy calls of a probe-heavy run. The
     NaN sentinel never matches a real load, so first probes fill in. *)
  let cached_load = Array.make p.m Float.nan in
  let cached_energy = Array.make p.m 0. in
  let accept loads j i =
    let l = loads.(j) in
    if not (Fc.exact_eq cached_load.(j) l) then begin
      cached_load.(j) <- l;
      cached_energy.(j) <- s.Problem.energy l
    end;
    let marginal =
      s.Problem.energy (l +. s.Problem.weights.(i)) -. cached_energy.(j)
    in
    Rt_prelude.Float_cmp.leq marginal s.Problem.penalties.(i)
  in
  pack_positions p ~accept s.Problem.order_weight_desc

let random_reject rng (p : Problem.t) =
  let cap = Problem.capacity p in
  let items = Rt_prelude.Rng.shuffle rng p.items in
  List.fold_left
    (fun (partition, rejected) (it : Task.item) ->
      let feasible =
        List.filter
          (fun j ->
            Rt_prelude.Float_cmp.leq
              (Rt_partition.Partition.load partition j +. it.weight)
              cap)
          (Rt_prelude.Math_util.range 0 (p.m - 1))
      in
      match feasible with
      | [] -> (partition, it :: rejected)
      | _ ->
          let j = Rt_prelude.Rng.choice rng feasible in
          (Rt_partition.Partition.add partition j it, rejected))
    (Rt_partition.Partition.empty ~m:p.m, [])
    items
  |> fun (partition, rejected) ->
  { Solution.partition; rejected = List.rev rejected }

let total_cost (p : Problem.t) solution =
  match Solution.cost p solution with
  | Ok c -> c.Solution.total
  | Error msg -> invalid_arg ("Greedy: internal solution invalid: " ^ msg)

(* positional mirror of the old density comparator: penalty per unit
   weight ascending, id ascending on ties *)
let density_asc (s : Problem.soa) a b =
  let c =
    Float.compare
      (s.Problem.penalties.(a) /. s.Problem.weights.(a))
      (s.Problem.penalties.(b) /. s.Problem.weights.(b))
  in
  if c <> 0 then c else Int.compare s.Problem.ids.(a) s.Problem.ids.(b)

(* pack by LTF; if some item does not fit, drop the cheapest-density item
   and retry *)
let density_reject (p : Problem.t) =
  let s = Problem.soa p in
  let cap = Problem.capacity p in
  let pack accepted =
    pack_positions p ~accept:always
      (sort_weight_desc s (Array.of_list accepted))
  in
  let items_of positions = List.map (fun i -> s.Problem.item_arr.(i)) positions in
  (* phase 1: repair to feasibility (ltf_reject already force-rejects
     overflow; we instead choose *which* item to drop by density) *)
  let rec repair accepted rejected =
    let trial = pack accepted in
    if trial.Solution.rejected = [] then (trial, rejected)
    else begin
      match List.sort (density_asc s) accepted with
      | [] -> (trial, rejected)
      | cheapest :: _ ->
          repair
            (List.filter (fun i -> i <> cheapest) accepted)
            (cheapest :: rejected)
    end
  in
  let fitting, oversize =
    List.partition
      (fun i -> Rt_prelude.Float_cmp.leq s.Problem.weights.(i) cap)
      (Array.to_list (positions s))
  in
  let packed, dropped = repair fitting oversize in
  let base =
    { packed with Solution.rejected = packed.Solution.rejected @ items_of dropped }
  in
  (* phase 2: trimming — reject any further item that still pays off *)
  let position_of (it : Task.item) =
    Hashtbl.find s.Problem.index_of it.item_id
  in
  let rec trim solution =
    let current = total_cost p solution in
    let accepted =
      List.map position_of
        (Rt_partition.Partition.all_items solution.Solution.partition)
    in
    let try_drop i =
      let remaining = List.filter (fun x -> x <> i) accepted in
      let repacked = pack remaining in
      if repacked.Solution.rejected <> [] then None
      else begin
        let candidate =
          {
            repacked with
            Solution.rejected =
              s.Problem.item_arr.(i) :: solution.Solution.rejected;
          }
        in
        let c = total_cost p candidate in
        (* strict improvement with a relative margin; exact on purpose *)
        if Fc.exact_lt c (current -. (1e-12 *. Float.max 1. current)) then
          Some candidate
        else None
      end
    in
    match List.find_map try_drop (List.sort (density_asc s) accepted) with
    | Some better -> trim better
    | None -> solution
  in
  trim base

let best_of algorithms (p : Problem.t) =
  match algorithms with
  | [] -> invalid_arg "Greedy.best_of: empty list"
  | a :: rest ->
      List.fold_left
        (fun best alg ->
          let s = alg p in
          if Fc.exact_lt (total_cost p s) (total_cost p best) then s else best)
        (a p) rest

let named =
  [
    ("ltf-reject", ltf_reject);
    ("marginal", marginal_greedy);
    ("density", density_reject);
    ("unsorted", unsorted_reject);
  ]
