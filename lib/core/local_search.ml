module Fc = Rt_prelude.Float_cmp

open Rt_task

(* Delta-cost search state on the SoA view: buckets hold *positions* into
   [Problem.soa] (oldest first, so scanning top-down replicates the
   newest-first list order of [Partition.bucket]), [loads] is maintained
   incrementally, and [energies.(j)] caches the pure value
   [energy loads.(j)] so every scan reads it instead of re-evaluating the
   rate model. Incremental float updates drift by one ulp per thousands of
   moves, so [renormalize] rebuilds both arrays from scratch every
   [renorm_every] applied moves — in the same newest-first summation order
   as [Partition.of_buckets], keeping the state exactly equal to a
   from-scratch [Solution.cost] re-evaluation. *)
type state = {
  m : int;
  soa : Problem.soa;
  bidx : int array array;  (* bidx.(j).(0 .. blen.(j)-1): positions *)
  blen : int array;
  loads : float array;
  energies : float array;
  mutable rejected : Task.item list;
}

let push st j pos =
  let len = st.blen.(j) in
  let arr = st.bidx.(j) in
  let arr =
    if len < Array.length arr then arr
    else begin
      let bigger = Array.make (max 4 (2 * len)) 0 in
      Array.blit arr 0 bigger 0 len;
      st.bidx.(j) <- bigger;
      bigger
    end
  in
  arr.(len) <- pos;
  st.blen.(j) <- len + 1

(* shift-remove the entry at index [i], preserving relative order (the
   list-filter removal this replaces kept order too) *)
let remove_at st j i =
  let arr = st.bidx.(j) in
  let len = st.blen.(j) in
  Array.blit arr (i + 1) arr i (len - 1 - i);
  st.blen.(j) <- len - 1

let state_of_solution (p : Problem.t) (s : Solution.t) =
  let soa = Problem.soa p in
  let m = Rt_partition.Partition.m s.partition in
  let position_of (it : Task.item) =
    Hashtbl.find soa.Problem.index_of it.item_id
  in
  let bidx =
    Array.init m (fun j ->
        (* bucket lists are newest first; store oldest first *)
        Array.of_list
          (List.rev_map position_of (Rt_partition.Partition.bucket s.partition j)))
  in
  let loads = Rt_partition.Partition.loads s.partition in
  {
    m;
    soa;
    bidx;
    blen = Array.map Array.length bidx;
    loads;
    energies = Array.map soa.Problem.energy loads;
    rejected = s.rejected;
  }

(* rebuild one bucket's newest-first list representation; the conses are
   the output, not churn *)
let rec build_bucket_list st j i acc =
  if i >= st.blen.(j) then acc
  else
    let acc =
      (* lint: allow-hot-alloc-in-loop "one cons per item of the final partition" *)
      st.soa.Problem.item_arr.(st.bidx.(j).(i)) :: acc
    in
    build_bucket_list st j (i + 1) acc

let solution_of_state st =
  let buckets = Array.init st.m (fun j -> build_bucket_list st j 0 []) in
  {
    Solution.partition = Rt_partition.Partition.of_buckets buckets;
    rejected = st.rejected;
  }

(* newest-first summation, the order [Partition.of_buckets] uses, so a
   renormalized state equals a from-scratch re-evaluation exactly *)
let rec sum_bucket st j i acc =
  if i < 0 then acc
  else sum_bucket st j (i - 1) (acc +. st.soa.Problem.weights.(st.bidx.(j).(i)))

let renormalize st =
  for j = 0 to st.m - 1 do
    let l = sum_bucket st j (st.blen.(j) - 1) 0. in
    st.loads.(j) <- l;
    st.energies.(j) <- st.soa.Problem.energy l
  done

(* one full renormalization per this many applied moves bounds the
   accumulated float drift of the O(1) load updates *)
let renorm_every = 4096

type budgeted = { solution : Solution.t; moves : int; exhausted : bool }

(* Move loop on a pre-validated solution; returns the improved solution,
   the number of moves applied, and whether the step budget stopped the
   loop while a scan was still finding improving moves. *)
let improve_state ~max_moves (p : Problem.t) (s : Solution.t) =
  let cap = Problem.capacity p in
  let st = state_of_solution p s in
  let soa = st.soa in
  let energy l = soa.Problem.energy l in
  let weight pos = soa.Problem.weights.(pos) in
  (* Gain tolerance. Scaled from the energy at full capacity — the upper
     bound of any bucket's energy — rather than from the maximum *initial*
     load: accept moves can grow a bucket well past the starting scale,
     and a tolerance frozen at the smaller scale goes stale (too tight
     relative to the float noise of the grown terms). One capacity-derived
     value is correct for the whole run. *)
  let eps = 1e-9 *. Float.max 1. (energy cap +. 1.) in
  let m = st.m in
  let fits l w = Rt_prelude.Float_cmp.leq (l +. w) cap in

  let apply_remove j i w =
    remove_at st j i;
    st.loads.(j) <- st.loads.(j) -. w
  in
  let apply_add j pos w =
    push st j pos;
    st.loads.(j) <- st.loads.(j) +. w
  in
  let refresh j = st.energies.(j) <- energy st.loads.(j) in

  let try_reject () =
    (* first item (buckets ascending, newest first within) whose
       rejection pays: saved marginal energy beats its penalty *)
    let rec find_bucket j i =
      if i < 0 then if j + 1 >= m then None else find_bucket (j + 1) (st.blen.(j + 1) - 1)
      else begin
        let pos = st.bidx.(j).(i) in
        if
          Fc.exact_gt
            (st.energies.(j)
            -. energy (st.loads.(j) -. weight pos)
            -. soa.Problem.penalties.(pos))
            eps
        then Some (j, i)
        else find_bucket j (i - 1)
      end
    in
    match find_bucket 0 (st.blen.(0) - 1) with
    | Some (j, i) ->
        let pos = st.bidx.(j).(i) in
        apply_remove j i (weight pos);
        refresh j;
        st.rejected <- soa.Problem.item_arr.(pos) :: st.rejected;
        true
    | None -> false
  in

  let min_load_feasible w =
    let rec scan j best_j best_l =
      if j >= m then if best_j < 0 then None else Some best_j
      else
        let l = st.loads.(j) in
        if fits l w && (best_j < 0 || not (Fc.exact_le best_l l)) then
          scan (j + 1) j l
        else scan (j + 1) best_j best_l
    in
    scan 0 (-1) 0.
  in

  let try_accept () =
    let pick =
      List.find_map
        (fun (it : Task.item) ->
          match min_load_feasible it.weight with
          | None -> None
          | Some j ->
              let marginal =
                energy (st.loads.(j) +. it.weight) -. st.energies.(j)
              in
              if Fc.exact_gt (it.item_penalty -. marginal) eps then
                Some (it, j)
              else None)
        st.rejected
    in
    match pick with
    | None -> false
    | Some (it, j) ->
        st.rejected <-
          List.filter
            (fun (x : Task.item) -> x.item_id <> it.item_id)
            st.rejected;
        apply_add j (Hashtbl.find soa.Problem.index_of it.item_id) it.weight;
        refresh j;
        true
  in

  (* relocation gain of moving the item at position [pos] from processor
     [j] to [k]; pure in the scan state, so the winning gain can be
     recomputed bit-for-bit instead of carried in a boxed pair *)
  let move_gain j pos k =
    st.energies.(j) +. st.energies.(k)
    -. energy (st.loads.(j) -. weight pos)
    -. energy (st.loads.(k) +. weight pos)
  in

  let try_move () =
    let rec best_dest j pos k best_k best_gain =
      if k >= m then best_k
      else if k <> j && fits st.loads.(k) (weight pos) then begin
        let gain = move_gain j pos k in
        if best_k < 0 || not (Fc.exact_ge best_gain gain) then
          best_dest j pos (k + 1) k gain
        else best_dest j pos (k + 1) best_k best_gain
      end
      else best_dest j pos (k + 1) best_k best_gain
    in
    let rec scan_items j i =
      if i < 0 then
        if j + 1 >= m then None else scan_items (j + 1) (st.blen.(j + 1) - 1)
      else begin
        let pos = st.bidx.(j).(i) in
        let k = best_dest j pos 0 (-1) 0. in
        if k >= 0 && Fc.exact_gt (move_gain j pos k) eps then Some (j, i, k)
        else scan_items j (i - 1)
      end
    in
    match scan_items 0 (st.blen.(0) - 1) with
    | Some (j, i, k) ->
        let pos = st.bidx.(j).(i) in
        let w = weight pos in
        apply_remove j i w;
        apply_add k pos w;
        refresh j;
        refresh k;
        true
    | None -> false
  in

  let try_swap () =
    (* first improving exchange, scanned in the same order as before the
       SoA pass: j < k ascending, [a] newest-first along bucket j, [b]
       newest-first along bucket k *)
    let rec over_j j = if j > m - 2 then None else over_k j (j + 1)
    and over_k j k =
      if k > m - 1 then over_j (j + 1) else scan_a j k (st.blen.(j) - 1)
    and scan_a j k ia =
      if ia < 0 then over_k j (k + 1)
      else
        match scan_b j k ia (st.blen.(k) - 1) with
        | Some _ as found -> found
        | None -> scan_a j k (ia - 1)
    and scan_b j k ia ib =
      if ib < 0 then None
      else begin
        let wa = weight st.bidx.(j).(ia) and wb = weight st.bidx.(k).(ib) in
        let lj = st.loads.(j) -. wa +. wb in
        let lk = st.loads.(k) -. wb +. wa in
        if
          Rt_prelude.Float_cmp.leq lj cap
          && Rt_prelude.Float_cmp.leq lk cap
          && Fc.exact_gt
               (st.energies.(j) +. st.energies.(k) -. energy lj -. energy lk)
               eps
        then Some (j, k, ia, ib)
        else scan_b j k ia (ib - 1)
      end
    in
    match over_j 0 with
    | None -> false
    | Some (j, k, ia, ib) ->
        let pa = st.bidx.(j).(ia) and pb = st.bidx.(k).(ib) in
        let wa = weight pa and wb = weight pb in
        apply_remove j ia wa;
        apply_remove k ib wb;
        apply_add j pb wb;
        apply_add k pa wa;
        refresh j;
        refresh k;
        true
  in

  let moves = ref 0 in
  let progress = ref true in
  (* lint: allow-budget-no-poll "the budget is a move count, not wall time: each applied move strictly decreases cost and a scan is O(m x items), so max_moves bounds the work" *)
  while !progress && !moves < max_moves do
    progress := try_reject () || try_accept () || try_move () || try_swap ();
    if !progress then begin
      incr moves;
      if !moves mod renorm_every = 0 then renormalize st
    end
  done;
  (* [!progress] at exit means the loop was cut off by the budget with an
     improving move just applied — convergence is not proven *)
  (solution_of_state st, !moves, !progress)

let improve_budgeted ?(max_moves = 10_000) (p : Problem.t) (s : Solution.t) =
  match Solution.cost p s with
  | Error msg -> Error ("Local_search.improve: " ^ msg)
  | Ok _ ->
      let solution, moves, exhausted = improve_state ~max_moves p s in
      Ok { solution; moves; exhausted }

let improve ?max_moves (p : Problem.t) (s : Solution.t) =
  match improve_budgeted ?max_moves p s with
  | Ok b -> b.solution
  | Error msg -> invalid_arg msg

let with_local_search ?max_moves algorithm p = improve ?max_moves p (algorithm p)

module Drift_test = struct
  type t = { p : Problem.t; st : state; cap : float }

  let init p s =
    match Solution.cost p s with
    | Error msg -> invalid_arg ("Local_search.Drift_test.init: " ^ msg)
    | Ok _ -> { p; st = state_of_solution p s; cap = Problem.capacity p }

  let random_step rng { st; cap; _ } =
    let m = st.m in
    let j = Rt_prelude.Rng.int rng ~lo:0 ~hi:(m - 1) in
    if st.blen.(j) = 0 then false
    else begin
      let i = Rt_prelude.Rng.int rng ~lo:0 ~hi:(st.blen.(j) - 1) in
      let pos = st.bidx.(j).(i) in
      let w = st.soa.Problem.weights.(pos) in
      if Rt_prelude.Rng.bool rng || m < 2 then begin
        (* relocation to a random other processor, if it fits *)
        let k = Rt_prelude.Rng.int rng ~lo:0 ~hi:(m - 1) in
        if k = j || not (Rt_prelude.Float_cmp.leq (st.loads.(k) +. w) cap)
        then false
        else begin
          remove_at st j i;
          st.loads.(j) <- st.loads.(j) -. w;
          push st k pos;
          st.loads.(k) <- st.loads.(k) +. w;
          st.energies.(j) <- st.soa.Problem.energy st.loads.(j);
          st.energies.(k) <- st.soa.Problem.energy st.loads.(k);
          true
        end
      end
      else begin
        (* exchange with a random item on a random other processor *)
        let k = Rt_prelude.Rng.int rng ~lo:0 ~hi:(m - 1) in
        if k = j || st.blen.(k) = 0 then false
        else begin
          let i2 = Rt_prelude.Rng.int rng ~lo:0 ~hi:(st.blen.(k) - 1) in
          let pos2 = st.bidx.(k).(i2) in
          let w2 = st.soa.Problem.weights.(pos2) in
          let lj = st.loads.(j) -. w +. w2 in
          let lk = st.loads.(k) -. w2 +. w in
          if
            Rt_prelude.Float_cmp.leq lj cap
            && Rt_prelude.Float_cmp.leq lk cap
          then begin
            remove_at st j i;
            st.loads.(j) <- st.loads.(j) -. w;
            remove_at st k i2;
            st.loads.(k) <- st.loads.(k) -. w2;
            push st j pos2;
            st.loads.(j) <- st.loads.(j) +. w2;
            push st k pos;
            st.loads.(k) <- st.loads.(k) +. w;
            st.energies.(j) <- st.soa.Problem.energy st.loads.(j);
            st.energies.(k) <- st.soa.Problem.energy st.loads.(k);
            true
          end
          else false
        end
      end
    end

  let renormalize { st; _ } = renormalize st
  let loads { st; _ } = Array.copy st.loads

  let cost { st; _ } =
    (* same association as [Solution.cost]: left fold over buckets, then
       the penalty sum *)
    let energy_total = Array.fold_left ( +. ) 0. st.energies in
    energy_total +. Taskset.total_penalty_items st.rejected

  let solution { st; _ } = solution_of_state st
end
