module Fc = Rt_prelude.Float_cmp

open Rt_task

type state = {
  buckets : Task.item list array;
  loads : float array;
  mutable rejected : Task.item list;
}

let state_of_solution (s : Solution.t) =
  let m = Rt_partition.Partition.m s.partition in
  {
    buckets = Array.init m (fun j -> Rt_partition.Partition.bucket s.partition j);
    loads = Rt_partition.Partition.loads s.partition;
    rejected = s.rejected;
  }

let solution_of_state st =
  {
    Solution.partition = Rt_partition.Partition.of_buckets st.buckets;
    rejected = st.rejected;
  }

let remove_item st j (it : Task.item) =
  st.buckets.(j) <-
    List.filter (fun (x : Task.item) -> x.item_id <> it.item_id) st.buckets.(j);
  st.loads.(j) <- st.loads.(j) -. it.weight

let add_item st j (it : Task.item) =
  st.buckets.(j) <- it :: st.buckets.(j);
  st.loads.(j) <- st.loads.(j) +. it.weight

type budgeted = { solution : Solution.t; moves : int; exhausted : bool }

(* Move loop on a pre-validated solution; returns the improved solution,
   the number of moves applied, and whether the step budget stopped the
   loop while a scan was still finding improving moves. *)
let improve_state ~max_moves (p : Problem.t) (s : Solution.t) =
  let cap = Problem.capacity p in
  let st = state_of_solution s in
  let energy l = Problem.bucket_energy p l in
  (* Gain tolerance. Scaled from the energy at full capacity — the upper
     bound of any bucket's energy — rather than from the maximum *initial*
     load: accept moves can grow a bucket well past the starting scale,
     and a tolerance frozen at the smaller scale goes stale (too tight
     relative to the float noise of the grown terms). One capacity-derived
     value is correct for the whole run. *)
  let eps = 1e-9 *. Float.max 1. (energy cap +. 1.) in
  let m = Array.length st.loads in
  let fits l w = Rt_prelude.Float_cmp.leq (l +. w) cap in

  let try_reject () =
    (* first item (buckets ascending, list order within) whose rejection
       pays: saved marginal energy beats its penalty *)
    let rec find_bucket j items =
      match items with
      | [] -> if j + 1 >= m then None else find_bucket (j + 1) st.buckets.(j + 1)
      | (it : Task.item) :: rest ->
          if
            Fc.exact_gt
              (energy st.loads.(j)
              -. energy (st.loads.(j) -. it.weight)
              -. it.item_penalty)
              eps
          then Some (j, it)
          else find_bucket j rest
    in
    match find_bucket 0 st.buckets.(0) with
    | Some (j, it) ->
        remove_item st j it;
        st.rejected <- it :: st.rejected;
        true
    | None -> false
  in

  let min_load_feasible w =
    let rec scan j best_j best_l =
      if j >= m then if best_j < 0 then None else Some best_j
      else
        let l = st.loads.(j) in
        if fits l w && (best_j < 0 || not (Fc.exact_le best_l l)) then
          scan (j + 1) j l
        else scan (j + 1) best_j best_l
    in
    scan 0 (-1) 0.
  in

  let try_accept () =
    let pick =
      List.find_map
        (fun (it : Task.item) ->
          match min_load_feasible it.weight with
          | None -> None
          | Some j ->
              let marginal =
                energy (st.loads.(j) +. it.weight) -. energy st.loads.(j)
              in
              if Fc.exact_gt (it.item_penalty -. marginal) eps then
                Some (it, j)
              else None)
        st.rejected
    in
    match pick with
    | None -> false
    | Some (it, j) ->
        st.rejected <-
          List.filter
            (fun (x : Task.item) -> x.item_id <> it.item_id)
            st.rejected;
        add_item st j it;
        true
  in

  (* relocation gain of moving [it] from processor [j] to [k]; pure in
     the scan state, so the winning gain can be recomputed bit-for-bit
     instead of carried in a boxed pair *)
  let move_gain j (it : Task.item) k =
    energy st.loads.(j) +. energy st.loads.(k)
    -. energy (st.loads.(j) -. it.weight)
    -. energy (st.loads.(k) +. it.weight)
  in

  let try_move () =
    let rec best_dest j (it : Task.item) k best_k best_gain =
      if k >= m then best_k
      else if k <> j && fits st.loads.(k) it.weight then begin
        let gain = move_gain j it k in
        if best_k < 0 || not (Fc.exact_ge best_gain gain) then
          best_dest j it (k + 1) k gain
        else best_dest j it (k + 1) best_k best_gain
      end
      else best_dest j it (k + 1) best_k best_gain
    in
    let rec scan_items j items =
      match items with
      | [] -> if j + 1 >= m then None else scan_items (j + 1) st.buckets.(j + 1)
      | (it : Task.item) :: rest ->
          let k = best_dest j it 0 (-1) 0. in
          if k >= 0 && Fc.exact_gt (move_gain j it k) eps then Some (j, it, k)
          else scan_items j rest
    in
    match scan_items 0 st.buckets.(0) with
    | Some (j, it, k) ->
        remove_item st j it;
        add_item st k it;
        true
    | None -> false
  in

  let try_swap () =
    (* first improving exchange, scanned in the same order as the nested
       for/iter loops this replaces: j < k ascending, [a] along bucket j,
       [b] along bucket k — mutually recursive so nothing allocates and
       finding a swap just returns instead of raising *)
    let rec over_j j =
      if j > m - 2 then None else over_k j (j + 1)
    and over_k j k =
      if k > m - 1 then over_j (j + 1) else scan_a j k st.buckets.(j)
    and scan_a j k items =
      match items with
      | [] -> over_k j (k + 1)
      | a :: rest -> (
          match scan_b j k a st.buckets.(k) with
          | Some _ as found -> found
          | None -> scan_a j k rest)
    and scan_b j k (a : Task.item) items =
      match items with
      | [] -> None
      | (b : Task.item) :: rest ->
          let lj = st.loads.(j) -. a.weight +. b.weight in
          let lk = st.loads.(k) -. b.weight +. a.weight in
          if
            Rt_prelude.Float_cmp.leq lj cap
            && Rt_prelude.Float_cmp.leq lk cap
            && Fc.exact_gt
                 (energy st.loads.(j) +. energy st.loads.(k) -. energy lj
                 -. energy lk)
                 eps
          then Some (j, k, a, b)
          else scan_b j k a rest
    in
    match over_j 0 with
    | None -> false
    | Some (j, k, a, b) ->
        remove_item st j a;
        remove_item st k b;
        add_item st j b;
        add_item st k a;
        true
  in

  let moves = ref 0 in
  let progress = ref true in
  (* lint: allow-budget-no-poll "the budget is a move count, not wall time: each applied move strictly decreases cost and a scan is O(m x items), so max_moves bounds the work" *)
  while !progress && !moves < max_moves do
    progress := try_reject () || try_accept () || try_move () || try_swap ();
    if !progress then incr moves
  done;
  (* [!progress] at exit means the loop was cut off by the budget with an
     improving move just applied — convergence is not proven *)
  (solution_of_state st, !moves, !progress)

let improve_budgeted ?(max_moves = 10_000) (p : Problem.t) (s : Solution.t) =
  match Solution.cost p s with
  | Error msg -> Error ("Local_search.improve: " ^ msg)
  | Ok _ ->
      let solution, moves, exhausted = improve_state ~max_moves p s in
      Ok { solution; moves; exhausted }

let improve ?max_moves (p : Problem.t) (s : Solution.t) =
  match improve_budgeted ?max_moves p s with
  | Ok b -> b.solution
  | Error msg -> invalid_arg msg

let with_local_search ?max_moves algorithm p = improve ?max_moves p (algorithm p)
