module Fc = Rt_prelude.Float_cmp

open Rt_task

type state = {
  buckets : Task.item list array;
  loads : float array;
  mutable rejected : Task.item list;
}

let state_of_solution (s : Solution.t) =
  let m = Rt_partition.Partition.m s.partition in
  {
    buckets = Array.init m (fun j -> Rt_partition.Partition.bucket s.partition j);
    loads = Rt_partition.Partition.loads s.partition;
    rejected = s.rejected;
  }

let solution_of_state st =
  {
    Solution.partition = Rt_partition.Partition.of_buckets st.buckets;
    rejected = st.rejected;
  }

let remove_item st j (it : Task.item) =
  st.buckets.(j) <-
    List.filter (fun (x : Task.item) -> x.item_id <> it.item_id) st.buckets.(j);
  st.loads.(j) <- st.loads.(j) -. it.weight

let add_item st j (it : Task.item) =
  st.buckets.(j) <- it :: st.buckets.(j);
  st.loads.(j) <- st.loads.(j) +. it.weight

type budgeted = { solution : Solution.t; moves : int; exhausted : bool }

(* Move loop on a pre-validated solution; returns the improved solution,
   the number of moves applied, and whether the step budget stopped the
   loop while a scan was still finding improving moves. *)
let improve_state ~max_moves (p : Problem.t) (s : Solution.t) =
  let cap = Problem.capacity p in
  let st = state_of_solution s in
  let energy l = Problem.bucket_energy p l in
  (* Gain tolerance. Scaled from the energy at full capacity — the upper
     bound of any bucket's energy — rather than from the maximum *initial*
     load: accept moves can grow a bucket well past the starting scale,
     and a tolerance frozen at the smaller scale goes stale (too tight
     relative to the float noise of the grown terms). One capacity-derived
     value is correct for the whole run. *)
  let eps = 1e-9 *. Float.max 1. (energy cap +. 1.) in
  let m = Array.length st.loads in
  let fits l w = Rt_prelude.Float_cmp.leq (l +. w) cap in

  let try_reject () =
    let found = ref false in
    let j = ref 0 in
    while (not !found) && !j < m do
      (match
         List.find_opt
           (fun (it : Task.item) ->
             energy st.loads.(!j) -. energy (st.loads.(!j) -. it.weight)
             -. it.item_penalty
             |> Fun.flip Fc.exact_gt eps)
           st.buckets.(!j)
       with
      | Some it ->
          remove_item st !j it;
          st.rejected <- it :: st.rejected;
          found := true
      | None -> ());
      incr j
    done;
    !found
  in

  let min_load_feasible w =
    let best = ref None in
    Array.iteri
      (fun j l ->
        if fits l w then
          match !best with
          | Some (_, lb) when Fc.exact_le lb l -> ()
          | _ -> best := Some (j, l))
      st.loads;
    Option.map fst !best
  in

  let try_accept () =
    let pick =
      List.find_map
        (fun (it : Task.item) ->
          match min_load_feasible it.weight with
          | None -> None
          | Some j ->
              let marginal =
                energy (st.loads.(j) +. it.weight) -. energy st.loads.(j)
              in
              if Fc.exact_gt (it.item_penalty -. marginal) eps then
                Some (it, j)
              else None)
        st.rejected
    in
    match pick with
    | None -> false
    | Some (it, j) ->
        st.rejected <-
          List.filter
            (fun (x : Task.item) -> x.item_id <> it.item_id)
            st.rejected;
        add_item st j it;
        true
  in

  let try_move () =
    let found = ref false in
    let j = ref 0 in
    while (not !found) && !j < m do
      (match
         List.find_map
           (fun (it : Task.item) ->
             let l_j = st.loads.(!j) in
             let best = ref None in
             Array.iteri
               (fun k l_k ->
                 if k <> !j && fits l_k it.weight then begin
                   let gain =
                     energy l_j +. energy l_k
                     -. energy (l_j -. it.weight)
                     -. energy (l_k +. it.weight)
                   in
                   match !best with
                   | Some (_, g) when Fc.exact_ge g gain -> ()
                   | _ -> best := Some (k, gain)
                 end)
               st.loads;
             match !best with
             | Some (k, gain) when Fc.exact_gt gain eps -> Some (it, k)
             | _ -> None)
           st.buckets.(!j)
       with
      | Some (it, k) ->
          remove_item st !j it;
          add_item st k it;
          found := true
      | None -> ());
      incr j
    done;
    !found
  in

  let try_swap () =
    let result = ref None in
    (try
       for j = 0 to m - 2 do
         for k = j + 1 to m - 1 do
           List.iter
             (fun (a : Task.item) ->
               List.iter
                 (fun (b : Task.item) ->
                   let lj = st.loads.(j) -. a.weight +. b.weight in
                   let lk = st.loads.(k) -. b.weight +. a.weight in
                   if
                     Rt_prelude.Float_cmp.leq lj cap
                     && Rt_prelude.Float_cmp.leq lk cap
                   then begin
                     let gain =
                       energy st.loads.(j) +. energy st.loads.(k) -. energy lj
                       -. energy lk
                     in
                     if Fc.exact_gt gain eps then begin
                       result := Some (j, k, a, b);
                       raise Exit
                     end
                   end)
                 st.buckets.(k))
             st.buckets.(j)
         done
       done
     with Exit -> ());
    match !result with
    | None -> false
    | Some (j, k, a, b) ->
        remove_item st j a;
        remove_item st k b;
        add_item st j b;
        add_item st k a;
        true
  in

  let moves = ref 0 in
  let progress = ref true in
  while !progress && !moves < max_moves do
    progress := try_reject () || try_accept () || try_move () || try_swap ();
    if !progress then incr moves
  done;
  (* [!progress] at exit means the loop was cut off by the budget with an
     improving move just applied — convergence is not proven *)
  (solution_of_state st, !moves, !progress)

let improve_budgeted ?(max_moves = 10_000) (p : Problem.t) (s : Solution.t) =
  match Solution.cost p s with
  | Error msg -> Error ("Local_search.improve: " ^ msg)
  | Ok _ ->
      let solution, moves, exhausted = improve_state ~max_moves p s in
      Ok { solution; moves; exhausted }

let improve ?max_moves (p : Problem.t) (s : Solution.t) =
  match improve_budgeted ?max_moves p s with
  | Ok b -> b.solution
  | Error msg -> invalid_arg msg

let with_local_search ?max_moves algorithm p = improve ?max_moves p (algorithm p)
