let to_solution (s : Rt_exact.Search.solution) =
  { Solution.partition = s.partition; rejected = s.rejected }

let run solver (p : Problem.t) =
  let sol =
    solver ~m:p.m ~capacity:(Problem.capacity p)
      ~bucket_cost:(Problem.bucket_energy p) p.items
  in
  let solution = to_solution sol in
  (* cross-check the search's internal cost against the official one *)
  (match Solution.cost p solution with
  | Ok c ->
      if not (Rt_prelude.Float_cmp.approx_eq ~eps:1e-6 c.total sol.cost) then
        invalid_arg "Exact: search cost disagrees with Solution.cost"
  | Error msg -> invalid_arg ("Exact: invalid optimal solution: " ^ msg));
  solution

let exhaustive p = run Rt_exact.Search.exhaustive p

let branch_and_bound ?node_limit p =
  run (Rt_exact.Search.branch_and_bound ?node_limit) p

type budgeted = { solution : Solution.t; nodes : int; exhausted : bool }

let branch_and_bound_budgeted ?shared ?node_budget ?time_budget (p : Problem.t)
    =
  match
    Rt_exact.Search.branch_and_bound_budgeted ?shared ?node_budget ?time_budget
      ~m:p.m
      ~capacity:(Problem.capacity p)
      ~bucket_cost:(Problem.bucket_energy p) p.items
  with
  | Error _ as e -> e
  | Ok (a : Rt_exact.Search.anytime) -> (
      let solution = to_solution a.best in
      match Solution.cost p solution with
      | Error msg -> Error ("Exact: invalid best-so-far solution: " ^ msg)
      | Ok c ->
          if
            not (Rt_prelude.Float_cmp.approx_eq ~eps:1e-6 c.total a.best.cost)
          then Error "Exact: search cost disagrees with Solution.cost"
          else Ok { solution; nodes = a.nodes; exhausted = a.exhausted })

let optimal_cost ?node_limit p =
  let s = branch_and_bound ?node_limit p in
  match Solution.cost p s with
  | Ok c -> c.Solution.total
  | Error msg -> invalid_arg ("Exact.optimal_cost: " ^ msg)
