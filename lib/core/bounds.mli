(** Lower bounds on the optimal cost (the large-instance yardstick).

    For instances too big for exhaustive search, experiments normalize
    against [lower_bound], which relaxes the problem in two sound ways at
    once:

    - {e pooling}: any partition of accepted weight [W] onto [m] processors
      costs at least [m · horizon · rate(W/m)], because the optimal
      sustained-power rate is convex in the load (balancing is best) —
      so the energy term is bounded below by the perfectly balanced value;
    - {e fractional rejection}: allowing items to be accepted fractionally,
      the cheapest way to reject down to accepted weight [W] keeps the
      highest penalty-density items, a fractional-knapsack argument.

    The resulting one-dimensional function of [W] is convex, so a
    golden-section scan over [W ∈ [0, min(total, m·s_max)]] finds the
    relaxation's optimum. Every feasible solution costs at least this. *)

val lower_bound : Problem.t -> float [@rt.dim "joules"]
(** The pooled + fractional-rejection bound described above. *)

val balanced_energy : Problem.t -> accepted_weight:float -> float [@rt.dim "joules"]
(** [m · horizon · rate(W/m)] — the pooled energy term alone.
    @raise Invalid_argument if [W] is negative or above [m · s_max]. *)

val min_rejected_penalty :
  Problem.t -> accepted_weight:float -> float [@rt.dim "penalty"]
(** Fractional-knapsack minimum total penalty over rejections that bring
    the accepted weight down to [W] (0 when [W >=] total weight). *)
