module Fc = Rt_prelude.Float_cmp

open Rt_task

type soa = {
  n : int;
  ids : int array;
  weights : float array;
  penalties : float array;
  item_arr : Task.item array;
  index_of : (int, int) Hashtbl.t;
  order_weight_desc : int array;
  energy : float -> float;
}

type t = {
  proc : Rt_power.Processor.t;
  m : int;
  horizon : float;
  items : Task.item list;
  soa : soa;
}

(* Built once per instance at [make] time (immutable afterwards, so the
   view is safe to share across domains): positional float arrays replace
   the item-list walks on the hot paths, [index_of] gives O(1) id lookup,
   and [energy] is the prepared {!Rt_speed.Energy_rate.prepare_energy}
   evaluator — hull and critical speed hoisted out of the per-load call,
   one flat closure per call, no plan/option boxed (the schedulers only
   compare the scalar; [prepare_energy] is bit-identical to
   [optimal]'s rate × horizon, and raises past capacity, which the
   schedulers pre-check). *)
let build_soa ~proc ~horizon items =
  let item_arr = Array.of_list items in
  let n = Array.length item_arr in
  let ids = Array.map (fun (i : Task.item) -> i.item_id) item_arr in
  let weights = Array.map (fun (i : Task.item) -> i.weight) item_arr in
  let penalties = Array.map (fun (i : Task.item) -> i.item_penalty) item_arr in
  let index_of = Hashtbl.create (max 16 (2 * n)) in
  Array.iteri (fun idx id -> Hashtbl.replace index_of id idx) ids;
  let energy = Rt_speed.Energy_rate.prepare_energy proc ~horizon in
  (* the canonical LTF visit order (weight descending, id ascending on
     ties — [Task.compare_item_weight_desc] positionally, with
     [Float.compare] unfolded for the finite weights of a well-formed
     instance): a pure function of the instance, so sorted once here
     rather than on every greedy run. Read-only by contract — callers
     iterate it, never permute it. *)
  let order_weight_desc = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let wa = weights.(a) in
      let wb = weights.(b) in
      if Fc.exact_lt wb wa then -1
      else if Fc.exact_lt wa wb then 1
      else Int.compare ids.(a) ids.(b))
    order_weight_desc;
  { n; ids; weights; penalties; item_arr; index_of; order_weight_desc; energy }

let make ~proc ~m ~horizon items =
  if m < 1 then Error "Problem.make: m < 1"
  else if Fc.exact_le horizon 0. || not (Float.is_finite horizon) then
    Error "Problem.make: horizon must be finite and > 0"
  else if
    not (Task.distinct_ids (List.map (fun (i : Task.item) -> i.item_id) items))
  then Error "Problem.make: duplicate item ids"
  else if
    List.exists
      (fun (i : Task.item) -> not (Fc.exact_eq i.item_power_factor 1.))
      items
  then Error "Problem.make: non-unit power factors (see Rt_partition.Hetero)"
  else Ok { proc; m; horizon; items; soa = build_soa ~proc ~horizon items }

let of_frame ~proc ~m ~frame_length tasks =
  match Taskset.well_formed_frame tasks with
  | Error e -> Error ("Problem.of_frame: " ^ e)
  | Ok () ->
      if Fc.exact_le frame_length 0. then
        Error "Problem.of_frame: frame_length <= 0"
      else
        make ~proc ~m ~horizon:frame_length
          (Taskset.items_of_frames ~frame_length tasks)

let of_periodic ~proc ~m tasks =
  match Taskset.well_formed_periodic tasks with
  | Error e -> Error ("Problem.of_periodic: " ^ e)
  | Ok () -> (
      match tasks with
      | [] -> Error "Problem.of_periodic: empty task set"
      | _ -> (
          match Taskset.hyper_period_checked tasks with
          | Error e -> Error ("Problem.of_periodic: " ^ e)
          | Ok hp ->
              make ~proc ~m ~horizon:(float_of_int hp)
                (Taskset.items_of_periodics tasks)))

let capacity t = Rt_power.Processor.s_max t.proc

let load_factor t =
  Taskset.load_factor ~m:t.m ~s_max:(capacity t) t.items

let total_penalty t = Taskset.total_penalty_items t.items

let soa t = t.soa

let item t id =
  match Hashtbl.find_opt t.soa.index_of id with
  | Some idx -> Some t.soa.item_arr.(idx)
  | None -> None

let bucket_energy t load = t.soa.energy load

let pp ppf t =
  Format.fprintf ppf "@[<v>m=%d, horizon=%g, proc=%a@,load factor %.3f@,%a@]"
    t.m t.horizon Rt_power.Processor.pp t.proc (load_factor t)
    Taskset.pp_items t.items
