module Fc = Rt_prelude.Float_cmp

open Rt_task

type t = {
  proc : Rt_power.Processor.t;
  m : int;
  horizon : float;
  items : Task.item list;
}

let make ~proc ~m ~horizon items =
  if m < 1 then Error "Problem.make: m < 1"
  else if Fc.exact_le horizon 0. || not (Float.is_finite horizon) then
    Error "Problem.make: horizon must be finite and > 0"
  else if
    not (Task.distinct_ids (List.map (fun (i : Task.item) -> i.item_id) items))
  then Error "Problem.make: duplicate item ids"
  else if
    List.exists
      (fun (i : Task.item) -> not (Fc.exact_eq i.item_power_factor 1.))
      items
  then Error "Problem.make: non-unit power factors (see Rt_partition.Hetero)"
  else Ok { proc; m; horizon; items }

let of_frame ~proc ~m ~frame_length tasks =
  match Taskset.well_formed_frame tasks with
  | Error e -> Error ("Problem.of_frame: " ^ e)
  | Ok () ->
      if Fc.exact_le frame_length 0. then
        Error "Problem.of_frame: frame_length <= 0"
      else
        make ~proc ~m ~horizon:frame_length
          (Taskset.items_of_frames ~frame_length tasks)

let of_periodic ~proc ~m tasks =
  match Taskset.well_formed_periodic tasks with
  | Error e -> Error ("Problem.of_periodic: " ^ e)
  | Ok () -> (
      match tasks with
      | [] -> Error "Problem.of_periodic: empty task set"
      | _ -> (
          match Taskset.hyper_period_checked tasks with
          | Error e -> Error ("Problem.of_periodic: " ^ e)
          | Ok hp ->
              make ~proc ~m ~horizon:(float_of_int hp)
                (Taskset.items_of_periodics tasks)))

let capacity t = Rt_power.Processor.s_max t.proc

let load_factor t =
  Taskset.load_factor ~m:t.m ~s_max:(capacity t) t.items

let total_penalty t = Taskset.total_penalty_items t.items

let item t id = Taskset.item_by_id t.items id

let bucket_energy t load =
  match Rt_speed.Energy_rate.energy t.proc ~u:load ~horizon:t.horizon with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "Problem.bucket_energy: load %.6g exceeds capacity %.6g"
           load (capacity t))

let pp ppf t =
  Format.fprintf ppf "@[<v>m=%d, horizon=%g, proc=%a@,load factor %.3f@,%a@]"
    t.m t.horizon Rt_power.Processor.pp t.proc (load_factor t)
    Taskset.pp_items t.items
