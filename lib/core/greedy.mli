(** The heuristic rejection schedulers (the paper's contribution class).

    All algorithms return solutions that are feasible by construction:
    items that fit nowhere are rejected, never squeezed. They differ in
    {e ordering} and in {e when they choose to reject}:

    - {!ltf_reject} — Largest-Task-First with overflow rejection: the
      accept-as-much-as-possible policy. Rejection happens only when
      forced; among forced rejections it keeps large tasks out (they are
      placed early, so it is small leftovers that overflow). The natural
      lift of the LTF family to the bounded-speed setting.
    - {!marginal_greedy} — energy-aware acceptance: a task is accepted
      only if the marginal energy of placing it on the least-loaded
      feasible processor is below its penalty. Rejects {e voluntarily}
      when running a task costs more than dropping it.
    - {!density_reject} — penalty-density repair: start from accept-all,
      and while the LTF packing is infeasible, drop the item with the
      lowest penalty per unit weight; then a trimming pass drops any item
      whose rejection still lowers the total cost.
    - {!unsorted_reject} — the RAND-style reference baseline (min-load
      greedy in input order, overflow rejection).
    - {!random_reject} — fully random placement (uniform processor among
      feasible ones, random order); the weakest baseline.

    Marginal energies are computed against the least-loaded feasible
    processor — correct because the optimal rate is convex, so marginal
    cost is smallest where the load is smallest. *)

type algorithm = Problem.t -> Solution.t

val ltf_reject : algorithm
  [@@rt.hot "inner loop of every offline experiment sweep"]

val marginal_greedy : algorithm
  [@@rt.hot "inner loop of every offline experiment sweep"]
val density_reject : algorithm
val unsorted_reject : algorithm
val random_reject : Rt_prelude.Rng.t -> algorithm

val best_of : algorithm list -> algorithm
(** Run all, return the lowest total cost (ties keep the earliest).
    @raise Invalid_argument on the empty list. *)

val named : (string * algorithm) list
(** The deterministic algorithms above, keyed by the names used in
    experiment tables: ["ltf-reject"; "marginal"; "density"; "unsorted"]. *)
