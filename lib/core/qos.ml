module Fc = Rt_prelude.Float_cmp

open Rt_task

type level = { weight : float; level_penalty : float }

type qtask = { id : int; levels : level list }

let level ~weight ~penalty =
  if Fc.exact_lt weight 0. || not (Float.is_finite weight) then
    invalid_arg "Qos.level: weight must be finite and >= 0";
  if Fc.exact_lt penalty 0. || not (Float.is_finite penalty) then
    invalid_arg "Qos.level: penalty must be finite and >= 0";
  { weight; level_penalty = penalty }

let qtask ~id ~levels =
  if levels = [] then invalid_arg "Qos.qtask: empty level menu";
  let sorted =
    List.sort (fun a b -> Float.compare b.weight a.weight) levels
  in
  let rec distinct = function
    | a :: (b :: _ as rest) ->
        (not (Fc.exact_eq a.weight b.weight)) && distinct rest
    | _ -> true
  in
  if not (distinct sorted) then invalid_arg "Qos.qtask: duplicate weights";
  { id; levels = sorted }

let of_item (it : Task.item) =
  qtask ~id:it.item_id
    ~levels:
      [
        level ~weight:it.weight ~penalty:0.;
        level ~weight:0. ~penalty:it.item_penalty;
      ]

let graceful ?(steps = 4) ?(curve = 1.) (it : Task.item) =
  if steps < 2 then invalid_arg "Qos.graceful: steps < 2";
  if Fc.exact_le curve 0. || not (Float.is_finite curve) then
    invalid_arg "Qos.graceful: curve must be finite and > 0";
  let levels =
    List.map
      (fun k ->
        let f = float_of_int k /. float_of_int (steps - 1) in
        level ~weight:(f *. it.weight)
          ~penalty:(((1. -. f) ** curve) *. it.item_penalty))
      (Rt_prelude.Math_util.range 0 (steps - 1))
  in
  qtask ~id:it.item_id ~levels

type choice = { task_id : int; level_index : int }

type solution = {
  choices : choice list;
  partition : Rt_partition.Partition.t;
}

let chosen_level tasks c =
  match List.find_opt (fun t -> t.id = c.task_id) tasks with
  | None -> Error "Qos: choice for a foreign task"
  | Some t -> (
      match List.nth_opt t.levels c.level_index with
      | None -> Error "Qos: level index out of range"
      | Some l -> Ok l)

let penalties_of tasks choices =
  List.fold_left
    (fun acc c ->
      match acc with
      | Error _ as e -> e
      | Ok sum -> Result.map (fun l -> sum +. l.level_penalty) (chosen_level tasks c))
    (Ok 0.) choices

let cost (p : Problem.t) tasks solution =
  let ( let* ) = Result.bind in
  let* () =
    if
      List.sort compare (List.map (fun c -> c.task_id) solution.choices)
      = List.sort compare (List.map (fun t -> t.id) tasks)
    then Ok ()
    else Error "Qos.cost: choices are not one-per-task"
  in
  let* penalty = penalties_of tasks solution.choices in
  (* the partition must carry exactly the positive-weight choices *)
  let* expected =
    List.fold_left
      (fun acc c ->
        let* xs = acc in
        let* l = chosen_level tasks c in
        Ok (if Fc.exact_gt l.weight 0. then (c.task_id, l.weight) :: xs else xs))
      (Ok []) solution.choices
  in
  let placed =
    List.map
      (fun (it : Task.item) -> (it.item_id, it.weight))
      (Rt_partition.Partition.all_items solution.partition)
  in
  let norm =
    List.sort (fun (ida, wa) (idb, wb) ->
        match Int.compare ida idb with
        | 0 -> Float.compare wa wb
        | c -> c)
  in
  let* () =
    if
      List.length placed = List.length expected
      && List.for_all2
           (fun (ida, wa) (idb, wb) ->
             ida = idb && Rt_prelude.Float_cmp.approx_eq ~eps:1e-9 wa wb)
           (norm placed) (norm expected)
    then Ok ()
    else Error "Qos.cost: partition disagrees with the chosen levels"
  in
  let loads = Rt_partition.Partition.loads solution.partition in
  let* () =
    if
      Array.for_all
        (fun l -> Rt_prelude.Float_cmp.leq l (Problem.capacity p))
        loads
    then Ok ()
    else Error "Qos.cost: a processor exceeds capacity"
  in
  let energy =
    Array.fold_left (fun acc l -> acc +. Problem.bucket_energy p l) 0. loads
  in
  Ok (energy +. penalty)

let validate (p : Problem.t) tasks solution =
  let ( let* ) = Result.bind in
  let* _ = cost p tasks solution in
  let* sim =
    Rt_sim.Frame_sim.build ~proc:p.Problem.proc
      ~frame_length:p.Problem.horizon solution.partition
  in
  Rt_sim.Frame_sim.validate sim

(* items realizing a level-choice vector (positive weights only) *)
let items_of_choices tasks idx =
  List.filter_map
    (fun t ->
      let l = List.nth t.levels idx.(t.id) in
      if Fc.exact_gt l.weight 0. then Some (Task.item ~id:t.id ~weight:l.weight ())
      else None)
    tasks

let pack_cost (p : Problem.t) tasks idx =
  let items = items_of_choices tasks idx in
  let part = Rt_partition.Heuristics.ltf ~m:p.Problem.m items in
  if Rt_prelude.Float_cmp.gt (Rt_partition.Partition.makespan part) (Problem.capacity p)
  then (part, Float.infinity)
  else begin
    let energy =
      Array.fold_left
        (fun acc l -> acc +. Problem.bucket_energy p l)
        0.
        (Rt_partition.Partition.loads part)
    in
    let penalty =
      List.fold_left
        (fun acc t -> acc +. (List.nth t.levels idx.(t.id)).level_penalty)
        0. tasks
    in
    (part, energy +. penalty)
  end

(* dense index by task id; ids are arbitrary so map through an assoc *)
let with_dense_ids tasks f =
  let ids = List.map (fun t -> t.id) tasks in
  if not (Task.distinct_ids ids) then invalid_arg "Qos: duplicate task ids";
  let renumbered =
    List.mapi (fun i t -> { t with id = i }) tasks
  in
  let back = Array.of_list ids in
  f renumbered (fun i -> back.(i))

let greedy_degrade (p : Problem.t) tasks =
  with_dense_ids tasks (fun tasks back ->
      let n = List.length tasks in
      let idx = Array.make n 0 in
      let degradable t = idx.(t.id) < List.length t.levels - 1 in
      let rec loop () =
        let _, current = pack_cost p tasks idx in
        (* best single-step degradation *)
        let best = ref None in
        List.iter
          (fun t ->
            if degradable t then begin
              idx.(t.id) <- idx.(t.id) + 1;
              let _, c = pack_cost p tasks idx in
              idx.(t.id) <- idx.(t.id) - 1;
              match !best with
              | Some (_, cb) when Rt_prelude.Float_cmp.exact_le cb c -> ()
              | _ -> best := Some (t.id, c)
            end)
          tasks;
        match !best with
        | Some (tid, c)
          when Fc.exact_lt c (current -. (1e-12 *. Float.max 1. current))
               || Fc.exact_eq current Float.infinity ->
            if
              Fc.exact_eq c Float.infinity
              && Fc.exact_eq current Float.infinity
            then begin
              (* march toward feasibility by shedding the most weight *)
              let heaviest = ref None in
              List.iter
                (fun t ->
                  if degradable t then begin
                    let l0 = List.nth t.levels idx.(t.id) in
                    let l1 = List.nth t.levels (idx.(t.id) + 1) in
                    let drop = l0.weight -. l1.weight in
                    match !heaviest with
                    | Some (_, d) when Rt_prelude.Float_cmp.exact_ge d drop -> ()
                    | _ -> heaviest := Some (t.id, drop)
                  end)
                tasks;
              match !heaviest with
              | Some (tid, _) ->
                  idx.(tid) <- idx.(tid) + 1;
                  loop ()
              | None -> () (* fully degraded and still infeasible *)
            end
            else begin
              idx.(tid) <- idx.(tid) + 1;
              loop ()
            end
        | _ -> ()
      in
      loop ();
      let part, _ = pack_cost p tasks idx in
      {
        choices =
          List.map
            (fun t -> { task_id = back t.id; level_index = idx.(t.id) })
            tasks;
        partition =
          (* remap the dense ids in the partition back to the originals *)
          Rt_partition.Partition.of_buckets
            (Array.init (Rt_partition.Partition.m part) (fun j ->
                 List.map
                   (fun (it : Task.item) ->
                     Task.item ~id:(back it.item_id) ~weight:it.weight ())
                   (Rt_partition.Partition.bucket part j)));
      })

let exhaustive (p : Problem.t) tasks =
  with_dense_ids tasks (fun tasks back ->
      let n = List.length tasks in
      let arr = Array.of_list tasks in
      let combos =
        Array.fold_left
          (fun acc t -> acc * List.length t.levels)
          1 arr
      in
      if combos > 200_000 then
        invalid_arg "Qos.exhaustive: menu product too large";
      let idx = Array.make n 0 in
      let best = ref None in
      let consider () =
        let items = items_of_choices tasks idx in
        let priced =
          List.map
            (fun (it : Task.item) ->
              Task.item ~penalty:1e12 ~id:it.item_id ~weight:it.weight ())
            items
        in
        let s =
          Rt_exact.Search.branch_and_bound ~m:p.Problem.m
            ~capacity:(Problem.capacity p)
            ~bucket_cost:(Problem.bucket_energy p) priced
        in
        if s.Rt_exact.Search.rejected = [] then begin
          let penalty =
            List.fold_left
              (fun acc t -> acc +. (List.nth t.levels idx.(t.id)).level_penalty)
              0. tasks
          in
          let total = s.Rt_exact.Search.cost +. penalty in
          match !best with
          | Some (_, _, bc) when Rt_prelude.Float_cmp.exact_le bc total -> ()
          | _ -> best := Some (Array.copy idx, s.Rt_exact.Search.partition, total)
        end
      in
      let rec enumerate i =
        if i = n then consider ()
        else
          List.iteri
            (fun li _ ->
              idx.(i) <- li;
              enumerate (i + 1))
            arr.(i).levels
      in
      enumerate 0;
      match !best with
      | None ->
          (* no feasible combination even fully degraded: fall back *)
          greedy_degrade p (List.map (fun t -> { t with id = back t.id }) tasks)
      | Some (bidx, part, _) ->
          {
            choices =
              List.map
                (fun t -> { task_id = back t.id; level_index = bidx.(t.id) })
                tasks;
            partition =
              Rt_partition.Partition.of_buckets
                (Array.init (Rt_partition.Partition.m part) (fun j ->
                     List.map
                       (fun (it : Task.item) ->
                         Task.item ~id:(back it.item_id) ~weight:it.weight ())
                       (Rt_partition.Partition.bucket part j)));
          })
