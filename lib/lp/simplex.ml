module Fc = Rt_prelude.Float_cmp
type relation = Le | Ge | Eq

type problem = {
  minimize : float array;
  constraints : (float array * relation * float) list;
}

type outcome =
  | Optimal of { value : float; solution : float array }
  | Infeasible
  | Unbounded
  | Iteration_limit of { pivots : int }

let eps = 1e-9

let validate p =
  let n = Array.length p.minimize in
  if n = 0 then Error "Simplex: empty objective"
  else if not (Array.for_all Float.is_finite p.minimize) then
    Error "Simplex: non-finite objective coefficient"
  else if
    List.exists
      (fun (row, _, b) ->
        Array.length row <> n
        || (not (Array.for_all Float.is_finite row))
        || not (Float.is_finite b))
      p.constraints
  then Error "Simplex: ragged or non-finite constraint row"
  else Ok n

let value p x =
  let acc = ref 0. in
  Array.iteri (fun j c -> acc := !acc +. (c *. x.(j))) p.minimize;
  !acc

let feasible ?(eps = 1e-7) p x =
  Array.length x = Array.length p.minimize
  && Array.for_all (fun v -> Fc.exact_ge v (-.eps)) x
  && List.for_all
       (fun (row, rel, b) ->
         let lhs = ref 0. in
         Array.iteri (fun j a -> lhs := !lhs +. (a *. x.(j))) row;
         let scale = Float.max 1. (Float.abs b) in
         match rel with
         | Le -> Fc.exact_le !lhs (b +. (eps *. scale))
         | Ge -> Fc.exact_ge !lhs (b -. (eps *. scale))
         | Eq -> Fc.exact_le (Float.abs (!lhs -. b)) (eps *. scale))
       p.constraints

(* mutable tableau state *)
type tableau = {
  rows : float array array;  (** m rows × (ncols) coefficient matrix *)
  rhs : float array;  (** m right-hand sides, kept >= 0 *)
  basis : int array;  (** column index basic in each row *)
  mutable cost : float array;  (** reduced-cost row, ncols *)
  mutable cost_rhs : float;  (** negated objective value *)
  banned : bool array;  (** columns that may never (re-)enter *)
}

let pivot t ~row ~col =
  let piv = t.rows.(row).(col) in
  let ncols = Array.length t.cost in
  for j = 0 to ncols - 1 do
    t.rows.(row).(j) <- t.rows.(row).(j) /. piv
  done;
  t.rhs.(row) <- t.rhs.(row) /. piv;
  Array.iteri
    (fun i r ->
      if i <> row then begin
        let f = r.(col) in
        if Fc.exact_gt (Float.abs f) 0. then begin
          for j = 0 to ncols - 1 do
            r.(j) <- r.(j) -. (f *. t.rows.(row).(j))
          done;
          t.rhs.(i) <- t.rhs.(i) -. (f *. t.rhs.(row))
        end
      end)
    t.rows;
  let f = t.cost.(col) in
  if Fc.exact_gt (Float.abs f) 0. then begin
    for j = 0 to ncols - 1 do
      t.cost.(j) <- t.cost.(j) -. (f *. t.rows.(row).(j))
    done;
    t.cost_rhs <- t.cost_rhs -. (f *. t.rhs.(row))
  end;
  t.basis.(row) <- col

(* Bland's rule: entering = lowest-index improving column; leaving = lowest
   basis index among the minimum-ratio rows. Returns how many pivots were
   performed alongside the terminal state; [`Limit] means the budget ran
   out with the tableau still improvable. *)
let iterate ~max_pivots t =
  let ncols = Array.length t.cost in
  let m = Array.length t.rows in
  let rec go iter =
    let entering = ref (-1) in
    (try
       for j = 0 to ncols - 1 do
         if (not t.banned.(j)) && Fc.exact_lt t.cost.(j) (-.eps) then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal iter
    else if iter >= max_pivots then `Limit iter
    else begin
      let col = !entering in
      let best = ref (-1) in
      let best_ratio = ref Float.infinity in
      for i = 0 to m - 1 do
        if Fc.exact_gt t.rows.(i).(col) eps then begin
          let ratio = t.rhs.(i) /. t.rows.(i).(col) in
          if
            Fc.exact_lt ratio (!best_ratio -. eps)
            || (Fc.exact_le (Float.abs (ratio -. !best_ratio)) eps
               && !best >= 0
               && t.basis.(i) < t.basis.(!best))
          then begin
            best := i;
            best_ratio := ratio
          end
        end
      done;
      if !best < 0 then `Unbounded iter
      else begin
        pivot t ~row:!best ~col;
        go (iter + 1)
      end
    end
  in
  go 0

let set_cost t full_cost =
  let ncols = Array.length full_cost in
  t.cost <- Array.copy full_cost;
  t.cost_rhs <- 0.;
  (* make the reduced costs of basic columns zero *)
  Array.iteri
    (fun i b ->
      let cb = t.cost.(b) in
      if Fc.exact_gt (Float.abs cb) 0. then begin
        for j = 0 to ncols - 1 do
          t.cost.(j) <- t.cost.(j) -. (cb *. t.rows.(i).(j))
        done;
        t.cost_rhs <- t.cost_rhs -. (cb *. t.rhs.(i))
      end)
    t.basis

let solve ?(max_pivots = 200_000) p =
  match validate p with
  | Error _ as e -> e
  | Ok n ->
      let cons =
        List.map
          (fun (row, rel, b) ->
            if Fc.exact_lt b 0. then
              ( Array.map (fun a -> -.a) row,
                (match rel with Le -> Ge | Ge -> Le | Eq -> Eq),
                -.b )
            else (Array.copy row, rel, b))
          p.constraints
      in
      let m = List.length cons in
      let n_slack =
        List.length (List.filter (fun (_, r, _) -> r <> Eq) cons)
      in
      let n_art =
        List.length (List.filter (fun (_, r, _) -> r <> Le) cons)
      in
      let ncols = n + n_slack + n_art in
      let rows = Array.init m (fun _ -> Array.make ncols 0.) in
      let rhs = Array.make m 0. in
      let basis = Array.make m 0 in
      let next_slack = ref n in
      let next_art = ref (n + n_slack) in
      List.iteri
        (fun i (row, rel, b) ->
          Array.blit row 0 rows.(i) 0 n;
          rhs.(i) <- b;
          (match rel with
          | Le ->
              rows.(i).(!next_slack) <- 1.;
              basis.(i) <- !next_slack;
              incr next_slack
          | Ge ->
              rows.(i).(!next_slack) <- -1.;
              incr next_slack;
              rows.(i).(!next_art) <- 1.;
              basis.(i) <- !next_art;
              incr next_art
          | Eq ->
              rows.(i).(!next_art) <- 1.;
              basis.(i) <- !next_art;
              incr next_art))
        cons;
      let t =
        {
          rows;
          rhs;
          basis;
          cost = Array.make ncols 0.;
          cost_rhs = 0.;
          banned = Array.make ncols false;
        }
      in
      let art_start = n + n_slack in
      (* phase 1: minimize the artificial total *)
      let phase1_cost = Array.make ncols 0. in
      for j = art_start to ncols - 1 do
        phase1_cost.(j) <- 1.
      done;
      set_cost t phase1_cost;
      (* [max_pivots] is a total budget across both phases: phase 2 gets
         whatever phase 1 left unspent *)
      match iterate ~max_pivots t with
      | `Limit k -> Ok (Iteration_limit { pivots = k })
      | `Unbounded _ -> Error "Simplex: phase 1 unbounded (internal error)"
      | `Optimal pivots1 ->
          let phase1_value = -.t.cost_rhs in
          if Fc.exact_gt phase1_value 1e-7 then Ok Infeasible
          else begin
            (* drive artificials out of the basis where possible *)
            Array.iteri
              (fun i b ->
                if b >= art_start then begin
                  let found = ref (-1) in
                  (try
                     for j = 0 to art_start - 1 do
                       if Fc.exact_gt (Float.abs t.rows.(i).(j)) eps then begin
                         found := j;
                         raise Exit
                       end
                     done
                   with Exit -> ());
                  if !found >= 0 then pivot t ~row:i ~col:!found
                  (* otherwise the row is redundant; the artificial stays basic
                     at value 0 and is harmless once banned from re-entry *)
                end)
              t.basis;
            for j = art_start to ncols - 1 do
              t.banned.(j) <- true
            done;
            (* phase 2 *)
            let phase2_cost = Array.make ncols 0. in
            Array.blit p.minimize 0 phase2_cost 0 n;
            set_cost t phase2_cost;
            match iterate ~max_pivots:(max_pivots - pivots1) t with
            | `Limit k -> Ok (Iteration_limit { pivots = pivots1 + k })
            | `Unbounded _ -> Ok Unbounded
            | `Optimal _ ->
                let x = Array.make n 0. in
                Array.iteri
                  (fun i b -> if b < n then x.(b) <- t.rhs.(i))
                  t.basis;
                Ok (Optimal { value = -.t.cost_rhs; solution = x })
          end
