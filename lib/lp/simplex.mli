(** A dense two-phase primal simplex solver.

    Solves {v minimize c·x  subject to  A_i·x (<=|>=|=) b_i,  x >= 0 v}

    This is the substrate for the allocation-synthesis LP relaxations
    (Equations (4a)/(4b) of the companion text). It is a textbook tableau
    implementation with Bland's anti-cycling rule — dimensions in this
    repository are tiny (tens of variables), so clarity wins over sparse
    cleverness. *)

type relation = Le | Ge | Eq

type problem = {
  minimize : float array;  (** objective coefficients, length n *)
  constraints : (float array * relation * float) list;
      (** each row: coefficients (length n), relation, right-hand side *)
}

type outcome =
  | Optimal of { value : float; solution : float array }
  | Infeasible
  | Unbounded
  | Iteration_limit of { pivots : int }
      (** the pivot budget ran out before the tableau reached optimality;
          [pivots] is how many were spent (across both phases) *)

val solve : ?max_pivots:int -> problem -> (outcome, string) result
(** Errors on malformed input (ragged rows, non-finite numbers, empty
    objective). [max_pivots] (default 200_000) is a {e total} pivot
    budget across both phases — far above anything the repository's
    tiny instances need, but a hard ceiling for adversarial or
    degenerate inputs. Exhausting it is not an error: it is reported as
    the typed {!Iteration_limit} outcome so callers can distinguish
    "ran out of budget" from "malformed input" and fall back
    accordingly. Bland's rule already precludes cycling, so the budget
    only ever bites on genuinely huge instances or tiny explicit
    budgets. *)

val feasible : ?eps:float -> problem -> float array -> bool
(** Does a point satisfy all constraints and non-negativity? (Used by the
    tests to cross-check [Optimal] solutions.) *)

val value : problem -> float array -> float
(** [c·x]. *)
