module Fc = Rt_prelude.Float_cmp

open Rt_power

type segment = { speed : float; fraction : float }
type plan = { segments : segment list; rate : float }

let factored_model ?(power_factor = 1.) (m : Power_model.t) =
  if Fc.exact_eq power_factor 1. then m
  else
    Power_model.make ~p_ind:m.p_ind
      ~linear:(m.linear *. power_factor)
      ~coeff:(m.coeff *. power_factor)
      ~alpha:m.alpha ()

let idle_rate (proc : Processor.t) =
  match proc.dormancy with
  | Processor.Dormant_enable _ -> 0.
  | Processor.Dormant_disable -> Processor.idle_power proc

(* Lower convex hull (monotone chain) of points sorted by strictly
   increasing x; the optimal mixing of "operating points" lies on it.
   [pop] walks the hull as a suffix instead of rebuilding it, so one
   fold step allocates exactly the surviving vertex's cons cell. *)
let lower_hull points =
  let cross (ox, oy) (ax, ay) (bx, by) =
    ((ax -. ox) *. (by -. oy)) -. ((ay -. oy) *. (bx -. ox))
  in
  let rec pop p hull =
    match hull with
    | a :: (b :: _ as older) when Fc.exact_le (cross b a p) 0. -> pop p older
    | _ -> p :: hull
  in
  List.fold_left (fun hull p -> pop p hull) [] points |> List.rev

(* Mix the two hull vertices around [u]; returns segments + rate. *)
let mix_on_hull hull u =
  (* the hull suffix starting at the vertex pair bracketing [u]; sharing
     the suffix keeps the bracket unboxed (no per-call float pair) *)
  let rec find = function
    | [ (x, _) ] as last ->
        if
          Rt_prelude.Float_cmp.approx_eq x u
          || Rt_prelude.Float_cmp.exact_lt u x
        then Some last
        else None
    | (_ :: ((x2, _) :: _ as rest)) as bracket ->
        if Rt_prelude.Float_cmp.exact_gt u x2 then find rest
        else Some bracket
    | [] -> None
  in
  match find hull with
  | None | Some [] -> None
  | Some ((x1, y1) :: rest) ->
      let x2, y2 = match rest with [] -> (x1, y1) | v :: _ -> v in
      if Rt_prelude.Float_cmp.approx_eq x1 x2 then
        Some ([ { speed = x2; fraction = 1. } ], y2)
      else begin
        let a = (u -. x1) /. (x2 -. x1) in
        let a = Rt_prelude.Float_cmp.clamp ~lo:0. ~hi:1. a in
        let segments =
          [
            { speed = x2; fraction = a }; { speed = x1; fraction = 1. -. a };
          ]
          |> List.filter (fun s -> Fc.exact_gt s.fraction 0.)
        in
        (* make sure a pure-vertex mix still covers the whole horizon *)
        let segments =
          match segments with
          | [ s ] -> [ { s with fraction = 1. } ]
          | ss -> ss
        in
        Some (segments, y1 +. (a *. (y2 -. y1)))
      end

(* The per-processor preparation the hot path wants hoisted out of the
   per-[u] evaluation: the factored model, the lower hull of the level
   points (Levels domain), and the numeric critical speed (dormant ideal
   domain) depend only on the processor. [prepare] computes them once and
   returns a closure that performs exactly the per-[u] arithmetic
   [optimal] always did — same operations in the same order — so a
   prepared evaluator is bit-identical to calling [optimal] directly. *)
let prepare ?power_factor (proc : Processor.t) =
  let model = factored_model ?power_factor proc.model in
  let power s = Power_model.power model s in
  let dynamic s = Power_model.dynamic_power model s in
  let top = Processor.s_max proc in
  let eval =
    match proc.domain with
    | Processor.Levels ls ->
        let levels = Array.to_list ls in
        let points =
          (* lint: allow-hot-alloc-in-loop "bounded by the processor's static level count and built once per prepared evaluator, not per evaluation" *)
          (0., idle_rate proc) :: List.map (fun l -> (l, power l)) levels
        in
        let hull = lower_hull points in
        fun u ->
          Option.map
            (fun (segments, rate) -> { segments; rate })
            (mix_on_hull hull u)
    | Processor.Ideal { s_min; s_max } -> (
        match proc.dormancy with
        | Processor.Dormant_disable ->
            fun u ->
              if Fc.exact_eq u 0. && Fc.exact_eq s_min 0. then
                Some
                  {
                    segments = [ { speed = 0.; fraction = 1. } ];
                    rate = Processor.idle_power proc;
                  }
              else begin
                let s_run = Float.max u s_min in
                let s_run = Float.min s_run s_max in
                if Fc.exact_le s_run 0. then
                  Some
                    {
                      segments = [ { speed = 0.; fraction = 1. } ];
                      rate = Processor.idle_power proc;
                    }
                else begin
                  let busy =
                    Rt_prelude.Float_cmp.clamp ~lo:0. ~hi:1. (u /. s_run)
                  in
                  let rate =
                    Processor.idle_power proc +. (busy *. dynamic s_run)
                  in
                  let segments =
                    if Fc.exact_ge busy 1. then
                      [ { speed = s_run; fraction = 1. } ]
                    else if Fc.exact_le busy 0. then
                      [ { speed = 0.; fraction = 1. } ]
                    else
                      [
                        { speed = s_run; fraction = busy };
                        { speed = 0.; fraction = 1. -. busy };
                      ]
                  in
                  Some { segments; rate }
                end
              end
        | Processor.Dormant_enable _ ->
            let s_crit = Power_model.critical_speed model ~s_max in
            fun u ->
              if Fc.exact_eq u 0. then
                Some { segments = [ { speed = 0.; fraction = 1. } ]; rate = 0. }
              else begin
                let s_run = Float.max (Float.max u s_min) s_crit in
                let s_run = Float.min s_run s_max in
                let busy =
                  Rt_prelude.Float_cmp.clamp ~lo:0. ~hi:1. (u /. s_run)
                in
                let rate = busy *. power s_run in
                let segments =
                  if Fc.exact_ge busy 1. then
                    [ { speed = s_run; fraction = 1. } ]
                  else
                    [
                      { speed = s_run; fraction = busy };
                      { speed = 0.; fraction = 1. -. busy };
                    ]
                in
                Some { segments; rate }
              end)
  in
  fun u ->
    if Fc.exact_lt u (-1e-9) || not (Float.is_finite u) then
      invalid_arg "Energy_rate.optimal: u must be finite and >= 0";
    (* arithmetic on loads (repeated add/remove) can leave -1e-17 residues *)
    let u = Float.max 0. u in
    if Rt_prelude.Float_cmp.gt u top then None else eval u

(* Rate of the optimal mix on the hull — [mix_on_hull] minus the segment
   list. The rate arithmetic is copied verbatim (same bracket search,
   same clamp, same interpolation), so the value is bit-identical; only
   the plan materialization is skipped. *)
let rate_on_hull hull u =
  let rec find = function
    | [ (x, _) ] as last ->
        if
          Rt_prelude.Float_cmp.approx_eq x u
          || Rt_prelude.Float_cmp.exact_lt u x
        then Some last
        else None
    | (_ :: ((x2, _) :: _ as rest)) as bracket ->
        if Rt_prelude.Float_cmp.exact_gt u x2 then find rest
        else Some bracket
    | [] -> None
  in
  match find hull with
  | None | Some [] -> None
  | Some ((x1, y1) :: rest) ->
      let x2, y2 = match rest with [] -> (x1, y1) | v :: _ -> v in
      if Rt_prelude.Float_cmp.approx_eq x1 x2 then Some y2
      else begin
        let a = (u -. x1) /. (x2 -. x1) in
        let a = Rt_prelude.Float_cmp.clamp ~lo:0. ~hi:1. a in
        Some (y1 +. (a *. (y2 -. y1)))
      end

(* [prepare] collapsed to the scalar the schedulers actually compare:
   [prepare_energy proc ~horizon u] is exactly
   [(Option.get (prepare proc u)).rate *. horizon] bit for bit — every
   rate below is the same expression as the corresponding [prepare]
   branch — but computed by ONE flat closure per processor kind, with
   the argument guards inlined (direct calls) and no plan, segment list
   or option materialized. The marginal-energy inner loops (Greedy,
   Local_search) evaluate this thousands of times per instance, so the
   per-call closure depth and boxing are what this variant removes.
   Raises where [prepare] returns [None] (required speed over s_max):
   the schedulers pre-check capacity, so that is an internal error. *)
let prepare_energy ?power_factor (proc : Processor.t) ~horizon =
  if Fc.exact_lt horizon 0. then
    invalid_arg "Energy_rate.prepare_energy: negative horizon";
  let model = factored_model ?power_factor proc.model in
  let power s = Power_model.power model s in
  let dynamic s = Power_model.dynamic_power model s in
  let top = Processor.s_max proc in
  let invalid_u () : float =
    invalid_arg "Energy_rate.optimal: u must be finite and >= 0"
  in
  let overload u : float =
    invalid_arg
      (Printf.sprintf
         "Energy_rate.prepare_energy: required speed %.6g exceeds s_max %.6g"
         u top)
  in
  match proc.domain with
  | Processor.Levels ls ->
      let levels = Array.to_list ls in
      let points =
        (* lint: allow-hot-alloc-in-loop "bounded by the processor's static level count and built once per prepared evaluator, not per evaluation" *)
        (0., idle_rate proc) :: List.map (fun l -> (l, power l)) levels
      in
      let hull = lower_hull points in
      fun u ->
        if Fc.exact_lt u (-1e-9) || not (Float.is_finite u) then invalid_u ()
        else begin
          (* arithmetic on loads (repeated add/remove) leaves -1e-17 residues *)
          let u = Float.max 0. u in
          if Rt_prelude.Float_cmp.gt u top then overload u
          else
            match rate_on_hull hull u with
            | Some r -> r *. horizon
            | None -> overload u
        end
  | Processor.Ideal { s_min; s_max } -> (
      match proc.dormancy with
      | Processor.Dormant_disable ->
          fun u ->
            if Fc.exact_lt u (-1e-9) || not (Float.is_finite u) then
              invalid_u ()
            else begin
              let u = Float.max 0. u in
              if Rt_prelude.Float_cmp.gt u top then overload u
              else if Fc.exact_eq u 0. && Fc.exact_eq s_min 0. then
                Processor.idle_power proc *. horizon
              else begin
                let s_run = Float.max u s_min in
                let s_run = Float.min s_run s_max in
                if Fc.exact_le s_run 0. then
                  Processor.idle_power proc *. horizon
                else begin
                  let busy =
                    Rt_prelude.Float_cmp.clamp ~lo:0. ~hi:1. (u /. s_run)
                  in
                  (Processor.idle_power proc +. (busy *. dynamic s_run))
                  *. horizon
                end
              end
            end
      | Processor.Dormant_enable _ ->
          let s_crit = Power_model.critical_speed model ~s_max in
          fun u ->
            if Fc.exact_lt u (-1e-9) || not (Float.is_finite u) then
              invalid_u ()
            else begin
              let u = Float.max 0. u in
              if Rt_prelude.Float_cmp.gt u top then overload u
              else if Fc.exact_eq u 0. then 0. *. horizon
              else begin
                let s_run = Float.max (Float.max u s_min) s_crit in
                let s_run = Float.min s_run s_max in
                let busy =
                  Rt_prelude.Float_cmp.clamp ~lo:0. ~hi:1. (u /. s_run)
                in
                busy *. power s_run *. horizon
              end
            end)

let optimal ?power_factor (proc : Processor.t) ~u =
  prepare ?power_factor proc u

let rate ?power_factor proc ~u =
  Option.map (fun p -> p.rate) (optimal ?power_factor proc ~u)

let energy ?power_factor proc ~u ~horizon =
  if Fc.exact_lt horizon 0. then
    invalid_arg "Energy_rate.energy: negative horizon";
  Option.map (fun r -> r *. horizon) (rate ?power_factor proc ~u)

let plan_rate ?power_factor (proc : Processor.t) plan =
  let model = factored_model ?power_factor proc.model in
  List.fold_left
    (fun acc { speed; fraction } ->
      let p =
        if Fc.exact_eq speed 0. then idle_rate proc
        else Power_model.power model speed
      in
      acc +. (fraction *. p))
    0. plan.segments

let plan_throughput plan =
  List.fold_left
    (fun acc { speed; fraction } -> acc +. (speed *. fraction))
    0. plan.segments

let validate ?eps (proc : Processor.t) ~u plan =
  let ( let* ) = Result.bind in
  let* () =
    if
      List.for_all
        (fun s ->
          Fc.exact_ge s.fraction 0.
          && Rt_power.Processor.speed_feasible ?eps proc s.speed)
        plan.segments
    then Ok ()
    else Error "infeasible speed or negative fraction"
  in
  let total_fraction =
    List.fold_left (fun acc s -> acc +. s.fraction) 0. plan.segments
  in
  let* () =
    if Rt_prelude.Float_cmp.approx_eq ?eps total_fraction 1. then Ok ()
    else Error "fractions do not sum to 1"
  in
  let* () =
    if Rt_prelude.Float_cmp.geq ?eps (plan_throughput plan) u then Ok ()
    else Error "plan does not deliver the required speed"
  in
  if Rt_prelude.Float_cmp.approx_eq ?eps (plan_rate proc plan) plan.rate then
    Ok ()
  else Error "reported rate disagrees with segments"

let pp_plan ppf plan =
  let pp_seg ppf { speed; fraction } =
    Format.fprintf ppf "%.4g@%.4g" speed fraction
  in
  Format.fprintf ppf "{rate=%.6g; [%a]}" plan.rate
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_seg)
    plan.segments
