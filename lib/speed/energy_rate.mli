(** Optimal sustained-speed energy: the central primitive.

    A processor that must deliver a {e required speed} [u] (cycles per time
    unit, sustained over a horizon — the per-processor weight sum of the
    item view) can realize it many ways: run continuously at [u], run
    faster and idle, run faster and sleep, or mix two discrete levels. This
    module computes the {e minimum average power} (energy per unit time)
    and the realizing time-fraction plan, for every processor kind:

    - {e ideal × dormant-disable}: run at [s = max(u, s_min)] for a [u/s]
      fraction of the time; idle pays the leakage [p_ind].
      Rate = [p_ind + (u/s)·P_d(s)].
    - {e ideal × dormant-enable}: run at [s = clamp(s_crit, max(u,s_min),
      s_max)] and sleep the rest at zero power; this is the critical-speed
      clamp of the leakage-aware algorithms. Rate = [u · P(s)/s].
    - {e levels × either}: the optimum mixes at most two adjacent vertices
      of the lower convex hull of [{(0, P_idle)} ∪ {(l, P(l))}] — the
      Ishihara–Yasuura two-level split generalized to account for idling or
      sleeping.

    Mode-switch overheads ([t_sw], [E_sw]) are not charged here (the
    frame/periodic models of the papers treat speed switching as free and
    charge sleep transitions separately); {!Procrastinate} accounts for
    them. *)

type segment = {
  speed : float;  [@rt.dim "speed"] (** a feasible running speed, or 0. for idle/sleep *)
  fraction : float;  [@rt.dim "1"] (** fraction of the horizon spent at [speed] *)
}

type plan = {
  segments : segment list;
      (** fractions sum to 1 (within tolerance); speeds are feasible for
          the processor; ordered fastest first *)
  rate : float;  [@rt.dim "watts"] (** average power of the plan = energy per unit horizon *)
}

val optimal : ?power_factor:float -> Rt_power.Processor.t -> u:float -> plan option
  [@@rt.hot "evaluated per candidate placement by every scheduler"]
(** [optimal proc ~u] is the minimum-average-power plan delivering required
    speed [u >= 0], or [None] when [u] exceeds [s_max] (no feasible plan).
    [power_factor] scales the speed-dependent power (heterogeneous tasks).
    @raise Invalid_argument on negative or non-finite [u]. *)

val prepare :
  ?power_factor:float -> Rt_power.Processor.t -> (float -> plan option)
  [@@rt.hot "amortizes hull/critical-speed setup across many evaluations"]
(** [prepare proc] hoists the per-processor setup of {!optimal} — the
    factored power model, the lower convex hull of the level points, the
    numeric critical speed — and returns an evaluator [fun u -> ...] whose
    results are bit-identical to [optimal proc ~u]. Build it once per
    instance and call it per candidate load (the SoA hot path). *)

val prepare_energy :
  ?power_factor:float -> Rt_power.Processor.t -> horizon:float ->
  (float -> float [@rt.dim "joules"])
  [@@rt.hot "scalar evaluator for the marginal-energy inner loops"]
(** Like {!prepare} but the evaluator returns only the plan's energy over
    [horizon] — [prepare_energy proc ~horizon u] equals
    [(Option.get (prepare proc u)).rate *. horizon] bit for bit, computed
    by one flat closure without materializing segments, plan or option.
    This is the evaluator behind [Rt_core.Problem.bucket_energy]: the
    greedy and local-search inner loops only ever need the scalar, and
    they pre-check capacity, so a required speed above [s_max] (where
    {!prepare} returns [None]) raises [Invalid_argument] here.
    @raise Invalid_argument on negative horizon or invalid [u]. *)

val rate :
  ?power_factor:float -> Rt_power.Processor.t -> u:float ->
  float option [@rt.dim "watts"]
  [@@rt.hot "evaluated per candidate placement by every scheduler"]
(** Average power of the optimal plan. *)

val energy :
  ?power_factor:float -> Rt_power.Processor.t -> u:float -> horizon:float ->
  float option [@rt.dim "joules"]
  [@@rt.hot "evaluated per candidate placement by every scheduler"]
(** [rate × horizon]. @raise Invalid_argument on negative horizon. *)

val plan_rate :
  ?power_factor:float -> Rt_power.Processor.t -> plan -> float [@rt.dim "watts"]
(** Recompute a plan's average power from its segments (idle/sleep segments
    charged per the processor's dormancy); used to cross-check [rate]. *)

val plan_throughput : plan -> float [@rt.dim "speed"]
(** [Σ speed·fraction] — the required speed the plan actually delivers. *)

val validate :
  ?eps:float -> Rt_power.Processor.t -> u:float -> plan -> (unit, string) result
(** Checks: feasible speeds, non-negative fractions summing to 1, delivered
    throughput [>= u], and [rate] consistent with the segments. *)

val pp_plan : Format.formatter -> plan -> unit
