(** Synchronized-speed assignment (companion Eq. (2)).

    Some chip multiprocessors force all cores to share one voltage rail: at
    any instant every core either executes at the {e common} speed or is
    dormant. Given per-processor workloads [w_1 <= … <= w_M] (cycles) to
    finish within a window [D], the minimum-energy profile splits the window
    into [M] intervals of lengths [t_1 … t_M]; during interval [j] the
    common speed is [(w_j - w_(j-1)) / t_j] and the [M - j + 1] processors
    with the largest workloads are active (processor [i] goes dormant after
    interval [i]):

    {v minimize   Σ_j (M - j + 1) · P_d((w_j - w_(j-1))/t_j) · t_j
   subject to Σ_j t_j = D v}

    For [P_d(s) = coeff·s^alpha] the Lagrange/KKT conditions give the closed
    form [t_j ∝ (w_j - w_(j-1)) · (M - j + 1)^(1/alpha)], implemented here.
    Speed-independent power is outside this model (processors are
    dormant-enable and sleep when inactive), so the model must have
    [p_ind = 0] and [linear = 0]. *)

type interval = {
  duration : float; [@rt.dim "seconds"]
  speed : float; [@rt.dim "speed"]
  active : int;  (** number of processors running during this interval *)
}

type schedule = {
  intervals : interval list;  (** in execution order; zero-length dropped *)
  energy : float;  [@rt.dim "joules"] (** Σ active · P_d(speed) · duration *)
  peak_speed : float;  [@rt.dim "speed"] (** highest common speed used (0 if no work) *)
}

val solve :
  Rt_power.Power_model.t -> window:float -> workloads:float array ->
  (schedule, string) result
(** [workloads] is one entry per processor (any order; zeros allowed).
    Errors on [window <= 0], negative workloads, or a model with leakage or
    linear terms. *)

val energy_independent :
  Rt_power.Power_model.t -> window:float -> workloads:float array ->
  float [@rt.dim "joules"]
(** Energy when every processor picks its own uniform speed [w_i / D] —
    the independent-rails lower reference the companion compares against.
    @raise Invalid_argument on the same conditions as {!solve}. *)
