module Fc = Rt_prelude.Float_cmp

open Rt_power

type interval = { duration : float; speed : float; active : int }

type schedule = {
  intervals : interval list;
  energy : float;
  peak_speed : float;
}

let check_model (m : Power_model.t) =
  if not (Fc.exact_eq m.p_ind 0.) then
    Error "Sync_global: model must have p_ind = 0"
  else if not (Fc.exact_eq m.linear 0.) then
    Error "Sync_global: model must have linear = 0"
  else Ok ()

let check_inputs ~window ~workloads =
  if Fc.exact_le window 0. then Error "Sync_global: window <= 0"
  else if
    Array.exists
      (fun w -> Fc.exact_lt w 0. || not (Float.is_finite w))
      workloads
  then Error "Sync_global: workloads must be finite and >= 0"
  else if Array.length workloads = 0 then Error "Sync_global: no processors"
  else Ok ()

let solve (m : Power_model.t) ~window ~workloads =
  let ( let* ) = Result.bind in
  let* () = check_model m in
  let* () = check_inputs ~window ~workloads in
  let sorted = Array.copy workloads in
  Array.sort Float.compare sorted;
  let mm = Array.length sorted in
  (* deltas.(j) = w_(j+1) - w_j with w_0 = 0; weights k_j from the KKT
     stationarity condition t_j ∝ delta_j * (M - j)^(1/alpha) (0-indexed) *)
  let deltas =
    Array.init mm (fun j -> sorted.(j) -. (if j = 0 then 0. else sorted.(j - 1)))
  in
  let k =
    Array.mapi
      (fun j d -> d *. (float_of_int (mm - j) ** (1. /. m.alpha)))
      deltas
  in
  let k_total = Array.fold_left ( +. ) 0. k in
  if Fc.exact_eq k_total 0. then
    Ok { intervals = []; energy = 0.; peak_speed = 0. }
  else begin
    let intervals = ref [] in
    let energy = ref 0. in
    let peak = ref 0. in
    Array.iteri
      (fun j d ->
        if Fc.exact_gt d 0. then begin
          let duration = window *. k.(j) /. k_total in
          let speed = d /. duration in
          let active = mm - j in
          peak := Float.max !peak speed;
          energy :=
            !energy
            +. (float_of_int active *. Power_model.dynamic_power m speed
                *. duration);
          intervals := { duration; speed; active } :: !intervals
        end)
      deltas;
    Ok { intervals = List.rev !intervals; energy = !energy; peak_speed = !peak }
  end

let energy_independent (m : Power_model.t) ~window ~workloads =
  (match check_model m with Ok () -> () | Error e -> invalid_arg e);
  (match check_inputs ~window ~workloads with
  | Ok () -> ()
  | Error e -> invalid_arg e);
  Array.fold_left
    (fun acc w ->
      if Fc.exact_eq w 0. then acc
      else acc +. (Power_model.dynamic_power m (w /. window) *. window))
    0. workloads
