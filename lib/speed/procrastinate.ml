module Fc = Rt_prelude.Float_cmp

open Rt_power

let break_even_time (proc : Processor.t) =
  match proc.dormancy with
  | Processor.Dormant_disable -> Float.infinity
  | Processor.Dormant_enable { t_sw; e_sw } ->
      let p_ind = Processor.idle_power proc in
      if Fc.exact_le p_ind 0. then Float.infinity
      else Float.max t_sw (e_sw /. p_ind)

let idle_energy (proc : Processor.t) ~interval =
  if Fc.exact_lt interval 0. then
    invalid_arg "Procrastinate.idle_energy: negative interval";
  let awake = Processor.idle_power proc *. interval in
  match proc.dormancy with
  | Processor.Dormant_disable -> awake
  | Processor.Dormant_enable { t_sw; e_sw } ->
      if Rt_prelude.Float_cmp.exact_ge interval t_sw then Float.min awake e_sw
      else awake

let should_sleep (proc : Processor.t) ~interval =
  match proc.dormancy with
  | Processor.Dormant_disable -> false
  | Processor.Dormant_enable { t_sw; e_sw } ->
      Fc.exact_ge interval t_sw
      && Fc.exact_lt e_sw (Processor.idle_power proc *. interval)

let idle_energy_fragmented (proc : Processor.t) ~total_idle ~gaps =
  if gaps < 1 then invalid_arg "Procrastinate.idle_energy_fragmented: gaps < 1";
  if Fc.exact_lt total_idle 0. then
    invalid_arg "Procrastinate.idle_energy_fragmented: negative idle";
  if Fc.exact_eq total_idle 0. then 0.
  else
    float_of_int gaps
    *. idle_energy proc ~interval:(total_idle /. float_of_int gaps)
