(** Break-even analysis for dormant transitions (Algorithm PROC's core).

    A dormant-enable processor facing an idle interval can either stay awake
    (paying leakage [p_ind] for the whole interval) or sleep (paying the
    transition energy [E_sw], feasible only when the interval is at least
    [t_sw] long). The break-even interval length is
    [max(t_sw, E_sw / p_ind)]; procrastination scheduling (Jejurikar et
    al.) defers work to {e coalesce} short idle gaps into intervals longer
    than the break-even so that sleeping wins more often. We model the
    effect of PROC by contrasting fragmented idle (one gap per frame/job
    window) against coalesced idle (one gap per hyper-period), which is
    what experiment E8 sweeps. *)

val break_even_time : Rt_power.Processor.t -> float [@rt.dim "seconds"]
(** Interval length above which sleeping beats staying awake. [infinity]
    for dormant-disable processors and whenever [p_ind = 0] (sleeping can
    then never save energy but still costs [E_sw]). *)

val idle_energy :
  Rt_power.Processor.t -> interval:float -> float [@rt.dim "joules"]
(** Minimum energy spent over one idle interval of the given length:
    [min(p_ind·interval, E_sw)] when sleeping is feasible
    ([interval >= t_sw]), [p_ind·interval] otherwise.
    @raise Invalid_argument on negative interval. *)

val should_sleep : Rt_power.Processor.t -> interval:float -> bool
(** [true] iff sleeping is feasible and strictly cheaper. *)

val idle_energy_fragmented :
  Rt_power.Processor.t -> total_idle:float -> gaps:int -> float [@rt.dim "joules"]
(** Idle energy when the processor's total idle time is split into [gaps]
    equal intervals — the no-procrastination model ([gaps] = number of
    frames in the hyper-period). [gaps = 1] is the fully coalesced
    (procrastinated) case. [total_idle = 0] costs nothing regardless.
    @raise Invalid_argument if [gaps < 1] or [total_idle < 0]. *)
