open Rt_task

type policy = No_op | Shed_density | Shed_marginal | Repartition_ltf

let policy_name = function
  | No_op -> "no-op"
  | Shed_density -> "shed-density"
  | Shed_marginal -> "shed-marginal"
  | Repartition_ltf -> "repartition-ltf"

let all_policies = [ No_op; Shed_density; Shed_marginal; Repartition_ltf ]

type report = {
  misses : int list;
  shed : int list;
  extra_penalty : float;
  energy_fault_free : float;
  energy_faulty : float;
  energy_delta : float;
  residual : Rt_core.Solution.t option;
}

let heuristic = function
  | No_op -> None
  | Shed_density -> Some Rt_core.Greedy.density_reject
  | Shed_marginal -> Some Rt_core.Greedy.marginal_greedy
  | Repartition_ltf -> Some Rt_core.Greedy.ltf_reject

let diff_ids a b = List.filter (fun x -> not (List.mem x b)) a

let sorted_dedup l = List.sort_uniq compare l

(* The residual instance: every original item, weights inflated by the
   scenario's overrun factors, to be re-packed on the surviving (derated)
   platform. Ids and penalties are preserved so shed sets and penalty
   deltas can be traced back to the original instance. *)
let residual_problem (p : Rt_core.Problem.t) sc =
  let survivors = Fault.surviving sc ~m:p.Rt_core.Problem.m in
  match survivors with
  | [] -> Error "Degrade: no surviving processors"
  | _ -> (
      match Fault.derated_proc sc p.Rt_core.Problem.proc with
      | Error e -> Error ("Degrade: " ^ e)
      | Ok proc' ->
          let items' =
            List.map
              (fun (it : Task.item) ->
                {
                  it with
                  weight = it.weight *. Fault.overrun_factor sc it.item_id;
                })
              p.Rt_core.Problem.items
          in
          (match
             Rt_core.Problem.make ~proc:proc' ~m:(List.length survivors)
               ~horizon:p.Rt_core.Problem.horizon items'
           with
          | Ok p' -> Ok p'
          | Error e -> Error ("Degrade: residual instance: " ^ e)))

let recover_frame (p : Rt_core.Problem.t) sc
    ~(baseline : Rt_core.Solution.t) policy =
  let ( let* ) = Result.bind in
  let* () = Fault.validate ~m:p.Rt_core.Problem.m sc in
  let* base_cost =
    match Rt_core.Solution.cost p baseline with
    | Ok c -> Ok c
    | Error e -> Error ("Degrade: infeasible baseline: " ^ e)
  in
  let proc = p.Rt_core.Problem.proc in
  let frame_length = p.Rt_core.Problem.horizon in
  match heuristic policy with
  | None ->
      (* ride out the faults on the original plan and count the damage *)
      let* sim =
        Rt_sim.Frame_sim.build ~proc ~frame_length
          baseline.Rt_core.Solution.partition
      in
      let* rep =
        Rt_sim.Frame_sim.run_injected
          ~inject:(Fault.frame_injection sc ~proc)
          sim
      in
      Ok
        {
          misses = sorted_dedup rep.Rt_sim.Frame_sim.missed;
          shed = [];
          extra_penalty = 0.;
          energy_fault_free = base_cost.Rt_core.Solution.energy;
          energy_faulty = rep.Rt_sim.Frame_sim.faulty_energy;
          energy_delta =
            rep.Rt_sim.Frame_sim.faulty_energy
            -. base_cost.Rt_core.Solution.energy;
          residual = None;
        }
  | Some alg ->
      let* p' = residual_problem p sc in
      let s' = alg p' in
      let* cost' =
        match Rt_core.Solution.cost p' s' with
        | Ok c -> Ok c
        | Error e -> Error ("Degrade: residual solution: " ^ e)
      in
      (* replay the degraded plan concretely: the plan was built against
         inflated weights on the derated platform, but the verdict uses the
         ORIGINAL weights times the scenario's overruns, so the check is
         honest rather than circular *)
      let proc' = p'.Rt_core.Problem.proc in
      let* sim' =
        Rt_sim.Frame_sim.build ~proc:proc' ~frame_length
          s'.Rt_core.Solution.partition
      in
      let nominal id =
        match Rt_core.Problem.item p id with
        | Some it -> it.weight
        | None -> 0.
      in
      let* rep =
        Rt_sim.Frame_sim.run_injected ~nominal
          ~inject:
            {
              Rt_sim.Frame_sim.overrun = Fault.overrun_factor sc;
              crash = (fun _ -> None);
              speed_cap = Fault.speed_cap sc proc;
            }
          sim'
      in
      Ok
        {
          misses = sorted_dedup rep.Rt_sim.Frame_sim.missed;
          shed =
            diff_ids
              (Rt_core.Solution.rejected_ids s')
              (Rt_core.Solution.rejected_ids baseline);
          extra_penalty =
            cost'.Rt_core.Solution.penalty
            -. base_cost.Rt_core.Solution.penalty;
          energy_fault_free = base_cost.Rt_core.Solution.energy;
          energy_faulty = rep.Rt_sim.Frame_sim.faulty_energy;
          energy_delta =
            rep.Rt_sim.Frame_sim.faulty_energy
            -. base_cost.Rt_core.Solution.energy;
          residual = Some s';
        }

(* ------------------------------------------------------------------ *)
(* Periodic side: per-processor EDF over one hyper-period.             *)

let edf_energy (proc : Rt_power.Processor.t) (o : Rt_sim.Edf_sim.outcome) =
  o.Rt_sim.Edf_sim.exec_energy
  +.
  match proc.dormancy with
  | Rt_power.Processor.Dormant_enable _ -> o.Rt_sim.Edf_sim.idle_energy_sleep
  | Rt_power.Processor.Dormant_disable -> o.Rt_sim.Edf_sim.idle_energy_awake

let speed_for (proc : Rt_power.Processor.t) load =
  match Rt_power.Processor.nearest_level_above proc load with
  | Some s -> Ok s
  | None ->
      Error
        (Printf.sprintf
           "Degrade: load %.6g exceeds the platform's top speed %.6g" load
           (Rt_power.Processor.s_max proc))

(* Simulate every bucket of a partition under per-processor injections;
   collect miss ids and total energy. *)
let simulate_buckets ~proc ~horizon ~tasks ~inject_of part =
  let ( let* ) = Result.bind in
  let m = Rt_partition.Partition.m part in
  let rec go j misses energy =
    if j = m then Ok (sorted_dedup misses, energy)
    else begin
      let bucket = Rt_partition.Partition.bucket part j in
      let btasks =
        List.filter_map
          (fun (it : Task.item) -> Taskset.periodic_by_id tasks it.item_id)
          bucket
      in
      let* speed = speed_for proc (Rt_partition.Partition.load part j) in
      let* o =
        Rt_sim.Edf_sim.run_injected ~horizon ~proc ~speed
          ~inject:(inject_of j) btasks
      in
      let bucket_misses =
        List.map
          (fun (ms : Rt_sim.Edf_sim.miss) -> ms.Rt_sim.Edf_sim.task_id)
          o.Rt_sim.Edf_sim.misses
      in
      go (j + 1) (bucket_misses @ misses) (energy +. edf_energy proc o)
    end
  in
  go 0 [] 0.

let recover_periodic ~proc ~m ~(tasks : Task.periodic list) sc policy =
  let ( let* ) = Result.bind in
  let* () = Fault.validate ~m sc in
  let* hp =
    match Taskset.hyper_period_checked tasks with
    | Ok hp -> Ok hp
    | Error e -> Error ("Degrade: " ^ e)
  in
  let horizon = float_of_int hp in
  let* p = Rt_core.Problem.of_periodic ~proc ~m tasks in
  (* accept-as-much-as-possible is the nominal plan the faults disrupt *)
  let baseline = Rt_core.Greedy.ltf_reject p in
  let* base_cost =
    match Rt_core.Solution.cost p baseline with
    | Ok c -> Ok c
    | Error e -> Error ("Degrade: baseline: " ^ e)
  in
  let* _, energy_fault_free =
    simulate_buckets ~proc ~horizon ~tasks
      ~inject_of:(fun _ -> Rt_sim.Edf_sim.no_injection)
      baseline.Rt_core.Solution.partition
  in
  match heuristic policy with
  | None ->
      let* misses, energy_faulty =
        simulate_buckets ~proc ~horizon ~tasks
          ~inject_of:(fun j -> Fault.edf_injection sc ~proc ~proc_index:j)
          baseline.Rt_core.Solution.partition
      in
      Ok
        {
          misses;
          shed = [];
          extra_penalty = 0.;
          energy_fault_free;
          energy_faulty;
          energy_delta = energy_faulty -. energy_fault_free;
          residual = None;
        }
  | Some alg ->
      let* p' = residual_problem p sc in
      let s' = alg p' in
      let* cost' =
        match Rt_core.Solution.cost p' s' with
        | Ok c -> Ok c
        | Error e -> Error ("Degrade: residual solution: " ^ e)
      in
      let proc' = p'.Rt_core.Problem.proc in
      (* survivors carry the overruns but, having been re-planned on the
         derated platform, see no crash and no cap beyond their own s_max *)
      let* misses, energy_faulty =
        simulate_buckets ~proc:proc' ~horizon ~tasks
          ~inject_of:(fun _ ->
            {
              Rt_sim.Edf_sim.overrun = Fault.overrun_factor sc;
              crash_at = None;
              speed_cap = None;
            })
          s'.Rt_core.Solution.partition
      in
      Ok
        {
          misses;
          shed =
            diff_ids
              (Rt_core.Solution.rejected_ids s')
              (Rt_core.Solution.rejected_ids baseline);
          extra_penalty =
            cost'.Rt_core.Solution.penalty
            -. base_cost.Rt_core.Solution.penalty;
          energy_fault_free;
          energy_faulty;
          energy_delta = energy_faulty -. energy_fault_free;
          residual = Some s';
        }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>misses: %a@,shed: %a@,extra penalty: %.6g@,energy: %.6g faulty vs \
     %.6g fault-free (delta %+.6g)@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_int)
    r.misses
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_int)
    r.shed r.extra_penalty r.energy_faulty r.energy_fault_free r.energy_delta

(* ------------------------------------------------------------------ *)
(* Online re-planning for the streaming service (lib/serve). *)

module Fc = Rt_prelude.Float_cmp

type residual_job = {
  rj_id : int;
  rj_remaining : float;
  rj_deadline : float;
  rj_penalty : float;
}

let online_eps = 1e-9

(* the EDF density of the residual set from [now] — the same statistic
   Rt_online.Admission prices feasibility with, restated over bare
   (remaining, deadline) pairs so this module stays independent of the
   job representation *)
let online_density ~now jobs =
  let sorted =
    List.sort (fun a b -> Float.compare a.rj_deadline b.rj_deadline) jobs
  in
  let _, best =
    List.fold_left
      (fun (work, best) j ->
        let work = work +. j.rj_remaining in
        let slack = j.rj_deadline -. now in
        if Fc.exact_le slack online_eps then (work, Float.infinity)
        else (work, Float.max best (work /. slack)))
      (0., 0.) sorted
  in
  best

let shed_online ~now ~cap jobs =
  let arr = Array.of_list jobs in
  let n = Array.length arr in
  (* deadline order with ties broken by original position — the stable
     sort each [online_density] round used to apply. Filtering a list
     commutes with stable-sorting it, so hoisting one sort out of the
     loop and skipping dropped slots visits the surviving jobs in
     exactly the order (and summation association) the per-round
     sort-and-fold did. *)
  let by_deadline = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = Float.compare arr.(a).rj_deadline arr.(b).rj_deadline in
      if c <> 0 then c else Int.compare a b)
    by_deadline;
  let dropped = Array.make n false in
  (* density of the kept set: one allocation-free pass with unboxed
     accumulators, instead of a fresh sort + filter per dropped job *)
  let rec density i work best =
    if i >= n then best
    else begin
      let p = by_deadline.(i) in
      if dropped.(p) then density (i + 1) work best
      else begin
        let work = work +. arr.(p).rj_remaining in
        let slack = arr.(p).rj_deadline -. now in
        if Fc.exact_le slack online_eps then
          density (i + 1) work Float.infinity
        else density (i + 1) work (Float.max best (work /. slack))
      end
    end
  in
  (* cheapest rejection value per remaining cycle goes first — the online
     restatement of Shed_density's penalty-per-weight order; ties break
     on id (then position, matching the stable list sort this replaces)
     so the shed set is deterministic *)
  let drop_order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c =
        Float.compare
          (arr.(a).rj_penalty /. arr.(a).rj_remaining)
          (arr.(b).rj_penalty /. arr.(b).rj_remaining)
      in
      if c <> 0 then c
      else begin
        let c = compare arr.(a).rj_id arr.(b).rj_id in
        if c <> 0 then c else Int.compare a b
      end)
    drop_order;
  let rec go shed di =
    if Fc.leq (density 0 0. 0.) cap then List.rev shed
    else if di >= n then List.rev shed (* kept is empty or cap < 0 *)
    else begin
      let id = arr.(drop_order.(di)).rj_id in
      for k = 0 to n - 1 do
        if arr.(k).rj_id = id then dropped.(k) <- true
      done;
      go (id :: shed) (di + 1)
    end
  in
  go [] 0
