(** Graceful degradation: react to faults by re-invoking the rejection
    heuristics on the residual instance.

    The paper's rejection machinery turns out to be exactly the right
    tool for fault recovery: a crash or a WCEC overrun is "the platform
    shrank / the load grew", which is the same accept-or-reject problem
    on a {e residual} instance — all original items with their weights
    inflated by the overruns, packed onto the surviving processors of
    the derated platform. A policy picks which heuristic re-plans:

    - {!No_op} — keep the original plan and ride out the faults (the
      baseline the others are judged against);
    - {!Shed_density} — re-run {!Rt_core.Greedy.density_reject}: drop
      the lowest penalty-per-weight tasks until the residual fits;
    - {!Shed_marginal} — re-run {!Rt_core.Greedy.marginal_greedy}:
      energy-aware voluntary shedding;
    - {!Repartition_ltf} — re-run {!Rt_core.Greedy.ltf_reject}:
      keep everything that fits, largest first (pure repartitioning
      when capacity allows).

    Every recovery is verified {e concretely}: the degraded plan is
    replayed through the simulators under the scenario's overruns, with
    task requirements computed from the {e original} weights, so a
    policy cannot pass by construction. *)

type policy = No_op | Shed_density | Shed_marginal | Repartition_ltf

val policy_name : policy -> string
(** ["no-op"], ["shed-density"], ["shed-marginal"], ["repartition-ltf"]
    — the names used in experiment tables and the CLI. *)

val all_policies : policy list
(** All four, [No_op] first. *)

type report = {
  misses : int list;  (** task ids that miss under the policy (sorted) *)
  shed : int list;
      (** ids rejected by the recovery but not by the baseline *)
  extra_penalty : float;
      (** penalty of the recovery minus penalty of the baseline *)
  energy_fault_free : float;  (** energy of the baseline, no faults *)
  energy_faulty : float;  (** measured energy of the degraded execution *)
  energy_delta : float;  (** [energy_faulty - energy_fault_free] *)
  residual : Rt_core.Solution.t option;
      (** the re-planned solution on the residual instance ([None] for
          {!No_op}); its partition width is the number of {e surviving}
          processors *)
}

val residual_problem :
  Rt_core.Problem.t -> Fault.scenario -> (Rt_core.Problem.t, string) result
(** The instance a shedding policy re-plans: all original items with
    overrun-inflated weights, [m] = surviving processors,
    {!Fault.derated_proc} as the platform. Errors when no processor
    survives or derating empties the speed domain. *)

val recover_frame :
  Rt_core.Problem.t -> Fault.scenario -> baseline:Rt_core.Solution.t ->
  policy -> (report, string) result
(** Frame-based recovery. The baseline solution (any feasible plan for
    the problem) is costed fault-free; the policy's plan is built, laid
    out on the derated platform via {!Rt_sim.Frame_sim.build}, and
    replayed under the scenario with {!Rt_sim.Frame_sim.run_injected}.
    Errors propagate from scenario validation, an infeasible baseline,
    or an empty residual platform. *)

val recover_periodic :
  proc:Rt_power.Processor.t -> m:int -> tasks:Rt_task.Task.periodic list ->
  Fault.scenario -> policy -> (report, string) result
(** Periodic recovery over one hyper-period. The baseline is
    {!Rt_core.Greedy.ltf_reject} on the utilization instance; each
    processor runs its bucket under EDF at the slowest feasible speed at
    or above its load ({!Rt_power.Processor.nearest_level_above}).
    {!No_op} replays that plan under the scenario's per-processor
    injections; shedding policies re-plan on the residual instance and
    replay the survivors with the overruns still applied. Errors
    propagate from scenario validation, hyper-period overflow, or an
    empty residual platform. *)

val pp_report : Format.formatter -> report -> unit

(** {1 Online re-planning (the streaming service)}

    The batch policies above re-plan a {e frame} instance. The streaming
    service ([Rt_serve.Serve]) faces the same problem in different
    clothes when a fault strikes mid-run: the committed (admitted) jobs
    may no longer be EDF-feasible at the platform's surviving speed, and
    the only safe moves are to keep a job or to shed it and pay its
    rejection penalty — silent deadline misses are not an option. This
    is {!Shed_density} restated online: abandon the cheapest
    penalty-per-remaining-cycle work until the residual density fits. *)

type residual_job = {
  rj_id : int;
  rj_remaining : float;  (** cycles still to execute, > 0 *)
  rj_deadline : float;  (** absolute *)
  rj_penalty : float;  (** paid if the job is shed *)
}
(** One committed job as the re-planner sees it — deliberately not
    [Rt_online.Job.t], so [rt_fault] stays independent of the online
    layer (the service converts). *)

val online_density : now:float -> residual_job list -> float
(** The minimum constant speed meeting every residual commitment from
    [now] (max over deadlines of cumulative-work / time-to-deadline;
    infinite once a deadline is at or behind [now]) — the same statistic
    [Rt_online.Admission] prices feasibility with. *)

val shed_online : now:float -> cap:float -> residual_job list -> int list
(** Which committed jobs to abandon so the rest stay EDF-feasible at a
    sustained speed of [cap]: drops the cheapest penalty-per-remaining-
    cycle job (ties by id) until {!online_density} of the kept set is at
    most [cap] (tolerant comparison, matching the admission test).
    Returns the shed ids {e in shed order} — the cheapest-first prefix
    property the service's overload tests pin down. Empty when the set
    already fits. *)
