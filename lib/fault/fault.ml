module Fc = Rt_prelude.Float_cmp
open Rt_power

type t =
  | Wcec_overrun of { task_id : int; factor : float }
  | Proc_crash of { proc : int; at : float }
  | Speed_derate of { factor : float }

type scenario = t list

let overrun_factor sc id =
  List.fold_left
    (fun acc f ->
      match f with
      | Wcec_overrun { task_id; factor } when task_id = id -> acc *. factor
      | _ -> acc)
    1. sc

let crash_time sc j =
  List.fold_left
    (fun acc f ->
      match f with
      | Proc_crash { proc; at } when proc = j -> (
          match acc with
          | None -> Some at
          | Some t -> Some (Float.min t at))
      | _ -> acc)
    None sc

let derate sc =
  List.fold_left
    (fun acc f ->
      match f with Speed_derate { factor } -> Float.min acc factor | _ -> acc)
    1. sc

let surviving sc ~m =
  List.filter
    (fun j -> Option.is_none (crash_time sc j))
    (Rt_prelude.Math_util.range 0 (m - 1))

let validate ~m sc =
  List.fold_left
    (fun acc f ->
      Result.bind acc (fun () ->
          match f with
          | Wcec_overrun { task_id; factor } ->
              if Fc.exact_gt factor 0. && Float.is_finite factor then Ok ()
              else
                Error
                  (Printf.sprintf
                     "Fault: overrun factor %.6g for task %d must be finite \
                      and > 0"
                     factor task_id)
          | Proc_crash { proc; at } ->
              if proc < 0 || proc >= m then
                Error
                  (Printf.sprintf "Fault: crash names processor %d of %d" proc
                     m)
              else if Fc.exact_ge at 0. && Float.is_finite at then Ok ()
              else
                Error
                  (Printf.sprintf
                     "Fault: crash time %.6g must be finite and >= 0" at)
          | Speed_derate { factor } ->
              if Fc.exact_gt factor 0. && Fc.exact_le factor 1. then Ok ()
              else
                Error
                  (Printf.sprintf
                     "Fault: derate factor %.6g must be in (0, 1]" factor)))
    (Ok ()) sc

let derated_proc sc (proc : Processor.t) =
  let d = derate sc in
  if Fc.approx_eq d 1. then Ok proc
  else
    match proc.domain with
    | Processor.Ideal { s_min; s_max } ->
        let s_max' = d *. s_max in
        if Fc.exact_lt s_max' s_min then
          Error
            (Printf.sprintf
               "Fault: derating to %.6g leaves no speed above s_min %.6g"
               s_max' s_min)
        else
          Ok
            (Processor.make ~model:proc.model
               ~domain:(Processor.Ideal { s_min; s_max = s_max' })
               ~dormancy:proc.dormancy)
    | Processor.Levels ls ->
        let top = ls.(Array.length ls - 1) in
        let cap = d *. top in
        let keep =
          Array.of_list
            (List.filter (fun s -> Fc.leq s cap) (Array.to_list ls))
        in
        if Array.length keep = 0 then
          Error
            (Printf.sprintf
               "Fault: derating to %.6g drops every DVS level" cap)
        else
          Ok
            (Processor.make ~model:proc.model ~domain:(Processor.Levels keep)
               ~dormancy:proc.dormancy)

let speed_cap sc (proc : Processor.t) =
  let d = derate sc in
  if Fc.approx_eq d 1. then None else Some (d *. Processor.s_max proc)

let frame_injection sc ~(proc : Processor.t) =
  {
    Rt_sim.Frame_sim.overrun = overrun_factor sc;
    crash = crash_time sc;
    speed_cap = speed_cap sc proc;
  }

let edf_injection sc ~(proc : Processor.t) ~proc_index =
  {
    Rt_sim.Edf_sim.overrun = overrun_factor sc;
    crash_at = crash_time sc proc_index;
    speed_cap = speed_cap sc proc;
  }

type timed = { at : float; fault : t }

let validate_timed ~m events =
  List.fold_left
    (fun acc e ->
      Result.bind acc (fun () ->
          if not (Float.is_finite e.at) || Fc.exact_lt e.at 0. then
            Error
              (Printf.sprintf
                 "Fault: injection time %.6g must be finite and >= 0" e.at)
          else validate ~m [ e.fault ]))
    (Ok ()) events

let by_time events =
  List.stable_sort (fun a b -> Float.compare a.at b.at) events

type rates = {
  overrun_prob : float;
  overrun_factor : float;
  crash_prob : float;
  derate_prob : float;
  derate_factor : float;
}

let nominal_rates =
  {
    overrun_prob = 0.;
    overrun_factor = 1.5;
    crash_prob = 0.;
    derate_prob = 0.;
    derate_factor = 0.8;
  }

let gen rng rates ~task_ids ~m ~horizon =
  let hit p = Fc.exact_lt (Rt_prelude.Rng.float rng ~lo:0. ~hi:1.) p in
  let overruns =
    List.filter_map
      (fun id ->
        if hit rates.overrun_prob then
          Some (Wcec_overrun { task_id = id; factor = rates.overrun_factor })
        else None)
      task_ids
  in
  (* never crash the last processor standing: the degradation policies need
     somewhere to put the survivors *)
  let crashes = ref [] in
  let alive = ref m in
  for j = 0 to m - 1 do
    if !alive > 1 && hit rates.crash_prob then begin
      decr alive;
      crashes :=
        Proc_crash { proc = j; at = Rt_prelude.Rng.float rng ~lo:0. ~hi:horizon }
        :: !crashes
    end
  done;
  let derates =
    if hit rates.derate_prob then
      [ Speed_derate { factor = rates.derate_factor } ]
    else []
  in
  overruns @ List.rev !crashes @ derates

let pp_fault ppf = function
  | Wcec_overrun { task_id; factor } ->
      Format.fprintf ppf "overrun(task %d, x%.3g)" task_id factor
  | Proc_crash { proc; at } ->
      Format.fprintf ppf "crash(proc %d @@ %.3g)" proc at
  | Speed_derate { factor } -> Format.fprintf ppf "derate(x%.3g)" factor

let pp_timed ppf e =
  Format.fprintf ppf "%a @@ t=%.3g" pp_fault e.fault e.at

let pp ppf sc =
  match sc with
  | [] -> Format.fprintf ppf "fault-free"
  | _ ->
      Format.fprintf ppf "[@[<hov>%a@]]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           pp_fault)
        sc
