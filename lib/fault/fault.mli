(** Seeded fault models for the robustness experiments.

    Three fault classes cover the standard failure modes of a DVS
    multiprocessor platform:

    - {e WCEC overrun}: a task's worst-case execution cycles were
      under-estimated; its jobs take [factor] times longer than planned.
    - {e processor crash}: a processor stops executing at time [at]
      (fail-stop); work scheduled after that point is lost.
    - {e speed derating}: the platform loses its top speed range —
      thermal throttling on ideal processors, losing the top DVS levels
      on non-ideal ones.

    A {!scenario} is a list of such faults. This module only {e
    describes} faults and converts them into the simulators' injection
    hooks ({!Rt_sim.Frame_sim.injection}, {!Rt_sim.Edf_sim.injection});
    reacting to them is {!Degrade}'s job. *)

type t =
  | Wcec_overrun of { task_id : int; factor : float }
      (** jobs of [task_id] need [factor] × their nominal cycles
          ([factor > 0], finite; [> 1] is an overrun, [< 1] a windfall) *)
  | Proc_crash of { proc : int; at : float }
      (** processor [proc] executes nothing after time [at] *)
  | Speed_derate of { factor : float }
      (** platform-wide speed loss: no processor can exceed
          [factor × s_max] ([0 < factor <= 1]) *)

type scenario = t list
(** Order is irrelevant; duplicate faults compose (overrun factors
    multiply, the earliest crash per processor wins, the harshest derate
    wins). The empty list is the fault-free scenario. *)

val validate : m:int -> scenario -> (unit, string) result
(** Check every fault's fields: finite positive overrun factors, crash
    processor indices within [\[0, m)], finite non-negative crash times,
    derate factors in [(0, 1]]. *)

(** {1 Accessors (the composed view)} *)

val overrun_factor : scenario -> int -> float
(** Product of all overrun factors naming this task (1.0 if none). *)

val crash_time : scenario -> int -> float option
(** Earliest crash time of this processor, if any fault names it. *)

val derate : scenario -> float
(** Minimum derate factor in the scenario (1.0 if none). *)

val surviving : scenario -> m:int -> int list
(** Processor indices with no crash fault, ascending. *)

(** {1 Projections into platform and simulators} *)

val derated_proc :
  scenario -> Rt_power.Processor.t -> (Rt_power.Processor.t, string) result
(** The processor descriptor the degradation policies should plan
    against: an ideal spectrum has its [s_max] scaled by {!derate}; a
    level domain keeps only the levels at or below [derate × top].
    Errors when nothing survives (no level left, or the ideal [s_min]
    exceeds the derated maximum). *)

val speed_cap : scenario -> Rt_power.Processor.t -> float option
(** The absolute speed ceiling {!derate}[ × s_max], or [None] when the
    scenario does not derate. *)

val frame_injection :
  scenario -> proc:Rt_power.Processor.t -> Rt_sim.Frame_sim.injection
(** Project the scenario onto a frame schedule built for [proc]. *)

val edf_injection :
  scenario -> proc:Rt_power.Processor.t -> proc_index:int ->
  Rt_sim.Edf_sim.injection
(** Project the scenario onto the single-processor EDF simulation of
    processor [proc_index]. *)

(** {1 Timed injection (the streaming service)}

    The batch simulators take a {!scenario} whole — every fault is known
    before the replay starts. A {e running} service instead takes faults
    as events: a {!timed} wrapper gives each fault the absolute stream
    time at which it strikes, and [Rt_serve.Serve] applies it to the live
    executor at that instant (then re-plans the committed work through
    [Degrade.shed_online]). For {!Proc_crash} the wrapper's [at] is the
    authoritative strike time; the fault's own [at] field is what the
    batch simulators read and is ignored by the service. *)

type timed = { at : float; fault : t }

val validate_timed : m:int -> timed list -> (unit, string) result
(** {!validate} on every wrapped fault, plus: strike times finite and
    >= 0. *)

val by_time : timed list -> timed list
(** Ascending strike time, stable (simultaneous faults keep their given
    order — they compose exactly as in a {!scenario}). *)

val pp_timed : Format.formatter -> timed -> unit

val pp_fault : Format.formatter -> t -> unit
(** One fault, the element form of {!pp}. *)

(** {1 Seeded generation} *)

type rates = {
  overrun_prob : float;  (** per-task probability of a WCEC overrun *)
  overrun_factor : float;  (** factor each generated overrun uses *)
  crash_prob : float;  (** per-processor crash probability *)
  derate_prob : float;  (** probability of a platform-wide derate *)
  derate_factor : float;  (** factor a generated derate uses *)
}

val nominal_rates : rates
(** All probabilities 0 (the fault-free generator); factors 1.5× overrun
    and 0.8 derate — override the probabilities to switch faults on. *)

val gen :
  Rt_prelude.Rng.t -> rates -> task_ids:int list -> m:int -> horizon:float ->
  scenario
(** Draw a scenario: each task overruns with [overrun_prob], each
    processor crashes (at a uniform time in [\[0, horizon)]) with
    [crash_prob] — except that the last surviving processor is never
    crashed, so recovery always has somewhere to run — and the platform
    derates with [derate_prob]. Deterministic in the [Rng] state. *)

val pp : Format.formatter -> scenario -> unit
