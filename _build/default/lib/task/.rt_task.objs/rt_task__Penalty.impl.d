lib/task/penalty.ml: Format List Rt_power Rt_prelude Task Taskset
