lib/task/taskset.ml: Format List Rt_prelude Task
