lib/task/taskset.mli: Format Task
