lib/task/penalty.mli: Format Rt_power Rt_prelude Task
