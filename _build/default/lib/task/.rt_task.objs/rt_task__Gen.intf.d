lib/task/gen.mli: Rt_prelude Task
