lib/task/task.ml: Float Format List
