lib/task/gen.ml: Float List Rt_prelude Task
