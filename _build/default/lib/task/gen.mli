(** Synthetic workload generators.

    All generators thread an explicit {!Rt_prelude.Rng.t} so every
    experiment row can be reproduced from its seed. *)

val frame_tasks :
  Rt_prelude.Rng.t -> n:int -> cycles_lo:int -> cycles_hi:int ->
  Task.frame list
(** [n] frame tasks with ids [0 … n-1] and cycles uniform in
    [\[cycles_lo, cycles_hi\]]. Penalties are 0 (attach them with
    {!Penalty.assign} on the item view).
    @raise Invalid_argument on [n < 0] or an invalid cycle range. *)

val frame_tasks_with_load :
  Rt_prelude.Rng.t -> n:int -> m:int -> s_max:float -> frame_length:float ->
  load:float -> Task.frame list
(** [n] frame tasks whose total cycles is approximately
    [load * m * s_max * frame_length]: relative sizes are drawn uniformly in
    [\[1, 5\]] and then scaled (rounded to at least one cycle each). [load]
    is the normalized system load of experiment E3: at [load <= 1.0] accepting
    everything is (capacity-wise) possible, above it rejection is forced.
    @raise Invalid_argument on non-positive parameters. *)

val periodic_tasks :
  Rt_prelude.Rng.t -> n:int -> total_util:float -> periods:int list ->
  Task.periodic list
(** [n] periodic tasks with utilizations drawn by UUniFast summing to
    [total_util] and periods chosen uniformly from [periods] (keep that list
    harmonic-ish to bound the hyper-period). Cycles are
    [max 1 (round (u * period))], so the realized total utilization differs
    from [total_util] by rounding only.
    @raise Invalid_argument on [n < 1], negative [total_util], empty or
    non-positive [periods]. *)

val default_periods : int list
(** [\[100; 200; 250; 400; 500; 1000\]] — divisors of 2000, keeping
    hyper-periods at most 2000 ticks. *)

val items :
  Rt_prelude.Rng.t -> n:int -> weight_lo:float -> weight_hi:float ->
  Task.item list
(** Abstract items with uniform weights; for algorithm-level tests. *)

val heterogeneous_power_factors :
  Rt_prelude.Rng.t -> lo:float -> hi:float -> Task.item list -> Task.item list
(** Redraw each item's [power_factor] uniformly in [\[lo, hi\]] (the
    different-power-characteristics setting of the LEET/LEUF substrate). *)
