(** Real-time task models.

    Two concrete task shapes follow the paper setting:

    - {e frame-based} tasks: all arrive at time 0 and share a common
      deadline [D] (the frame); characterized by worst-case execution
      cycles.
    - {e periodic} tasks: implicit-deadline periodic tasks [(c_i, p_i)];
      a task releases a job every [p_i] ticks and each job must finish
      before the next release.

    Both carry a {e rejection penalty}: the cost the system pays if the
    scheduler declines to run the task (per frame, respectively per
    hyper-period). [power_factor] scales the speed-dependent power a task
    induces while it runs (1.0 = the processor's nominal model); it is 1 for
    the homogeneous core problem and used by the heterogeneous-power
    substrate algorithms (LEET/LEUF family).

    Cycles and periods are integers so that dynamic-programming algorithms
    and hyper-period arithmetic are exact. *)

type frame = private {
  id : int;
  cycles : int;  (** worst-case execution cycles, > 0 *)
  penalty : float;  (** rejection penalty, >= 0, finite *)
  power_factor : float;  (** multiplier on the dynamic power, > 0 *)
}

type periodic = private {
  id : int;
  cycles : int;  (** worst-case execution cycles per job, > 0 *)
  period : int;  (** period = relative deadline, in ticks, > 0 *)
  penalty : float;  (** rejection penalty per hyper-period, >= 0 *)
  power_factor : float;
}

val frame : ?penalty:float -> ?power_factor:float -> id:int -> cycles:int -> unit -> frame
(** [penalty] defaults to [0.], [power_factor] to [1.].
    @raise Invalid_argument on out-of-range fields. *)

val periodic :
  ?penalty:float -> ?power_factor:float -> id:int -> cycles:int ->
  period:int -> unit -> periodic
(** @raise Invalid_argument on out-of-range fields. *)

val utilization : periodic -> float
(** [cycles / period] as a float — the sustained speed the task demands. *)

(** {1 The unified "item" view}

    Rejection-scheduling algorithms do not care whether weights are cycles
    within a frame or utilizations within a hyper-period: both reduce to a
    per-item {e required-speed contribution} packed onto processors whose
    capacity is [s_max]. [weight] is that contribution. *)

type item = {
  item_id : int;
  weight : float;  (** required-speed contribution; > 0 *)
  item_penalty : float;
  item_power_factor : float;
}

val item_of_frame : frame_length:float -> frame -> item
(** [weight = cycles / frame_length]. @raise Invalid_argument if
    [frame_length <= 0]. *)

val item_of_periodic : periodic -> item
(** [weight = utilization]. *)

val item :
  ?penalty:float -> ?power_factor:float -> id:int -> weight:float -> unit ->
  item
(** Direct constructor for synthetic items (tests, hardness gadgets). *)

(** {1 Printers and orders} *)

val pp_frame : Format.formatter -> frame -> unit
val pp_periodic : Format.formatter -> periodic -> unit
val pp_item : Format.formatter -> item -> unit

val compare_frame_cycles_desc : frame -> frame -> int
(** Largest cycles first; ties broken by id (ascending) so sorts are
    deterministic. *)

val compare_periodic_util_desc : periodic -> periodic -> int
val compare_item_weight_desc : item -> item -> int

val distinct_ids : int list -> bool
(** [true] iff no id occurs twice (task sets must have unique ids). *)
