(** Rejection-penalty models for synthetic workloads.

    How penalties correlate with task size determines which rejection
    heuristic wins, so the experiment suite sweeps over several models
    (experiment E4). Penalties are expressed relative to a {e reference
    energy}: the energy the task would consume if executed alone at the
    processor's top speed — this keeps penalties commensurable with the
    energy term of the objective across instances. *)

type t =
  | Uniform of { lo : float; hi : float }
      (** penalty drawn uniformly in [\[lo, hi\]] × reference energy,
          independent of the task *)
  | Proportional of { factor : float; jitter : float }
      (** penalty = [factor] × task's own reference energy, multiplied by a
          uniform jitter in [\[1-jitter, 1+jitter\]]; "important work costs
          more to drop" *)
  | Inverse of { factor : float; jitter : float }
      (** penalty = [factor] × (mean weight / task weight) × mean reference
          energy, with jitter; "big tasks are the cheap ones to drop" *)
  | Bimodal of { low : float; high : float; p_high : float }
      (** with probability [p_high] the penalty is [high] × reference
          energy, else [low] × reference energy; models mixed-criticality
          sets *)

val validate : t -> (unit, string) result

val assign :
  t -> Rt_prelude.Rng.t -> proc:Rt_power.Processor.t -> horizon:float ->
  Task.item list -> Task.item list
(** Return the same items (same ids, weights, power factors) with penalties
    drawn from the model. The reference energy of an item of weight [w] is
    the energy it would consume executed at top speed over the horizon:
    [w · horizon / s_max · P(s_max)] — the same scale as the objective's
    energy term, which is what makes accept/reject a real trade-off.
    @raise Invalid_argument if [validate] fails or [horizon <= 0]. *)

val pp : Format.formatter -> t -> unit

val default_models : (string * t) list
(** The named models used by experiment E4: uniform, proportional, inverse,
    bimodal. *)
