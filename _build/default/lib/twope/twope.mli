(** Heterogeneous two-processing-element systems: a DVS processor plus a
    non-DVS PE (e.g. an FPGA fabric).

    Every periodic task runs either on the DVS PE — contributing its
    utilization [dvs_weight = c_i/p_i] to the speed the DVS PE must
    sustain — or on the non-DVS PE, where it occupies [alt_permille]
    thousandths of the PE's unit capacity. The non-DVS PE comes in two
    flavours:

    - {e workload-independent}: it burns [alt_power] whenever the system
      is on, regardless of what it hosts (its energy is a constant, so
      minimizing total energy = minimizing DVS-PE energy subject to the
      offload-capacity constraint — a minimization knapsack);
    - {e workload-dependent}: it burns [alt_power × U₂], so every offload
      trades DVS savings against non-DVS spending.

    Capacities are exact integers (permille) so the dynamic-programming
    solver is exact rather than approximate. *)

type task = private {
  id : int;
  dvs_weight : float;  (** required speed on the DVS PE; > 0 *)
  alt_permille : int;  (** capacity share on the non-DVS PE; 1..1000 *)
}

val task : id:int -> dvs_weight:float -> alt_permille:int -> task
(** @raise Invalid_argument on out-of-range fields. *)

type pe_kind = Workload_independent | Workload_dependent

type system = private {
  dvs : Rt_power.Processor.t;
  alt_power : float;  (** non-DVS PE power (full-capacity power for the
                          dependent flavour); >= 0 *)
  alt_kind : pe_kind;
  horizon : float;  (** hyper-period; > 0 *)
}

val system :
  dvs:Rt_power.Processor.t -> alt_power:float -> alt_kind:pe_kind ->
  horizon:float -> (system, string) result

type assignment = {
  kept : task list;  (** tasks on the DVS PE *)
  offloaded : task list;  (** tasks on the non-DVS PE *)
}

val cost : system -> assignment -> (float, string) result
(** Total energy over the horizon: the DVS PE's optimal sustained-rate
    energy at [Σ kept dvs_weight] plus the non-DVS PE's energy. Errors if
    the offloaded capacity exceeds 1000‰ or the kept utilization exceeds
    the DVS PE's top speed. *)

val validate : system -> task list -> assignment -> (unit, string) result
(** [cost] feasibility plus: the assignment is a partition of exactly the
    given task set. *)

(** {1 Algorithms}

    All take the full task list and return an assignment (never raising on
    regular inputs; infeasible placements are simply not made). *)

val greedy : system -> task list -> assignment
(** The intuitive density greedy: offload tasks in non-decreasing
    [alt_permille / dvs_weight] order while the non-DVS PE has room.
    Published as unboundedly suboptimal — kept as the reference
    baseline. *)

val e_greedy : system -> task list -> assignment
(** The minimization-knapsack 2-approximation (Gens–Levner style): sort by
    [dvs_weight / alt_permille], take density-prefix solutions combined
    with one eviction each, keep the best. For the workload-independent
    flavour this carries the published 8-approximation on energy. *)

val dp : system -> task list -> assignment
(** Exact for the workload-independent flavour: a 0/1 knapsack over the
    non-DVS PE's permille capacity maximizing the offloaded DVS weight
    (pseudo-polynomial in 1000). For the dependent flavour it optimizes
    the same surrogate and is a heuristic. *)

val s_greedy : system -> task list -> assignment
(** For workload-dependent PEs: offload a task only when doing so lowers
    the {e total} energy (DVS marginal saving vs. non-DVS marginal cost),
    scanning in non-increasing [dvs_weight / alt_permille] order; then
    compare with the best single-offload assignment and keep the better —
    the published 0.5-approximation on energy {e savings}. *)

val exhaustive : system -> task list -> assignment
(** Subset enumeration oracle (2^n cost evaluations).
    @raise Invalid_argument above 30 tasks; keep n at 16 or below in
    practice. *)

val named : (string * (system -> task list -> assignment)) list
(** [greedy; e-greedy; dp; s-greedy] with their table names. *)

(** {1 Workload generators (the companion's two settings)} *)

val gen_proportional :
  Rt_prelude.Rng.t -> n:int -> total_alt:float -> task list
(** Non-DVS utilization roughly proportional to DVS demand; [total_alt]
    is the targeted [U₂*] (sum of alt utilizations, in units of the PE
    capacity). *)

val gen_inverse : Rt_prelude.Rng.t -> n:int -> total_alt:float -> task list
(** Non-DVS utilization anti-correlated with DVS demand (big DVS tasks are
    cheap to host on the fabric) — the setting where greedy offloading
    shines or embarrasses itself. *)
