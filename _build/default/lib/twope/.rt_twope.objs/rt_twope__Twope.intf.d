lib/twope/twope.mli: Rt_power Rt_prelude
