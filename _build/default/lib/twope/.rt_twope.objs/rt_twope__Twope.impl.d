lib/twope/twope.ml: Array Float List Result Rt_exact Rt_power Rt_prelude Rt_speed
