(** Online admission control with DVS speed scaling on one processor.

    The executor runs admitted jobs under preemptive EDF; between events
    it holds the {e density speed} — the largest, over pending deadlines
    [d], of (remaining work due by [d]) / (d − now) — which is the
    minimum constant speed that keeps every commitment, clamped from
    below by the critical speed (sleep when idle) and capped at [s_max].
    This is the online analogue of the uniform-speed optimality the
    static problem enjoys.

    At each arrival the controller runs an exact admission test (is the
    density with the new job at most [s_max]?) and, if the job {e can} be
    admitted, a policy decides whether it {e should} be:

    - {!Admit_all}: accept whenever feasible (the clamping baseline);
    - {!Profitable}: accept iff the estimated marginal energy — running
      the job's cycles at the post-admission density speed — is below
      its penalty (the online marginal-greedy);
    - {!Density_threshold}: accept iff penalty per cycle clears a fixed
      threshold (the cheapest controller: no energy model needed at
      admission time).

    Admitted jobs are guaranteed to meet their deadlines (the test is
    exact for EDF over the {e current} commitments), which the simulator
    re-checks. Note the online/offline gap: because the executor runs at
    the current density, it procrastinates relative to a clairvoyant
    schedule ({!Yds}) that would pre-clear work before a burst — streams
    that are offline-feasible can therefore still suffer forced online
    rejections. The property tests pin this down. *)

type policy =
  | Admit_all
  | Profitable
  | Density_threshold of float  (** minimum accepted penalty per cycle *)

type outcome = {
  energy : float;
  penalty : float;  (** Σ over rejected jobs *)
  total : float;
  admitted : int list;  (** job ids, ascending *)
  rejected : int list;
  forced_rejections : int;  (** rejections where admission was infeasible *)
  makespan : float;  (** time the last admitted job completed *)
}

val simulate :
  proc:Rt_power.Processor.t -> policy:policy -> Job.t list ->
  (outcome, string) result
(** Jobs may be given in any order (sorted internally). Errors on
    duplicate ids, a non-ideal processor (discrete-level online scaling
    is out of scope), or — defensively — if an admitted job misses its
    deadline, which the admission test is supposed to make impossible. *)

val simulate_mp :
  proc:Rt_power.Processor.t -> m:int -> policy:policy -> Job.t list ->
  (outcome, string) result
(** The partitioned multiprocessor form: [m] identical processors, each
    running its own density-speed EDF executor. An arriving job is tried
    on the feasible processor with the smallest marginal-energy estimate
    (equivalently the least-loaded, by convexity); the policy then decides
    as in {!simulate}. With [m = 1] this coincides with {!simulate}.
    Errors as {!simulate} plus [m < 1]. *)

val lower_bound : proc:Rt_power.Processor.t -> Job.t list -> float
(** An unreachable-but-sound reference: each job independently pays
    [min(penalty, cycles × best-feasible-per-cycle-energy)], where the
    per-cycle energy is evaluated at the better of the critical speed and
    the job's own laxity speed — interference between jobs can only make
    reality costlier. *)
