lib/online/admission.mli: Job Rt_power
