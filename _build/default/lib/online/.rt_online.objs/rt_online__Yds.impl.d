lib/online/yds.ml: Float Job List Rt_power Rt_prelude Rt_task
