lib/online/job.ml: Float List Rt_prelude
