lib/online/yds.mli: Job Rt_power
