lib/online/admission.ml: Array Float Job List Option Power_model Printf Processor Rt_power Rt_prelude Rt_task
