lib/online/job.mli: Rt_prelude
