(** The Yao–Demers–Shenker offline-optimal speed schedule.

    Given aperiodic jobs (arrival, deadline, cycles) known in advance, the
    YDS algorithm repeatedly finds the {e critical interval} — the window
    [\[t1, t2\]] maximizing intensity
    [Σ cycles of jobs contained in the window / (t2 − t1)] — schedules the
    contained jobs across that window at exactly the intensity, removes
    them, excises the window from the timeline, and recurses. The result
    is the minimum-energy feasible speed profile for any convex power
    function; with leakage and a sleep mode the blocks whose intensity
    falls below the critical speed run at the critical speed and sleep
    (Irani et al.), which is how {!energy} prices them.

    This is the optimality oracle for {!Admission}: when the online
    executor admits everything, its energy can never beat YDS. *)

type block = {
  intensity : float;  (** cycles per unit time across the block *)
  length : float;  (** block duration in original (un-excised) time *)
  work : float;  (** = intensity × length *)
}

val blocks : Job.t list -> block list
(** The critical-interval decomposition, in extraction order (intensities
    non-increasing). Total [work] equals the jobs' total cycles. Empty
    input gives []. @raise Invalid_argument on duplicate ids. *)

val peak_intensity : Job.t list -> float
(** Intensity of the first block (0. for no jobs) — the minimum top speed
    any feasible schedule needs. *)

val energy :
  proc:Rt_power.Processor.t -> Job.t list -> (float, string) result
(** Offline-optimal energy on an ideal processor: each block runs at
    [max(intensity, critical speed)] (sleeping through the slack when the
    clamp is active; dormant-disable processors instead pay leakage over
    the block). Errors when the peak intensity exceeds [s_max] (no
    feasible schedule) or the processor has discrete levels. *)
