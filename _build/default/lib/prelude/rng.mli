(** Seeded randomness for reproducible experiments.

    Every generator in the repository threads an explicit [t] so that any
    experiment row can be regenerated from its seed. The module wraps
    [Random.State] and adds the task-set-generation primitives the
    literature uses (UUniFast, log-uniform choices). *)

type t

val create : seed:int -> t
(** Deterministic state from an integer seed. *)

val split : t -> t
(** Derive an independent child state (consumes randomness from the parent);
    used to give each replication of an experiment its own stream. *)

val int : t -> lo:int -> hi:int -> int
(** Uniform integer in [\[lo, hi\]] inclusive. @raise Invalid_argument if
    [lo > hi]. *)

val float : t -> lo:float -> hi:float -> float
(** Uniform float in [\[lo, hi)]. @raise Invalid_argument if [lo > hi]. *)

val bool : t -> bool

val log_uniform : t -> lo:float -> hi:float -> float
(** Log-uniformly distributed in [\[lo, hi)]; both bounds must be positive. *)

val choice : t -> 'a list -> 'a
(** Uniform element of a non-empty list. @raise Invalid_argument on []. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates permutation. *)

val uunifast : t -> n:int -> total:float -> float list
(** [uunifast t ~n ~total] draws [n] non-negative values summing to [total],
    uniformly over the simplex (Bini & Buttazzo's UUniFast). Standard
    generator for per-task utilizations given a target system utilization.
    @raise Invalid_argument if [n < 1] or [total < 0]. *)
