(** Descriptive statistics over float samples.

    Every experiment in the suite reports sample means of normalized ratios
    over many seeded replications; this module is the single implementation
    of those aggregates. All functions raise [Invalid_argument] on empty
    input unless stated otherwise. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator; 0 if n=1) *)
  min : float;
  max : float;
  median : float;
}

val mean : float list -> float
val stddev : float list -> float
val minimum : float list -> float
val maximum : float list -> float

val median : float list -> float
(** Median; averages the middle pair for even sample sizes. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [\[0, 100\]], linear interpolation between
    order statistics. @raise Invalid_argument if [p] is out of range. *)

val summarize : float list -> summary

val geometric_mean : float list -> float
(** Geometric mean of strictly positive samples; the customary aggregate for
    ratios-to-baseline. @raise Invalid_argument on non-positive samples. *)

val pp_summary : Format.formatter -> summary -> unit
