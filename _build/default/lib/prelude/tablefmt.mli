(** Plain-text table and CSV rendering for experiment output.

    The benchmark harness and the [experiments] binary print the same tables
    the paper-style evaluation reports; this module owns the layout so every
    table in the repository looks identical. *)

type align = Left | Right

type t
(** A table under construction: a header and a list of string rows. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table. [aligns] defaults to [Right] for every
    column. @raise Invalid_argument if [aligns] is given with a different
    length than [headers]. *)

val add_row : t -> string list -> t
(** Append a row. @raise Invalid_argument if the arity differs from the
    header. *)

val add_float_row : ?fmt:(float -> string) -> t -> string -> float list -> t
(** [add_float_row t label xs] appends [label :: map fmt xs]; [fmt] defaults
    to [Printf.sprintf "%.4f"]. The label column plus the floats must match
    the header arity. *)

val render : t -> string
(** Box-drawing-free ASCII rendering with aligned columns. *)

val to_csv : t -> string
(** RFC-4180-ish CSV (quotes fields containing commas/quotes/newlines). *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val float_cell : ?decimals:int -> float -> string
(** Uniform float formatting for table cells (default 4 decimals). *)
