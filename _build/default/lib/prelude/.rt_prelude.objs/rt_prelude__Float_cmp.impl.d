lib/prelude/float_cmp.ml: Float
