lib/prelude/rng.mli:
