lib/prelude/tablefmt.ml: Array Buffer Float List Printf String
