lib/prelude/math_util.ml: Float List
