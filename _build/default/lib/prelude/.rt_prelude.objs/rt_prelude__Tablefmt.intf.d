lib/prelude/tablefmt.mli:
