lib/prelude/float_cmp.mli:
