lib/prelude/math_util.mli:
