lib/prelude/rng.ml: Array List Random
