(** Experiments E1–E4: the core rejection-scheduling evaluation on
    homogeneous ideal multiprocessors (XScale-like power model).

    Each function prints nothing; it returns the finished table so the
    [experiments] binary and the benchmark harness render identical
    output. [seeds] is the number of replications per row (defaults keep
    the full suite under a couple of minutes). *)

val algorithms : (string * Rt_core.Greedy.algorithm) list
(** The evaluated algorithm set: the deterministic greedy family plus
    their local-search-polished variants. *)

val e1_vs_optimal : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** Average total-cost ratio to the exact optimum (branch-and-bound) on
    small instances; rows sweep (m, n), load 1.4. *)

val e2_vs_lower_bound : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** Average ratio to the pooled + fractional-rejection lower bound at
    scale; rows sweep (m, n), load 1.5. *)

val e3_load_sweep : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** Ratio-to-lower-bound and acceptance ratio as the normalized load sweeps
    through the forced-rejection threshold (n = 40, m = 8). *)

val e4_penalty_models : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** Sensitivity of the algorithm ranking to the penalty model (uniform /
    proportional / inverse / bimodal) at load 1.6. *)
