(** Experiment E18 (analysis): the penalty-calibration Pareto frontier.

    A system integrator does not receive penalties from nature — they
    {e choose} them to steer the scheduler. Scaling every penalty by a
    factor λ traces the frontier between energy spent and work accepted:
    small λ means the scheduler sheds aggressively (low energy, low
    acceptance), large λ forces it to absorb everything it can. This
    experiment tabulates that frontier for the polished LTF heuristic on
    a fixed overloaded workload family. *)

val e18_penalty_frontier : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** Rows: the penalty scale λ. Columns: acceptance %, mean energy, mean
    paid penalty (at the {e unscaled} penalties, so rows are comparable),
    and their sum — the operating point λ buys. Expected: acceptance and
    energy rise monotonically with λ while unscaled-penalty losses fall —
    the frontier the integrator picks from. *)
