(** Standard synthetic instances used across experiments, examples and
    benches — one place so every consumer generates identical workloads for
    a given seed. *)

val default_frame_length : float
(** 1000. time units. *)

val frame_instance :
  ?penalty_model:Rt_task.Penalty.t -> proc:Rt_power.Processor.t -> seed:int ->
  n:int -> m:int -> load:float -> unit -> Rt_core.Problem.t
(** Frame tasks targeting the given normalized load, penalties from
    [penalty_model] (default: proportional, factor 1.5, jitter 0.3).
    @raise Invalid_argument on generator/problem errors (these are
    programming errors in experiment definitions, not data errors). *)

val periodic_instance :
  ?penalty_model:Rt_task.Penalty.t -> proc:Rt_power.Processor.t -> seed:int ->
  n:int -> m:int -> total_util:float -> unit ->
  Rt_core.Problem.t * Rt_task.Task.periodic list
(** UUniFast periodic tasks over {!Rt_task.Gen.default_periods}; returns
    both the reduced problem and the concrete tasks (for EDF
    simulation). *)

val solution_total : Rt_core.Problem.t -> Rt_core.Solution.t -> float
(** The solution's total cost; raises on invalid solutions (experiment
    definitions must only produce valid ones). *)
