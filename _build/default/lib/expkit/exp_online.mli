(** Experiment E13: the online extension — admission policies under a
    load sweep of Poisson job arrivals.

    The published problem is static; this experiment probes the natural
    online regime its future-work section points at. Total cost (energy +
    rejection penalties) is normalized to the per-job clairvoyant lower
    bound of {!Rt_online.Admission.lower_bound}. *)

val e13_online_admission : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** Rows: offered load (expected utilization demand). Columns: the three
    policies' cost ratios plus Admit_all's acceptance rate. Expected:
    all ratios near 1 at light load; under overload Profitable and the
    threshold policy beat Admit_all, whose forced rejections pick the
    wrong victims. *)
