open Rt_task

let proc =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let scale_penalties lambda items =
  List.map
    (fun (it : Task.item) ->
      Task.item
        ~penalty:(lambda *. it.item_penalty)
        ~power_factor:it.item_power_factor ~id:it.item_id ~weight:it.weight ())
    items

let e18_penalty_frontier ?(seeds = 20) () =
  let seed_list = Runner.seeds ~base:2000 ~n:seeds in
  let t =
    Rt_prelude.Tablefmt.create
      ~aligns:
        [
          Rt_prelude.Tablefmt.Left;
          Rt_prelude.Tablefmt.Right;
          Rt_prelude.Tablefmt.Right;
          Rt_prelude.Tablefmt.Right;
          Rt_prelude.Tablefmt.Right;
        ]
      [
        "lambda";
        "acceptance %";
        "energy";
        "unscaled penalty paid";
        "unscaled total";
      ]
  in
  let alg = Rt_core.Local_search.with_local_search Rt_core.Greedy.ltf_reject in
  List.fold_left
    (fun t lambda ->
      let samples =
        List.filter_map
          (fun seed ->
            let base =
              Instances.frame_instance ~proc ~seed ~n:30 ~m:6 ~load:1.6 ()
            in
            let scaled_items =
              scale_penalties lambda base.Rt_core.Problem.items
            in
            match
              Rt_core.Problem.make ~proc ~m:6 ~horizon:1000. scaled_items
            with
            | Error _ -> None
            | Ok p -> (
                let s = alg p in
                match Rt_core.Solution.cost p s with
                | Error _ -> None
                | Ok c ->
                    (* re-price the rejections at the unscaled penalties so
                       rows are comparable *)
                    let unscaled_penalty =
                      List.fold_left
                        (fun acc id ->
                          match Rt_core.Problem.item base id with
                          | Some it -> acc +. it.Task.item_penalty
                          | None -> acc)
                        0.
                        (Rt_core.Solution.rejected_ids s)
                    in
                    Some
                      ( 100. *. Rt_core.Solution.acceptance_ratio p s,
                        c.Rt_core.Solution.energy,
                        unscaled_penalty )))
          seed_list
      in
      match samples with
      | [] -> t
      | _ ->
          let mean f =
            Rt_prelude.Stats.mean (List.map f samples)
          in
          let acc = mean (fun (a, _, _) -> a) in
          let energy = mean (fun (_, e, _) -> e) in
          let pen = mean (fun (_, _, p) -> p) in
          Rt_prelude.Tablefmt.add_float_row t
            (Printf.sprintf "%.2f" lambda)
            [ acc; energy; pen; energy +. pen ])
    t
    [ 0.1; 0.25; 0.5; 1.0; 2.0; 4.0; 10.0 ]
