(** Experiments E5–E6: processor-model ablations.

    E5 quantifies what a coarse DVFS grid costs relative to an ideal
    continuous spectrum (the two-adjacent-level split makes the loss the
    interpolation gap of the convex power curve). E6 quantifies the value
    of the critical-speed clamp as leakage grows: running "as slowly as the
    deadline allows" is optimal only when leakage is negligible. *)

val e5_discrete_levels : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** Rows: speed-domain granularity (ideal, k evenly spaced levels, the
    XScale grid). Columns: accept-all energy normalized to the ideal
    domain, at light (0.4) and moderate (0.7) load. *)

val e6_leakage : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** Rows: leakage power [p_ind]. Columns: energy of the
    stretch-to-deadline policy over the critical-speed-clamped policy
    (>= 1, growing with leakage), plus the critical speed itself. *)
