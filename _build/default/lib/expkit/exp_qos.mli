(** Experiment E16 (extension): graceful degradation vs binary rejection.

    The core problem's accept/reject decision generalized to service-level
    menus ({!Rt_core.Qos}): each task can also run at 2/3 or 1/3 service.
    Penalties follow a concave loss (curve 2: the first quality losses are
    cheap, as with video enhancement layers), which is the regime where
    degradation pays. The experiment measures
    how much of the binary-rejection cost the richer menu recovers as the
    system moves deeper into overload. *)

val e16_graceful_degradation : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** Rows: normalized load. Columns: greedy multi-level cost over greedy
    binary cost (<= 1 means degradation helped), the same for the exact
    optima on small instances, and the mean fraction of tasks running
    degraded-but-not-rejected. *)
