(** Experiment E15 (ablation): what forbidding migration costs.

    Measures LTF partition energy over the migratory optimum of
    {!Rt_partition.Migration} across task granularities. The ratio folds
    together LTF's own suboptimality (published bound: 1.13 vs the optimal
    partition) and the intrinsic cost of forbidding migration (up to 4/3
    on coarse tasks); with many small tasks both vanish. *)

val e15_partition_vs_migration : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** Rows: tasks-per-processor ratio. Columns: LTF/migratory and
    unsorted-greedy/migratory energy ratios. Expected: both converge to
    1.0 as granularity rises; the unsorted baseline converges more
    slowly. *)
