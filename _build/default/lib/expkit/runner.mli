(** Seeded replication helpers shared by the experiment suite. *)

val seeds : base:int -> n:int -> int list
(** [n] distinct deterministic seeds derived from [base]. *)

val replicate :
  seeds:int list -> f:(int -> float) -> Rt_prelude.Stats.summary
(** Evaluate [f seed] for every seed and summarize. Skips NaN results (an
    experiment may declare a replication inapplicable that way) —
    @raise Invalid_argument if {e every} replication was NaN. *)

val mean_over : seeds:int list -> f:(int -> float) -> float
(** [replicate] then the mean. *)
