lib/expkit/exp_online.ml: Float List Printf Rt_online Rt_power Rt_prelude Runner
