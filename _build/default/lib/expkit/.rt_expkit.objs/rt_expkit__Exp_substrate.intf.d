lib/expkit/exp_substrate.mli: Rt_prelude
