lib/expkit/runner.mli: Rt_prelude
