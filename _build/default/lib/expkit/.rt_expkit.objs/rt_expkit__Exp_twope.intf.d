lib/expkit/exp_twope.mli: Rt_prelude
