lib/expkit/registry.mli: Rt_prelude
