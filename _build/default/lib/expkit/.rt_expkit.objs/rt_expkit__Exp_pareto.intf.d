lib/expkit/exp_pareto.mli: Rt_prelude
