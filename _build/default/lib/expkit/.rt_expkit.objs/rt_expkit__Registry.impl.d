lib/expkit/registry.ml: Exp_alloc Exp_dp_dial Exp_homog Exp_leakage Exp_migration Exp_online Exp_pareto Exp_proc Exp_qos Exp_substrate Exp_sync Exp_twope List Printf Rt_prelude
