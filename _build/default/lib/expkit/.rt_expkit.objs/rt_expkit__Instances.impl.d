lib/expkit/instances.ml: Gen Penalty Rt_core Rt_power Rt_prelude Rt_task Taskset
