lib/expkit/exp_leakage.ml: Float Gen List Printf Rt_partition Rt_power Rt_prelude Rt_speed Rt_task Runner Task Taskset
