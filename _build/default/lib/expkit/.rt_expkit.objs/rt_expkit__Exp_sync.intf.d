lib/expkit/exp_sync.mli: Rt_prelude
