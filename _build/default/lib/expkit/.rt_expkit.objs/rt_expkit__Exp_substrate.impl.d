lib/expkit/exp_substrate.ml: Array Float Gen Instances List Printf Rt_exact Rt_partition Rt_power Rt_prelude Rt_speed Rt_task Runner Task Taskset
