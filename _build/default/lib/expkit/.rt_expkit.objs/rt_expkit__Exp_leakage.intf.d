lib/expkit/exp_leakage.mli: Rt_partition Rt_power Rt_prelude Rt_task
