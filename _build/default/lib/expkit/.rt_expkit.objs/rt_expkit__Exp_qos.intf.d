lib/expkit/exp_qos.mli: Rt_prelude
