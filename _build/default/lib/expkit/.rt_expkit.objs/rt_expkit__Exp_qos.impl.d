lib/expkit/exp_qos.ml: Float List Printf Problem Qos Rt_core Rt_power Rt_prelude Rt_task Runner
