lib/expkit/runner.ml: Float List Rt_prelude
