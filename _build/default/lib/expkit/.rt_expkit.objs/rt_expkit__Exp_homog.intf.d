lib/expkit/exp_homog.mli: Rt_core Rt_prelude
