lib/expkit/exp_proc.ml: Array Float Gen Instances List Printf Rt_partition Rt_power Rt_prelude Rt_speed Rt_task Runner Taskset
