lib/expkit/exp_migration.mli: Rt_prelude
