lib/expkit/exp_alloc.ml: Float List Printf Rt_alloc Rt_power Rt_prelude Rt_task Runner
