lib/expkit/exp_dp_dial.mli: Rt_prelude
