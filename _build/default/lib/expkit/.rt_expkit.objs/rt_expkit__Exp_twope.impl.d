lib/expkit/exp_twope.ml: Float List Printf Rt_power Rt_prelude Rt_twope Runner
