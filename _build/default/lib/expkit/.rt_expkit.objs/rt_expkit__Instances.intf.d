lib/expkit/instances.mli: Rt_core Rt_power Rt_task
