lib/expkit/exp_migration.ml: Array Float Instances List Printf Rt_partition Rt_power Rt_prelude Rt_speed Rt_task Runner
