lib/expkit/exp_online.mli: Rt_prelude
