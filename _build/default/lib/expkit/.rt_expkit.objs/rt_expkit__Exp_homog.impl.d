lib/expkit/exp_homog.ml: Bounds Exact Float Greedy Instances List Local_search Printf Rt_core Rt_power Rt_prelude Rt_task Runner Solution
