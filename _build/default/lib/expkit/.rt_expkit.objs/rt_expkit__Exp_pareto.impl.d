lib/expkit/exp_pareto.ml: Instances List Printf Rt_core Rt_power Rt_prelude Rt_task Runner Task
