lib/expkit/exp_dp_dial.ml: Array List Printf Rt_core Rt_exact Rt_power Rt_prelude Rt_task Runner Task
