lib/expkit/exp_proc.mli: Rt_prelude
