lib/expkit/exp_sync.ml: Array Float List Printf Rt_power Rt_prelude Rt_speed Runner
