lib/expkit/exp_alloc.mli: Rt_prelude
