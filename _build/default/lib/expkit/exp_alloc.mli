(** Experiments E11–E12: allocation-cost minimization under an energy
    constraint (companion Figure 9 shapes).

    E11 sweeps the processor-type count / task count grid and the
    energy-constraint ratio γ for ROUNDING vs E-ROUNDING, normalized to
    the parametric LP bound. E12 compares First-Fit against RS-LEUF for a
    single ideal processor type, normalized to the pooled lower bound
    m*. *)

val e11_rounding : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** Rows: (#types, #tasks) at γ = 0.2, then γ sweep at (4 types, 20
    tasks). Expected: both close to the bound, E-ROUNDING never worse,
    the gap widening with more types. *)

val e12_rs_leuf : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** Rows: (#tasks, γ). Expected: RS-LEUF at or below First-Fit
    everywhere, with the biggest wins at large γ and small n. *)
