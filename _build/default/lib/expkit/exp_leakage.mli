(** Experiment E8: leakage-aware scheduling with sleep-transition
    overheads — the LA+LTF family ordering of the companion's Figure 6.

    Periodic tasks on dormant-enable processors; per-processor loads are
    deliberately light so the critical-speed clamp leaves idle time. The
    four evaluated policies combine two independent levers:

    - {b +FF}: consolidate below-critical processors
      ({!Rt_partition.La_ltf.consolidate}) so whole processors sleep;
    - {b +PROC}: procrastination coalesces a processor's idle time into
      one long gap (modelled as gap-count 1 versus one gap per job).

    Energies are normalized to the everything-at-critical-speed lower
    bound. Expected shape (as published): LA+LTF+FF+PROC best everywhere;
    PROC's margin is larger when the sleep transition is cheap. *)

type policy = { ff : bool; procrastinate : bool }

val policy_energy :
  proc:Rt_power.Processor.t -> horizon:float ->
  jobs_on:(Rt_task.Task.item list -> int) -> policy ->
  Rt_partition.Partition.t -> float
(** Total energy of running the partition under the policy: execution at
    [max(load, s_crit)] per processor plus idle energy with the policy's
    gap structure ([jobs_on bucket] = number of idle gaps without
    procrastination). Exposed for tests. *)

val e8_leakage_aware : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** Rows sweep the task count at two sleep-overhead settings; columns are
    the four policies, normalized to the lower bound. *)
