open Rt_task

let default_frame_length = 1000.

let default_penalties =
  Penalty.Proportional { factor = 1.5; jitter = 0.3 }

let ok_or_invalid = function
  | Ok v -> v
  | Error e -> invalid_arg ("Instances: " ^ e)

let frame_instance ?(penalty_model = default_penalties) ~proc ~seed ~n ~m
    ~load () =
  let rng = Rt_prelude.Rng.create ~seed in
  let tasks =
    Gen.frame_tasks_with_load rng ~n ~m
      ~s_max:(Rt_power.Processor.s_max proc)
      ~frame_length:default_frame_length ~load
  in
  let items =
    Taskset.items_of_frames ~frame_length:default_frame_length tasks
    |> Penalty.assign penalty_model rng ~proc ~horizon:default_frame_length
  in
  ok_or_invalid
    (Rt_core.Problem.make ~proc ~m ~horizon:default_frame_length items)

let periodic_instance ?(penalty_model = default_penalties) ~proc ~seed ~n ~m
    ~total_util () =
  let rng = Rt_prelude.Rng.create ~seed in
  let tasks =
    Gen.periodic_tasks rng ~n ~total_util ~periods:Gen.default_periods
  in
  let horizon = float_of_int (Taskset.hyper_period tasks) in
  let items =
    Taskset.items_of_periodics tasks
    |> Penalty.assign penalty_model rng ~proc ~horizon
  in
  let problem =
    ok_or_invalid (Rt_core.Problem.make ~proc ~m ~horizon items)
  in
  (problem, tasks)

let solution_total p s =
  match Rt_core.Solution.cost p s with
  | Ok c -> c.Rt_core.Solution.total
  | Error e -> invalid_arg ("Instances.solution_total: " ^ e)
