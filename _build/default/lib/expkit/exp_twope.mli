(** Experiments E9–E10: the heterogeneous two-PE system (companion
    Figures 7 and 8 shapes).

    An ideal DVS processor paired with a non-DVS PE (FPGA-like, constant
    588 mW in the published setup — normalized here). Both the
    {e inverse} and {e proportional} couplings between a task's DVS demand
    and its non-DVS footprint are swept over the total offloadable
    utilization U₂*. *)

val e9_workload_independent : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** GREEDY / E-GREEDY / DP normalized to the exhaustive optimum, for the
    workload-independent non-DVS PE. Expected: DP ≈ 1.0 everywhere,
    E-GREEDY ≤ GREEDY, all degrading as U₂* grows. *)

val e10_workload_dependent : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** GREEDY vs S-GREEDY for the workload-dependent non-DVS PE. Expected:
    S-GREEDY close to optimal; GREEDY substantially worse, especially at
    small U₂* under the inverse coupling (it over-offloads). *)
