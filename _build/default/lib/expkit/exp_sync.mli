(** Experiment E14 (ablation): what sharing one voltage rail costs.

    Chip multiprocessors that force a common speed across cores pay a
    convexity penalty relative to per-core rails; the optimal
    synchronized profile is the staircase of {!Rt_speed.Sync_global}
    (companion Eq. (2)). This ablation quantifies the gap — a design-space
    datum for anyone trading rail count against energy. *)

val e14_sync_rails : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** Rows: core count × workload imbalance (spread of per-core loads).
    Column: optimal synchronized energy over independent-rail energy
    (>= 1; grows with imbalance, 1.0 for perfectly balanced loads). *)
