(** Experiment E7: substrate validation against the companion paper's
    published figures.

    The rejection heuristics are built on the LTF partitioning substrate,
    so we check that our substrate reproduces the companion text's
    published behaviour: Figure 4 (LTF close to optimal, RAND noticeably
    worse, both improving as tasks-per-core grows) and Figure 5 (same
    story for heterogeneous power characteristics with LEUF). Penalties
    play no role here — tasks are all accepted. *)

val e7_ltf_vs_rand : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** Rows sweep (m, n); columns: mean relative energy of LTF, RAND
    (unsorted min-load greedy) and uniform-random placement against the
    exact minimum-energy partition. *)

val e7_hetero_leuf : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** Heterogeneous power factors (ρ_i uniform in [0.5, 3]): LEUF vs RAND
    against the exact optimum, per task-to-processor ratio η (the
    companion's Figure 5 axis). m = 3 to keep the exact search tractable. *)
