(** Experiment E17: the uniprocessor DP's accuracy/speed dial.

    The paper family advertises a DP whose approximation quality trades
    against running time through a scaling parameter. This experiment
    sweeps ε for {!Rt_core.Uni_dp.scaled} and reports the realized cost
    gap against the exact DP together with the DP-table shrink factor —
    making the advertised dial a measured artifact instead of a claim. *)

val e17_dp_dial : ?seeds:int -> unit -> Rt_prelude.Tablefmt.t
(** Rows: ε. Columns: mean cost ratio to the exact optimum, worst ratio
    observed, and the cycle-scale (table shrink) factor the ε induces.
    Expected: ratio 1.0 at ε small enough that the scale collapses to 1,
    growing mildly with ε while the table shrinks linearly. *)
