lib/speed/energy_rate.mli: Format Rt_power
