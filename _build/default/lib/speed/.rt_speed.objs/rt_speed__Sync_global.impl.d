lib/speed/sync_global.ml: Array Float List Power_model Result Rt_power
