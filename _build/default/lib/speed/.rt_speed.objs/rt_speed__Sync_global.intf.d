lib/speed/sync_global.mli: Rt_power
