lib/speed/procrastinate.ml: Float Processor Rt_power
