lib/speed/energy_rate.ml: Array Float Format List Option Power_model Processor Result Rt_power Rt_prelude
