lib/speed/procrastinate.mli: Rt_power
