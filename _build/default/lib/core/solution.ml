open Rt_task

type t = {
  partition : Rt_partition.Partition.t;
  rejected : Task.item list;
}

type cost = { energy : float; penalty : float; total : float }

let cost (p : Problem.t) s =
  if Rt_partition.Partition.m s.partition <> p.m then
    Error "Solution.cost: partition width differs from the problem's m"
  else begin
    let loads = Rt_partition.Partition.loads s.partition in
    let overloaded =
      Array.exists
        (fun l -> Rt_prelude.Float_cmp.gt l (Problem.capacity p))
        loads
    in
    if overloaded then Error "Solution.cost: a processor exceeds capacity"
    else begin
      let energy =
        Array.fold_left (fun acc l -> acc +. Problem.bucket_energy p l) 0. loads
      in
      let penalty = Taskset.total_penalty_items s.rejected in
      Ok { energy; penalty; total = energy +. penalty }
    end
  end

let ids_of items = List.sort compare (List.map (fun (i : Task.item) -> i.item_id) items)

let accepted_ids s = ids_of (Rt_partition.Partition.all_items s.partition)
let rejected_ids s = ids_of s.rejected

let validate (p : Problem.t) s =
  let ( let* ) = Result.bind in
  let* _ = cost p s in
  let all = accepted_ids s @ rejected_ids s in
  let problem_ids = ids_of p.items in
  let* () =
    if List.sort compare all = problem_ids then Ok ()
    else Error "Solution.validate: item sets do not match the problem"
  in
  let* sim =
    Rt_sim.Frame_sim.build ~proc:p.proc ~frame_length:p.horizon s.partition
  in
  Rt_sim.Frame_sim.validate sim

let accept_all (_ : Problem.t) partition = { partition; rejected = [] }

let acceptance_ratio (p : Problem.t) s =
  match List.length p.items with
  | 0 -> 1.
  | n ->
      float_of_int (Rt_partition.Partition.size s.partition) /. float_of_int n

let pp ppf s =
  Format.fprintf ppf "@[<v>%a@,rejected: %a@]" Rt_partition.Partition.pp
    s.partition Taskset.pp_items s.rejected

let pp_cost ppf c =
  Format.fprintf ppf "energy=%.6g penalty=%.6g total=%.6g" c.energy c.penalty
    c.total
