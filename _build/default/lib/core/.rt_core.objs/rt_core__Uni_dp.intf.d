lib/core/uni_dp.mli: Problem Rt_power Rt_task Solution
