lib/core/hardness.mli: Problem
