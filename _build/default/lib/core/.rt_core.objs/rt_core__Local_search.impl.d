lib/core/local_search.ml: Array Float List Option Problem Rt_partition Rt_prelude Rt_task Solution Task
