lib/core/solution.ml: Array Format List Problem Result Rt_partition Rt_prelude Rt_sim Rt_task Task Taskset
