lib/core/uni_dp.ml: Array Float Greedy List Problem Result Rt_exact Rt_partition Rt_power Rt_task Solution Task
