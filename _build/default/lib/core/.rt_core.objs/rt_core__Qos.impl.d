lib/core/qos.ml: Array Float List Problem Result Rt_exact Rt_partition Rt_prelude Rt_sim Rt_task Task
