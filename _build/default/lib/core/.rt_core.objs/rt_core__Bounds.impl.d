lib/core/bounds.ml: Float List Problem Rt_prelude Rt_task Task Taskset
