lib/core/local_search.mli: Greedy Problem Solution
