lib/core/bounds.mli: Problem
