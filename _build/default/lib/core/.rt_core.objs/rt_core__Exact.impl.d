lib/core/exact.ml: Problem Rt_exact Rt_prelude Solution
