lib/core/exact.mli: Problem Solution
