lib/core/qos.mli: Problem Rt_partition Rt_task
