lib/core/problem.mli: Format Rt_power Rt_task
