lib/core/hardness.ml: List Problem Result Rt_power Rt_task Task
