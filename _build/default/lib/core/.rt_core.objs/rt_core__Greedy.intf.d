lib/core/greedy.mli: Problem Rt_prelude Solution
