lib/core/solution.mli: Format Problem Rt_partition Rt_task
