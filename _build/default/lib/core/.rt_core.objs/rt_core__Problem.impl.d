lib/core/problem.ml: Float Format List Printf Rt_power Rt_speed Rt_task Task Taskset
