(** NP-hardness gadgets as executable artifacts.

    The target paper's contribution opens with a hardness analysis; since
    proofs do not run, we ship the reductions as instance {e constructors}
    whose optima are known by construction, and the test suite checks the
    exact solvers and heuristics against them.

    Reduction 1 (feasibility / PARTITION): numbers [a_1 … a_k] with sum
    [2B] map to a 2-processor frame instance with [s_max · D = B] and
    penalties so large that rejecting anything is never optimal {e iff} a
    perfect partition exists. Accepting everything is feasible iff the
    numbers split into two halves of weight exactly [B] — deciding the
    optimal cost decides PARTITION.

    Reduction 2 (rejection / KNAPSACK): on one processor with capacity
    [B], items with value-like penalties make the optimal accept-set a 0/1
    knapsack; the DP of {!Uni_dp} is exactly the classical pseudo-poly
    algorithm, which is why no polynomial exact algorithm is expected. *)

type gadget = {
  problem : Problem.t;
  all_accepted_cost : float option;
      (** total cost of accepting everything in perfect balance — the
          optimum iff a perfect split exists (reduction 1); [None] for
          gadgets whose optimum is not of that form *)
}

val partition_gadget : int list -> (gadget, string) result
(** Reduction 1. Errors on an empty list, non-positive entries, or an odd
    sum. Penalties are set to [10×] the energy of running the whole set,
    so any rejection costs more than any balanced acceptance. *)

val knapsack_gadget :
  capacity:int -> (int * float) list -> (gadget, string) result
(** Reduction 2: [(cycles, penalty)] pairs on one processor with the given
    cycle capacity and negligible energy (tiny power coefficient), so the
    objective is ≈ the rejected penalty — i.e. a minimization knapsack.
    Errors on empty input, non-positive cycles/capacity, or negative
    penalties. *)
