(** First-improvement local search over accept/reject/placement decisions.

    Starting from any feasible solution, four move families are scanned in
    order and the first strictly improving move is applied, until a full
    scan finds nothing (or [max_moves] fires):

    + {e reject}: drop an accepted item (pay its penalty, save its
      marginal energy);
    + {e accept}: place a rejected item on the least-loaded feasible
      processor (pay marginal energy, save its penalty);
    + {e move}: relocate an accepted item to another processor;
    + {e swap}: exchange two accepted items between processors.

    Moves 3–4 do not change the objective's penalty term; they rebalance
    loads, which strictly helps because the rate function is convex — and
    they unlock further accept moves by creating room. Each applied move
    strictly decreases the total cost, so the search terminates. *)

val improve : ?max_moves:int -> Problem.t -> Solution.t -> Solution.t
(** [max_moves] defaults to 10_000 (a safety valve; typical instances
    converge in far fewer). The input must be feasible ([Solution.cost]
    must succeed). @raise Invalid_argument otherwise. *)

val with_local_search : ?max_moves:int -> Greedy.algorithm -> Greedy.algorithm
(** Compose: run the algorithm, then polish with [improve]. *)
