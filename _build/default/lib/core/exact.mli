(** Ground-truth optima for small instances (wraps {!Rt_exact.Search}).

    The selection+partition problem is NP-hard (it embeds both
    multiprocessor makespan feasibility and knapsack — see {!Hardness}),
    so these solvers are exponential; experiments use them up to a dozen
    items to normalize heuristic costs against the true optimum. *)

val exhaustive : Problem.t -> Solution.t
(** Full symmetry-broken enumeration. @raise Invalid_argument beyond 16
    items. *)

val branch_and_bound : ?node_limit:int -> Problem.t -> Solution.t
(** Same optimum, pruned; the default oracle for experiment E1. *)

val optimal_cost : ?node_limit:int -> Problem.t -> float
(** Total cost of [branch_and_bound] (recomputed through
    {!Solution.cost}, so a disagreement raises). *)
