let to_solution (s : Rt_exact.Search.solution) =
  { Solution.partition = s.partition; rejected = s.rejected }

let run solver (p : Problem.t) =
  let sol =
    solver ~m:p.m ~capacity:(Problem.capacity p)
      ~bucket_cost:(Problem.bucket_energy p) p.items
  in
  let solution = to_solution sol in
  (* cross-check the search's internal cost against the official one *)
  (match Solution.cost p solution with
  | Ok c ->
      if not (Rt_prelude.Float_cmp.approx_eq ~eps:1e-6 c.total sol.cost) then
        invalid_arg "Exact: search cost disagrees with Solution.cost"
  | Error msg -> invalid_arg ("Exact: invalid optimal solution: " ^ msg));
  solution

let exhaustive p = run Rt_exact.Search.exhaustive p

let branch_and_bound ?node_limit p =
  run (Rt_exact.Search.branch_and_bound ?node_limit) p

let optimal_cost ?node_limit p =
  let s = branch_and_bound ?node_limit p in
  match Solution.cost p s with
  | Ok c -> c.Solution.total
  | Error msg -> invalid_arg ("Exact.optimal_cost: " ^ msg)
