lib/exact/subsets.ml: Array List
