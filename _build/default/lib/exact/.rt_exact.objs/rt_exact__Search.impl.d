lib/exact/search.ml: Array Float List Rt_partition Rt_prelude Rt_task Task Taskset
