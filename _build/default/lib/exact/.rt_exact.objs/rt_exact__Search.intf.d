lib/exact/search.mli: Rt_partition Rt_task
