lib/exact/knapsack.mli:
