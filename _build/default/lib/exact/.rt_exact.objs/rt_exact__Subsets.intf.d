lib/exact/subsets.mli:
