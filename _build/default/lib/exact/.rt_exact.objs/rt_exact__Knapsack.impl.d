lib/exact/knapsack.ml: Array Float
