(** Dynamic programming over integer cycles: the exact uniprocessor
    rejection solver and its scaled (FPTAS-style) variant.

    On one processor the partition disappears and the problem becomes:
    choose an accept-set [A] with total cycles [W(A) <= capacity] minimizing
    [accept_cost(W(A)) + Σ_{i ∉ A} penalty_i]. Because [accept_cost] is
    evaluated only on the {e total}, a subset-sum table over cycles
    suffices: [dp.(w)] = least rejected-penalty over subsets whose accepted
    cycles sum to exactly [w]. *)

type choice = { accepted : bool array; total_cycles : int; cost : float }
(** [accepted.(i)] follows the input order. *)

val solve :
  capacity:int -> cycles:int array -> penalties:float array ->
  accept_cost:(int -> float) -> choice
(** Exact optimum.
    @raise Invalid_argument on mismatched array lengths, non-positive
    cycle entries, negative penalties, or [capacity < 0]. Items with
    [cycles > capacity] are implicitly rejected. *)

val solve_scaled :
  scale:int -> capacity:int -> cycles:int array -> penalties:float array ->
  accept_cost:(int -> float) -> choice
(** DP on cycles divided by [scale] (rounded {e up}, so the returned
    accept-set always fits the true capacity), then re-costed exactly. With
    [scale = 1] this is {!solve}. Rounding up can only shrink the feasible
    set, so the result is feasible but may be up to the scaled-rounding gap
    above the optimum — the classic accuracy/speed dial. The benchmark
    suite measures the realized gap against {!solve}.
    @raise Invalid_argument if [scale < 1]. *)

val scale_for_epsilon : epsilon:float -> cycles:int array -> int
(** The scale [max 1 (floor (ε · c_max / n))] that keeps the per-item
    rounding loss below [ε/n] of the largest task, the standard FPTAS
    schedule. @raise Invalid_argument if [epsilon <= 0] or there are no
    items. *)
