let guard xs =
  if List.length xs > 30 then
    invalid_arg "Subsets: more than 30 elements"

let iter xs f =
  guard xs;
  let arr = Array.of_list xs in
  let n = Array.length arr in
  for mask = 0 to (1 lsl n) - 1 do
    let chosen = ref [] and rest = ref [] in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then chosen := arr.(i) :: !chosen
      else rest := arr.(i) :: !rest
    done;
    f (!chosen, !rest)
  done

let fold xs ~init ~f =
  let acc = ref init in
  iter xs (fun parts -> acc := f !acc parts);
  !acc

let count xs =
  guard xs;
  1 lsl List.length xs
