(** Exact solvers for select-and-partition problems.

    The problem: place each item on one of [m] identical processors or
    reject it (paying its penalty); a processor's load (weight sum) must
    stay within [capacity]; the objective is

    {v Σ_j bucket_cost(load_j)  +  Σ_rejected penalty v}

    with [bucket_cost] non-decreasing (energy of sustaining a load). Both
    solvers enumerate assignments with processor-symmetry breaking (an item
    may only open the lowest-indexed empty processor), so identical
    processors are never counted twice. [branch_and_bound] additionally
    prunes with the monotonicity bound: committed bucket energies and
    committed penalties never decrease as the remaining items are placed.

    Complexity is exponential — these are the ground-truth oracles for the
    small instances of experiment E1 and for the property tests, not
    production algorithms. *)

type solution = {
  partition : Rt_partition.Partition.t;
  rejected : Rt_task.Task.item list;
  cost : float;
}

val exhaustive :
  m:int -> capacity:float -> bucket_cost:(float -> float) ->
  Rt_task.Task.item list -> solution
(** Full enumeration ((m+1)^n with symmetry breaking).
    @raise Invalid_argument if [m < 1], [capacity <= 0] or [n > 16]. *)

val branch_and_bound :
  ?node_limit:int -> m:int -> capacity:float -> bucket_cost:(float -> float) ->
  Rt_task.Task.item list -> solution
(** Same optimum with pruning; items are explored largest-first. The
    optional [node_limit] (default 50 million) guards runaway instances.
    @raise Invalid_argument if [m < 1] or [capacity <= 0].
    @raise Failure if the node limit is hit. *)
