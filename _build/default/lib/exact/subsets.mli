(** Subset enumeration helpers (exhaustive baselines and tests). *)

val iter : 'a list -> ('a list * 'a list -> unit) -> unit
(** [iter xs f] calls [f (chosen, not_chosen)] for each of the [2^n]
    subsets, both parts in the original order.
    @raise Invalid_argument when [xs] is longer than 30 elements (the loop
    would never finish). *)

val fold : 'a list -> init:'b -> f:('b -> 'a list * 'a list -> 'b) -> 'b

val count : 'a list -> int
(** [2^n]; same length guard as {!iter}. *)
