(** Processor-count minimization for one {e ideal} processor type under an
    energy budget: Algorithm RS-LEUF and its First-Fit baseline.

    Both start from the {e pooled} relaxation: pretend the [m] processors
    form one time pool of [m × frame] (tasks still individually capped at
    one frame). The smallest [m] whose pooled optimum meets the energy
    budget, [m*], is a sound lower bound on any partitioned allocation.
    The pooled solution's per-task execution times give {e estimated
    utilizations} [u*_i = t*_i / frame]:

    - {b First-Fit} packs the estimated utilizations into unit bins and
      allocates that many processors, never revisiting speeds;
    - {b RS-LEUF} packs largest-estimated-utilization-first onto [m̂]
      processors starting at [m* ] and {e re-optimizes speeds per
      processor} (the KKT assignment of {!Rt_partition.Hetero}); if the
      re-optimized energy still exceeds the budget, it adds a processor
      and retries.

    Items carry [weight = cycles / frame] as everywhere else in the item
    view. *)

type outcome = {
  processors : int;
  energy : float;  (** realized energy of the returned allocation *)
}

val pooled_min_processors :
  proc:Rt_power.Processor.t -> frame:float -> budget:float ->
  Rt_task.Task.item list -> (int * (int * float) list, string) result
(** [(m*, estimated times)] — the lower bound and the pooled per-task
    execution times at [m*]. Errors when the budget is unreachable even
    with one processor per task, or the instance is infeasible at top
    speed. @raise Invalid_argument on non-ideal processors or linear
    power terms (inherited from {!Rt_partition.Hetero}). *)

val first_fit :
  proc:Rt_power.Processor.t -> frame:float -> budget:float ->
  Rt_task.Task.item list -> (outcome, string) result

val rs_leuf :
  proc:Rt_power.Processor.t -> frame:float -> budget:float ->
  Rt_task.Task.item list -> (outcome, string) result
