lib/alloc/rounding.mli: Alloc
