lib/alloc/rounding.ml: Alloc Array Float List Result Rt_lp Rt_prelude Simplex
