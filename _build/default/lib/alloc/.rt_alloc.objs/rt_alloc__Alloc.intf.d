lib/alloc/alloc.mli: Rt_power Rt_prelude
