lib/alloc/rs_leuf.mli: Rt_power Rt_task
