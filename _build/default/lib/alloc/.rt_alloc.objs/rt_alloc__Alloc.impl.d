lib/alloc/alloc.ml: Array Float List Rt_power Rt_prelude Rt_task
