lib/alloc/rs_leuf.ml: Array Float List Option Rt_partition Rt_power Rt_prelude Rt_task Task Taskset
