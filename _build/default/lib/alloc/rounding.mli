(** Algorithms ROUNDING and E-ROUNDING: parametric LP relaxation plus
    LP-guided rounding and first-fit packing.

    The naive LP relaxation of the synthesis ILP is unbounded, so the
    published fix restricts the solution shape: for each parameter [m']
    (after re-indexing types by non-decreasing allocation cost) the
    relaxation either treats type [m'] as fractionally allocatable like
    the cheaper types (Equation 4a) or pins {e exactly one} processor of
    type [m'] (Equation 4b). Solving all [2m] LPs, rounding the best
    solution (fractional tasks go to their cheapest-energy supporting
    type at its slowest feasible speed) and first-fit packing gives the
    published (m+2)-approximation. E-ROUNDING rounds {e every} feasible
    LP solution and keeps the cheapest realized build. *)

val rounding : Alloc.instance -> (Alloc.build, string) result
(** Round the single LP solution with the best relaxation value. Errors
    when no parametric LP is feasible (energy budget too tight even
    fractionally) or rounding produces an unpackable placement. *)

val e_rounding : Alloc.instance -> (Alloc.build, string) result
(** Best realized build over all feasible parametric LPs; never worse
    than {!rounding} on realized allocation cost. *)

val lp_lower_bound : Alloc.instance -> float option
(** The best parametric-relaxation value — the normalization reference of
    the published figures. [None] when every LP is infeasible. *)
