(** Allocation-cost minimization under an energy constraint: the problem
    model (companion Section III.D).

    A synthesis instance offers [m] processor {e types}; type [j] has an
    allocation cost [C_j], a power model, and a finite set of speeds.
    Task [i] needs [cycles.(j)] execution cycles per frame when compiled
    for type [j]; executed at the type's [l]-th speed it occupies
    utilization [u = cycles / (speed · frame)] of one processor and burns
    [E = cycles / speed · P_j(speed)] per frame. The synthesis question:
    allocate processor counts per type and place every task (utilization
    at most 1 per processor, total energy at most the budget) minimizing
    the total allocation cost. NP-hard in the strong sense; no constant
    approximation exists in general, hence the {e parametric} LP
    relaxation of {!Rounding}. *)

type proc_type = private {
  type_id : int;
  alloc_cost : float;  (** C_j > 0 *)
  model : Rt_power.Power_model.t;
  speeds : float array;  (** strictly increasing, positive *)
}

val proc_type :
  type_id:int -> alloc_cost:float -> model:Rt_power.Power_model.t ->
  speeds:float array -> proc_type
(** @raise Invalid_argument on malformed fields. *)

type task = private {
  id : int;
  cycles : float array;  (** per type; all > 0 *)
}

val task : id:int -> cycles:float array -> task

type instance = private {
  types : proc_type array;
  tasks : task list;
  frame : float;  (** common deadline; > 0 *)
  energy_budget : float;  (** E; > 0 *)
}

val instance :
  types:proc_type array -> tasks:task list -> frame:float ->
  energy_budget:float -> (instance, string) result
(** Checks dimensions (every task has one cycle count per type), distinct
    ids, positive frame and budget. *)

(** {1 Derived quantities} *)

val utilization : instance -> task -> ti:int -> level:int -> float
(** [cycles.(ti) / (speed · frame)]. *)

val energy : instance -> task -> ti:int -> level:int -> float
(** Energy per frame of running the task on one processor of the type at
    that speed (execution only; idle power of allocated processors is
    outside the published model). *)

val kappa : instance -> task -> ti:int -> int option
(** The slowest speed index meeting the deadline ([utilization <= 1]), or
    [None] when even the top speed cannot. *)

val e_min : instance -> float
(** Σ over tasks of the cheapest feasible per-task energy — the energy a
    fully unconstrained allocation could reach. *)

val e_max : instance -> float
(** Σ over tasks of the costliest feasible per-task energy. *)

val with_gamma :
  types:proc_type array -> tasks:task list -> frame:float -> gamma:float ->
  (instance, string) result
(** Build an instance whose budget is [E_min + gamma · (E_max - E_min)] —
    the energy-constraint-ratio axis of the published evaluation.
    @raise Invalid_argument if [gamma] is outside [\[0, 1\]]. *)

(** {1 A placement and its realized cost} *)

type placement = { task_id : int; ti : int; level : int }

type build = {
  placements : placement list;  (** one per task *)
  counts : int array;  (** processors allocated per type *)
  alloc_cost : float;
  realized_energy : float;
}

val pack : instance -> placement list -> (build, string) result
(** First-fit bin packing of the placements' utilizations per type
    (capacity 1 per processor), realizing counts, cost and energy. Errors
    on missing/duplicate/foreign tasks or an infeasible placement
    ([utilization > 1]). Note: the energy budget is {e reported}, not
    enforced — callers decide what to do with violations, mirroring the
    published algorithms. *)

val gen :
  Rt_prelude.Rng.t -> n_types:int -> n_tasks:int -> instance_gamma:float ->
  (instance, string) result
(** Synthetic instances in the published style: allocation costs
    log-uniform in [\[1, 8\]], per-type speed grids of 3–5 levels in
    (0, 1\], XScale-like power curves with per-type coefficient jitter,
    cycles giving per-task top-speed utilizations in [\[0.05, 0.45\]] with
    per-type variation. *)
