lib/partition/la_ltf.ml: Array Heuristics List Partition Rt_power Rt_prelude Rt_task Task
