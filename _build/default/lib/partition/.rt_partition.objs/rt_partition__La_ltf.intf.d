lib/partition/la_ltf.mli: Partition Rt_power
