lib/partition/heuristics.mli: Partition Rt_prelude Rt_task
