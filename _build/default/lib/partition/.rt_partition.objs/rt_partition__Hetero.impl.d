lib/partition/hetero.ml: Array Float List Partition Power_model Processor Rt_power Rt_prelude Rt_task Task
