lib/partition/migration.ml: Float Hetero List Option Printf Result Rt_power Rt_prelude Rt_task Task Taskset
