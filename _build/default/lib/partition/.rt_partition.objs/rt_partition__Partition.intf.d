lib/partition/partition.mli: Format Rt_task
