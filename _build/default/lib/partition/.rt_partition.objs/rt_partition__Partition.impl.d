lib/partition/partition.ml: Array Float Format List Rt_task Task Taskset
