lib/partition/heuristics.ml: Array List Partition Rt_prelude Rt_task Task
