lib/partition/migration.mli: Rt_power Rt_task
