lib/partition/hetero.mli: Partition Rt_power Rt_task
