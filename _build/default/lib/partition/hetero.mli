(** Heterogeneous-power-characteristics scheduling (LEET/LEUF substrate).

    When task [i] draws dynamic power [f_i · P_d(s)] (its [power_factor]
    times the processor's nominal curve), running every co-located task at
    one common speed is no longer optimal: the KKT conditions of

    {v minimize  Σ_i f_i·c_i·P_d(s_i)/s_i   s.t.  Σ_i c_i/s_i <= H v}

    give [f_i · s_i^alpha] constant across tasks, i.e.
    [s_i = K / f_i^(1/alpha)], with speeds floored at each task's own
    critical speed (leakage-aware) and capped at [s_max]. This module
    solves that per-processor problem and implements the
    Largest-Estimated-Utilization-First partition built on it:

    + estimate speeds by pretending the pooled horizon [m·H] is available;
    + sort tasks by estimated execution time, descending;
    + greedily assign to the processor with the least total estimated time;
    + re-optimize speeds per processor.

    Requires a power model with [linear = 0] (the closed-form exponent
    structure); [p_ind] is supported (it cancels from the KKT tradeoff and
    only moves the critical-speed floors). *)

type speed_assignment = {
  speeds : (int * float) list;  (** item id → execution speed *)
  time_used : float;  (** Σ c_i / s_i, <= the horizon *)
  energy : float;
      (** execution energy; for dormant-disable processors the caller must
          add the constant [p_ind · H] awake cost separately via
          {!awake_overhead} *)
}

val processor_speeds :
  Rt_power.Processor.t -> horizon:float -> Rt_task.Task.item list ->
  speed_assignment option
(** Optimal speeds for the items placed on one processor, [None] when even
    top speed cannot fit them in [horizon]. Item weights are interpreted
    against this same horizon (cycles [= weight·horizon]).
    @raise Invalid_argument on [horizon <= 0], a model with a linear term,
    or a non-ideal (discrete-level) processor. *)

val awake_overhead : Rt_power.Processor.t -> horizon:float -> float
(** [p_ind · horizon] for dormant-disable processors, [0.] for
    dormant-enable (which sleep when idle; transition overheads are out of
    scope here, see {!Rt_speed.Procrastinate}). *)

val estimated_times :
  Rt_power.Processor.t -> m:int -> horizon:float -> Rt_task.Task.item list ->
  (int * float) list
(** Step (1): per-item estimated execution times under the pooled horizon
    [m·horizon], each capped at [horizon]. Returns [(item id, time)].
    Items that cannot fit in [horizon] even at [s_max] get time [horizon]. *)

val leuf :
  Rt_power.Processor.t -> m:int -> horizon:float -> Rt_task.Task.item list ->
  Partition.t
(** Steps (2)–(3): the Largest-Estimated-Utilization-First partition. *)

val total_energy :
  Rt_power.Processor.t -> horizon:float -> Partition.t -> float option
(** Σ over processors of the re-optimized energy (including awake
    overheads); [None] if any processor is infeasible. *)
