(** Partitioning heuristics over the item view.

    [ltf] is the Largest-Task-First strategy (LPT in the makespan
    literature): sort by weight descending, always assign to the
    least-loaded processor. The companion papers prove LTF-based schedules
    are 1.13-approximate in energy for independent-rail homogeneous systems;
    for makespan it inherits Graham's [(4/3 - 1/(3m))] bound, which the
    property tests exercise.

    [greedy_unsorted] is the companion's Algorithm RAND reference: the same
    min-load greedy but in arrival order (no sort). [random] places each
    item uniformly at random. The [*_fit] heuristics are capacity-aware
    bin-packing rules that return the items that fit nowhere. *)

val ltf : m:int -> Rt_task.Task.item list -> Partition.t

val greedy_unsorted : m:int -> Rt_task.Task.item list -> Partition.t

val random : Rt_prelude.Rng.t -> m:int -> Rt_task.Task.item list -> Partition.t

val first_fit :
  m:int -> capacity:float -> Rt_task.Task.item list ->
  Partition.t * Rt_task.Task.item list
(** Scan processors in index order; place the item on the first whose load
    would stay [<= capacity]; unplaceable items are returned (in input
    order). @raise Invalid_argument if [capacity <= 0]. *)

val first_fit_decreasing :
  m:int -> capacity:float -> Rt_task.Task.item list ->
  Partition.t * Rt_task.Task.item list
(** [first_fit] after sorting by weight descending. *)

val best_fit :
  m:int -> capacity:float -> Rt_task.Task.item list ->
  Partition.t * Rt_task.Task.item list
(** Place on the feasible processor with the largest current load (tightest
    fit). *)

val worst_fit :
  m:int -> capacity:float -> Rt_task.Task.item list ->
  Partition.t * Rt_task.Task.item list
(** Place on the feasible processor with the smallest current load. *)

val capacity_respected : capacity:float -> Partition.t -> bool
(** All loads [<=] capacity (within tolerance). *)
