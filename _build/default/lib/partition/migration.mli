(** Migratory frame scheduling: the migration-allowed optimum plus a
    McNaughton wrap-around realization.

    If task instances may migrate between processors (but never run on two
    at once), preemptive-migratory feasibility on [m] processors within a
    frame [D] is exactly characterized by

    {v Σ exec_i <= m·D   and   exec_i <= D  for every task. v}

    With convex power each task runs at one constant speed (Jensen), so
    the migratory {e optimum} is the water-filling

    {v minimize Σ c_i · P(s_i)/s_i   s.t.   Σ c_i/s_i <= m·D,  s_i >= w_i v}

    — per-task speeds [s_i = max(λ, w_i, s_crit)] with one multiplier λ —
    which is the pooled KKT solve of {!Hetero.estimated_times}. A concrete
    schedule realizing those times is built by McNaughton's wrap-around
    rule: pour the executions into the [m × D] rectangle row by row,
    splitting at row boundaries; the two pieces of a split task never
    overlap in time because no execution exceeds one frame.

    The optimum's energy lower-bounds {e every partitioned} schedule of
    the same items. Mind the gap's size, though: partitioning itself can
    cost up to 4/3 against this relaxation (three near-equal tasks on two
    processors), so it is a {e coarser} yardstick than the optimal
    partition that the published 1.13 LTF bound is stated against —
    experiment E15 measures the combined gap. *)

type slice = {
  item_id : int;
  proc : int;
  t0 : float;
  t1 : float;  (** within [\[0, frame\]], [t1 > t0] *)
}

type schedule = {
  speeds : (int * float) list;  (** item id → its constant speed *)
  slices : slice list;
  energy : float;
}

val optimal :
  proc:Rt_power.Processor.t -> m:int -> frame:float ->
  Rt_task.Task.item list -> (schedule, string) result
(** Errors when the instance is infeasible even at [s_max]
    ([total/m > s_max] or some [w_i > s_max]), on [m < 1] or
    [frame <= 0], duplicate ids, non-unit power factors, or a
    discrete-level processor. An empty item list yields an all-idle
    schedule. *)

val validate :
  ?eps:float -> proc:Rt_power.Processor.t -> m:int -> frame:float ->
  Rt_task.Task.item list -> schedule -> (unit, string) result
(** Independent re-check: every task's slices sum to its execution time
    at its speed, no task overlaps itself in time (the wrap-around
    invariant), no processor is double-booked, speeds are feasible and at
    least the task's required speed, and the energy matches the busy/idle
    integral. *)

val energy_lower_bound :
  proc:Rt_power.Processor.t -> m:int -> frame:float ->
  Rt_task.Task.item list -> float option
(** The migratory optimum's energy — a lower bound for any partitioned
    schedule of the same items ([None] if infeasible). *)
