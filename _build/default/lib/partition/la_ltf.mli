(** Leakage-aware consolidation (the FF step of Algorithm LA+LTF+FF).

    On dormant-enable processors, any processor whose load sits below the
    critical speed runs at the critical speed anyway (the clamp) — so two
    half-idle "critical" processors waste two shares of idle overhead where
    one consolidated processor would do. The LA+LTF+FF refinement collects
    the tasks of all below-critical processors and re-packs them first-fit
    with capacity equal to the critical speed, freeing whole processors to
    sleep through the horizon.

    If re-packing cannot place every collected task (first-fit is not
    optimal), the original partition is returned unchanged — the 2-approx
    guarantee of the published algorithm comes from exactly this
    fall-back. *)

val consolidate :
  proc:Rt_power.Processor.t -> Partition.t -> Partition.t
(** Re-pack the below-critical processors of a partition as described.
    Loads at or above the critical speed are left untouched. The result
    has the same [m] (freed processors keep empty buckets). *)

val critical_processors :
  proc:Rt_power.Processor.t -> Partition.t -> int list
(** Indices of non-empty processors whose load is strictly below the
    critical speed. *)
