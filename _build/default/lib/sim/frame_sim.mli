(** Concrete frame schedules and their validation.

    The optimization layers reason about abstract "energy rates"; this
    simulator turns a partition plus per-processor speed plans into a
    concrete timeline — which task runs when, at which speed, on which
    processor — and independently re-checks everything the optimizer
    promised: all accepted tasks finish within the frame, all speeds are
    feasible, and the energy adds up. Every algorithm's output in the test
    suite round-trips through [build] + [validate]. *)

type slice = {
  task_id : int option;  (** [None] = idle/sleep tail *)
  t0 : float;
  t1 : float;
  speed : float;
}

type proc_timeline = {
  proc_index : int;
  slices : slice list;  (** contiguous from 0, non-overlapping, sorted *)
  proc_energy : float;
}

type t = {
  frame_length : float;
  proc : Rt_power.Processor.t;
  partition : Rt_partition.Partition.t;  (** the assignment being realized *)
  timelines : proc_timeline list;
  total_energy : float;
}

val build :
  proc:Rt_power.Processor.t -> frame_length:float -> Rt_partition.Partition.t ->
  (t, string) result
(** Lay out each processor's bucket sequentially (in bucket order) using the
    optimal {!Rt_speed.Energy_rate} plan for the bucket's load: tasks run at
    the plan's speeds fastest-first, each task's cycles split across plan
    segments as needed, and the idle/sleep tail closes the frame. Errors if
    some bucket's load exceeds [s_max] (no feasible plan) or if any item
    has a non-unit [power_factor] (heterogeneous power lives in
    {!Rt_partition.Hetero}, not here). *)

val validate : ?eps:float -> t -> (unit, string) result
(** Independent re-check of a built schedule: slices tile [\[0, frame\]]
    without overlap; every task present in a slice completes exactly its
    cycles (weight × frame) across its slices; speeds are feasible;
    [total_energy] equals the energy integrated from the slices. *)

val energy_of_slices : proc:Rt_power.Processor.t -> slice list -> float
(** Integrate energy directly from a timeline (idle slices charged at the
    dormancy-appropriate idle power: leakage when dormant-disable, zero
    when dormant-enable). *)

val gantt : t -> string
(** ASCII Gantt chart, one row per processor; digits/letters identify
    tasks, ['.'] idle. *)
