(** ASCII Gantt rendering of schedules (for examples and debugging). *)

type segment = {
  t0 : float;
  t1 : float;
  row : string;  (** row label, e.g. a processor or task name *)
  glyph : char;  (** character used to fill the segment *)
}

val render : ?width:int -> horizon:float -> segment list -> string
(** Render segments onto a [width]-column timeline (default 72) spanning
    [\[0, horizon\]]. Rows appear in first-occurrence order; overlapping
    segments on a row are drawn last-writer-wins. A scale line with the
    horizon is appended. @raise Invalid_argument on non-positive horizon or
    width, or segments outside the horizon. *)
