lib/sim/frame_sim.mli: Rt_partition Rt_power
