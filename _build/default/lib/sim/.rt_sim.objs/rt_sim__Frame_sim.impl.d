lib/sim/frame_sim.ml: Energy_rate Float Gantt Hashtbl List Option Power_model Printf Processor Result Rt_partition Rt_power Rt_prelude Rt_speed Rt_task String Task
