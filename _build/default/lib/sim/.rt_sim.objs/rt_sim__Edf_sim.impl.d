lib/sim/edf_sim.ml: Float Gantt List Power_model Printf Processor Result Rt_power Rt_speed Rt_task Task Taskset
