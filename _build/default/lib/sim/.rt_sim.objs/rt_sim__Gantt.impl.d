lib/sim/gantt.ml: Bytes List Printf String
