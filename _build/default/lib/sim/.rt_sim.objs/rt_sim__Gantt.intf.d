lib/sim/gantt.mli:
