lib/sim/edf_sim.mli: Rt_power Rt_task
