(** Event-driven partitioned-EDF simulation over a hyper-period.

    Validates the periodic side of the story concretely: a processor that
    runs its assigned periodic tasks under preemptive EDF at a constant
    execution speed [s] meets every deadline iff the assigned utilization
    is at most [s] (Liu & Layland, speed-scaled). The simulator executes
    the job set job-by-job, reports misses, and integrates energy —
    including what happens in the idle gaps, which is where the
    procrastination experiments look.

    The execution speed is constant per processor (what the partitioned
    algorithms emit for ideal processors; for discrete-level processors
    the frame simulator exercises the two-level split instead). *)

type miss = { task_id : int; deadline : float; late_by : float }

type gap = { g0 : float; g1 : float }

type outcome = {
  horizon : float;  (** simulated span (one hyper-period by default) *)
  misses : miss list;  (** empty iff feasible *)
  busy_time : float;
  gaps : gap list;  (** maximal idle intervals, in time order *)
  exec_energy : float;  (** busy_time × P(speed) *)
  idle_energy_awake : float;
      (** idle charged at leakage power, i.e. never sleeping *)
  idle_energy_sleep : float;
      (** idle charged gap-by-gap at [min(leakage·gap, E_sw)] — the
          dormant-enable policy without procrastination *)
  idle_energy_proc : float;
      (** idle charged as one coalesced interval — idealized
          procrastination (Algorithm PROC's upper bound on savings) *)
  preemptions : int;
}

val run :
  ?horizon:float -> proc:Rt_power.Processor.t -> speed:float ->
  Rt_task.Task.periodic list -> (outcome, string) result
(** Simulate the tasks on one processor at constant [speed]. [horizon]
    defaults to the hyper-period (in ticks, as a float). Errors on an
    infeasible speed for the processor, [speed <= 0] with a non-empty task
    set, duplicate task ids, or a non-positive horizon. A task set that
    merely {e overloads} the processor is not an error — the misses are
    reported in the outcome. *)

val feasible_speed : Rt_task.Task.periodic list -> float
(** The minimum constant speed that meets all deadlines under EDF: the
    total utilization (0. for an empty set). *)

val gantt :
  ?horizon:float -> proc:Rt_power.Processor.t -> speed:float ->
  Rt_task.Task.periodic list -> (string, string) result
(** Render the simulated schedule as an ASCII chart, one row per task. *)
