(** A dense two-phase primal simplex solver.

    Solves {v minimize c·x  subject to  A_i·x (<=|>=|=) b_i,  x >= 0 v}

    This is the substrate for the allocation-synthesis LP relaxations
    (Equations (4a)/(4b) of the companion text). It is a textbook tableau
    implementation with Bland's anti-cycling rule — dimensions in this
    repository are tiny (tens of variables), so clarity wins over sparse
    cleverness. *)

type relation = Le | Ge | Eq

type problem = {
  minimize : float array;  (** objective coefficients, length n *)
  constraints : (float array * relation * float) list;
      (** each row: coefficients (length n), relation, right-hand side *)
}

type outcome =
  | Optimal of { value : float; solution : float array }
  | Infeasible
  | Unbounded

val solve : ?max_iter:int -> problem -> (outcome, string) result
(** Errors on malformed input (ragged rows, non-finite numbers, empty
    objective). [max_iter] (default 10_000 pivots per phase) guards
    pathological inputs; hitting it is reported as an error. *)

val feasible : ?eps:float -> problem -> float array -> bool
(** Does a point satisfy all constraints and non-negativity? (Used by the
    tests to cross-check [Optimal] solutions.) *)

val value : problem -> float array -> float
(** [c·x]. *)
