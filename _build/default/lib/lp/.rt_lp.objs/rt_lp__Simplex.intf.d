lib/lp/simplex.mli:
