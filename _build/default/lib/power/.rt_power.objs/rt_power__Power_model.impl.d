lib/power/power_model.ml: Float Format Rt_prelude
