lib/power/processor.ml: Array Float Format List Power_model Printf Rt_prelude String
