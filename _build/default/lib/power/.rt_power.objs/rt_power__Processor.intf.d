lib/power/processor.mli: Format Power_model
