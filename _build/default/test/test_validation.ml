(* Failure injection: every validator in the repository must reject
   corrupted artifacts. These tests take known-good solutions/schedules,
   break them in targeted ways, and assert the independent checkers catch
   each corruption — the property that lets the experiment tables trust
   algorithm outputs. *)

open Rt_task


let cubic = Rt_power.Processor.cubic ()

let items_of specs =
  List.mapi (fun id (w, p) -> Task.item ~penalty:p ~id ~weight:w ()) specs

let problem_exn items ~m =
  match Rt_core.Problem.make ~proc:cubic ~m ~horizon:100. items with
  | Ok p -> p
  | Error e -> Alcotest.failf "problem: %s" e

let good_solution p = Rt_core.Greedy.ltf_reject p

let expect_invalid name = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: corruption not caught" name

(* ------------------------------------------------------------------ *)
(* Solution.validate *)

let base_items = items_of [ (0.5, 5.); (0.4, 4.); (0.3, 3.); (0.2, 2.) ]

let test_drop_item_caught () =
  let p = problem_exn base_items ~m:2 in
  let s = good_solution p in
  (* silently lose a task: neither scheduled nor rejected *)
  let partition' =
    Rt_partition.Partition.of_buckets
      [| List.tl (Rt_partition.Partition.bucket s.Rt_core.Solution.partition 0);
         Rt_partition.Partition.bucket s.Rt_core.Solution.partition 1;
      |]
  in
  expect_invalid "dropped item"
    (Rt_core.Solution.validate p
       { s with Rt_core.Solution.partition = partition' })

let test_duplicate_item_caught () =
  let p = problem_exn base_items ~m:2 in
  let s = good_solution p in
  (* claim a scheduled task was also rejected (double counting) *)
  let dup = List.hd (Rt_partition.Partition.bucket s.Rt_core.Solution.partition 0) in
  expect_invalid "duplicated item"
    (Rt_core.Solution.validate p
       { s with Rt_core.Solution.rejected = dup :: s.Rt_core.Solution.rejected })

let test_foreign_item_caught () =
  let p = problem_exn base_items ~m:2 in
  let s = good_solution p in
  let foreign = Task.item ~id:999 ~weight:0.01 () in
  expect_invalid "foreign item"
    (Rt_core.Solution.validate p
       { s with Rt_core.Solution.rejected = foreign :: s.Rt_core.Solution.rejected })

let test_overload_caught () =
  let p = problem_exn base_items ~m:2 in
  (* cram everything onto one processor: 1.4 > capacity 1.0 *)
  let part = Rt_partition.Partition.of_buckets [| p.Rt_core.Problem.items; [] |] in
  expect_invalid "overloaded processor"
    (Rt_core.Solution.cost p { Rt_core.Solution.partition = part; rejected = [] })

(* ------------------------------------------------------------------ *)
(* Frame_sim.validate *)

let good_sim () =
  let p = problem_exn base_items ~m:2 in
  let s = good_solution p in
  match
    Rt_sim.Frame_sim.build ~proc:cubic ~frame_length:100.
      s.Rt_core.Solution.partition
  with
  | Ok sim -> sim
  | Error e -> Alcotest.failf "build: %s" e

let test_sim_energy_tamper_caught () =
  let sim = good_sim () in
  expect_invalid "inflated energy"
    (Rt_sim.Frame_sim.validate
       { sim with Rt_sim.Frame_sim.total_energy = sim.Rt_sim.Frame_sim.total_energy *. 2. })

let test_sim_timeline_gap_caught () =
  let sim = good_sim () in
  let timelines =
    List.map
      (fun tl ->
        match tl.Rt_sim.Frame_sim.slices with
        | first :: rest when first.Rt_sim.Frame_sim.t1 > 1. ->
            (* shorten the first slice: leaves a gap and starves the task *)
            {
              tl with
              Rt_sim.Frame_sim.slices =
                { first with Rt_sim.Frame_sim.t1 = first.Rt_sim.Frame_sim.t1 /. 2. }
                :: rest;
            }
        | _ -> tl)
      sim.Rt_sim.Frame_sim.timelines
  in
  expect_invalid "timeline gap"
    (Rt_sim.Frame_sim.validate { sim with Rt_sim.Frame_sim.timelines })

let test_sim_speed_tamper_caught () =
  let sim = good_sim () in
  let timelines =
    List.map
      (fun tl ->
        {
          tl with
          Rt_sim.Frame_sim.slices =
            List.map
              (fun sl ->
                if sl.Rt_sim.Frame_sim.task_id <> None then
                  { sl with Rt_sim.Frame_sim.speed = 7. (* above s_max *) }
                else sl)
              tl.Rt_sim.Frame_sim.slices;
        })
      sim.Rt_sim.Frame_sim.timelines
  in
  expect_invalid "infeasible speed"
    (Rt_sim.Frame_sim.validate { sim with Rt_sim.Frame_sim.timelines })

(* ------------------------------------------------------------------ *)
(* Energy_rate.validate *)

let test_plan_tampering_caught () =
  let plan =
    match Rt_speed.Energy_rate.optimal cubic ~u:0.5 with
    | Some p -> p
    | None -> Alcotest.fail "feasible"
  in
  expect_invalid "under-reported rate"
    (Rt_speed.Energy_rate.validate cubic ~u:0.5
       { plan with Rt_speed.Energy_rate.rate = plan.Rt_speed.Energy_rate.rate /. 2. });
  expect_invalid "missing throughput"
    (Rt_speed.Energy_rate.validate cubic ~u:0.9 plan);
  let short =
    {
      plan with
      Rt_speed.Energy_rate.segments =
        List.map
          (fun (s : Rt_speed.Energy_rate.segment) ->
            { s with Rt_speed.Energy_rate.fraction = s.Rt_speed.Energy_rate.fraction /. 2. })
          plan.Rt_speed.Energy_rate.segments;
    }
  in
  expect_invalid "fractions below 1" (Rt_speed.Energy_rate.validate cubic ~u:0.5 short)

(* ------------------------------------------------------------------ *)
(* Migration.validate *)

let test_migration_tampering_caught () =
  let items = items_of [ (0.5, 0.); (0.4, 0.); (0.3, 0.) ] in
  let sch =
    match Rt_partition.Migration.optimal ~proc:cubic ~m:2 ~frame:100. items with
    | Ok s -> s
    | Error e -> Alcotest.failf "optimal: %s" e
  in
  expect_invalid "wrong energy"
    (Rt_partition.Migration.validate ~proc:cubic ~m:2 ~frame:100. items
       { sch with Rt_partition.Migration.energy = 0. });
  expect_invalid "slice removed"
    (Rt_partition.Migration.validate ~proc:cubic ~m:2 ~frame:100. items
       { sch with Rt_partition.Migration.slices = List.tl sch.Rt_partition.Migration.slices });
  expect_invalid "speed below the task's weight"
    (Rt_partition.Migration.validate ~proc:cubic ~m:2 ~frame:100. items
       {
         sch with
         Rt_partition.Migration.speeds =
           List.map (fun (id, _) -> (id, 0.01)) sch.Rt_partition.Migration.speeds;
       })

(* ------------------------------------------------------------------ *)
(* Twope.validate *)

let test_twope_tampering_caught () =
  let dvs = cubic in
  let sys =
    match
      Rt_twope.Twope.system ~dvs ~alt_power:0.5
        ~alt_kind:Rt_twope.Twope.Workload_independent ~horizon:10.
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "system: %s" e
  in
  let tasks =
    [
      Rt_twope.Twope.task ~id:0 ~dvs_weight:0.4 ~alt_permille:200;
      Rt_twope.Twope.task ~id:1 ~dvs_weight:0.3 ~alt_permille:300;
    ]
  in
  expect_invalid "missing task"
    (Rt_twope.Twope.validate sys tasks
       { Rt_twope.Twope.kept = [ List.hd tasks ]; offloaded = [] });
  expect_invalid "task on both PEs"
    (Rt_twope.Twope.validate sys tasks
       { Rt_twope.Twope.kept = tasks; offloaded = [ List.hd tasks ] })

let () =
  Alcotest.run "validation_failure_injection"
    [
      ( "solution",
        [
          Alcotest.test_case "dropped item" `Quick test_drop_item_caught;
          Alcotest.test_case "duplicated item" `Quick test_duplicate_item_caught;
          Alcotest.test_case "foreign item" `Quick test_foreign_item_caught;
          Alcotest.test_case "overload" `Quick test_overload_caught;
        ] );
      ( "frame_sim",
        [
          Alcotest.test_case "energy tamper" `Quick test_sim_energy_tamper_caught;
          Alcotest.test_case "timeline gap" `Quick test_sim_timeline_gap_caught;
          Alcotest.test_case "speed tamper" `Quick test_sim_speed_tamper_caught;
        ] );
      ( "energy_rate",
        [ Alcotest.test_case "plan tampering" `Quick test_plan_tampering_caught ] );
      ( "migration",
        [
          Alcotest.test_case "schedule tampering" `Quick
            test_migration_tampering_caught;
        ] );
      ( "twope",
        [ Alcotest.test_case "assignment tampering" `Quick test_twope_tampering_caught ] );
    ]
