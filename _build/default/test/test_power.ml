(* Tests for rt_power: power models, critical speed, processor domains. *)

open Rt_power

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let cubic = Power_model.make ~coeff:1. ~alpha:3. ()
let xscale = Power_model.make ~p_ind:0.08 ~coeff:1.52 ~alpha:3. ()

(* ------------------------------------------------------------------ *)
(* Power_model *)

let test_power_values () =
  check_float 1e-12 "cubic at 0" 0. (Power_model.power cubic 0.);
  check_float 1e-12 "cubic at 1" 1. (Power_model.power cubic 1.);
  check_float 1e-12 "cubic at 0.5" 0.125 (Power_model.power cubic 0.5);
  check_float 1e-12 "xscale at 1" 1.6 (Power_model.power xscale 1.);
  check_float 1e-12 "xscale at 0" 0.08 (Power_model.power xscale 0.);
  check_float 1e-12 "dynamic strips leakage" 1.52
    (Power_model.dynamic_power xscale 1.)

let test_make_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s should be rejected" name
  in
  expect_invalid "negative p_ind" (fun () ->
      Power_model.make ~p_ind:(-0.1) ~coeff:1. ~alpha:3. ());
  expect_invalid "zero coeff" (fun () ->
      Power_model.make ~coeff:0. ~alpha:3. ());
  expect_invalid "alpha <= 1" (fun () ->
      Power_model.make ~coeff:1. ~alpha:1. ());
  expect_invalid "nan coeff" (fun () ->
      Power_model.make ~coeff:Float.nan ~alpha:3. ())

let test_energy () =
  check_float 1e-12 "time energy" 0.25
    (Power_model.energy cubic ~speed:0.5 ~time:2.);
  (* 100 cycles at speed 0.5 take 200 time units at power 0.125 *)
  check_float 1e-9 "cycle energy" 25.
    (Power_model.energy_cycles cubic ~speed:0.5 ~cycles:100.);
  check_float 1e-12 "per-cycle" 0.25 (Power_model.energy_per_cycle cubic 0.5)

let test_critical_speed_closed_form () =
  (* s* = (p_ind / ((alpha-1) coeff))^(1/alpha) *)
  let expected = (0.08 /. (2. *. 1.52)) ** (1. /. 3.) in
  check_float 1e-9 "xscale critical" expected
    (Power_model.critical_speed xscale ~s_max:1.);
  check_float 1e-12 "no leakage -> no clamp" 0.
    (Power_model.critical_speed cubic ~s_max:1.);
  (* clamped by s_max when the minimizer is above it *)
  let leaky = Power_model.make ~p_ind:100. ~coeff:1. ~alpha:3. () in
  check_float 1e-12 "clamped at s_max" 1.
    (Power_model.critical_speed leaky ~s_max:1.)

let test_critical_speed_numeric_matches_scan () =
  (* with a linear term there is no closed form; compare to a fine scan *)
  let m = Power_model.make ~p_ind:0.1 ~linear:0.3 ~coeff:1. ~alpha:3. () in
  let s = Power_model.critical_speed m ~s_max:1. in
  let best_scan =
    List.fold_left
      (fun acc x ->
        if
          x > 0.
          && Power_model.energy_per_cycle m x
             < Power_model.energy_per_cycle m acc
        then x
        else acc)
      1.
      (Rt_prelude.Math_util.frange ~lo:0.001 ~hi:1. ~steps:2000)
  in
  check_float 1e-3 "numeric critical near scan optimum" best_scan s

let prop_power_increasing =
  qtest "P is non-decreasing in speed"
    QCheck2.Gen.(
      triple (float_range 0.0 0.5) (float_range 0.5 3.) (float_range 2. 3.))
    (fun (p_ind, coeff, alpha) ->
      let m = Power_model.make ~p_ind ~coeff ~alpha () in
      let xs = Rt_prelude.Math_util.frange ~lo:0.01 ~hi:1. ~steps:50 in
      let rec increasing = function
        | a :: (b :: _ as rest) ->
            Power_model.power m a <= Power_model.power m b +. 1e-12
            && increasing rest
        | _ -> true
      in
      increasing xs)

let prop_critical_speed_minimizes_per_cycle_energy =
  qtest "no sampled speed beats the critical speed on energy-per-cycle"
    QCheck2.Gen.(pair (float_range 0.01 0.5) (float_range 0.5 3.))
    (fun (p_ind, coeff) ->
      let m = Power_model.make ~p_ind ~coeff ~alpha:3. () in
      let s_star = Power_model.critical_speed m ~s_max:1. in
      let e_star = Power_model.energy_per_cycle m s_star in
      List.for_all
        (fun s -> e_star <= Power_model.energy_per_cycle m s +. 1e-9)
        (Rt_prelude.Math_util.frange ~lo:0.01 ~hi:1. ~steps:100))

(* ------------------------------------------------------------------ *)
(* Processor *)

let test_domain_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s should be rejected" name
  in
  expect_invalid "inverted ideal" (fun () ->
      Processor.make ~model:cubic
        ~domain:(Processor.Ideal { s_min = 0.5; s_max = 0.2 })
        ~dormancy:Processor.Dormant_disable);
  expect_invalid "unsorted levels" (fun () ->
      Processor.make ~model:cubic
        ~domain:(Processor.Levels [| 0.5; 0.2 |])
        ~dormancy:Processor.Dormant_disable);
  expect_invalid "zero level" (fun () ->
      Processor.make ~model:cubic
        ~domain:(Processor.Levels [| 0.; 0.5 |])
        ~dormancy:Processor.Dormant_disable);
  expect_invalid "negative switch overhead" (fun () ->
      Processor.make ~model:cubic
        ~domain:(Processor.Ideal { s_min = 0.; s_max = 1. })
        ~dormancy:(Processor.Dormant_enable { t_sw = -1.; e_sw = 0. }))

let test_presets () =
  let p = Processor.xscale ~dormancy:Processor.Dormant_disable in
  check_float 1e-12 "xscale s_max" 1. (Processor.s_max p);
  check_bool "ideal" true (Processor.is_ideal p);
  let pl = Processor.xscale_levels ~dormancy:Processor.Dormant_disable in
  check_bool "levels not ideal" false (Processor.is_ideal pl);
  check_float 1e-12 "levels s_min" 0.15 (Processor.s_min pl);
  check_float 1e-12 "levels s_max" 1.0 (Processor.s_max pl);
  let u = Processor.uniform_levels ~n:4 () in
  check_float 1e-12 "uniform levels s_min" 0.25 (Processor.s_min u)

let test_speed_feasible () =
  let ideal = Processor.xscale ~dormancy:Processor.Dormant_disable in
  check_bool "idle ok" true (Processor.speed_feasible ideal 0.);
  check_bool "interior ok" true (Processor.speed_feasible ideal 0.3);
  check_bool "above max" false (Processor.speed_feasible ideal 1.2);
  let lv = Processor.xscale_levels ~dormancy:Processor.Dormant_disable in
  check_bool "level hit" true (Processor.speed_feasible lv 0.6);
  check_bool "off-grid" false (Processor.speed_feasible lv 0.5);
  check_bool "idle always ok" true (Processor.speed_feasible lv 0.)

let test_levels_around () =
  let lv = Processor.xscale_levels ~dormancy:Processor.Dormant_disable in
  (match Processor.levels_around lv 0.5 with
  | Some (lo, hi) ->
      check_float 1e-12 "lo" 0.4 lo;
      check_float 1e-12 "hi" 0.6 hi
  | None -> Alcotest.fail "expected levels");
  (match Processor.levels_around lv 0.1 with
  | Some (lo, hi) ->
      check_float 1e-12 "bottom lo" 0.15 lo;
      check_float 1e-12 "bottom hi" 0.15 hi
  | None -> Alcotest.fail "expected bottom clamp");
  check_bool "above top" true (Processor.levels_around lv 1.5 = None);
  let ideal = Processor.xscale ~dormancy:Processor.Dormant_disable in
  Alcotest.check_raises "ideal raises"
    (Invalid_argument "Processor.levels_around: ideal domain") (fun () ->
      ignore (Processor.levels_around ideal 0.5))

let test_nearest_level_above () =
  let lv = Processor.xscale_levels ~dormancy:Processor.Dormant_disable in
  Alcotest.(check (option (float 1e-12)))
    "between levels" (Some 0.6)
    (Processor.nearest_level_above lv 0.45);
  Alcotest.(check (option (float 1e-12)))
    "above top" None
    (Processor.nearest_level_above lv 1.01);
  Alcotest.(check (option (float 1e-12)))
    "exact level" (Some 0.4)
    (Processor.nearest_level_above lv 0.4)

let test_processor_critical_speed () =
  (* discrete projection picks the level with the least per-cycle energy *)
  let lv =
    Processor.make ~model:xscale
      ~domain:(Processor.Levels [| 0.15; 0.4; 0.6; 0.8; 1.0 |])
      ~dormancy:(Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })
  in
  let s = Processor.critical_speed lv in
  let better l =
    Power_model.energy_per_cycle xscale l
    < Power_model.energy_per_cycle xscale s -. 1e-12
  in
  check_bool "no level beats the chosen one" false
    (List.exists better [ 0.15; 0.4; 0.6; 0.8; 1.0 ])

let test_idle_power () =
  let p = Processor.xscale ~dormancy:Processor.Dormant_disable in
  check_float 1e-12 "idle = leakage" 0.08 (Processor.idle_power p)

let () =
  Alcotest.run "rt_power"
    [
      ( "power_model",
        [
          Alcotest.test_case "power values" `Quick test_power_values;
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "energy" `Quick test_energy;
          Alcotest.test_case "critical speed closed form" `Quick
            test_critical_speed_closed_form;
          Alcotest.test_case "critical speed numeric" `Quick
            test_critical_speed_numeric_matches_scan;
          prop_power_increasing;
          prop_critical_speed_minimizes_per_cycle_energy;
        ] );
      ( "processor",
        [
          Alcotest.test_case "domain validation" `Quick test_domain_validation;
          Alcotest.test_case "presets" `Quick test_presets;
          Alcotest.test_case "speed feasibility" `Quick test_speed_feasible;
          Alcotest.test_case "levels around" `Quick test_levels_around;
          Alcotest.test_case "nearest level above" `Quick
            test_nearest_level_above;
          Alcotest.test_case "critical level projection" `Quick
            test_processor_critical_speed;
          Alcotest.test_case "idle power" `Quick test_idle_power;
        ] );
    ]
