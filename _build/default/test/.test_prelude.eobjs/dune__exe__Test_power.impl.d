test/test_power.ml: Alcotest Float List Power_model Processor QCheck2 QCheck_alcotest Rt_power Rt_prelude
