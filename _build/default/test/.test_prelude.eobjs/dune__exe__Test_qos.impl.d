test/test_qos.ml: Alcotest Gen List Penalty Problem QCheck2 QCheck_alcotest Qos Result Rt_core Rt_partition Rt_power Rt_prelude Rt_task Task
