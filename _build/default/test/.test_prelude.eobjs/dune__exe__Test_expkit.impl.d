test/test_expkit.ml: Alcotest Array Float Gen List QCheck2 QCheck_alcotest Rt_core Rt_expkit Rt_partition Rt_power Rt_prelude Rt_task String Task Taskset
