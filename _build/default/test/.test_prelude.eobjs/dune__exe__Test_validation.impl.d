test/test_validation.ml: Alcotest List Rt_core Rt_partition Rt_power Rt_sim Rt_speed Rt_task Rt_twope Task
