test/test_online.ml: Admission Alcotest Float Job List QCheck2 QCheck_alcotest Result Rt_online Rt_power Rt_prelude Yds
