test/test_task.ml: Alcotest Float Gen List Penalty QCheck2 QCheck_alcotest Rt_power Rt_prelude Rt_task Task Taskset
