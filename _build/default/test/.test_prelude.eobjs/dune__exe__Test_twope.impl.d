test/test_twope.ml: Alcotest Float List QCheck2 QCheck_alcotest Result Rt_power Rt_prelude Rt_twope Twope
