test/test_alloc.ml: Alcotest Alloc Array Float List QCheck2 QCheck_alcotest Result Rounding Rs_leuf Rt_alloc Rt_power Rt_prelude Rt_task
