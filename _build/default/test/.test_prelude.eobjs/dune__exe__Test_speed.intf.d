test/test_speed.mli:
