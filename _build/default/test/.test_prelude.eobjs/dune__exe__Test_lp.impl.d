test/test_lp.ml: Alcotest Array Float List QCheck2 QCheck_alcotest Result Rt_lp Rt_prelude Simplex
