test/test_prelude.ml: Alcotest Float Float_cmp List Math_util QCheck2 QCheck_alcotest Rng Rt_prelude Stats String Tablefmt
