test/test_twope.mli:
