test/test_expkit.mli:
