test/test_speed.ml: Alcotest Array Energy_rate Float List Power_model Processor Procrastinate QCheck2 QCheck_alcotest Result Rt_power Rt_prelude Rt_speed Sync_global
