test/test_sim.ml: Alcotest Array Float Gen List Power_model Processor QCheck2 QCheck_alcotest Result Rt_partition Rt_power Rt_prelude Rt_sim Rt_speed Rt_task String Task Taskset
