test/test_partition.ml: Alcotest Array Float Gen Hetero Heuristics List Migration Partition QCheck2 QCheck_alcotest Result Rt_partition Rt_power Rt_prelude Rt_speed Rt_task Task
