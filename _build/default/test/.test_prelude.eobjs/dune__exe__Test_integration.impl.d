test/test_integration.ml: Alcotest Array Float Gen List Penalty QCheck2 QCheck_alcotest Rt_core Rt_exact Rt_expkit Rt_partition Rt_power Rt_prelude Rt_sim Rt_speed Rt_task Task Taskset
