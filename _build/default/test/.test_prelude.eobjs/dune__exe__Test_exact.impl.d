test/test_exact.ml: Alcotest Array Float Fun List QCheck2 QCheck_alcotest Rt_exact Rt_partition Rt_task Task Taskset
