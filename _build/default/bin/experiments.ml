(* Command-line driver for the experiment suite (EXPERIMENTS.md tables).

   Usage:
     experiments             run everything at full fidelity
     experiments e1 e3      run selected experiments
     experiments --quick    reduced replications (smoke run)
     experiments --list     show the catalogue *)

let list_experiments () =
  List.iter
    (fun e ->
      Printf.printf "%-4s %s\n" e.Rt_expkit.Registry.id
        e.Rt_expkit.Registry.title)
    Rt_expkit.Registry.all

let run quick csv ids list_only =
  if list_only then begin
    list_experiments ();
    Ok ()
  end
  else begin
    let targets =
      match ids with
      | [] -> Ok Rt_expkit.Registry.all
      | ids ->
          List.fold_left
            (fun acc id ->
              match (acc, Rt_expkit.Registry.find id) with
              | Error e, _ -> Error e
              | Ok _, None -> Error (`Msg ("unknown experiment: " ^ id))
              | Ok xs, Some e -> Ok (xs @ [ e ]))
            (Ok []) ids
    in
    match targets with
    | Error e -> Error e
    | Ok targets ->
        List.iter
          (fun e ->
            if csv then begin
              Printf.printf "# %s\n%s\n" e.Rt_expkit.Registry.title
                (Rt_prelude.Tablefmt.to_csv
                   (if quick then e.Rt_expkit.Registry.run_quick ()
                    else e.Rt_expkit.Registry.run ()))
            end
            else Rt_expkit.Registry.print ~quick e)
          targets;
        Ok ()
  end

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced replication counts.")

let csv =
  Arg.(
    value & flag
    & info [ "csv" ] ~doc:"Emit tables as CSV instead of aligned text.")

let list_only =
  Arg.(value & flag & info [ "list" ] ~doc:"List the experiment catalogue.")

let ids =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT"
        ~doc:"Experiment ids to run (default: all). See --list.")

let cmd =
  let doc = "regenerate the evaluation tables of the rt-reject reproduction" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(term_result (const run $ quick $ csv $ ids $ list_only))

let () = exit (Cmd.eval cmd)
