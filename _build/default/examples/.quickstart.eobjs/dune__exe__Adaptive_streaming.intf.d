examples/adaptive_streaming.mli:
