examples/sensor_overload.ml: Float List Printf Rt_core Rt_partition Rt_power Rt_prelude Rt_sim Rt_task String Task Taskset
