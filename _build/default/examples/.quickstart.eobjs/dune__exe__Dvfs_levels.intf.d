examples/dvfs_levels.mli:
