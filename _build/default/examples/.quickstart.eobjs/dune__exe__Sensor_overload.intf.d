examples/sensor_overload.mli:
