examples/admission_control.ml: Admission Job List Printf Rt_online Rt_power Rt_prelude String
