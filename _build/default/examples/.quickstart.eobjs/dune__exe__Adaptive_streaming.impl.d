examples/adaptive_streaming.ml: List Printf Problem Qos Rt_core Rt_power Rt_task String Task Taskset
