examples/quickstart.ml: Format List Rt_core Rt_power Rt_sim Rt_task String Task
