examples/quickstart.mli:
