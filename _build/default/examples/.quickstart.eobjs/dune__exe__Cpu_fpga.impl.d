examples/cpu_fpga.ml: List Printf Rt_power Rt_twope String Twope
