examples/dvfs_levels.ml: Float List Printf Rt_partition Rt_power Rt_prelude Rt_sim Rt_speed Rt_task String
