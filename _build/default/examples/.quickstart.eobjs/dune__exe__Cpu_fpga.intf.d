examples/cpu_fpga.mli:
