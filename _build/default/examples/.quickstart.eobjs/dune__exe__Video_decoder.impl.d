examples/video_decoder.ml: List Printf Rt_core Rt_power Rt_prelude Rt_sim Rt_task Task
