examples/video_decoder.mli:
