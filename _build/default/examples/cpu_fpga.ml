(* Partitioning periodic work between a DVS CPU and an FPGA fabric.

   A board carries one DVS processor and one FPGA whose power draw, once
   configured, does not depend on what it hosts (the workload-independent
   non-DVS PE of the model). Every task offloaded to the fabric frees the
   CPU to run slower — cubically cheaper — but occupies fabric area. The
   example shows the offload decision across the algorithm family, then
   switches to a power-gated fabric (workload-dependent) where hosting is
   no longer free and over-offloading backfires.

   Run with: dune exec examples/cpu_fpga.exe *)

open Rt_twope

(* the CPU: ideal DVS, P(s) = 1.52 s^3 normalized, generous speed range *)
let dvs =
  Rt_power.Processor.make
    ~model:(Rt_power.Power_model.make ~coeff:1.52 ~alpha:3. ())
    ~domain:(Rt_power.Processor.Ideal { s_min = 0.; s_max = 4. })
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

(* (name, CPU utilization, fabric share in permille) *)
let workload =
  [
    ("fft", 0.45, 180);         (* heavy on CPU, small on fabric: offload me *)
    ("matrix-mul", 0.40, 220);
    ("aes", 0.25, 120);
    ("viterbi", 0.30, 350);     (* big fabric footprint *)
    ("crc", 0.05, 40);
    ("uart-proto", 0.08, 300);  (* light on CPU, greedy fabric hog *)
    ("motor-ctl", 0.12, 150);
    ("kalman", 0.35, 260);
  ]

let tasks =
  List.mapi
    (fun id (_, w, a) -> Twope.task ~id ~dvs_weight:w ~alt_permille:a)
    workload

let name_of id = match List.nth_opt workload id with
  | Some (n, _, _) -> n
  | None -> "?"

let show sys label =
  Printf.printf "\n-- %s --\n" label;
  Printf.printf "%-10s %10s  offloaded to fabric\n" "algorithm" "energy";
  List.iter
    (fun (name, alg) ->
      let a = alg sys tasks in
      match Twope.cost sys a with
      | Error e -> Printf.printf "%-10s %10s  (%s)\n" name "-" e
      | Ok c ->
          Printf.printf "%-10s %10.2f  %s\n" name c
            (String.concat ", "
               (List.map
                  (fun t -> name_of t.Twope.id)
                  (List.sort
                     (fun a b -> compare a.Twope.id b.Twope.id)
                     a.Twope.offloaded))))
    (Twope.named @ [ ("OPTIMAL", Twope.exhaustive) ])

let () =
  Printf.printf
    "8 periodic tasks, total CPU utilization %.2f, fabric capacity 1000\u{2030} \
     (demand %d\u{2030})\n"
    (List.fold_left (fun s t -> s +. t.Twope.dvs_weight) 0. tasks)
    (List.fold_left (fun s t -> s + t.Twope.alt_permille) 0 tasks);

  (match
     Twope.system ~dvs ~alt_power:0.588
       ~alt_kind:Twope.Workload_independent ~horizon:1000.
   with
  | Ok sys ->
      show sys "always-on FPGA (workload-independent): fill the fabric wisely"
  | Error e -> failwith e);

  match
    Twope.system ~dvs ~alt_power:0.588 ~alt_kind:Twope.Workload_dependent
      ~horizon:1000.
  with
  | Ok sys ->
      show sys "power-gated FPGA (workload-dependent): every offload must pay"
  | Error e -> failwith e
