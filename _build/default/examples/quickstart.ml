(* Quickstart: the smallest end-to-end tour of the public API.

   Build a frame-based task set with rejection penalties, put it on two
   XScale-like DVS processors that cannot absorb everything, run the
   LTF-based rejection heuristic polished by local search, and check the
   result against the exact optimum and the concrete simulator.

   Run with: dune exec examples/quickstart.exe *)

open Rt_task

let () =
  (* two ideal DVS processors, P(s) = 0.08 + 1.52 s^3, speeds in [0, 1],
     able to sleep when idle *)
  let proc =
    Rt_power.Processor.xscale
      ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })
  in

  (* six jobs sharing a 1000-time-unit frame; cycles are worst-case
     execution cycles, penalties are what dropping the job costs us *)
  let frame_length = 1000. in
  let tasks =
    [
      Task.frame ~id:0 ~cycles:700 ~penalty:900. ();
      Task.frame ~id:1 ~cycles:600 ~penalty:150. ();
      Task.frame ~id:2 ~cycles:500 ~penalty:800. ();
      Task.frame ~id:3 ~cycles:400 ~penalty:100. ();
      Task.frame ~id:4 ~cycles:300 ~penalty:400. ();
      Task.frame ~id:5 ~cycles:200 ~penalty:60. ();
    ]
  in

  let problem =
    match Rt_core.Problem.of_frame ~proc ~m:2 ~frame_length tasks with
    | Ok p -> p
    | Error e -> failwith e
  in
  Format.printf "Instance (load factor %.2f — above 1.0, so rejection is \
                 forced):@.%a@.@."
    (Rt_core.Problem.load_factor problem)
    Rt_core.Problem.pp problem;

  (* run the headline heuristic *)
  let solution =
    Rt_core.Local_search.with_local_search Rt_core.Greedy.ltf_reject problem
  in
  let cost =
    match Rt_core.Solution.cost problem solution with
    | Ok c -> c
    | Error e -> failwith e
  in
  Format.printf "ltf-reject + local search:@.  %a@.  rejected: %s@.@."
    Rt_core.Solution.pp_cost cost
    (String.concat ", "
       (List.map string_of_int (Rt_core.Solution.rejected_ids solution)));

  (* sanity: independent validation through the frame simulator *)
  (match Rt_core.Solution.validate problem solution with
  | Ok () -> print_endline "validation: schedule meets every deadline \u{2713}"
  | Error e -> failwith ("validation failed: " ^ e));

  (* compare against the exact optimum (fine at this size) *)
  let optimal = Rt_core.Exact.branch_and_bound problem in
  let opt_cost =
    match Rt_core.Solution.cost problem optimal with
    | Ok c -> c
    | Error e -> failwith e
  in
  Format.printf "exact optimum: %a  (heuristic is %.2f%% above)@.@."
    Rt_core.Solution.pp_cost opt_cost
    (100. *. ((cost.Rt_core.Solution.total /. opt_cost.Rt_core.Solution.total) -. 1.));

  (* and show the concrete timeline *)
  match
    Rt_sim.Frame_sim.build ~proc ~frame_length solution.Rt_core.Solution.partition
  with
  | Ok sim ->
      print_endline "schedule (digits are task ids, '.' idle):";
      print_endline (Rt_sim.Frame_sim.gantt sim)
  | Error e -> failwith e
