(* Periodic sensor fusion under transient overload.

   A quad-core sensor hub runs periodic sampling/fusion tasks. When a new
   high-rate sensor suite is plugged in, total utilization exceeds what
   the cores can deliver even at top speed, and the admission controller
   must reject some tasks — paying each task's mission-value penalty —
   while running the accepted set as slowly as deadlines allow.

   The example:
   1. builds the periodic task set and reduces it to the rejection problem,
   2. compares all algorithms against the exact optimum,
   3. EDF-simulates the accepted tasks per core over a full hyper-period
      to prove the schedule holds job-by-job.

   Run with: dune exec examples/sensor_overload.exe *)

open Rt_task

let proc =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

(* (name, cycles per job, period in ticks, penalty per hyper-period) *)
let specs =
  [
    ("imu@high", 45, 100, 4000.);
    ("imu@low", 20, 200, 800.);
    ("camera-front", 180, 250, 2500.);
    ("camera-rear", 170, 250, 900.);
    ("lidar", 260, 400, 3000.);
    ("radar", 120, 200, 2200.);
    ("gps-fusion", 80, 500, 1500.);
    ("health-mon", 30, 1000, 300.);
    ("thermal", 90, 500, 250.);
    ("logger", 150, 250, 120.);
    ("compress", 240, 400, 200.);
    ("uplink", 160, 200, 700.);
  ]

let tasks =
  List.mapi
    (fun id (_, cycles, period, penalty) ->
      Task.periodic ~id ~cycles ~period ~penalty ())
    specs

let name_of id = match List.nth_opt specs id with
  | Some (n, _, _, _) -> n
  | None -> "?"

let () =
  let m = 4 in
  let problem =
    match Rt_core.Problem.of_periodic ~proc ~m tasks with
    | Ok p -> p
    | Error e -> failwith e
  in
  Printf.printf
    "sensor hub: %d periodic tasks, %d cores, total utilization %.2f \
     (capacity %.1f)\n\n"
    (List.length tasks) m
    (Taskset.total_utilization tasks)
    (float_of_int m *. Rt_power.Processor.s_max proc);

  (* 2. algorithm comparison *)
  let algorithms =
    [
      ("ltf-reject", Rt_core.Greedy.ltf_reject);
      ("ltf-ls", Rt_core.Local_search.with_local_search Rt_core.Greedy.ltf_reject);
      ("marginal-ls",
       Rt_core.Local_search.with_local_search Rt_core.Greedy.marginal_greedy);
      ("density", Rt_core.Greedy.density_reject);
      ("OPTIMAL", fun p -> Rt_core.Exact.branch_and_bound p);
    ]
  in
  print_endline "algorithm    total-cost  dropped tasks";
  print_endline "-----------  ----------  -------------";
  List.iter
    (fun (name, alg) ->
      let s = alg problem in
      let c =
        match Rt_core.Solution.cost problem s with
        | Ok c -> c
        | Error e -> failwith e
      in
      Printf.printf "%-11s  %10.1f  %s\n" name c.Rt_core.Solution.total
        (String.concat ", "
           (List.map name_of (Rt_core.Solution.rejected_ids s))))
    algorithms;

  (* 3. EDF-simulate the optimal solution core by core *)
  let best = Rt_core.Exact.branch_and_bound problem in
  print_endline "\nEDF check of the optimal assignment, per core:";
  let part = best.Rt_core.Solution.partition in
  List.iter
    (fun core ->
      let ids =
        List.map
          (fun (it : Task.item) -> it.item_id)
          (Rt_partition.Partition.bucket part core)
      in
      let core_tasks =
        List.filter (fun (t : Task.periodic) -> List.mem t.id ids) tasks
      in
      if core_tasks = [] then
        Printf.printf "  core %d: (sleeps all hyper-period)\n" core
      else begin
        let u = Taskset.total_utilization core_tasks in
        (* run at the slowest feasible constant speed, clamped from below
           by the critical speed *)
        let speed =
          Float.max u (Rt_power.Processor.critical_speed proc)
        in
        match Rt_sim.Edf_sim.run ~proc ~speed core_tasks with
        | Error e -> failwith e
        | Ok o ->
            Printf.printf
              "  core %d: %d tasks, U=%.3f, speed %.3f -> %s (%d preemptions, \
               busy %.0f/%.0f)\n"
              core (List.length core_tasks) u speed
              (if o.Rt_sim.Edf_sim.misses = [] then "all deadlines met"
               else "DEADLINE MISS")
              o.Rt_sim.Edf_sim.preemptions o.Rt_sim.Edf_sim.busy_time
              o.Rt_sim.Edf_sim.horizon
      end)
    (Rt_prelude.Math_util.range 0 (m - 1))
