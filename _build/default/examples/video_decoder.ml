(* Scalable video decoding under an energy budget.

   A layered video decoder processes, per 40ms display frame, one *base
   layer* job per stream (dropping it loses the stream — high penalty) and
   one or two *enhancement layer* jobs (dropping one only degrades quality
   — low penalty). Under overload the scheduler must decide which layers
   to decode this frame and at which DVS speeds: exactly the
   energy-plus-rejection-penalty objective of the target paper.

   The example sweeps the number of admitted streams on a 2-core decoder
   SoC and shows how the scheduler sheds enhancement layers first and
   starts dropping whole streams only deep into overload.

   Run with: dune exec examples/video_decoder.exe *)

open Rt_task

let frame_length = 1000. (* one 40ms display frame, in normalized ticks *)

let proc =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

(* Per stream: one base job + two enhancement jobs. Cycle counts follow a
   typical 60/25/15 split of decode work across layers. *)
let stream_tasks ~stream ~cycles_per_stream =
  let base = stream * 10 in
  let share pct = max 1 (cycles_per_stream * pct / 100) in
  [
    Task.frame ~id:base ~cycles:(share 60)
      ~penalty:5000. (* losing a whole stream is unacceptable-ish *) ();
    Task.frame ~id:(base + 1) ~cycles:(share 25) ~penalty:120. ();
    Task.frame ~id:(base + 2) ~cycles:(share 15) ~penalty:40. ();
  ]

let classify solution =
  let rejected = Rt_core.Solution.rejected_ids solution in
  let bases = List.filter (fun id -> id mod 10 = 0) rejected in
  let enhancements = List.filter (fun id -> id mod 10 <> 0) rejected in
  (List.length bases, List.length enhancements)

let () =
  print_endline "streams  load  base-drops  enh-drops  energy  penalty  total";
  print_endline "-------  ----  ----------  ---------  ------  -------  -----";
  List.iter
    (fun streams ->
      let tasks =
        List.concat_map
          (fun s -> stream_tasks ~stream:s ~cycles_per_stream:700)
          (Rt_prelude.Math_util.range 0 (streams - 1))
      in
      let problem =
        match Rt_core.Problem.of_frame ~proc ~m:2 ~frame_length tasks with
        | Ok p -> p
        | Error e -> failwith e
      in
      let solution =
        Rt_core.Local_search.with_local_search Rt_core.Greedy.marginal_greedy
          problem
      in
      (match Rt_core.Solution.validate problem solution with
      | Ok () -> ()
      | Error e -> failwith ("invalid schedule: " ^ e));
      let cost =
        match Rt_core.Solution.cost problem solution with
        | Ok c -> c
        | Error e -> failwith e
      in
      let base_drops, enh_drops = classify solution in
      Printf.printf "%7d  %4.2f  %10d  %9d  %6.1f  %7.1f  %5.1f\n" streams
        (Rt_core.Problem.load_factor problem)
        base_drops enh_drops cost.Rt_core.Solution.energy
        cost.Rt_core.Solution.penalty cost.Rt_core.Solution.total)
    [ 1; 2; 3; 4; 5; 6 ];
  print_endline
    "\nEnhancement layers are shed first (cheap penalties); base layers\n\
     survive until the platform physically cannot decode them.";

  (* zoom into the 4-stream case and show the realized schedule *)
  let tasks =
    List.concat_map
      (fun s -> stream_tasks ~stream:s ~cycles_per_stream:700)
      [ 0; 1; 2; 3 ]
  in
  let problem =
    match Rt_core.Problem.of_frame ~proc ~m:2 ~frame_length tasks with
    | Ok p -> p
    | Error e -> failwith e
  in
  let solution =
    Rt_core.Local_search.with_local_search Rt_core.Greedy.marginal_greedy
      problem
  in
  match
    Rt_sim.Frame_sim.build ~proc ~frame_length
      solution.Rt_core.Solution.partition
  with
  | Ok sim ->
      print_endline "\n4-stream schedule (one display frame, 2 cores):";
      print_endline (Rt_sim.Frame_sim.gantt sim)
  | Error e -> failwith e
