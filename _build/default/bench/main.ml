(* Benchmark harness.

   Two sections:

   1. The evaluation tables — one per experiment in the EXPERIMENTS.md
      index (E1..E16), regenerated through the same Rt_expkit registry the
      [experiments] binary uses. Reduced replication counts by default so
      the whole run stays in CI territory; set RT_BENCH_FULL=1 for the
      full-fidelity tables recorded in EXPERIMENTS.md.

   2. Bechamel timing benches — one Test.make per experiment covering the
      workhorse kernel behind that table, plus a size-scaling group for
      the heuristics themselves. *)

open Bechamel
open Toolkit

(* ---------------------------------------------------------------- *)
(* Section 1: experiment tables *)

let print_tables () =
  let quick = Sys.getenv_opt "RT_BENCH_FULL" = None in
  if quick then
    print_endline
      "(tables at reduced replication count; RT_BENCH_FULL=1 for the full \
       EXPERIMENTS.md fidelity)";
  List.iter (Rt_expkit.Registry.print ~quick) Rt_expkit.Registry.all

(* ---------------------------------------------------------------- *)
(* Section 2: timing kernels *)

let proc =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let instance ~seed ~n ~m ~load =
  Rt_expkit.Instances.frame_instance ~proc ~seed ~n ~m ~load ()

let kernel_tests =
  let p_small = instance ~seed:1 ~n:8 ~m:2 ~load:1.4 in
  let p_mid = instance ~seed:2 ~n:40 ~m:8 ~load:1.5 in
  let p_big = instance ~seed:3 ~n:120 ~m:16 ~load:1.5 in
  let levels =
    Rt_power.Processor.xscale_levels ~dormancy:Rt_power.Processor.Dormant_disable
  in
  let hetero_items =
    let rng = Rt_prelude.Rng.create ~seed:4 in
    Rt_task.Gen.items rng ~n:12 ~weight_lo:0.02 ~weight_hi:0.07
    |> Rt_task.Gen.heterogeneous_power_factors rng ~lo:0.5 ~hi:3.
  in
  let periodic_part =
    let rng = Rt_prelude.Rng.create ~seed:5 in
    let tasks =
      Rt_task.Gen.periodic_tasks rng ~n:16 ~total_util:1.2
        ~periods:Rt_task.Gen.default_periods
    in
    Rt_partition.Heuristics.ltf ~m:8 (Rt_task.Taskset.items_of_periodics tasks)
  in
  let e8_proc =
    Rt_power.Processor.xscale
      ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 5.; e_sw = 4. })
  in
  let jobs =
    let rng = Rt_prelude.Rng.create ~seed:6 in
    Rt_online.Job.stream rng ~n:40 ~rate:0.02 ~s_max:1. ~mean_cycles:25.
      ~slack_lo:1.5 ~slack_hi:6. ~penalty_factor:1.2
  in
  let mig_items =
    let rng = Rt_prelude.Rng.create ~seed:7 in
    Rt_task.Gen.items rng ~n:20 ~weight_lo:0.05 ~weight_hi:0.4
  in
  let lp_problem =
    {
      Rt_lp.Simplex.minimize = [| -3.; -5.; 1.; 0.5 |];
      constraints =
        [
          ([| 1.; 0.; 2.; 0. |], Rt_lp.Simplex.Le, 4.);
          ([| 0.; 2.; 0.; 1. |], Rt_lp.Simplex.Le, 12.);
          ([| 3.; 2.; 1.; 1. |], Rt_lp.Simplex.Le, 18.);
          ([| 1.; 1.; 1.; 1. |], Rt_lp.Simplex.Ge, 1.);
        ];
    }
  in
  let qos_tasks =
    List.map
      (Rt_core.Qos.graceful ~steps:4 ~curve:2.)
      p_mid.Rt_core.Problem.items
  in
  let qos_problem =
    match
      Rt_core.Problem.make ~proc ~m:8 ~horizon:1000. []
    with
    | Ok p -> p
    | Error e -> invalid_arg e
  in
  [
    Test.make ~name:"e1.kernel: branch&bound n=8 m=2"
      (Staged.stage (fun () -> Rt_core.Exact.branch_and_bound p_small));
    Test.make ~name:"e2.kernel: lower_bound n=120 m=16"
      (Staged.stage (fun () -> Rt_core.Bounds.lower_bound p_big));
    Test.make ~name:"e3.kernel: ltf-reject + local search n=40 m=8"
      (Staged.stage (fun () ->
           Rt_core.Local_search.with_local_search Rt_core.Greedy.ltf_reject
             p_mid));
    Test.make ~name:"e4.kernel: density_reject n=40 m=8"
      (Staged.stage (fun () -> Rt_core.Greedy.density_reject p_mid));
    Test.make ~name:"e5.kernel: two-level split plan (levels domain)"
      (Staged.stage (fun () -> Rt_speed.Energy_rate.optimal levels ~u:0.55));
    Test.make ~name:"e6.kernel: numeric critical speed (linear term)"
      (Staged.stage
         (let m =
            Rt_power.Power_model.make ~p_ind:0.1 ~linear:0.2 ~coeff:1.52
              ~alpha:3. ()
          in
          fun () -> Rt_power.Power_model.critical_speed m ~s_max:1.));
    Test.make ~name:"e7.kernel: hetero KKT speeds (12 tasks)"
      (Staged.stage (fun () ->
           Rt_partition.Hetero.processor_speeds
             (Rt_power.Processor.xscale
                ~dormancy:Rt_power.Processor.Dormant_disable)
             ~horizon:1000. hetero_items));
    Test.make ~name:"e13.kernel: online admission, 40-job stream"
      (Staged.stage (fun () ->
           Rt_online.Admission.simulate ~proc
             ~policy:Rt_online.Admission.Profitable jobs));
    Test.make ~name:"e13.kernel: YDS decomposition, 40 jobs"
      (Staged.stage (fun () -> Rt_online.Yds.blocks jobs));
    Test.make ~name:"e11.kernel: two-phase simplex, 4 vars x 4 rows"
      (Staged.stage (fun () -> Rt_lp.Simplex.solve lp_problem));
    Test.make ~name:"e15.kernel: migratory optimum n=20 m=4"
      (Staged.stage (fun () ->
           Rt_partition.Migration.optimal ~proc:(Rt_power.Processor.cubic ())
             ~m:4 ~frame:1000. mig_items));
    Test.make ~name:"e16.kernel: greedy degradation n=40 m=8"
      (Staged.stage (fun () ->
           Rt_core.Qos.greedy_degrade qos_problem qos_tasks));
    Test.make ~name:"e8.kernel: consolidate + policy energy m=8"
      (Staged.stage (fun () ->
           Rt_expkit.Exp_leakage.policy_energy ~proc:e8_proc ~horizon:2000.
             ~jobs_on:(fun b -> 10 * List.length b)
             { Rt_expkit.Exp_leakage.ff = true; procrastinate = false }
             periodic_part));
  ]

let scaling_tests =
  let sizes = [| 10; 100; 1000 |] in
  let problems =
    Array.map (fun n -> instance ~seed:(100 + n) ~n ~m:8 ~load:1.5) sizes
  in
  [
    Test.make_indexed ~name:"ltf-reject" ~args:[ 0; 1; 2 ] (fun i ->
        Staged.stage (fun () -> Rt_core.Greedy.ltf_reject problems.(i)));
    Test.make_indexed ~name:"marginal" ~args:[ 0; 1; 2 ] (fun i ->
        Staged.stage (fun () -> Rt_core.Greedy.marginal_greedy problems.(i)));
    Test.make_indexed ~name:"unsorted" ~args:[ 0; 1; 2 ] (fun i ->
        Staged.stage (fun () -> Rt_core.Greedy.unsorted_reject problems.(i)));
  ]

let run_timings () =
  let tests =
    Test.make_grouped ~name:"rt-reject"
      [
        Test.make_grouped ~name:"kernels" kernel_tests;
        Test.make_grouped ~name:"scaling(n=10|100|1000)" scaling_tests;
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let table =
    List.fold_left
      (fun t (name, ols) ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> Printf.sprintf "%.1f" x
          | Some [] | None -> "n/a"
        in
        Rt_prelude.Tablefmt.add_row t [ name; ns ])
      (Rt_prelude.Tablefmt.create
         ~aligns:[ Rt_prelude.Tablefmt.Left; Rt_prelude.Tablefmt.Right ]
         [ "benchmark"; "ns/run" ])
      rows
  in
  print_endline "\n== timing (bechamel, monotonic clock, OLS ns/run) ==";
  Rt_prelude.Tablefmt.print table

let () =
  print_tables ();
  run_timings ();
  print_endline "\nbench: done"
