module Fc = Rt_prelude.Float_cmp

(* What a discrete DVFS grid costs, and how the two-level split works.

   Real DVS silicon exposes a handful of frequency grades, not a
   continuum. The optimal way to sustain a required speed between two
   grades is to alternate between the adjacent grades (Ishihara–Yasuura);
   with leakage and a sleep mode, idling or sleeping joins the mix and the
   optimum is a point on the lower convex hull of the operating points.

   This example prints the realized plans across the whole load range for
   the 5-grade XScale processor and compares the energy against the ideal
   continuous-spectrum processor.

   Run with: dune exec examples/dvfs_levels.exe *)

let ideal =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let levels =
  Rt_power.Processor.xscale_levels
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let plan_to_string (plan : Rt_speed.Energy_rate.plan) =
  plan.Rt_speed.Energy_rate.segments
  |> List.map (fun (s : Rt_speed.Energy_rate.segment) ->
         if Fc.exact_eq s.Rt_speed.Energy_rate.speed 0. then
           Printf.sprintf "sleep %.0f%%" (100. *. s.Rt_speed.Energy_rate.fraction)
         else
           Printf.sprintf "%.2f for %.0f%%" s.Rt_speed.Energy_rate.speed
             (100. *. s.Rt_speed.Energy_rate.fraction))
  |> String.concat " + "

let () =
  Printf.printf "XScale, 5 grades {0.15 0.4 0.6 0.8 1.0}, P(s)=0.08+1.52s^3, \
                 critical speed %.3f\n\n"
    (Rt_power.Processor.critical_speed ideal);
  print_endline
    "load   grid plan                      grid rate  ideal rate  overhead";
  print_endline
    "-----  ------------------------------ ---------  ----------  --------";
  List.iter
    (fun u ->
      match
        ( Rt_speed.Energy_rate.optimal levels ~u,
          Rt_speed.Energy_rate.optimal ideal ~u )
      with
      | Some pl, Some pi ->
          Printf.printf "%.2f   %-30s  %9.4f  %10.4f  %+7.1f%%\n" u
            (plan_to_string pl) pl.Rt_speed.Energy_rate.rate
            pi.Rt_speed.Energy_rate.rate
            (100.
            *. ((pl.Rt_speed.Energy_rate.rate
                /. Float.max 1e-12 pi.Rt_speed.Energy_rate.rate)
               -. 1.));
      | _ -> Printf.printf "%.2f   (infeasible)\n" u)
    [ 0.05; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ];

  (* whole-system view: the same task set scheduled on both processors *)
  print_endline "\nSame 12-task workload on 4 cores, both processor kinds:";
  let rng = Rt_prelude.Rng.create ~seed:2024 in
  let tasks =
    Rt_task.Gen.frame_tasks_with_load rng ~n:12 ~m:4 ~s_max:1.
      ~frame_length:1000. ~load:0.55
  in
  let items = Rt_task.Taskset.items_of_frames ~frame_length:1000. tasks in
  let part = Rt_partition.Heuristics.ltf ~m:4 items in
  List.iter
    (fun (name, proc) ->
      match Rt_sim.Frame_sim.build ~proc ~frame_length:1000. part with
      | Ok sim ->
          (match Rt_sim.Frame_sim.validate sim with
          | Ok () -> ()
          | Error e -> failwith e);
          Printf.printf "  %-12s total energy %.2f\n" name
            sim.Rt_sim.Frame_sim.total_energy
      | Error e -> Printf.printf "  %-12s infeasible: %s\n" name e)
    [ ("ideal", ideal); ("5-grade", levels) ]
