(* Adaptive streaming: service-level menus instead of all-or-nothing.

   A transcoding box handles eight streams per frame on two cores. Binary
   admission must drop whole streams under overload; the QoS extension
   lets each stream degrade to 2/3 or 1/3 service instead (lower bitrate,
   fewer enhancement layers), with a concave loss — viewers barely notice
   the first quality step. The example contrasts the two policies on the
   same instance.

   Run with: dune exec examples/adaptive_streaming.exe *)

open Rt_task
open Rt_core

let proc =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let items =
  (* (weight on one core, penalty for dropping the stream entirely) *)
  List.mapi
    (fun id (w, pen) -> Task.item ~penalty:pen ~id ~weight:w ())
    [
      (0.45, 900.);
      (0.40, 750.);
      (0.35, 640.);
      (0.35, 580.);
      (0.30, 510.);
      (0.30, 420.);
      (0.25, 300.);
      (0.20, 180.);
    ]

let problem =
  match Problem.make ~proc ~m:2 ~horizon:1000. [] with
  | Ok p -> p
  | Error e -> failwith e

let describe name tasks solution =
  match Qos.cost problem tasks solution with
  | Error e -> Printf.printf "%-8s failed: %s\n" name e
  | Ok total ->
      let levels =
        List.map
          (fun c ->
            let t = List.find (fun t -> t.Qos.id = c.Qos.task_id) tasks in
            let n = List.length t.Qos.levels in
            let f =
              if n = 1 then 1.
              else
                float_of_int (n - 1 - c.Qos.level_index)
                /. float_of_int (n - 1)
            in
            (c.Qos.task_id, f))
          solution.Qos.choices
        |> List.sort (fun (ida, _) (idb, _) -> Int.compare ida idb)
      in
      Printf.printf "%-8s total cost %7.1f   service: %s\n" name total
        (String.concat " "
           (List.map (fun (_, f) -> Printf.sprintf "%.0f%%" (100. *. f)) levels))

let () =
  Printf.printf
    "8 streams, 2 cores, load factor %.2f — rejection/degradation forced\n\n"
    (Taskset.total_weight items /. 2.);
  (* binary menus: serve fully or drop *)
  let binary = List.map Qos.of_item items in
  describe "binary" binary (Qos.greedy_degrade problem binary);
  (* graceful menus: 100/66/33/0 % service, concave loss *)
  let multi = List.map (Qos.graceful ~steps:4 ~curve:2.) items in
  describe "graceful" multi (Qos.greedy_degrade problem multi);
  print_endline
    "\nGraceful menus keep most streams alive at reduced bitrate instead\n\
     of dropping them outright, at clearly lower total cost (energy +\n\
     viewer-experience penalty).";
  (* sanity: both solutions validated against the frame simulator *)
  List.iter
    (fun (name, tasks) ->
      match Qos.validate problem tasks (Qos.greedy_degrade problem tasks) with
      | Ok () -> Printf.printf "%s schedule: simulator-checked \u{2713}\n" name
      | Error e -> failwith (name ^ ": " ^ e))
    [ ("binary", binary); ("graceful", multi) ]
