(* Fault recovery: a crash mid-frame and mis-estimated WCECs.

   A quad-core avionics payload runs ten sensor-fusion tasks per frame.
   Mid-mission, core 2 fail-stops and two vision tasks turn out to need
   1.5x their budgeted cycles. Riding out the faults with the original
   plan (no-op) drops deadlines; the degradation policies instead re-run
   the paper's rejection heuristics on the residual instance — original
   tasks with overrun-inflated weights on the three surviving cores —
   shedding the lowest-value work so everything that remains provably
   fits. Every recovery is replayed through the frame simulator under
   the same faults, so "zero misses" is measured, not assumed.

   Run with: dune exec examples/fault_recovery.exe *)

open Rt_task
open Rt_core
module Fault = Rt_fault.Fault
module Degrade = Rt_fault.Degrade

let proc =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let items =
  (* (required speed share, penalty for dropping the task) *)
  List.mapi
    (fun id (w, pen) -> Task.item ~penalty:pen ~id ~weight:w ())
    [
      (0.55, 2200.);  (* terrain mapping *)
      (0.50, 1900.);  (* obstacle detection *)
      (0.45, 1500.);  (* horizon tracking *)
      (0.40, 1100.);  (* image stabilizer *)
      (0.35, 800.);   (* target classifier *)
      (0.30, 600.);   (* telemetry codec *)
      (0.30, 480.);   (* thermal monitor *)
      (0.25, 300.);   (* logging *)
      (0.20, 180.);   (* diagnostics *)
      (0.15, 90.);    (* housekeeping *)
    ]

let problem =
  match Problem.make ~proc ~m:4 ~horizon:1000. items with
  | Ok p -> p
  | Error e -> failwith e

(* the fault-free plan: accept and place everything that pays its way *)
let baseline = Greedy.ltf_reject problem

(* core 2 dies a quarter into the frame; tasks 1 and 4 overrun 1.5x *)
let scenario =
  [
    Fault.Proc_crash { proc = 2; at = 250. };
    Fault.Wcec_overrun { task_id = 1; factor = 1.5 };
    Fault.Wcec_overrun { task_id = 4; factor = 1.5 };
  ]

let show policy =
  match Degrade.recover_frame problem scenario ~baseline policy with
  | Error e -> Printf.printf "%-16s failed: %s\n" (Degrade.policy_name policy) e
  | Ok r ->
      Printf.printf "%-16s %-16s %-16s %+13.0f %+13.0f\n"
        (Degrade.policy_name policy)
        (match r.Degrade.misses with
        | [] -> "none"
        | ids -> String.concat "," (List.map string_of_int ids))
        (match r.Degrade.shed with
        | [] -> "none"
        | ids -> String.concat "," (List.map string_of_int ids))
        r.Degrade.extra_penalty r.Degrade.energy_delta

let () =
  Format.printf "fault scenario: %a@.@." Fault.pp scenario;
  Printf.printf "%-16s %-16s %-16s %13s %13s\n" "policy" "deadline misses"
    "tasks shed" "extra penalty" "energy delta";
  List.iter show Degrade.all_policies;
  print_newline ();
  print_endline
    "no-op rides out the faults and misses deadlines; the shedding policies\n\
     trade bounded penalty for a plan the survivors can actually execute."
