(* An online admission controller for a render/compute service.

   Requests arrive unpredictably; each carries work (cycles), a deadline
   and a value (the penalty we pay if we turn it away). The server scales
   its DVS processor with the density speed — the slowest speed that keeps
   every admitted commitment — and an admission policy decides whom to
   serve. This is the target paper's accept/reject trade-off transplanted
   into its natural online habitat.

   Run with: dune exec examples/admission_control.exe *)

open Rt_online

let proc =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let policies =
  [
    ("admit-all", Admission.Admit_all);
    ("profitable", Admission.Profitable);
    ("threshold@1.0", Admission.Density_threshold 1.0);
  ]

let () =
  let rng = Rt_prelude.Rng.create ~seed:7 in
  (* overload: offered load ~1.4 on a unit-speed processor *)
  let jobs =
    Job.stream rng ~n:200 ~rate:(1.4 /. 25.) ~s_max:1. ~mean_cycles:25.
      ~slack_lo:1.2 ~slack_hi:4. ~penalty_factor:1.3
  in
  let lb = Admission.lower_bound ~proc jobs in
  Printf.printf
    "200 jobs, offered load ~1.4 (processor can sustain 1.0)\n\
     clairvoyant per-job lower bound: %.1f\n\n"
    lb;
  Printf.printf "%-14s %9s %9s %9s %7s %7s %7s\n" "policy" "energy" "penalty"
    "total" "vs LB" "admit" "forced";
  List.iter
    (fun (name, policy) ->
      match Admission.simulate ~proc ~policy jobs with
      | Error e ->
          Printf.printf "%-14s failed: %s\n" name
            (Admission.error_to_string e)
      | Ok o ->
          Printf.printf "%-14s %9.1f %9.1f %9.1f %6.2fx %6d %7d\n" name
            o.Admission.energy o.Admission.penalty o.Admission.total
            (o.Admission.total /. lb)
            (List.length o.Admission.admitted)
            o.Admission.forced_rejections)
    policies;
  print_endline
    "\nadmit-all fills the machine and then drops whoever arrives next \
     (forced\nrejections ignore value); the profitable policy keeps slack \
     for the jobs\nthat are worth the energy.";

  (* a small deterministic vignette *)
  print_endline "\n-- vignette: one awkward afternoon --";
  let vignette =
    [
      Job.make ~id:100 ~arrival:0. ~cycles:60. ~deadline:100. ~penalty:200.;
      Job.make ~id:101 ~arrival:5. ~cycles:50. ~deadline:90. ~penalty:3.;
      Job.make ~id:102 ~arrival:10. ~cycles:30. ~deadline:60. ~penalty:150.;
    ]
  in
  List.iter
    (fun (name, policy) ->
      match Admission.simulate ~proc ~policy vignette with
      | Error e ->
          Printf.printf "%s: %s\n" name (Admission.error_to_string e)
      | Ok o ->
          Printf.printf "%-14s admitted %s, total cost %.1f\n" name
            (String.concat ","
               (List.map string_of_int o.Admission.admitted))
            o.Admission.total)
    policies
