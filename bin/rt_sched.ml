module Fc = Rt_prelude.Float_cmp

(* rt_sched: generate a synthetic rejection-scheduling instance, run one or
   all algorithms on it, validate, and show the schedule.

   Examples:
     rt_sched solve --n 12 --m 4 --load 1.6 --alg ltf-ls --gantt
     rt_sched compare --n 10 --m 2 --load 1.4 --exact
     rt_sched describe --n 6 --m 2 --load 1.2
     rt_sched faults -n 12 -m 4 --load 0.8 --fault-rate 0.3
     rt_sched portfolio --n 14 --m 4 --load 1.6 --jobs 4 *)

open Cmdliner

let named_algorithms =
  Rt_core.Greedy.named
  @ [
      ( "ltf-ls",
        Rt_core.Local_search.with_local_search Rt_core.Greedy.ltf_reject );
      ( "marginal-ls",
        Rt_core.Local_search.with_local_search Rt_core.Greedy.marginal_greedy );
      ( "density-ls",
        Rt_core.Local_search.with_local_search Rt_core.Greedy.density_reject );
    ]

let processor_of_name name =
  let enable = Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. } in
  match name with
  | "xscale" -> Ok (Rt_power.Processor.xscale ~dormancy:enable)
  | "xscale-levels" -> Ok (Rt_power.Processor.xscale_levels ~dormancy:enable)
  | "cubic" -> Ok (Rt_power.Processor.cubic ())
  | other -> Error (`Msg ("unknown processor preset: " ^ other))

let penalty_of_name name =
  match List.assoc_opt name Rt_task.Penalty.default_models with
  | Some m -> Ok m
  | None -> Error (`Msg ("unknown penalty model: " ^ name))

let build_instance ~proc_name ~penalty_name ~seed ~n ~m ~load =
  match (processor_of_name proc_name, penalty_of_name penalty_name) with
  | Error e, _ | _, Error e -> Error e
  | Ok proc, Ok penalty_model ->
      Ok
        ( proc,
          Rt_expkit.Instances.frame_instance ~penalty_model ~proc ~seed ~n ~m
            ~load () )

let print_cost p s =
  match Rt_core.Solution.cost p s with
  | Error e -> Printf.printf "  INVALID: %s\n" e
  | Ok c ->
      Printf.printf "  energy %.4f  penalty %.4f  total %.4f  accepted %d/%d\n"
        c.Rt_core.Solution.energy c.Rt_core.Solution.penalty
        c.Rt_core.Solution.total
        (Rt_partition.Partition.size s.Rt_core.Solution.partition)
        (List.length p.Rt_core.Problem.items)

let validation_tag p s =
  match Rt_core.Solution.validate p s with
  | Ok () -> "valid (simulator-checked)"
  | Error e -> "INVALID: " ^ e

let describe proc_name penalty_name seed n m load =
  match build_instance ~proc_name ~penalty_name ~seed ~n ~m ~load with
  | Error e -> Error e
  | Ok (_, p) ->
      Format.printf "%a@." Rt_core.Problem.pp p;
      Ok ()

let solve proc_name penalty_name seed n m load alg_name gantt =
  match build_instance ~proc_name ~penalty_name ~seed ~n ~m ~load with
  | Error e -> Error e
  | Ok (proc, p) -> (
      match List.assoc_opt alg_name named_algorithms with
      | None ->
          Error
            (`Msg
              (Printf.sprintf "unknown algorithm %s (have: %s)" alg_name
                 (String.concat ", " (List.map fst named_algorithms))))
      | Some alg ->
          let s = alg p in
          Printf.printf "algorithm %s on n=%d m=%d load=%.2f (seed %d)\n"
            alg_name n m load seed;
          print_cost p s;
          Printf.printf "  rejected ids: [%s]\n"
            (String.concat "; "
               (List.map string_of_int (Rt_core.Solution.rejected_ids s)));
          Printf.printf "  %s\n" (validation_tag p s);
          if gantt then begin
            match
              Rt_sim.Frame_sim.build ~proc
                ~frame_length:p.Rt_core.Problem.horizon
                s.Rt_core.Solution.partition
            with
            | Ok sim -> print_endline (Rt_sim.Frame_sim.gantt sim)
            | Error e -> Printf.printf "  (no gantt: %s)\n" e
          end;
          Ok ())

let compare_all proc_name penalty_name seed n m load exact =
  match build_instance ~proc_name ~penalty_name ~seed ~n ~m ~load with
  | Error e -> Error e
  | Ok (_, p) ->
      Printf.printf "instance: n=%d m=%d load=%.2f penalties=%s seed=%d\n" n m
        load penalty_name seed;
      let rows =
        List.map
          (fun (name, alg) ->
            let s = alg p in
            (name, Rt_expkit.Instances.solution_total p s, s))
          named_algorithms
      in
      let rows =
        if exact then begin
          let s = Rt_core.Exact.branch_and_bound p in
          rows @ [ ("OPTIMAL", Rt_expkit.Instances.solution_total p s, s) ]
        end
        else rows
      in
      let table =
        List.fold_left
          (fun t (name, total, s) ->
            Rt_prelude.Tablefmt.add_row t
              [
                name;
                Rt_prelude.Tablefmt.float_cell total;
                string_of_int
                  (Rt_partition.Partition.size s.Rt_core.Solution.partition);
                validation_tag p s;
              ])
          (Rt_prelude.Tablefmt.create
             ~aligns:
               [
                 Rt_prelude.Tablefmt.Left;
                 Rt_prelude.Tablefmt.Right;
                 Rt_prelude.Tablefmt.Right;
                 Rt_prelude.Tablefmt.Left;
               ]
             [ "algorithm"; "total cost"; "accepted"; "validation" ])
          rows
      in
      Rt_prelude.Tablefmt.print table;
      Ok ()

let periodic proc_name seed n m total_util =
  match processor_of_name proc_name with
  | Error e -> Error e
  | Ok proc -> (
      let problem, tasks =
        Rt_expkit.Instances.periodic_instance ~proc ~seed ~n ~m ~total_util ()
      in
      Printf.printf
        "periodic: n=%d m=%d total U=%.2f hyper-period=%g (seed %d)\n" n m
        (Rt_task.Taskset.total_utilization tasks)
        problem.Rt_core.Problem.horizon seed;
      let s =
        Rt_core.Local_search.with_local_search Rt_core.Greedy.ltf_reject
          problem
      in
      print_cost problem s;
      Printf.printf "  %s\n" (validation_tag problem s);
      (* EDF check per core at the clamped sustained speed *)
      let rec per_core core =
        if core = m then Ok ()
        else begin
          let ids =
            List.map
              (fun (it : Rt_task.Task.item) -> it.Rt_task.Task.item_id)
              (Rt_partition.Partition.bucket s.Rt_core.Solution.partition core)
          in
          let core_tasks =
            List.filter
              (fun (t : Rt_task.Task.periodic) ->
                List.mem t.Rt_task.Task.id ids)
              tasks
          in
          if core_tasks = [] then begin
            Printf.printf "  core %d: idle\n" core;
            per_core (core + 1)
          end
          else begin
            let u = Rt_task.Taskset.total_utilization core_tasks in
            let speed =
              Float.min
                (Rt_power.Processor.s_max proc)
                (Float.max u (Rt_power.Processor.critical_speed proc))
            in
            match Rt_sim.Edf_sim.run ~proc ~speed core_tasks with
            | Error e -> Error (`Msg e)
            | Ok o ->
                Printf.printf "  core %d: %d tasks, U=%.3f, EDF %s\n" core
                  (List.length core_tasks) u
                  (if o.Rt_sim.Edf_sim.misses = [] then "clean"
                   else "MISSES!");
                per_core (core + 1)
          end
        end
      in
      match per_core 0 with Error e -> Error e | Ok () -> Ok ())

let online seed n load policy_name =
  let policy =
    match policy_name with
    | "admit-all" -> Ok Rt_online.Admission.Admit_all
    | "profitable" -> Ok Rt_online.Admission.Profitable
    | other -> (
        match float_of_string_opt other with
        | Some theta -> Ok (Rt_online.Admission.Density_threshold theta)
        | None ->
            Error
              (`Msg
                "policy must be admit-all, profitable, or a numeric \
                 threshold"))
  in
  match policy with
  | Error e -> Error e
  | Ok policy -> (
      let proc =
        Rt_power.Processor.xscale
          ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })
      in
      let rng = Rt_prelude.Rng.create ~seed in
      let mean_cycles = 25. in
      let jobs =
        Rt_online.Job.stream rng ~n ~rate:(load /. mean_cycles) ~s_max:1.
          ~mean_cycles ~slack_lo:1.2 ~slack_hi:4. ~penalty_factor:1.3
      in
      match Rt_online.Admission.simulate ~proc ~policy jobs with
      | Error e -> Error (`Msg (Rt_online.Admission.error_to_string e))
      | Ok o ->
          Printf.printf
            "online: %d jobs at offered load %.2f, policy %s (seed %d)\n" n
            load policy_name seed;
          Printf.printf
            "  energy %.1f  penalty %.1f  total %.1f  admitted %d  forced \
             rejections %d\n"
            o.Rt_online.Admission.energy o.Rt_online.Admission.penalty
            o.Rt_online.Admission.total
            (List.length o.Rt_online.Admission.admitted)
            o.Rt_online.Admission.forced_rejections;
          Printf.printf "  clairvoyant lower bound: %.1f (ratio %.2fx)\n"
            (Rt_online.Admission.lower_bound ~proc jobs)
            (o.Rt_online.Admission.total
            /. Float.max 1e-9 (Rt_online.Admission.lower_bound ~proc jobs));
          Ok ())

(* Resolve a worker-domain count: --jobs beats RT_JOBS beats 1. A count
   of 1 means "no pool" — run on the calling domain without spawning.
   Validation lives in Pool.resolve_jobs so both --jobs 0 and a
   malformed RT_JOBS (e.g. RT_JOBS=abc) fail with one clear message
   instead of a parse backtrace. *)
let with_jobs jobs f =
  match Rt_parallel.Pool.resolve_jobs ?jobs () with
  | Error msg -> Error (`Msg msg)
  | Ok 1 -> f None
  | Ok domains -> Rt_parallel.Pool.with_pool ~domains (fun pool -> f (Some pool))

let parse_policy policy_name =
  match policy_name with
  | "admit-all" -> Ok Rt_online.Admission.Admit_all
  | "profitable" -> Ok Rt_online.Admission.Profitable
  | other -> (
      match float_of_string_opt other with
      | Some theta -> Ok (Rt_online.Admission.Density_threshold theta)
      | None ->
          Error
            (`Msg
              "policy must be admit-all, profitable, or a numeric threshold"))

(* --fault grammar: derate:FACTOR@TIME, crash:PROC@TIME,
   overrun:JOB:FACTOR@TIME — TIME is the stream time the fault strikes
   the running service. *)
let parse_timed_fault s =
  let fail () =
    Error
      (`Msg
        (Printf.sprintf
           "fault %S: expected derate:FACTOR@T, crash:PROC@T, or \
            overrun:JOB:FACTOR@T"
           s))
  in
  match String.index_opt s '@' with
  | None -> fail ()
  | Some i -> (
      let body = String.sub s 0 i in
      let at_s = String.sub s (i + 1) (String.length s - i - 1) in
      match float_of_string_opt at_s with
      | None -> fail ()
      | Some at -> (
          match String.split_on_char ':' body with
          | [ "derate"; f ] -> (
              match float_of_string_opt f with
              | Some factor ->
                  Ok
                    {
                      Rt_fault.Fault.at;
                      fault = Rt_fault.Fault.Speed_derate { factor };
                    }
              | None -> fail ())
          | [ "crash"; p ] -> (
              match int_of_string_opt p with
              | Some proc ->
                  Ok
                    {
                      Rt_fault.Fault.at;
                      fault = Rt_fault.Fault.Proc_crash { proc; at };
                    }
              | None -> fail ())
          | [ "overrun"; id; f ] -> (
              match (int_of_string_opt id, float_of_string_opt f) with
              | Some task_id, Some factor ->
                  Ok
                    {
                      Rt_fault.Fault.at;
                      fault = Rt_fault.Fault.Wcec_overrun { task_id; factor };
                    }
              | _ -> fail ())
          | _ -> fail ()))

let serve seed n rate_load policy_name m shards queue_cap decision_rate
    latency_budget theta window trace_file fault_specs yds jobs =
  match parse_policy policy_name with
  | Error e -> Error e
  | Ok policy -> (
      let faults =
        List.fold_left
          (fun acc s ->
            match (acc, parse_timed_fault s) with
            | (Error _ as e), _ -> e
            | _, (Error _ as e) -> e
            | Ok fs, Ok f -> Ok (f :: fs))
          (Ok []) fault_specs
      in
      match faults with
      | Error e -> Error e
      | Ok faults -> (
          let faults = List.rev faults in
          let proc =
            Rt_power.Processor.xscale
              ~dormancy:
                (Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })
          in
          let config =
            {
              Rt_serve.Serve.policy;
              m;
              queue_capacity = queue_cap;
              decision_rate;
              watchdog =
                Option.map
                  (fun b ->
                    { Rt_serve.Serve.latency_budget = b; recover_after = 32 })
                  latency_budget;
              degraded_theta = theta;
              overload =
                Option.map
                  (fun w ->
                    {
                      Rt_serve.Serve.window = w;
                      enter_above = 1.;
                      exit_below = 0.75;
                    })
                  window;
              faults;
              yds_bound = yds;
            }
          in
          let mean_cycles = 25. in
          let source =
            match trace_file with
            | Some path -> Rt_serve.Source.of_trace_file path
            | None ->
                Ok
                  (Rt_serve.Source.synthetic ~seed ~limit:n
                     ~rate:(rate_load /. mean_cycles) ~s_max:1. ~mean_cycles
                     ~slack_lo:1.2 ~slack_hi:4. ~penalty_factor:1.3 ())
          in
          match source with
          | Error msg -> Error (`Msg msg)
          | Ok source -> (
              let show = function
                | Error e ->
                    Error (`Msg (Rt_online.Admission.error_to_string e))
                | Ok r ->
                    Printf.printf "serve: policy %s, m=%d, %d shard%s\n"
                      policy_name m shards (if shards = 1 then "" else "s");
                    Format.printf "%a@." Rt_serve.Serve.pp_report r;
                    Ok ()
              in
              if shards <= 1 then
                show (Rt_serve.Serve.run ~proc ~config source)
              else begin
                (* sharding needs the whole stream to route by id *)
                let rec drain acc =
                  match Rt_serve.Source.next source with
                  | Error msg -> Error (`Msg msg)
                  | Ok None -> Ok (List.rev acc)
                  | Ok (Some j) -> drain (j :: acc)
                in
                match drain [] with
                | Error e -> Error e
                | Ok jobs_list ->
                    with_jobs jobs (fun pool ->
                        show
                          (Rt_serve.Serve.run_sharded ?pool ~shards ~proc
                             ~config jobs_list))
              end)))

let faults proc_name penalty_name seed n m load fault_rate =
  if Fc.exact_lt fault_rate 0. || Fc.exact_gt fault_rate 1. then
    Error (`Msg "fault-rate must be in [0, 1]")
  else
    match build_instance ~proc_name ~penalty_name ~seed ~n ~m ~load with
    | Error e -> Error e
    | Ok (_, p) ->
        let baseline = Rt_core.Greedy.ltf_reject p in
        let rates =
          {
            Rt_fault.Fault.overrun_prob = fault_rate;
            overrun_factor = 1.5;
            crash_prob = fault_rate;
            derate_prob = fault_rate;
            derate_factor = 0.8;
          }
        in
        let rng = Rt_prelude.Rng.create ~seed:((seed * 7919) + 17) in
        let sc =
          Rt_fault.Fault.gen rng rates
            ~task_ids:
              (List.map
                 (fun (it : Rt_task.Task.item) -> it.Rt_task.Task.item_id)
                 p.Rt_core.Problem.items)
            ~m ~horizon:p.Rt_core.Problem.horizon
        in
        Printf.printf "faults: n=%d m=%d load=%.2f fault-rate=%.2f (seed %d)\n"
          n m load fault_rate seed;
        Format.printf "  scenario: %a@." Rt_fault.Fault.pp sc;
        let rows =
          List.filter_map
            (fun policy ->
              match Rt_fault.Degrade.recover_frame p sc ~baseline policy with
              | Error e ->
                  Printf.printf "  %s failed: %s\n"
                    (Rt_fault.Degrade.policy_name policy)
                    e;
                  None
              | Ok r -> Some (policy, r))
            Rt_fault.Degrade.all_policies
        in
        let table =
          List.fold_left
            (fun t (policy, (r : Rt_fault.Degrade.report)) ->
              Rt_prelude.Tablefmt.add_row t
                [
                  Rt_fault.Degrade.policy_name policy;
                  string_of_int (List.length r.Rt_fault.Degrade.misses);
                  string_of_int (List.length r.Rt_fault.Degrade.shed);
                  Rt_prelude.Tablefmt.float_cell r.Rt_fault.Degrade.extra_penalty;
                  Rt_prelude.Tablefmt.float_cell r.Rt_fault.Degrade.energy_faulty;
                  Rt_prelude.Tablefmt.float_cell r.Rt_fault.Degrade.energy_delta;
                ])
            (Rt_prelude.Tablefmt.create
               ~aligns:
                 [
                   Rt_prelude.Tablefmt.Left;
                   Rt_prelude.Tablefmt.Right;
                   Rt_prelude.Tablefmt.Right;
                   Rt_prelude.Tablefmt.Right;
                   Rt_prelude.Tablefmt.Right;
                   Rt_prelude.Tablefmt.Right;
                 ]
               [
                 "policy";
                 "misses";
                 "shed";
                 "extra penalty";
                 "energy (faulty)";
                 "energy delta";
               ])
            rows
        in
        Rt_prelude.Tablefmt.print table;
        Ok ()

let qos proc_name penalty_name seed n m load steps curve =
  match build_instance ~proc_name ~penalty_name ~seed ~n ~m ~load with
  | Error e -> Error e
  | Ok (proc, base) -> (
      let empty =
        Rt_core.Problem.make ~proc ~m ~horizon:base.Rt_core.Problem.horizon []
      in
      match empty with
      | Error e -> Error (`Msg e)
      | Ok p ->
          Printf.printf "qos: n=%d m=%d load=%.2f, %d-level menus, curve %.1f\n"
            n m load steps curve;
          List.iter
            (fun (name, tasks) ->
              let s = Rt_core.Qos.greedy_degrade p tasks in
              match Rt_core.Qos.cost p tasks s with
              | Error e -> Printf.printf "  %-8s failed: %s\n" name e
              | Ok total ->
                  (* classify by the chosen level's weight, so binary and
                     graceful menus are counted the same way *)
                  let weight_of c =
                    match
                      List.find_opt
                        (fun t -> t.Rt_core.Qos.id = c.Rt_core.Qos.task_id)
                        tasks
                    with
                    | None -> 0.
                    | Some t ->
                        (List.nth t.Rt_core.Qos.levels c.Rt_core.Qos.level_index)
                          .Rt_core.Qos.weight
                  in
                  let full_of c =
                    match
                      List.find_opt
                        (fun t -> t.Rt_core.Qos.id = c.Rt_core.Qos.task_id)
                        tasks
                    with
                    | None -> 0.
                    | Some t -> (List.hd t.Rt_core.Qos.levels).Rt_core.Qos.weight
                  in
                  let dropped =
                    List.length
                      (List.filter
                         (fun c -> Fc.exact_eq (weight_of c) 0.)
                         s.Rt_core.Qos.choices)
                  in
                  let degraded =
                    List.length
                      (List.filter
                         (fun c ->
                           let w = weight_of c in
                           Fc.exact_gt w 0. && Fc.exact_lt w (full_of c))
                         s.Rt_core.Qos.choices)
                  in
                  Printf.printf
                    "  %-8s total %.1f   degraded %d   dropped %d\n" name
                    total degraded dropped)
            [
              ( "binary",
                List.map Rt_core.Qos.of_item base.Rt_core.Problem.items );
              ( "graceful",
                List.map
                  (Rt_core.Qos.graceful ~steps ~curve)
                  base.Rt_core.Problem.items );
            ];
          Ok ())

let portfolio proc_name penalty_name seed n m load node_budget time_budget
    jobs =
  match build_instance ~proc_name ~penalty_name ~seed ~n ~m ~load with
  | Error e -> Error e
  | Ok (_, p) ->
      with_jobs jobs (fun pool ->
          match
            Rt_parallel.Portfolio.run ?pool ?node_budget ?time_budget p
          with
          | Error e -> Error (`Msg e)
          | Ok o ->
              Printf.printf
                "portfolio on n=%d m=%d load=%.2f (seed %d, %d domain%s)\n" n
                m load seed
                (match pool with
                | None -> 1
                | Some pl -> Rt_parallel.Pool.size pl)
                (match pool with Some pl when Rt_parallel.Pool.size pl > 1 -> "s" | _ -> "");
              let table =
                List.fold_left
                  (fun t (st : Rt_parallel.Portfolio.stat) ->
                    Rt_prelude.Tablefmt.add_row t
                      [
                        st.Rt_parallel.Portfolio.name;
                        (match st.Rt_parallel.Portfolio.cost with
                        | None -> "-"
                        | Some c -> Rt_prelude.Tablefmt.float_cell c);
                        Printf.sprintf "%.1f"
                          (1e3 *. st.Rt_parallel.Portfolio.wall);
                        string_of_int st.Rt_parallel.Portfolio.nodes;
                        (if st.Rt_parallel.Portfolio.exhausted then "yes"
                         else "");
                      ])
                  (Rt_prelude.Tablefmt.create
                     ~aligns:
                       [
                         Rt_prelude.Tablefmt.Left;
                         Rt_prelude.Tablefmt.Right;
                         Rt_prelude.Tablefmt.Right;
                         Rt_prelude.Tablefmt.Right;
                         Rt_prelude.Tablefmt.Left;
                       ]
                     [ "entrant"; "cost"; "wall ms"; "nodes"; "exhausted" ])
                  o.Rt_parallel.Portfolio.stats
              in
              Rt_prelude.Tablefmt.print table;
              Printf.printf "winner: %s  total %.4f\n"
                o.Rt_parallel.Portfolio.winner o.Rt_parallel.Portfolio.cost;
              print_cost p o.Rt_parallel.Portfolio.solution;
              Printf.printf "  %s\n"
                (validation_tag p o.Rt_parallel.Portfolio.solution);
              Ok ())

let exact proc_name penalty_name seed n m load node_budget time_budget
    split_factor jobs =
  match build_instance ~proc_name ~penalty_name ~seed ~n ~m ~load with
  | Error e -> Error e
  | Ok (_, p) ->
      with_jobs jobs (fun pool ->
          let t0 = Rt_prelude.Clock.now () in
          match
            Rt_parallel.Par_search.solve_stats ?pool ?node_budget ?time_budget
              ?split_factor p
          with
          | Error e -> Error (`Msg e)
          | Ok (b, stats) ->
              let wall = Rt_prelude.Clock.elapsed ~since:t0 in
              Printf.printf
                "work-stealing exact search on n=%d m=%d load=%.2f (seed %d, \
                 %d domain%s, split factor %d)\n"
                n m load seed stats.Rt_parallel.Par_search.domains
                (if stats.Rt_parallel.Par_search.domains > 1 then "s" else "")
                (Option.value split_factor
                   ~default:Rt_parallel.Par_search.default_split_factor);
              Printf.printf
                "  wall %.1f ms   nodes %d   splits %d   subtree drops %d   \
                 steals per domain [%s]\n"
                (1e3 *. wall) b.Rt_core.Exact.nodes
                stats.Rt_parallel.Par_search.splits
                stats.Rt_parallel.Par_search.pruned
                (String.concat "; "
                   (List.map string_of_int stats.Rt_parallel.Par_search.steals));
              if b.Rt_core.Exact.exhausted then
                print_endline
                  "  budget exhausted: best incumbent, not a proven optimum";
              print_cost p b.Rt_core.Exact.solution;
              Printf.printf "  %s\n" (validation_tag p b.Rt_core.Exact.solution);
              Ok ())

let fuzz seed count time_budget corpus_dir jobs =
  let config =
    {
      Rt_check.Fuzz.default_config with
      Rt_check.Fuzz.seed;
      count;
      time_budget;
    }
  in
  let run pool =
    let report = Rt_check.Fuzz.run ?pool ~config () in
    print_string (Rt_check.Fuzz.summary report);
    Ok report
  in
  match with_jobs jobs run with
  | Error e -> Error e
  | Ok report -> (
      match report.Rt_check.Fuzz.failures with
      | [] -> Ok ()
      | failures ->
          (match corpus_dir with
          | None -> ()
          | Some dir ->
              List.iteri
                (fun i f ->
                  let name = Printf.sprintf "fuzz-seed%d-%02d" seed i in
                  match
                    Rt_check.Corpus.save ~dir
                      (Rt_check.Fuzz.failure_entry ~name f)
                  with
                  | Ok path -> Printf.printf "  saved %s\n" path
                  | Error e -> Printf.printf "  %s\n" e)
                failures);
          Error
            (`Msg
              (Printf.sprintf "fuzz found %d failure(s)"
                 (List.length failures))))

let lint paths rules format require_cmts =
  let roots =
    if paths = [] then [ "lib"; "bin"; "bench"; "examples" ] else paths
  in
  match List.find_opt (fun r -> not (Sys.file_exists r)) roots with
  | Some r -> Error (`Msg ("no such file or directory: " ^ r))
  | None -> (
      let findings =
        Rt_lint_core.Lint_core.lint_paths ~require_cmts roots
      in
      let findings =
        match rules with
        | [] -> findings
        | rules ->
            List.filter
              (fun (f : Rt_lint_core.Lint_core.finding) ->
                List.mem f.Rt_lint_core.Lint_core.rule rules)
              findings
      in
      print_string (Rt_lint_core.Report.render format findings);
      (* note-level findings are informational; only errors and
         warnings fail the command *)
      match
        List.length (List.filter Rt_lint_core.Finding.gates findings)
      with
      | 0 -> Ok ()
      | n -> Error (`Msg (Printf.sprintf "%d lint issue(s) found" n)))

(* ---------------------------------------------------------------- *)

let proc_arg =
  Arg.(
    value & opt string "xscale"
    & info [ "proc" ] ~docv:"PRESET"
        ~doc:"Processor preset: xscale, xscale-levels, or cubic.")

let penalty_arg =
  Arg.(
    value & opt string "proportional"
    & info [ "penalties" ] ~docv:"MODEL"
        ~doc:"Penalty model: uniform, proportional, inverse, bimodal.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let n_arg = Arg.(value & opt int 12 & info [ "n" ] ~doc:"Number of tasks.")
let m_arg = Arg.(value & opt int 4 & info [ "m" ] ~doc:"Number of processors.")

let load_arg =
  Arg.(
    value & opt float 1.5
    & info [ "load" ] ~doc:"Normalized system load (1.0 = full capacity).")

let alg_arg =
  Arg.(
    value & opt string "ltf-ls"
    & info [ "alg" ] ~docv:"NAME" ~doc:"Algorithm to run (see compare).")

let gantt_arg =
  Arg.(value & flag & info [ "gantt" ] ~doc:"Print the frame schedule.")

let exact_arg =
  Arg.(
    value & flag
    & info [ "exact" ] ~doc:"Also run the exponential exact solver.")

let describe_cmd =
  Cmd.v
    (Cmd.info "describe" ~doc:"print a generated instance")
    Term.(
      term_result
        (const describe $ proc_arg $ penalty_arg $ seed_arg $ n_arg $ m_arg
       $ load_arg))

let solve_cmd =
  Cmd.v
    (Cmd.info "solve" ~doc:"run one algorithm on a generated instance")
    Term.(
      term_result
        (const solve $ proc_arg $ penalty_arg $ seed_arg $ n_arg $ m_arg
       $ load_arg $ alg_arg $ gantt_arg))

let compare_cmd =
  Cmd.v
    (Cmd.info "compare" ~doc:"run every algorithm on a generated instance")
    Term.(
      term_result
        (const compare_all $ proc_arg $ penalty_arg $ seed_arg $ n_arg $ m_arg
       $ load_arg $ exact_arg))

let util_arg =
  Arg.(
    value & opt float 5.
    & info [ "util" ] ~doc:"Total utilization of the periodic task set.")

let load_online_arg =
  Arg.(
    value & opt float 1.4
    & info [ "rate-load" ]
        ~doc:"Offered load of the job stream (1.0 = capacity).")

let policy_arg =
  Arg.(
    value & opt string "profitable"
    & info [ "policy" ]
        ~doc:
          "Admission policy: admit-all, profitable, or a numeric \
           penalty-per-cycle threshold.")

let steps_arg =
  Arg.(value & opt int 4 & info [ "steps" ] ~doc:"Service levels per task.")

let curve_arg =
  Arg.(
    value & opt float 2.
    & info [ "curve" ] ~doc:"Penalty-loss exponent (>1: early losses cheap).")

let periodic_cmd =
  Cmd.v
    (Cmd.info "periodic"
       ~doc:"solve a periodic instance and EDF-check every core")
    Term.(
      term_result
        (const periodic $ proc_arg $ seed_arg $ n_arg $ m_arg $ util_arg))

let online_cmd =
  Cmd.v
    (Cmd.info "online" ~doc:"simulate online admission on a job stream")
    Term.(
      term_result
        (const online $ seed_arg $ n_arg $ load_online_arg $ policy_arg))

let qos_cmd =
  Cmd.v
    (Cmd.info "qos"
       ~doc:"compare binary rejection against graceful QoS degradation")
    Term.(
      term_result
        (const qos $ proc_arg $ penalty_arg $ seed_arg $ n_arg $ m_arg
       $ load_arg $ steps_arg $ curve_arg))

let fault_rate_arg =
  Arg.(
    value & opt float 0.15
    & info [ "fault-rate" ]
        ~doc:
          "Per-task overrun / per-processor crash / platform derate \
           probability, in [0,1].")

let faults_cmd =
  Cmd.v
    (Cmd.info "faults"
       ~doc:"inject a seeded fault scenario and compare degradation policies")
    Term.(
      term_result
        (const faults $ proc_arg $ penalty_arg $ seed_arg $ n_arg $ m_arg
       $ load_arg $ fault_rate_arg))

let serve_n_arg =
  Arg.(
    value & opt int 10_000
    & info [ "n" ] ~doc:"Jobs to draw from the synthetic stream.")

let serve_m_arg =
  Arg.(value & opt int 1 & info [ "m" ] ~doc:"Number of processors.")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Service replicas; jobs are routed by id mod $(docv) and the \
           reports merged. Byte-stable for any --jobs value.")

let queue_cap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "queue-cap" ] ~docv:"N"
        ~doc:
          "Ingress queue capacity; overflow sheds the cheapest \
           penalty-per-cycle undecided jobs (default: unbounded).")

let decision_rate_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "decision-rate" ] ~docv:"R"
        ~doc:
          "Admission decisions per stream-time unit (default: \
           instantaneous — the ingress queue never builds up).")

let latency_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "latency-budget" ] ~docv:"SECONDS"
        ~doc:
          "Watchdog: wall-clock budget per admission decision; blowing \
           it degrades the admission tier (default: no watchdog).")

let theta_arg =
  Arg.(
    value & opt float 0.
    & info [ "theta" ]
        ~doc:"Penalty-per-cycle threshold of the degraded tier.")

let overload_window_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "overload-window" ] ~docv:"T"
        ~doc:
          "Sliding-window length for the offered-load estimator \
           (default: no overload detection).")

let trace_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Serve this trace file (id arrival cycles deadline penalty per \
           line) instead of the synthetic stream.")

let fault_spec_arg =
  Arg.(
    value & opt_all string []
    & info [ "fault" ] ~docv:"SPEC"
        ~doc:
          "Inject a fault into the running service (repeatable): \
           derate:FACTOR@T, crash:PROC@T, or overrun:JOB:FACTOR@T.")

let yds_arg =
  Arg.(
    value & flag
    & info [ "yds" ]
        ~doc:
          "Also compute the YDS offline-optimal energy of the admitted \
           set (single processor only; cubic in n — keep runs small).")

(* RT_JOBS is read by Pool.resolve_jobs, not by cmdliner's ~env: the
   pool validates it and reports a malformed value ("RT_JOBS: job count
   must be ...") instead of a generic option-parse failure. *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel solving (default: the RT_JOBS \
           environment variable, else 1). Results are byte-identical at \
           any value; only wall time changes.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "stream jobs through the overload-resilient admission service \
          (bounded ingress, watchdog tiers, live fault injection)")
    Term.(
      term_result
        (const serve $ seed_arg $ serve_n_arg $ load_online_arg $ policy_arg
       $ serve_m_arg $ shards_arg $ queue_cap_arg $ decision_rate_arg
       $ latency_budget_arg $ theta_arg $ overload_window_arg $ trace_arg
       $ fault_spec_arg $ yds_arg $ jobs_arg))

let node_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "node-budget" ] ~docv:"NODES"
        ~doc:"Node budget for the exact entrant (per subtree).")

let portfolio_time_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "time-budget" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget (monotonic) for the exact entrant; the \
           heuristics always run to completion.")

let portfolio_cmd =
  Cmd.v
    (Cmd.info "portfolio"
       ~doc:
         "race the greedy family against budgeted exact search, sharing \
          the incumbent bound")
    Term.(
      term_result
        (const portfolio $ proc_arg $ penalty_arg $ seed_arg $ n_arg $ m_arg
       $ load_arg $ node_budget_arg $ portfolio_time_budget_arg $ jobs_arg))

let split_factor_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "split-factor" ] ~docv:"FACTOR"
        ~doc:
          "Work granulation: larger factors expand the search frontier \
           into finer stealable subtrees. The result is identical at \
           every value.")

let exact_time_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "time-budget" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget (monotonic) shared by all domains; on expiry \
           the pending subtrees drain and the incumbent is returned.")

let exact_cmd =
  Cmd.v
    (Cmd.info "exact"
       ~doc:
         "run the work-stealing exact branch-and-bound (deterministic: \
          identical output at any domain count and split factor)")
    Term.(
      term_result
        (const exact $ proc_arg $ penalty_arg $ seed_arg $ n_arg $ m_arg
       $ load_arg $ node_budget_arg $ exact_time_budget_arg
       $ split_factor_arg $ jobs_arg))

let count_arg =
  Arg.(
    value
    & opt int Rt_check.Fuzz.default_config.Rt_check.Fuzz.count
    & info [ "count" ] ~doc:"Instances to generate.")

let fuzz_seed_arg =
  Arg.(
    value
    & opt int Rt_check.Fuzz.default_config.Rt_check.Fuzz.seed
    & info [ "seed" ] ~doc:"Base seed; every instance derives from it.")

let time_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "time-budget" ] ~docv:"SECONDS"
        ~doc:
          "Stop generating new instances after this many wall-clock \
           seconds (monotonic).")

let corpus_dir_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "corpus-dir" ] ~docv:"DIR"
        ~doc:
          "Save each minimized failure as a corpus entry in this \
           (existing) directory.")

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "cross-check every heuristic against the exact solvers, the \
          simulators and the metamorphic laws on seeded random instances")
    Term.(
      term_result
        (const fuzz $ fuzz_seed_arg $ count_arg $ time_budget_arg
       $ corpus_dir_arg $ jobs_arg))

let lint_paths_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"PATH"
        ~doc:
          "Files or directories to lint (default: lib bin bench examples).")

let lint_rule_arg =
  Arg.(
    value & opt_all string []
    & info [ "rule" ] ~docv:"ID"
        ~doc:"Only report findings of rule $(docv) (repeatable).")

let lint_format_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("text", Rt_lint_core.Report.Text);
             ("json", Rt_lint_core.Report.Json);
             ("sarif", Rt_lint_core.Report.Sarif);
           ])
        Rt_lint_core.Report.Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"Output format: text, json, or sarif.")

let lint_require_cmts_arg =
  Arg.(
    value & flag
    & info [ "require-cmts" ]
        ~doc:
          "Report sources whose typed pass could not run instead of \
           silently skipping them.")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "run the repo's typedtree-based static analysis (float \
          comparisons, determinism, units of measure)")
    Term.(
      term_result
        (const lint $ lint_paths_arg $ lint_rule_arg $ lint_format_arg
       $ lint_require_cmts_arg))

let cmd =
  Cmd.group
    (Cmd.info "rt_sched" ~version:"1.0.0"
       ~doc:"energy-efficient real-time scheduling with task rejection")
    [
      describe_cmd;
      solve_cmd;
      compare_cmd;
      periodic_cmd;
      online_cmd;
      serve_cmd;
      qos_cmd;
      faults_cmd;
      exact_cmd;
      portfolio_cmd;
      fuzz_cmd;
      lint_cmd;
    ]

let () = exit (Cmd.eval cmd)
