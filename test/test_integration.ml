(* Cross-library integration: end-to-end pipelines that exercise several
   libraries together, plus the published approximation bounds as
   executable theorems. *)

open Rt_task
module Fc = Rt_prelude.Float_cmp
module Instance = Rt_check.Instance

let check_bool = Alcotest.(check bool)

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let cubic = Rt_power.Processor.cubic ()
let xscale_enable =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })
let algorithms =
  [
    ("ltf-reject", Rt_core.Greedy.ltf_reject);
    ("ltf-ls", Rt_core.Local_search.with_local_search Rt_core.Greedy.ltf_reject);
    ("marginal", Rt_core.Greedy.marginal_greedy);
    ("density", Rt_core.Greedy.density_reject);
  ]

(* ------------------------------------------------------------------ *)
(* 1. periodic pipeline: generate -> reject-schedule -> EDF-simulate *)

let prop_periodic_pipeline_edf_clean =
  qtest ~count:40
    "periodic: every algorithm's accepted partition survives EDF simulation"
    QCheck2.Gen.(pair (int_range 1 10_000) (float_range 0.8 2.2))
    (fun (seed, total_util_per_core) ->
      let m = 3 in
      let rng = Rt_prelude.Rng.create ~seed in
      let tasks =
        Gen.periodic_tasks rng ~n:12
          ~total_util:(total_util_per_core *. float_of_int m)
          ~periods:Gen.default_periods
      in
      let tasks =
        (* attach penalties through the item view, then map them back *)
        let horizon = float_of_int (Taskset.hyper_period tasks) in
        let items =
          Taskset.items_of_periodics tasks
          |> Penalty.assign
               (Penalty.Proportional { factor = 1.5; jitter = 0.2 })
               rng ~proc:xscale_enable ~horizon
        in
        List.map2
          (fun (t : Task.periodic) (it : Task.item) ->
            Task.periodic ~penalty:it.item_penalty ~id:t.id ~cycles:t.cycles
              ~period:t.period ())
          tasks items
      in
      match Rt_core.Problem.of_periodic ~proc:xscale_enable ~m tasks with
      | Error _ -> false
      | Ok p ->
          List.for_all
            (fun (_, alg) ->
              let s = alg p in
              Rt_core.Solution.validate p s = Ok ()
              && (* EDF per processor at the clamped sustained speed *)
              List.for_all
                (fun core ->
                  let ids =
                    List.map
                      (fun (it : Task.item) -> it.item_id)
                      (Rt_partition.Partition.bucket
                         s.Rt_core.Solution.partition core)
                  in
                  let core_tasks =
                    List.filter
                      (fun (t : Task.periodic) -> List.mem t.id ids)
                      tasks
                  in
                  core_tasks = []
                  ||
                  let u = Taskset.total_utilization core_tasks in
                  let speed =
                    Rt_prelude.Float_cmp.clamp ~lo:0. ~hi:1.
                      (Float.max u
                         (Rt_power.Processor.critical_speed xscale_enable))
                  in
                  match
                    Rt_sim.Edf_sim.run ~proc:xscale_enable ~speed core_tasks
                  with
                  | Ok o -> o.Rt_sim.Edf_sim.misses = []
                  | Error _ -> false)
                (Rt_prelude.Math_util.range 0 (m - 1)))
            algorithms)

(* ------------------------------------------------------------------ *)
(* 2. discrete-level processors run through the whole rejection stack *)

let prop_levels_pipeline =
  qtest ~count:40
    "discrete-level processors: algorithms validate and beat nobody unfairly"
    (Instance.qcheck_gen
       ~params:{ Instance.default_params with Instance.m_hi = 2 }
       ())
    (fun inst ->
      (* pin the shared generator's draw to the level-domain preset *)
      let inst = { inst with Instance.proc = Instance.Xscale_levels } in
      match Instance.to_problem inst with
      | Error _ -> false
      | Ok p ->
          let opt = Rt_core.Exact.optimal_cost p in
          List.for_all
            (fun (_, alg) ->
              let s = alg p in
              Rt_core.Solution.validate p s = Ok ()
              &&
              match Rt_core.Solution.cost p s with
              | Ok c -> Fc.geq ~eps:1e-6 c.Rt_core.Solution.total opt
              | Error _ -> false)
            algorithms)

(* ------------------------------------------------------------------ *)
(* 3. published bounds as executable theorems *)

(* LTF on feasible accept-all instances: energy within 1.13 of the optimal
   *partition* (the published bound; note it is NOT against the migratory
   relaxation — the intrinsic partition-vs-migration gap alone reaches 4/3
   on three near-equal tasks over two processors, which an earlier version
   of this test discovered the hard way). *)
let prop_ltf_energy_bound_113 =
  qtest ~count:80 "LTF energy <= 1.13 x optimal partition (published bound)"
    QCheck2.Gen.(
      pair (int_range 2 3)
        (list_size (int_range 2 8) (float_range 0.05 0.6)))
    (fun (m, weights) ->
      let items =
        List.mapi (fun id w -> Task.item ~penalty:1e9 ~id ~weight:w ()) weights
      in
      let part = Rt_partition.Heuristics.ltf ~m items in
      if Rt_prelude.Float_cmp.gt (Rt_partition.Partition.makespan part) 1. then
        true (* infeasible accept-all: outside the bound's hypothesis *)
      else begin
        let bucket_cost u =
          match Rt_speed.Energy_rate.energy cubic ~u ~horizon:100. with
          | Some e -> e
          | None -> invalid_arg "over capacity"
        in
        let opt =
          Rt_exact.Search.branch_and_bound ~m ~capacity:1. ~bucket_cost items
        in
        opt.Rt_exact.Search.rejected <> []
        || Fc.exact_le opt.Rt_exact.Search.cost 0.
        ||
        let e =
          Array.fold_left
            (fun acc u -> acc +. bucket_cost u)
            0.
            (Rt_partition.Partition.loads part)
        in
        Fc.leq ~eps:1e-9 e (1.13 *. opt.Rt_exact.Search.cost)
      end)

(* Graham in energy clothing is covered in test_partition; here the exact
   solvers agree across formulations on the uniprocessor slice. *)
let prop_exact_agree_m1 =
  qtest ~count:40 "m=1: branch-and-bound and the cycles DP find one optimum"
    (Instance.qcheck_gen
       ~params:
         { Instance.default_params with Instance.n_hi = 8; m_hi = 1 }
       ())
    (fun inst ->
      match
        Rt_core.Uni_dp.exact
          ~proc:(Instance.processor inst.Instance.proc)
          ~frame_length:(float_of_int inst.Instance.frame_ticks)
          (Instance.frame_tasks inst)
      with
      | Error _ -> false
      | Ok o ->
          let bnb = Rt_core.Exact.optimal_cost o.Rt_core.Uni_dp.problem in
          Fc.approx_eq ~eps:1e-6 bnb o.Rt_core.Uni_dp.cost)

(* ------------------------------------------------------------------ *)
(* 4. the CLI-facing instance builders stay consistent with the core *)

let test_expkit_instance_roundtrip () =
  let p =
    Rt_expkit.Instances.frame_instance ~proc:xscale_enable ~seed:99 ~n:20 ~m:4
      ~load:1.4 ()
  in
  let s = Rt_core.Local_search.with_local_search Rt_core.Greedy.ltf_reject p in
  check_bool "validates" true (Rt_core.Solution.validate p s = Ok ());
  let lb = Rt_core.Bounds.lower_bound p in
  check_bool "lower bound sound" true
    (Fc.geq ~eps:1e-6 (Rt_expkit.Instances.solution_total p s) lb)

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          prop_periodic_pipeline_edf_clean;
          prop_levels_pipeline;
          Alcotest.test_case "expkit roundtrip" `Quick
            test_expkit_instance_roundtrip;
        ] );
      ( "published_bounds",
        [ prop_ltf_energy_bound_113; prop_exact_agree_m1 ] );
    ]
