(* Tests for rt_task: task constructors, task-set queries, penalty models,
   generators. *)

open Rt_task

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let proc = Rt_power.Processor.xscale ~dormancy:Rt_power.Processor.Dormant_disable

(* ------------------------------------------------------------------ *)
(* Task *)

let test_constructors () =
  let f = Task.frame ~penalty:2.5 ~id:1 ~cycles:100 () in
  check_int "frame cycles" 100 f.Task.cycles;
  check_float 1e-12 "frame penalty" 2.5 f.Task.penalty;
  let p = Task.periodic ~id:2 ~cycles:50 ~period:200 () in
  check_float 1e-12 "utilization" 0.25 (Task.utilization p);
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s should be rejected" name
  in
  expect_invalid "zero cycles" (fun () -> Task.frame ~id:0 ~cycles:0 ());
  expect_invalid "negative penalty" (fun () ->
      Task.frame ~penalty:(-1.) ~id:0 ~cycles:1 ());
  expect_invalid "zero period" (fun () ->
      Task.periodic ~id:0 ~cycles:1 ~period:0 ());
  expect_invalid "zero power factor" (fun () ->
      Task.frame ~power_factor:0. ~id:0 ~cycles:1 ())

let test_item_views () =
  let f = Task.frame ~penalty:3. ~id:7 ~cycles:50 () in
  let it = Task.item_of_frame ~frame_length:100. f in
  check_float 1e-12 "frame weight = cycles/D" 0.5 it.Task.weight;
  check_int "id preserved" 7 it.Task.item_id;
  check_float 1e-12 "penalty preserved" 3. it.Task.item_penalty;
  let p = Task.periodic ~penalty:1. ~id:3 ~cycles:30 ~period:120 () in
  let ip = Task.item_of_periodic p in
  check_float 1e-12 "periodic weight = utilization" 0.25 ip.Task.weight

let test_orders () =
  let a = Task.frame ~id:0 ~cycles:10 () in
  let b = Task.frame ~id:1 ~cycles:20 () in
  let c = Task.frame ~id:2 ~cycles:10 () in
  let sorted = List.sort Task.compare_frame_cycles_desc [ a; b; c ] in
  Alcotest.(check (list int))
    "cycles desc, ties by id"
    [ 1; 0; 2 ]
    (List.map (fun (t : Task.frame) -> t.Task.id) sorted)

let test_distinct_ids () =
  check_bool "distinct" true (Task.distinct_ids [ 1; 2; 3 ]);
  check_bool "duplicate" false (Task.distinct_ids [ 1; 2; 1 ]);
  check_bool "empty" true (Task.distinct_ids [])

(* ------------------------------------------------------------------ *)
(* Taskset *)

let test_taskset_queries () =
  let ts =
    [
      Task.frame ~penalty:1. ~id:0 ~cycles:10 ();
      Task.frame ~penalty:2. ~id:1 ~cycles:30 ();
    ]
  in
  check_int "total cycles" 40 (Taskset.total_cycles ts);
  check_float 1e-12 "total penalty" 3. (Taskset.total_penalty_frame ts);
  check_bool "well formed" true (Taskset.well_formed_frame ts = Ok ());
  let dup = ts @ [ Task.frame ~id:0 ~cycles:5 () ] in
  check_bool "duplicate detected" true
    (Taskset.well_formed_frame dup <> Ok ())

let test_hyper_period () =
  let ts =
    [
      Task.periodic ~id:0 ~cycles:1 ~period:100 ();
      Task.periodic ~id:1 ~cycles:1 ~period:250 ();
      Task.periodic ~id:2 ~cycles:1 ~period:400 ();
    ]
  in
  check_int "lcm of periods" 2000 (Taskset.hyper_period ts)

let test_hyper_period_checked () =
  let ts =
    [
      Task.periodic ~id:0 ~cycles:1 ~period:100 ();
      Task.periodic ~id:1 ~cycles:1 ~period:250 ();
    ]
  in
  check_bool "small ok" true (Taskset.hyper_period_checked ts = Ok 500);
  check_bool "empty is an error" true
    (Result.is_error (Taskset.hyper_period_checked []));
  (* near-max-int coprime periods: the hyper-period would overflow *)
  let adversarial =
    [
      Task.periodic ~id:0 ~cycles:1 ~period:max_int ();
      Task.periodic ~id:1 ~cycles:1 ~period:(max_int - 1) ();
    ]
  in
  check_bool "overflow is a typed error" true
    (Result.is_error (Taskset.hyper_period_checked adversarial))

let test_load_factor () =
  let items = [ Task.item ~id:0 ~weight:0.5 (); Task.item ~id:1 ~weight:1.0 () ] in
  check_float 1e-12 "load over 2 procs" 0.75
    (Taskset.load_factor ~m:2 ~s_max:1. items)

(* ------------------------------------------------------------------ *)
(* Penalty *)

let test_penalty_validate () =
  check_bool "uniform ok" true
    (Penalty.validate (Penalty.Uniform { lo = 0.; hi = 1. }) = Ok ());
  check_bool "uniform bad" true
    (Penalty.validate (Penalty.Uniform { lo = 2.; hi = 1. }) <> Ok ());
  check_bool "jitter bad" true
    (Penalty.validate (Penalty.Proportional { factor = 1.; jitter = 1.5 })
    <> Ok ());
  check_bool "bimodal p bad" true
    (Penalty.validate (Penalty.Bimodal { low = 0.1; high = 1.; p_high = 1.5 })
    <> Ok ())

let test_penalty_assign_preserves_structure () =
  let rng = Rt_prelude.Rng.create ~seed:5 in
  let items =
    [ Task.item ~id:0 ~weight:0.2 (); Task.item ~id:1 ~weight:0.4 () ]
  in
  let out =
    Penalty.assign
      (Penalty.Proportional { factor = 1.; jitter = 0. })
      rng ~proc ~horizon:1. items
  in
  check_int "same count" 2 (List.length out);
  List.iter2
    (fun (a : Task.item) (b : Task.item) ->
      check_int "id" a.Task.item_id b.Task.item_id;
      check_float 1e-12 "weight" a.Task.weight b.Task.weight;
      check_bool "penalty set" true (b.Task.item_penalty > 0.))
    items out

let test_penalty_proportional_scales_with_weight () =
  let rng = Rt_prelude.Rng.create ~seed:5 in
  let items =
    [ Task.item ~id:0 ~weight:0.2 (); Task.item ~id:1 ~weight:0.4 () ]
  in
  match
    Penalty.assign
      (Penalty.Proportional { factor = 1.; jitter = 0. })
      rng ~proc ~horizon:1. items
  with
  | [ a; b ] ->
      (* no jitter: penalty is exactly proportional to weight *)
      check_float 1e-9 "2x weight -> 2x penalty"
        (2. *. a.Task.item_penalty)
        b.Task.item_penalty
  | _ -> Alcotest.fail "expected two items"

let test_penalty_inverse_orders_against_weight () =
  let rng = Rt_prelude.Rng.create ~seed:5 in
  let items =
    [ Task.item ~id:0 ~weight:0.2 (); Task.item ~id:1 ~weight:0.4 () ]
  in
  match
    Penalty.assign (Penalty.Inverse { factor = 1.; jitter = 0. }) rng ~proc
      ~horizon:1. items
  with
  | [ a; b ] ->
      check_bool "smaller task has larger penalty" true
        (a.Task.item_penalty > b.Task.item_penalty)
  | _ -> Alcotest.fail "expected two items"

let prop_penalties_non_negative =
  qtest "all penalty models produce finite non-negative penalties"
    QCheck2.Gen.(pair (int_range 1 20) (int_range 0 3))
    (fun (n, which) ->
      let rng = Rt_prelude.Rng.create ~seed:(n + (which * 100)) in
      let items = Gen.items rng ~n ~weight_lo:0.05 ~weight_hi:0.9 in
      let _, model = List.nth Penalty.default_models which in
      let out = Penalty.assign model rng ~proc ~horizon:1. items in
      List.for_all
        (fun (it : Task.item) ->
          Float.is_finite it.Task.item_penalty && it.Task.item_penalty >= 0.)
        out)

(* ------------------------------------------------------------------ *)
(* Gen *)

let test_gen_frame () =
  let rng = Rt_prelude.Rng.create ~seed:1 in
  let ts = Gen.frame_tasks rng ~n:50 ~cycles_lo:10 ~cycles_hi:99 in
  check_int "count" 50 (List.length ts);
  check_bool "ids distinct" true
    (Task.distinct_ids (List.map (fun (t : Task.frame) -> t.Task.id) ts));
  check_bool "cycles in range" true
    (List.for_all
       (fun (t : Task.frame) -> t.Task.cycles >= 10 && t.Task.cycles <= 99)
       ts)

let test_gen_frame_with_load () =
  let rng = Rt_prelude.Rng.create ~seed:2 in
  let ts =
    Gen.frame_tasks_with_load rng ~n:40 ~m:4 ~s_max:1. ~frame_length:1000.
      ~load:1.5
  in
  let total = float_of_int (Taskset.total_cycles ts) in
  (* target = 1.5 * 4 * 1000 = 6000, rounding slack is small *)
  check_bool "total close to target" true
    (Float.abs (total -. 6000.) /. 6000. < 0.02)

let test_gen_periodic () =
  let rng = Rt_prelude.Rng.create ~seed:3 in
  let ts =
    Gen.periodic_tasks rng ~n:20 ~total_util:2.0 ~periods:Gen.default_periods
  in
  check_int "count" 20 (List.length ts);
  check_bool "hyper-period bounded" true (Taskset.hyper_period ts <= 2000);
  let u = Taskset.total_utilization ts in
  check_bool "total utilization near target" true (Float.abs (u -. 2.0) < 0.2)

let prop_gen_items_in_range =
  qtest "item generator respects the weight range"
    QCheck2.Gen.(int_range 0 40)
    (fun n ->
      let rng = Rt_prelude.Rng.create ~seed:n in
      let items = Gen.items rng ~n ~weight_lo:0.1 ~weight_hi:0.7 in
      List.length items = n
      && List.for_all
           (fun (it : Task.item) ->
             it.Task.weight >= 0.1 && it.Task.weight < 0.7)
           items)

let test_hetero_factors () =
  let rng = Rt_prelude.Rng.create ~seed:9 in
  let items = Gen.items rng ~n:10 ~weight_lo:0.1 ~weight_hi:0.5 in
  let out = Gen.heterogeneous_power_factors rng ~lo:0.5 ~hi:2. items in
  check_bool "factors in range" true
    (List.for_all
       (fun (it : Task.item) ->
         it.Task.item_power_factor >= 0.5 && it.Task.item_power_factor < 2.)
       out)

let () =
  Alcotest.run "rt_task"
    [
      ( "task",
        [
          Alcotest.test_case "constructors" `Quick test_constructors;
          Alcotest.test_case "item views" `Quick test_item_views;
          Alcotest.test_case "sort orders" `Quick test_orders;
          Alcotest.test_case "distinct ids" `Quick test_distinct_ids;
        ] );
      ( "taskset",
        [
          Alcotest.test_case "queries" `Quick test_taskset_queries;
          Alcotest.test_case "hyper-period" `Quick test_hyper_period;
          Alcotest.test_case "hyper-period overflow guard" `Quick
            test_hyper_period_checked;
          Alcotest.test_case "load factor" `Quick test_load_factor;
        ] );
      ( "penalty",
        [
          Alcotest.test_case "validation" `Quick test_penalty_validate;
          Alcotest.test_case "assign preserves structure" `Quick
            test_penalty_assign_preserves_structure;
          Alcotest.test_case "proportional scales with weight" `Quick
            test_penalty_proportional_scales_with_weight;
          Alcotest.test_case "inverse orders against weight" `Quick
            test_penalty_inverse_orders_against_weight;
          prop_penalties_non_negative;
        ] );
      ( "gen",
        [
          Alcotest.test_case "frame tasks" `Quick test_gen_frame;
          Alcotest.test_case "frame tasks with load" `Quick
            test_gen_frame_with_load;
          Alcotest.test_case "periodic tasks" `Quick test_gen_periodic;
          prop_gen_items_in_range;
          Alcotest.test_case "hetero factors" `Quick test_hetero_factors;
        ] );
    ]
